package hint_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"predmatch/internal/core"
	"predmatch/internal/hint"
	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/pred"
	"predmatch/internal/shard"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/workload"
)

func sorted(ids []markset.ID) []markset.ID {
	out := append([]markset.ID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []markset.ID) bool {
	a, b = sorted(a), sorted(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// naiveStab evaluates every interval directly.
func naiveStab(items map[markset.ID]interval.Interval[int64], x int64) []markset.ID {
	var out []markset.ID
	for id, iv := range items {
		if iv.Contains(ivindex.Int64Cmp, x) {
			out = append(out, id)
		}
	}
	return out
}

func TestHINTBasic(t *testing.T) {
	ix := hint.New(ivindex.Int64Cmp)
	items := map[markset.ID]interval.Interval[int64]{
		1: interval.Closed[int64](10, 20),
		2: interval.Point[int64](15),
		3: interval.Open[int64](15, 30),
		4: interval.AtLeast[int64](25),
		5: interval.AtMost[int64](12),
		6: interval.All[int64](),
		7: interval.ClosedOpen[int64](20, 25),
		8: interval.OpenClosed[int64](5, 10),
	}
	for id, iv := range items {
		if err := ix.Insert(id, iv); err != nil {
			t.Fatalf("Insert(%d, %v): %v", id, iv, err)
		}
	}
	if ix.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(items))
	}
	if err := ix.Insert(1, interval.Point[int64](0)); err == nil {
		t.Fatal("duplicate Insert succeeded")
	}
	if err := ix.Delete(99); err == nil {
		t.Fatal("Delete of unknown id succeeded")
	}
	for x := int64(0); x <= 35; x++ {
		got, want := ix.Stab(x), naiveStab(items, x)
		if !equalIDs(got, want) {
			t.Errorf("Stab(%d) = %v, want %v", x, sorted(got), sorted(want))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete half and re-verify: rebuild must reflect the survivors.
	for _, id := range []markset.ID{2, 4, 6, 8} {
		if err := ix.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		delete(items, id)
	}
	for x := int64(0); x <= 35; x++ {
		if got, want := ix.Stab(x), naiveStab(items, x); !equalIDs(got, want) {
			t.Errorf("after deletes: Stab(%d) = %v, want %v", x, sorted(got), sorted(want))
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHINTEmptyAndSingle(t *testing.T) {
	ix := hint.New(ivindex.Int64Cmp)
	if got := ix.Stab(7); len(got) != 0 {
		t.Fatalf("empty Stab = %v", got)
	}
	if err := ix.Insert(1, interval.Point[int64](7)); err != nil {
		t.Fatal(err)
	}
	if got := ix.Stab(7); !equalIDs(got, []markset.ID{1}) {
		t.Fatalf("Stab(7) = %v", got)
	}
	for _, x := range []int64{6, 8} {
		if got := ix.Stab(x); len(got) != 0 {
			t.Fatalf("Stab(%d) = %v", x, got)
		}
	}
	if err := ix.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := ix.Stab(7); len(got) != 0 {
		t.Fatalf("Stab after delete = %v", got)
	}
}

func TestHINTRejectsMalformed(t *testing.T) {
	ix := hint.New(ivindex.Int64Cmp)
	bad := interval.Interval[int64]{
		Lo: interval.Bound[int64]{Kind: interval.Finite, Value: 10, Closed: true},
		Hi: interval.Bound[int64]{Kind: interval.Finite, Value: 5, Closed: true},
	}
	if err := ix.Insert(1, bad); err == nil {
		t.Fatal("malformed interval accepted")
	}
	if ix.Len() != 0 {
		t.Fatal("failed insert left residue")
	}
}

// TestHINTPaperWorkload stabs the Section 5.2 interval population and
// cross-checks against direct evaluation.
func TestHINTPaperWorkload(t *testing.T) {
	for _, a := range []float64{0, 0.5, 1} {
		rng := rand.New(rand.NewSource(6))
		ix := hint.New(ivindex.Int64Cmp)
		items := make(map[markset.ID]interval.Interval[int64])
		for i, iv := range workload.Intervals(rng, 500, a) {
			id := markset.ID(i + 1)
			if err := ix.Insert(id, iv); err != nil {
				t.Fatal(err)
			}
			items[id] = iv
		}
		for _, x := range workload.StabPoints(rng, 200) {
			if got, want := ix.Stab(x), naiveStab(items, x); !equalIDs(got, want) {
				t.Fatalf("a=%v: Stab(%d): got %d ids, want %d", a, x, len(got), len(want))
			}
		}
		if err := ix.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHINTStats exercises the introspection surface used by
// core.AttrIndexStats.
func TestHINTStats(t *testing.T) {
	ix := hint.New(ivindex.Int64Cmp)
	for i, iv := range workload.DisjointIntervals(64) {
		if err := ix.Insert(markset.ID(i+1), iv); err != nil {
			t.Fatal(err)
		}
	}
	if ix.NodeCount() <= 0 || ix.MarkerCount() < 64 || ix.Height() <= 0 {
		t.Fatalf("stats: nodes=%d markers=%d height=%d",
			ix.NodeCount(), ix.MarkerCount(), ix.Height())
	}
}

// hintFactory builds a core.Index whose attribute indexes are HINT
// hierarchies — the same WithIndexFactory seam every other structure
// uses.
func hintFactory(f *matchertest.Fixture) *core.Index {
	return core.New(f.Catalog, f.Funcs,
		core.WithIndexFactory(func() core.AttrIndex { return hint.New(value.Compare) }),
		core.WithName("hint"),
	)
}

// TestConformance runs the full matcher behavioral gauntlet over a
// HINT-backed core.Index.
func TestConformance(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher { return hintFactory(f) })
}

// TestConformanceSharded runs the gauntlet over the serving-layer
// sharded matcher with HINT attribute indexes — the configuration
// predmatchd -index hint serves.
func TestConformanceSharded(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return shard.New(f.Catalog, f.Funcs, shard.WithIndexOptions(
			core.WithIndexFactory(func() core.AttrIndex { return hint.New(value.Compare) }),
			core.WithName("hint"),
		), shard.WithName("sharded-hint"))
	})
}

// TestConcurrentSharded storms the sharded HINT configuration: 4
// writers and 4 readers race against clone-and-publish snapshot swaps.
// Run under -race this proves a lazily built HINT snapshot is never
// observed torn.
func TestConcurrentSharded(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		return shard.New(f.Catalog, f.Funcs, shard.WithIndexOptions(
			core.WithIndexFactory(func() core.AttrIndex { return hint.New(value.Compare) }),
			core.WithName("hint"),
		), shard.WithName("sharded-hint"))
	})
}

// TestConcurrentSynchronized storms a bare HINT-backed core.Index
// behind the mutex wrapper, the non-sharded concurrency baseline.
func TestConcurrentSynchronized(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		return matchertest.Synchronized(hintFactory(f))
	})
}

// TestConcurrentFirstStab races the lazy build directly: each round
// invalidates the hierarchy (with no readers in flight, matching the
// clone-then-publish contract), then releases a pack of goroutines
// whose stabs all hit the unbuilt index at once. The double-checked
// build must hand every racer a fully constructed hierarchy — a torn
// one would drop or duplicate ids against the direct-evaluation oracle.
func TestConcurrentFirstStab(t *testing.T) {
	const (
		nItems  = 300
		rounds  = 40
		readers = 8
	)
	rng := rand.New(rand.NewSource(7))
	items := make(map[markset.ID]interval.Interval[int64])
	ix := hint.New(ivindex.Int64Cmp)
	for i, iv := range workload.Intervals(rng, nItems, 0.3) {
		id := markset.ID(i + 1)
		items[id] = iv
		if err := ix.Insert(id, iv); err != nil {
			t.Fatal(err)
		}
	}
	points := workload.StabPoints(rng, 64)
	want := make(map[int64][]markset.ID, len(points))
	for _, x := range points {
		want[x] = sorted(naiveStab(items, x))
	}

	probeID := markset.ID(nItems + 1)
	for r := 0; r < rounds; r++ {
		// Quiescent mutation: Insert+Delete of an interval far outside
		// the probe domain leaves the item set unchanged but marks the
		// built hierarchy stale.
		if err := ix.Insert(probeID, interval.Closed[int64](1_000_000, 1_000_001)); err != nil {
			t.Fatal(err)
		}
		if err := ix.Delete(probeID); err != nil {
			t.Fatal(err)
		}

		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				<-start
				for n := 0; n < 20; n++ {
					x := points[rng.Intn(len(points))]
					got := sorted(ix.Stab(x))
					w := want[x]
					if len(got) != len(w) {
						t.Errorf("torn read: Stab(%d) returned %d ids, want %d", x, len(got), len(w))
						return
					}
					for i := range got {
						if got[i] != w[i] {
							t.Errorf("torn read: Stab(%d)[%d] = %d, want %d", x, i, got[i], w[i])
							return
						}
					}
				}
			}(int64(r*readers + g))
		}
		close(start)
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRebuildUnderWrite proves the snapshot-swap rebuild never serves a
// torn index end to end: writers churn throwaway predicates through the
// sharded matcher (every Add/Remove clones the relation's core.Index,
// re-inserting all intervals into *fresh, unbuilt* HINT hierarchies and
// publishing them), while readers continuously Match. Each published
// snapshot's first Match triggers concurrent lazy builds from racing
// reader goroutines. A fixed "stable" predicate population pins the
// expected result for every probe tuple; churn predicates can never
// match a probe, so any deviation — missing stable ids, duplicates,
// ghost churn ids — is a torn or stale hierarchy.
func TestRebuildUnderWrite(t *testing.T) {
	f := matchertest.NewFixture()
	sm := shard.New(f.Catalog, f.Funcs, shard.WithIndexOptions(
		core.WithIndexFactory(func() core.AttrIndex { return hint.New(value.Compare) }),
		core.WithName("hint"),
	), shard.WithName("sharded-hint"))

	// Stable population: age-band predicates over emp. Probe tuples
	// carry age 0..99, so expected matches are derivable in closed form.
	const nStable = 60
	for i := 0; i < nStable; i++ {
		lo := int64(i)
		p := pred.New(markset.ID(i+1), "emp",
			pred.IvClause("age", interval.Closed(value.Int(lo), value.Int(lo+20))))
		if err := sm.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	wantFor := func(age int64) []markset.ID {
		var out []markset.ID
		for i := 0; i < nStable; i++ {
			lo := int64(i)
			if age >= lo && age <= lo+20 {
				out = append(out, markset.ID(i+1))
			}
		}
		return out
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				age := rng.Int63n(100)
				tup := tuple.Tuple{value.String_("x"), value.Int(age), value.Int(1), value.String_("d")}
				got, err := sm.Match("emp", tup, nil)
				if err != nil {
					t.Errorf("Match: %v", err)
					return
				}
				w := wantFor(age)
				if !equalIDs(got, w) {
					t.Errorf("torn snapshot: Match(age=%d) = %v, want %v", age, sorted(got), w)
					return
				}
			}
		}(int64(g))
	}
	// Writer: churn predicates on salary far above any probe tuple's
	// salary, forcing constant clone-rebuild-publish cycles.
	churnID := markset.ID(10_000)
	for r := 0; r < 200; r++ {
		p := pred.New(churnID, "emp",
			pred.IvClause("salary", interval.Closed(value.Int(1_000_000), value.Int(1_000_100))))
		if err := sm.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := sm.Remove(churnID); err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			break
		}
	}
	close(stop)
	wg.Wait()
}
