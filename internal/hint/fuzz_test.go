package hint_test

import (
	"testing"

	"predmatch/internal/hint"
	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
)

// fuzzState drives a HINT index and a direct-evaluation oracle from a
// byte stream, mirroring internal/ibs's op interpreter so the two fuzz
// corpora stress comparable shapes.
type fuzzState struct {
	ix    *hint.Index[int64]
	ref   map[markset.ID]interval.Interval[int64]
	live  []markset.ID
	next  markset.ID
	fatal func(format string, args ...any)
}

func newFuzzState(fatal func(string, ...any)) *fuzzState {
	return &fuzzState{
		ix:    hint.New(ivindex.Int64Cmp),
		ref:   make(map[markset.ID]interval.Interval[int64]),
		fatal: fatal,
	}
}

// step consumes one op descriptor. Values are reduced to a small domain
// so shared endpoints, duplicate intervals, and adjacent open/closed
// boundaries are common — exactly where slot-rank bookkeeping can slip.
func (fs *fuzzState) step(op, rawA, rawB uint8) {
	a, b := int64(rawA%40), int64(rawB%40)
	if a > b {
		a, b = b, a
	}
	switch op % 8 {
	case 0, 1, 2, 3: // insert
		var iv interval.Interval[int64]
		switch op % 4 {
		case 0:
			iv = interval.Point(a)
		case 1:
			iv = interval.Closed(a, b)
		case 2:
			if a == b {
				iv = interval.Point(a)
			} else {
				iv = interval.Open(a, b)
			}
		default:
			switch b % 3 {
			case 0:
				iv = interval.AtLeast(a)
			case 1:
				iv = interval.AtMost(a)
			default:
				iv = interval.All[int64]()
			}
		}
		id := fs.next
		fs.next++
		if err := fs.ix.Insert(id, iv); err != nil {
			fs.fatal("Insert(%d, %v): %v", id, iv, err)
			return
		}
		fs.ref[id] = iv
		fs.live = append(fs.live, id)
	case 4, 5: // delete
		if len(fs.live) == 0 {
			return
		}
		i := (int(rawA)*37 + int(rawB)) % len(fs.live)
		id := fs.live[i]
		fs.live = append(fs.live[:i], fs.live[i+1:]...)
		if err := fs.ix.Delete(id); err != nil {
			fs.fatal("Delete(%d): %v", id, err)
			return
		}
		delete(fs.ref, id)
	default: // stab probes around the drawn values and the domain edge
		for _, x := range []int64{a - 1, a, a + 1, b, 45} {
			got := sorted(fs.ix.Stab(x))
			want := sorted(naiveStab(fs.ref, x))
			if len(got) != len(want) {
				fs.fatal("Stab(%d) = %v, want %v", x, got, want)
				return
			}
			for i := range got {
				if got[i] != want[i] {
					fs.fatal("Stab(%d) = %v, want %v", x, got, want)
					return
				}
			}
		}
	}
}

// FuzzHINT feeds arbitrary insert/delete/stab interleavings through the
// index and the oracle. Run with `go test -fuzz FuzzHINT ./internal/hint`
// for open-ended exploration; the seed corpus runs in the normal suite.
func FuzzHINT(f *testing.F) {
	f.Add([]byte{0, 5, 9, 1, 3, 30, 4, 0, 0, 6, 5, 5})
	f.Add([]byte{3, 0, 0, 3, 1, 1, 3, 2, 2, 4, 9, 9, 6, 1, 2})
	f.Add([]byte{1, 10, 20, 1, 15, 25, 1, 5, 30, 4, 1, 1, 6, 18, 22})
	f.Add([]byte{2, 7, 7, 0, 7, 7, 4, 0, 0, 4, 0, 0, 6, 7, 7})
	f.Add([]byte{1, 0, 39, 2, 1, 38, 0, 20, 20, 6, 20, 20, 4, 3, 1, 6, 19, 21})
	f.Fuzz(func(t *testing.T, data []byte) {
		fatal := func(format string, args ...any) { t.Fatalf(format, args...) }
		fs := newFuzzState(fatal)
		for i := 0; i+2 < len(data) && i < 3*200; i += 3 {
			fs.step(data[i], data[i+1], data[i+2])
		}
		if err := fs.ix.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
	})
}
