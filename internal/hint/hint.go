// Package hint implements a HINT-style flat interval index (Christodoulou,
// Bouros & Mamoulis, "HINT: A Hierarchical Index for Intervals in Main
// Memory", SIGMOD 2022), adapted to this repository's dynamic stabbing
// contract and to arbitrary totally ordered domains.
//
// HINT partitions the value domain hierarchically: level l splits the
// domain into 2^l equal partitions, and every stored interval is
// registered at the O(log n) coarsest partitions that exactly cover it
// (its canonical hierarchical decomposition). A stabbing query touches
// exactly one partition per level — the partitions whose ranges contain
// the query point — so it reads m+1 contiguous id runs and performs no
// per-result comparison at all: every id found is an exact match.
//
// The paper's structure addresses a numeric domain directly with bit
// arithmetic. The predicate domain here is any ordered value.Value, so
// the index first reduces values to *slot ranks*: the sorted distinct
// finite endpoints of the stored intervals define 2k+1 elementary slots
// (each endpoint value is its own slot, flanked by the open gaps between
// adjacent endpoints and the two unbounded outer gaps). Slots are dense
// integers, the hierarchy is laid over the next power of two, and one
// O(log k) binary search per stab converts the probe value to its slot;
// everything after that search is branch-light integer arithmetic over
// two flat arrays.
//
// Layout: the whole hierarchy lives in two allocations —
//
//	ids    []ID     all registered (partition, id) entries, grouped by
//	                partition, levels concatenated bottom-up
//	starts []int32  CSR offsets; partition p of level l occupies
//	                ids[starts[g]:starts[g+1]] with g = levelBase[l] + p
//
// There are no per-node allocations and no pointers to chase: a stab is
// one binary search plus m+1 slice windows of a single backing array.
//
// Mutation model: the index is rebuilt, not incrementally maintained.
// Insert and Delete update a registry of live intervals and invalidate
// the built arrays; the next stab rebuilds them and publishes the result
// with an atomic store. This matches the repository's serving layer,
// which never mutates a published core.Index snapshot — writers clone
// and republish (internal/shard), so each snapshot's HINT arrays are
// built at most once, on first probe. Concurrent stabs of the same index
// are safe (the lazy build is guarded by a mutex and published
// atomically — a reader either sees nil and builds, or sees a fully
// built structure, never a torn one); mutation requires the same
// external serialization against readers as every other index here.
package hint

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// ID identifies an interval.
type ID = markset.ID

// Index is a dynamic stabbing index over domain T. Construct with New.
// The zero value is not usable.
type Index[T any] struct {
	cmp   interval.Cmp[T]
	items map[ID]interval.Interval[T]

	// built is the published flat hierarchy, nil after any mutation.
	// Readers load it atomically; buildMu serializes the rebuild so
	// concurrent first probes build once.
	buildMu sync.Mutex
	built   atomic.Pointer[built[T]] // write-guarded-by: buildMu
}

// built is one immutable flat hierarchy. It reflects the item set at
// build time and is never modified after the atomic publish.
type built[T any] struct {
	pts []T // sorted distinct finite endpoints (k values, 2k+1 slots)
	// leaves is the hierarchy width: the smallest power of two >= 2k+1.
	// levels is the number of levels (log2(leaves) + 1).
	leaves, levels int
	// levelBase[l] is the global partition index of level l's partition
	// 0. Level l holds leaves>>l partitions of 1<<l slots each.
	levelBase []int32
	starts    []int32
	ids       []ID
}

// New returns an empty index over the comparator's domain.
func New[T any](cmp interval.Cmp[T]) *Index[T] {
	return &Index[T]{cmp: cmp, items: make(map[ID]interval.Interval[T])}
}

// Len returns the number of stored intervals.
func (ix *Index[T]) Len() int { return len(ix.items) }

// Insert adds iv under id. Duplicate ids and malformed intervals are
// errors. The flat hierarchy is invalidated and rebuilt on next stab.
func (ix *Index[T]) Insert(id ID, iv interval.Interval[T]) error {
	if err := iv.Validate(ix.cmp); err != nil {
		return err
	}
	if _, dup := ix.items[id]; dup {
		return fmt.Errorf("hint: duplicate interval id %d", id)
	}
	ix.items[id] = iv
	ix.built.Store(nil) //predmatchvet:ignore guardedby mutation is externally serialized; no reader or builder runs concurrently
	return nil
}

// Delete removes the interval stored under id.
func (ix *Index[T]) Delete(id ID) error {
	if _, ok := ix.items[id]; !ok {
		return fmt.Errorf("hint: unknown interval id %d", id)
	}
	delete(ix.items, id)
	ix.built.Store(nil) //predmatchvet:ignore guardedby mutation is externally serialized; no reader or builder runs concurrently
	return nil
}

// Get returns the interval stored under id.
func (ix *Index[T]) Get(id ID) (interval.Interval[T], bool) {
	iv, ok := ix.items[id]
	return iv, ok
}

// Stab returns the ids of all intervals containing x.
func (ix *Index[T]) Stab(x T) []ID { return ix.StabAppend(x, nil) }

// StabAppend appends the ids of all intervals containing x to dst. Each
// matching id appears exactly once; order is unspecified. Safe for
// concurrent use with other StabAppend calls (not with mutation).
func (ix *Index[T]) StabAppend(x T, dst []ID) []ID {
	b := ix.load()
	s := b.slotOf(ix.cmp, x)
	for l := 0; l < b.levels; l++ {
		g := int(b.levelBase[l]) + (s >> l)
		lo, hi := b.starts[g], b.starts[g+1]
		dst = append(dst, b.ids[lo:hi]...)
	}
	return dst
}

// load returns the current flat hierarchy, building it if a mutation
// invalidated it. The double-checked build keeps concurrent readers
// from duplicating work and guarantees they only ever observe a fully
// constructed structure.
func (ix *Index[T]) load() *built[T] {
	if b := ix.built.Load(); b != nil {
		return b
	}
	ix.buildMu.Lock()
	defer ix.buildMu.Unlock()
	if b := ix.built.Load(); b != nil {
		return b
	}
	b := build(ix.cmp, ix.items)
	ix.built.Store(b)
	return b
}

// NodeCount returns the number of non-empty partitions of the current
// hierarchy (building it if needed) — the space quantity comparable to
// a tree's node count.
func (ix *Index[T]) NodeCount() int {
	b := ix.load()
	n := 0
	for g := 0; g+1 < len(b.starts); g++ {
		if b.starts[g] < b.starts[g+1] {
			n++
		}
	}
	return n
}

// MarkerCount returns the total number of (partition, id) registrations
// — HINT's analogue of the IBS-tree's marker count. Each interval
// contributes at most two registrations per level.
func (ix *Index[T]) MarkerCount() int { return len(ix.load().ids) }

// Height returns the number of hierarchy levels, the length of the
// root-to-leaf path a stab reads.
func (ix *Index[T]) Height() int { return ix.load().levels }

// build constructs the flat hierarchy for the item set.
func build[T any](cmp interval.Cmp[T], items map[ID]interval.Interval[T]) *built[T] {
	// Collect the sorted distinct finite endpoints.
	pts := make([]T, 0, 2*len(items))
	for _, iv := range items {
		if iv.Lo.Kind == interval.Finite {
			pts = append(pts, iv.Lo.Value)
		}
		if iv.Hi.Kind == interval.Finite {
			pts = append(pts, iv.Hi.Value)
		}
	}
	sort.Slice(pts, func(i, j int) bool { return cmp(pts[i], pts[j]) < 0 })
	dedup := pts[:0]
	for i, p := range pts {
		if i == 0 || cmp(dedup[len(dedup)-1], p) != 0 {
			dedup = append(dedup, p)
		}
	}
	pts = dedup

	slots := 2*len(pts) + 1
	leaves := 1
	for leaves < slots {
		leaves <<= 1
	}
	levels := bits.TrailingZeros(uint(leaves)) + 1

	b := &built[T]{pts: pts, leaves: leaves, levels: levels}
	b.levelBase = make([]int32, levels+1)
	for l := 0; l < levels; l++ {
		b.levelBase[l+1] = b.levelBase[l] + int32(leaves>>l)
	}
	parts := int(b.levelBase[levels])
	b.starts = make([]int32, parts+1)

	// Pass 1: count registrations per partition.
	for _, iv := range items {
		decompose(b, cmp, iv, func(g int) { b.starts[g+1]++ })
	}
	for g := 0; g < parts; g++ {
		b.starts[g+1] += b.starts[g]
	}
	// Pass 2: place ids using a moving cursor per partition.
	b.ids = make([]ID, b.starts[parts])
	cursor := make([]int32, parts)
	copy(cursor, b.starts[:parts])
	for id, iv := range items {
		decompose(b, cmp, iv, func(g int) {
			b.ids[cursor[g]] = id
			cursor[g]++
		})
	}
	return b
}

// decompose emits the canonical hierarchical decomposition of iv: the
// set of disjoint partitions, coarsest possible, whose slot ranges
// exactly cover the interval's slot range. emit receives global
// partition indexes. At most two partitions are emitted per level.
func decompose[T any](b *built[T], cmp interval.Cmp[T], iv interval.Interval[T], emit func(g int)) {
	lo, hi := b.slotRange(cmp, iv)
	if lo > hi {
		return // interval covers no slot (cannot happen for valid intervals)
	}
	for l := 0; lo <= hi; l++ {
		base := int(b.levelBase[l])
		if lo&1 == 1 {
			emit(base + lo)
			lo++
		}
		if hi&1 == 0 {
			emit(base + hi)
			hi--
		}
		lo >>= 1
		hi >>= 1
	}
}

// slotRange maps an interval to the inclusive range of elementary slots
// it covers. Slot 2i+1 is the single endpoint value pts[i]; slot 2i is
// the open gap below it (slot 0 the unbounded gap below pts[0], slot 2k
// the unbounded gap above pts[k-1]). Every stored interval's endpoints
// are in pts, so closedness maps exactly onto slot inclusion.
func (b *built[T]) slotRange(cmp interval.Cmp[T], iv interval.Interval[T]) (lo, hi int) {
	switch iv.Lo.Kind {
	case interval.NegInf:
		lo = 0
	default:
		i := b.rank(cmp, iv.Lo.Value)
		if iv.Lo.Closed {
			lo = 2*i + 1
		} else {
			lo = 2*i + 2
		}
	}
	switch iv.Hi.Kind {
	case interval.PosInf:
		hi = 2 * len(b.pts)
	default:
		i := b.rank(cmp, iv.Hi.Value)
		if iv.Hi.Closed {
			hi = 2*i + 1
		} else {
			hi = 2 * i
		}
	}
	return lo, hi
}

// rank returns the index of v in pts; v must be present (it is a stored
// endpoint).
func (b *built[T]) rank(cmp interval.Cmp[T], v T) int {
	return sort.Search(len(b.pts), func(i int) bool { return cmp(b.pts[i], v) >= 0 })
}

// slotOf maps a probe value to its elementary slot: the endpoint slot
// 2i+1 when x equals pts[i], otherwise the gap slot below the first
// endpoint above x.
func (b *built[T]) slotOf(cmp interval.Cmp[T], x T) int {
	i := sort.Search(len(b.pts), func(i int) bool { return cmp(b.pts[i], x) >= 0 })
	if i < len(b.pts) && cmp(b.pts[i], x) == 0 {
		return 2*i + 1
	}
	return 2 * i
}

// CheckInvariants validates the built structure against the item
// registry: CSR offsets are monotone, every registration's partition
// range is covered by its interval, and every item's registration count
// matches its canonical decomposition. Intended for tests and the fuzz
// target.
func (ix *Index[T]) CheckInvariants() error {
	b := ix.load()
	for g := 0; g+1 < len(b.starts); g++ {
		if b.starts[g] > b.starts[g+1] {
			return fmt.Errorf("hint: CSR offsets not monotone at partition %d", g)
		}
	}
	if int(b.starts[len(b.starts)-1]) != len(b.ids) {
		return fmt.Errorf("hint: CSR tail %d != ids length %d", b.starts[len(b.starts)-1], len(b.ids))
	}
	counts := make(map[ID]int, len(ix.items))
	for _, id := range b.ids {
		counts[id]++
		if _, live := ix.items[id]; !live {
			return fmt.Errorf("hint: registration for dead interval %d", id)
		}
	}
	for id, iv := range ix.items {
		want := 0
		decompose(b, ix.cmp, iv, func(int) { want++ })
		if counts[id] != want {
			return fmt.Errorf("hint: interval %d has %d registrations, want %d", id, counts[id], want)
		}
	}
	return nil
}
