package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// RegisterRuntime exports a small set of Go runtime gauges on reg:
// build identity, process start time, goroutine count, heap in use,
// total GC pauses and process uptime. ReadMemStats costs a brief
// stop-the-world, which is paid per scrape, not per request.
func RegisterRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	start := time.Now()
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	registerBuildInfo(reg, version, runtime.Version(), start)
	reg.GaugeFunc("predmatch_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("predmatch_uptime_seconds",
		"Seconds since the registry was initialized.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("predmatch_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("predmatch_gc_pause_total_seconds",
		"Cumulative GC stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}

// registerBuildInfo exports the identity series: a constant-1
// predmatch_build_info gauge carrying the version labels, and the
// process start time as unix seconds — the pair Prometheus tooling
// expects for deployment tracking and server-side uptime. Split from
// RegisterRuntime so the exposition golden test can pin the shape with
// fixed values.
func registerBuildInfo(reg *Registry, version, goVersion string, start time.Time) {
	reg.GaugeSet("predmatch_build_info",
		"Build identity of the running binary; the value is always 1.",
		[]string{"version", "go_version"}, func(emit Emit) {
			emit(1, version, goVersion)
		})
	reg.GaugeFunc("predmatch_process_start_time_seconds",
		"Unix time the process started.",
		func() float64 { return float64(start.Unix()) })
}
