package obs

import (
	"runtime"
	"time"
)

// RegisterRuntime exports a small set of Go runtime gauges on reg:
// goroutine count, heap in use, total GC pauses and process uptime.
// ReadMemStats costs a brief stop-the-world, which is paid per scrape,
// not per request.
func RegisterRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	start := time.Now()
	reg.GaugeFunc("predmatch_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("predmatch_uptime_seconds",
		"Seconds since the registry was initialized.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("predmatch_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	reg.GaugeFunc("predmatch_gc_pause_total_seconds",
		"Cumulative GC stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
}
