package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// metric type discriminators, matching the Prometheus TYPE names.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Emit is the callback handed to GaugeSet collectors: call it once per
// sample, with the label values in registration order.
type Emit func(v float64, labelValues ...string)

// family is one registered metric name: its metadata plus the children
// (one per distinct label-value combination).
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // guarded-by: mu (→ *Counter, *Gauge or *Histogram)

	// Callback families (GaugeFunc/GaugeSet/CounterFunc) have no
	// children; they are sampled at exposition time instead.
	fn    func(Emit)
	fnInt func() uint64 // CounterFunc fast form
}

// child returns (creating on first use) the sample for one
// label-value combination.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s has %d labels, got %d values",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.typ {
	case typeCounter:
		c = NewCounter()
	case typeGauge:
		c = NewGauge()
	case typeHistogram:
		c = NewHistogram(f.bounds...)
	}
	f.children[key] = c
	return c
}

// Registry holds metric families and renders them. The zero value is
// not useful — construct with NewRegistry. A nil *Registry is the
// disabled registry: every constructor returns a nil handle, whose
// methods all no-op.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family // guarded-by: mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// register installs (or retrieves, when name is already present with
// identical shape) a family. Conflicting re-registration panics: metric
// names are program constants and a clash is a programmer error.
func (r *Registry) register(name, help, typ string, labels []string, bounds []float64, fn func(Emit), fnInt func() uint64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || f.fn != nil || fn != nil || f.fnInt != nil || fnInt != nil {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]any),
		fn:       fn,
		fnInt:    fnInt,
	}
	sort.Float64s(f.bounds)
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeCounter, nil, nil, nil, nil).child(nil).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, typeCounter, labels, nil, nil, nil)}
}

// CounterFunc registers a counter sampled from fn at exposition time —
// for code that already maintains its own atomic counter.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(name, help, typeCounter, nil, nil, nil, fn)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, typeGauge, nil, nil, nil, nil).child(nil).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, typeGauge, labels, nil, nil, nil)}
}

// GaugeFunc registers a gauge sampled from fn at exposition time. Use
// it for quantities that are cheap to compute on demand but would cost
// hot-path updates to maintain (queue depths, map sizes).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, typeGauge, nil, nil, func(emit Emit) { emit(fn()) }, nil)
}

// GaugeSet registers a labeled gauge family collected by callback: at
// exposition time fn is invoked and emits any number of samples. This
// is how per-relation index statistics (tree nodes, marker counts, …)
// are exported without touching the match path at all.
func (r *Registry) GaugeSet(name, help string, labels []string, fn func(Emit)) {
	if r == nil {
		return
	}
	r.register(name, help, typeGauge, labels, nil, fn, nil)
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given bucket upper bounds (DefBuckets when empty).
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return r.register(name, help, typeHistogram, nil, bounds, nil, nil).child(nil).(*Histogram)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels, bounds, nil, nil)}
}

// CounterVec is a labeled counter family. With resolves one child;
// resolve once and keep the handle on hot paths.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (nil on a nil
// vec, so the disabled path stays allocation-free).
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Gauge)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Histogram)
}

// sample is one rendered child, collected under the family mutex and
// rendered outside it.
type sample struct {
	labelValues []string
	value       float64   // counter/gauge
	counts      []uint64  // histogram buckets (non-cumulative, +Inf last)
	sum         float64   // histogram
	hist        bool
}

// collect snapshots one family's samples in deterministic order.
func (f *family) collect() []sample {
	if f.fnInt != nil {
		return []sample{{value: float64(f.fnInt())}}
	}
	if f.fn != nil {
		var out []sample
		f.fn(func(v float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("obs: metric %s emit with %d label values, want %d",
					f.name, len(labelValues), len(f.labels)))
			}
			out = append(out, sample{labelValues: append([]string(nil), labelValues...), value: v})
		})
		sort.Slice(out, func(i, j int) bool {
			return lessStrings(out[i].labelValues, out[j].labelValues)
		})
		return out
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]sample, 0, len(keys))
	for _, k := range keys {
		var lv []string
		if len(f.labels) > 0 {
			lv = strings.Split(k, "\xff")
		}
		s := sample{labelValues: lv}
		switch c := f.children[k].(type) {
		case *Counter:
			s.value = float64(c.Value())
		case *Gauge:
			s.value = float64(c.Value())
		case *Histogram:
			s.hist = true
			s.counts, s.sum = c.snapshot()
		}
		out = append(out, s)
	}
	f.mu.Unlock()
	return out
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if i >= len(b) || a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			return true
		}
	}
	return len(a) < len(b)
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// escapeLabel escapes a label value per the Prometheus text format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)

// labelString renders {k="v",...}; empty when there are no labels.
// extra appends one more pair (the histogram "le" label).
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: integers
// without a decimal point, +Inf for the last histogram bound.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4), families and samples in
// deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.families() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.collect() {
			if !s.hist {
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					f.name, labelString(f.labels, s.labelValues, "", ""), formatValue(s.value)); err != nil {
					return err
				}
				continue
			}
			var cum uint64
			for i, c := range s.counts {
				cum += c
				le := "+Inf"
				if i < len(f.bounds) {
					le = formatValue(f.bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, labelString(f.labels, s.labelValues, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n",
				f.name, labelString(f.labels, s.labelValues, "", ""), s.sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
				f.name, labelString(f.labels, s.labelValues, "", ""), cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// JSON snapshot types (the /varz form).
type jsonBucket struct {
	LE    any    `json:"le"` // float bound or the string "+Inf"
	Count uint64 `json:"count"`
}

type jsonSample struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
}

type jsonFamily struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help,omitempty"`
	Samples []jsonSample `json:"samples"`
}

// WriteJSON renders the same snapshot as WritePrometheus in a JSON
// form (the daemon's /varz endpoint), cumulative bucket counts and all.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{\"metrics\":[]}\n")
		return err
	}
	var fams []jsonFamily
	for _, f := range r.families() {
		jf := jsonFamily{Name: f.name, Type: f.typ, Help: f.help, Samples: []jsonSample{}}
		for _, s := range f.collect() {
			js := jsonSample{}
			if len(f.labels) > 0 {
				js.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					js.Labels[n] = s.labelValues[i]
				}
			}
			if s.hist {
				var cum uint64
				for i, c := range s.counts {
					cum += c
					le := any("+Inf")
					if i < len(f.bounds) {
						le = f.bounds[i]
					}
					js.Buckets = append(js.Buckets, jsonBucket{LE: le, Count: cum})
				}
				sum := s.sum
				js.Count, js.Sum = &cum, &sum
			} else {
				v := s.value
				js.Value = &v
			}
			jf.Samples = append(jf.Samples, js)
		}
		fams = append(fams, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonFamily `json:"metrics"`
	}{Metrics: fams})
}
