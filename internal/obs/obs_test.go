package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

// TestNilHandles pins the disabled-registry contract: every method of
// every handle type must be a no-op on nil, so uninstrumented library
// users pay nothing and crash never.
func TestNilHandles(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Error("nil counter Value != 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Error("nil gauge Value != 0")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram not empty")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("nil histogram Quantile != NaN")
	}

	var r *Registry
	if r.Counter("x", "") != nil {
		t.Error("nil registry Counter != nil")
	}
	if r.Gauge("x", "") != nil {
		t.Error("nil registry Gauge != nil")
	}
	if r.Histogram("x", "") != nil {
		t.Error("nil registry Histogram != nil")
	}
	r.GaugeFunc("x", "", func() float64 { return 0 })
	r.CounterFunc("x", "", func() uint64 { return 0 })
	r.GaugeSet("x", "", nil, func(Emit) {})
	if r.CounterVec("x", "", "l").With("v") != nil {
		t.Error("nil registry CounterVec child != nil")
	}
	if r.GaugeVec("x", "", "l").With("v") != nil {
		t.Error("nil registry GaugeVec child != nil")
	}
	if r.HistogramVec("x", "", nil, "l").With("v") != nil {
		t.Error("nil registry HistogramVec child != nil")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Errorf("nil registry WriteJSON: %v", err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 2, 5)
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	counts, sum := h.snapshot()
	want := []uint64{2, 2, 1, 1} // le=1: {0.5,1}; le=2: {1.5,2}; le=5: {3}; +Inf: {100}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, counts[i], w)
		}
	}
	if sum != 108 {
		t.Errorf("sum = %g, want 108", sum)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(1, 2, 10)...) // 1,2,4,...,512
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i % 100))
	}
	// The true p50 is ~50; the estimate must land inside the bucket
	// (32, 64] that holds the median rank.
	if q := h.Quantile(0.5); q < 32 || q > 64 {
		t.Errorf("p50 = %g, want within (32, 64]", q)
	}
	if q := h.Quantile(0.99); q < 64 || q > 128 {
		t.Errorf("p99 = %g, want within (64, 128]", q)
	}
	empty := NewHistogram(1, 2)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram Quantile != NaN")
	}
}

func TestVecHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("predmatch_test_total", "help", "op")
	a, b := v.With("match"), v.With("match")
	if a != b {
		t.Fatal("With returned distinct children for identical labels")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("children not shared")
	}
	if v.With("insert") == a {
		t.Fatal("distinct labels share a child")
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	if r.Counter("dup_total", "h") != r.Counter("dup_total", "h") {
		t.Fatal("re-registering an identical counter did not return the same handle")
	}
	mustPanic(t, func() { r.Gauge("dup_total", "h") })
	mustPanic(t, func() { r.Counter("bad name", "h") })
	mustPanic(t, func() { r.CounterVec("ok_total", "h", "bad label") })
	v := r.CounterVec("labeled_total", "h", "a", "b")
	mustPanic(t, func() { v.With("only-one") })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}

func TestGaugeSetAndFuncs(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("simple", "h", func() float64 { return 2.5 })
	r.CounterFunc("derived_total", "h", func() uint64 { return 7 })
	r.GaugeSet("per_rel", "h", []string{"rel"}, func(emit Emit) {
		emit(3, "emp")
		emit(1, "dept")
	})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"simple 2.5\n",
		"derived_total 7\n",
		`per_rel{rel="dept"} 1` + "\n",
		`per_rel{rel="emp"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("esc", "h", "v").With("a\"b\\c\nd").Set(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc{v="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("got %q, want substring %q", buf.String(), want)
	}
}

// TestWriteJSON checks the /varz form round-trips through encoding/json
// and carries histogram buckets cumulatively.
func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help a").Add(3)
	h := r.Histogram("lat_seconds", "latency", 1, 2)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string `json:"name"`
			Type    string `json:"type"`
			Samples []struct {
				Value   *float64 `json:"value"`
				Count   *uint64  `json:"count"`
				Sum     *float64 `json:"sum"`
				Buckets []struct {
					LE    any    `json:"le"`
					Count uint64 `json:"count"`
				} `json:"buckets"`
			} `json:"samples"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metric families, want 2", len(doc.Metrics))
	}
	// Sorted by name: a_total first.
	if doc.Metrics[0].Name != "a_total" || *doc.Metrics[0].Samples[0].Value != 3 {
		t.Errorf("a_total sample wrong: %+v", doc.Metrics[0])
	}
	hs := doc.Metrics[1].Samples[0]
	if *hs.Count != 3 || *hs.Sum != 101 {
		t.Errorf("histogram count/sum = %d/%g, want 3/101", *hs.Count, *hs.Sum)
	}
	if len(hs.Buckets) != 3 || hs.Buckets[2].Count != 3 || hs.Buckets[2].LE != "+Inf" {
		t.Errorf("histogram buckets wrong: %+v", hs.Buckets)
	}
}
