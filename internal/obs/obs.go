// Package obs is the repository's telemetry layer: dependency-free
// (stdlib only, like internal/analysis) metric primitives — atomic
// Counter, Gauge and fixed-bucket Histogram — plus a Registry that
// exposes them in Prometheus text format and as a JSON snapshot.
//
// The paper's empirical case (Section 5.2, Figures 7–9) is built on
// counting comparisons and measuring match latency as N and L grow;
// this package makes those quantities observable on a live daemon
// instead of only in offline benchmarks. See docs/OBSERVABILITY.md for
// the catalogue of metrics the rest of the repository registers.
//
// # Disabled-by-default contract
//
// Instrumentation must cost nothing when nobody asked for it. Every
// hot-path method (Counter.Add, Gauge.Set, Histogram.Observe, ...) is
// safe on a nil receiver and returns immediately, and every Registry
// constructor method on a nil *Registry returns a nil handle. A
// library user who never wires a Registry therefore pays one nil check
// per instrumentation point — no atomics, no allocation, no locks.
//
// # Concurrency
//
// All metric types are safe for concurrent use. Counters and
// histograms are striped across cache-line-padded cells so that
// concurrent writers (the sharded matcher runs one goroutine per
// core) do not serialize on a single cache line; readers sum the
// stripes. Float sums use compare-and-swap on the bit pattern, which
// under striping almost always succeeds on the first attempt. Handle
// lookup (the *Vec types' With) takes a mutex and allocates a key —
// callers on hot paths resolve their handles once, up front, and keep
// them.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"
)

// numStripes spreads hot-path atomic updates across cache lines. A
// power of two (the stripe pick is a mask) sized to cover typical
// core counts without bloating per-metric memory (~1 KiB a counter).
const numStripes = 8

// stripeIdx picks the stripe for this call by hashing the goroutine's
// stack address (stacks are allocated in distinct 8 KiB blocks).
// Affinity, not balance, is what matters: a goroutine that keeps
// hitting the same stripe keeps the cache line in its own core, so
// the stripe update is an uncontended L1 add instead of a bounced
// one. Random picks would land on lines other cores just wrote. If
// the stack grows or moves the goroutine simply adopts a new stripe;
// totals are unaffected.
func stripeIdx() uint32 {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	return uint32((p>>13)*0x9E3779B1>>24) & (numStripes - 1)
}

// counterCell is one stripe of a Counter, padded to its own cache
// line (128 bytes covers spatial prefetcher pairing on amd64).
type counterCell struct {
	n atomic.Uint64
	_ [120]byte
}

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter discards all updates.
type Counter struct {
	cells [numStripes]counterCell
}

// NewCounter returns a standalone counter (not attached to a
// registry; use Registry.Counter for an exported one).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.cells[stripeIdx()].n.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[stripeIdx()].n.Add(n)
}

// Value returns the current count (0 on a nil counter). Stripe loads
// are not fenced against concurrent Adds; the total may trail
// in-flight updates, which is fine for monitoring.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for i := range c.cells {
		n += c.cells[i].n.Load()
	}
	return n
}

// Gauge is a value that can go up and down. The zero value is ready to
// use; a nil *Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are latency buckets in seconds, spanning 50µs–10s: wide
// enough for a network round trip, fine enough near the bottom to
// resolve the paper's "2.1 msec" whole-scheme cost model.
var DefBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 10,
}

// ExponentialBuckets returns n buckets starting at start, each factor
// times the previous (for size-like distributions).
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// histStripe is one stripe of a Histogram: its own bucket array
// (separately allocated, so stripes never share bucket cache lines)
// and float sum. The pad keeps adjacent stripes' sums apart.
type histStripe struct {
	sumBits atomic.Uint64 // float64 bit pattern, CAS-updated
	counts  []atomic.Uint64
	_       [96]byte
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics: bucket i counts observations <= bounds[i], plus an
// implicit +Inf bucket. Recording is one atomic add on a striped
// bucket and one CAS on the stripe's float sum; a nil *Histogram
// discards observations.
type Histogram struct {
	bounds  []float64
	stripes [numStripes]histStripe // counts are len(bounds)+1; last is +Inf
}

// NewHistogram returns a standalone histogram with the given ascending
// bucket upper bounds (+Inf is always added implicitly).
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Uint64, len(bs)+1)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Smallest bucket whose bound is >= v; everything past the finite
	// bounds lands in +Inf. Bucket counts are the small fixed per-metric
	// cost; the search is over ~16 bounds.
	i := sort.SearchFloat64s(h.bounds, v)
	s := &h.stripes[stripeIdx()]
	s.counts[i].Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	counts, _ := h.snapshot()
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	_, sum := h.snapshot()
	return sum
}

// snapshot returns per-bucket (non-cumulative) counts and the sum,
// aggregated across stripes. The loads are not fenced against
// concurrent Observe calls; totals may be off by in-flight
// observations, which is fine for monitoring.
func (h *Histogram) snapshot() (counts []uint64, sum float64) {
	counts = make([]uint64, len(h.bounds)+1)
	for i := range h.stripes {
		s := &h.stripes[i]
		for j := range s.counts {
			counts[j] += s.counts[j].Load()
		}
		sum += math.Float64frombits(s.sumBits.Load())
	}
	return counts, sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank, the same
// estimate Prometheus's histogram_quantile computes. Returns NaN on an
// empty (or nil) histogram. Values in the +Inf bucket clamp to the
// largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	counts, _ := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket
			if len(h.bounds) == 0 {
				return math.NaN()
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}
