package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentRegistry hammers one registry from many goroutines —
// handle resolution, every update kind, and concurrent exposition —
// and then checks the totals. Run with -race: the package's whole
// value is that the match path can update these types lock-free.
func TestConcurrentRegistry(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	r := NewRegistry()
	c := r.Counter("storm_total", "")
	g := r.Gauge("storm_gauge", "")
	h := r.Histogram("storm_seconds", "", 0.25, 0.5, 1)
	cv := r.CounterVec("storm_by_op_total", "", "op")
	hv := r.HistogramVec("storm_lat_seconds", "", []float64{1, 2}, "rel")
	r.GaugeFunc("storm_func", "", func() float64 { return 1 })
	r.GaugeSet("storm_set", "", []string{"k"}, func(emit Emit) { emit(1, "a") })

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := fmt.Sprintf("op%d", i%4)
			// Resolve mid-storm too: With must be safe concurrently
			// with other With calls and with exposition.
			cc := cv.With(op)
			hh := hv.With("emp")
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j%4) / 4)
				cc.Inc()
				hh.Observe(float64(j % 3))
			}
		}(i)
	}
	// Scrape concurrently with the writers.
	var scrape sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		scrape.Add(1)
		go func() {
			defer scrape.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				if err := r.WriteJSON(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrape.Wait()

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var byOp uint64
	for i := 0; i < 4; i++ {
		byOp += cv.With(fmt.Sprintf("op%d", i)).Value()
	}
	if byOp != total {
		t.Errorf("counter vec total = %d, want %d", byOp, total)
	}
	if got := hv.With("emp").Count(); got != total {
		t.Errorf("histogram vec count = %d, want %d", got, total)
	}
	// The float-sum CAS must not lose updates: each goroutine observed
	// perG values of mean 0.375 into h.
	if want := float64(total) * 0.375; h.Sum() != want {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), want)
	}
}
