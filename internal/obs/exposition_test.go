package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestExpositionGolden pins the exact Prometheus text format the
// registry emits (same pattern as cmd/benchjson/testdata): scrapers
// and the CI curl assertions depend on this shape, so it must not
// drift silently. Regenerate with `go test ./internal/obs -update`.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("predmatch_ibs_nodes_visited_total",
		"IBS-tree nodes visited by stabbing queries.").Add(1234)
	g := r.Gauge("predmatch_active_connections", "Open client connections.")
	g.Set(3)
	r.GaugeSet("predmatch_shard_predicates",
		"Predicates per relation shard.", []string{"rel"}, func(emit Emit) {
			emit(200, "emp")
			emit(17, "dept")
		})
	v := r.CounterVec("predmatch_rule_firings_total",
		"Rule activations by rule name.", "rule")
	v.With("band").Add(9)
	v.With("senior").Add(2)
	h := r.HistogramVec("predmatch_match_latency_seconds",
		"Match latency per relation.", []float64{0.001, 0.01, 0.1}, "rel")
	emp := h.With("emp")
	emp.Observe(0.0005)
	emp.Observe(0.0005)
	emp.Observe(0.05)
	emp.Observe(2)
	r.CounterFunc("predmatch_notify_dropped_total",
		"Notifications dropped by the overflow policy.", func() uint64 { return 42 })
	// Fixed values stand in for what RegisterRuntime derives from
	// debug.ReadBuildInfo and the process clock.
	registerBuildInfo(r, "v0.9.0", "go1.99.7", time.Unix(1700000000, 0))

	var got bytes.Buffer
	if err := r.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("exposition differs from %s:\ngot:\n%s\nwant:\n%s", golden, got.Bytes(), want)
	}
}
