package storage

import (
	"predmatch/internal/btree"
	"predmatch/internal/interval"
	"predmatch/internal/value"
)

// AttrStats maintains per-attribute statistics used by the optimizer's
// selectivity estimation: row count, minimum, maximum, and the number of
// distinct values. Distinct values are tracked exactly in an ordered
// multiset (a B+-tree of value -> occurrence count), which also yields
// min and max under deletion.
type AttrStats struct {
	count    int
	distinct *btree.Map[value.Value, int]
}

func newAttrStats() *AttrStats {
	return &AttrStats{distinct: btree.New[value.Value, int](value.Compare)}
}

func (s *AttrStats) add(v value.Value) {
	s.count++
	n, _ := s.distinct.Get(v)
	s.distinct.Put(v, n+1)
}

func (s *AttrStats) remove(v value.Value) {
	s.count--
	n, ok := s.distinct.Get(v)
	if !ok {
		return
	}
	if n <= 1 {
		s.distinct.Delete(v)
	} else {
		s.distinct.Put(v, n-1)
	}
}

// Count returns the number of stored values (the relation cardinality).
func (s *AttrStats) Count() int { return s.count }

// Distinct returns the number of distinct values.
func (s *AttrStats) Distinct() int { return s.distinct.Len() }

// Min returns the smallest stored value.
func (s *AttrStats) Min() (value.Value, bool) {
	k, _, ok := s.distinct.Min()
	return k, ok
}

// Max returns the largest stored value.
func (s *AttrStats) Max() (value.Value, bool) {
	k, _, ok := s.distinct.Max()
	return k, ok
}

// Fraction returns the fraction of stored values lying within iv,
// computed exactly from the value multiset. The optimizer uses this when
// statistics exist and falls back to System R default selectivities
// otherwise (see internal/selectivity).
func (s *AttrStats) Fraction(iv interval.Interval[value.Value]) float64 {
	if s.count == 0 {
		return 0
	}
	matched := 0
	s.distinct.AscendRange(iv, func(_ value.Value, n int) bool {
		matched += n
		return true
	})
	return float64(matched) / float64(s.count)
}
