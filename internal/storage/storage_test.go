package storage

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func empRel() *schema.Relation {
	return schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt},
	)
}

func empT(name string, age, salary int64) tuple.Tuple {
	return tuple.New(value.String_(name), value.Int(age), value.Int(salary))
}

func TestCreateRelation(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateRelation(empRel())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Relation().Name() != "emp" {
		t.Fatal("wrong relation")
	}
	if _, err := db.CreateRelation(empRel()); err == nil {
		t.Error("duplicate relation accepted")
	}
	got, ok := db.Table("emp")
	if !ok || got != tab {
		t.Error("Table lookup failed")
	}
	if _, ok := db.Table("nosuch"); ok {
		t.Error("Table found missing relation")
	}
	if db.Catalog().Len() != 1 {
		t.Error("catalog not updated")
	}
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateRelation(empRel())
	id, err := tab.Insert(empT("alice", 30, 100))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	row, ok := tab.Get(id)
	if !ok || row[0].AsString() != "alice" {
		t.Fatalf("Get = %v, %v", row, ok)
	}
	if err := tab.Update(id, empT("alice", 31, 120)); err != nil {
		t.Fatal(err)
	}
	row, _ = tab.Get(id)
	if row[1].AsInt() != 31 {
		t.Fatal("update not applied")
	}
	if err := tab.Update(999, empT("x", 1, 1)); err == nil {
		t.Error("update of missing tuple accepted")
	}
	if err := tab.Delete(id); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 0 {
		t.Fatal("delete not applied")
	}
	if err := tab.Delete(id); err == nil {
		t.Error("double delete accepted")
	}
	// Malformed tuples rejected.
	if _, err := tab.Insert(tuple.New(value.Int(1))); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestInsertIsolation(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateRelation(empRel())
	row := empT("alice", 30, 100)
	id, _ := tab.Insert(row)
	row[1] = value.Int(99) // caller mutates its slice afterwards
	got, _ := tab.Get(id)
	if got[1].AsInt() != 30 {
		t.Fatal("Insert did not copy the tuple")
	}
}

func TestObservers(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateRelation(empRel())
	var events []Event
	db.Observe(func(ev Event) error {
		events = append(events, ev)
		return nil
	})
	id, _ := tab.Insert(empT("a", 1, 2))
	_ = tab.Update(id, empT("a", 2, 3))
	_ = tab.Delete(id)
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Op != OpInsert || events[0].New == nil || events[0].Old != nil {
		t.Errorf("insert event wrong: %+v", events[0])
	}
	if events[1].Op != OpUpdate || events[1].New == nil || events[1].Old == nil {
		t.Errorf("update event wrong: %+v", events[1])
	}
	if events[2].Op != OpDelete || events[2].New != nil || events[2].Old == nil {
		t.Errorf("delete event wrong: %+v", events[2])
	}
	for _, ev := range events {
		if ev.Rel != "emp" || ev.ID != id {
			t.Errorf("event metadata wrong: %+v", ev)
		}
	}
	// Observer errors propagate.
	db.Observe(func(ev Event) error { return fmt.Errorf("boom") })
	if _, err := tab.Insert(empT("b", 1, 2)); err == nil {
		t.Error("observer error not propagated")
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateRelation(empRel())
	// Insert before creating the index: existing rows must be indexed.
	ids := make([]tuple.ID, 0)
	for i := int64(0); i < 20; i++ {
		id, _ := tab.Insert(empT(fmt.Sprintf("e%d", i), 20+i, i*10))
		ids = append(ids, id)
	}
	if err := tab.CreateIndex("age"); err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("age"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := tab.CreateIndex("nosuch"); err == nil {
		t.Error("index on missing attribute accepted")
	}
	if !tab.HasIndex("age") || tab.HasIndex("salary") {
		t.Error("HasIndex wrong")
	}
	if got := tab.IndexedAttrs(); !reflect.DeepEqual(got, []string{"age"}) {
		t.Errorf("IndexedAttrs = %v", got)
	}

	scan := func(iv interval.Interval[value.Value]) []int64 {
		var out []int64
		ok := tab.ScanIndex("age", iv, func(_ tuple.ID, row tuple.Tuple) bool {
			out = append(out, row[1].AsInt())
			return true
		})
		if !ok {
			t.Fatal("ScanIndex reported no index")
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	got := scan(interval.Closed(value.Int(25), value.Int(28)))
	if !reflect.DeepEqual(got, []int64{25, 26, 27, 28}) {
		t.Fatalf("scan = %v", got)
	}
	// Updates move index entries.
	_ = tab.Update(ids[0], empT("e0", 27, 0))
	got = scan(interval.Point(value.Int(27)))
	if !reflect.DeepEqual(got, []int64{27, 27}) {
		t.Fatalf("scan after update = %v", got)
	}
	// Deletes remove index entries.
	_ = tab.Delete(ids[7]) // age 27
	_ = tab.Delete(ids[0]) // age 27 (updated)
	got = scan(interval.Point(value.Int(27)))
	if len(got) != 0 {
		t.Fatalf("scan after delete = %v", got)
	}
	// ScanIndex on unindexed attribute reports false.
	if tab.ScanIndex("salary", interval.All[value.Value](), func(tuple.ID, tuple.Tuple) bool { return true }) {
		t.Error("ScanIndex on unindexed attribute returned true")
	}
}

func TestStats(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateRelation(empRel())
	for i := int64(0); i < 10; i++ {
		_, _ = tab.Insert(empT("x", i%5, i*10)) // ages 0..4 twice
	}
	st := tab.Stats("age")
	if st == nil {
		t.Fatal("Stats nil")
	}
	if st.Count() != 10 || st.Distinct() != 5 {
		t.Fatalf("Count/Distinct = %d/%d", st.Count(), st.Distinct())
	}
	mn, _ := st.Min()
	mx, _ := st.Max()
	if mn.AsInt() != 0 || mx.AsInt() != 4 {
		t.Fatalf("Min/Max = %v/%v", mn, mx)
	}
	if f := st.Fraction(interval.Closed(value.Int(0), value.Int(1))); f != 0.4 {
		t.Fatalf("Fraction = %v, want 0.4", f)
	}
	if f := st.Fraction(interval.AtLeast(value.Int(100))); f != 0 {
		t.Fatalf("Fraction above max = %v", f)
	}
	if tab.Stats("nosuch") != nil {
		t.Error("Stats for missing attribute non-nil")
	}
	// Stats shrink on delete.
	var first tuple.ID
	tab.Scan(func(id tuple.ID, _ tuple.Tuple) bool { first = id; return false })
	_ = tab.Delete(first)
	if st.Count() != 9 {
		t.Fatalf("Count after delete = %d", st.Count())
	}
	// Empty stats.
	empty := tab.Stats("name")
	_ = empty
}

func TestScanEarlyStop(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateRelation(empRel())
	for i := int64(0); i < 10; i++ {
		_, _ = tab.Insert(empT("x", i, i))
	}
	count := 0
	tab.Scan(func(tuple.ID, tuple.Tuple) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("Scan early stop visited %d", count)
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpUpdate.String() != "update" || OpDelete.String() != "delete" {
		t.Fatal("Op.String wrong")
	}
	if Op(99).String() != "?" {
		t.Fatal("unknown Op.String wrong")
	}
}
