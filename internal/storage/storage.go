// Package storage is the main-memory relational store underneath the
// rule system: typed relations, secondary B+-tree indexes per attribute,
// and per-attribute statistics for the optimizer's selectivity estimates
// (the paper obtains clause selectivities "from the query optimizer").
//
// The statistics follow the System R tradition (Selinger et al. 1979,
// which the paper's physical-locking baseline builds on): row count,
// minimum, maximum and an approximate distinct count per attribute, with
// uniformity assumed between min and max.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"predmatch/internal/btree"
	"predmatch/internal/interval"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Op is the kind of a change event.
type Op uint8

const (
	// OpInsert is the insertion of a new tuple.
	OpInsert Op = iota
	// OpUpdate is the modification of an existing tuple.
	OpUpdate
	// OpDelete is the removal of a tuple.
	OpDelete
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return "?"
	}
}

// Event describes one tuple change; the rule engine subscribes to these.
type Event struct {
	Rel string
	Op  Op
	ID  tuple.ID
	Old tuple.Tuple // nil for inserts
	New tuple.Tuple // nil for deletes
}

// Observer receives change events after they are applied.
type Observer func(Event) error

// DB is a main-memory database instance.
type DB struct {
	mu        sync.RWMutex
	catalog   *schema.Catalog
	tables    map[string]*Table
	observers []Observer
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		catalog: schema.NewCatalog(),
		tables:  make(map[string]*Table),
	}
}

// Catalog returns the schema catalog.
func (db *DB) Catalog() *schema.Catalog { return db.catalog }

// Observe registers an observer called after every applied change. An
// observer error aborts the mutating call after the change is applied
// (rule actions may fail; the storage change itself is kept).
func (db *DB) Observe(obs Observer) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.observers = append(db.observers, obs)
}

// CreateRelation registers a schema and creates its (empty) table.
func (db *DB) CreateRelation(rel *schema.Relation) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.catalog.Add(rel); err != nil {
		return nil, err
	}
	t := newTable(db, rel)
	db.tables[rel.Name()] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// notify delivers an event to all observers.
func (db *DB) notify(ev Event) error {
	for _, obs := range db.observers {
		if err := obs(ev); err != nil {
			return err
		}
	}
	return nil
}

// idSet is the posting set of a secondary index entry.
type idSet map[tuple.ID]struct{}

// Index is a secondary index on one attribute: value -> set of tuple IDs.
type Index struct {
	Attr string
	pos  int
	tree *btree.Map[value.Value, idSet]
}

// Table holds the tuples of one relation plus indexes and statistics.
type Table struct {
	db      *DB
	rel     *schema.Relation
	rows    map[tuple.ID]tuple.Tuple
	nextID  tuple.ID
	indexes map[string]*Index
	stats   []*AttrStats
}

func newTable(db *DB, rel *schema.Relation) *Table {
	stats := make([]*AttrStats, rel.Arity())
	for i := range stats {
		stats[i] = newAttrStats()
	}
	return &Table{
		db:      db,
		rel:     rel,
		rows:    make(map[tuple.ID]tuple.Tuple),
		nextID:  1,
		indexes: make(map[string]*Index),
		stats:   stats,
	}
}

// Relation returns the table's schema.
func (t *Table) Relation() *schema.Relation { return t.rel }

// Len returns the number of stored tuples.
func (t *Table) Len() int { return len(t.rows) }

// CreateIndex builds a secondary index on attr, indexing existing rows.
func (t *Table) CreateIndex(attr string) error {
	pos, ok := t.rel.AttrIndex(attr)
	if !ok {
		return fmt.Errorf("storage: relation %s has no attribute %s", t.rel.Name(), attr)
	}
	if _, dup := t.indexes[attr]; dup {
		return fmt.Errorf("storage: index on %s.%s already exists", t.rel.Name(), attr)
	}
	idx := &Index{Attr: attr, pos: pos, tree: btree.New[value.Value, idSet](value.Compare)}
	for id, row := range t.rows {
		idx.add(row[pos], id)
	}
	t.indexes[attr] = idx
	return nil
}

// HasIndex reports whether attr has a secondary index.
func (t *Table) HasIndex(attr string) bool {
	_, ok := t.indexes[attr]
	return ok
}

// IndexedAttrs returns the indexed attribute names, sorted.
func (t *Table) IndexedAttrs() []string {
	out := make([]string, 0, len(t.indexes))
	for a := range t.indexes {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (idx *Index) add(v value.Value, id tuple.ID) {
	set, ok := idx.tree.Get(v)
	if !ok {
		set = make(idSet, 1)
		idx.tree.Put(v, set)
	}
	set[id] = struct{}{}
}

func (idx *Index) remove(v value.Value, id tuple.ID) {
	set, ok := idx.tree.Get(v)
	if !ok {
		return
	}
	delete(set, id)
	if len(set) == 0 {
		idx.tree.Delete(v)
	}
}

// Insert appends a tuple, returning its assigned ID.
func (t *Table) Insert(row tuple.Tuple) (tuple.ID, error) {
	if err := row.Conforms(t.rel); err != nil {
		return 0, err
	}
	row = row.Clone()
	id := t.nextID
	t.nextID++
	t.rows[id] = row
	for _, idx := range t.indexes {
		idx.add(row[idx.pos], id)
	}
	for i, v := range row {
		t.stats[i].add(v)
	}
	return id, t.db.notify(Event{Rel: t.rel.Name(), Op: OpInsert, ID: id, New: row})
}

// Update replaces the tuple stored under id.
func (t *Table) Update(id tuple.ID, row tuple.Tuple) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("storage: %s has no tuple %d", t.rel.Name(), id)
	}
	if err := row.Conforms(t.rel); err != nil {
		return err
	}
	row = row.Clone()
	t.rows[id] = row
	for _, idx := range t.indexes {
		if value.Compare(old[idx.pos], row[idx.pos]) != 0 {
			idx.remove(old[idx.pos], id)
			idx.add(row[idx.pos], id)
		}
	}
	for i := range row {
		t.stats[i].remove(old[i])
		t.stats[i].add(row[i])
	}
	return t.db.notify(Event{Rel: t.rel.Name(), Op: OpUpdate, ID: id, Old: old, New: row})
}

// Delete removes the tuple stored under id.
func (t *Table) Delete(id tuple.ID) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("storage: %s has no tuple %d", t.rel.Name(), id)
	}
	delete(t.rows, id)
	for _, idx := range t.indexes {
		idx.remove(old[idx.pos], id)
	}
	for i := range old {
		t.stats[i].remove(old[i])
	}
	return t.db.notify(Event{Rel: t.rel.Name(), Op: OpDelete, ID: id, Old: old})
}

// Get returns the tuple stored under id.
func (t *Table) Get(id tuple.ID) (tuple.Tuple, bool) {
	row, ok := t.rows[id]
	return row, ok
}

// Scan calls fn for every (id, tuple) pair until fn returns false.
// Iteration order is unspecified.
func (t *Table) Scan(fn func(tuple.ID, tuple.Tuple) bool) {
	for id, row := range t.rows {
		if !fn(id, row) {
			return
		}
	}
}

// ScanIndex iterates, in attribute order, the tuples whose attr value
// lies within iv, using the secondary index. It returns false (without
// scanning) if attr has no index.
func (t *Table) ScanIndex(attr string, iv interval.Interval[value.Value], fn func(tuple.ID, tuple.Tuple) bool) bool {
	idx, ok := t.indexes[attr]
	if !ok {
		return false
	}
	idx.tree.AscendRange(iv, func(_ value.Value, set idSet) bool {
		for id := range set {
			if !fn(id, t.rows[id]) {
				return false
			}
		}
		return true
	})
	return true
}

// Stats returns the statistics for attr, or nil if the attribute does
// not exist.
func (t *Table) Stats(attr string) *AttrStats {
	pos, ok := t.rel.AttrIndex(attr)
	if !ok {
		return nil
	}
	return t.stats[pos]
}
