// Replay and snapshot support for the durability layer: applying a
// logged change without re-notifying observers, and reading a table's
// contents in a deterministic order. During WAL recovery the rule
// engine must not re-fire — every cascaded change a rule produced was
// itself logged and replays as its own event — so these paths mirror
// Insert/Update/Delete minus the notify call, and restore exact tuple
// IDs rather than allocating fresh ones.

package storage

import (
	"fmt"
	"sort"

	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Apply installs one logged change. Unlike the mutating API it takes
// the tuple ID from the event (IDs must survive recovery: rules,
// subscribers and clients hold them) and does not notify observers.
func (db *DB) Apply(ev Event) error {
	t, ok := db.Table(ev.Rel)
	if !ok {
		return fmt.Errorf("storage: apply: unknown relation %s", ev.Rel)
	}
	switch ev.Op {
	case OpInsert:
		return t.applyInsert(ev.ID, ev.New)
	case OpUpdate:
		return t.applyUpdate(ev.ID, ev.New)
	case OpDelete:
		return t.applyDelete(ev.ID)
	default:
		return fmt.Errorf("storage: apply: unknown op %d", ev.Op)
	}
}

// applyInsert stores row under the given (recovered) ID and keeps the
// allocator ahead of it.
func (t *Table) applyInsert(id tuple.ID, row tuple.Tuple) error {
	if err := row.Conforms(t.rel); err != nil {
		return err
	}
	if _, dup := t.rows[id]; dup {
		return fmt.Errorf("storage: apply: %s already has tuple %d", t.rel.Name(), id)
	}
	row = row.Clone()
	t.rows[id] = row
	if id >= t.nextID {
		t.nextID = id + 1
	}
	for _, idx := range t.indexes {
		idx.add(row[idx.pos], id)
	}
	for i, v := range row {
		t.stats[i].add(v)
	}
	return nil
}

// applyUpdate replaces the tuple stored under id without notifying.
func (t *Table) applyUpdate(id tuple.ID, row tuple.Tuple) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("storage: apply: %s has no tuple %d", t.rel.Name(), id)
	}
	if err := row.Conforms(t.rel); err != nil {
		return err
	}
	row = row.Clone()
	t.rows[id] = row
	for _, idx := range t.indexes {
		if value.Compare(old[idx.pos], row[idx.pos]) != 0 {
			idx.remove(old[idx.pos], id)
			idx.add(row[idx.pos], id)
		}
	}
	for i := range row {
		t.stats[i].remove(old[i])
		t.stats[i].add(row[i])
	}
	return nil
}

// applyDelete removes the tuple stored under id without notifying.
func (t *Table) applyDelete(id tuple.ID) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("storage: apply: %s has no tuple %d", t.rel.Name(), id)
	}
	delete(t.rows, id)
	for _, idx := range t.indexes {
		idx.remove(old[idx.pos], id)
	}
	for i := range old {
		t.stats[i].remove(old[i])
	}
	return nil
}

// NextID returns the table's ID allocator cursor (the ID the next
// insert receives).
func (t *Table) NextID() tuple.ID { return t.nextID }

// SetNextID moves the allocator cursor forward (never backward: IDs
// must not be reused after recovery).
func (t *Table) SetNextID(id tuple.ID) {
	if id > t.nextID {
		t.nextID = id
	}
}

// SnapshotRow is one (ID, tuple) pair from SnapshotRows.
type SnapshotRow struct {
	ID    tuple.ID
	Tuple tuple.Tuple
}

// SnapshotRows returns the table's contents sorted by tuple ID. The
// tuples are the stored values (not copies); callers serialize them
// before releasing whatever lock keeps mutators out.
func (t *Table) SnapshotRows() []SnapshotRow {
	out := make([]SnapshotRow, 0, len(t.rows))
	for id, row := range t.rows {
		out = append(out, SnapshotRow{ID: id, Tuple: row})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Relations returns the names of all tables, sorted.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
