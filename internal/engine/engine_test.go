package engine_test

import (
	"fmt"
	"strings"
	"testing"

	"predmatch/internal/core"
	"predmatch/internal/engine"
	"predmatch/internal/hashseq"
	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/shard"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func setup(t *testing.T, mk func(*storage.DB, *pred.Registry) matcher.Matcher, opts ...engine.Option) (*storage.DB, *engine.Engine, *storage.Table, *storage.Table) {
	t.Helper()
	db := storage.NewDB()
	emp := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt},
		schema.Attribute{Name: "dept", Type: value.KindString},
	)
	alerts := schema.MustRelation("alerts",
		schema.Attribute{Name: "msg", Type: value.KindString},
		schema.Attribute{Name: "level", Type: value.KindInt},
	)
	empTab, err := db.CreateRelation(emp)
	if err != nil {
		t.Fatal(err)
	}
	alertTab, err := db.CreateRelation(alerts)
	if err != nil {
		t.Fatal(err)
	}
	funcs := pred.NewRegistry()
	eng := engine.New(db, funcs, mk(db, funcs), append([]engine.Option{engine.WithFiringTrace(true)}, opts...)...)
	return db, eng, empTab, alertTab
}

func ibsMatcher(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
	return core.New(db.Catalog(), funcs)
}

func empT(name string, age, salary int64, dept string) tuple.Tuple {
	return tuple.New(value.String_(name), value.Int(age), value.Int(salary), value.String_(dept))
}

func TestRuleFiresOnInsert(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule high on insert to emp when salary > 50000 do log 'rich'"); err != nil {
		t.Fatal(err)
	}
	if _, err := empTab.Insert(empT("a", 30, 60000, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := empTab.Insert(empT("b", 30, 40000, "x")); err != nil {
		t.Fatal(err)
	}
	f := eng.Firings()
	if len(f) != 1 || f[0].Rule != "high" {
		t.Fatalf("firings = %+v", f)
	}
}

func TestEventFiltering(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule upd on update to emp when age >= 0 do log 'updated'"); err != nil {
		t.Fatal(err)
	}
	id, _ := empTab.Insert(empT("a", 30, 1, "x"))
	if got := eng.Firings(); len(got) != 0 {
		t.Fatalf("insert fired update rule: %+v", got)
	}
	_ = empTab.Update(id, empT("a", 31, 1, "x"))
	if got := eng.Firings(); len(got) != 1 {
		t.Fatalf("update firings = %+v", got)
	}
}

func TestDeleteRulesMatchOldTuple(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule bye on delete to emp when dept = 'shoe' do log 'gone'"); err != nil {
		t.Fatal(err)
	}
	id1, _ := empTab.Insert(empT("a", 30, 1, "shoe"))
	id2, _ := empTab.Insert(empT("b", 30, 1, "toy"))
	_ = empTab.Delete(id2)
	if got := eng.Firings(); len(got) != 0 {
		t.Fatalf("non-matching delete fired: %+v", got)
	}
	_ = empTab.Delete(id1)
	if got := eng.Firings(); len(got) != 1 || got[0].Rule != "bye" {
		t.Fatalf("firings = %+v", got)
	}
}

func TestDisjunctionFiresOnce(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	// Both disjuncts match the same tuple; the rule must fire once.
	if _, err := eng.DefineRule(
		"rule d on insert to emp when age > 10 or salary > 10 do log 'hit'"); err != nil {
		t.Fatal(err)
	}
	_, _ = empTab.Insert(empT("a", 50, 50, "x"))
	if got := eng.Firings(); len(got) != 1 {
		t.Fatalf("disjunctive rule fired %d times", len(got))
	}
}

func TestInsertActionChains(t *testing.T) {
	_, eng, empTab, alertTab := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule a on insert to emp when salary > 100 do insert into alerts ('high', 1)"); err != nil {
		t.Fatal(err)
	}
	// A second rule watches the alerts relation: forward chaining.
	if _, err := eng.DefineRule(
		"rule b on insert to alerts when level >= 1 do log 'alert seen'"); err != nil {
		t.Fatal(err)
	}
	_, _ = empTab.Insert(empT("a", 30, 200, "x"))
	if alertTab.Len() != 1 {
		t.Fatalf("alerts len = %d", alertTab.Len())
	}
	f := eng.Firings()
	if len(f) != 2 || f[0].Rule != "a" || f[1].Rule != "b" {
		t.Fatalf("firings = %+v", f)
	}
}

func TestSetActionAndNoOpGuard(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	// Clamp salaries over 100 down to 100; the set triggers an update
	// event, on which the rule no longer matches (salary = 100).
	if _, err := eng.DefineRule(
		"rule clamp on insert, update to emp when salary > 100 do set salary = 100"); err != nil {
		t.Fatal(err)
	}
	id, err := empTab.Insert(empT("a", 30, 500, "x"))
	if err != nil {
		t.Fatal(err)
	}
	row, _ := empTab.Get(id)
	if row[2].AsInt() != 100 {
		t.Fatalf("salary = %d, want clamped 100", row[2].AsInt())
	}
}

func TestRaiseAborts(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule nokids on insert to emp when age < 18 do raise 'minimum age is 18'"); err != nil {
		t.Fatal(err)
	}
	if _, err := empTab.Insert(empT("kid", 12, 0, "x")); err == nil {
		t.Fatal("raise did not abort")
	} else if !strings.Contains(err.Error(), "minimum age is 18") {
		t.Fatalf("error = %v", err)
	}
	if _, err := empTab.Insert(empT("adult", 30, 0, "x")); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAction(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule purge on insert to emp when dept = 'temp' do delete"); err != nil {
		t.Fatal(err)
	}
	_, _ = empTab.Insert(empT("t", 30, 0, "temp"))
	_, _ = empTab.Insert(empT("p", 30, 0, "perm"))
	if empTab.Len() != 1 {
		t.Fatalf("len = %d, want 1 (temp tuple purged)", empTab.Len())
	}
}

func TestCascadeDepthLimit(t *testing.T) {
	_, eng, empTab, alertTab := setup(t, ibsMatcher, engine.WithMaxCascadeDepth(4))
	// Mutual recursion: alerts insert -> alerts insert.
	if _, err := eng.DefineRule(
		"rule loop on insert to alerts do insert into alerts ('again', 1)"); err != nil {
		t.Fatal(err)
	}
	_ = empTab
	if _, err := alertTab.Insert(tuple.New(value.String_("boom"), value.Int(1))); err == nil {
		t.Fatal("infinite cascade not caught")
	} else if !strings.Contains(err.Error(), "cascade depth") {
		t.Fatalf("error = %v", err)
	}
}

func TestDropRule(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule r on insert to emp when age > 0 do log 'x'"); err != nil {
		t.Fatal(err)
	}
	if got := eng.Rules(); len(got) != 1 || got[0] != "r" {
		t.Fatalf("Rules = %v", got)
	}
	if eng.Matcher().Len() == 0 {
		t.Fatal("matcher empty after define")
	}
	if err := eng.DropRule("r"); err != nil {
		t.Fatal(err)
	}
	if eng.Matcher().Len() != 0 {
		t.Fatal("matcher not empty after drop")
	}
	if err := eng.DropRule("r"); err == nil {
		t.Fatal("double drop accepted")
	}
	_, _ = empTab.Insert(empT("a", 30, 1, "x"))
	if got := eng.Firings(); len(got) != 0 {
		t.Fatalf("dropped rule fired: %+v", got)
	}
}

func TestDuplicateRuleAndBadPredicate(t *testing.T) {
	_, eng, _, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule("rule r on insert to emp do log 'x'"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DefineRule("rule r on insert to emp do log 'y'"); err == nil {
		t.Fatal("duplicate rule name accepted")
	}
	if _, err := eng.DefineRule("rule bad on insert to emp when nosuch = 1 do log 'x'"); err == nil {
		t.Fatal("bad condition accepted")
	}
}

func TestLoggerReceivesLogActions(t *testing.T) {
	var msgs []string
	logger := func(format string, args ...any) {
		msgs = append(msgs, fmt.Sprintf(format, args...))
	}
	_, eng, empTab, _ := setup(t, ibsMatcher, engine.WithLogger(logger))
	if _, err := eng.DefineRule(
		"rule l on insert to emp when isodd(age) do log 'odd age'"); err != nil {
		t.Fatal(err)
	}
	_, _ = empTab.Insert(empT("a", 3, 1, "x"))
	_, _ = empTab.Insert(empT("b", 4, 1, "x"))
	if len(msgs) != 1 || !strings.Contains(msgs[0], "odd age") {
		t.Fatalf("log messages = %v", msgs)
	}
}

// TestEngineMatcherInterchangeable runs the same scenario with two
// matching strategies and requires identical firing sequences.
func TestEngineMatcherInterchangeable(t *testing.T) {
	run := func(mk func(*storage.DB, *pred.Registry) matcher.Matcher) []engine.Firing {
		_, eng, empTab, _ := setup(t, mk)
		for i, src := range []string{
			"rule r1 on insert to emp when salary between 100 and 200 do log 'band'",
			"rule r2 on insert to emp when dept = 'shoe' and isodd(age) do log 'odd shoe'",
			"rule r3 on insert, update to emp when age > 60 do log 'senior'",
		} {
			if _, err := eng.DefineRule(src); err != nil {
				t.Fatalf("rule %d: %v", i, err)
			}
		}
		data := []tuple.Tuple{
			empT("a", 61, 150, "shoe"),
			empT("b", 33, 50, "shoe"),
			empT("c", 70, 300, "toy"),
			empT("d", 20, 100, "deli"),
		}
		for _, tp := range data {
			if _, err := empTab.Insert(tp); err != nil {
				t.Fatal(err)
			}
		}
		return eng.Firings()
	}
	a := run(ibsMatcher)
	for name, mk := range map[string]func(*storage.DB, *pred.Registry) matcher.Matcher{
		"hashseq": func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
			return hashseq.New(db.Catalog(), funcs)
		},
		"sharded": func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
			return shard.New(db.Catalog(), funcs)
		},
	} {
		b := run(mk)
		if len(a) != len(b) {
			t.Fatalf("%s: firing counts differ: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i].Rule != b[i].Rule {
				t.Fatalf("%s: firing %d differs: %s vs %s", name, i, a[i].Rule, b[i].Rule)
			}
		}
	}
}

func TestRulePriorityOrder(t *testing.T) {
	var msgs []string
	logger := func(format string, args ...any) {
		msgs = append(msgs, fmt.Sprintf(format, args...))
	}
	_, eng, empTab, _ := setup(t, ibsMatcher, engine.WithLogger(logger))
	rules := []string{
		"rule zlow priority 1 on insert to emp when age > 0 do log 'low'",
		"rule ahigh priority 10 on insert to emp when age > 0 do log 'high'",
		"rule mid on insert to emp when age > 0 do log 'default'", // priority 0
	}
	for _, src := range rules {
		if _, err := eng.DefineRule(src); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := empTab.Insert(empT("a", 30, 1, "x")); err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("msgs = %v", msgs)
	}
	wantOrder := []string{"high", "low", "default"}
	for i, want := range wantOrder {
		if !strings.Contains(msgs[i], want) {
			t.Fatalf("firing %d = %q, want %q (messages %v)", i, msgs[i], want, msgs)
		}
	}
}

func TestRulePriorityParseErrors(t *testing.T) {
	_, eng, _, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule("rule r priority x on insert to emp do log 'm'"); err == nil {
		t.Fatal("non-numeric priority accepted")
	}
	if _, err := eng.DefineRule("rule r priority on insert to emp do log 'm'"); err == nil {
		t.Fatal("missing priority value accepted")
	}
	if _, err := eng.DefineRule("rule r priority -5 on insert to emp do log 'm'"); err != nil {
		t.Fatalf("negative priority rejected: %v", err)
	}
}

func TestResetFirings(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule("rule r on insert to emp do log 'x'"); err != nil {
		t.Fatal(err)
	}
	_, _ = empTab.Insert(empT("a", 1, 1, "x"))
	if len(eng.Firings()) != 1 {
		t.Fatal("no firing recorded")
	}
	eng.ResetFirings()
	if len(eng.Firings()) != 0 {
		t.Fatal("ResetFirings did not clear")
	}
}

func TestSetActionSkippedOnDelete(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	// A delete-trigger with a set action: nothing to modify, no error.
	if _, err := eng.DefineRule(
		"rule r on delete to emp when age > 0 do set age = 1; log 'deleted'"); err != nil {
		t.Fatal(err)
	}
	id, _ := empTab.Insert(empT("a", 5, 1, "x"))
	if err := empTab.Delete(id); err != nil {
		t.Fatal(err)
	}
	if len(eng.Firings()) != 1 {
		t.Fatal("delete rule did not fire")
	}
}

func TestDeleteActionAfterCascadedDelete(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	// Two rules both deleting the same triggering tuple: the second
	// delete finds the tuple gone and must be a no-op.
	if _, err := eng.DefineRule(
		"rule a priority 2 on insert to emp when dept = 'tmp' do delete"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DefineRule(
		"rule b priority 1 on insert to emp when dept = 'tmp' do delete; log 'second'"); err != nil {
		t.Fatal(err)
	}
	if _, err := empTab.Insert(empT("a", 1, 1, "tmp")); err != nil {
		t.Fatal(err)
	}
	if empTab.Len() != 0 {
		t.Fatalf("len = %d", empTab.Len())
	}
}

func TestSetActionAfterCascadedDelete(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule a priority 2 on insert to emp when dept = 'tmp' do delete"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DefineRule(
		"rule b priority 1 on insert to emp when dept = 'tmp' do set age = 9"); err != nil {
		t.Fatal(err)
	}
	// Rule a removes the tuple; rule b's set must silently skip.
	if _, err := empTab.Insert(empT("a", 1, 1, "tmp")); err != nil {
		t.Fatal(err)
	}
	if empTab.Len() != 0 {
		t.Fatalf("len = %d", empTab.Len())
	}
}

func TestInsertActionIntoUnknownRelationCaughtAtParse(t *testing.T) {
	_, eng, _, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule r on insert to emp do insert into nosuch (1)"); err == nil {
		t.Fatal("insert into unknown relation accepted at definition")
	}
}

// TestDerivedColumnRule exercises arithmetic set expressions: a rule
// maintains deficit = salary - age (a stand-in for the stock-reorder
// derived column), and a second rule watches the derived value — the
// paper's Section 3 pattern implemented entirely in rules.
func TestDerivedColumnRule(t *testing.T) {
	_, eng, empTab, _ := setup(t, ibsMatcher)
	if _, err := eng.DefineRule(
		"rule maintain priority 5 on insert, update to emp do set salary = age * 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DefineRule(
		"rule watch on update to emp when salary > 100 do log 'big'"); err != nil {
		t.Fatal(err)
	}
	id, err := empTab.Insert(empT("a", 60, 0, "x"))
	if err != nil {
		t.Fatal(err)
	}
	row, _ := empTab.Get(id)
	if row[2].AsInt() != 120 {
		t.Fatalf("derived salary = %d, want 120", row[2].AsInt())
	}
	// The maintain rule's own update re-fires it, but the no-op guard
	// (salary already equals age*2) stops the cascade; watch fired once
	// on the derived update.
	count := 0
	for _, f := range eng.Firings() {
		if f.Rule == "watch" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("watch fired %d times, want 1", count)
	}
}

func TestOnFireHook(t *testing.T) {
	_, eng, empTab, alertTab := setup(t, ibsMatcher)
	// A cascading pair: the first rule's action inserts an alert, which
	// fires the second rule one cascade level deeper.
	if _, err := eng.DefineRule(
		"rule rich on insert to emp when salary > 50000 do insert into alerts ('rich', 2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DefineRule(
		"rule loud on insert to alerts when level > 1 do log 'loud'"); err != nil {
		t.Fatal(err)
	}
	var got []engine.FiringEvent
	eng.OnFire(func(ev engine.FiringEvent) { got = append(got, ev) })

	if _, err := empTab.Insert(empT("a", 30, 60000, "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := empTab.Insert(empT("b", 30, 40000, "x")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d firing events, want 2: %+v", len(got), got)
	}
	first, second := got[0], got[1]
	if first.Rule != "rich" || first.Rel != "emp" || first.Op != storage.OpInsert || first.Depth != 0 {
		t.Fatalf("first firing = %+v", first)
	}
	if first.TupleID != 1 || len(first.Tuple) != 4 || first.Tuple[2].AsInt() != 60000 {
		t.Fatalf("first firing tuple = id=%d %v", first.TupleID, first.Tuple)
	}
	if second.Rule != "loud" || second.Rel != "alerts" || second.Op != storage.OpInsert || second.Depth != 1 {
		t.Fatalf("second (cascaded) firing = %+v", second)
	}
	if alertTab.Len() != 1 {
		t.Fatalf("alerts rows = %d, want 1", alertTab.Len())
	}
	// Hook order matches the recorded firing trace.
	trace := eng.Firings()
	if len(trace) != len(got) {
		t.Fatalf("trace %d events, hook %d", len(trace), len(got))
	}
	for i := range trace {
		if trace[i].Rule != got[i].Rule {
			t.Fatalf("order mismatch at %d: trace %s, hook %s", i, trace[i].Rule, got[i].Rule)
		}
	}

	// A delete firing carries the old tuple image.
	if _, err := eng.DefineRule(
		"rule gone on delete to emp do log 'gone'"); err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	if err := empTab.Delete(2); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Rule != "gone" || got[0].Op != storage.OpDelete {
		t.Fatalf("delete firing = %+v", got)
	}
	if got[0].Tuple[0].AsString() != "b" {
		t.Fatalf("delete firing should carry old image, got %v", got[0].Tuple)
	}
}
