// Package engine is the forward-chaining rule engine the paper's
// predicate index serves: an Ariel-style trigger system. Rules are
//
//	if condition then action
//
// over a relation's tuples. On every insert, update or delete the engine
// asks its (pluggable) matcher which rule predicates match the affected
// tuple — the paper's predicate testing problem — and fires the actions
// of the owning rules. Rule conditions may contain disjunctions; they
// are split into disjunction-free predicates before registration, as the
// paper prescribes, and a rule fires when any of its split predicates
// matches.
//
// Actions can mutate the database (set, insert, delete), which triggers
// further matching — forward chaining — bounded by a cascade depth limit.
package engine

import (
	"fmt"
	"sort"
	"sync"

	"predmatch/internal/matcher"
	"predmatch/internal/obs"
	"predmatch/internal/parser"
	"predmatch/internal/pred"
	"predmatch/internal/storage"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Rule is a registered rule.
type Rule struct {
	Name string
	Rel  string
	// Priority orders firing among rules matching the same event: higher
	// priorities fire first, ties break by name.
	Priority int
	Events   map[storage.Op]bool
	Actions  []parser.Action
	Source   string
	// predIDs are the disjunction-free predicates registered for the
	// rule's condition (one per DNF conjunct; a single always-true
	// predicate when the rule has no condition).
	predIDs []pred.ID
	// fires is the rule's activation counter, resolved once when the
	// rule is defined so the firing loop never touches the vec's lookup
	// lock. nil when the engine is uninstrumented.
	fires *obs.Counter
}

// Firing describes one rule activation, for logging and tests.
type Firing struct {
	Rule  string
	Event storage.Event
}

// FiringEvent is the flattened form of one rule activation delivered to
// OnFire hooks: which rule fired, on which operation against which
// tuple, and how deep in a forward-chaining cascade the activation sits
// (0 for a firing triggered directly by an external mutation).
type FiringEvent struct {
	Rule    string
	Rel     string
	Op      storage.Op
	TupleID tuple.ID
	// Tuple is the tuple the rule's predicate matched: the new image for
	// inserts and updates, the old image for deletes. It must be treated
	// as read-only.
	Tuple tuple.Tuple
	Depth int
}

// Logger receives rule "log" action output and firing traces.
type Logger func(format string, args ...any)

// Engine wires storage events to a predicate matcher and executes rule
// actions.
type Engine struct {
	mu         sync.Mutex
	db         *storage.DB
	funcs      *pred.Registry
	m          matcher.Matcher
	rules      map[string]*Rule  // guarded-by: mu
	byPred     map[pred.ID]*Rule // guarded-by: mu
	nextPredID pred.ID
	log        Logger
	maxDepth   int
	depth      int
	firings    []Firing
	traceAll   bool
	scratch    []pred.ID
	onFire     []func(FiringEvent)
	firingsVec *obs.CounterVec // per-rule activation counters; nil when uninstrumented
	events     *obs.Counter    // storage events observed
	// span is the current trace parent for event processing, set by the
	// serialized mutation path via SetSpan (same caller serialization
	// that makes the unlocked byPred read in onEvent safe). During a
	// cascade onEvent temporarily re-points it at the firing rule's
	// span so nested events parent under the rule that caused them.
	span *trace.Span
	// tm is e.m's traced extension, resolved once at construction; nil
	// when the matcher doesn't implement matcher.TracedMatcher.
	tm matcher.TracedMatcher
}

// Option configures an Engine.
type Option func(*Engine)

// WithLogger sets the destination of "log" actions and traces (default:
// discard).
func WithLogger(l Logger) Option { return func(e *Engine) { e.log = l } }

// WithMaxCascadeDepth bounds forward-chaining recursion (default 16).
func WithMaxCascadeDepth(d int) Option { return func(e *Engine) { e.maxDepth = d } }

// WithFiringTrace records every rule activation for inspection via
// Firings (intended for tests and examples).
func WithFiringTrace(on bool) Option { return func(e *Engine) { e.traceAll = on } }

// WithMetrics registers the engine's metric families on reg: per-rule
// activation counters, a storage-event counter, and a defined-rule
// gauge sampled at scrape time. A nil reg leaves the engine
// uninstrumented.
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) {
		if reg == nil {
			return
		}
		e.firingsVec = reg.CounterVec("predmatch_rule_firings_total",
			"Rule activations by rule name.", "rule")
		e.events = reg.Counter("predmatch_engine_events_total",
			"Storage mutations observed by the rule engine (including cascades).")
		reg.GaugeFunc("predmatch_rules",
			"Rules currently defined.", func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return float64(len(e.rules))
			})
	}
}

// New builds an engine over db using m as the predicate-matching
// strategy and registers it as a storage observer.
func New(db *storage.DB, funcs *pred.Registry, m matcher.Matcher, opts ...Option) *Engine {
	e := &Engine{
		db:         db,
		funcs:      funcs,
		m:          m,
		rules:      make(map[string]*Rule),
		byPred:     make(map[pred.ID]*Rule),
		nextPredID: 1,
		log:        func(string, ...any) {},
		maxDepth:   16,
	}
	for _, o := range opts {
		o(e)
	}
	e.tm, _ = m.(matcher.TracedMatcher)
	db.Observe(e.onEvent)
	return e
}

// SetSpan installs sp as the trace parent for the mutation about to be
// applied (nil to clear). Like onEvent, it relies on the caller
// serializing mutations; the server calls it under its own mutex around
// each applied mutation, so a traced request's firing cascade lands in
// that request's trace and nothing leaks into the next one.
func (e *Engine) SetSpan(sp *trace.Span) { e.span = sp }

// Matcher returns the engine's matching strategy.
func (e *Engine) Matcher() matcher.Matcher { return e.m }

// OnFire registers a hook invoked synchronously for every rule
// activation, before the rule's actions execute and in the same order
// activations fire. Hooks must be registered before mutations start
// flowing and must not mutate the database (they run inside the
// triggering mutation). The rule service daemon uses this to stream
// firings to subscribers; tests use it as a firing oracle.
func (e *Engine) OnFire(fn func(FiringEvent)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onFire = append(e.onFire, fn)
}

// DefineRule parses and registers a rule from source text.
func (e *Engine) DefineRule(src string) (*Rule, error) {
	ast, err := parser.ParseRule(src, e.db.Catalog(), e.funcs)
	if err != nil {
		return nil, err
	}
	return e.DefineRuleAST(ast)
}

// DefineRuleAST registers a parsed rule: its condition is split into
// disjunction-free predicates, each added to the matcher.
func (e *Engine) DefineRuleAST(ast *parser.RuleAST) (*Rule, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.rules[ast.Name]; dup {
		return nil, fmt.Errorf("engine: rule %q already defined", ast.Name)
	}
	r := &Rule{
		Name:     ast.Name,
		Rel:      ast.Rel,
		Priority: ast.Priority,
		Events:   make(map[storage.Op]bool),
		Actions:  ast.Actions,
		Source:   ast.Source,
	}
	for _, ev := range ast.Events {
		r.Events[ev] = true
	}
	if e.firingsVec != nil {
		r.fires = e.firingsVec.With(ast.Name)
	}

	var preds []*pred.Predicate
	if ast.Condition != nil {
		preds = pred.SplitDNF(e.nextPredID, ast.Rel, ast.Condition)
	} else {
		preds = []*pred.Predicate{pred.New(e.nextPredID, ast.Rel)}
	}
	e.nextPredID += pred.ID(len(preds))

	for i, p := range preds {
		if err := e.m.Add(p); err != nil {
			// Roll back predicates already added.
			for _, q := range preds[:i] {
				_ = e.m.Remove(q.ID)
			}
			return nil, fmt.Errorf("engine: registering rule %q: %w", ast.Name, err)
		}
		r.predIDs = append(r.predIDs, p.ID)
		e.byPred[p.ID] = r
	}
	e.rules[ast.Name] = r
	return r, nil
}

// DropRule removes a rule and its predicates.
func (e *Engine) DropRule(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.rules[name]
	if !ok {
		return fmt.Errorf("engine: unknown rule %q", name)
	}
	for _, id := range r.predIDs {
		if err := e.m.Remove(id); err != nil {
			return err
		}
		delete(e.byPred, id)
	}
	delete(e.rules, name)
	return nil
}

// Rules returns the defined rule names, sorted.
func (e *Engine) Rules() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.rules))
	for n := range e.rules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Sources returns the source text of every defined rule, ordered by
// rule name. Rule semantics are order-insensitive (priority lives in
// the source), so redefining them in this order — as the durability
// layer's snapshots do — rebuilds an equivalent rule network.
func (e *Engine) Sources() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.rules))
	for n := range e.rules {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = e.rules[n].Source
	}
	return out
}

// Firings returns the recorded rule activations (WithFiringTrace).
func (e *Engine) Firings() []Firing {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Firing, len(e.firings))
	copy(out, e.firings)
	return out
}

// ResetFirings clears the recorded activations.
func (e *Engine) ResetFirings() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.firings = e.firings[:0]
}

// onEvent is the storage observer: match the affected tuple, collect the
// owning rules, and fire their actions. Mutations are serialized by the
// caller (the server runs them under its own mutex; the embedded engine
// is single-writer), which is what makes the unlocked byPred read safe.
//
//predmatchvet:holds mu
func (e *Engine) onEvent(ev storage.Event) error {
	// Deletes match against the old tuple; inserts and updates against
	// the new one (the paper's focus is new and modified tuples).
	t := ev.New
	if ev.Op == storage.OpDelete {
		t = ev.Old
	}
	if t == nil {
		return nil
	}
	e.events.Inc()

	if e.depth >= e.maxDepth {
		return fmt.Errorf("engine: cascade depth limit %d exceeded at %s on %s", e.maxDepth, ev.Op, ev.Rel)
	}

	// One span per storage event; the stab's child spans hang off it
	// when the matcher supports tracing. All span calls are nil-receiver
	// no-ops on an untraced mutation.
	parent := e.span
	esp := parent.Child("engine.event")
	if esp != nil {
		esp.SetStr("rel", ev.Rel)
		esp.SetStr("op", ev.Op.String())
		esp.SetInt("depth", int64(e.depth))
	}

	var matched []pred.ID
	var err error
	if esp != nil && e.tm != nil {
		matched, err = e.tm.MatchTraced(ev.Rel, t, e.scratch[:0], esp)
	} else {
		matched, err = e.m.Match(ev.Rel, t, e.scratch[:0])
	}
	e.scratch = matched
	if err != nil {
		esp.End()
		return err
	}
	esp.SetInt("matches", int64(len(matched)))

	// A rule with several DNF predicates fires once; order rule firings
	// by name for determinism.
	fired := make(map[*Rule]bool)
	var toFire []*Rule
	for _, id := range matched {
		r := e.byPred[id]
		if r == nil || fired[r] || !r.Events[ev.Op] {
			continue
		}
		fired[r] = true
		toFire = append(toFire, r)
	}
	sort.Slice(toFire, func(i, j int) bool {
		if toFire[i].Priority != toFire[j].Priority {
			return toFire[i].Priority > toFire[j].Priority
		}
		return toFire[i].Name < toFire[j].Name
	})

	e.depth++
	defer func() { e.depth-- }()
	for _, r := range toFire {
		r.fires.Inc()
		if e.traceAll {
			e.firings = append(e.firings, Firing{Rule: r.Name, Event: ev})
		}
		for _, fn := range e.onFire {
			fn(FiringEvent{
				Rule:    r.Name,
				Rel:     ev.Rel,
				Op:      ev.Op,
				TupleID: ev.ID,
				Tuple:   t,
				Depth:   e.depth - 1,
			})
		}
		// Cascaded events raised by this rule's actions parent under the
		// rule's span; restore the original parent either way (error
		// paths included — the server clears the span after the
		// mutation, so a stale intermediate can never leak).
		var rsp *trace.Span
		if esp != nil {
			rsp = esp.Child("rule.fire")
			rsp.SetStr("rule", r.Name)
			e.span = rsp
		}
		err := e.execute(r, ev, t)
		if esp != nil {
			rsp.End()
			e.span = parent
		}
		if err != nil {
			esp.End()
			return err
		}
	}
	esp.End()
	return nil
}

// execute runs a rule's actions for a triggering event.
func (e *Engine) execute(r *Rule, ev storage.Event, t tuple.Tuple) error {
	for _, a := range r.Actions {
		switch a.Kind {
		case parser.ActionLog:
			e.log("[rule %s] %s (%s on %s %v)", r.Name, a.Message, ev.Op, ev.Rel, t)
		case parser.ActionRaise:
			return fmt.Errorf("engine: rule %s raised: %s", r.Name, a.Message)
		case parser.ActionSet:
			if ev.Op == storage.OpDelete {
				continue // nothing to modify
			}
			table, ok := e.db.Table(ev.Rel)
			if !ok {
				return fmt.Errorf("engine: relation %s vanished", ev.Rel)
			}
			pos, ok := table.Relation().AttrIndex(a.Attr)
			if !ok {
				return fmt.Errorf("engine: rule %s sets unknown attribute %s", r.Name, a.Attr)
			}
			cur, ok := table.Get(ev.ID)
			if !ok {
				continue // tuple already gone (cascaded delete)
			}
			v, err := a.Expr.Eval(table.Relation(), cur)
			if err != nil {
				return fmt.Errorf("engine: rule %s set expression: %w", r.Name, err)
			}
			if value.Equal(cur[pos], v) {
				continue // no-op assignment; avoids trivial infinite loops
			}
			next := cur.Clone()
			next[pos] = v
			if err := table.Update(ev.ID, next); err != nil {
				return fmt.Errorf("engine: rule %s set action: %w", r.Name, err)
			}
		case parser.ActionInsert:
			table, ok := e.db.Table(a.Rel)
			if !ok {
				return fmt.Errorf("engine: rule %s inserts into unknown relation %s", r.Name, a.Rel)
			}
			if _, err := table.Insert(tuple.New(a.Values...)); err != nil {
				return fmt.Errorf("engine: rule %s insert action: %w", r.Name, err)
			}
		case parser.ActionDelete:
			if ev.Op == storage.OpDelete {
				continue
			}
			table, ok := e.db.Table(ev.Rel)
			if !ok {
				return fmt.Errorf("engine: relation %s vanished", ev.Rel)
			}
			if _, exists := table.Get(ev.ID); !exists {
				continue
			}
			if err := table.Delete(ev.ID); err != nil {
				return fmt.Errorf("engine: rule %s delete action: %w", r.Name, err)
			}
		}
	}
	return nil
}
