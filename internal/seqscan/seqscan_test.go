package seqscan_test

import (
	"testing"

	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/seqscan"
)

func TestConformance(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return seqscan.New(f.Catalog, f.Funcs)
	})
}

// TestConcurrentConformance drives the read/write storm harness; the
// single-threaded scan gets its thread safety from the Synchronized
// wrapper, so the harness checks matching stays exact under
// interleaving (and the race detector checks the wrapper suffices).
func TestConcurrentConformance(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		return matchertest.Synchronized(seqscan.New(f.Catalog, f.Funcs))
	})
}

func TestName(t *testing.T) {
	m := seqscan.New(matchertest.NewFixture().Catalog, nil)
	if m.Name() != "seqscan" {
		t.Fatalf("Name = %q", m.Name())
	}
}
