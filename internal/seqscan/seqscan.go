// Package seqscan implements the paper's Section 2.1 baseline: a single
// list of all predicates, each tested sequentially against every tuple.
// "This has low overhead and works well for small numbers of predicates,
// but clearly performs badly when the number of predicates is large."
package seqscan

import (
	"fmt"

	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
)

// Matcher is the sequential-search strategy.
type Matcher struct {
	catalog *schema.Catalog
	funcs   *pred.Registry
	order   []pred.ID
	preds   map[pred.ID]*pred.Bound
}

var _ matcher.Matcher = (*Matcher)(nil)

// New returns an empty sequential matcher resolving predicates against
// the given catalog and function registry.
func New(catalog *schema.Catalog, funcs *pred.Registry) *Matcher {
	return &Matcher{
		catalog: catalog,
		funcs:   funcs,
		preds:   make(map[pred.ID]*pred.Bound),
	}
}

// Name implements matcher.Matcher.
func (m *Matcher) Name() string { return "seqscan" }

// Len implements matcher.Matcher.
func (m *Matcher) Len() int { return len(m.preds) }

// Add implements matcher.Matcher.
func (m *Matcher) Add(p *pred.Predicate) error {
	if _, dup := m.preds[p.ID]; dup {
		return fmt.Errorf("seqscan: duplicate predicate id %d", p.ID)
	}
	b, err := p.Bind(m.catalog, m.funcs)
	if err != nil {
		return err
	}
	m.preds[p.ID] = b
	m.order = append(m.order, p.ID)
	return nil
}

// Remove implements matcher.Matcher.
func (m *Matcher) Remove(id pred.ID) error {
	if _, ok := m.preds[id]; !ok {
		return fmt.Errorf("seqscan: unknown predicate id %d", id)
	}
	delete(m.preds, id)
	for i, x := range m.order {
		if x == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// Match implements matcher.Matcher by walking the full predicate list.
func (m *Matcher) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	for _, id := range m.order {
		b := m.preds[id]
		if b.Pred.Rel != rel {
			continue
		}
		if b.Match(t) {
			dst = append(dst, id)
		}
	}
	return dst, nil
}
