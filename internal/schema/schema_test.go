package schema

import (
	"reflect"
	"testing"

	"predmatch/internal/value"
)

func emp() *Relation {
	return MustRelation("emp",
		Attribute{Name: "name", Type: value.KindString},
		Attribute{Name: "age", Type: value.KindInt},
		Attribute{Name: "salary", Type: value.KindInt},
	)
}

func TestRelationBasics(t *testing.T) {
	r := emp()
	if r.Name() != "emp" || r.Arity() != 3 {
		t.Fatalf("Name/Arity = %s/%d", r.Name(), r.Arity())
	}
	i, ok := r.AttrIndex("age")
	if !ok || i != 1 {
		t.Fatalf("AttrIndex(age) = %d, %v", i, ok)
	}
	if _, ok := r.AttrIndex("nosuch"); ok {
		t.Fatal("AttrIndex found missing attribute")
	}
	kind, ok := r.AttrType("salary")
	if !ok || kind != value.KindInt {
		t.Fatalf("AttrType(salary) = %v, %v", kind, ok)
	}
	if _, ok := r.AttrType("nosuch"); ok {
		t.Fatal("AttrType found missing attribute")
	}
}

func TestNewRelationErrors(t *testing.T) {
	if _, err := NewRelation(""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewRelation("r"); err == nil {
		t.Error("zero attributes accepted")
	}
	if _, err := NewRelation("r", Attribute{Name: "", Type: value.KindInt}); err == nil {
		t.Error("unnamed attribute accepted")
	}
	if _, err := NewRelation("r",
		Attribute{Name: "a", Type: value.KindInt},
		Attribute{Name: "a", Type: value.KindString}); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 0 {
		t.Fatalf("empty catalog Len = %d", c.Len())
	}
	if err := c.Add(emp()); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(emp()); err == nil {
		t.Error("duplicate relation accepted")
	}
	dept := MustRelation("dept", Attribute{Name: "id", Type: value.KindInt})
	if err := c.Add(dept); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("emp")
	if !ok || got.Name() != "emp" {
		t.Fatalf("Get(emp) = %v, %v", got, ok)
	}
	if _, ok := c.Get("nosuch"); ok {
		t.Error("Get found missing relation")
	}
	if names := c.Names(); !reflect.DeepEqual(names, []string{"dept", "emp"}) {
		t.Fatalf("Names = %v", names)
	}
}

func TestMustRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRelation did not panic on invalid schema")
		}
	}()
	MustRelation("")
}
