// Package schema describes relations and their attributes — the paper's
// database of n relations R1..Rn over which rule selection predicates are
// defined. Rules are "a form of intentional data (schema)" (Section 3),
// and the schema catalog is the anchor for both the storage engine and
// every predicate-matching strategy.
package schema

import (
	"fmt"
	"sort"
	"sync"

	"predmatch/internal/value"
)

// Attribute is one named, typed column of a relation.
type Attribute struct {
	Name string
	Type value.Kind
}

// Relation is a named relation schema.
type Relation struct {
	name   string
	attrs  []Attribute
	byName map[string]int
}

// NewRelation builds a relation schema; attribute names must be unique
// and non-empty.
func NewRelation(name string, attrs ...Attribute) (*Relation, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: relation name must not be empty")
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("schema: relation %s needs at least one attribute", name)
	}
	byName := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: relation %s has an unnamed attribute", name)
		}
		if _, dup := byName[a.Name]; dup {
			return nil, fmt.Errorf("schema: relation %s has duplicate attribute %s", name, a.Name)
		}
		byName[a.Name] = i
	}
	cp := make([]Attribute, len(attrs))
	copy(cp, attrs)
	return &Relation{name: name, attrs: cp, byName: byName}, nil
}

// MustRelation is NewRelation panicking on error, for tests and examples.
func MustRelation(name string, attrs ...Attribute) *Relation {
	r, err := NewRelation(name, attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Attrs returns the attributes in declaration order. The slice must not
// be modified.
func (r *Relation) Attrs() []Attribute { return r.attrs }

// AttrIndex returns the position of the named attribute.
func (r *Relation) AttrIndex(name string) (int, bool) {
	i, ok := r.byName[name]
	return i, ok
}

// AttrType returns the type of the named attribute.
func (r *Relation) AttrType(name string) (value.Kind, bool) {
	i, ok := r.byName[name]
	if !ok {
		return 0, false
	}
	return r.attrs[i].Type, true
}

// Catalog is the set of relation schemas known to a database instance.
// It is safe for concurrent use: one catalog is shared by the storage
// engine, every matcher strategy and the server's lock-free match path,
// where lookups race with DDL-driven Adds. Relation values themselves
// are immutable after construction.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*Relation // guarded-by: mu
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{rels: make(map[string]*Relation)} }

// Add registers a relation schema; duplicate names are an error.
func (c *Catalog) Add(r *Relation) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.rels[r.name]; dup {
		return fmt.Errorf("schema: relation %s already defined", r.name)
	}
	c.rels[r.name] = r
	return nil
}

// Get returns the named relation schema.
func (c *Catalog) Get(name string) (*Relation, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[name]
	return r, ok
}

// Names returns the relation names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.rels))
	for n := range c.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of relations.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rels)
}
