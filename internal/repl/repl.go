// Package repl is the follower side of predmatchd replication: it
// dials the leader, issues the `replicate` op with a resume cursor, and
// feeds the resulting WAL stream — snapshot frames for bootstrap,
// record frames for the live tail — into an Applier (the server's
// ReplApply* methods). The loop reconnects with capped exponential
// backoff on stream loss and resumes from the applier's last applied
// sequence, so a partition costs latency, never correctness.
//
// The package deliberately knows nothing about internal/server: the
// Applier interface is the entire contract, which keeps the dependency
// direction server -> repl -> wal/wire acyclic and lets tests drive a
// Follower against a scripted leader and an in-memory applier.
package repl

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"predmatch/internal/obs"
	"predmatch/internal/wal"
	"predmatch/internal/wire"
)

// Applier consumes the replication stream. internal/server.(*Server)
// implements it; ReplApplyRecord must persist the record before
// returning (the applied sequence is the resume cursor, so anything it
// covers must survive a follower crash).
type Applier interface {
	// ReplAppliedSeq is the last sequence applied and locally durable;
	// the stream resumes after it.
	ReplAppliedSeq() uint64
	// ReplApplySnapshot installs a bootstrap snapshot (only ever sent
	// when the resume cursor predates the leader's pruning horizon).
	ReplApplySnapshot(*wal.Snapshot) error
	// ReplApplyRecord applies and persists one record, in sequence order.
	ReplApplyRecord(*wal.Record) error
	// ReplSealed reports that the applier stopped accepting the stream
	// for good (promotion); the follower loop exits instead of retrying.
	ReplSealed() bool
}

// Options tunes a Follower; the zero value works.
type Options struct {
	// Dial overrides the leader connection (tests inject failures here);
	// default: net.Dialer with a 5s timeout.
	Dial func(addr string) (net.Conn, error)
	// RetryMin/RetryMax bound the reconnect backoff (default 100ms / 3s).
	RetryMin time.Duration
	RetryMax time.Duration
	// Logger receives stream lifecycle events (default: discard).
	Logger *slog.Logger
	// Registry exports the follower gauges and counters (default: none).
	Registry *obs.Registry
}

// Follower drives one replication stream. Construct with New, run the
// loop with Run (it blocks), stop it with Stop. LeaderSeq and
// Reconnects satisfy server.FollowerInfo for the stats surface.
type Follower struct {
	// leader/app/opt are set by New and immutable afterwards; the Run
	// loop and Stop read them without synchronization.
	leader string
	app    Applier
	opt    Options

	// leaderSeq is the leader's log end as of the last frame received;
	// lag = leaderSeq - applied.
	leaderSeq  atomic.Uint64
	reconnects atomic.Uint64

	// stopOnce makes Stop idempotent; stopped is closed exactly once
	// under it and is otherwise only received from.
	stopOnce sync.Once
	stopped  chan struct{}
	// connMu orders Stop's close of the current stream against the Run
	// loop installing a new one, so a racing Stop can never strand a
	// fresh connection.
	connMu sync.Mutex
	nc     net.Conn // guarded-by: connMu (current stream, closed by Stop)
}

// New builds a Follower replicating from the leader address into app.
func New(leader string, app Applier, opt Options) *Follower {
	if opt.Dial == nil {
		opt.Dial = func(addr string) (net.Conn, error) {
			return (&net.Dialer{Timeout: 5 * time.Second}).Dial("tcp", addr)
		}
	}
	if opt.RetryMin <= 0 {
		opt.RetryMin = 100 * time.Millisecond
	}
	if opt.RetryMax < opt.RetryMin {
		opt.RetryMax = 3 * time.Second
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard,
			&slog.HandlerOptions{Level: slog.Level(127)}))
	}
	f := &Follower{leader: leader, app: app, opt: opt, stopped: make(chan struct{})}
	if reg := opt.Registry; reg != nil {
		reg.GaugeFunc("predmatch_repl_lag_seq",
			"Sequences the follower trails the leader by (leader log end minus applied).",
			func() float64 {
				if ls, as := f.leaderSeq.Load(), f.app.ReplAppliedSeq(); ls > as {
					return float64(ls - as)
				}
				return 0
			})
		reg.GaugeFunc("predmatch_repl_applied_seq",
			"Last replicated sequence applied locally.",
			func() float64 { return float64(f.app.ReplAppliedSeq()) })
		reg.CounterFunc("predmatch_repl_reconnects_total",
			"Replication stream re-establishments after a loss.",
			f.reconnects.Load)
	}
	return f
}

// LeaderSeq is the leader's log end as of the last stream frame (0
// before the first).
func (f *Follower) LeaderSeq() uint64 { return f.leaderSeq.Load() }

// Reconnects counts stream re-establishments after the initial connect.
func (f *Follower) Reconnects() uint64 { return f.reconnects.Load() }

// Stop terminates the loop: Run returns nil after the in-flight record
// finishes applying. Safe to call more than once and concurrently with
// Promote-driven sealing.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stopped) })
	f.connMu.Lock()
	if f.nc != nil {
		f.nc.Close()
	}
	f.connMu.Unlock()
}

// fatalError marks a stream error that retrying cannot fix (the applier
// rejected the stream); Run surfaces it instead of reconnecting.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// Run drives the replicate-apply-reconnect loop until Stop, promotion
// (nil), or a fatal apply error (returned). Stream and dial failures
// are retried with backoff forever — a follower's job during a leader
// outage is to keep serving reads and keep trying.
func (f *Follower) Run() error {
	backoff := f.opt.RetryMin
	for attempt := 0; ; attempt++ {
		select {
		case <-f.stopped:
			return nil
		default:
		}
		err := f.streamOnce()
		if f.app.ReplSealed() {
			f.opt.Logger.Info("replication sealed, follower loop exiting",
				"applied", f.app.ReplAppliedSeq())
			return nil
		}
		select {
		case <-f.stopped:
			return nil
		default:
		}
		var fe *fatalError
		if errors.As(err, &fe) {
			f.opt.Logger.Error("replication failed permanently", "err", fe.err)
			return fe.err
		}
		if attempt > 0 || err != nil {
			f.reconnects.Add(1)
		}
		f.opt.Logger.Warn("replication stream lost, retrying",
			"leader", f.leader, "applied", f.app.ReplAppliedSeq(),
			"backoff", backoff, "err", err)
		select {
		case <-time.After(backoff):
		case <-f.stopped:
			return nil
		}
		if backoff *= 2; backoff > f.opt.RetryMax {
			backoff = f.opt.RetryMax
		}
	}
}

// streamOnce runs one connection's lifetime: dial, subscribe with the
// resume cursor, apply frames until the stream breaks. A nil return
// means a clean shutdown (Stop closed the socket); stream errors are
// retryable unless wrapped fatal.
func (f *Follower) streamOnce() error {
	nc, err := f.opt.Dial(f.leader)
	if err != nil {
		return err
	}
	f.connMu.Lock()
	select {
	case <-f.stopped:
		f.connMu.Unlock()
		nc.Close()
		return nil
	default:
	}
	f.nc = nc
	f.connMu.Unlock()
	defer func() {
		f.connMu.Lock()
		f.nc = nil
		f.connMu.Unlock()
		nc.Close()
	}()

	from := f.app.ReplAppliedSeq()
	if err := json.NewEncoder(nc).Encode(wire.Request{
		ID: 1, Op: wire.OpReplicate, FromSeq: from,
	}); err != nil {
		return fmt.Errorf("send replicate: %w", err)
	}
	f.opt.Logger.Info("replication stream opened", "leader", f.leader, "from_seq", from)

	sc := bufio.NewScanner(nc)
	sc.Buffer(make([]byte, 0, 1<<16), wire.MaxReplFrameBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m wire.Message
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		if err := dec.Decode(&m); err != nil {
			return fmt.Errorf("bad stream frame: %w", err)
		}
		switch m.Type {
		case wire.TypeResponse:
			// The replicate ack (possibly arriving after the first frames).
			if m.Error != "" {
				return fmt.Errorf("leader refused replication: %s", m.Error)
			}
			if m.WalSeq > f.leaderSeq.Load() {
				f.leaderSeq.Store(m.WalSeq)
			}
		case wire.TypeRepl:
			if err := f.applyFrame(&m); err != nil {
				return err
			}
		case wire.TypeNotify:
			// A replication connection never subscribes; tolerate and drop.
		default:
			return fmt.Errorf("unexpected frame type %q on replication stream", m.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return errors.New("leader closed the stream")
}

// applyFrame decodes one repl frame and hands it to the applier. Both
// payloads are decoded with UseNumber, exactly like WAL recovery —
// tuple ints must stay json.Number, not float64, or they would change
// type on a follower. Apply errors are fatal: retrying replays the
// same record into the same refusal.
func (f *Follower) applyFrame(m *wire.Message) error {
	if m.LeaderSeq > f.leaderSeq.Load() {
		f.leaderSeq.Store(m.LeaderSeq)
	}
	if len(m.Snap) > 0 {
		var snap wal.Snapshot
		dec := json.NewDecoder(bytes.NewReader(m.Snap))
		dec.UseNumber()
		if err := dec.Decode(&snap); err != nil {
			return fmt.Errorf("bad snapshot frame: %w", err)
		}
		if err := f.app.ReplApplySnapshot(&snap); err != nil {
			return &fatalError{err}
		}
		f.opt.Logger.Info("bootstrap snapshot installed", "seq", snap.Seq)
		return nil
	}
	if len(m.Rec) > 0 {
		var rec wal.Record
		dec := json.NewDecoder(bytes.NewReader(m.Rec))
		dec.UseNumber()
		if err := dec.Decode(&rec); err != nil {
			return fmt.Errorf("bad record frame: %w", err)
		}
		if err := f.app.ReplApplyRecord(&rec); err != nil {
			return &fatalError{err}
		}
		return nil
	}
	return errors.New("repl frame carries neither snapshot nor record")
}
