package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"predmatch/internal/wal"
	"predmatch/internal/wire"
)

// fakeApplier records the stream in memory and mimics the server's
// durability contract (applied advances only after a record lands).
type fakeApplier struct {
	mu      sync.Mutex
	applied uint64
	recs    []uint64
	snaps   []uint64
	failAt  uint64 // ReplApplyRecord fails on this seq (0 = never)
	sealed  bool
}

func (a *fakeApplier) ReplAppliedSeq() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

func (a *fakeApplier) ReplApplySnapshot(s *wal.Snapshot) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.snaps = append(a.snaps, s.Seq)
	a.applied = s.Seq
	return nil
}

func (a *fakeApplier) ReplApplyRecord(r *wal.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.failAt != 0 && r.Seq == a.failAt {
		return fmt.Errorf("refusing seq %d", r.Seq)
	}
	if r.Seq != a.applied+1 {
		return fmt.Errorf("gap: applied %d, got %d", a.applied, r.Seq)
	}
	a.recs = append(a.recs, r.Seq)
	a.applied = r.Seq
	return nil
}

func (a *fakeApplier) ReplSealed() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sealed
}

func (a *fakeApplier) seal() {
	a.mu.Lock()
	a.sealed = true
	a.mu.Unlock()
}

// fakeLeader accepts replication connections and hands each to serve
// along with the follower's requested resume cursor.
func fakeLeader(t *testing.T, serve func(accept int, fromSeq uint64, nc net.Conn)) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		for accept := 0; ; accept++ {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			var req wire.Request
			if err := json.NewDecoder(nc).Decode(&req); err != nil || req.Op != wire.OpReplicate {
				nc.Close()
				continue
			}
			serve(accept, req.FromSeq, nc)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func recFrame(t *testing.T, seq, leaderSeq uint64) wire.Message {
	t.Helper()
	raw, err := json.Marshal(&wal.Record{Seq: seq, Kind: wal.KindDeclare, Relation: "emp"})
	if err != nil {
		t.Fatalf("marshal record: %v", err)
	}
	return wire.Message{Type: wire.TypeRepl, Rec: raw, LeaderSeq: leaderSeq}
}

func snapFrame(t *testing.T, seq, leaderSeq uint64) wire.Message {
	t.Helper()
	raw, err := json.Marshal(&wal.Snapshot{Seq: seq})
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return wire.Message{Type: wire.TypeRepl, Snap: raw, LeaderSeq: leaderSeq}
}

func waitApplied(t *testing.T, a *fakeApplier, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.ReplAppliedSeq() < want {
		if time.Now().After(deadline) {
			t.Fatalf("applied stuck at %d, want %d", a.ReplAppliedSeq(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fastOptions() Options {
	return Options{RetryMin: 5 * time.Millisecond, RetryMax: 20 * time.Millisecond}
}

// The follower must survive a mid-stream connection loss and resume
// from its applied cursor, not from scratch.
func TestFollowerResumesAfterStreamLoss(t *testing.T) {
	app := &fakeApplier{}
	ln := fakeLeader(t, func(accept int, fromSeq uint64, nc net.Conn) {
		defer nc.Close()
		enc := json.NewEncoder(nc)
		enc.Encode(wire.Message{Type: wire.TypeResponse, ID: 1, OK: true, WalSeq: 8})
		switch accept {
		case 0:
			if fromSeq != 0 {
				t.Errorf("first connect resumed from %d", fromSeq)
			}
			for seq := uint64(1); seq <= 5; seq++ {
				enc.Encode(recFrame(t, seq, 8))
			}
			// Drop the connection with the tail unsent.
		default:
			if fromSeq != 5 {
				t.Errorf("reconnect resumed from %d, want 5", fromSeq)
			}
			for seq := fromSeq + 1; seq <= 8; seq++ {
				enc.Encode(recFrame(t, seq, 8))
			}
			// Keep the stream open until the follower stops.
			var buf [1]byte
			nc.Read(buf[:])
		}
	})

	f := New(ln.Addr().String(), app, fastOptions())
	done := make(chan error, 1)
	go func() { done <- f.Run() }()
	waitApplied(t, app, 8)
	if f.Reconnects() == 0 {
		t.Error("reconnect counter did not advance")
	}
	if f.LeaderSeq() != 8 {
		t.Errorf("LeaderSeq = %d, want 8", f.LeaderSeq())
	}
	f.Stop()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	app.mu.Lock()
	defer app.mu.Unlock()
	for i, seq := range app.recs {
		if seq != uint64(i+1) {
			t.Fatalf("applied sequence %d at position %d", seq, i)
		}
	}
	if len(app.recs) != 8 {
		t.Fatalf("applied %d records, want 8", len(app.recs))
	}
}

// A follower whose cursor predates the leader's log receives a
// snapshot frame first, then the record tail.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	app := &fakeApplier{}
	ln := fakeLeader(t, func(accept int, fromSeq uint64, nc net.Conn) {
		defer nc.Close()
		enc := json.NewEncoder(nc)
		enc.Encode(wire.Message{Type: wire.TypeResponse, ID: 1, OK: true, WalSeq: 12})
		enc.Encode(snapFrame(t, 10, 12))
		enc.Encode(recFrame(t, 11, 12))
		enc.Encode(recFrame(t, 12, 12))
		var buf [1]byte
		nc.Read(buf[:])
	})

	f := New(ln.Addr().String(), app, fastOptions())
	done := make(chan error, 1)
	go func() { done <- f.Run() }()
	waitApplied(t, app, 12)
	f.Stop()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	app.mu.Lock()
	defer app.mu.Unlock()
	if len(app.snaps) != 1 || app.snaps[0] != 10 {
		t.Fatalf("snapshots installed: %v, want [10]", app.snaps)
	}
	if len(app.recs) != 2 || app.recs[0] != 11 || app.recs[1] != 12 {
		t.Fatalf("records applied: %v, want [11 12]", app.recs)
	}
}

// An apply refusal is fatal: re-dialing would replay the same record
// into the same refusal, so Run must surface it instead of spinning.
func TestFollowerFatalApplyError(t *testing.T) {
	app := &fakeApplier{failAt: 2}
	ln := fakeLeader(t, func(accept int, fromSeq uint64, nc net.Conn) {
		defer nc.Close()
		enc := json.NewEncoder(nc)
		enc.Encode(wire.Message{Type: wire.TypeResponse, ID: 1, OK: true, WalSeq: 3})
		for seq := fromSeq + 1; seq <= 3; seq++ {
			enc.Encode(recFrame(t, seq, 3))
		}
		var buf [1]byte
		nc.Read(buf[:])
	})

	f := New(ln.Addr().String(), app, fastOptions())
	defer f.Stop()
	errc := make(chan error, 1)
	go func() { errc <- f.Run() }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Run returned nil after a fatal apply error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run kept retrying a fatal apply error")
	}
}

// Sealing (promotion) ends the loop cleanly even while the leader is
// unreachable and the follower is mid-backoff.
func TestFollowerSealedExitsCleanly(t *testing.T) {
	app := &fakeApplier{}
	// A leader that refuses every stream keeps the follower in its retry
	// loop.
	ln := fakeLeader(t, func(accept int, fromSeq uint64, nc net.Conn) {
		json.NewEncoder(nc).Encode(wire.Message{
			Type: wire.TypeResponse, ID: 1, Error: "not now",
		})
		nc.Close()
	})

	f := New(ln.Addr().String(), app, fastOptions())
	done := make(chan error, 1)
	go func() { done <- f.Run() }()
	time.Sleep(30 * time.Millisecond)
	app.seal()
	f.Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after sealing: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit after sealing")
	}
}

// A dead leader address must keep the loop retrying, not failing.
func TestFollowerRetriesDial(t *testing.T) {
	app := &fakeApplier{}
	// Grab a port and close it so dials fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	opts := fastOptions()
	opts.Dial = func(a string) (net.Conn, error) {
		return nil, errors.New("synthetic dial failure")
	}
	f := New(addr, app, opts)
	done := make(chan error, 1)
	go func() { done <- f.Run() }()
	deadline := time.Now().Add(5 * time.Second)
	for f.Reconnects() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d retries", f.Reconnects())
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.Stop()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}
