package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one completed, immutable trace as held by the flight
// recorder and rendered by /traces.
type Trace struct {
	// ID is the trace id in wire form (FormatID).
	ID string `json:"id"`
	// Root is the root span's name (the server op for request traces).
	Root string `json:"root"`
	// Start is the wall-clock start, for display; all span timings are
	// monotonic offsets from it.
	Start time.Time `json:"start"`
	// Duration is the root span's duration in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
	// Slow marks a trace retained by the slow threshold (including
	// root-only traces synthesized for unsampled slow requests).
	Slow bool `json:"slow,omitempty"`
	// Remote marks a trace joined from a wire-propagated context: the
	// id was minted by another process.
	Remote bool `json:"remote,omitempty"`
	// Spans holds every finished span, in end order. Parent links
	// express the tree; the root has ID 1 and Parent 0.
	Spans []SpanData `json:"spans"`

	// Seq is the recorder admission order (newest-first sort key and
	// cross-ring dedup key); not part of the wire form.
	Seq uint64 `json:"-"`
}

// SpanData is one finished span.
type SpanData struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"` // 0 = root
	Name   string `json:"name"`
	// Start is the monotonic offset from the trace start.
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Attr is one typed span attribute. Exactly one of Str/Int/Bool is
// meaningful, named by Kind.
type Attr struct {
	Key  string `json:"key"`
	Kind string `json:"kind"` // "str", "int" or "bool"
	Str  string `json:"str,omitempty"`
	Int  int64  `json:"int,omitempty"`
	Bool bool   `json:"bool,omitempty"`
}

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Kind: "str", Str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: "int", Int: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr { return Attr{Key: key, Kind: "bool", Bool: v} }

// recorder is a lock-striped ring buffer of completed traces. Writers
// are spread round-robin across the stripes so concurrent request
// goroutines finishing traces contend on different locks; each stripe
// is an independent ring that overwrites its oldest entry when full.
// Readers (the /traces handler) lock one stripe at a time, so a
// snapshot never blocks more than 1/nth of the writers.
const recStripes = 8

type recorder struct {
	seq     atomic.Uint64 // round-robin writer distribution
	stripes [recStripes]recStripe
}

type recStripe struct {
	mu  sync.Mutex
	buf []*Trace // guarded-by: mu (ring storage, fixed capacity)
	n   int      // guarded-by: mu (entries written, saturates at cap)
	pos int      // guarded-by: mu (next write slot)
}

// init sizes the rings: capacity is split evenly across the stripes,
// at least one slot each.
func (r *recorder) init(capacity int) {
	per := (capacity + recStripes - 1) / recStripes
	if per < 1 {
		per = 1
	}
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		s.buf = make([]*Trace, per)
		s.mu.Unlock()
	}
}

// put records one trace, evicting the stripe's oldest when full.
func (r *recorder) put(t *Trace) {
	s := &r.stripes[r.seq.Add(1)%recStripes]
	s.mu.Lock()
	s.buf[s.pos] = t
	s.pos = (s.pos + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
}

// snapshot copies the current contents, in no particular order.
func (r *recorder) snapshot() []*Trace {
	var out []*Trace
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for _, t := range s.buf[:s.n] {
			out = append(out, t)
		}
		s.mu.Unlock()
	}
	return out
}

// sortTraces orders traces newest-admitted first.
func sortTraces(ts []*Trace) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Seq > ts[j].Seq })
}
