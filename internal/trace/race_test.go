package trace

import (
	"io"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestRecorderConcurrency hammers every concurrent surface of the
// tracer at once — span creation/ending across goroutines (including
// ending a child from a different goroutine than its siblings, the
// group-commit shape), slow-trace synthesis, ring snapshots and both
// renderers — and then verifies the package leaked no goroutines. The
// tracer spawns none by design (the recorder is passive memory, not a
// collector pipeline); this test keeps it that way. Run with -race.
func TestRecorderConcurrency(t *testing.T) {
	before := runtime.NumGoroutine()

	tr := New(Config{SampleEvery: 2, Slow: 500 * time.Microsecond, Capacity: 32, SlowCapacity: 8})
	prof := NewProfiles()
	const workers = 8
	const iters = 200

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case tr.Sampled():
					sp := tr.Start("server.op")
					sp.SetStr("rel", "emp")
					child := sp.Child("shard.stab")
					child.SetInt("results", int64(i))
					// End the child from another goroutine, like the
					// off-mutex group-commit span does.
					done := make(chan struct{})
					go func() { child.End(); close(done) }()
					<-done
					sp.End()
				case i%3 == 0:
					tr.RecordSlow("server.slowop", time.Now(), time.Millisecond)
				default:
					sp := tr.Join("follower.apply", uint64(w*iters+i+1))
					sp.Child("wal.append").End()
					sp.End()
				}
				rp := prof.Rel("emp", []string{"age", "salary"})
				rp.Stab(time.Microsecond, 1)
				rp.QueriedAttr(i % 2)
				rp.RecordWrite()
			}
		}(w)
	}
	// Concurrent readers: the /traces handler and the stats snapshot.
	stop := make(chan struct{})
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			WriteText(io.Discard, tr.Traces())
			WriteJSON(io.Discard, tr.SlowTraces())
			prof.Snapshot()
		}
	}()
	wg.Wait()
	close(stop)
	rd.Wait()

	if got := tr.Traces(); len(got) == 0 {
		t.Error("no traces recorded by the hammer")
	}
	if got := tr.SlowTraces(); len(got) == 0 {
		t.Error("no slow traces recorded by the hammer")
	}

	// Goroutine-leak check: allow the runtime a moment to retire the
	// worker goroutines, then require the count back at baseline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
