package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// goldenTraces builds a deterministic recorder's-eye view of two
// traces: a remote multi-span mutate showing the full pipeline
// (prefilter → stab → firing → WAL append → group commit) and a
// root-only synthesized slow trace — the two shapes /traces serves.
func goldenTraces() []*Trace {
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return []*Trace{
		{
			ID:       "00000000deadbeef",
			Root:     "server.insert",
			Start:    start,
			Duration: 1520 * time.Microsecond,
			Slow:     true,
			Remote:   true,
			Seq:      2,
			Spans: []SpanData{
				{ID: 3, Parent: 2, Name: "shard.prefilter", Start: 60 * time.Microsecond,
					Duration: 10 * time.Microsecond, Attrs: []Attr{Bool("admitted", true)}},
				{ID: 4, Parent: 2, Name: "shard.stab", Start: 80 * time.Microsecond,
					Duration: 200 * time.Microsecond, Attrs: []Attr{Int("results", 3)}},
				{ID: 5, Parent: 2, Name: "rule.fire", Start: 300 * time.Microsecond,
					Duration: 150 * time.Microsecond, Attrs: []Attr{Str("rule", "mid_band")}},
				{ID: 2, Parent: 1, Name: "engine.event", Start: 50 * time.Microsecond,
					Duration: 420 * time.Microsecond,
					Attrs:    []Attr{Str("rel", "emp"), Str("op", "insert")}},
				{ID: 6, Parent: 1, Name: "wal.append", Start: 500 * time.Microsecond,
					Duration: 90 * time.Microsecond, Attrs: []Attr{Int("seq", 42)}},
				{ID: 7, Parent: 1, Name: "wal.commit", Start: 600 * time.Microsecond,
					Duration: 900 * time.Microsecond, Attrs: []Attr{Int("seq", 42)}},
				{ID: 1, Parent: 0, Name: "server.insert",
					Duration: 1520 * time.Microsecond, Attrs: []Attr{Str("rel", "emp")}},
			},
		},
		{
			ID:       "0000000000000abc",
			Root:     "server.match",
			Start:    start.Add(-time.Second),
			Duration: 250*time.Millisecond + 333*time.Nanosecond,
			Slow:     true,
			Seq:      1,
			Spans: []SpanData{
				{ID: 1, Name: "server.match", Duration: 250*time.Millisecond + 333*time.Nanosecond,
					Attrs: []Attr{Str("rel", "emp"), Str("remote", "10.0.0.7:58214")}},
			},
		},
	}
}

// TestWriteTextGolden pins the human rendering of /traces and
// `predmatch trace`: tree nesting by parent links, start-offset
// ordering among siblings, flag and attribute formatting. Regenerate
// with `go test ./internal/trace -update`.
func TestWriteTextGolden(t *testing.T) {
	var got bytes.Buffer
	if err := WriteText(&got, goldenTraces()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "traces.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("text rendering differs from %s:\ngot:\n%s\nwant:\n%s", golden, got.Bytes(), want)
	}
}

// TestWriteJSON checks the JSON document shape tools consume: a
// {"traces": [...]} wrapper, never null, with Seq kept internal.
func TestWriteJSON(t *testing.T) {
	var empty bytes.Buffer
	if err := WriteJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(empty.Bytes(), &doc); err != nil {
		t.Fatalf("empty document: %v\n%s", err, empty.Bytes())
	}
	if doc.Traces == nil || len(doc.Traces) != 0 {
		t.Errorf("nil input must render as an empty array, got %s", empty.Bytes())
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenTraces()); err != nil {
		t.Fatal(err)
	}
	var full struct {
		Traces []map[string]any `json:"traces"`
	}
	if err := json.Unmarshal(buf.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Traces) != 2 {
		t.Fatalf("%d traces in document", len(full.Traces))
	}
	tr := full.Traces[0]
	if tr["id"] != "00000000deadbeef" || tr["slow"] != true || tr["remote"] != true {
		t.Errorf("trace head = %v", tr)
	}
	if _, leaked := tr["Seq"]; leaked {
		t.Error("recorder Seq leaked into the wire form")
	}
	if spans, ok := tr["spans"].([]any); !ok || len(spans) != 7 {
		t.Errorf("spans = %v", tr["spans"])
	}
}
