package trace

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Profiles accumulates the per-relation / per-attribute workload
// observations the adaptive meta-matcher (ROADMAP item 1) needs to
// select index structures: stab volume and latency, observed
// selectivity (results per stab), write volume, and a histogram of
// which attributes the index actually consults per probe. It is fed
// directly from the hot paths (not from sampled spans), so the numbers
// describe the full workload, and every counter is a plain atomic —
// the cost per probe is a handful of uncontended atomic adds, matching
// the prefilter's existing admitted/skipped counters.
//
// The relation map is published copy-on-write through an atomic
// pointer, exactly like the shard directory: lookups on the hot path
// are a single lock-free load; relation creation serializes on a
// mutex.
type Profiles struct {
	mu   sync.Mutex
	rels atomic.Pointer[map[string]*RelProfile] // write-guarded-by: mu
}

// NewProfiles returns an empty accumulator.
func NewProfiles() *Profiles {
	p := &Profiles{}
	empty := make(map[string]*RelProfile)
	p.mu.Lock()
	p.rels.Store(&empty)
	p.mu.Unlock()
	return p
}

// Rel returns rel's accumulator, creating it with the given attribute
// names on first sight (attrs are ignored afterwards). The returned
// handle is lock-free; callers cache it. Nil-safe: a nil receiver
// returns nil, and every RelProfile method is a no-op on nil.
func (p *Profiles) Rel(rel string, attrs []string) *RelProfile {
	if p == nil {
		return nil
	}
	if rp := (*p.rels.Load())[rel]; rp != nil {
		return rp
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := *p.rels.Load()
	if rp := cur[rel]; rp != nil {
		return rp
	}
	rp := &RelProfile{
		rel:     rel,
		attrs:   append([]string(nil), attrs...),
		queried: make([]atomic.Uint64, len(attrs)),
	}
	next := make(map[string]*RelProfile, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[rel] = rp
	p.rels.Store(&next)
	return rp
}

// Lookup returns rel's accumulator or nil, without creating one.
func (p *Profiles) Lookup(rel string) *RelProfile {
	if p == nil {
		return nil
	}
	return (*p.rels.Load())[rel]
}

// Drop removes rel's accumulator so a dropped relation cannot leak its
// profile forever. Callers that cached the RelProfile handle keep a
// functioning (but orphaned) accumulator; the next Rel call for the
// same name starts fresh. Nil-safe and idempotent. Consumers holding a
// Window over these profiles prune their own per-relation state on the
// next Update.
func (p *Profiles) Drop(rel string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := *p.rels.Load()
	if _, ok := cur[rel]; !ok {
		return
	}
	next := make(map[string]*RelProfile, len(cur)-1)
	for k, v := range cur {
		if k != rel {
			next[k] = v
		}
	}
	p.rels.Store(&next)
}

// RelProfile is one relation's accumulator. All counters are
// monotonic; consumers derive rates and ratios by differencing.
type RelProfile struct {
	rel   string
	attrs []string // attribute names, fixed at creation

	stabs   atomic.Uint64
	stabNS  atomic.Uint64
	results atomic.Uint64
	skips   atomic.Uint64
	writes  atomic.Uint64
	// queried[i] counts stabs that consulted attrs[i] — probes made
	// while at least one registered interval clause constrained the
	// attribute (the positions the index keeps trees for).
	queried []atomic.Uint64
}

// Stab records one index probe: its latency and result count.
func (r *RelProfile) Stab(d time.Duration, results int) {
	if r == nil {
		return
	}
	r.stabs.Add(1)
	r.stabNS.Add(uint64(d))
	r.results.Add(uint64(results))
}

// Skip records a probe the prefilter proved unmatchable (no stab ran).
func (r *RelProfile) Skip() {
	if r != nil {
		r.skips.Add(1)
	}
}

// QueriedAttr records that attribute position i was consulted by a
// stab. Out-of-range positions are ignored.
func (r *RelProfile) QueriedAttr(i int) {
	if r != nil && i >= 0 && i < len(r.queried) {
		r.queried[i].Add(1)
	}
}

// RecordWrite records one applied mutation event against the relation.
func (r *RelProfile) RecordWrite() {
	if r != nil {
		r.writes.Add(1)
	}
}

// RelProfileStat is a point-in-time snapshot of one relation's
// accumulator.
type RelProfileStat struct {
	Relation string
	Stabs    uint64  // index probes that ran
	Skipped  uint64  // probes the prefilter skipped
	Results  uint64  // total predicate matches (selectivity numerator)
	StabSecs float64 // cumulative stab latency
	Writes   uint64  // applied mutation events
	Attrs    []AttrProfileStat
}

// AttrProfileStat is one attribute's share of the queried histogram.
type AttrProfileStat struct {
	Name    string
	Queried uint64
}

// Snapshot returns every relation's current counters, sorted by
// relation name. Nil-safe.
func (p *Profiles) Snapshot() []RelProfileStat {
	if p == nil {
		return nil
	}
	cur := *p.rels.Load()
	out := make([]RelProfileStat, 0, len(cur))
	for _, rp := range cur {
		st := RelProfileStat{
			Relation: rp.rel,
			Stabs:    rp.stabs.Load(),
			Skipped:  rp.skips.Load(),
			Results:  rp.results.Load(),
			StabSecs: float64(rp.stabNS.Load()) / 1e9,
			Writes:   rp.writes.Load(),
		}
		for i := range rp.queried {
			st.Attrs = append(st.Attrs, AttrProfileStat{
				Name:    rp.attrs[i],
				Queried: rp.queried[i].Load(),
			})
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Relation < out[j].Relation })
	return out
}

// WindowStat is the decayed (recent-workload) view of one relation: the
// rates and averages a consumer of Window.Update reads instead of the
// lifetime counters. Rates are exponentially weighted moving averages,
// so a workload shift (read-heavy → write-heavy) moves them within a
// few half-lives while a one-tick burst does not whipsaw them.
type WindowStat struct {
	Relation string
	// StabRate/WriteRate/SkipRate are EWMA events-per-second.
	StabRate  float64
	WriteRate float64
	SkipRate  float64
	// AvgStabNS is the EWMA per-stab latency in nanoseconds; AvgResults
	// the EWMA matches-per-stab (observed selectivity). Both fold in
	// only over update intervals that actually saw stabs.
	AvgStabNS  float64
	AvgResults float64
	// Lifetime carries the raw monotonic counters behind the view.
	Lifetime RelProfileStat
}

// relWindow is one relation's EWMA state plus the last raw counters the
// deltas are taken against.
type relWindow struct {
	prev RelProfileStat
	stat WindowStat
}

// Window is a consumer-owned decayed view over a Profiles accumulator:
// each Update diffs the raw counters against the previous call and
// folds the interval's rates into per-relation EWMAs with the
// configured half-life. The zero of everything is handled (first Update
// only seeds baselines), relations dropped from the Profiles (see
// Profiles.Drop) are pruned on the next Update, and the caller supplies
// the clock, so tests can drive it deterministically. One Window has
// one owner: methods are serialized by its own mutex, but distinct
// consumers should hold distinct Windows (each diffs against its own
// baselines).
type Window struct {
	prof     *Profiles
	halfLife time.Duration

	mu   sync.Mutex
	last time.Time             // guarded-by: mu
	rels map[string]*relWindow // guarded-by: mu
}

// DefaultHalfLife is the Window decay used when none is configured.
const DefaultHalfLife = 10 * time.Second

// NewWindow returns a decayed view over p with the given EWMA half-life
// (0 = DefaultHalfLife).
func NewWindow(p *Profiles, halfLife time.Duration) *Window {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &Window{prof: p, halfLife: halfLife, rels: make(map[string]*relWindow)}
}

// Update advances the window to now and returns every relation's
// current decayed view, sorted by relation name. The first call only
// seeds the baselines (all rates zero); calls with a non-positive
// elapsed interval return the current view unchanged.
func (w *Window) Update(now time.Time) []WindowStat {
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.prof.Snapshot()
	if !w.last.IsZero() {
		if dt := now.Sub(w.last).Seconds(); dt > 0 {
			// alpha = 1 - 2^(-dt/halfLife): after one half-life an old
			// rate contributes half of the new estimate.
			alpha := 1 - math.Exp2(-dt/w.halfLife.Seconds())
			for i := range cur {
				w.fold(&cur[i], dt, alpha)
			}
			w.last = now
		}
	} else {
		w.last = now
		for i := range cur {
			w.rels[cur[i].Relation] = &relWindow{
				prev: cur[i],
				stat: WindowStat{Relation: cur[i].Relation, Lifetime: cur[i]},
			}
		}
	}
	// Prune relations the accumulator no longer tracks (Profiles.Drop),
	// then render the surviving views.
	live := make(map[string]bool, len(cur))
	for i := range cur {
		live[cur[i].Relation] = true
	}
	out := make([]WindowStat, 0, len(w.rels))
	for rel, rw := range w.rels {
		if !live[rel] {
			delete(w.rels, rel)
			continue
		}
		out = append(out, rw.stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Relation < out[j].Relation })
	return out
}

// fold updates one relation's EWMA state from the delta between its
// previous and current raw counters.
//
//predmatchvet:holds mu
func (w *Window) fold(cur *RelProfileStat, dt, alpha float64) {
	rw := w.rels[cur.Relation]
	if rw == nil {
		// A relation born inside the interval: its whole lifetime is the
		// interval, so the instantaneous rates below are right.
		rw = &relWindow{stat: WindowStat{Relation: cur.Relation}}
		w.rels[cur.Relation] = rw
	}
	dStabs := float64(cur.Stabs - rw.prev.Stabs)
	dWrites := float64(cur.Writes - rw.prev.Writes)
	dSkips := float64(cur.Skipped - rw.prev.Skipped)
	dResults := float64(cur.Results - rw.prev.Results)
	dStabSecs := cur.StabSecs - rw.prev.StabSecs
	ewma := func(old, inst float64) float64 { return old + alpha*(inst-old) }
	rw.stat.StabRate = ewma(rw.stat.StabRate, dStabs/dt)
	rw.stat.WriteRate = ewma(rw.stat.WriteRate, dWrites/dt)
	rw.stat.SkipRate = ewma(rw.stat.SkipRate, dSkips/dt)
	if dStabs > 0 {
		instNS := dStabSecs / dStabs * 1e9
		instRes := dResults / dStabs
		if rw.stat.AvgStabNS == 0 {
			rw.stat.AvgStabNS, rw.stat.AvgResults = instNS, instRes
		} else {
			rw.stat.AvgStabNS = ewma(rw.stat.AvgStabNS, instNS)
			rw.stat.AvgResults = ewma(rw.stat.AvgResults, instRes)
		}
	}
	rw.stat.Lifetime = *cur
	rw.prev = *cur
}

// Stat returns rel's current decayed view as of the last Update.
func (w *Window) Stat(rel string) (WindowStat, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	rw, ok := w.rels[rel]
	if !ok {
		return WindowStat{}, false
	}
	return rw.stat, true
}
