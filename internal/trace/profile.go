package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Profiles accumulates the per-relation / per-attribute workload
// observations the adaptive meta-matcher (ROADMAP item 1) needs to
// select index structures: stab volume and latency, observed
// selectivity (results per stab), write volume, and a histogram of
// which attributes the index actually consults per probe. It is fed
// directly from the hot paths (not from sampled spans), so the numbers
// describe the full workload, and every counter is a plain atomic —
// the cost per probe is a handful of uncontended atomic adds, matching
// the prefilter's existing admitted/skipped counters.
//
// The relation map is published copy-on-write through an atomic
// pointer, exactly like the shard directory: lookups on the hot path
// are a single lock-free load; relation creation serializes on a
// mutex.
type Profiles struct {
	mu   sync.Mutex
	rels atomic.Pointer[map[string]*RelProfile] // write-guarded-by: mu
}

// NewProfiles returns an empty accumulator.
func NewProfiles() *Profiles {
	p := &Profiles{}
	empty := make(map[string]*RelProfile)
	p.mu.Lock()
	p.rels.Store(&empty)
	p.mu.Unlock()
	return p
}

// Rel returns rel's accumulator, creating it with the given attribute
// names on first sight (attrs are ignored afterwards). The returned
// handle is lock-free; callers cache it. Nil-safe: a nil receiver
// returns nil, and every RelProfile method is a no-op on nil.
func (p *Profiles) Rel(rel string, attrs []string) *RelProfile {
	if p == nil {
		return nil
	}
	if rp := (*p.rels.Load())[rel]; rp != nil {
		return rp
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur := *p.rels.Load()
	if rp := cur[rel]; rp != nil {
		return rp
	}
	rp := &RelProfile{
		rel:     rel,
		attrs:   append([]string(nil), attrs...),
		queried: make([]atomic.Uint64, len(attrs)),
	}
	next := make(map[string]*RelProfile, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[rel] = rp
	p.rels.Store(&next)
	return rp
}

// Lookup returns rel's accumulator or nil, without creating one.
func (p *Profiles) Lookup(rel string) *RelProfile {
	if p == nil {
		return nil
	}
	return (*p.rels.Load())[rel]
}

// RelProfile is one relation's accumulator. All counters are
// monotonic; consumers derive rates and ratios by differencing.
type RelProfile struct {
	rel   string
	attrs []string // attribute names, fixed at creation

	stabs   atomic.Uint64
	stabNS  atomic.Uint64
	results atomic.Uint64
	skips   atomic.Uint64
	writes  atomic.Uint64
	// queried[i] counts stabs that consulted attrs[i] — probes made
	// while at least one registered interval clause constrained the
	// attribute (the positions the index keeps trees for).
	queried []atomic.Uint64
}

// Stab records one index probe: its latency and result count.
func (r *RelProfile) Stab(d time.Duration, results int) {
	if r == nil {
		return
	}
	r.stabs.Add(1)
	r.stabNS.Add(uint64(d))
	r.results.Add(uint64(results))
}

// Skip records a probe the prefilter proved unmatchable (no stab ran).
func (r *RelProfile) Skip() {
	if r != nil {
		r.skips.Add(1)
	}
}

// QueriedAttr records that attribute position i was consulted by a
// stab. Out-of-range positions are ignored.
func (r *RelProfile) QueriedAttr(i int) {
	if r != nil && i >= 0 && i < len(r.queried) {
		r.queried[i].Add(1)
	}
}

// RecordWrite records one applied mutation event against the relation.
func (r *RelProfile) RecordWrite() {
	if r != nil {
		r.writes.Add(1)
	}
}

// RelProfileStat is a point-in-time snapshot of one relation's
// accumulator.
type RelProfileStat struct {
	Relation string
	Stabs    uint64  // index probes that ran
	Skipped  uint64  // probes the prefilter skipped
	Results  uint64  // total predicate matches (selectivity numerator)
	StabSecs float64 // cumulative stab latency
	Writes   uint64  // applied mutation events
	Attrs    []AttrProfileStat
}

// AttrProfileStat is one attribute's share of the queried histogram.
type AttrProfileStat struct {
	Name    string
	Queried uint64
}

// Snapshot returns every relation's current counters, sorted by
// relation name. Nil-safe.
func (p *Profiles) Snapshot() []RelProfileStat {
	if p == nil {
		return nil
	}
	cur := *p.rels.Load()
	out := make([]RelProfileStat, 0, len(cur))
	for _, rp := range cur {
		st := RelProfileStat{
			Relation: rp.rel,
			Stabs:    rp.stabs.Load(),
			Skipped:  rp.skips.Load(),
			Results:  rp.results.Load(),
			StabSecs: float64(rp.stabNS.Load()) / 1e9,
			Writes:   rp.writes.Load(),
		}
		for i := range rp.queried {
			st.Attrs = append(st.Attrs, AttrProfileStat{
				Name:    rp.attrs[i],
				Queried: rp.queried[i].Load(),
			})
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Relation < out[j].Relation })
	return out
}
