package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// WriteJSON renders traces as a JSON document {"traces": [...]},
// indented for humans but stable for tools.
func WriteJSON(w io.Writer, traces []*Trace) error {
	if traces == nil {
		traces = []*Trace{} // render [] rather than null
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Traces []*Trace `json:"traces"`
	}{traces})
}

// WriteText renders traces as an indented human-readable span tree,
// newest trace first:
//
//	trace 00000000deadbeef  server.insert  1.2ms  slow  start=...
//	  server.insert 1.2ms
//	    engine.event 800µs  [rel=emp op=insert depth=0]
//	    wal.commit 250µs  [seq=42]
func WriteText(w io.Writer, traces []*Trace) error {
	for i, t := range traces {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := writeTrace(w, t); err != nil {
			return err
		}
	}
	return nil
}

func writeTrace(w io.Writer, t *Trace) error {
	flags := ""
	if t.Slow {
		flags += "  slow"
	}
	if t.Remote {
		flags += "  remote"
	}
	if _, err := fmt.Fprintf(w, "trace %s  %s  %s%s  start=%s\n",
		t.ID, t.Root, fmtDur(t.Duration), flags,
		t.Start.UTC().Format(time.RFC3339Nano)); err != nil {
		return err
	}
	// Build the tree: children grouped by parent, ordered by start
	// offset (ties by id, which is allocation order).
	kids := make(map[uint64][]SpanData, len(t.Spans))
	for _, sd := range t.Spans {
		kids[sd.Parent] = append(kids[sd.Parent], sd)
	}
	for _, k := range kids {
		sort.Slice(k, func(i, j int) bool {
			if k[i].Start != k[j].Start {
				return k[i].Start < k[j].Start
			}
			return k[i].ID < k[j].ID
		})
	}
	var walk func(parent uint64, depth int) error
	walk = func(parent uint64, depth int) error {
		for _, sd := range kids[parent] {
			if _, err := fmt.Fprintf(w, "%*s%s %s%s\n",
				2*(depth+1), "", sd.Name, fmtDur(sd.Duration), fmtAttrs(sd.Attrs)); err != nil {
				return err
			}
			if err := walk(sd.ID, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0, 0)
}

// fmtDur rounds to the microsecond for readability; sub-microsecond
// spans keep full precision so they don't render as 0s.
func fmtDur(d time.Duration) string {
	if r := d.Round(time.Microsecond); r != 0 {
		return r.String()
	}
	return d.String()
}

// fmtAttrs renders attributes as "  [k=v k=v]", empty for none.
func fmtAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	out := "  ["
	for i, a := range attrs {
		if i > 0 {
			out += " "
		}
		out += a.Key + "=" + a.ValueString()
	}
	return out + "]"
}

// ValueString renders the attribute's value per its kind.
func (a Attr) ValueString() string {
	switch a.Kind {
	case "int":
		return strconv.FormatInt(a.Int, 10)
	case "bool":
		return strconv.FormatBool(a.Bool)
	default:
		return a.Str
	}
}
