package trace

import (
	"strings"
	"testing"
	"time"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Sampled() {
		t.Error("nil tracer: Sampled() = true")
	}
	if tr.Slow() != 0 {
		t.Error("nil tracer: Slow() != 0")
	}
	if sp := tr.Start("op"); sp != nil {
		t.Error("nil tracer: Start returned a span")
	}
	if sp := tr.Join("op", 42); sp != nil {
		t.Error("nil tracer: Join returned a span")
	}
	if id := tr.RecordSlow("op", time.Now(), time.Second); id != "" {
		t.Errorf("nil tracer: RecordSlow returned %q", id)
	}
	if got := tr.Traces(); got != nil {
		t.Error("nil tracer: Traces() != nil")
	}
	if got := tr.SlowTraces(); got != nil {
		t.Error("nil tracer: SlowTraces() != nil")
	}
}

// TestNilSpanIsNoOp pins constraint 1 of the package: an untraced
// request threads nil through the whole pipeline, so every Span method
// must tolerate a nil receiver.
func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	if c := sp.Child("x"); c != nil {
		t.Error("nil span: Child returned non-nil")
	}
	sp.SetStr("k", "v")
	sp.SetInt("k", 1)
	sp.SetBool("k", true)
	sp.End()
	if sp.TraceID() != "" {
		t.Error("nil span: TraceID() != \"\"")
	}
	if sp.SpanID() != 0 {
		t.Error("nil span: SpanID() != 0")
	}
	if sp.Duration() != 0 {
		t.Error("nil span: Duration() != 0")
	}
}

func TestFormatParseID(t *testing.T) {
	cases := []struct {
		id   uint64
		wire string
	}{
		{1, "0000000000000001"},
		{0xdeadbeef, "00000000deadbeef"},
		{0xffffffffffffffff, "ffffffffffffffff"},
	}
	for _, c := range cases {
		if got := FormatID(c.id); got != c.wire {
			t.Errorf("FormatID(%#x) = %q, want %q", c.id, got, c.wire)
		}
		got, ok := ParseID(c.wire)
		if !ok || got != c.id {
			t.Errorf("ParseID(%q) = %#x, %v; want %#x, true", c.wire, got, ok, c.id)
		}
	}
	// Short (unpadded) ids parse too: slow-log readers paste truncated ids.
	if got, ok := ParseID("deadbeef"); !ok || got != 0xdeadbeef {
		t.Errorf("ParseID(\"deadbeef\") = %#x, %v", got, ok)
	}
	for _, bad := range []string{"", "0", "0000000000000000", "xyz", "12345678901234567", "-1", "0x12"} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestSampling(t *testing.T) {
	always := New(Config{SampleEvery: 1})
	for i := 0; i < 10; i++ {
		if !always.Sampled() {
			t.Fatal("SampleEvery=1: Sampled() = false")
		}
	}
	never := New(Config{SampleEvery: 0})
	for i := 0; i < 10; i++ {
		if never.Sampled() {
			t.Fatal("SampleEvery=0: Sampled() = true")
		}
	}
	third := New(Config{SampleEvery: 3})
	n := 0
	for i := 0; i < 300; i++ {
		if third.Sampled() {
			n++
		}
	}
	if n != 100 {
		t.Errorf("SampleEvery=3: sampled %d of 300, want 100", n)
	}
}

func TestStartEndRecordsTrace(t *testing.T) {
	tr := New(Config{})
	root := tr.Start("server.match")
	root.SetStr("rel", "emp")
	stab := root.Child("shard.stab")
	stab.SetInt("results", 7)
	stab.End()
	wantID := root.TraceID()
	root.End()
	root.End() // double End must be a no-op

	got := tr.Traces()
	if len(got) != 1 {
		t.Fatalf("Traces() returned %d traces, want 1", len(got))
	}
	rec := got[0]
	if rec.ID != wantID {
		t.Errorf("trace id %q, want %q", rec.ID, wantID)
	}
	if rec.Root != "server.match" {
		t.Errorf("root name %q", rec.Root)
	}
	if rec.Remote || rec.Slow {
		t.Errorf("unexpected flags: remote=%v slow=%v", rec.Remote, rec.Slow)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("%d spans, want 2", len(rec.Spans))
	}
	// Spans land in end order: the child ended first.
	if rec.Spans[0].Name != "shard.stab" || rec.Spans[0].Parent != 1 || rec.Spans[0].ID != 2 {
		t.Errorf("child span = %+v", rec.Spans[0])
	}
	if rec.Spans[1].Name != "server.match" || rec.Spans[1].Parent != 0 || rec.Spans[1].ID != 1 {
		t.Errorf("root span = %+v", rec.Spans[1])
	}
	if len(rec.Spans[0].Attrs) != 1 || rec.Spans[0].Attrs[0].Int != 7 {
		t.Errorf("child attrs = %+v", rec.Spans[0].Attrs)
	}
}

func TestJoinRecordsRemoteTrace(t *testing.T) {
	tr := New(Config{})
	sp := tr.Join("follower.apply", 0xabc)
	if got := sp.TraceID(); got != FormatID(0xabc) {
		t.Errorf("joined TraceID = %q, want %q", got, FormatID(0xabc))
	}
	sp.End()
	got := tr.Traces()
	if len(got) != 1 || !got[0].Remote || got[0].ID != FormatID(0xabc) {
		t.Fatalf("joined trace = %+v", got)
	}
}

func TestRecordSlow(t *testing.T) {
	tr := New(Config{Slow: time.Millisecond})
	id := tr.RecordSlow("server.insert", time.Now().Add(-5*time.Millisecond), 5*time.Millisecond,
		Str("rel", "emp"))
	if _, ok := ParseID(id); !ok {
		t.Fatalf("RecordSlow returned unparseable id %q", id)
	}
	slow := tr.SlowTraces()
	if len(slow) != 1 {
		t.Fatalf("SlowTraces() returned %d, want 1", len(slow))
	}
	rec := slow[0]
	if !rec.Slow || rec.ID != id || rec.Root != "server.insert" {
		t.Errorf("slow trace = %+v", rec)
	}
	if len(rec.Spans) != 1 || rec.Spans[0].ID != 1 || rec.Spans[0].Parent != 0 {
		t.Errorf("synthesized trace is not root-only: %+v", rec.Spans)
	}
	// The merged view includes slow-ring-only traces.
	if all := tr.Traces(); len(all) != 1 || all[0].ID != id {
		t.Errorf("Traces() merge = %d traces", len(all))
	}
}

// TestSlowTraceDedup: a sampled trace past the slow threshold enters
// both rings but must appear once in the merged view.
func TestSlowTraceDedup(t *testing.T) {
	tr := New(Config{Slow: time.Nanosecond})
	sp := tr.Start("server.match")
	time.Sleep(time.Millisecond) // guarantee the 1ns threshold is crossed
	sp.End()
	if slow := tr.SlowTraces(); len(slow) != 1 || !slow[0].Slow {
		t.Fatalf("SlowTraces() = %d", len(slow))
	}
	if all := tr.Traces(); len(all) != 1 {
		t.Errorf("Traces() returned %d, want 1 (dedup across rings)", len(all))
	}
}

func TestRingEvictionAndOrder(t *testing.T) {
	tr := New(Config{Capacity: 8}) // one slot per stripe
	var last string
	for i := 0; i < 100; i++ {
		sp := tr.Start("op")
		last = sp.TraceID()
		sp.End()
	}
	got := tr.Traces()
	if len(got) != 8 {
		t.Fatalf("Traces() returned %d, want 8 (ring capacity)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq < got[i].Seq {
			t.Fatalf("traces not newest-first at %d", i)
		}
	}
	if got[0].ID != last {
		t.Errorf("newest trace is %s, want %s", got[0].ID, last)
	}
}

// TestIDUniqueness: the splitmix64 walk must not repeat or mint the
// reserved 0 over a realistic run.
func TestIDUniqueness(t *testing.T) {
	tr := New(Config{})
	seen := make(map[string]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := FormatID(tr.newID())
		if seen[id] {
			t.Fatalf("duplicate id %s after %d draws", id, i)
		}
		if strings.Trim(id, "0") == "" {
			t.Fatal("minted the reserved zero id")
		}
		seen[id] = true
	}
}

func TestProfilesNilSafety(t *testing.T) {
	var p *Profiles
	rp := p.Rel("emp", []string{"age"})
	if rp != nil {
		t.Error("nil Profiles: Rel returned non-nil")
	}
	if p.Lookup("emp") != nil {
		t.Error("nil Profiles: Lookup returned non-nil")
	}
	if p.Snapshot() != nil {
		t.Error("nil Profiles: Snapshot returned non-nil")
	}
	rp.Stab(time.Millisecond, 3)
	rp.Skip()
	rp.QueriedAttr(0)
	rp.RecordWrite()
}

func TestProfilesAccumulate(t *testing.T) {
	p := NewProfiles()
	rp := p.Rel("emp", []string{"age", "salary"})
	if p.Rel("emp", []string{"other"}) != rp {
		t.Fatal("second Rel did not return the same accumulator")
	}
	if p.Lookup("emp") != rp {
		t.Fatal("Lookup did not find the accumulator")
	}
	rp.Stab(2*time.Millisecond, 3)
	rp.Stab(time.Millisecond, 0)
	rp.Skip()
	rp.QueriedAttr(1)
	rp.QueriedAttr(1)
	rp.QueriedAttr(5) // out of range: ignored
	rp.RecordWrite()
	p.Rel("dept", nil).RecordWrite()

	snap := p.Snapshot()
	if len(snap) != 2 || snap[0].Relation != "dept" || snap[1].Relation != "emp" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	emp := snap[1]
	if emp.Stabs != 2 || emp.Skipped != 1 || emp.Results != 3 || emp.Writes != 1 {
		t.Errorf("emp counters = %+v", emp)
	}
	if want := 0.003; emp.StabSecs != want {
		t.Errorf("emp.StabSecs = %v, want %v", emp.StabSecs, want)
	}
	if len(emp.Attrs) != 2 || emp.Attrs[0].Queried != 0 || emp.Attrs[1].Queried != 2 ||
		emp.Attrs[1].Name != "salary" {
		t.Errorf("emp attr histogram = %+v", emp.Attrs)
	}
}
