// Package trace is the daemon's request-scoped tracing subsystem: a
// span model threaded through the full request pipeline (dispatch →
// prefilter → snapshot load → index stab → firing cascade → WAL append
// → group commit → follower apply) so one slow request can be explained
// span by span instead of guessed at from aggregate metrics.
//
// Design constraints, in order:
//
//  1. Zero overhead when off. Spans are passed as explicit *Span
//     values, never via context.Context, and every method is a no-op on
//     a nil receiver — an untraced request threads nil through the
//     whole pipeline and pays only the nil checks.
//  2. Always-on capture. Finished traces land in a lock-striped
//     ring-buffer "flight recorder" (plus a separate ring that retains
//     slow traces unconditionally), so the recent past is always
//     inspectable at /traces without any collector infrastructure.
//  3. Head sampling. The keep/drop decision is made once, before the
//     root span is created (Sampled), so a sampled request records
//     every span and an unsampled one records none. Slow requests that
//     were not sampled are still retained as synthesized root-only
//     traces (RecordSlow), unifying the old -slowreq logging with the
//     recorder.
//  4. Stdlib only, and a leaf of the package graph: everything above it
//     (wire, shard, engine, wal, server) may import it.
//
// Durations are monotonic: span starts are offsets from the trace's
// start reading, taken with time.Since, so a wall-clock step never
// corrupts a duration.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets a Tracer's sampling and retention knobs.
type Config struct {
	// SampleEvery enables head sampling: one in every SampleEvery
	// requests is traced end to end. 0 disables head sampling
	// (slow-trace retention still works), 1 traces everything.
	SampleEvery int

	// Slow retains any trace whose root duration reaches this bound in
	// the slow ring, regardless of sampling. 0 disables slow retention.
	Slow time.Duration

	// Capacity is the flight recorder's total trace capacity
	// (default 256).
	Capacity int

	// SlowCapacity is the slow ring's trace capacity (default 64).
	SlowCapacity int
}

// Tracer makes sampling decisions, allocates trace ids and owns the
// flight recorder. A nil *Tracer is a valid "tracing disabled" tracer:
// Sampled reports false, Start and Join return nil spans.
type Tracer struct {
	every uint64
	slow  time.Duration

	seq  atomic.Uint64 // head-sampling clock
	ids  atomic.Uint64 // trace id generator state (splitmix64 walk)
	fseq atomic.Uint64 // admission order across both rings

	rec     recorder // sampled traces
	slowRec recorder // slow traces, retained unconditionally
}

// New builds a Tracer. Zero-value knobs get the documented defaults.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = 64
	}
	t := &Tracer{
		every: uint64(max(cfg.SampleEvery, 0)),
		slow:  cfg.Slow,
	}
	t.rec.init(cfg.Capacity)
	t.slowRec.init(cfg.SlowCapacity)
	// Random-origin ids so concurrent processes (leader and followers)
	// never collide on locally minted trace ids.
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		t.ids.Store(binary.LittleEndian.Uint64(seed[:]))
	}
	return t
}

// Sampled makes the head-sampling decision for one request: true for
// one in every cfg.SampleEvery calls. The caller creates a root span
// (Start) only on true, which is what makes sampling "head" — the
// whole request is either fully traced or not at all.
func (t *Tracer) Sampled() bool {
	if t == nil || t.every == 0 {
		return false
	}
	return t.seq.Add(1)%t.every == 0
}

// Slow returns the slow-trace retention threshold (0 = disabled).
func (t *Tracer) Slow() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// Start begins a locally rooted trace and returns its root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.root(name, t.newID(), false)
}

// Join begins a root span attached to a remote trace id — a trace that
// originated on another process (a traced client request, or a leader's
// mutation arriving on a follower through the replication stream). The
// resulting trace is recorded here under the remote id, so the fleet's
// recorders can be correlated by trace id.
func (t *Tracer) Join(name string, traceID uint64) *Span {
	if t == nil {
		return nil
	}
	return t.root(name, traceID, true)
}

func (t *Tracer) root(name string, id uint64, remote bool) *Span {
	st := &state{tr: t, id: id, remote: remote, start: time.Now(), next: 1}
	return &Span{st: st, id: 1, name: name, start: st.start}
}

// RecordSlow retains a synthesized root-only trace for a request that
// was not head-sampled but crossed the slow threshold: the tracer
// cannot reconstruct the request's inner spans after the fact, but the
// op, start and duration the server already measured are enough to make
// the request explorable (and greppable by the trace id this returns,
// which the server attaches to the slow-request log line).
func (t *Tracer) RecordSlow(name string, start time.Time, d time.Duration, attrs ...Attr) string {
	if t == nil {
		return ""
	}
	tr := &Trace{
		ID:       FormatID(t.newID()),
		Root:     name,
		Start:    start,
		Duration: d,
		Slow:     true,
		Spans:    []SpanData{{ID: 1, Name: name, Duration: d, Attrs: attrs}},
	}
	tr.Seq = t.fseq.Add(1)
	t.slowRec.put(tr)
	return tr.ID
}

// finish records a completed trace: sampled traces always enter the
// flight recorder; traces at or past the slow threshold additionally
// enter the slow ring, which evicts independently (a burst of fast
// sampled traffic can never push a slow trace out).
func (t *Tracer) finish(tr *Trace) {
	tr.Slow = t.slow > 0 && tr.Duration >= t.slow
	tr.Seq = t.fseq.Add(1)
	t.rec.put(tr)
	if tr.Slow {
		t.slowRec.put(tr)
	}
}

// Traces returns the recorded traces, newest first: the flight
// recorder's contents merged with the slow ring, deduplicated by
// admission sequence.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	out := t.rec.snapshot()
	seen := make(map[uint64]bool, len(out))
	for _, tr := range out {
		seen[tr.Seq] = true
	}
	for _, tr := range t.slowRec.snapshot() {
		if !seen[tr.Seq] {
			out = append(out, tr)
		}
	}
	sortTraces(out)
	return out
}

// SlowTraces returns only the slow ring's contents, newest first.
func (t *Tracer) SlowTraces() []*Trace {
	if t == nil {
		return nil
	}
	out := t.slowRec.snapshot()
	sortTraces(out)
	return out
}

// newID mints a trace id: a splitmix64 walk from a random origin, so
// ids are unique within a process and collide across processes with
// negligible probability.
func (t *Tracer) newID() uint64 {
	x := t.ids.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 { // reserve 0 for "no trace"
		x = 1
	}
	return x
}

// state is the shared, mutable core of one in-flight trace. Spans of
// one trace may end from different goroutines (the group-commit wait
// runs off the server mutex), so the finished-span list is locked.
type state struct {
	tr     *Tracer
	id     uint64
	remote bool
	start  time.Time

	mu    sync.Mutex
	next  uint64     // guarded-by: mu (span id allocator; root is 1)
	spans []SpanData // guarded-by: mu (finished spans, end order)
}

// Span is one timed operation inside a trace. The zero of usefulness:
// every method is a no-op on a nil receiver, so untraced code paths
// thread nil spans at the cost of a nil check. A Span's setters and End
// must be called from one goroutine (the one doing the spanned work);
// distinct spans of the same trace are safe to end concurrently.
type Span struct {
	st     *state
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// Child begins a sub-span. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.st.mu.Lock()
	s.st.next++
	id := s.st.next
	s.st.mu.Unlock()
	return &Span{st: s.st, id: id, parent: s.id, name: name, start: time.Now()}
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s != nil {
		s.attrs = append(s.attrs, Str(key, v))
	}
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s != nil {
		s.attrs = append(s.attrs, Int(key, v))
	}
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s != nil {
		s.attrs = append(s.attrs, Bool(key, v))
	}
}

// End finishes the span. Ending the root span completes the trace and
// hands it to the flight recorder; a second End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start)
	sd := SpanData{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start.Sub(s.st.start),
		Duration: d,
		Attrs:    s.attrs,
	}
	st := s.st
	st.mu.Lock()
	st.spans = append(st.spans, sd)
	var done []SpanData
	if s.parent == 0 {
		done = st.spans
		st.spans = nil
	}
	st.mu.Unlock()
	if done == nil {
		return
	}
	st.tr.finish(&Trace{
		ID:       FormatID(st.id),
		Root:     s.name,
		Start:    st.start,
		Duration: d,
		Remote:   st.remote,
		Spans:    done,
	})
}

// TraceID returns the trace's id in wire form ("" on a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return FormatID(s.st.id)
}

// SpanID returns this span's id within the trace (0 on a nil span).
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Duration returns the time elapsed since the span started (its final
// duration once ended is what lands in the recorder; this accessor is
// for callers that need the running value, e.g. the server's slow-path
// check). 0 on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// FormatID renders a trace id in the wire form: 16 lowercase hex
// digits, zero-padded so ids sort and grep cleanly.
func FormatID(id uint64) string {
	const hexdig = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdig[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseID parses a wire-form trace id. It accepts any 1–16 digit hex
// string; ok is false for anything else (including 0, the reserved
// "no trace" id).
func ParseID(s string) (uint64, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil || id == 0 {
		return 0, false
	}
	return id, true
}
