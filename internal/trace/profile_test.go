package trace

import (
	"math"
	"testing"
	"time"
)

func TestProfilesDrop(t *testing.T) {
	p := NewProfiles()
	rp := p.Rel("emp", []string{"age"})
	rp.Stab(time.Microsecond, 1)
	p.Rel("dept", nil).RecordWrite()

	p.Drop("emp")
	if p.Lookup("emp") != nil {
		t.Fatal("Lookup after Drop returned the dropped relation")
	}
	if got := len(p.Snapshot()); got != 1 {
		t.Fatalf("Snapshot after Drop: %d relations, want 1", got)
	}
	// The cached handle keeps working (orphaned) and a re-created
	// relation starts fresh.
	rp.Stab(time.Microsecond, 1)
	fresh := p.Rel("emp", []string{"age"})
	if fresh == rp {
		t.Fatal("Rel after Drop returned the dropped accumulator")
	}
	if st := p.Snapshot(); st[1].Relation != "emp" || st[1].Stabs != 0 {
		t.Fatalf("re-created relation not fresh: %+v", st[1])
	}
	// Idempotent and nil-safe.
	p.Drop("emp")
	p.Drop("emp")
	p.Drop("never-existed")
	var nilP *Profiles
	nilP.Drop("emp")
}

func TestWindowRatesAndDecay(t *testing.T) {
	p := NewProfiles()
	rp := p.Rel("emp", []string{"age"})
	w := NewWindow(p, 2*time.Second)
	t0 := time.Unix(1000, 0)

	// First Update seeds baselines: rates zero.
	if st := w.Update(t0); len(st) != 1 || st[0].StabRate != 0 {
		t.Fatalf("seed Update: %+v", st)
	}

	// 100 stabs at 1µs each, 2 results apiece, over 1s.
	for i := 0; i < 100; i++ {
		rp.Stab(time.Microsecond, 2)
	}
	for i := 0; i < 10; i++ {
		rp.RecordWrite()
	}
	st := w.Update(t0.Add(time.Second))
	// dt = halfLife/2 → alpha = 1 - 2^(-1/2) ≈ 0.2929.
	alpha := 1 - math.Exp2(-0.5)
	wantStab := alpha * 100
	if math.Abs(st[0].StabRate-wantStab) > 1e-9 {
		t.Fatalf("StabRate = %v, want %v", st[0].StabRate, wantStab)
	}
	if math.Abs(st[0].WriteRate-alpha*10) > 1e-9 {
		t.Fatalf("WriteRate = %v, want %v", st[0].WriteRate, alpha*10)
	}
	// First interval with stabs seeds the averages directly.
	if math.Abs(st[0].AvgStabNS-1000) > 1e-6 {
		t.Fatalf("AvgStabNS = %v, want 1000", st[0].AvgStabNS)
	}
	if math.Abs(st[0].AvgResults-2) > 1e-9 {
		t.Fatalf("AvgResults = %v, want 2", st[0].AvgResults)
	}
	if st[0].Lifetime.Stabs != 100 {
		t.Fatalf("Lifetime.Stabs = %d, want 100", st[0].Lifetime.Stabs)
	}

	// An idle interval decays the rates toward zero but leaves the
	// latency average (no stabs ran to fold in).
	st = w.Update(t0.Add(2 * time.Second))
	if st[0].StabRate >= wantStab || st[0].StabRate <= 0 {
		t.Fatalf("idle interval: StabRate = %v, want decayed in (0, %v)", st[0].StabRate, wantStab)
	}
	if st[0].AvgStabNS != 1000 {
		t.Fatalf("idle interval changed AvgStabNS: %v", st[0].AvgStabNS)
	}

	// Stat mirrors the last Update.
	got, ok := w.Stat("emp")
	if !ok || got.StabRate != st[0].StabRate {
		t.Fatalf("Stat = %+v, %v", got, ok)
	}
	if _, ok := w.Stat("nope"); ok {
		t.Fatal("Stat for unknown relation reported ok")
	}
}

func TestWindowShiftOvertakesLifetime(t *testing.T) {
	// A workload shift must move the decayed rates past the lifetime
	// average within a few half-lives — the whole reason the meta
	// engine reads the window, not the raw counters.
	p := NewProfiles()
	rp := p.Rel("emp", nil)
	w := NewWindow(p, time.Second)
	now := time.Unix(0, 0)
	w.Update(now)

	// Phase 1: 10s read-heavy (1000 stabs/s, no writes).
	for i := 0; i < 10; i++ {
		for j := 0; j < 1000; j++ {
			rp.Stab(time.Microsecond, 1)
		}
		now = now.Add(time.Second)
		w.Update(now)
	}
	st, _ := w.Stat("emp")
	if st.StabRate < 900 || st.WriteRate != 0 {
		t.Fatalf("phase 1: %+v", st)
	}

	// Phase 2: 5s write-heavy (1000 writes/s, no stabs).
	for i := 0; i < 5; i++ {
		for j := 0; j < 1000; j++ {
			rp.RecordWrite()
		}
		now = now.Add(time.Second)
		w.Update(now)
	}
	st, _ = w.Stat("emp")
	if st.WriteRate < st.StabRate {
		t.Fatalf("after shift, WriteRate (%v) should dominate StabRate (%v)", st.WriteRate, st.StabRate)
	}
	// Lifetime counters still say read-heavy — the window disagrees.
	if st.Lifetime.Stabs < st.Lifetime.Writes {
		t.Fatalf("lifetime should still be stab-dominated: %+v", st.Lifetime)
	}
}

func TestWindowPrunesDroppedAndAdoptsNew(t *testing.T) {
	p := NewProfiles()
	p.Rel("a", nil).Stab(time.Microsecond, 0)
	w := NewWindow(p, time.Second)
	now := time.Unix(0, 0)
	w.Update(now)

	// New relation appears mid-stream: adopted with interval-local rates.
	p.Rel("b", nil).RecordWrite()
	now = now.Add(time.Second)
	st := w.Update(now)
	if len(st) != 2 || st[1].Relation != "b" || st[1].WriteRate <= 0 {
		t.Fatalf("new relation not adopted: %+v", st)
	}

	// Dropped relation disappears from the window on the next Update.
	p.Drop("a")
	now = now.Add(time.Second)
	st = w.Update(now)
	if len(st) != 1 || st[0].Relation != "b" {
		t.Fatalf("dropped relation not pruned: %+v", st)
	}
	if _, ok := w.Stat("a"); ok {
		t.Fatal("Stat still knows dropped relation")
	}
}

func TestWindowNonPositiveInterval(t *testing.T) {
	p := NewProfiles()
	rp := p.Rel("a", nil)
	w := NewWindow(p, 0) // 0 → DefaultHalfLife
	now := time.Unix(0, 0)
	w.Update(now)
	rp.Stab(time.Microsecond, 0)
	// Same timestamp: no fold, view unchanged.
	st := w.Update(now)
	if len(st) != 1 || st[0].StabRate != 0 {
		t.Fatalf("zero-dt Update folded anyway: %+v", st)
	}
}
