// Package markset provides the small sets of interval identifiers stored
// in the <, = and > slots of IBS-tree nodes (Hanson et al., SIGMOD 1990,
// Section 4.2).
//
// Two implementations are provided. SliceSet keeps a sorted slice — compact
// and cache friendly, the sensible default for the small sets that arise in
// practice. AVLSet keeps a balanced binary search tree, the representation
// assumed by the paper's O(log^2 N) update analysis ("if mark sets are
// maintained using auxiliary binary search trees"). The choice is an
// ablation axis in the benchmark suite.
package markset

import "sort"

// ID identifies an interval (predicate) stored in an interval index.
type ID int64

// Set is a mutable set of interval identifiers.
type Set interface {
	// Add inserts id and reports whether it was not already present.
	Add(id ID) bool
	// Remove deletes id and reports whether it was present.
	Remove(id ID) bool
	// Has reports membership.
	Has(id ID) bool
	// Len returns the number of members.
	Len() int
	// Each calls fn for every member until fn returns false.
	// The set must not be mutated during iteration.
	Each(fn func(ID) bool)
	// IDs returns the members as a fresh slice in ascending order.
	IDs() []ID
}

// Factory constructs an empty Set. IBS-trees take a Factory so the slot
// representation can be swapped per tree.
type Factory func() Set

// NewSlice is a Factory for SliceSet.
func NewSlice() Set { return &SliceSet{} }

// NewAVL is a Factory for AVLSet.
func NewAVL() Set { return &AVLSet{} }

// SliceSet is a Set backed by a sorted slice. Membership tests are
// O(log n); insertion and removal are O(n) moves, which is fast in
// practice for the small n typical of IBS-tree mark sets.
type SliceSet struct {
	ids []ID
}

func (s *SliceSet) search(id ID) (int, bool) {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i, i < len(s.ids) && s.ids[i] == id
}

// Add inserts id, reporting whether it was absent.
func (s *SliceSet) Add(id ID) bool {
	i, ok := s.search(id)
	if ok {
		return false
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
	return true
}

// Remove deletes id, reporting whether it was present.
func (s *SliceSet) Remove(id ID) bool {
	i, ok := s.search(id)
	if !ok {
		return false
	}
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
	return true
}

// Has reports membership.
func (s *SliceSet) Has(id ID) bool { _, ok := s.search(id); return ok }

// Len returns the number of members.
func (s *SliceSet) Len() int { return len(s.ids) }

// Each iterates members in ascending order.
func (s *SliceSet) Each(fn func(ID) bool) {
	for _, id := range s.ids {
		if !fn(id) {
			return
		}
	}
}

// IDs returns a copy of the members in ascending order.
func (s *SliceSet) IDs() []ID {
	out := make([]ID, len(s.ids))
	copy(out, s.ids)
	return out
}

// AVLSet is a Set backed by an AVL tree, giving O(log n) insertion,
// removal and membership. This is the auxiliary-binary-search-tree
// representation from the paper's Section 5.1 analysis.
type AVLSet struct {
	root *avlNode
	n    int
}

type avlNode struct {
	id          ID
	left, right *avlNode
	height      int8
}

func height(n *avlNode) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *avlNode) fix() {
	l, r := height(n.left), height(n.right)
	if l > r {
		n.height = l + 1
	} else {
		n.height = r + 1
	}
}

func rotateRight(n *avlNode) *avlNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.fix()
	l.fix()
	return l
}

func rotateLeft(n *avlNode) *avlNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.fix()
	r.fix()
	return r
}

func rebalance(n *avlNode) *avlNode {
	n.fix()
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

func avlInsert(n *avlNode, id ID, added *bool) *avlNode {
	if n == nil {
		*added = true
		return &avlNode{id: id, height: 1}
	}
	switch {
	case id < n.id:
		n.left = avlInsert(n.left, id, added)
	case id > n.id:
		n.right = avlInsert(n.right, id, added)
	default:
		return n
	}
	return rebalance(n)
}

func avlDelete(n *avlNode, id ID, removed *bool) *avlNode {
	if n == nil {
		return nil
	}
	switch {
	case id < n.id:
		n.left = avlDelete(n.left, id, removed)
	case id > n.id:
		n.right = avlDelete(n.right, id, removed)
	default:
		*removed = true
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		// Replace with predecessor value, then delete the predecessor.
		p := n.left
		for p.right != nil {
			p = p.right
		}
		n.id = p.id
		var dummy bool
		n.left = avlDelete(n.left, p.id, &dummy)
	}
	return rebalance(n)
}

// Add inserts id, reporting whether it was absent.
func (s *AVLSet) Add(id ID) bool {
	var added bool
	s.root = avlInsert(s.root, id, &added)
	if added {
		s.n++
	}
	return added
}

// Remove deletes id, reporting whether it was present.
func (s *AVLSet) Remove(id ID) bool {
	var removed bool
	s.root = avlDelete(s.root, id, &removed)
	if removed {
		s.n--
	}
	return removed
}

// Has reports membership.
func (s *AVLSet) Has(id ID) bool {
	n := s.root
	for n != nil {
		switch {
		case id < n.id:
			n = n.left
		case id > n.id:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Len returns the number of members.
func (s *AVLSet) Len() int { return s.n }

// Each iterates members in ascending order.
func (s *AVLSet) Each(fn func(ID) bool) {
	var walk func(n *avlNode) bool
	walk = func(n *avlNode) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.id) && walk(n.right)
	}
	walk(s.root)
}

// IDs returns the members in ascending order.
func (s *AVLSet) IDs() []ID {
	out := make([]ID, 0, s.n)
	s.Each(func(id ID) bool {
		out = append(out, id)
		return true
	})
	return out
}
