package markset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func implementations() map[string]Factory {
	return map[string]Factory{
		"slice": NewSlice,
		"avl":   NewAVL,
	}
}

func TestBasicOperations(t *testing.T) {
	for name, factory := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := factory()
			if s.Len() != 0 {
				t.Fatalf("new set has Len %d", s.Len())
			}
			if !s.Add(5) || !s.Add(3) || !s.Add(9) {
				t.Fatal("Add of new element returned false")
			}
			if s.Add(5) {
				t.Fatal("Add of duplicate returned true")
			}
			if s.Len() != 3 {
				t.Fatalf("Len = %d, want 3", s.Len())
			}
			if !s.Has(3) || !s.Has(5) || !s.Has(9) || s.Has(4) {
				t.Fatal("Has wrong")
			}
			if !reflect.DeepEqual(s.IDs(), []ID{3, 5, 9}) {
				t.Fatalf("IDs = %v", s.IDs())
			}
			if !s.Remove(5) {
				t.Fatal("Remove of present element returned false")
			}
			if s.Remove(5) {
				t.Fatal("Remove of absent element returned true")
			}
			if !reflect.DeepEqual(s.IDs(), []ID{3, 9}) {
				t.Fatalf("IDs after remove = %v", s.IDs())
			}
		})
	}
}

func TestEachOrderAndEarlyStop(t *testing.T) {
	for name, factory := range implementations() {
		t.Run(name, func(t *testing.T) {
			s := factory()
			for _, id := range []ID{7, 1, 4, 9, 2} {
				s.Add(id)
			}
			var got []ID
			s.Each(func(id ID) bool {
				got = append(got, id)
				return true
			})
			if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
				t.Fatalf("Each order not ascending: %v", got)
			}
			count := 0
			s.Each(func(id ID) bool {
				count++
				return count < 2
			})
			if count != 2 {
				t.Fatalf("early stop visited %d, want 2", count)
			}
		})
	}
}

// TestImplementationsAgree drives both implementations with identical
// random operation sequences and requires identical observable state.
func TestImplementationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := NewSlice(), NewAVL()
	for op := 0; op < 5000; op++ {
		id := ID(rng.Intn(200))
		switch rng.Intn(3) {
		case 0, 1:
			if a.Add(id) != b.Add(id) {
				t.Fatalf("op %d: Add(%d) disagreed", op, id)
			}
		default:
			if a.Remove(id) != b.Remove(id) {
				t.Fatalf("op %d: Remove(%d) disagreed", op, id)
			}
		}
		if a.Len() != b.Len() {
			t.Fatalf("op %d: Len %d vs %d", op, a.Len(), b.Len())
		}
	}
	if !reflect.DeepEqual(a.IDs(), b.IDs()) {
		t.Fatalf("final IDs differ:\n%v\n%v", a.IDs(), b.IDs())
	}
}

// Property: a set behaves like a map[ID]bool.
func TestQuickSetSemantics(t *testing.T) {
	for name, factory := range implementations() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []int16) bool {
				s := factory()
				ref := map[ID]bool{}
				for _, raw := range ops {
					id := ID(raw % 64)
					if raw >= 0 {
						if s.Add(id) != !ref[id] {
							return false
						}
						ref[id] = true
					} else {
						if s.Remove(id) != ref[id] {
							return false
						}
						delete(ref, id)
					}
					if s.Len() != len(ref) {
						return false
					}
				}
				for id := range ref {
					if !s.Has(id) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAVLBalance checks the AVL set stays logarithmic under sorted inserts.
func TestAVLBalance(t *testing.T) {
	s := &AVLSet{}
	const n = 1 << 12
	for i := 0; i < n; i++ {
		s.Add(ID(i))
	}
	if h := int(height(s.root)); h > 14 { // 1.44*log2(4096) ~ 17; AVL of 4096 <= 14 levels in practice
		t.Errorf("AVL height %d for %d sorted inserts", h, n)
	}
	for i := 0; i < n; i += 2 {
		s.Remove(ID(i))
	}
	if s.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", s.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		if s.Has(ID(i)) != (i%2 == 1) {
			t.Fatalf("Has(%d) wrong after removals", i)
		}
	}
}
