// Package value provides the dynamically typed, totally ordered attribute
// values used by the relational substrate. Predicates in the paper range
// over "totally ordered domains" such as integers, reals and strings;
// Value is the runtime representation of one element of such a domain.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the supported attribute domains.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer domain.
	KindInt Kind = iota
	// KindFloat is a 64-bit IEEE floating point domain.
	KindFloat
	// KindString is a byte-wise ordered string domain.
	KindString
	// KindBool is the two-point domain false < true.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindFromName parses a kind name as used in schema declarations.
func KindFromName(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "int", "integer":
		return KindInt, nil
	case "float", "real", "double":
		return KindFloat, nil
	case "string", "text", "varchar":
		return KindString, nil
	case "bool", "boolean":
		return KindBool, nil
	default:
		return 0, fmt.Errorf("value: unknown type %q", name)
	}
}

// Value is one dynamically typed attribute value. The zero Value is the
// integer 0.
type Value struct {
	kind Kind
	i    int64 // int payload; bool as 0/1
	f    float64
	s    string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore to
// avoid colliding with the String method required by fmt.Stringer.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind returns the value's domain.
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload; it panics on other kinds.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsFloat returns the float payload; it panics on other kinds.
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
	}
	return v.f
}

// AsString returns the string payload; it panics on other kinds.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s", v.kind))
	}
	return v.s
}

// AsBool returns the boolean payload; it panics on other kinds.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.i != 0
}

// Numeric returns the value as a float64 coordinate for geometric
// indexing (R-trees). Integers and floats convert exactly (within float64
// range); booleans map to 0/1. ok is false for strings, which have no
// meaningful geometric embedding.
func (v Value) Numeric() (f float64, ok bool) {
	switch v.kind {
	case KindInt, KindBool:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Compare is a total order over values: first by kind, then within the
// kind's natural order. Ordering across kinds is arbitrary but stable,
// which keeps mixed-kind containers well defined; schema typing ensures
// comparisons on an attribute always see one kind.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindInt, KindBool:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
		return 0
	default:
		return strings.Compare(a.s, b.s)
	}
}

// Equal reports a == b under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports a < b under Compare.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// String renders the value as a literal: integers and floats bare,
// strings single-quoted, booleans true/false.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Parse converts a textual literal into a value of the given kind, as
// when loading tuples from CSV.
func Parse(kind Kind, text string) (Value, error) {
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(text), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as int: %w", text, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(text), 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as float: %w", text, err)
		}
		return Float(f), nil
	case KindString:
		return String_(text), nil
	case KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(text))
		if err != nil {
			return Value{}, fmt.Errorf("value: parsing %q as bool: %w", text, err)
		}
		return Bool(b), nil
	default:
		return Value{}, fmt.Errorf("value: unknown kind %v", kind)
	}
}
