package value

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestKindAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("AsInt")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat")
	}
	if String_("hi").AsString() != "hi" {
		t.Error("AsString")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool")
	}
	kinds := []struct {
		v    Value
		kind Kind
	}{
		{Int(1), KindInt}, {Float(1), KindFloat}, {String_("a"), KindString}, {Bool(true), KindBool},
	}
	for _, tc := range kinds {
		if tc.v.Kind() != tc.kind {
			t.Errorf("Kind() = %v, want %v", tc.v.Kind(), tc.kind)
		}
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Int(1).AsFloat() },
		func() { Float(1).AsInt() },
		func() { String_("a").AsBool() },
		func() { Bool(true).AsString() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on kind mismatch", i)
				}
			}()
			fn()
		}()
	}
}

func TestCompareWithinKinds(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1},
		{Float(2.5), Float(2.5), 0},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		if got := Compare(tc.b, tc.a); got != -tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", tc.b, tc.a, got, -tc.want)
		}
	}
	if !Equal(Int(5), Int(5)) || Equal(Int(5), Int(6)) {
		t.Error("Equal wrong")
	}
	if !Less(Int(5), Int(6)) || Less(Int(6), Int(5)) {
		t.Error("Less wrong")
	}
}

func TestCompareAcrossKindsIsTotal(t *testing.T) {
	vals := []Value{Int(5), Float(1.5), String_("m"), Bool(true), Int(-3), String_("a")}
	sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	// Transitivity sanity: the sorted sequence must be pairwise ordered.
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if Compare(vals[i], vals[j]) > 0 {
				t.Fatalf("sorted order violated between %v and %v", vals[i], vals[j])
			}
		}
	}
}

func TestNumeric(t *testing.T) {
	if f, ok := Int(7).Numeric(); !ok || f != 7 {
		t.Error("Int Numeric")
	}
	if f, ok := Float(2.5).Numeric(); !ok || f != 2.5 {
		t.Error("Float Numeric")
	}
	if f, ok := Bool(true).Numeric(); !ok || f != 1 {
		t.Error("Bool Numeric")
	}
	if _, ok := String_("x").Numeric(); ok {
		t.Error("String Numeric should fail")
	}
}

func TestStringRendering(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{String_("it's"), "'it''s'"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestParse(t *testing.T) {
	good := []struct {
		kind Kind
		text string
		want Value
	}{
		{KindInt, " 42 ", Int(42)},
		{KindFloat, "2.5", Float(2.5)},
		{KindString, "hello", String_("hello")},
		{KindBool, "true", Bool(true)},
	}
	for _, tc := range good {
		got, err := Parse(tc.kind, tc.text)
		if err != nil || Compare(got, tc.want) != 0 {
			t.Errorf("Parse(%v, %q) = %v, %v", tc.kind, tc.text, got, err)
		}
	}
	bad := []struct {
		kind Kind
		text string
	}{
		{KindInt, "x"}, {KindFloat, "zz"}, {KindBool, "maybe"},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.kind, tc.text); err == nil {
			t.Errorf("Parse(%v, %q) accepted", tc.kind, tc.text)
		}
	}
}

func TestKindFromName(t *testing.T) {
	good := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt,
		"float": KindFloat, "real": KindFloat, "double": KindFloat,
		"string": KindString, "text": KindString, "varchar": KindString,
		"bool": KindBool, "Boolean": KindBool,
	}
	for name, want := range good {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := KindFromName("blob"); err == nil {
		t.Error("KindFromName(blob) accepted")
	}
}

// Property: Compare defines a total order (antisymmetry + reflexivity).
func TestQuickCompareTotalOrder(t *testing.T) {
	mk := func(tag uint8, i int32, s string) Value {
		switch tag % 4 {
		case 0:
			return Int(int64(i))
		case 1:
			return Float(float64(i) / 4)
		case 2:
			return String_(s)
		default:
			return Bool(i%2 == 0)
		}
	}
	f := func(t1, t2 uint8, i1, i2 int32, s1, s2 string) bool {
		a, b := mk(t1, i1, s1), mk(t2, i2, s2)
		if Compare(a, a) != 0 || Compare(b, b) != 0 {
			return false
		}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
