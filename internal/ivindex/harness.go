package ivindex

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// Factory builds an empty index under test.
type Factory func() Index

// RandomInterval draws the mixed interval shapes used by the conformance
// harness and the workload generators: points, bounded intervals of all
// closedness combinations, and open-ended intervals. allowOpenEnded
// disables ±inf bounds for structures that cannot represent them
// (the paper notes "R-trees cannot accommodate open intervals").
func RandomInterval(rng *rand.Rand, maxVal int64, allowOpenEnded bool) interval.Interval[int64] {
	a := rng.Int63n(maxVal)
	b := rng.Int63n(maxVal)
	if a > b {
		a, b = b, a
	}
	n := 8
	if allowOpenEnded {
		n = 12
	}
	switch rng.Intn(n) {
	case 0, 1:
		return interval.Point(a)
	case 2:
		if a == b {
			return interval.Point(a)
		}
		return interval.Open(a, b)
	case 3:
		if a == b {
			return interval.Point(a)
		}
		return interval.ClosedOpen(a, b)
	case 4:
		if a == b {
			return interval.Point(a)
		}
		return interval.OpenClosed(a, b)
	case 5, 6, 7:
		return interval.Closed(a, b)
	case 8:
		return interval.AtLeast(a)
	case 9:
		return interval.AtMost(b)
	case 10:
		return interval.Greater(a)
	default:
		return interval.Less(b + 1)
	}
}

// Run drives the conformance suite: randomized insert/delete/stab
// cross-checked against brute force, duplicate/malformed error handling,
// and drain-to-empty.
func Run(t *testing.T, factory Factory, allowOpenEnded bool) {
	t.Helper()
	t.Run("randomized", func(t *testing.T) {
		for seed := int64(0); seed < 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			ix := factory()
			ref := map[markset.ID]interval.Interval[int64]{}
			nextID := markset.ID(0)
			var live []markset.ID
			const maxVal = 80
			ops := 400
			if testing.Short() {
				ops = 100
			}
			for op := 0; op < ops; op++ {
				switch {
				case len(live) == 0 || rng.Intn(3) != 0:
					iv := RandomInterval(rng, maxVal, allowOpenEnded)
					id := nextID
					nextID++
					if err := ix.Insert(id, iv); err != nil {
						t.Fatalf("seed %d op %d: Insert(%d, %v): %v", seed, op, id, iv, err)
					}
					ref[id] = iv
					live = append(live, id)
				default:
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := ix.Delete(id); err != nil {
						t.Fatalf("seed %d op %d: Delete(%d): %v", seed, op, id, err)
					}
					delete(ref, id)
				}
				if ix.Len() != len(ref) {
					t.Fatalf("seed %d op %d: Len = %d, want %d", seed, op, ix.Len(), len(ref))
				}
				for i := 0; i < 5; i++ {
					x := rng.Int63n(maxVal+10) - 5
					got := ix.StabAppend(x, nil)
					sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
					var want []markset.ID
					for id, iv := range ref {
						if iv.Contains(Int64Cmp, x) {
							want = append(want, id)
						}
					}
					sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
					if len(got) == 0 && len(want) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d op %d: Stab(%d) = %v, want %v", seed, op, x, got, want)
					}
				}
			}
			// Drain.
			for _, id := range live {
				if err := ix.Delete(id); err != nil {
					t.Fatalf("drain Delete(%d): %v", id, err)
				}
			}
			if ix.Len() != 0 {
				t.Fatalf("Len = %d after drain", ix.Len())
			}
			if got := ix.StabAppend(10, nil); len(got) != 0 {
				t.Fatalf("Stab on empty = %v", got)
			}
		}
	})
	t.Run("errors", func(t *testing.T) {
		ix := factory()
		if err := ix.Insert(1, interval.Closed[int64](1, 5)); err != nil {
			t.Fatal(err)
		}
		if err := ix.Insert(1, interval.Closed[int64](2, 3)); err == nil {
			t.Error("duplicate id accepted")
		}
		if err := ix.Insert(2, interval.Closed[int64](5, 1)); err == nil {
			t.Error("inverted interval accepted")
		}
		if err := ix.Delete(99); err == nil {
			t.Error("unknown delete accepted")
		}
	})
	t.Run("sharedEndpoints", func(t *testing.T) {
		// Many intervals with the same lower bound — the case the paper
		// calls out as requiring a transformation for priority search
		// trees.
		ix := factory()
		for i := int64(0); i < 20; i++ {
			if err := ix.Insert(markset.ID(i), interval.Closed[int64](100, 100+i)); err != nil {
				t.Fatal(err)
			}
		}
		got := ix.StabAppend(110, nil)
		if len(got) != 10 { // intervals with i >= 10
			t.Fatalf("Stab(110) found %d, want 10", len(got))
		}
		for i := int64(0); i < 20; i += 2 {
			if err := ix.Delete(markset.ID(i)); err != nil {
				t.Fatal(err)
			}
		}
		got = ix.StabAppend(110, nil)
		if len(got) != 5 {
			t.Fatalf("Stab(110) after deletes found %d, want 5", len(got))
		}
	})
	t.Run("stress", func(t *testing.T) {
		rng := rand.New(rand.NewSource(99))
		ix := factory()
		const n = 500
		for i := 0; i < n; i++ {
			iv := RandomInterval(rng, 10000, allowOpenEnded)
			if err := ix.Insert(markset.ID(i), iv); err != nil {
				t.Fatal(err)
			}
		}
		if ix.Len() != n {
			t.Fatalf("Len = %d", ix.Len())
		}
		var buf []markset.ID
		for q := 0; q < 200; q++ {
			buf = ix.StabAppend(rng.Int63n(10000), buf[:0])
		}
	})
}
