// Package ivindex defines the common interface of dynamic interval
// indexes (stabbing-query structures) and a conformance harness that
// cross-checks any implementation against brute force. The paper's
// Section 6 proposes implementing "several different techniques for
// dynamically indexing intervals, including 1-dimensional R-trees,
// IBS-trees, and priority search trees" and comparing them; this
// interface is what that comparison sweeps over.
package ivindex

import (
	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// Index is a dynamic set of identified intervals answering stabbing
// queries.
type Index interface {
	// Name identifies the structure in benchmark output.
	Name() string
	// Insert adds iv under id; duplicate ids and malformed intervals are
	// errors.
	Insert(id markset.ID, iv interval.Interval[int64]) error
	// Delete removes the interval stored under id.
	Delete(id markset.ID) error
	// StabAppend appends the ids of all intervals containing x to dst.
	// Each matching id appears exactly once; order is unspecified.
	StabAppend(x int64, dst []markset.ID) []markset.ID
	// Len returns the number of stored intervals.
	Len() int
}

// Int64Cmp is the comparator for the experiment domain.
func Int64Cmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
