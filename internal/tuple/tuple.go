// Package tuple defines tuples — the facts whose insertion or
// modification triggers predicate matching.
package tuple

import (
	"fmt"
	"strings"

	"predmatch/internal/schema"
	"predmatch/internal/value"
)

// ID identifies a stored tuple within its relation.
type ID int64

// Tuple is an ordered list of attribute values, positionally matching a
// relation schema.
type Tuple []value.Value

// New builds a tuple from values.
func New(vals ...value.Value) Tuple { return Tuple(vals) }

// Clone returns an independent copy.
func (t Tuple) Clone() Tuple {
	cp := make(Tuple, len(t))
	copy(cp, t)
	return cp
}

// Conforms checks the tuple against a relation schema: arity and
// per-attribute kinds must match.
func (t Tuple) Conforms(rel *schema.Relation) error {
	attrs := rel.Attrs()
	if len(t) != len(attrs) {
		return fmt.Errorf("tuple: arity %d does not match relation %s (arity %d)",
			len(t), rel.Name(), len(attrs))
	}
	for i, a := range attrs {
		if t[i].Kind() != a.Type {
			return fmt.Errorf("tuple: attribute %s of %s expects %s, got %s",
				a.Name, rel.Name(), a.Type, t[i].Kind())
		}
	}
	return nil
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
