package tuple

import (
	"testing"

	"predmatch/internal/schema"
	"predmatch/internal/value"
)

func emp() *schema.Relation {
	return schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
	)
}

func TestConforms(t *testing.T) {
	rel := emp()
	ok := New(value.String_("alice"), value.Int(30))
	if err := ok.Conforms(rel); err != nil {
		t.Fatalf("Conforms: %v", err)
	}
	short := New(value.String_("bob"))
	if err := short.Conforms(rel); err == nil {
		t.Error("arity mismatch accepted")
	}
	wrongKind := New(value.Int(1), value.Int(30))
	if err := wrongKind.Conforms(rel); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(value.Int(1), value.Int(2))
	b := a.Clone()
	b[0] = value.Int(99)
	if a[0].AsInt() != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestString(t *testing.T) {
	tp := New(value.String_("alice"), value.Int(30))
	if got, want := tp.String(), "('alice', 30)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
