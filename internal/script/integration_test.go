package script

import (
	"bytes"
	"strings"
	"testing"

	"predmatch/internal/core"
	"predmatch/internal/hashseq"
	"predmatch/internal/ibs"
	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/rtree"
	"predmatch/internal/seqscan"
	"predmatch/internal/storage"
)

// TestFullScenario drives every language feature in one session: schema
// and index DDL, prioritized single-relation rules with every action
// kind, arithmetic derived-column maintenance, disjunctive conditions,
// function clauses, join rules with backfill, planned selects, rule
// drops, and teardown — asserting the interleaved observable output.
func TestFullScenario(t *testing.T) {
	var buf bytes.Buffer
	in := New(&buf)
	steps := []struct {
		stmt string
		want []string // substrings that must appear in output so far
	}{
		{"relation items (sku int, stock int, threshold int, deficit int)", nil},
		{"relation orders (sku int, qty int)", nil},
		{"index items stock", nil},
		{"index items sku", nil},

		// Derived-column maintenance + reorder trigger (Section 3).
		{"rule maintain priority 10 on insert, update to items do set deficit = stock - threshold", nil},
		{"rule reorder on update to items when deficit < 0 do insert into orders (0, 50); log 'reorder placed'", nil},
		// Disjunction + function clause.
		{"rule oddball on insert to items when isodd(sku) or stock = 777 do log 'oddball'", nil},
		// Integrity rule.
		{"rule nonneg on insert, update to items when stock < -1000 do raise 'impossible stock'", nil},

		{"insert items (2, 100, 40, 0)", []string{"inserted items id=1"}},
		{"insert items (3, 50, 45, 0)", []string{"oddball"}},

		// Draining stock below threshold: maintain recomputes, reorder
		// fires and inserts an order row.
		{"update items 2 (3, 20, 45, -25)", []string{"reorder placed"}},
		{"dump orders", []string{"orders (1 tuples)"}},

		// Join rule over items/orders with backfill from existing rows.
		{"joinrule pending on items, orders when items.sku = orders.sku and qty > 10 do log 'pending order'", nil},
		{"insert orders (3, 20)", []string{"pending order"}},

		// Planned queries.
		{"select items where stock >= 50", []string{"plan: index scan on items.stock", "items: 1 row(s)"}},
		{"select items where sku = 2 or sku = 3", []string{"items: 2 row(s)"}},

		// Raise aborts (engine) — stock below the floor. The message
		// arrives via the returned error, checked specially below.
		{"insert items (9, -5000, 0, 0)", nil},

		{"drop rule oddball", nil},
		{"insert items (5, 777, 0, 777)", nil},
		{"drop joinrule pending", nil},
		{"stats", []string{"matcher: ibs"}},
	}
	for i, st := range steps {
		err := in.Exec(st.stmt)
		if strings.Contains(st.stmt, "insert items (9,") {
			if err == nil || !strings.Contains(err.Error(), "impossible stock") {
				t.Fatalf("step %d: expected raise, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("step %d %q: %v\noutput:\n%s", i, st.stmt, err, buf.String())
		}
		for _, want := range st.want {
			if !strings.Contains(buf.String(), want) {
				t.Fatalf("step %d %q: output missing %q\n%s", i, st.stmt, want, buf.String())
			}
		}
	}
	out := buf.String()
	// The dropped oddball rule must not have fired for sku 5.
	if got := strings.Count(out, "[rule oddball]"); got != 1 {
		t.Fatalf("oddball fired %d times, want 1\n%s", got, out)
	}
	// Exactly one reorder in the session.
	if got := strings.Count(out, "] reorder placed"); got != 1 {
		t.Fatalf("reorder fired %d times\n%s", got, out)
	}
}

// TestScenarioAcrossMatchers replays a rule scenario under every
// matching strategy exposed by cmd/predmatch and requires identical
// observable behavior — the paper's thesis that the strategies differ
// only in speed.
func TestScenarioAcrossMatchers(t *testing.T) {
	src := `
relation emp (name string, age int, salary int, dept string)
rule a on insert to emp when salary between 100 and 200 do log 'band'
rule b on insert to emp when dept = 'shoe' and isodd(age) do log 'odd shoe'
rule c priority 3 on insert, update to emp when age > 60 do log 'senior'
insert emp ('u', 61, 150, 'shoe')
insert emp ('v', 33, 50, 'shoe')
insert emp ('w', 70, 300, 'toy')
update emp 2 ('v', 35, 120, 'shoe')
`
	factories := map[string]func(db *storage.DB, funcs *pred.Registry) matcher.Matcher{
		"ibs": func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
			return core.New(db.Catalog(), funcs)
		},
		"ibs-unbalanced": func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
			return core.New(db.Catalog(), funcs, core.WithTreeOptions(ibs.Balanced(false)))
		},
		"hashseq": func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
			return hashseq.New(db.Catalog(), funcs)
		},
		"seqscan": func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
			return seqscan.New(db.Catalog(), funcs)
		},
		"rtree": func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
			return rtree.NewPredMatcher(db.Catalog(), funcs)
		},
	}
	var reference string
	for i, name := range []string{"ibs", "ibs-unbalanced", "hashseq", "seqscan", "rtree"} {
		var buf bytes.Buffer
		mk := factories[name]
		in := New(&buf, WithMatcher(mk))
		if err := in.Run(strings.NewReader(src)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Strip the stats-free output; firing lines must be identical.
		out := buf.String()
		if i == 0 {
			reference = out
			for _, want := range []string{"band", "odd shoe", "senior"} {
				if !strings.Contains(out, want) {
					t.Fatalf("reference output missing %q:\n%s", want, out)
				}
			}
			continue
		}
		if out != reference {
			t.Fatalf("%s output differs from ibs reference:\n--- ibs ---\n%s\n--- %s ---\n%s",
				name, reference, name, out)
		}
	}
}
