package script

import (
	"bytes"
	"strings"
	"testing"

	"predmatch/internal/hashseq"
	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/storage"
)

func run(t *testing.T, src string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	in := New(&buf)
	err := in.Run(strings.NewReader(src))
	return buf.String(), err
}

func TestEndToEndScript(t *testing.T) {
	src := `
# the paper's EMP example
relation emp (name string, age int, salary int, dept string)
index emp salary

rule high_paid on insert, update to emp \
  when salary > 50000 do log 'high paid'
rule odd_shoe on insert to emp when isodd(age) and dept = 'shoe' do log 'odd shoe'

insert emp ('alice', 31, 60000, 'shoe')
insert emp ('bob', 30, 40000, 'toy')
update emp 2 ('bob', 30, 55000, 'toy')
delete emp 2
dump emp
stats
`
	out, err := run(t, src)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, out)
	}
	for _, want := range []string{
		"[rule high_paid] high paid", // alice insert
		"[rule odd_shoe] odd shoe",   // alice insert (age 31, shoe)
		"updated emp id=2",           // bob update also fires high_paid
		"deleted emp id=2",
		"emp (1 tuples)",
		"matcher: ibs",
		"ibs-tree emp.salary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// bob's update to 55000 fires high_paid a second time.
	if got := strings.Count(out, "high paid"); got != 2 {
		t.Errorf("high_paid fired %d times, want 2\n%s", got, out)
	}
}

func TestScriptErrorsCarryLineNumbers(t *testing.T) {
	_, err := run(t, "relation r (a int)\nbogus statement\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestStatementErrors(t *testing.T) {
	bad := []string{
		"frobnicate",
		"relation",
		"relation r",
		"relation r (a blob)",
		"relation r (a)",
		"index r a",        // unknown relation
		"insert r (1)",     // unknown relation
		"update r 1 (1)",   // unknown relation
		"delete r 1",       // unknown relation
		"dump r",           // unknown relation
		"drop rule nosuch", // unknown rule
		"drop bogus x",     // wrong form
		"rule r on insert to nosuch do log 'x'",
	}
	for _, stmt := range bad {
		var buf bytes.Buffer
		if err := New(&buf).Exec(stmt); err == nil {
			t.Errorf("Exec(%q) accepted", stmt)
		}
	}
}

func TestUpdateDeleteErrors(t *testing.T) {
	src := "relation r (a int)\nupdate r 99 (1)\n"
	if _, err := run(t, src); err == nil {
		t.Error("update of missing tuple accepted")
	}
	src = "relation r (a int)\ndelete r abc\n"
	if _, err := run(t, src); err == nil {
		t.Error("bad tuple id accepted")
	}
	src = "relation r (a int)\ninsert r (1, 2)\n"
	if _, err := run(t, src); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestCommentsAndQuotedHash(t *testing.T) {
	src := `
relation r (m string)   # trailing comment
rule h on insert to r when m = 'has # inside' do log 'hit # kept'
insert r ('has # inside')
`
	out, err := run(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hit # kept") {
		t.Errorf("quoted hash mishandled:\n%s", out)
	}
}

func TestWithMatcher(t *testing.T) {
	var buf bytes.Buffer
	in := New(&buf, WithMatcher(func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
		return hashseq.New(db.Catalog(), funcs)
	}))
	if err := in.Run(strings.NewReader("relation r (a int)\nstats\n")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "matcher: hashseq") {
		t.Errorf("matcher option ignored:\n%s", buf.String())
	}
}

func TestDanglingContinuation(t *testing.T) {
	if _, err := run(t, "relation r (a int) \\"); err == nil {
		t.Error("dangling continuation accepted")
	}
}

func TestJoinRuleStatement(t *testing.T) {
	src := `
relation emp (name string, dept string, salary int)
relation dept (dname string, budget int)
joinrule audit on emp, dept \
  when salary > 50000 and emp.dept = dname and budget < 100000 \
  do log 'overpaid in underfunded dept'
insert dept ('shoe', 60000)
insert emp ('ada', 'shoe', 80000)
insert emp ('bob', 'shoe', 10000)
`
	out, err := run(t, src)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if got := strings.Count(out, "overpaid in underfunded dept"); got != 1 {
		t.Fatalf("joinrule fired %d times, want 1\n%s", got, out)
	}
}

func TestJoinRuleRaiseAborts(t *testing.T) {
	src := `
relation emp (name string, dept string)
relation closed (dname string)
joinrule noclosed on emp, closed when emp.dept = closed.dname do raise 'dept is closed'
insert closed ('shoe')
insert emp ('ada', 'shoe')
`
	out, err := run(t, src)
	if err == nil || !strings.Contains(err.Error(), "dept is closed") {
		t.Fatalf("err = %v\n%s", err, out)
	}
}

func TestDropJoinRule(t *testing.T) {
	src := `
relation a (x int)
relation b (y int)
joinrule j on a, b when x = y do log 'pair'
drop joinrule j
insert a (1)
insert b (1)
`
	out, err := run(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "pair") {
		t.Fatalf("dropped joinrule fired\n%s", out)
	}
	// Errors.
	var buf bytes.Buffer
	in := New(&buf)
	if err := in.Exec("drop joinrule nosuch"); err == nil {
		t.Error("unknown joinrule drop accepted")
	}
	if err := in.Exec("drop bogus x"); err == nil {
		t.Error("bad drop form accepted")
	}
	_ = in.Exec("relation a (x int)")
	_ = in.Exec("relation b (y int)")
	if err := in.Exec("joinrule j on a, b when x = y do log 'p'"); err != nil {
		t.Fatal(err)
	}
	if err := in.Exec("joinrule j on a, b when x = y do log 'p'"); err == nil {
		t.Error("duplicate joinrule accepted")
	}
}

func TestSelectStatement(t *testing.T) {
	src := `
relation emp (name string, age int)
index emp age
insert emp ('ada', 30)
insert emp ('bob', 40)
insert emp ('cyd', 50)
select emp where age >= 40
select emp where age = 30 or age = 50
select emp
`
	out, err := run(t, src)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "plan: index scan on emp.age") {
		t.Errorf("expected an index-scan plan\n%s", out)
	}
	if !strings.Contains(out, "emp: 2 row(s)") {
		t.Errorf("range select row count wrong\n%s", out)
	}
	if !strings.Contains(out, "emp: 3 row(s)") {
		t.Errorf("full select row count wrong\n%s", out)
	}
	// The disjunction runs two plans and unions to 2 rows.
	if got := strings.Count(out, "plan:"); got != 4 {
		t.Errorf("expected 4 plans (1 + 2 + 1), got %d\n%s", got, out)
	}
}

func TestSelectErrors(t *testing.T) {
	var buf bytes.Buffer
	in := New(&buf)
	_ = in.Exec("relation emp (age int)")
	for _, stmt := range []string{
		"select",
		"select nosuch",
		"select emp bogus",
		"select emp where nosuch = 1",
	} {
		if err := in.Exec(stmt); err == nil {
			t.Errorf("Exec(%q) accepted", stmt)
		}
	}
}

func TestJoinRuleParseErrors(t *testing.T) {
	var buf bytes.Buffer
	in := New(&buf)
	_ = in.Exec("relation a (x int)")
	_ = in.Exec("relation b (y int, x int)")
	for _, stmt := range []string{
		"joinrule j on a when x = 1 do log 'm'",         // one relation
		"joinrule j on a, nosuch when x = y do log 'm'", // unknown relation
		"joinrule j on a, a when x = x do log 'm'",      // duplicate relation
		"joinrule j on a, b when x > y do log 'm'",      // non-equi join (ambiguous x though; use qualified)
		"joinrule j on a, b when a.x > b.y do log 'm'",  // non-equi join
		"joinrule j on a, b when a.x = 1 do log 'm'",    // no join term
		"joinrule j on a, b when x = y do set x = 1",    // unsupported action
		"joinrule j on a, b when x = y do log 'm' trailing",
		"joinrule j on a, b when a.x != 1 and a.x = b.y do log 'm'", // != unsupported
		"joinrule j on a, b when x = y and b.x = b.y do log 'm'",    // same-side comparison
	} {
		if err := in.Exec(stmt); err == nil {
			t.Errorf("Exec(%q) accepted", stmt)
		}
	}
	// Ambiguous unqualified attribute (x exists in both a and b).
	if err := in.Exec("joinrule amb on a, b when x = 1 and a.x = b.y do log 'm'"); err == nil {
		t.Error("ambiguous attribute accepted")
	}
}

// TestJoinRuleBackfill verifies a joinrule defined after data exists
// joins future events against the pre-existing tuples.
func TestJoinRuleBackfill(t *testing.T) {
	src := `
relation emp (name string, dept string)
relation dept (dname string)
insert emp ('ada', 'shoe')
joinrule j on emp, dept when emp.dept = dname do log 'matched'
insert dept ('shoe')
`
	out, err := run(t, src)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "matched"); got != 1 {
		t.Fatalf("backfilled joinrule fired %d times, want 1\n%s", got, out)
	}
	// Definition itself must not fire for already-complete combinations.
	src2 := `
relation emp (name string, dept string)
relation dept (dname string)
insert emp ('ada', 'shoe')
insert dept ('shoe')
joinrule j on emp, dept when emp.dept = dname do log 'matched'
dump emp
`
	out2, err := run(t, src2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "matched") {
		t.Fatalf("definition-time activation for pre-existing combination\n%s", out2)
	}
}

func TestAccessors(t *testing.T) {
	var buf bytes.Buffer
	in := New(&buf)
	if in.Engine() == nil || in.DB() == nil {
		t.Fatal("accessors returned nil")
	}
}
