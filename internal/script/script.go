// Package script interprets a small line-oriented database-and-rules
// script — the front end of cmd/predmatch. A script declares relations
// and indexes, defines rules (the paper's "if condition then action"
// triggers), and streams tuple mutations through the storage engine,
// with the chosen predicate-matching strategy deciding which rules fire.
//
// Statements (one per line; '\' continues a line; '#' starts a comment):
//
//	relation NAME (attr type, ...)
//	index REL ATTR
//	rule NAME on EVENTS to REL [when COND] do ACTIONS
//	joinrule NAME on REL1, REL2 when COND do log/raise ...
//	drop rule NAME | drop joinrule NAME
//	insert REL (v1, v2, ...)
//	update REL ID (v1, v2, ...)
//	delete REL ID
//	select REL [where COND]
//	dump REL
//	stats
package script

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"predmatch/internal/core"
	"predmatch/internal/engine"
	"predmatch/internal/join"
	"predmatch/internal/matcher"
	"predmatch/internal/parser"
	"predmatch/internal/pred"
	"predmatch/internal/query"
	"predmatch/internal/schema"
	"predmatch/internal/shard"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Interp executes scripts against one database instance.
type Interp struct {
	db    *storage.DB
	funcs *pred.Registry
	eng   *engine.Engine
	out   io.Writer

	// Join-rule support (the two-layer network), created on first use.
	net        *join.Network
	joinRules  map[string]joinRuleInfo
	nextJoinID join.RuleID
	// pendingRaise carries a raise action out of the activation callback
	// so the triggering mutation can be aborted.
	pendingRaise error
}

// joinRuleInfo tracks a named joinrule's registration.
type joinRuleInfo struct {
	id      join.RuleID
	actions []parser.Action
}

// Option configures an Interp.
type Option func(*cfg)

type cfg struct {
	matcher func(*storage.DB, *pred.Registry) matcher.Matcher
}

// WithMatcher selects the predicate-matching strategy (default: the
// paper's IBS-tree scheme).
func WithMatcher(mk func(*storage.DB, *pred.Registry) matcher.Matcher) Option {
	return func(c *cfg) { c.matcher = mk }
}

// New returns an interpreter writing rule output to out.
func New(out io.Writer, opts ...Option) *Interp {
	c := cfg{
		matcher: func(db *storage.DB, funcs *pred.Registry) matcher.Matcher {
			return core.New(db.Catalog(), funcs)
		},
	}
	for _, o := range opts {
		o(&c)
	}
	db := storage.NewDB()
	funcs := pred.NewRegistry()
	in := &Interp{db: db, funcs: funcs, out: out, joinRules: make(map[string]joinRuleInfo), nextJoinID: 1}
	in.eng = engine.New(db, funcs, c.matcher(db, funcs),
		engine.WithLogger(func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		}))
	return in
}

// network lazily creates the two-layer join network and wires it to the
// storage change feed.
func (in *Interp) network() *join.Network {
	if in.net != nil {
		return in.net
	}
	in.net = join.New(in.db.Catalog(), in.funcs, func(a join.Activation) {
		for name, info := range in.joinRules {
			if info.id != a.Rule {
				continue
			}
			for _, act := range info.actions {
				switch act.Kind {
				case parser.ActionLog:
					fmt.Fprintf(in.out, "[joinrule %s] %s %v\n", name, act.Message, a.Tuples)
				case parser.ActionRaise:
					if in.pendingRaise == nil {
						in.pendingRaise = fmt.Errorf("joinrule %s raised: %s", name, act.Message)
					}
				}
			}
		}
	})
	in.db.Observe(func(ev storage.Event) error {
		var err error
		switch ev.Op {
		case storage.OpInsert:
			err = in.net.Insert(ev.Rel, ev.ID, ev.New)
		case storage.OpUpdate:
			err = in.net.Update(ev.Rel, ev.ID, ev.New)
		case storage.OpDelete:
			in.net.Delete(ev.Rel, ev.ID)
		}
		if err == nil && in.pendingRaise != nil {
			err = in.pendingRaise
		}
		in.pendingRaise = nil
		return err
	})
	return in.net
}

// Engine exposes the underlying rule engine.
func (in *Interp) Engine() *engine.Engine { return in.eng }

// DB exposes the underlying storage engine.
func (in *Interp) DB() *storage.DB { return in.db }

// Run executes a whole script, stopping at the first error.
func (in *Interp) Run(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	var pending string
	pendingStart := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 && !inQuotes(line, i) {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if strings.HasSuffix(line, "\\") {
			if pending == "" {
				pendingStart = lineNo
			}
			pending += strings.TrimSuffix(line, "\\") + " "
			continue
		}
		stmt := pending + line
		start := lineNo
		if pending != "" {
			start = pendingStart
		}
		pending = ""
		if strings.TrimSpace(stmt) == "" {
			continue
		}
		if err := in.Exec(stmt); err != nil {
			return fmt.Errorf("line %d: %w", start, err)
		}
	}
	if pending != "" {
		return fmt.Errorf("line %d: dangling line continuation", pendingStart)
	}
	return sc.Err()
}

// inQuotes reports whether position i of line falls inside a quoted
// string (so '#' inside literals is not a comment).
func inQuotes(line string, i int) bool {
	var quote byte
	for j := 0; j < i; j++ {
		c := line[j]
		if quote == 0 {
			if c == '\'' || c == '"' {
				quote = c
			}
		} else if c == quote {
			quote = 0
		}
	}
	return quote != 0
}

// Exec executes a single statement.
func (in *Interp) Exec(stmt string) error {
	fields := strings.Fields(stmt)
	if len(fields) == 0 {
		return nil
	}
	switch strings.ToLower(fields[0]) {
	case "relation":
		return in.execRelation(stmt)
	case "index":
		return in.execIndex(fields)
	case "rule":
		_, err := in.eng.DefineRule(stmt)
		return err
	case "joinrule":
		return in.execJoinRule(stmt)
	case "drop":
		if len(fields) != 3 {
			return fmt.Errorf("script: usage: drop rule NAME | drop joinrule NAME")
		}
		switch strings.ToLower(fields[1]) {
		case "rule":
			return in.eng.DropRule(strings.ToLower(fields[2]))
		case "joinrule":
			name := strings.ToLower(fields[2])
			info, ok := in.joinRules[name]
			if !ok {
				return fmt.Errorf("script: unknown joinrule %q", name)
			}
			if err := in.network().RemoveRule(info.id); err != nil {
				return err
			}
			delete(in.joinRules, name)
			return nil
		default:
			return fmt.Errorf("script: usage: drop rule NAME | drop joinrule NAME")
		}
	case "select":
		return in.execSelect(stmt, fields)
	case "insert":
		return in.execInsert(stmt, fields)
	case "update":
		return in.execUpdate(stmt, fields)
	case "delete":
		return in.execDelete(fields)
	case "dump":
		return in.execDump(fields)
	case "stats":
		return in.execStats()
	default:
		return fmt.Errorf("script: unknown statement %q", fields[0])
	}
}

// execRelation parses "relation NAME (attr type, ...)".
func (in *Interp) execRelation(stmt string) error {
	open := strings.Index(stmt, "(")
	closeIdx := strings.LastIndex(stmt, ")")
	if open < 0 || closeIdx < open {
		return fmt.Errorf("script: usage: relation NAME (attr type, ...)")
	}
	head := strings.Fields(stmt[:open])
	if len(head) != 2 {
		return fmt.Errorf("script: usage: relation NAME (attr type, ...)")
	}
	name := strings.ToLower(head[1])
	var attrs []schema.Attribute
	for _, part := range strings.Split(stmt[open+1:closeIdx], ",") {
		kv := strings.Fields(part)
		if len(kv) != 2 {
			return fmt.Errorf("script: bad attribute declaration %q", strings.TrimSpace(part))
		}
		kind, err := value.KindFromName(kv[1])
		if err != nil {
			return err
		}
		attrs = append(attrs, schema.Attribute{Name: strings.ToLower(kv[0]), Type: kind})
	}
	rel, err := schema.NewRelation(name, attrs...)
	if err != nil {
		return err
	}
	_, err = in.db.CreateRelation(rel)
	return err
}

func (in *Interp) execIndex(fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("script: usage: index REL ATTR")
	}
	tab, ok := in.db.Table(strings.ToLower(fields[1]))
	if !ok {
		return fmt.Errorf("script: unknown relation %q", fields[1])
	}
	return tab.CreateIndex(strings.ToLower(fields[2]))
}

// tupleArg extracts the parenthesized literal list from a statement.
func tupleArg(stmt string) (string, error) {
	open := strings.Index(stmt, "(")
	if open < 0 {
		return "", fmt.Errorf("script: expected tuple literal (v1, v2, ...)")
	}
	return stmt[open:], nil
}

func (in *Interp) execInsert(stmt string, fields []string) error {
	if len(fields) < 3 {
		return fmt.Errorf("script: usage: insert REL (v1, ...)")
	}
	tab, ok := in.db.Table(strings.ToLower(fields[1]))
	if !ok {
		return fmt.Errorf("script: unknown relation %q", fields[1])
	}
	lit, err := tupleArg(stmt)
	if err != nil {
		return err
	}
	t, err := parser.ParseValues(lit, tab.Relation())
	if err != nil {
		return err
	}
	id, err := tab.Insert(t)
	if err != nil {
		return err
	}
	fmt.Fprintf(in.out, "inserted %s id=%d %v\n", tab.Relation().Name(), id, t)
	return nil
}

func (in *Interp) execUpdate(stmt string, fields []string) error {
	if len(fields) < 4 {
		return fmt.Errorf("script: usage: update REL ID (v1, ...)")
	}
	tab, ok := in.db.Table(strings.ToLower(fields[1]))
	if !ok {
		return fmt.Errorf("script: unknown relation %q", fields[1])
	}
	id, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return fmt.Errorf("script: bad tuple id %q", fields[2])
	}
	lit, err := tupleArg(stmt)
	if err != nil {
		return err
	}
	t, err := parser.ParseValues(lit, tab.Relation())
	if err != nil {
		return err
	}
	if err := tab.Update(tuple.ID(id), t); err != nil {
		return err
	}
	fmt.Fprintf(in.out, "updated %s id=%d %v\n", tab.Relation().Name(), id, t)
	return nil
}

func (in *Interp) execDelete(fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("script: usage: delete REL ID")
	}
	tab, ok := in.db.Table(strings.ToLower(fields[1]))
	if !ok {
		return fmt.Errorf("script: unknown relation %q", fields[1])
	}
	id, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return fmt.Errorf("script: bad tuple id %q", fields[2])
	}
	if err := tab.Delete(tuple.ID(id)); err != nil {
		return err
	}
	fmt.Fprintf(in.out, "deleted %s id=%d\n", tab.Relation().Name(), id)
	return nil
}

func (in *Interp) execDump(fields []string) error {
	if len(fields) != 2 {
		return fmt.Errorf("script: usage: dump REL")
	}
	tab, ok := in.db.Table(strings.ToLower(fields[1]))
	if !ok {
		return fmt.Errorf("script: unknown relation %q", fields[1])
	}
	type row struct {
		id tuple.ID
		t  tuple.Tuple
	}
	var rows []row
	tab.Scan(func(id tuple.ID, t tuple.Tuple) bool {
		rows = append(rows, row{id, t})
		return true
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	fmt.Fprintf(in.out, "%s (%d tuples)\n", tab.Relation().Name(), len(rows))
	for _, r := range rows {
		fmt.Fprintf(in.out, "  id=%d %v\n", r.id, r.t)
	}
	return nil
}

func (in *Interp) execStats() error {
	fmt.Fprintf(in.out, "rules: %s\n", strings.Join(in.eng.Rules(), ", "))
	fmt.Fprintf(in.out, "matcher: %s (%d predicates)\n", in.eng.Matcher().Name(), in.eng.Matcher().Len())
	// Any matcher exposing attribute-tree statistics (core.Index, the
	// sharded matcher) gets them printed.
	if ix, ok := in.eng.Matcher().(interface{ Trees() []core.TreeStats }); ok {
		for _, ts := range ix.Trees() {
			fmt.Fprintf(in.out, "  ibs-tree %s.%s: %d intervals, %d nodes, %d markers, height %d\n",
				ts.Rel, ts.Attr, ts.Intervals, ts.Nodes, ts.Markers, ts.Height)
		}
	}
	// The sharded matcher additionally reports per-relation shards.
	if sm, ok := in.eng.Matcher().(interface{ Stats() []shard.ShardStats }); ok {
		for _, s := range sm.Stats() {
			fmt.Fprintf(in.out, "  shard %s: %d predicates, snapshot version %d\n",
				s.Rel, s.Predicates, s.Version)
		}
	}
	return nil
}

// execJoinRule registers a two-layer (selection + join) rule.
func (in *Interp) execJoinRule(stmt string) error {
	ast, err := parser.ParseJoinRule(stmt, in.db.Catalog(), in.funcs)
	if err != nil {
		return err
	}
	if _, dup := in.joinRules[ast.Name]; dup {
		return fmt.Errorf("script: joinrule %q already defined", ast.Name)
	}
	rule := &join.Rule{ID: in.nextJoinID}
	for i, rel := range ast.Rels {
		side := join.Side{Rel: rel}
		if len(ast.Sel[i]) > 0 {
			side.Pred = pred.New(0, rel, ast.Sel[i]...)
		}
		rule.Sides = append(rule.Sides, side)
	}
	for _, jt := range ast.Joins {
		rule.Conditions = append(rule.Conditions, join.Condition{
			Left: jt.LeftSide, LeftAttr: jt.LeftAttr,
			Right: jt.RightSide, RightAttr: jt.RightAttr,
		})
	}
	if err := in.network().AddRule(rule); err != nil {
		return err
	}
	in.joinRules[ast.Name] = joinRuleInfo{id: rule.ID, actions: ast.Actions}
	in.nextJoinID++

	// Backfill the rule's alpha memories from existing data so that
	// future events join against the full database state.
	seeded := map[string]bool{}
	for _, rel := range ast.Rels {
		if seeded[rel] {
			continue
		}
		seeded[rel] = true
		tab, ok := in.db.Table(rel)
		if !ok {
			continue
		}
		var seedErr error
		tab.Scan(func(id tuple.ID, t tuple.Tuple) bool {
			seedErr = in.net.Seed(rule.ID, rel, id, t)
			return seedErr == nil
		})
		if seedErr != nil {
			return seedErr
		}
	}
	return nil
}

// execSelect runs "select REL [where COND]" through the query planner.
func (in *Interp) execSelect(stmt string, fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("script: usage: select REL [where COND]")
	}
	relName := strings.ToLower(fields[1])
	tab, ok := in.db.Table(relName)
	if !ok {
		return fmt.Errorf("script: unknown relation %q", relName)
	}

	var preds []*pred.Predicate
	if len(fields) > 2 {
		if strings.ToLower(fields[2]) != "where" {
			return fmt.Errorf("script: usage: select REL [where COND]")
		}
		idx := strings.Index(strings.ToLower(stmt), " where ")
		cond := stmt[idx+len(" where "):]
		expr, err := parser.ParseCondition(cond, relName, in.db.Catalog(), in.funcs)
		if err != nil {
			return err
		}
		preds = pred.SplitDNF(1, relName, expr)
	} else {
		preds = []*pred.Predicate{pred.New(1, relName)}
	}

	// Union the results of the disjuncts.
	seen := map[tuple.ID]tuple.Tuple{}
	for _, p := range preds {
		results, plan, err := query.Run(in.db, p, in.funcs)
		if err != nil {
			return err
		}
		fmt.Fprintf(in.out, "plan: %s\n", plan)
		for _, r := range results {
			seen[r.ID] = r.Tuple
		}
	}
	ids := make([]tuple.ID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(in.out, "%s: %d row(s)\n", tab.Relation().Name(), len(ids))
	for _, id := range ids {
		fmt.Fprintf(in.out, "  id=%d %v\n", id, seen[id])
	}
	return nil
}
