// Package interval provides generic one-dimensional intervals over any
// totally ordered domain.
//
// The package is the vocabulary shared by every interval index in this
// repository (the IBS-tree of Hanson et al., the priority-search-tree
// comparator, segment and interval trees, and the R-tree baseline).
// Intervals carry explicit bound kinds so that the open-ended predicates
// of the paper ("EMP.age > 50", i.e. (50, +inf)) are first-class values
// rather than sentinel encodings.
//
// All operations take an explicit comparator func(a, b T) int so that the
// structures built on top work, per the paper's claim for IBS-trees, "on
// any totally ordered domain for which the comparison operators {<, =, >}
// are defined" with no additional code per domain.
package interval

import "fmt"

// Cmp is a three-way comparator: negative when a < b, zero when a == b,
// positive when a > b. It must define a total order.
type Cmp[T any] func(a, b T) int

// BoundKind classifies one end of an interval.
type BoundKind uint8

const (
	// NegInf is an unbounded lower end (the paper's const1 = -infinity).
	NegInf BoundKind = iota
	// Finite is a concrete endpoint value.
	Finite
	// PosInf is an unbounded upper end (the paper's const2 = +infinity).
	PosInf
)

// String returns a readable name for the bound kind.
func (k BoundKind) String() string {
	switch k {
	case NegInf:
		return "-inf"
	case Finite:
		return "finite"
	case PosInf:
		return "+inf"
	default:
		return fmt.Sprintf("BoundKind(%d)", uint8(k))
	}
}

// Bound is one end of an interval. Value and Closed are meaningful only
// when Kind is Finite; an infinite bound is always exclusive (no value
// equals an infinity).
type Bound[T any] struct {
	Kind   BoundKind
	Value  T
	Closed bool
}

// FiniteBound returns a finite bound at v, inclusive when closed is true.
func FiniteBound[T any](v T, closed bool) Bound[T] {
	return Bound[T]{Kind: Finite, Value: v, Closed: closed}
}

// Below returns an unbounded lower end.
func Below[T any]() Bound[T] { return Bound[T]{Kind: NegInf} }

// Above returns an unbounded upper end.
func Above[T any]() Bound[T] { return Bound[T]{Kind: PosInf} }

// Interval is a contiguous range over a totally ordered domain T.
// The zero value is not meaningful; construct intervals with the
// constructors below and validate foreign ones with Validate.
type Interval[T any] struct {
	Lo, Hi Bound[T]
}

// Point returns the degenerate closed interval [v, v], the representation
// of an equality predicate ("t.attribute = const").
func Point[T any](v T) Interval[T] {
	return Interval[T]{Lo: FiniteBound(v, true), Hi: FiniteBound(v, true)}
}

// Closed returns [lo, hi].
func Closed[T any](lo, hi T) Interval[T] {
	return Interval[T]{Lo: FiniteBound(lo, true), Hi: FiniteBound(hi, true)}
}

// Open returns (lo, hi).
func Open[T any](lo, hi T) Interval[T] {
	return Interval[T]{Lo: FiniteBound(lo, false), Hi: FiniteBound(hi, false)}
}

// ClosedOpen returns [lo, hi).
func ClosedOpen[T any](lo, hi T) Interval[T] {
	return Interval[T]{Lo: FiniteBound(lo, true), Hi: FiniteBound(hi, false)}
}

// OpenClosed returns (lo, hi].
func OpenClosed[T any](lo, hi T) Interval[T] {
	return Interval[T]{Lo: FiniteBound(lo, false), Hi: FiniteBound(hi, true)}
}

// AtLeast returns [v, +inf), the representation of "t.attribute >= v".
func AtLeast[T any](v T) Interval[T] {
	return Interval[T]{Lo: FiniteBound(v, true), Hi: Above[T]()}
}

// Greater returns (v, +inf), the representation of "t.attribute > v".
func Greater[T any](v T) Interval[T] {
	return Interval[T]{Lo: FiniteBound(v, false), Hi: Above[T]()}
}

// AtMost returns (-inf, v], the representation of "t.attribute <= v".
func AtMost[T any](v T) Interval[T] {
	return Interval[T]{Lo: Below[T](), Hi: FiniteBound(v, true)}
}

// Less returns (-inf, v), the representation of "t.attribute < v".
func Less[T any](v T) Interval[T] {
	return Interval[T]{Lo: Below[T](), Hi: FiniteBound(v, false)}
}

// All returns (-inf, +inf), matching every value of the domain.
func All[T any]() Interval[T] {
	return Interval[T]{Lo: Below[T](), Hi: Above[T]()}
}

// Validate reports whether the interval is well formed and non-empty:
// bound kinds are legal for their side, lo <= hi, and when lo == hi both
// bounds are closed (so the interval is the point [v, v], never the empty
// set (v, v] or [v, v)).
func (iv Interval[T]) Validate(cmp Cmp[T]) error {
	if iv.Lo.Kind == PosInf {
		return fmt.Errorf("interval: lower bound may not be +inf")
	}
	if iv.Hi.Kind == NegInf {
		return fmt.Errorf("interval: upper bound may not be -inf")
	}
	if iv.Lo.Kind == Finite && iv.Hi.Kind == Finite {
		switch c := cmp(iv.Lo.Value, iv.Hi.Value); {
		case c > 0:
			return fmt.Errorf("interval: lower bound exceeds upper bound")
		case c == 0 && !(iv.Lo.Closed && iv.Hi.Closed):
			return fmt.Errorf("interval: equal bounds require both ends closed")
		}
	}
	return nil
}

// AboveLo reports whether x is above the lower bound (x belongs to the
// interval as far as the lower end is concerned).
func (iv Interval[T]) AboveLo(cmp Cmp[T], x T) bool {
	switch iv.Lo.Kind {
	case NegInf:
		return true
	case PosInf:
		return false
	}
	c := cmp(x, iv.Lo.Value)
	if c == 0 {
		return iv.Lo.Closed
	}
	return c > 0
}

// BelowHi reports whether x is below the upper bound.
func (iv Interval[T]) BelowHi(cmp Cmp[T], x T) bool {
	switch iv.Hi.Kind {
	case PosInf:
		return true
	case NegInf:
		return false
	}
	c := cmp(x, iv.Hi.Value)
	if c == 0 {
		return iv.Hi.Closed
	}
	return c < 0
}

// Contains reports whether x lies inside the interval. This is the point
// membership test a stabbing query must agree with.
func (iv Interval[T]) Contains(cmp Cmp[T], x T) bool {
	return iv.AboveLo(cmp, x) && iv.BelowHi(cmp, x)
}

// Overlaps reports whether the two intervals share at least one point.
func (iv Interval[T]) Overlaps(cmp Cmp[T], other Interval[T]) bool {
	// iv and other overlap unless one ends strictly before the other starts.
	return !iv.endsBefore(cmp, other) && !other.endsBefore(cmp, iv)
}

// endsBefore reports whether iv lies entirely below other: every point of
// iv is strictly less than every point of other.
func (iv Interval[T]) endsBefore(cmp Cmp[T], other Interval[T]) bool {
	if iv.Hi.Kind == PosInf || other.Lo.Kind == NegInf {
		return false
	}
	c := cmp(iv.Hi.Value, other.Lo.Value)
	if c != 0 {
		return c < 0
	}
	// Touching endpoints share a point only when both ends are closed.
	return !(iv.Hi.Closed && other.Lo.Closed)
}

// CoversOpenRange reports whether every point of the open range (lo, hi)
// lies inside the interval. Either range end may be infinite (Kind NegInf
// or PosInf); an infinite range end is covered only by a matching infinite
// interval bound. This is the test the IBS-tree uses to decide whether an
// entire subtree's routing range falls inside an interval (the paper's
// "everything in the right subtree of R will lie within P").
//
// The range is assumed non-empty (lo < hi); callers pass routing ranges of
// binary-search-tree subtrees, which are non-empty by construction.
func (iv Interval[T]) CoversOpenRange(cmp Cmp[T], lo, hi Bound[T]) bool {
	// Lower side: need iv to include values arbitrarily close above lo.
	switch {
	case iv.Lo.Kind == NegInf:
		// Covers any lower range end.
	case lo.Kind == NegInf:
		return false // finite interval bound cannot cover an unbounded range
	default:
		// Values in the range are strictly greater than lo.Value, so the
		// interval's lower bound may sit at lo.Value regardless of closedness.
		if cmp(iv.Lo.Value, lo.Value) > 0 {
			return false
		}
	}
	// Upper side, symmetric.
	switch {
	case iv.Hi.Kind == PosInf:
	case hi.Kind == PosInf:
		return false
	default:
		if cmp(iv.Hi.Value, hi.Value) < 0 {
			return false
		}
	}
	return true
}

// IsPoint reports whether the interval is a degenerate single value, the
// encoding of an equality predicate.
func (iv Interval[T]) IsPoint(cmp Cmp[T]) bool {
	return iv.Lo.Kind == Finite && iv.Hi.Kind == Finite &&
		cmp(iv.Lo.Value, iv.Hi.Value) == 0
}

// String renders the interval in conventional mathematical notation,
// e.g. "[3, 7)", "(-inf, 50]".
func (iv Interval[T]) String() string {
	var lo, hi string
	switch iv.Lo.Kind {
	case NegInf:
		lo = "(-inf"
	default:
		if iv.Lo.Closed {
			lo = fmt.Sprintf("[%v", iv.Lo.Value)
		} else {
			lo = fmt.Sprintf("(%v", iv.Lo.Value)
		}
	}
	switch iv.Hi.Kind {
	case PosInf:
		hi = "+inf)"
	default:
		if iv.Hi.Closed {
			hi = fmt.Sprintf("%v]", iv.Hi.Value)
		} else {
			hi = fmt.Sprintf("%v)", iv.Hi.Value)
		}
	}
	return lo + ", " + hi
}
