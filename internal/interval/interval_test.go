package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func TestConstructorsContains(t *testing.T) {
	tests := []struct {
		name string
		iv   Interval[int]
		in   []int
		out  []int
	}{
		{"point", Point(5), []int{5}, []int{4, 6}},
		{"closed", Closed(2, 8), []int{2, 5, 8}, []int{1, 9}},
		{"open", Open(2, 8), []int{3, 7}, []int{2, 8}},
		{"closedOpen", ClosedOpen(2, 8), []int{2, 7}, []int{1, 8}},
		{"openClosed", OpenClosed(2, 8), []int{3, 8}, []int{2, 9}},
		{"atLeast", AtLeast(10), []int{10, 1000000}, []int{9}},
		{"greater", Greater(10), []int{11, 1000000}, []int{10, 9}},
		{"atMost", AtMost(10), []int{10, -1000000}, []int{11}},
		{"less", Less(10), []int{9, -1000000}, []int{10, 11}},
		{"all", All[int](), []int{-1 << 40, 0, 1 << 40}, nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.iv.Validate(intCmp); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			for _, x := range tc.in {
				if !tc.iv.Contains(intCmp, x) {
					t.Errorf("%v should contain %d", tc.iv, x)
				}
			}
			for _, x := range tc.out {
				if tc.iv.Contains(intCmp, x) {
					t.Errorf("%v should not contain %d", tc.iv, x)
				}
			}
		})
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []Interval[int]{
		Closed(5, 2),
		Open(3, 3),
		ClosedOpen(3, 3),
		OpenClosed(3, 3),
		{Lo: Above[int](), Hi: Above[int]()},
		{Lo: Below[int](), Hi: Below[int]()},
	}
	for _, iv := range bad {
		if err := iv.Validate(intCmp); err == nil {
			t.Errorf("Validate accepted malformed %#v", iv)
		}
	}
	if err := Point(3).Validate(intCmp); err != nil {
		t.Errorf("Validate rejected point: %v", err)
	}
}

func TestOverlaps(t *testing.T) {
	tests := []struct {
		a, b Interval[int]
		want bool
	}{
		{Closed(1, 5), Closed(5, 9), true}, // touching closed ends share 5
		{Closed(1, 5), Open(5, 9), false},  // (5,9) excludes 5
		{ClosedOpen(1, 5), Closed(5, 9), false},
		{Closed(1, 5), Closed(6, 9), false},
		{Closed(1, 9), Closed(3, 4), true},
		{Point(4), Closed(3, 4), true},
		{Point(4), Open(3, 4), false},
		{AtMost(10), AtLeast(10), true},
		{Less(10), AtLeast(10), false},
		{All[int](), Point(123), true},
		{AtLeast(5), Less(5), false},
		{Greater(5), AtMost(5), false},
		{Greater(5), AtMost(6), true},
	}
	for _, tc := range tests {
		if got := tc.a.Overlaps(intCmp, tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		// Overlap is symmetric.
		if got := tc.b.Overlaps(intCmp, tc.a); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestCoversOpenRange(t *testing.T) {
	fb := func(v int) Bound[int] { return Bound[int]{Kind: Finite, Value: v} }
	tests := []struct {
		iv     Interval[int]
		lo, hi Bound[int]
		want   bool
	}{
		{Closed(2, 8), fb(2), fb(8), true},
		{Open(2, 8), fb(2), fb(8), true}, // open range needs no endpoints
		{Closed(3, 8), fb(2), fb(8), false},
		{Closed(2, 7), fb(2), fb(8), false},
		{AtMost(8), Below[int](), fb(8), true},
		{Closed(0, 8), Below[int](), fb(8), false}, // finite lo can't cover -inf
		{AtLeast(2), fb(2), Above[int](), true},
		{Closed(2, 100), fb(2), Above[int](), false},
		{All[int](), Below[int](), Above[int](), true},
	}
	for _, tc := range tests {
		if got := tc.iv.CoversOpenRange(intCmp, tc.lo, tc.hi); got != tc.want {
			t.Errorf("%v.CoversOpenRange(%v, %v) = %v, want %v", tc.iv, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestIsPoint(t *testing.T) {
	if !Point(7).IsPoint(intCmp) {
		t.Error("Point(7).IsPoint() = false")
	}
	for _, iv := range []Interval[int]{Closed(1, 2), AtLeast(7), AtMost(7), All[int]()} {
		if iv.IsPoint(intCmp) {
			t.Errorf("%v.IsPoint() = true", iv)
		}
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		iv   Interval[int]
		want string
	}{
		{Closed(3, 7), "[3, 7]"},
		{Open(3, 7), "(3, 7)"},
		{ClosedOpen(3, 7), "[3, 7)"},
		{AtMost(50), "(-inf, 50]"},
		{Greater(50), "(50, +inf)"},
		{All[int](), "(-inf, +inf)"},
	}
	for _, tc := range tests {
		if got := tc.iv.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// randomIv generates a valid interval from three random values.
func randomIv(a, b int, shape uint8) Interval[int] {
	if a > b {
		a, b = b, a
	}
	switch shape % 8 {
	case 0:
		return Point(a)
	case 1:
		return Closed(a, b)
	case 2:
		if a == b {
			return Point(a)
		}
		return Open(a, b)
	case 3:
		if a == b {
			return Point(a)
		}
		return ClosedOpen(a, b)
	case 4:
		if a == b {
			return Point(a)
		}
		return OpenClosed(a, b)
	case 5:
		return AtLeast(a)
	case 6:
		return AtMost(b)
	default:
		return All[int]()
	}
}

// Property: Overlaps agrees with the existence of a common integer point
// (for integer intervals widened by one on each side to catch boundaries).
func TestQuickOverlapsConsistentWithContains(t *testing.T) {
	f := func(a1, b1, a2, b2 int16, s1, s2 uint8) bool {
		iv1 := randomIv(int(a1), int(b1), s1)
		iv2 := randomIv(int(a2), int(b2), s2)
		overlap := iv1.Overlaps(intCmp, iv2)
		// Search for a witness point near all four bounds.
		witness := false
		candidates := []int{int(a1), int(b1), int(a2), int(b2)}
		for _, c := range candidates {
			for d := -1; d <= 1; d++ {
				x := c + d
				if iv1.Contains(intCmp, x) && iv2.Contains(intCmp, x) {
					witness = true
				}
			}
		}
		// A witness implies overlap. (The converse needs a dense domain:
		// e.g. (3,4) and (3,5) overlap over reals but share no integer;
		// over the reals any overlap of our shapes has a witness within
		// distance 1 of a bound, so for integer-valued bounds witness
		// absence with overlap=true can only arise from open gaps, which
		// we accept.)
		if witness && !overlap {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Validate never accepts an interval that contains no rational
// point, and every constructor-produced interval passes Validate.
func TestQuickValidate(t *testing.T) {
	f := func(a, b int16, s uint8) bool {
		iv := randomIv(int(a), int(b), s)
		return iv.Validate(intCmp) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: CoversOpenRange(lo, hi) implies Contains(x) for any sampled
// x strictly inside (lo, hi).
func TestQuickCoversImpliesContains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(a, b int16, s uint8, lo16, hi16 int16) bool {
		iv := randomIv(int(a), int(b), s)
		lo, hi := int(lo16), int(hi16)
		if lo >= hi-1 {
			return true // need a non-empty open integer range
		}
		fb := func(v int) Bound[int] { return Bound[int]{Kind: Finite, Value: v} }
		if !iv.CoversOpenRange(intCmp, fb(lo), fb(hi)) {
			return true
		}
		for i := 0; i < 8; i++ {
			x := lo + 1 + rng.Intn(hi-lo-1)
			if !iv.Contains(intCmp, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
