package experiments

import (
	"fmt"
	"math/rand"

	"predmatch/internal/core"
	"predmatch/internal/hashseq"
	"predmatch/internal/ibs"
	"predmatch/internal/matcher"
	"predmatch/internal/phylock"
	"predmatch/internal/pred"
	"predmatch/internal/rtree"
	"predmatch/internal/selectivity"
	"predmatch/internal/seqscan"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/workload"
)

// Strategies runs the whole-scheme shoot-out across the paper's
// Section 2 baselines and the Section 4 IBS-tree scheme: per-tuple match
// cost as the number of predicates grows, on a multi-relation population
// with mixed clause shapes. The physical-locking baseline appears twice,
// with and without secondary indexes, exposing its relation-lock
// degeneration ("this degenerate case requires sequentially testing a
// new or modified tuple against all the predicates").
func Strategies(c Config) []Series {
	sizes := []int{50, 100, 200, 400, 800}
	queries := 2000
	if c.Quick {
		sizes = []int{50, 150}
		queries = 300
	}

	kinds := []string{"seqscan", "hashseq", "rtree", "phylock-noidx", "phylock-idx", "ibs"}
	series := make(map[string]*Series, len(kinds))
	var order []*Series
	for _, k := range kinds {
		s := &Series{Name: k}
		series[k] = s
		order = append(order, s)
	}

	for _, n := range sizes {
		rng := rand.New(rand.NewSource(c.Seed + int64(n)))
		spec := workload.SchemaSpec{
			Relations:     4,
			AttrsPerRel:   15,
			UsedAttrFrac:  1.0 / 3.0,
			PredsPerRel:   n,
			ClausesPer:    2,
			IndexableFrac: 0.9,
			PointFrac:     0.5,
		}
		pop, err := spec.Build(rng)
		if err != nil {
			panic(err)
		}

		// Pre-draw the tuple stream: round-robin over relations.
		tuples := make([]tuple.Tuple, queries)
		rels := make([]string, queries)
		for i := range tuples {
			rel := pop.Rels[i%len(pop.Rels)]
			rels[i] = rel.Name()
			tuples[i] = pop.Tuple(rng, rel)
		}

		for _, kind := range kinds {
			m := buildStrategy(kind, pop)
			for _, p := range pop.Preds {
				if err := m.Add(p); err != nil {
					panic(fmt.Sprintf("%s: %v", kind, err))
				}
			}
			var buf []pred.ID
			us := timeOp(queries, func() {
				for i, t := range tuples {
					buf, _ = m.Match(rels[i], t, buf[:0])
				}
			})
			series[kind].Points = append(series[kind].Points, Point{N: n * spec.Relations, Us: us})
		}
	}

	out := make([]Series, 0, len(order))
	for _, s := range order {
		out = append(out, *s)
	}
	if c.Out != nil {
		printSeries(c.Out, "Matching strategies: per-tuple match cost vs total predicates", "us/tuple", out)
	}
	return out
}

// buildStrategy constructs one matcher over the population, including
// the storage substrate the physical-locking baseline needs.
func buildStrategy(kind string, pop *workload.Population) matcher.Matcher {
	switch kind {
	case "seqscan":
		return seqscan.New(pop.Catalog, pop.Funcs)
	case "hashseq":
		return hashseq.New(pop.Catalog, pop.Funcs)
	case "rtree":
		return rtree.NewPredMatcher(pop.Catalog, pop.Funcs)
	case "ibs":
		return core.New(pop.Catalog, pop.Funcs, core.WithEstimator(selectivity.Static{}))
	case "ibs-unbalanced":
		return core.New(pop.Catalog, pop.Funcs,
			core.WithEstimator(selectivity.Static{}),
			core.WithTreeOptions(ibs.Balanced(false)),
			core.WithName("ibs-unbalanced"))
	case "phylock-noidx", "phylock-idx":
		db := storage.NewDB()
		for _, rel := range pop.Rels {
			tab, err := db.CreateRelation(rel)
			if err != nil {
				panic(err)
			}
			if kind == "phylock-idx" {
				// Index the attributes predicates actually restrict (the
				// first third of each relation's attributes).
				used := rel.Arity() / 3
				if used < 1 {
					used = 1
				}
				for a := 0; a < used; a++ {
					if err := tab.CreateIndex(rel.Attrs()[a].Name); err != nil {
						panic(err)
					}
				}
			}
		}
		return phylock.New(db, pop.Funcs)
	default:
		panic("unknown strategy " + kind)
	}
}
