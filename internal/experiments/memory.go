package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"predmatch/internal/core"
	"predmatch/internal/workload"
)

// MemoryRow is one measurement of the Section 3 memory-footprint claim.
type MemoryRow struct {
	Preds     int
	HeapBytes uint64
	Markers   int
	Nodes     int
}

// Memory quantifies the paper's Section 3 argument: "the largest expert
// system applications built to date have on the order of 10,000 rules,
// which is small enough that data structures associated with the rules
// will fit in a few megabytes of main memory." It builds the full
// predicate index at increasing rule counts and reports the measured
// heap growth attributable to it.
func Memory(c Config) []MemoryRow {
	sizes := []int{1000, 10000}
	if c.Quick {
		sizes = []int{500}
	}
	var rows []MemoryRow
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(c.Seed))
		spec := workload.SchemaSpec{
			Relations:     10,
			AttrsPerRel:   15,
			UsedAttrFrac:  1.0 / 3.0,
			PredsPerRel:   n / 10,
			ClausesPer:    2,
			IndexableFrac: 0.9,
			PointFrac:     0.5,
		}
		pop, err := spec.Build(rng)
		if err != nil {
			panic(err)
		}

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)

		ix := core.New(pop.Catalog, pop.Funcs)
		for _, p := range pop.Preds {
			if err := ix.Add(p); err != nil {
				panic(err)
			}
		}

		runtime.GC()
		runtime.ReadMemStats(&after)

		row := MemoryRow{Preds: len(pop.Preds)}
		if after.HeapAlloc > before.HeapAlloc {
			row.HeapBytes = after.HeapAlloc - before.HeapAlloc
		}
		for _, ts := range ix.Trees() {
			row.Markers += ts.Markers
			row.Nodes += ts.Nodes
		}
		rows = append(rows, row)
		runtime.KeepAlive(ix)
		runtime.KeepAlive(pop)
	}
	if c.Out != nil {
		fmt.Fprintf(c.Out, "\nSection 3 memory footprint: full predicate index\n")
		fmt.Fprintf(c.Out, "%10s %14s %12s %10s %12s\n", "preds", "heap bytes", "bytes/pred", "markers", "tree nodes")
		for _, r := range rows {
			fmt.Fprintf(c.Out, "%10d %14d %12.0f %10d %12d\n",
				r.Preds, r.HeapBytes, float64(r.HeapBytes)/float64(max(r.Preds, 1)), r.Markers, r.Nodes)
		}
		fmt.Fprintf(c.Out, "(the paper expects ~10,000 rules to fit in a few megabytes)\n")
	}
	return rows
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
