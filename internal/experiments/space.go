package experiments

import (
	"fmt"

	"predmatch/internal/ibs"
	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
	"predmatch/internal/workload"
)

// SpaceRow is one row of the Section 5.1 marker-space experiment.
type SpaceRow struct {
	N                                             int
	DisjointMarkers, RandomMarkers, NestedMarkers int
}

// Space measures marker counts in balanced IBS-trees for three overlap
// regimes, quantifying Section 5.1's analysis: disjoint intervals place
// O(N) markers ("an intriguing phenomenon ... when intervals in the tree
// do not overlap, only O(N) markers are placed"), the paper's random
// workload sits in between, and fully nested intervals approach the
// O(N log N) worst case.
func Space(c Config) []SpaceRow {
	rng := c.rng()
	var rows []SpaceRow
	for _, n := range c.sweepSizes() {
		row := SpaceRow{N: n}
		row.DisjointMarkers = markersOf(workload.DisjointIntervals(n))
		row.RandomMarkers = markersOf(workload.Intervals(rng, n, 0))
		row.NestedMarkers = markersOf(workload.NestedIntervals(n))
		rows = append(rows, row)
	}
	if c.Out != nil {
		fmt.Fprintf(c.Out, "\nSection 5.1 space: markers in a balanced IBS-tree\n")
		fmt.Fprintf(c.Out, "%8s %12s %12s %12s %12s %12s %12s\n",
			"N", "disjoint", "per-N", "random", "per-N", "nested", "per-N")
		for _, r := range rows {
			fmt.Fprintf(c.Out, "%8d %12d %12.2f %12d %12.2f %12d %12.2f\n",
				r.N,
				r.DisjointMarkers, float64(r.DisjointMarkers)/float64(r.N),
				r.RandomMarkers, float64(r.RandomMarkers)/float64(r.N),
				r.NestedMarkers, float64(r.NestedMarkers)/float64(r.N))
		}
	}
	return rows
}

func markersOf(ivs []interval.Interval[int64]) int {
	tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(true))
	for i, iv := range ivs {
		if err := tree.Insert(markset.ID(i), iv); err != nil {
			panic(err)
		}
	}
	return tree.MarkerCount()
}

// BalanceRow is one row of the Section 4.3 balancing ablation.
type BalanceRow struct {
	N                  int
	BalancedHeight     int
	UnbalancedHeight   int
	BalancedSearchUs   float64
	UnbalancedSearchUs float64
}

// Balance quantifies what the paper's Section 4.3 buys: under sorted
// (adversarial) insertion order, the unbalanced IBS-tree the paper's
// prototype used degrades to a linear spine, while the AVL variant with
// the Figure 6 mark rotation rules keeps logarithmic height and search.
func Balance(c Config) []BalanceRow {
	rng := c.rng()
	queries := 2000
	if c.Quick {
		queries = 300
	}
	var rows []BalanceRow
	for _, n := range c.sweepSizes() {
		row := BalanceRow{N: n}
		// Sorted, non-overlapping intervals: worst case for an
		// unbalanced BST.
		ivs := workload.DisjointIntervals(n)
		for _, balanced := range []bool{true, false} {
			tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(balanced))
			for i, iv := range ivs {
				if err := tree.Insert(markset.ID(i), iv); err != nil {
					panic(err)
				}
			}
			points := make([]int64, queries)
			for i := range points {
				points[i] = rng.Int63n(int64(n) * 20)
			}
			var buf []markset.ID
			us := timeOp(queries, func() {
				for _, x := range points {
					buf = tree.StabAppend(x, buf[:0])
				}
			})
			if balanced {
				row.BalancedHeight = tree.Height()
				row.BalancedSearchUs = us
			} else {
				row.UnbalancedHeight = tree.Height()
				row.UnbalancedSearchUs = us
			}
		}
		rows = append(rows, row)
	}
	if c.Out != nil {
		fmt.Fprintf(c.Out, "\nSection 4.3 ablation: balanced vs unbalanced under sorted insertion\n")
		fmt.Fprintf(c.Out, "%8s %14s %14s %16s %16s\n",
			"N", "height(bal)", "height(unbal)", "search(bal) us", "search(unbal) us")
		for _, r := range rows {
			fmt.Fprintf(c.Out, "%8d %14d %14d %16.3f %16.3f\n",
				r.N, r.BalancedHeight, r.UnbalancedHeight, r.BalancedSearchUs, r.UnbalancedSearchUs)
		}
	}
	return rows
}
