package experiments

import (
	"fmt"

	"predmatch/internal/augtree"
	"predmatch/internal/ibs"
	"predmatch/internal/inttree"
	"predmatch/internal/islist"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
	"predmatch/internal/pst"
	"predmatch/internal/rtree"
	"predmatch/internal/segtree"
	"predmatch/internal/workload"
)

// CompareRow is one structure's measurements in the Section 6
// comparison of interval indexing techniques.
type CompareRow struct {
	Name     string
	Dynamic  bool
	InsertUs float64 // per interval (dynamic) or per interval of a full build (static)
	SearchUs float64 // per stabbing query
	DeleteUs float64 // per interval; static structures pay a full rebuild
	Space    int     // markers (IBS), nodes/items otherwise
}

// Named adapters give each structure the ivindex.Index interface.
type ibsWrap struct {
	*ibs.Tree[int64]
	name string
}

func (w ibsWrap) Name() string { return w.name }

type augWrap struct{ *augtree.Tree[int64] }

func (augWrap) Name() string { return "augtree" }

type pstWrap struct{ *pst.Tree[int64] }

func (pstWrap) Name() string { return "pst" }

type islWrap struct{ *islist.List[int64] }

func (islWrap) Name() string { return "islist" }

// Compare runs the paper's Section 6 proposed experiment: "implement
// several different techniques for dynamically indexing intervals,
// including 1-dimensional R-trees, IBS-trees, and priority search
// trees, and then compare their implementation complexity and time and
// space requirements". The static segment and centered interval trees
// are included with rebuild-per-update costs, quantifying Section 4.1's
// argument that they "are not adequate because they do not allow
// dynamic insertion and deletion".
func Compare(c Config) []CompareRow {
	n := 1000
	queries := 2000
	if c.Quick {
		n, queries = 200, 300
	}
	rng := c.rng()
	ivs := workload.Intervals(rng, n, 0.5)
	points := workload.StabPoints(rng, queries)

	var rows []CompareRow

	dynamics := []func() ivindex.Index{
		func() ivindex.Index { return ibsWrap{ibs.New(ivindex.Int64Cmp, ibs.Balanced(true)), "ibs-balanced"} },
		func() ivindex.Index { return ibsWrap{ibs.New(ivindex.Int64Cmp, ibs.Balanced(false)), "ibs-unbalanced"} },
		func() ivindex.Index { return islWrap{islist.New(ivindex.Int64Cmp)} },
		func() ivindex.Index { return pstWrap{pst.New(ivindex.Int64Cmp)} },
		func() ivindex.Index { return augWrap{augtree.New(ivindex.Int64Cmp)} },
		func() ivindex.Index { return rtree.NewInterval1D() },
	}
	for _, mk := range dynamics {
		ix := mk()
		row := CompareRow{Name: ix.Name(), Dynamic: true}
		row.InsertUs = timeOp(n, func() {
			for i, iv := range ivs {
				if err := ix.Insert(markset.ID(i), iv); err != nil {
					panic(err)
				}
			}
		})
		var buf []markset.ID
		row.SearchUs = timeOp(queries, func() {
			for _, x := range points {
				buf = ix.StabAppend(x, buf[:0])
			}
		})
		del := n / 2
		row.DeleteUs = timeOp(del, func() {
			for i := 0; i < del; i++ {
				if err := ix.Delete(markset.ID(i)); err != nil {
					panic(err)
				}
			}
		})
		switch w := ix.(type) {
		case ibsWrap:
			row.Space = w.MarkerCount() // after deletions, of the remaining half
		case islWrap:
			row.Space = w.MarkerCount()
		default:
			row.Space = ix.Len()
		}
		rows = append(rows, row)
	}

	// Static structures: build once; "delete" costs a full rebuild.
	segItems := make([]segtree.Item[int64], n)
	intItems := make([]inttree.Item[int64], n)
	for i, iv := range ivs {
		segItems[i] = segtree.Item[int64]{ID: markset.ID(i), Iv: iv}
		intItems[i] = inttree.Item[int64]{ID: markset.ID(i), Iv: iv}
	}
	{
		var tr *segtree.Tree[int64]
		row := CompareRow{Name: "segtree(static)"}
		row.InsertUs = timeOp(n, func() { tr = segtree.Build(ivindex.Int64Cmp, segItems) })
		var buf []markset.ID
		row.SearchUs = timeOp(queries, func() {
			for _, x := range points {
				buf = tr.StabAppend(x, buf[:0])
			}
		})
		// A deletion forces a rebuild of the remaining set.
		row.DeleteUs = timeOp(1, func() { _ = segtree.Build(ivindex.Int64Cmp, segItems[1:]) })
		row.Space = tr.Markers()
		rows = append(rows, row)
	}
	{
		var tr *inttree.Tree[int64]
		row := CompareRow{Name: "inttree(static)"}
		row.InsertUs = timeOp(n, func() { tr = inttree.Build(ivindex.Int64Cmp, intItems) })
		var buf []markset.ID
		row.SearchUs = timeOp(queries, func() {
			for _, x := range points {
				buf = tr.StabAppend(x, buf[:0])
			}
		})
		row.DeleteUs = timeOp(1, func() { _ = inttree.Build(ivindex.Int64Cmp, intItems[1:]) })
		row.Space = tr.Len()
		rows = append(rows, row)
	}

	if c.Out != nil {
		fmt.Fprintf(c.Out, "\nSection 6 comparison: dynamic interval indexes (N=%d, a=0.5 workload)\n", n)
		fmt.Fprintf(c.Out, "%-18s %10s %12s %12s %12s %10s\n",
			"structure", "dynamic", "insert us", "search us", "delete us", "space")
		for _, r := range rows {
			dyn := "yes"
			if !r.Dynamic {
				dyn = "rebuild"
			}
			fmt.Fprintf(c.Out, "%-18s %10s %12.3f %12.3f %12.3f %10d\n",
				r.Name, dyn, r.InsertUs, r.SearchUs, r.DeleteUs, r.Space)
		}
	}
	return rows
}
