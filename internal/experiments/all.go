package experiments

import "fmt"

// All runs every experiment in paper order.
func All(c Config) {
	if c.Out != nil {
		fmt.Fprintln(c.Out, "Reproduction of Hanson et al., \"A Predicate Matching Algorithm")
		fmt.Fprintln(c.Out, "for Database Rule Systems\", SIGMOD 1990 — evaluation artifacts.")
	}
	Fig7(c)
	Fig8(c)
	Fig9(c)
	CostModel(c)
	Space(c)
	Balance(c)
	Compare(c)
	Strategies(c)
	Memory(c)
}
