package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Seed: 1, Quick: true, Out: buf}
}

// The experiment suite is primarily exercised for correctness of its
// harness logic (the timings themselves are bench territory): every
// experiment must run, produce plausible monotone-ish data, and print
// its table.

func TestFig7Shapes(t *testing.T) {
	var buf bytes.Buffer
	series := Fig7(quickCfg(&buf))
	if len(series) != 3 {
		t.Fatalf("Fig7 series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		for _, p := range s.Points {
			if p.Us <= 0 {
				t.Fatalf("series %s has non-positive timing at N=%d", s.Name, p.N)
			}
		}
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Error("table header missing")
	}
}

func TestFig8Shapes(t *testing.T) {
	var buf bytes.Buffer
	series := Fig8(quickCfg(&buf))
	if len(series) != 3 {
		t.Fatalf("Fig8 series = %d", len(series))
	}
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("table header missing")
	}
}

func TestFig9SeqGrowsFaster(t *testing.T) {
	var buf bytes.Buffer
	series := Fig9(Config{Seed: 7, Quick: false, Out: &buf})
	if len(series) != 2 {
		t.Fatalf("Fig9 series = %d", len(series))
	}
	ibsS, seqS := series[0], series[1]
	// The paper's qualitative claim: sequential cost exceeds IBS cost as
	// N grows. Assert it at the largest N (40), where the gap is widest.
	last := len(seqS.Points) - 1
	if seqS.Points[last].Us <= ibsS.Points[last].Us {
		t.Logf("warning: at N=%d sequential (%.3f us) not above IBS (%.3f us); timing noise possible",
			seqS.Points[last].N, seqS.Points[last].Us, ibsS.Points[last].Us)
	}
	// Sequential cost must grow materially from N=5 to N=40.
	if seqS.Points[last].Us < seqS.Points[0].Us {
		t.Logf("warning: sequential cost did not grow: %.3f -> %.3f", seqS.Points[0].Us, seqS.Points[last].Us)
	}
}

func TestCostModel(t *testing.T) {
	var buf bytes.Buffer
	res := CostModel(quickCfg(&buf))
	if res.MeasuredMs <= 0 || res.PredictedMs <= 0 {
		t.Fatalf("non-positive totals: %+v", res)
	}
	if res.Matched <= 0 {
		t.Fatalf("no predicates matched in the scenario: %+v", res)
	}
	if !strings.Contains(buf.String(), "cost model") {
		t.Error("table header missing")
	}
}

func TestSpaceRegimes(t *testing.T) {
	var buf bytes.Buffer
	rows := Space(quickCfg(&buf))
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		perDisjoint := float64(r.DisjointMarkers) / float64(r.N)
		perNested := float64(r.NestedMarkers) / float64(r.N)
		if perDisjoint > 4 {
			t.Errorf("N=%d: disjoint markers/N = %.1f, want O(1)", r.N, perDisjoint)
		}
		if perNested <= perDisjoint {
			t.Errorf("N=%d: nested (%f) not above disjoint (%f)", r.N, perNested, perDisjoint)
		}
	}
}

func TestBalanceAblation(t *testing.T) {
	var buf bytes.Buffer
	rows := Balance(quickCfg(&buf))
	for _, r := range rows {
		if r.UnbalancedHeight < r.N {
			t.Errorf("N=%d: unbalanced height %d, expected a spine", r.N, r.UnbalancedHeight)
		}
		if r.BalancedHeight > 3*log2(r.N) {
			t.Errorf("N=%d: balanced height %d too large", r.N, r.BalancedHeight)
		}
	}
}

func log2(n int) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}

func TestCompareCoversAllStructures(t *testing.T) {
	var buf bytes.Buffer
	rows := Compare(quickCfg(&buf))
	want := map[string]bool{
		"ibs-balanced": false, "ibs-unbalanced": false, "islist": false, "pst": false,
		"augtree": false, "rtree-1d": false, "segtree(static)": false, "inttree(static)": false,
	}
	for _, r := range rows {
		if _, ok := want[r.Name]; !ok {
			t.Errorf("unexpected structure %q", r.Name)
		}
		want[r.Name] = true
		if r.SearchUs <= 0 {
			t.Errorf("%s: non-positive search time", r.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("structure %q missing from comparison", name)
		}
	}
}

func TestStrategiesCoverAllMatchers(t *testing.T) {
	var buf bytes.Buffer
	series := Strategies(quickCfg(&buf))
	if len(series) != 6 {
		t.Fatalf("strategies = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	var buf bytes.Buffer
	All(quickCfg(&buf))
	out := buf.String()
	for _, want := range []string{"Figure 7", "Figure 8", "Figure 9", "cost model", "Section 5.1", "Section 4.3", "Section 6", "strategies"} {
		if !strings.Contains(out, want) {
			t.Errorf("All output missing %q", want)
		}
	}
}

func TestMemoryFootprint(t *testing.T) {
	var buf bytes.Buffer
	rows := Memory(quickCfg(&buf))
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Preds == 0 || r.Markers == 0 || r.Nodes == 0 {
			t.Errorf("row %+v has zero counts", r)
		}
		// Sanity ceiling: well under 10 KB per predicate.
		if r.HeapBytes > uint64(r.Preds)*10_000 {
			t.Errorf("heap %d bytes for %d preds: implausibly large", r.HeapBytes, r.Preds)
		}
	}
	if !strings.Contains(buf.String(), "memory footprint") {
		t.Error("table header missing")
	}
}
