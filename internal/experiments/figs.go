package experiments

import (
	"predmatch/internal/core"
	"predmatch/internal/ibs"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/seqscan"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/workload"
)

// pointFracs are the paper's a values.
var pointFracs = []float64{0, 0.5, 1}

func fracName(a float64) string {
	switch a {
	case 0:
		return "a=0"
	case 0.5:
		return "a=0.5"
	default:
		return "a=1"
	}
}

// fig7Sizes mirrors the paper's x-axis (N between 0 and 1,000).
func (c Config) sweepSizes() []int {
	if c.Quick {
		return []int{100, 300, 500}
	}
	return []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
}

func (c Config) reps(def int) int {
	if c.Quick {
		return 2
	}
	return def
}

// Fig7 measures average IBS-tree insertion time versus N for each point
// fraction a. As in the paper, the tree is the unbalanced variant with
// random insertion order ("the balancing scheme using rotations was not
// implemented, but ... the tree is normally balanced if data is inserted
// in random order"), and the average insertion cost is the time to
// insert N predicates into an initially empty index divided by N.
func Fig7(c Config) []Series {
	rng := c.rng()
	var out []Series
	for _, a := range pointFracs {
		s := Series{Name: fracName(a)}
		for _, n := range c.sweepSizes() {
			reps := c.reps(6)
			var sum float64
			for r := 0; r < reps; r++ {
				ivs := workload.Intervals(rng, n, a)
				tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(false))
				sum += timeOp(n, func() {
					for i, iv := range ivs {
						if err := tree.Insert(markset.ID(i), iv); err != nil {
							panic(err)
						}
					}
				})
			}
			s.Points = append(s.Points, Point{N: n, Us: sum / float64(reps)})
		}
		out = append(out, s)
	}
	if c.Out != nil {
		printSeries(c.Out, "Figure 7: average IBS-tree insertion time (unbalanced, random order)", "us/insert", out)
	}
	return out
}

// Fig8 measures the average IBS-tree search (stabbing) time versus N for
// each point fraction a, querying uniform random points.
func Fig8(c Config) []Series {
	rng := c.rng()
	queries := 2000
	if c.Quick {
		queries = 300
	}
	var out []Series
	for _, a := range pointFracs {
		s := Series{Name: fracName(a)}
		for _, n := range c.sweepSizes() {
			tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(false))
			for i, iv := range workload.Intervals(rng, n, a) {
				if err := tree.Insert(markset.ID(i), iv); err != nil {
					panic(err)
				}
			}
			points := workload.StabPoints(rng, queries)
			var buf []markset.ID
			us := timeOp(queries, func() {
				for _, x := range points {
					buf = tree.StabAppend(x, buf[:0])
				}
			})
			s.Points = append(s.Points, Point{N: n, Us: us})
		}
		out = append(out, s)
	}
	if c.Out != nil {
		printSeries(c.Out, "Figure 8: average IBS-tree search time (unbalanced, random order)", "us/search", out)
	}
	return out
}

// fig9Schema is the single-relation, single-attribute setting of
// Figure 9.
func fig9Schema() (*schema.Catalog, *pred.Registry) {
	cat := schema.NewCatalog()
	rel := schema.MustRelation("r", schema.Attribute{Name: "attr", Type: value.KindInt})
	if err := cat.Add(rel); err != nil {
		panic(err)
	}
	return cat, pred.NewRegistry()
}

// Fig9 compares the full matching cost — find all predicates matching a
// value — between the IBS-tree scheme and a sequential predicate list,
// for small N (the paper sweeps 5..40, where sequential search is at its
// most competitive; "the cost curve for sequential search is always
// higher than for the IBS-tree, showing that the IBS-tree has quite low
// overhead").
func Fig9(c Config) []Series {
	rng := c.rng()
	sizes := []int{5, 10, 15, 20, 25, 30, 35, 40}
	if c.Quick {
		sizes = []int{5, 20, 40}
	}
	queries := 4000
	if c.Quick {
		queries = 500
	}
	ibsSeries := Series{Name: "ibs-tree"}
	seqSeries := Series{Name: "sequential"}
	for _, n := range sizes {
		cat, funcs := fig9Schema()
		preds := workload.SingleAttrPreds(rng, "r", "attr", n, 0.5)

		ix := core.New(cat, funcs, core.WithTreeOptions(ibs.Balanced(false)))
		sq := seqscan.New(cat, funcs)
		for _, p := range preds {
			if err := ix.Add(p); err != nil {
				panic(err)
			}
			if err := sq.Add(p); err != nil {
				panic(err)
			}
		}
		points := workload.StabPoints(rng, queries)
		tuples := make([]tuple.Tuple, len(points))
		for i, x := range points {
			tuples[i] = tuple.New(value.Int(x))
		}
		var buf []pred.ID
		ibsSeries.Points = append(ibsSeries.Points, Point{N: n, Us: timeOp(queries, func() {
			for _, t := range tuples {
				buf, _ = ix.Match("r", t, buf[:0])
			}
		})})
		seqSeries.Points = append(seqSeries.Points, Point{N: n, Us: timeOp(queries, func() {
			for _, t := range tuples {
				buf, _ = sq.Match("r", t, buf[:0])
			}
		})})
	}
	out := []Series{ibsSeries, seqSeries}
	if c.Out != nil {
		printSeries(c.Out, "Figure 9: predicate test cost, IBS-tree scheme vs sequential list", "us/tuple", out)
	}
	return out
}
