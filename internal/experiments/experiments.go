// Package experiments regenerates every evaluation artifact of the
// paper — Figures 7, 8 and 9, the Section 5.2 cost-model scenario, and
// measurement experiments for the Section 5.1 space analysis, the
// Section 4.3 balancing ablation, and the Section 6 future-work
// comparison of dynamic interval indexes. cmd/experiments is the CLI
// front end; the root bench_test.go exposes the same workloads as
// testing.B benchmarks.
//
// Absolute timings are hardware-dependent (the paper measured C++ on a
// 1989 SPARCstation 1); what the experiments reproduce is the shape of
// each curve — see EXPERIMENTS.md for the paper-versus-measured record.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Config controls experiment scale and output.
type Config struct {
	// Seed makes runs deterministic.
	Seed int64
	// Quick trades precision for speed (fewer repetitions and smaller
	// sweeps), for tests.
	Quick bool
	// Out receives the formatted tables.
	Out io.Writer
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// Point is one measurement in a series.
type Point struct {
	N  int
	Us float64 // microseconds per operation
}

// Series is a named curve, e.g. "a=0.5" or "seqscan".
type Series struct {
	Name   string
	Points []Point
}

// timeOp measures fn (which performs n operations) and returns
// microseconds per operation.
func timeOp(n int, fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Microseconds()) / float64(n)
}

// printSeries renders curves with a shared N column.
func printSeries(w io.Writer, title, unit string, series []Series) {
	fmt.Fprintf(w, "\n%s\n", title)
	if len(series) == 0 || len(series[0].Points) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	fmt.Fprintf(w, "%8s", "N")
	for _, s := range series {
		fmt.Fprintf(w, "  %14s", s.Name)
	}
	fmt.Fprintf(w, "   (%s)\n", unit)
	for i := range series[0].Points {
		fmt.Fprintf(w, "%8d", series[0].Points[i].N)
		for _, s := range series {
			fmt.Fprintf(w, "  %14.3f", s.Points[i].Us)
		}
		fmt.Fprintln(w)
	}
}
