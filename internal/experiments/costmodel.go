package experiments

import (
	"fmt"
	"time"

	"predmatch/internal/core"
	"predmatch/internal/ibs"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
	"predmatch/internal/pred"
	"predmatch/internal/selectivity"
	"predmatch/internal/tuple"
	"predmatch/internal/workload"
)

// CostModelResult captures the Section 5.2 closed-form scenario: the
// paper's per-component constants (measured on a SPARCstation 1) against
// this implementation's measured equivalents, and both totals.
type CostModelResult struct {
	// Paper's constants and totals, in milliseconds.
	PaperTreeSearchMs float64 // 0.13: one-attribute IBS search, ~40 preds
	PaperSeqTestMs    float64 // 0.02: one sequential predicate test
	PaperFullTestMs   float64 // 0.05: one full completion test
	PaperSearchMs     float64 // 1.1: hash + 5 tree searches + residual tests
	PaperTotalMs      float64 // 2.1: search + 20 completion tests

	// Our measurements for the same scenario, in milliseconds.
	TreeSearchMs float64
	SeqTestMs    float64
	FullTestMs   float64
	PredictedMs  float64 // model total assembled from our components
	MeasuredMs   float64 // actual end-to-end Match time per tuple
	Candidates   float64 // average partial matches completed per tuple
	Matched      float64 // average predicates fully matched per tuple
}

// CostModel reproduces the Section 5.2 scenario. The paper's expression,
// with its SPARCstation constants, is
//
//	search = hash + attrs·treeSearch + (1-f)·N·seqTest
//	       = 0.1 + 5·0.13 + 0.1·200·0.02 ≈ 1.1 ms
//	total  = search + sel·N·fullTest = 1.1 + 0.1·200·0.05 = 2.1 ms
//
// We rebuild the population (200 predicates over a 15-attribute
// relation, clauses on 1/3 of the attributes, 90% indexable, 2 clauses
// per predicate), measure each component on this implementation,
// assemble the model total from our constants, and compare it with the
// directly measured end-to-end match cost.
func CostModel(c Config) CostModelResult {
	rng := c.rng()
	res := CostModelResult{
		PaperTreeSearchMs: 0.13,
		PaperSeqTestMs:    0.02,
		PaperFullTestMs:   0.05,
		PaperSearchMs:     1.1,
		PaperTotalMs:      2.1,
	}

	spec := workload.PaperScenario()
	pop, err := spec.Build(rng)
	if err != nil {
		panic(err)
	}
	ix := core.New(pop.Catalog, pop.Funcs, core.WithEstimator(selectivity.Static{}))
	var bounds, nonIndexable []*pred.Bound
	for _, p := range pop.Preds {
		if err := ix.Add(p); err != nil {
			panic(err)
		}
		b, err := p.Bind(pop.Catalog, pop.Funcs)
		if err != nil {
			panic(err)
		}
		bounds = append(bounds, b)
		if _, ok := selectivity.ChooseClause(p, selectivity.Static{}); !ok {
			nonIndexable = append(nonIndexable, b)
		}
	}
	rel := pop.Rels[0]

	queries := 2000
	if c.Quick {
		queries = 300
	}
	tuples := make([]tuple.Tuple, queries)
	for i := range tuples {
		tuples[i] = pop.Tuple(rng, rel)
	}

	// End-to-end measured cost and hit counts.
	var buf []pred.ID
	hits := 0
	start := time.Now()
	for _, t := range tuples {
		buf, _ = ix.Match(rel.Name(), t, buf[:0])
		hits += len(buf)
	}
	res.MeasuredMs = float64(time.Since(start).Microseconds()) / float64(queries) / 1000
	res.Matched = float64(hits) / float64(queries)
	cands := 0
	for _, t := range tuples {
		cands += ix.Candidates(rel.Name(), t)
	}
	res.Candidates = float64(cands) / float64(queries)

	// Component: one-attribute IBS-tree search with the scenario's ~40
	// predicates per attribute ("assuming that there are 200/5 = 40
	// predicates per attribute, the search cost in IBS-tree for one
	// attribute is approximately .13 msec").
	perAttr := spec.PredsPerRel / 5
	tree := ibs.New(ivindex.Int64Cmp, ibs.Balanced(false))
	for i, iv := range workload.Intervals(rng, perAttr, spec.PointFrac) {
		if err := tree.Insert(markset.ID(i), iv); err != nil {
			panic(err)
		}
	}
	points := workload.StabPoints(rng, queries)
	var sbuf []markset.ID
	res.TreeSearchMs = timeOp(queries, func() {
		for _, x := range points {
			sbuf = tree.StabAppend(x, sbuf[:0])
		}
	}) / 1000

	// Components: per-predicate test costs.
	res.SeqTestMs = measurePerPredTest(nonIndexable, tuples) / 1000
	res.FullTestMs = measurePerPredTest(bounds, tuples) / 1000

	// Assemble the model from our constants. The hash lookup is a Go map
	// access, effectively free at this scale, so it is omitted (the
	// paper's 0.1 ms term).
	attrsSearched := float64(len(ix.Trees()))
	n := float64(len(pop.Preds))
	fracIndexable := 1 - float64(len(nonIndexable))/n
	search := attrsSearched*res.TreeSearchMs + (1-fracIndexable)*n*res.SeqTestMs
	res.PredictedMs = search + res.Candidates*res.FullTestMs

	if c.Out != nil {
		w := c.Out
		fmt.Fprintf(w, "\nSection 5.2 cost model (200 preds, 15 attrs, 1/3 used, 90%% indexable)\n")
		fmt.Fprintf(w, "%-38s %12s %12s\n", "component", "paper (ms)", "ours (ms)")
		fmt.Fprintf(w, "%-38s %12.3f %12.6f\n", "IBS search, one attribute (40 preds)", res.PaperTreeSearchMs, res.TreeSearchMs)
		fmt.Fprintf(w, "%-38s %12.3f %12.6f\n", "sequential predicate test", res.PaperSeqTestMs, res.SeqTestMs)
		fmt.Fprintf(w, "%-38s %12.3f %12.6f\n", "full predicate completion test", res.PaperFullTestMs, res.FullTestMs)
		fmt.Fprintf(w, "%-38s %12.3f %12.6f\n", "model total per tuple", res.PaperTotalMs, res.PredictedMs)
		fmt.Fprintf(w, "%-38s %12.3f %12.6f\n", "measured end-to-end per tuple", res.PaperTotalMs, res.MeasuredMs)
		fmt.Fprintf(w, "avg partial matches completed per tuple: %.1f (paper's scenario assumes 20); fully matched: %.1f\n",
			res.Candidates, res.Matched)
	}
	return res
}

// measurePerPredTest times the average full-predicate evaluation in
// microseconds.
func measurePerPredTest(bounds []*pred.Bound, tuples []tuple.Tuple) float64 {
	if len(bounds) == 0 || len(tuples) == 0 {
		return 0
	}
	ops := 0
	start := time.Now()
	for _, t := range tuples {
		for _, b := range bounds {
			_ = b.Match(t)
			ops++
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(ops)
}
