package pred

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func testCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	emp := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt},
		schema.Attribute{Name: "dept", Type: value.KindString},
	)
	if err := cat.Add(emp); err != nil {
		panic(err)
	}
	return cat
}

func empTuple(name string, age, salary int64, dept string) tuple.Tuple {
	return tuple.New(value.String_(name), value.Int(age), value.Int(salary), value.String_(dept))
}

// TestPaperExamples encodes the four example predicates from the paper's
// introduction and checks their matching behavior.
func TestPaperExamples(t *testing.T) {
	cat := testCatalog()
	reg := NewRegistry()

	// EMP.salary < 20000 and EMP.age > 50
	p1 := New(1, "emp",
		IvClause("salary", interval.Less(value.Int(20000))),
		IvClause("age", interval.Greater(value.Int(50))),
	)
	// 20000 <= EMP.salary <= 30000
	p2 := New(2, "emp",
		IvClause("salary", interval.Closed(value.Int(20000), value.Int(30000))),
	)
	// EMP.dept = "Salesperson" (the paper says Job; dept in our schema)
	p3 := New(3, "emp", EqClause("dept", value.String_("sales")))
	// IsOdd(EMP.age) and EMP.dept = "Shoe"
	p4 := New(4, "emp",
		FnClause("age", "isodd"),
		EqClause("dept", value.String_("shoe")),
	)

	bind := func(p *Predicate) *Bound {
		t.Helper()
		b, err := p.Bind(cat, reg)
		if err != nil {
			t.Fatalf("Bind(%v): %v", p, err)
		}
		return b
	}
	b1, b2, b3, b4 := bind(p1), bind(p2), bind(p3), bind(p4)

	cases := []struct {
		tup  tuple.Tuple
		want []bool // p1..p4
	}{
		{empTuple("a", 55, 15000, "shoe"), []bool{true, false, false, true}},
		{empTuple("b", 55, 15000, "toy"), []bool{true, false, false, false}},
		{empTuple("c", 40, 25000, "sales"), []bool{false, true, true, false}},
		{empTuple("d", 50, 19999, "shoe"), []bool{false, false, false, false}}, // age not > 50, even
		{empTuple("e", 51, 20000, "x"), []bool{false, true, false, false}},     // salary not < 20000
	}
	for _, tc := range cases {
		got := []bool{b1.Match(tc.tup), b2.Match(tc.tup), b3.Match(tc.tup), b4.Match(tc.tup)}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("tuple %v: matches = %v, want %v", tc.tup, got, tc.want)
		}
	}
}

func TestMatchSkipping(t *testing.T) {
	cat := testCatalog()
	reg := NewRegistry()
	p := New(1, "emp",
		IvClause("salary", interval.AtLeast(value.Int(100))), // clause 0
		EqClause("dept", value.String_("shoe")),              // clause 1
	)
	b, err := p.Bind(cat, reg)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple fails clause 0 but passes clause 1: skipping clause 0 must match.
	tp := empTuple("a", 30, 50, "shoe")
	if b.Match(tp) {
		t.Fatal("full Match should fail")
	}
	if !b.MatchSkipping(tp, 0) {
		t.Fatal("MatchSkipping(0) should pass")
	}
	if b.MatchSkipping(tp, 1) {
		t.Fatal("MatchSkipping(1) should fail on clause 0")
	}
	// Skipping -1 (nothing) equals Match.
	if b.MatchSkipping(tp, -1) {
		t.Fatal("MatchSkipping(-1) should equal Match")
	}
}

func TestValidateErrors(t *testing.T) {
	cat := testCatalog()
	reg := NewRegistry()
	cases := []*Predicate{
		New(1, "nosuch", EqClause("age", value.Int(1))),
		New(2, "emp", EqClause("nosuch", value.Int(1))),
		New(3, "emp", EqClause("age", value.String_("x"))),
		New(4, "emp", IvClause("age", interval.Closed(value.Int(5), value.Int(1)))),
		New(5, "emp", FnClause("age", "nosuchfn")),
		New(6, "emp", IvClause("age",
			interval.Interval[value.Value]{
				Lo: interval.FiniteBound(value.Int(1), true),
				Hi: interval.FiniteBound(value.String_("x"), true),
			})),
	}
	for _, p := range cases {
		if err := p.Validate(cat, reg); err == nil {
			t.Errorf("Validate accepted %v", p)
		}
		if _, err := p.Bind(cat, reg); err == nil {
			t.Errorf("Bind accepted %v", p)
		}
	}
	good := New(7, "emp", IvClause("age", interval.AtLeast(value.Int(18))), FnClause("name", "isempty"))
	if err := good.Validate(cat, reg); err != nil {
		t.Errorf("Validate rejected good predicate: %v", err)
	}
}

func TestClauseStringAndIndexable(t *testing.T) {
	eq := EqClause("age", value.Int(44))
	if !eq.Indexable() {
		t.Error("equality clause not indexable")
	}
	if got := eq.String(); got != "age = 44" {
		t.Errorf("String = %q", got)
	}
	fn := FnClause("age", "isodd")
	if fn.Indexable() {
		t.Error("function clause indexable")
	}
	if got := fn.String(); got != "isodd(age)" {
		t.Errorf("String = %q", got)
	}
	iv := IvClause("salary", interval.Closed(value.Int(1), value.Int(2)))
	if got := iv.String(); !strings.Contains(got, "salary in [1, 2]") {
		t.Errorf("String = %q", got)
	}
}

func TestPredicateString(t *testing.T) {
	p := New(9, "emp", EqClause("dept", value.String_("shoe")), FnClause("age", "isodd"))
	s := p.String()
	for _, want := range []string{"P9", "emp", "dept = 'shoe'", "isodd(age)", " and "} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"isodd", "iseven", "ispositive", "isnegative", "iszero", "isempty", "isupper", "islower"} {
		if _, ok := reg.Get(name); !ok {
			t.Errorf("builtin %s missing", name)
		}
	}
	// Case-insensitive lookup and registration.
	if _, ok := reg.Get("IsOdd"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if err := reg.Register("custom", func(v value.Value) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("CUSTOM", nil); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Register("", nil); err == nil {
		t.Error("empty name accepted")
	}

	// Builtin behavior.
	isodd, _ := reg.Get("isodd")
	if !isodd(value.Int(3)) || isodd(value.Int(4)) || isodd(value.String_("3")) {
		t.Error("isodd wrong")
	}
	ispos, _ := reg.Get("ispositive")
	if !ispos(value.Float(0.5)) || ispos(value.Int(0)) || ispos(value.String_("x")) {
		t.Error("ispositive wrong")
	}
	isupper, _ := reg.Get("isupper")
	if !isupper(value.String_("ABC")) || isupper(value.String_("AbC")) || isupper(value.String_("")) {
		t.Error("isupper wrong")
	}
}

func TestSplitDNF(t *testing.T) {
	// (a=1 or a=2) and (b=3 or isodd(b)) -> 4 conjunctive predicates.
	e := And{Exprs: []Expr{
		Or{Exprs: []Expr{Leaf{EqClause("age", value.Int(1))}, Leaf{EqClause("age", value.Int(2))}}},
		Or{Exprs: []Expr{Leaf{EqClause("salary", value.Int(3))}, Leaf{FnClause("salary", "isodd")}}},
	}}
	preds := SplitDNF(10, "emp", e)
	if len(preds) != 4 {
		t.Fatalf("SplitDNF produced %d predicates, want 4", len(preds))
	}
	var ids []ID
	for _, p := range preds {
		ids = append(ids, p.ID)
		if p.Rel != "emp" || len(p.Clauses) != 2 {
			t.Errorf("bad predicate %v", p)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if !reflect.DeepEqual(ids, []ID{10, 11, 12, 13}) {
		t.Fatalf("ids = %v", ids)
	}

	// Pure conjunction stays one predicate.
	one := SplitDNF(1, "emp", Conj(EqClause("age", value.Int(1)), EqClause("salary", value.Int(2))))
	if len(one) != 1 || len(one[0].Clauses) != 2 {
		t.Fatalf("Conj split = %v", one)
	}

	// Pure disjunction of three leaves -> three single-clause predicates.
	three := SplitDNF(1, "emp", Or{Exprs: []Expr{
		Leaf{EqClause("age", value.Int(1))},
		Leaf{EqClause("age", value.Int(2))},
		Leaf{EqClause("age", value.Int(3))},
	}})
	if len(three) != 3 {
		t.Fatalf("Or split = %d predicates", len(three))
	}

	// DNF equivalence: for sample tuples, the original expression's truth
	// equals "any conjunct matches".
	cat := testCatalog()
	reg := NewRegistry()
	for _, age := range []int64{1, 2, 5} {
		for _, sal := range []int64{3, 4, 7} {
			tp := empTuple("x", age, sal, "d")
			orig := (age == 1 || age == 2) && (sal == 3 || sal%2 != 0)
			var anyMatch bool
			for _, p := range preds {
				b, err := p.Bind(cat, reg)
				if err != nil {
					t.Fatal(err)
				}
				if b.Match(tp) {
					anyMatch = true
				}
			}
			if anyMatch != orig {
				t.Errorf("age=%d sal=%d: DNF match %v, original %v", age, sal, anyMatch, orig)
			}
		}
	}
}
