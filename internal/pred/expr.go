package pred

// This file implements the paper's disjunction handling: "We assume that
// any predicate containing a disjunction is broken up into two or more
// predicates that do not have disjunction, and these predicates are
// treated separately." Conditions are built as and/or trees of clauses
// and flattened into disjunctive normal form; each conjunct becomes one
// indexable Predicate.

// Expr is a boolean combination of clauses.
type Expr interface {
	// dnf returns the expression as a disjunction of conjunctions.
	dnf() [][]Clause
}

// Leaf wraps a single clause as an expression.
type Leaf struct{ Clause Clause }

func (l Leaf) dnf() [][]Clause { return [][]Clause{{l.Clause}} }

// And is the conjunction of subexpressions.
type And struct{ Exprs []Expr }

func (a And) dnf() [][]Clause {
	result := [][]Clause{{}}
	for _, e := range a.Exprs {
		sub := e.dnf()
		next := make([][]Clause, 0, len(result)*len(sub))
		for _, conj := range result {
			for _, s := range sub {
				merged := make([]Clause, 0, len(conj)+len(s))
				merged = append(merged, conj...)
				merged = append(merged, s...)
				next = append(next, merged)
			}
		}
		result = next
	}
	return result
}

// Or is the disjunction of subexpressions.
type Or struct{ Exprs []Expr }

func (o Or) dnf() [][]Clause {
	var result [][]Clause
	for _, e := range o.Exprs {
		result = append(result, e.dnf()...)
	}
	return result
}

// Conj builds an And of leaf clauses.
func Conj(clauses ...Clause) Expr {
	exprs := make([]Expr, len(clauses))
	for i, c := range clauses {
		exprs[i] = Leaf{c}
	}
	return And{Exprs: exprs}
}

// SplitDNF converts a condition over rel into disjunction-free
// predicates, assigning consecutive IDs starting at firstID. This is the
// preprocessing step the paper applies before predicates reach the index.
func SplitDNF(firstID ID, rel string, e Expr) []*Predicate {
	conjs := e.dnf()
	out := make([]*Predicate, len(conjs))
	for i, clauses := range conjs {
		out[i] = New(firstID+ID(i), rel, clauses...)
	}
	return out
}
