// Package pred models the paper's single-relation selection predicates.
//
// A predicate P_i is a conjunction
//
//	P ≡ (tuple t is in relation Rj) ∧ C1 ∧ C2 ∧ ... ∧ Cq
//
// where each clause C is either an interval restriction on one attribute
// (const1 ρ1 t.attr ρ2 const2 with ρ ∈ {<, ≤}, equality being the
// degenerate point interval, and ±inf giving open-ended ranges) or an
// opaque boolean function of one attribute ("function(t.attribute)" —
// nothing is assumed about it except that it returns true or false).
// Predicates containing disjunctions are split into disjunction-free
// predicates before indexing (see Or and SplitDNF).
package pred

import (
	"fmt"
	"strings"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// ID identifies a predicate. Predicate IDs double as interval IDs in the
// IBS-trees of the matching scheme.
type ID = markset.ID

// Kind classifies a clause.
type Kind uint8

const (
	// KindInterval is an indexable restriction "t.attr within interval".
	KindInterval Kind = iota
	// KindFunc is a non-indexable opaque boolean function of an attribute.
	KindFunc
)

// Clause is one conjunct of a predicate.
type Clause struct {
	Attr string
	Kind Kind
	// Iv is the allowed interval for KindInterval clauses.
	Iv interval.Interval[value.Value]
	// Func names a registered boolean function for KindFunc clauses.
	Func string
}

// IvClause builds an interval clause on attr.
func IvClause(attr string, iv interval.Interval[value.Value]) Clause {
	return Clause{Attr: attr, Kind: KindInterval, Iv: iv}
}

// EqClause builds an equality clause, the point-interval special case.
func EqClause(attr string, v value.Value) Clause {
	return Clause{Attr: attr, Kind: KindInterval, Iv: interval.Point(v)}
}

// FnClause builds a function clause.
func FnClause(attr, fn string) Clause {
	return Clause{Attr: attr, Kind: KindFunc, Func: fn}
}

// Indexable reports whether the clause can be placed in a
// one-dimensional interval index.
func (c Clause) Indexable() bool { return c.Kind == KindInterval }

// String renders the clause with attr as qualified name.
func (c Clause) String() string {
	if c.Kind == KindFunc {
		return fmt.Sprintf("%s(%s)", c.Func, c.Attr)
	}
	if c.Iv.IsPoint(value.Compare) {
		return fmt.Sprintf("%s = %s", c.Attr, c.Iv.Lo.Value)
	}
	return fmt.Sprintf("%s in %s", c.Attr, c.Iv)
}

// Predicate is a disjunction-free single-relation selection condition.
type Predicate struct {
	ID      ID
	Rel     string
	Clauses []Clause
}

// New builds a predicate.
func New(id ID, rel string, clauses ...Clause) *Predicate {
	return &Predicate{ID: id, Rel: rel, Clauses: clauses}
}

// String renders the predicate.
func (p *Predicate) String() string {
	if len(p.Clauses) == 0 {
		return fmt.Sprintf("P%d: %s(*)", p.ID, p.Rel)
	}
	parts := make([]string, len(p.Clauses))
	for i, c := range p.Clauses {
		parts[i] = c.String()
	}
	return fmt.Sprintf("P%d: %s where %s", p.ID, p.Rel, strings.Join(parts, " and "))
}

// Validate checks the predicate against a schema catalog and function
// registry: the relation and every attribute must exist, interval bounds
// must match the attribute type, and functions must be registered.
func (p *Predicate) Validate(cat *schema.Catalog, reg *Registry) error {
	rel, ok := cat.Get(p.Rel)
	if !ok {
		return fmt.Errorf("pred: unknown relation %s", p.Rel)
	}
	for _, c := range p.Clauses {
		kind, ok := rel.AttrType(c.Attr)
		if !ok {
			return fmt.Errorf("pred: relation %s has no attribute %s", p.Rel, c.Attr)
		}
		switch c.Kind {
		case KindInterval:
			if err := c.Iv.Validate(value.Compare); err != nil {
				return fmt.Errorf("pred: clause on %s.%s: %w", p.Rel, c.Attr, err)
			}
			if c.Iv.Lo.Kind == interval.Finite && c.Iv.Lo.Value.Kind() != kind {
				return fmt.Errorf("pred: clause on %s.%s compares %s attribute with %s bound",
					p.Rel, c.Attr, kind, c.Iv.Lo.Value.Kind())
			}
			if c.Iv.Hi.Kind == interval.Finite && c.Iv.Hi.Value.Kind() != kind {
				return fmt.Errorf("pred: clause on %s.%s compares %s attribute with %s bound",
					p.Rel, c.Attr, kind, c.Iv.Hi.Value.Kind())
			}
		case KindFunc:
			if _, ok := reg.Get(c.Func); !ok {
				return fmt.Errorf("pred: unknown function %s in clause on %s.%s", c.Func, p.Rel, c.Attr)
			}
		default:
			return fmt.Errorf("pred: unknown clause kind %d", c.Kind)
		}
	}
	return nil
}

// Bound is a predicate resolved against a relation schema and a function
// registry: attribute positions and function pointers are looked up once
// so the per-tuple test is allocation-free. This is the form stored in
// the matching schemes' PREDICATES table.
type Bound struct {
	Pred *Predicate
	idx  []int
	fns  []Func
}

// Bind resolves the predicate. It fails on the same conditions as
// Validate.
func (p *Predicate) Bind(cat *schema.Catalog, reg *Registry) (*Bound, error) {
	if err := p.Validate(cat, reg); err != nil {
		return nil, err
	}
	rel, _ := cat.Get(p.Rel)
	b := &Bound{
		Pred: p,
		idx:  make([]int, len(p.Clauses)),
		fns:  make([]Func, len(p.Clauses)),
	}
	for i, c := range p.Clauses {
		b.idx[i], _ = rel.AttrIndex(c.Attr)
		if c.Kind == KindFunc {
			b.fns[i], _ = reg.Get(c.Func)
		}
	}
	return b, nil
}

// Match tests the full conjunction against a tuple (the paper's final
// test against the PREDICATES table after a partial index match).
func (b *Bound) Match(t tuple.Tuple) bool {
	for i, c := range b.Pred.Clauses {
		v := t[b.idx[i]]
		switch c.Kind {
		case KindInterval:
			if !c.Iv.Contains(value.Compare, v) {
				return false
			}
		case KindFunc:
			if !b.fns[i](v) {
				return false
			}
		}
	}
	return true
}

// MatchSkipping tests all clauses except the one at position skip, used
// when that clause was already verified by an index probe.
func (b *Bound) MatchSkipping(t tuple.Tuple, skip int) bool {
	for i, c := range b.Pred.Clauses {
		if i == skip {
			continue
		}
		v := t[b.idx[i]]
		switch c.Kind {
		case KindInterval:
			if !c.Iv.Contains(value.Compare, v) {
				return false
			}
		case KindFunc:
			if !b.fns[i](v) {
				return false
			}
		}
	}
	return true
}
