package pred

import (
	"fmt"
	"strings"

	"predmatch/internal/value"
)

// Func is an opaque boolean predicate function over one attribute value
// — the paper's "function(t.attribute)" clause, about which nothing is
// assumed except that it returns true or false (and is therefore never
// indexable).
type Func func(value.Value) bool

// Registry maps function names to implementations. A Registry is shared
// between parsing, validation and evaluation.
type Registry struct {
	m map[string]Func
}

// NewRegistry returns a registry pre-loaded with the built-in functions
// (the paper's example IsOdd among them):
//
//	isodd, iseven   — integer parity
//	ispositive, isnegative, iszero — sign tests for int/float
//	isempty         — empty string
//	isupper, islower — string case (ASCII)
func NewRegistry() *Registry {
	r := &Registry{m: make(map[string]Func)}
	r.MustRegister("isodd", func(v value.Value) bool {
		return v.Kind() == value.KindInt && v.AsInt()%2 != 0
	})
	r.MustRegister("iseven", func(v value.Value) bool {
		return v.Kind() == value.KindInt && v.AsInt()%2 == 0
	})
	r.MustRegister("ispositive", func(v value.Value) bool {
		f, ok := v.Numeric()
		return ok && f > 0
	})
	r.MustRegister("isnegative", func(v value.Value) bool {
		f, ok := v.Numeric()
		return ok && f < 0
	})
	r.MustRegister("iszero", func(v value.Value) bool {
		f, ok := v.Numeric()
		return ok && f == 0
	})
	r.MustRegister("isempty", func(v value.Value) bool {
		return v.Kind() == value.KindString && v.AsString() == ""
	})
	r.MustRegister("isupper", func(v value.Value) bool {
		if v.Kind() != value.KindString {
			return false
		}
		s := v.AsString()
		return s != "" && s == strings.ToUpper(s)
	})
	r.MustRegister("islower", func(v value.Value) bool {
		if v.Kind() != value.KindString {
			return false
		}
		s := v.AsString()
		return s != "" && s == strings.ToLower(s)
	})
	return r
}

// Register adds a function under a (case-insensitive) name.
func (r *Registry) Register(name string, fn Func) error {
	key := strings.ToLower(name)
	if key == "" {
		return fmt.Errorf("pred: function name must not be empty")
	}
	if _, dup := r.m[key]; dup {
		return fmt.Errorf("pred: function %s already registered", key)
	}
	r.m[key] = fn
	return nil
}

// MustRegister is Register panicking on error.
func (r *Registry) MustRegister(name string, fn Func) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Get looks a function up by case-insensitive name.
func (r *Registry) Get(name string) (Func, bool) {
	fn, ok := r.m[strings.ToLower(name)]
	return fn, ok
}
