package islist

import (
	"fmt"
	"strings"

	"predmatch/internal/interval"
)

// CheckInvariants exhaustively verifies the list; exported for tests.
//
//  1. Level-0 order is strictly ascending and higher levels are
//     sublists of level 0.
//  2. Marker soundness: a marker on the level-l edge leaving n implies
//     the interval covers the edge's open span; an eqMarker implies the
//     interval contains the node's value.
//  3. Registry consistency: each interval's recorded marker locations
//     are exactly the markers present, and the global count matches.
//  4. Endpoint references: lo/hi sets name exactly the intervals with
//     that finite endpoint, and every finite endpoint has a node.
//  5. Completeness/exactness: for every node value, a stab returns
//     exactly the containing intervals; for every level-0 gap, a
//     simulated stab strictly inside the gap returns exactly the
//     intervals covering the whole gap. (Endpoints are node values, so
//     an interval covers a gap entirely or not at all.)
func (l *List[T]) CheckInvariants() error {
	var errs []string
	fail := func(format string, args ...any) {
		if len(errs) < 20 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
	}

	// (1) structure.
	count := 0
	for n := l.head.forward[0]; n != nil; n = n.forward[0] {
		count++
		if n.forward[0] != nil && l.cmp(n.value, n.forward[0].value) >= 0 {
			fail("level-0 order violated at %v", n.value)
		}
	}
	if count != l.nodes {
		fail("node count %d, counted %d", l.nodes, count)
	}
	for lv := 1; lv < l.level; lv++ {
		// Every node at level lv must appear at level lv-1 in order.
		prev := l.head
		for n := l.head.forward[lv]; n != nil; n = n.forward[lv] {
			if len(n.forward) <= lv {
				fail("node %v linked at level %d above its height", n.value, lv)
				break
			}
			// n must be reachable from prev at level lv-1.
			m := prev.forward[lv-1]
			for m != nil && m != n {
				m = m.forward[lv-1]
			}
			if m != n {
				fail("node %v at level %d not on level %d", n.value, lv, lv-1)
			}
			prev = n
		}
	}

	// (2)+(3) soundness and registry.
	type loc struct {
		n     *node[T]
		level int
	}
	seen := make(map[ID][]loc)
	total := 0
	visit := func(n *node[T]) {
		for lv := 0; lv < len(n.markers); lv++ {
			lo, hi := headBound(n), tailBound(n.forward[lv])
			n.markers[lv].Each(func(id ID) bool {
				rec, ok := l.recs[id]
				if !ok {
					fail("edge marker for unknown id %d", id)
				} else if !rec.iv.CoversOpenRange(l.cmp, lo, hi) {
					fail("unsound edge marker: id %d %v does not cover (%v, %v)", id, rec.iv, lo, hi)
				}
				seen[id] = append(seen[id], loc{n, lv})
				total++
				return true
			})
		}
		n.eq.Each(func(id ID) bool {
			rec, ok := l.recs[id]
			if !ok {
				fail("eq marker for unknown id %d", id)
			} else if n.isHeader {
				fail("eq marker on header for id %d", id)
			} else if !rec.iv.Contains(l.cmp, n.value) {
				fail("unsound eq marker: id %d %v does not contain %v", id, rec.iv, n.value)
			}
			seen[id] = append(seen[id], loc{n, -1})
			total++
			return true
		})
	}
	visit(l.head)
	for n := l.head.forward[0]; n != nil; n = n.forward[0] {
		visit(n)
	}
	if total != l.marks {
		fail("marker count mismatch: present %d, accounted %d", total, l.marks)
	}
	for id, rec := range l.recs {
		if len(seen[id]) != len(rec.marks) {
			fail("registry mismatch for id %d: present %d, registry %d", id, len(seen[id]), len(rec.marks))
		}
	}
	for id := range seen {
		if _, ok := l.recs[id]; !ok {
			fail("markers remain for deleted id %d", id)
		}
	}

	// (4) endpoint references.
	for n := l.head.forward[0]; n != nil; n = n.forward[0] {
		n.lo.Each(func(id ID) bool {
			rec, ok := l.recs[id]
			if !ok || rec.iv.Lo.Kind != interval.Finite || l.cmp(rec.iv.Lo.Value, n.value) != 0 {
				fail("bogus lo endpoint ref %d at %v", id, n.value)
			}
			return true
		})
		n.hi.Each(func(id ID) bool {
			rec, ok := l.recs[id]
			if !ok || rec.iv.Hi.Kind != interval.Finite || l.cmp(rec.iv.Hi.Value, n.value) != 0 {
				fail("bogus hi endpoint ref %d at %v", id, n.value)
			}
			return true
		})
	}
	for id, rec := range l.recs {
		if rec.iv.Lo.Kind == interval.Finite {
			if n := l.findNode(rec.iv.Lo.Value); n == nil || !n.lo.Has(id) {
				fail("lower endpoint %v of id %d unreferenced", rec.iv.Lo.Value, id)
			}
		}
		if rec.iv.Hi.Kind == interval.Finite {
			if n := l.findNode(rec.iv.Hi.Value); n == nil || !n.hi.Has(id) {
				fail("upper endpoint %v of id %d unreferenced", rec.iv.Hi.Value, id)
			}
		}
	}

	// (5) completeness via node-value stabs and gap stabs.
	for n := l.head.forward[0]; n != nil; n = n.forward[0] {
		got := map[ID]bool{}
		for _, id := range l.Stab(n.value) {
			got[id] = true
		}
		for id, rec := range l.recs {
			want := rec.iv.Contains(l.cmp, n.value)
			if want && !got[id] {
				fail("incomplete: id %d missing from stab at %v", id, n.value)
			}
			if !want && got[id] {
				fail("unsound: id %d wrongly in stab at %v", id, n.value)
			}
		}
	}
	// Gap stabs: simulate a query strictly inside each level-0 gap
	// (including the unbounded outer gaps).
	prev := l.head
	for {
		next := prev.forward[0]
		got := map[ID]bool{}
		for id := range l.universal {
			got[id] = true
		}
		l.stabGap(prev, next, got)
		lo, hi := headBound(prev), tailBound(next)
		for id, rec := range l.recs {
			if l.universal[id] {
				continue
			}
			want := rec.iv.CoversOpenRange(l.cmp, lo, hi)
			if want && !got[id] {
				fail("incomplete: id %d missing from gap (%v, %v)", id, lo, hi)
			}
			if !want && got[id] {
				fail("unsound: id %d wrongly in gap (%v, %v)", id, lo, hi)
			}
		}
		if next == nil {
			break
		}
		prev = next
	}

	if len(errs) > 0 {
		return fmt.Errorf("islist invariants violated:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// stabGap runs the stab descent for a virtual query point lying strictly
// between nodes a (possibly the header) and b (possibly nil), collecting
// into got. Comparisons: every node with value <= a.value is "less", and
// every node with value >= b.value is "greater"; no node value equals the
// virtual point.
func (l *List[T]) stabGap(a, b *node[T], got map[ID]bool) {
	less := func(n *node[T]) bool {
		if a.isHeader {
			return false // nothing is below a point in the leftmost gap
		}
		return l.cmp(n.value, a.value) <= 0
	}
	n := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for n.forward[lv] != nil && less(n.forward[lv]) {
			n = n.forward[lv]
		}
		// forward is nil or >= b: the edge spans the virtual point.
		n.markers[lv].Each(func(id ID) bool {
			got[id] = true
			return true
		})
	}
	_ = b
}
