package islist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
)

type adapter struct{ *List[int64] }

func (adapter) Name() string { return "islist" }

func TestConformance(t *testing.T) {
	ivindex.Run(t, func() ivindex.Index {
		return adapter{New(ivindex.Int64Cmp)}
	}, true)
}

func TestInvariantsUnderChurn(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := New(ivindex.Int64Cmp, Seed(seed+100))
		var live []ID
		next := ID(0)
		for op := 0; op < 400; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				iv := ivindex.RandomInterval(rng, 60, true)
				if err := l.Insert(next, iv); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
				live = append(live, next)
				next++
			} else {
				i := rng.Intn(len(live))
				if err := l.Delete(live[i]); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
				live = append(live[:i], live[i+1:]...)
			}
			if op%20 == 0 {
				if err := l.CheckInvariants(); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("seed %d final: %v", seed, err)
		}
		for _, id := range live {
			if err := l.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
		if l.Len() != 0 || l.NodeCount() != 0 || l.MarkerCount() != 0 {
			t.Fatalf("seed %d: not empty after drain: %d/%d/%d",
				seed, l.Len(), l.NodeCount(), l.MarkerCount())
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPaperFigure2Intervals(t *testing.T) {
	l := New(ivindex.Int64Cmp)
	ivs := map[ID]interval.Interval[int64]{
		1: interval.Closed[int64](9, 19),
		2: interval.Closed[int64](2, 7),
		3: interval.ClosedOpen[int64](1, 3),
		4: interval.OpenClosed[int64](17, 20),
		5: interval.Closed[int64](7, 12),
		6: interval.Point[int64](18),
		7: interval.AtMost[int64](17),
	}
	for id := ID(1); id <= 7; id++ {
		if err := l.Insert(id, ivs[id]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for x := int64(-5); x <= 25; x++ {
		got := l.Stab(x)
		var want []ID
		for id, iv := range ivs {
			if iv.Contains(ivindex.Int64Cmp, x) {
				want = append(want, id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Stab(%d) = %v, want %v", x, got, want)
		}
	}
}

// TestExpectedLogarithmicMarkers checks the space behavior matches the
// structure's design: markers per interval grow logarithmically with N
// (the absolute constant is ~(2/p)·log_{1/p}N edge markers plus as many
// eqMarkers; what must not happen is linear growth).
func TestExpectedLogarithmicMarkers(t *testing.T) {
	perInterval := func(n int) float64 {
		rng := rand.New(rand.NewSource(3))
		l := New(ivindex.Int64Cmp)
		for i := 0; i < n; i++ {
			iv := ivindex.RandomInterval(rng, 1_000_000, false)
			if err := l.Insert(ID(i), iv); err != nil {
				t.Fatal(err)
			}
		}
		if l.Levels() < 2 {
			t.Errorf("levels = %d for %d nodes", l.Levels(), l.NodeCount())
		}
		return float64(l.MarkerCount()) / float64(n)
	}
	small, large := perInterval(200), perInterval(3200)
	// A 16x size increase must grow per-interval markers by roughly
	// log(3200)/log(200) ~ 1.5; linear growth would be 16x.
	if ratio := large / small; ratio > 3 {
		t.Errorf("markers/interval grew %.1fx for 16x data (%.1f -> %.1f); expected logarithmic", ratio, small, large)
	}
}

func TestMarkSetOptionAndSeed(t *testing.T) {
	a := New(ivindex.Int64Cmp, MarkSets(markset.NewAVL), Seed(42))
	b := New(ivindex.Int64Cmp, MarkSets(markset.NewAVL), Seed(42))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		iv := ivindex.RandomInterval(rng, 100, true)
		if err := a.Insert(ID(i), iv); err != nil {
			t.Fatal(err)
		}
		if err := b.Insert(ID(i), iv); err != nil {
			t.Fatal(err)
		}
	}
	// Same seed, same inserts: identical structure statistics.
	if a.NodeCount() != b.NodeCount() || a.MarkerCount() != b.MarkerCount() || a.Levels() != b.Levels() {
		t.Fatalf("same-seed lists differ: %d/%d/%d vs %d/%d/%d",
			a.NodeCount(), a.MarkerCount(), a.Levels(),
			b.NodeCount(), b.MarkerCount(), b.Levels())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGet(t *testing.T) {
	l := New(ivindex.Int64Cmp)
	want := interval.Closed[int64](3, 9)
	if err := l.Insert(5, want); err != nil {
		t.Fatal(err)
	}
	got, ok := l.Get(5)
	if !ok || got != want {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := l.Get(6); ok {
		t.Fatal("Get found missing id")
	}
}

func TestManySharedEndpoints(t *testing.T) {
	l := New(ivindex.Int64Cmp)
	// 50 intervals all starting at 10, nested ends.
	for i := int64(0); i < 50; i++ {
		if err := l.Insert(ID(i), interval.Closed[int64](10, 11+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := l.Stab(10)
	if len(got) != 50 {
		t.Fatalf("Stab(10) = %d ids, want 50", len(got))
	}
	got = l.Stab(40)
	if len(got) != 21 { // ends 40..60 -> i >= 29
		t.Fatalf("Stab(40) = %d ids, want 21", len(got))
	}
	for i := int64(0); i < 50; i += 2 {
		if err := l.Delete(ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStabEmptyAndSingle(t *testing.T) {
	l := New(ivindex.Int64Cmp)
	if got := l.Stab(5); len(got) != 0 {
		t.Fatalf("empty Stab = %v", got)
	}
	if err := l.Insert(1, interval.All[int64]()); err != nil {
		t.Fatal(err)
	}
	if got := l.Stab(5); !reflect.DeepEqual(got, []ID{1}) {
		t.Fatalf("Stab = %v", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := l.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := l.Stab(5); len(got) != 0 {
		t.Fatalf("Stab after delete = %v", got)
	}
}

// TestDeterministicStress exercises larger volumes for marker-copy paths
// (node inserts splitting heavily marked edges).
func TestDeterministicStress(t *testing.T) {
	l := New(ivindex.Int64Cmp)
	rng := rand.New(rand.NewSource(9))
	ref := map[ID]interval.Interval[int64]{}
	for i := 0; i < 800; i++ {
		iv := ivindex.RandomInterval(rng, 200, true) // dense: many shared endpoints
		if err := l.Insert(ID(i), iv); err != nil {
			t.Fatal(err)
		}
		ref[ID(i)] = iv
	}
	for x := int64(-2); x <= 202; x++ {
		got := l.Stab(x)
		var want []ID
		for id, iv := range ref {
			if iv.Contains(ivindex.Int64Cmp, x) {
				want = append(want, id)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Stab(%d): got %d ids, want %d", x, len(got), len(want))
		}
	}
}

func TestErrorCases(t *testing.T) {
	l := New(ivindex.Int64Cmp)
	if err := l.Insert(1, interval.Closed[int64](5, 1)); err == nil {
		t.Error("inverted interval accepted")
	}
	if err := l.Insert(1, interval.Point[int64](1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Insert(1, interval.Point[int64](2)); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := l.Delete(9); err == nil {
		t.Error("unknown delete accepted")
	}
}

// TestCheckInvariantsDetectsCorruption corrupts lists in targeted ways
// and requires the checker to object.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *List[int64] {
		l := New(ivindex.Int64Cmp)
		if err := l.Insert(1, interval.Closed[int64](5, 15)); err != nil {
			t.Fatal(err)
		}
		if err := l.Insert(2, interval.Point[int64](10)); err != nil {
			t.Fatal(err)
		}
		if err := l.Insert(3, interval.AtLeast[int64](12)); err != nil {
			t.Fatal(err)
		}
		return l
	}
	if err := build().CheckInvariants(); err != nil {
		t.Fatalf("clean list flagged: %v", err)
	}
	// Foreign edge marker.
	l := build()
	l.head.forward[0].markers[0].Add(99)
	if err := l.CheckInvariants(); err == nil {
		t.Error("foreign edge marker not detected")
	}
	// Foreign eq marker.
	l = build()
	l.head.forward[0].eq.Add(99)
	if err := l.CheckInvariants(); err == nil {
		t.Error("foreign eq marker not detected")
	}
	// Bogus endpoint reference.
	l = build()
	l.head.forward[0].lo.Add(77)
	if err := l.CheckInvariants(); err == nil {
		t.Error("bogus endpoint ref not detected")
	}
	// Marker count drift.
	l = build()
	l.marks += 3
	if err := l.CheckInvariants(); err == nil {
		t.Error("marker count drift not detected")
	}
	// Dropped marker (incompleteness).
	l = build()
	dropped := false
	for n := l.head; n != nil && !dropped; n = n.forward[0] {
		for lv := range n.markers {
			if n.markers[lv].Len() > 0 {
				n.markers[lv].Remove(n.markers[lv].IDs()[0])
				dropped = true
				break
			}
		}
	}
	if !dropped {
		t.Fatal("no marker to drop")
	}
	if err := l.CheckInvariants(); err == nil {
		t.Error("dropped marker not detected")
	}
	// Node count drift.
	l = build()
	l.nodes++
	if err := l.CheckInvariants(); err == nil {
		t.Error("node count drift not detected")
	}
}
