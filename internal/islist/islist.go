// Package islist implements an interval skip list — the dynamic
// stabbing-query structure Hanson developed as the successor to this
// paper's IBS-tree (Hanson, "The Interval Skip List", TR-91-016, and
// Hanson & Johnson 1992; the paper's Section 6 invites exactly this kind
// of comparison of "several different techniques for dynamically
// indexing intervals").
//
// The idea transfers the IBS-tree's marker scheme onto a skip list:
// interval endpoints are skip-list nodes; each forward edge carries a
// set of markers; a marker for interval I on the level-l edge (A, B)
// asserts that the open span (A.value, B.value) lies within I; each node
// additionally carries eqMarkers — intervals containing the node's value
// that have a marker on an adjacent edge. Inserting an interval walks
// from its left endpoint to its right endpoint taking the highest edge
// that stays inside the interval, placing O(log N) markers in
// expectation. A stabbing query follows the ordinary skip-list descent,
// collecting the markers of every edge it descends from whose span
// strictly contains the query point, plus the eqMarkers of an exactly
// hit node: O(log N + L) expected.
//
// As in this repository's IBS-tree, a per-interval registry of marker
// locations makes deletion exact: structural changes (splitting edges on
// node insertion, merging them on removal) unmark and re-place only the
// affected intervals. The same conformance harness and invariant
// checker discipline applies.
package islist

import (
	"fmt"
	"math/rand"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// ID identifies an interval.
type ID = markset.ID

const (
	maxLevel = 32
	// pLevel is the level promotion probability (1/4, Pugh's choice).
	pLevel = 0.25
)

// node is one skip-list node. Level l's forward pointer and marker set
// describe the edge leaving this node at that level. The header node has
// no value (isHeader).
type node[T any] struct {
	value    T
	isHeader bool
	forward  []*node[T]
	markers  []markset.Set
	eq       markset.Set
	// lo and hi hold the ids of intervals having this value as their
	// finite lower/upper endpoint (endpoint reference counts).
	lo, hi markset.Set
}

// markLoc records one marker placement for the registry. level == -1
// denotes an eqMarker on the node.
type markLoc[T any] struct {
	n     *node[T]
	level int
}

type record[T any] struct {
	iv    interval.Interval[T]
	marks []markLoc[T]
}

// List is an interval skip list over domain T. Not safe for concurrent
// use.
type List[T any] struct {
	cmp       interval.Cmp[T]
	newSet    markset.Factory
	rng       *rand.Rand
	head      *node[T]
	level     int // current number of levels in use
	nodes     int
	marks     int
	recs      map[ID]*record[T]
	universal map[ID]bool
}

// Option configures a List.
type Option func(*config)

type config struct {
	newSet markset.Factory
	seed   int64
}

// MarkSets selects the marker-set representation.
func MarkSets(f markset.Factory) Option { return func(c *config) { c.newSet = f } }

// Seed fixes the level-generator seed (default 1).
func Seed(s int64) Option { return func(c *config) { c.seed = s } }

// New returns an empty interval skip list ordered by cmp.
func New[T any](cmp interval.Cmp[T], opts ...Option) *List[T] {
	c := config{newSet: markset.NewSlice, seed: 1}
	for _, o := range opts {
		o(&c)
	}
	l := &List[T]{
		cmp:       cmp,
		newSet:    c.newSet,
		rng:       rand.New(rand.NewSource(c.seed)),
		level:     1,
		recs:      make(map[ID]*record[T]),
		universal: make(map[ID]bool),
	}
	l.head = l.newNode(maxLevel)
	l.head.isHeader = true
	return l
}

func (l *List[T]) newNode(levels int) *node[T] {
	n := &node[T]{
		forward: make([]*node[T], levels),
		markers: make([]markset.Set, levels),
		eq:      l.newSet(),
		lo:      l.newSet(),
		hi:      l.newSet(),
	}
	for i := range n.markers {
		n.markers[i] = l.newSet()
	}
	return n
}

// Len returns the number of stored intervals.
func (l *List[T]) Len() int { return len(l.recs) }

// NodeCount returns the number of endpoint nodes.
func (l *List[T]) NodeCount() int { return l.nodes }

// MarkerCount returns the number of placed markers (edge + eq).
func (l *List[T]) MarkerCount() int { return l.marks }

// Levels returns the number of levels currently in use.
func (l *List[T]) Levels() int { return l.level }

// Get returns the interval stored under id.
func (l *List[T]) Get(id ID) (interval.Interval[T], bool) {
	rec, ok := l.recs[id]
	if !ok {
		return interval.Interval[T]{}, false
	}
	return rec.iv, true
}

func (l *List[T]) randomLevels() int {
	h := 1
	for h < maxLevel && l.rng.Float64() < pLevel {
		h++
	}
	return h
}

// mark places id on the level-l edge leaving n (or as an eqMarker when
// level == -1), recording the location.
func (l *List[T]) mark(rec *record[T], id ID, n *node[T], level int) {
	var set markset.Set
	if level < 0 {
		set = n.eq
	} else {
		set = n.markers[level]
	}
	if !set.Add(id) {
		return
	}
	rec.marks = append(rec.marks, markLoc[T]{n: n, level: level})
	l.marks++
}

func (l *List[T]) unmarkAll(id ID, rec *record[T]) {
	for _, loc := range rec.marks {
		if loc.level < 0 {
			loc.n.eq.Remove(id)
		} else {
			loc.n.markers[loc.level].Remove(id)
		}
	}
	l.marks -= len(rec.marks)
	rec.marks = rec.marks[:0]
}

// spanBound converts a node boundary to an interval bound for
// CoversOpenRange (header -> -inf, nil forward -> +inf).
func headBound[T any](n *node[T]) interval.Bound[T] {
	if n.isHeader {
		return interval.Bound[T]{Kind: interval.NegInf}
	}
	return interval.Bound[T]{Kind: interval.Finite, Value: n.value}
}

func tailBound[T any](n *node[T]) interval.Bound[T] {
	if n == nil {
		return interval.Bound[T]{Kind: interval.PosInf}
	}
	return interval.Bound[T]{Kind: interval.Finite, Value: n.value}
}

// edgeWithin reports whether the open span of n's level-lv edge lies
// inside iv.
func (l *List[T]) edgeWithin(n *node[T], lv int, iv interval.Interval[T]) bool {
	return iv.CoversOpenRange(l.cmp, headBound(n), tailBound(n.forward[lv]))
}

// search fills update[lv] with the last node at level lv whose value is
// strictly less than v (the standard skip-list predecessor vector).
func (l *List[T]) search(v T, update []*node[T]) *node[T] {
	n := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for n.forward[lv] != nil && l.cmp(n.forward[lv].value, v) < 0 {
			n = n.forward[lv]
		}
		update[lv] = n
	}
	return n.forward[0]
}

// insertValue ensures a node for v exists, splitting edges and copying
// their markers so query completeness is preserved, and returns it.
func (l *List[T]) insertValue(v T) *node[T] {
	var update [maxLevel]*node[T]
	for i := range update {
		update[i] = l.head
	}
	found := l.search(v, update[:])
	if found != nil && l.cmp(found.value, v) == 0 {
		return found
	}
	levels := l.randomLevels()
	if levels > l.level {
		l.level = levels
	}
	x := l.newNode(levels)
	x.value = v
	l.nodes++
	for lv := 0; lv < levels; lv++ {
		pred := update[lv]
		x.forward[lv] = pred.forward[lv]
		pred.forward[lv] = x
		// The old edge (pred -> x.forward[lv]) split in two: its markers
		// remain sound on both halves, but the new right half (x -> next)
		// starts empty, which would lose completeness for queries beyond
		// x. Copy the markers across and add them to x's eqMarkers (their
		// spans strictly contained x's value).
		pred.markers[lv].Each(func(id ID) bool {
			rec := l.recs[id]
			l.mark(rec, id, x, lv)
			l.mark(rec, id, x, -1)
			return true
		})
	}
	return x
}

// Insert adds iv under id.
func (l *List[T]) Insert(id ID, iv interval.Interval[T]) error {
	if err := iv.Validate(l.cmp); err != nil {
		return err
	}
	if _, dup := l.recs[id]; dup {
		return fmt.Errorf("islist: duplicate interval id %d", id)
	}
	rec := &record[T]{iv: iv}
	l.recs[id] = rec
	if iv.Lo.Kind == interval.NegInf && iv.Hi.Kind == interval.PosInf {
		l.universal[id] = true
		return nil
	}
	if iv.Lo.Kind == interval.Finite {
		l.insertValue(iv.Lo.Value).lo.Add(id)
	}
	if iv.Hi.Kind == interval.Finite {
		l.insertValue(iv.Hi.Value).hi.Add(id)
	}
	l.placeMarks(id, rec)
	return nil
}

// placeMarks walks from the interval's left boundary to its right
// boundary, always taking the highest edge that stays inside the
// interval.
func (l *List[T]) placeMarks(id ID, rec *record[T]) {
	iv := rec.iv
	// Starting node: the lower endpoint's node, or the header for an
	// unbounded lower end.
	var x *node[T]
	if iv.Lo.Kind == interval.Finite {
		var update [maxLevel]*node[T]
		for i := range update {
			update[i] = l.head
		}
		x = l.search(iv.Lo.Value, update[:])
	} else {
		x = l.head
	}
	for x != nil {
		if !x.isHeader && iv.Contains(l.cmp, x.value) {
			l.mark(rec, id, x, -1)
		}
		// Highest edge within the interval.
		best := -1
		for lv := len(x.forward) - 1; lv >= 0; lv-- {
			if lv >= l.level {
				continue
			}
			if l.edgeWithin(x, lv, iv) {
				best = lv
				break
			}
		}
		if best < 0 {
			return
		}
		l.mark(rec, id, x, best)
		x = x.forward[best]
	}
}

// Delete removes the interval stored under id.
func (l *List[T]) Delete(id ID) error {
	rec, ok := l.recs[id]
	if !ok {
		return fmt.Errorf("islist: unknown interval id %d", id)
	}
	l.unmarkAll(id, rec)
	iv := rec.iv
	delete(l.recs, id)
	if l.universal[id] {
		delete(l.universal, id)
		return nil
	}
	if iv.Lo.Kind == interval.Finite {
		if n := l.findNode(iv.Lo.Value); n != nil {
			n.lo.Remove(id)
		}
	}
	if iv.Hi.Kind == interval.Finite {
		if n := l.findNode(iv.Hi.Value); n != nil {
			n.hi.Remove(id)
		}
	}
	if iv.Lo.Kind == interval.Finite {
		l.removeValueIfUnused(iv.Lo.Value)
	}
	if iv.Hi.Kind == interval.Finite && !iv.IsPoint(l.cmp) {
		l.removeValueIfUnused(iv.Hi.Value)
	}
	return nil
}

func (l *List[T]) findNode(v T) *node[T] {
	var update [maxLevel]*node[T]
	for i := range update {
		update[i] = l.head
	}
	n := l.search(v, update[:])
	if n != nil && l.cmp(n.value, v) == 0 {
		return n
	}
	return nil
}

// removeValueIfUnused splices out the node for v when no interval uses
// it as an endpoint. Every interval with markers on the node's adjacent
// edges (or its eqMarkers) is unmarked first and re-placed afterwards,
// since edge merges invalidate their locations.
func (l *List[T]) removeValueIfUnused(v T) {
	var update [maxLevel]*node[T]
	for i := range update {
		update[i] = l.head
	}
	x := l.search(v, update[:])
	if x == nil || l.cmp(x.value, v) != 0 {
		return
	}
	if x.lo.Len() > 0 || x.hi.Len() > 0 {
		return
	}

	affected := make(map[ID]*record[T])
	collect := func(s markset.Set) {
		s.Each(func(id ID) bool {
			if rec, ok := l.recs[id]; ok {
				affected[id] = rec
			}
			return true
		})
	}
	collect(x.eq)
	for lv := range x.markers {
		collect(x.markers[lv])          // outgoing edges
		collect(update[lv].markers[lv]) // incoming edges
	}
	for id, rec := range affected {
		l.unmarkAll(id, rec)
	}

	for lv := 0; lv < len(x.forward); lv++ {
		if update[lv].forward[lv] == x {
			update[lv].forward[lv] = x.forward[lv]
		}
	}
	l.nodes--
	for l.level > 1 && l.head.forward[l.level-1] == nil {
		l.level--
	}

	for id, rec := range affected {
		l.placeMarks(id, rec)
	}
}

// Stab returns the ids of all intervals containing x, ascending.
func (l *List[T]) Stab(x T) []ID { return l.StabAppend(x, nil) }

// StabAppend appends the ids of all intervals containing x to dst
// (sorted and duplicate-free within the appended region).
func (l *List[T]) StabAppend(x T, dst []ID) []ID {
	start := len(dst)
	for id := range l.universal {
		dst = append(dst, id)
	}
	n := l.head
	for lv := l.level - 1; lv >= 0; lv-- {
		for n.forward[lv] != nil && l.cmp(n.forward[lv].value, x) < 0 {
			n = n.forward[lv]
		}
		next := n.forward[lv]
		switch {
		case next == nil || l.cmp(next.value, x) > 0:
			// Descending from an edge whose open span contains x.
			n.markers[lv].Each(func(id ID) bool {
				dst = append(dst, id)
				return true
			})
		case lv == 0:
			// Landed exactly on x.
			next.eq.Each(func(id ID) bool {
				dst = append(dst, id)
				return true
			})
		}
	}
	return dedupe(dst, start)
}

func dedupe(dst []ID, start int) []ID {
	s := dst[start:]
	if len(s) < 2 {
		return dst
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return dst[:start+w]
}
