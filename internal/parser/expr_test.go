package parser

import (
	"strings"
	"testing"

	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func exprCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	rel := schema.MustRelation("items",
		schema.Attribute{Name: "stock", Type: value.KindInt},
		schema.Attribute{Name: "threshold", Type: value.KindInt},
		schema.Attribute{Name: "deficit", Type: value.KindInt},
		schema.Attribute{Name: "price", Type: value.KindFloat},
		schema.Attribute{Name: "label", Type: value.KindString},
	)
	if err := cat.Add(rel); err != nil {
		panic(err)
	}
	return cat
}

func parseSet(t *testing.T, body string) Action {
	t.Helper()
	cat := exprCatalog()
	ast, err := ParseRule("rule r on insert to items do set "+body, cat, pred.NewRegistry())
	if err != nil {
		t.Fatalf("set %q: %v", body, err)
	}
	return ast.Actions[0]
}

func evalSet(t *testing.T, a Action, tp tuple.Tuple) value.Value {
	t.Helper()
	cat := exprCatalog()
	rel, _ := cat.Get("items")
	v, err := a.Expr.Eval(rel, tp)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func itemT(stock, threshold, deficit int64, price float64, label string) tuple.Tuple {
	return tuple.New(value.Int(stock), value.Int(threshold), value.Int(deficit),
		value.Float(price), value.String_(label))
}

func TestSetExpressionArithmetic(t *testing.T) {
	tp := itemT(40, 25, 0, 2.5, "x")
	cases := []struct {
		body string
		want value.Value
	}{
		{"deficit = stock - threshold", value.Int(15)},
		{"deficit = stock + threshold", value.Int(65)},
		{"deficit = stock * 2", value.Int(80)},
		{"deficit = 100 - stock", value.Int(60)},
		{"deficit = 7", value.Int(7)},
		{"deficit = stock", value.Int(40)},
		{"price = price * 1.5", value.Float(3.75)},
		{"price = price + 0.5", value.Float(3.0)},
		{"label = 'fixed'", value.String_("fixed")},
	}
	for _, tc := range cases {
		a := parseSet(t, tc.body)
		got := evalSet(t, a, tp)
		if !value.Equal(got, tc.want) {
			t.Errorf("%q = %v, want %v", tc.body, got, tc.want)
		}
		if a.Expr.Kind() != tc.want.Kind() {
			t.Errorf("%q inferred kind %v, want %v", tc.body, a.Expr.Kind(), tc.want.Kind())
		}
	}
}

func TestSetExpressionNoSpaceMinus(t *testing.T) {
	// "stock -5" lexes the minus into the number; the parser must still
	// read it as subtraction.
	a := parseSet(t, "deficit = stock -5")
	got := evalSet(t, a, itemT(40, 0, 0, 0, ""))
	if got.AsInt() != 35 {
		t.Fatalf("stock -5 = %v", got)
	}
}

func TestSetExpressionErrors(t *testing.T) {
	cat := exprCatalog()
	bad := []string{
		"set deficit = label",         // kind mismatch attr
		"set deficit = 'x'",           // kind mismatch literal
		"set deficit = stock - label", // mixed kinds
		"set deficit = stock - 'x'",   // literal kind
		"set label = label + 'x'",     // arithmetic on strings
		"set deficit = nosuch",        // unknown attribute
		"set deficit =",               // missing expr
		"set deficit = stock -",       // dangling op
	}
	for _, body := range bad {
		src := "rule r on insert to items do " + body
		if _, err := ParseRule(src, cat, pred.NewRegistry()); err == nil {
			t.Errorf("%q accepted", body)
		}
	}
}

func TestSetExpressionRuleSourceRoundTrip(t *testing.T) {
	cat := exprCatalog()
	src := `rule maintain on insert, update to items
	        do set deficit = stock - threshold`
	ast, err := ParseRule(src, cat, pred.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ast.Source, "deficit = stock - threshold") {
		t.Fatal("source not preserved")
	}
	be, ok := ast.Actions[0].Expr.(BinExpr)
	if !ok || be.Op != '-' {
		t.Fatalf("expr = %#v", ast.Actions[0].Expr)
	}
}
