// Package parser implements the small rule and predicate language of the
// rule-system substrate. Conditions compile to the paper's predicate
// model: conjunctions of interval clauses (const1 ρ1 attr ρ2 const2,
// equality, open-ended comparisons), opaque function clauses, with
// disjunctions (and the derived "!=") split into disjunction-free
// predicates as the paper prescribes.
//
// Grammar (keywords case-insensitive):
//
//	rule      = "rule" name "on" events "to" relation
//	            ["when" condition] "do" actions
//	events    = event { "," event } ; event = "insert" | "update" | "delete"
//	condition = or ; or = and { "or" and } ; and = unit { "and" unit }
//	unit      = "(" or ")" | clause
//	clause    = attr cmp literal | literal cmp attr
//	          | attr "between" literal "and" literal
//	          | ident "(" attr ")"
//	cmp       = "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//	attr      = [relation "."] ident
//	actions   = action { ";" action }
//	action    = "log" string | "raise" string
//	          | "set" attr "=" literal
//	          | "insert" "into" relation "(" literal {"," literal} ")"
//	          | "delete"
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string // identifiers lowercased; strings unquoted
	pos  int
}

// lexer tokenizes rule source.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			(l.src[l.pos] == '-' || l.src[l.pos] == '+') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == quote {
				// Doubled quote is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{}, fmt.Errorf("parser: unterminated string at offset %d", start)
	default:
		// Multi-character operators first.
		for _, op := range []string{"<=", ">=", "!=", "<>", "=="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += 2
				return token{kind: tokPunct, text: op, pos: start}, nil
			}
		}
		if strings.ContainsRune("()=<>.,;*+-", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), pos: start}, nil
		}
		return token{}, fmt.Errorf("parser: unexpected character %q at offset %d", c, l.pos)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
