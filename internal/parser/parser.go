package parser

import (
	"fmt"
	"strconv"
	"strings"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/value"
)

// RuleAST is the parsed form of a rule definition, before predicate
// splitting and registration (which internal/engine performs).
type RuleAST struct {
	Name string
	Rel  string
	// Priority orders rule firing when several rules match one event:
	// higher first, ties broken by name (an Ariel feature; default 0).
	Priority  int
	Events    []storage.Op
	Condition pred.Expr // nil means "always"
	Actions   []Action
	Source    string
}

// ActionKind enumerates rule actions.
type ActionKind uint8

const (
	// ActionLog emits a message through the engine's logger.
	ActionLog ActionKind = iota
	// ActionRaise aborts the triggering mutation with an error.
	ActionRaise
	// ActionSet assigns a literal to an attribute of the triggering tuple.
	ActionSet
	// ActionInsert inserts a literal tuple into another relation.
	ActionInsert
	// ActionDelete deletes the triggering tuple.
	ActionDelete
)

// Action is one parsed rule action.
type Action struct {
	Kind    ActionKind
	Message string        // Log, Raise
	Attr    string        // Set
	Expr    ValueExpr     // Set: value to assign (may reference attributes)
	Rel     string        // Insert
	Values  []value.Value // Insert
}

// parser consumes a token stream against a catalog (needed to type
// literals against attribute kinds) and a function registry (to
// recognize function clauses).
type parser struct {
	toks    []token
	i       int
	catalog *schema.Catalog
	funcs   *pred.Registry
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) adv() token  { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// expectIdent consumes a specific keyword.
func (p *parser) expectIdent(kw string) error {
	t := p.adv()
	if t.kind != tokIdent || t.text != kw {
		return fmt.Errorf("parser: expected %q at offset %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

// expectPunct consumes a specific punctuation token.
func (p *parser) expectPunct(s string) error {
	t := p.adv()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("parser: expected %q at offset %d, got %q", s, t.pos, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.adv()
	if t.kind != tokIdent {
		return "", fmt.Errorf("parser: expected identifier at offset %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

// ParseRule parses a full rule definition.
func ParseRule(src string, catalog *schema.Catalog, funcs *pred.Registry) (*RuleAST, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, catalog: catalog, funcs: funcs}
	ast := &RuleAST{Source: strings.TrimSpace(src)}

	if err := p.expectIdent("rule"); err != nil {
		return nil, err
	}
	if ast.Name, err = p.ident(); err != nil {
		return nil, err
	}
	if p.peek().kind == tokIdent && p.peek().text == "priority" {
		p.adv()
		t := p.adv()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("parser: priority needs an integer, got %q", t.text)
		}
		prio, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("parser: bad priority %q: %w", t.text, err)
		}
		ast.Priority = prio
	}
	if err := p.expectIdent("on"); err != nil {
		return nil, err
	}
	for {
		ev, err := p.ident()
		if err != nil {
			return nil, err
		}
		switch ev {
		case "insert":
			ast.Events = append(ast.Events, storage.OpInsert)
		case "update":
			ast.Events = append(ast.Events, storage.OpUpdate)
		case "delete":
			ast.Events = append(ast.Events, storage.OpDelete)
		default:
			return nil, fmt.Errorf("parser: unknown event %q", ev)
		}
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.adv()
			continue
		}
		break
	}
	if err := p.expectIdent("to"); err != nil {
		return nil, err
	}
	if ast.Rel, err = p.ident(); err != nil {
		return nil, err
	}
	if _, ok := catalog.Get(ast.Rel); !ok {
		return nil, fmt.Errorf("parser: unknown relation %q", ast.Rel)
	}

	if p.peek().kind == tokIdent && p.peek().text == "when" {
		p.adv()
		ast.Condition, err = p.parseOr(ast.Rel)
		if err != nil {
			return nil, err
		}
	}

	if err := p.expectIdent("do"); err != nil {
		return nil, err
	}
	for {
		a, err := p.parseAction(ast.Rel)
		if err != nil {
			return nil, err
		}
		ast.Actions = append(ast.Actions, a)
		if p.peek().kind == tokPunct && p.peek().text == ";" {
			p.adv()
			if p.atEOF() {
				break
			}
			continue
		}
		break
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("parser: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return ast, nil
}

// ParseCondition parses a standalone condition over rel, as used when
// registering bare predicates (without a rule around them).
func ParseCondition(src, rel string, catalog *schema.Catalog, funcs *pred.Registry) (pred.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, catalog: catalog, funcs: funcs}
	if _, ok := catalog.Get(rel); !ok {
		return nil, fmt.Errorf("parser: unknown relation %q", rel)
	}
	e, err := p.parseOr(rel)
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("parser: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return e, nil
}

func (p *parser) parseOr(rel string) (pred.Expr, error) {
	left, err := p.parseAnd(rel)
	if err != nil {
		return nil, err
	}
	exprs := []pred.Expr{left}
	for p.peek().kind == tokIdent && p.peek().text == "or" {
		p.adv()
		e, err := p.parseAnd(rel)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}
	if len(exprs) == 1 {
		return exprs[0], nil
	}
	return pred.Or{Exprs: exprs}, nil
}

func (p *parser) parseAnd(rel string) (pred.Expr, error) {
	left, err := p.parseUnit(rel)
	if err != nil {
		return nil, err
	}
	exprs := []pred.Expr{left}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.adv()
		e, err := p.parseUnit(rel)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}
	if len(exprs) == 1 {
		return exprs[0], nil
	}
	return pred.And{Exprs: exprs}, nil
}

func (p *parser) parseUnit(rel string) (pred.Expr, error) {
	if p.peek().kind == tokPunct && p.peek().text == "(" {
		p.adv()
		e, err := p.parseOr(rel)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseClause(rel)
}

// attrRef parses [rel "."] attr and validates it against the relation.
func (p *parser) attrRef(rel string) (attr string, kind value.Kind, err error) {
	name, err := p.ident()
	if err != nil {
		return "", 0, err
	}
	if p.peek().kind == tokPunct && p.peek().text == "." {
		p.adv()
		if name != rel {
			return "", 0, fmt.Errorf("parser: attribute qualified with %q, rule relation is %q", name, rel)
		}
		if name, err = p.ident(); err != nil {
			return "", 0, err
		}
	}
	r, _ := p.catalog.Get(rel)
	kind, ok := r.AttrType(name)
	if !ok {
		return "", 0, fmt.Errorf("parser: relation %q has no attribute %q", rel, name)
	}
	return name, kind, nil
}

// literal parses a literal token and types it as kind.
func (p *parser) literal(kind value.Kind) (value.Value, error) {
	t := p.adv()
	switch t.kind {
	case tokNumber:
		switch kind {
		case value.KindFloat:
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return value.Value{}, fmt.Errorf("parser: bad float %q: %w", t.text, err)
			}
			return value.Float(f), nil
		case value.KindInt:
			i, err := strconv.ParseInt(t.text, 10, 64)
			if err != nil {
				return value.Value{}, fmt.Errorf("parser: bad integer %q: %w", t.text, err)
			}
			return value.Int(i), nil
		default:
			return value.Value{}, fmt.Errorf("parser: numeric literal %q for %s attribute", t.text, kind)
		}
	case tokString:
		if kind != value.KindString {
			return value.Value{}, fmt.Errorf("parser: string literal %q for %s attribute", t.text, kind)
		}
		return value.String_(t.text), nil
	case tokIdent:
		if t.text == "true" || t.text == "false" {
			if kind != value.KindBool {
				return value.Value{}, fmt.Errorf("parser: boolean literal for %s attribute", kind)
			}
			return value.Bool(t.text == "true"), nil
		}
	}
	return value.Value{}, fmt.Errorf("parser: expected literal at offset %d, got %q", t.pos, t.text)
}

// isLiteralStart reports whether the current token can begin a literal.
func (p *parser) isLiteralStart() bool {
	t := p.peek()
	return t.kind == tokNumber || t.kind == tokString ||
		t.kind == tokIdent && (t.text == "true" || t.text == "false")
}

// parseClause handles comparisons, between, and function calls.
func (p *parser) parseClause(rel string) (pred.Expr, error) {
	if p.isLiteralStart() {
		return p.parseReversedComparison(rel)
	}
	// Function clause: ident "(" attr ")".
	if p.peek().kind == tokIdent {
		if _, registered := p.funcs.Get(p.peek().text); registered &&
			p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
			fn := p.adv().text
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			attr, _, err := p.attrRef(rel)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return pred.Leaf{Clause: pred.FnClause(attr, fn)}, nil
		}
	}
	attr, kind, err := p.attrRef(rel)
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokIdent && p.peek().text == "between" {
		p.adv()
		lo, err := p.literal(kind)
		if err != nil {
			return nil, err
		}
		if err := p.expectIdent("and"); err != nil {
			return nil, err
		}
		hi, err := p.literal(kind)
		if err != nil {
			return nil, err
		}
		return pred.Leaf{Clause: pred.IvClause(attr, interval.Closed(lo, hi))}, nil
	}
	op := p.adv()
	if op.kind != tokPunct {
		return nil, fmt.Errorf("parser: expected comparison operator at offset %d, got %q", op.pos, op.text)
	}
	lit, err := p.literal(kind)
	if err != nil {
		return nil, err
	}
	return clauseFor(attr, op.text, lit, false)
}

// parseReversedComparison handles "literal op attr".
func (p *parser) parseReversedComparison(rel string) (pred.Expr, error) {
	// The literal's type is unknown until the attribute is seen; re-parse
	// by snapshotting the position.
	save := p.i
	p.adv() // skip literal token for now
	op := p.adv()
	if op.kind != tokPunct {
		return nil, fmt.Errorf("parser: expected comparison operator at offset %d, got %q", op.pos, op.text)
	}
	attr, kind, err := p.attrRef(rel)
	if err != nil {
		return nil, err
	}
	end := p.i
	p.i = save
	lit, err := p.literal(kind)
	if err != nil {
		return nil, err
	}
	p.i = end
	return clauseFor(attr, op.text, lit, true)
}

// clauseFor maps a comparison to predicate clauses; reversed indicates
// "literal op attr". The "!=" operator becomes the disjunction
// (attr < lit) or (attr > lit), split later by DNF.
func clauseFor(attr, op string, lit value.Value, reversed bool) (pred.Expr, error) {
	if reversed {
		// lit < attr  ==  attr > lit, etc.
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	leaf := func(iv interval.Interval[value.Value]) pred.Expr {
		return pred.Leaf{Clause: pred.IvClause(attr, iv)}
	}
	switch op {
	case "=", "==":
		return leaf(interval.Point(lit)), nil
	case "<":
		return leaf(interval.Less(lit)), nil
	case "<=":
		return leaf(interval.AtMost(lit)), nil
	case ">":
		return leaf(interval.Greater(lit)), nil
	case ">=":
		return leaf(interval.AtLeast(lit)), nil
	case "!=", "<>":
		return pred.Or{Exprs: []pred.Expr{
			leaf(interval.Less(lit)),
			leaf(interval.Greater(lit)),
		}}, nil
	default:
		return nil, fmt.Errorf("parser: unknown comparison operator %q", op)
	}
}

// parseAction parses one rule action.
func (p *parser) parseAction(rel string) (Action, error) {
	kw, err := p.ident()
	if err != nil {
		return Action{}, err
	}
	switch kw {
	case "log", "raise":
		t := p.adv()
		if t.kind != tokString {
			return Action{}, fmt.Errorf("parser: %s needs a string message, got %q", kw, t.text)
		}
		k := ActionLog
		if kw == "raise" {
			k = ActionRaise
		}
		return Action{Kind: k, Message: t.text}, nil
	case "set":
		attr, kind, err := p.attrRef(rel)
		if err != nil {
			return Action{}, err
		}
		if err := p.expectPunct("="); err != nil {
			return Action{}, err
		}
		e, err := p.parseValueExpr(rel, kind)
		if err != nil {
			return Action{}, err
		}
		return Action{Kind: ActionSet, Attr: attr, Expr: e}, nil
	case "insert":
		if err := p.expectIdent("into"); err != nil {
			return Action{}, err
		}
		target, err := p.ident()
		if err != nil {
			return Action{}, err
		}
		tr, ok := p.catalog.Get(target)
		if !ok {
			return Action{}, fmt.Errorf("parser: unknown relation %q in insert action", target)
		}
		if err := p.expectPunct("("); err != nil {
			return Action{}, err
		}
		var vals []value.Value
		for i := 0; ; i++ {
			if i >= tr.Arity() {
				return Action{}, fmt.Errorf("parser: too many values for relation %q", target)
			}
			v, err := p.literal(tr.Attrs()[i].Type)
			if err != nil {
				return Action{}, err
			}
			vals = append(vals, v)
			if p.peek().kind == tokPunct && p.peek().text == "," {
				p.adv()
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return Action{}, err
		}
		if len(vals) != tr.Arity() {
			return Action{}, fmt.Errorf("parser: %d values for relation %q (arity %d)", len(vals), target, tr.Arity())
		}
		return Action{Kind: ActionInsert, Rel: target, Values: vals}, nil
	case "delete":
		return Action{Kind: ActionDelete}, nil
	default:
		return Action{}, fmt.Errorf("parser: unknown action %q", kw)
	}
}
