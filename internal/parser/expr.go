package parser

import (
	"fmt"

	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// ValueExpr is a small arithmetic expression over the triggering tuple,
// used by set actions: a literal, an attribute reference, or a binary
// +, -, * over two terms of the same numeric kind. This is what lets a
// rule maintain a derived column ("set deficit = stock - threshold"),
// the pattern the paper's Section 3 recommends for folding per-entity
// rules into data.
type ValueExpr interface {
	// Kind returns the expression's statically inferred kind.
	Kind() value.Kind
	// Eval computes the expression against a tuple of rel.
	Eval(rel *schema.Relation, t tuple.Tuple) (value.Value, error)
}

// LitExpr is a constant.
type LitExpr struct{ V value.Value }

// Kind implements ValueExpr.
func (e LitExpr) Kind() value.Kind { return e.V.Kind() }

// Eval implements ValueExpr.
func (e LitExpr) Eval(*schema.Relation, tuple.Tuple) (value.Value, error) { return e.V, nil }

// AttrExpr reads an attribute of the triggering tuple.
type AttrExpr struct {
	Attr string
	kind value.Kind
}

// Kind implements ValueExpr.
func (e AttrExpr) Kind() value.Kind { return e.kind }

// Eval implements ValueExpr.
func (e AttrExpr) Eval(rel *schema.Relation, t tuple.Tuple) (value.Value, error) {
	pos, ok := rel.AttrIndex(e.Attr)
	if !ok {
		return value.Value{}, fmt.Errorf("parser: relation %s lost attribute %s", rel.Name(), e.Attr)
	}
	return t[pos], nil
}

// BinExpr combines two numeric terms.
type BinExpr struct {
	L, R ValueExpr
	Op   byte // '+', '-' or '*'
}

// Kind implements ValueExpr.
func (e BinExpr) Kind() value.Kind { return e.L.Kind() }

// Eval implements ValueExpr.
func (e BinExpr) Eval(rel *schema.Relation, t tuple.Tuple) (value.Value, error) {
	l, err := e.L.Eval(rel, t)
	if err != nil {
		return value.Value{}, err
	}
	r, err := e.R.Eval(rel, t)
	if err != nil {
		return value.Value{}, err
	}
	switch l.Kind() {
	case value.KindInt:
		a, b := l.AsInt(), r.AsInt()
		switch e.Op {
		case '+':
			return value.Int(a + b), nil
		case '-':
			return value.Int(a - b), nil
		case '*':
			return value.Int(a * b), nil
		}
	case value.KindFloat:
		a, b := l.AsFloat(), r.AsFloat()
		switch e.Op {
		case '+':
			return value.Float(a + b), nil
		case '-':
			return value.Float(a - b), nil
		case '*':
			return value.Float(a * b), nil
		}
	}
	return value.Value{}, fmt.Errorf("parser: unsupported arithmetic on %s", l.Kind())
}

// parseValueExpr parses "term [op term]" where both terms have the
// expected kind; arithmetic requires a numeric kind.
func (p *parser) parseValueExpr(rel string, kind value.Kind) (ValueExpr, error) {
	left, err := p.parseValueTerm(rel, kind)
	if err != nil {
		return nil, err
	}
	t := p.peek()
	var op byte
	switch {
	case t.kind == tokPunct && (t.text == "+" || t.text == "-" || t.text == "*"):
		op = t.text[0]
		p.adv()
	case t.kind == tokNumber && len(t.text) > 1 && t.text[0] == '-':
		// "stock -5" lexes the minus into the number; treat it as
		// subtraction of the positive part.
		op = '-'
		p.toks[p.i].text = t.text[1:]
	default:
		return left, nil
	}
	if kind != value.KindInt && kind != value.KindFloat {
		return nil, fmt.Errorf("parser: arithmetic requires a numeric attribute, have %s", kind)
	}
	right, err := p.parseValueTerm(rel, kind)
	if err != nil {
		return nil, err
	}
	return BinExpr{L: left, R: right, Op: op}, nil
}

// parseValueTerm parses one attribute reference or literal of the
// expected kind.
func (p *parser) parseValueTerm(rel string, kind value.Kind) (ValueExpr, error) {
	t := p.peek()
	if t.kind == tokIdent && t.text != "true" && t.text != "false" {
		attr, k, err := p.attrRef(rel)
		if err != nil {
			return nil, err
		}
		if k != kind {
			return nil, fmt.Errorf("parser: attribute %s is %s, expected %s", attr, k, kind)
		}
		return AttrExpr{Attr: attr, kind: k}, nil
	}
	v, err := p.literal(kind)
	if err != nil {
		return nil, err
	}
	return LitExpr{V: v}, nil
}
