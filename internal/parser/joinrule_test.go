package parser

import (
	"testing"

	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/value"
)

func joinCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	for _, r := range []*schema.Relation{
		schema.MustRelation("emp",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "dept", Type: value.KindString},
			schema.Attribute{Name: "salary", Type: value.KindInt},
		),
		schema.MustRelation("dept",
			schema.Attribute{Name: "dname", Type: value.KindString},
			schema.Attribute{Name: "budget", Type: value.KindInt},
		),
		schema.MustRelation("site",
			schema.Attribute{Name: "sname", Type: value.KindString},
			schema.Attribute{Name: "budget", Type: value.KindInt}, // ambiguous with dept.budget
		),
	} {
		if err := cat.Add(r); err != nil {
			panic(err)
		}
	}
	return cat
}

func TestParseJoinRuleFull(t *testing.T) {
	cat := joinCatalog()
	funcs := pred.NewRegistry()
	src := `joinrule audit on emp, dept
	  when salary > 50000 and isodd(salary) and emp.dept = dname
	       and budget between 0 and 100000
	  do log 'flag'; raise 'abort'`
	ast, err := ParseJoinRule(src, cat, funcs)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Name != "audit" || len(ast.Rels) != 2 {
		t.Fatalf("ast = %+v", ast)
	}
	if len(ast.Sel[0]) != 2 { // salary > 50000, isodd(salary)
		t.Fatalf("emp selections = %v", ast.Sel[0])
	}
	if len(ast.Sel[1]) != 1 { // budget between
		t.Fatalf("dept selections = %v", ast.Sel[1])
	}
	if len(ast.Joins) != 1 {
		t.Fatalf("joins = %v", ast.Joins)
	}
	j := ast.Joins[0]
	if j.LeftSide != 0 || j.LeftAttr != "dept" || j.RightSide != 1 || j.RightAttr != "dname" {
		t.Fatalf("join = %+v", j)
	}
	if len(ast.Actions) != 2 || ast.Actions[0].Kind != ActionLog || ast.Actions[1].Kind != ActionRaise {
		t.Fatalf("actions = %+v", ast.Actions)
	}
}

func TestParseJoinRuleReversedLiteral(t *testing.T) {
	cat := joinCatalog()
	funcs := pred.NewRegistry()
	ast, err := ParseJoinRule(
		"joinrule r on emp, dept when 50000 < salary and emp.dept = dname do log 'x'",
		cat, funcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ast.Sel[0]) != 1 {
		t.Fatalf("selections = %v", ast.Sel[0])
	}
	c := ast.Sel[0][0]
	if c.Attr != "salary" || !c.Iv.AboveLo(value.Compare, value.Int(50001)) ||
		c.Iv.Contains(value.Compare, value.Int(50000)) {
		t.Fatalf("clause = %v", c)
	}
}

func TestParseJoinRuleUnqualifiedResolution(t *testing.T) {
	cat := joinCatalog()
	funcs := pred.NewRegistry()
	// salary unique to emp; dname unique to dept.
	ast, err := ParseJoinRule(
		"joinrule r on emp, dept when salary = 5 and dept.dname = emp.dept do log 'x'",
		cat, funcs)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Joins[0].LeftSide != 1 || ast.Joins[0].RightSide != 0 {
		t.Fatalf("join sides = %+v", ast.Joins[0])
	}
}

func TestParseJoinRuleErrors(t *testing.T) {
	cat := joinCatalog()
	funcs := pred.NewRegistry()
	bad := []string{
		"",
		"joinrule",
		"joinrule r on emp when salary = 1 do log 'x'",                    // one relation
		"joinrule r on emp, nosuch when salary = 1 do log 'x'",            // unknown rel
		"joinrule r on emp, emp when salary = 1 do log 'x'",               // duplicate rel
		"joinrule r on emp, dept do log 'x'",                              // no when
		"joinrule r on emp, dept when do log 'x'",                         // empty condition
		"joinrule r on emp, dept when salary = 1 do log 'x'",              // no join term
		"joinrule r on emp, dept when emp.dept = dname do set salary = 1", // bad action
		"joinrule r on emp, dept when emp.dept = dname do",                // no action body
		"joinrule r on emp, dept when emp.dept = dname do log 'x' zz",
		"joinrule r on emp, dept when nosuch.a = dname do log 'x'",                  // unknown qualifier
		"joinrule r on emp, dept when emp.nosuch = dname do log 'x'",                // unknown attr
		"joinrule r on emp, dept when frobnicate = dname do log 'x'",                // unknown unqualified
		"joinrule r on emp, dept when emp.salary = dname do log 'x'",                // type clash in join
		"joinrule r on emp, dept when emp.dept != dname do log 'x'",                 // != join
		"joinrule r on emp, dept when emp.dept < dname do log 'x'",                  // non-equi join
		"joinrule r on emp, dept when emp.dept = emp.name do log 'x'",               // same-side
		"joinrule r on emp, dept when salary != 1 and emp.dept = dname do log 'x'",  // != selection
		"joinrule r on emp, dept when salary = 'x' and emp.dept = dname do log 'x'", // type clash
		"joinrule r on emp, dept when salary between 1 do log 'x'",                  // bad between
		"joinrule r on emp, dept when salary ~ 1 do log 'x'",                        // bad op
		"joinrule r on emp, dept when 5 ~ salary do log 'x'",                        // bad reversed op
	}
	for _, src := range bad {
		if _, err := ParseJoinRule(src, cat, funcs); err == nil {
			t.Errorf("ParseJoinRule(%q) accepted", src)
		}
	}
	// Ambiguous unqualified attribute across dept and site.
	if _, err := ParseJoinRule(
		"joinrule r on dept, site when budget = 1 and dept.dname = site.sname do log 'x'",
		cat, funcs); err == nil {
		t.Error("ambiguous attribute accepted")
	}
}
