package parser

import (
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/value"
)

// JoinRuleAST is a parsed multi-relation rule for the two-layer
// discrimination network (internal/join):
//
//	joinrule NAME on REL1, REL2 [, ...]
//	  when CONDITION
//	  do ACTIONS
//
// The condition is a conjunction mixing single-relation selection
// clauses (qualified comparisons against literals, function clauses,
// between) and equi-join terms "rel1.attr = rel2.attr". Attribute
// references may omit the relation qualifier when the attribute name is
// unique across the rule's relations. Actions are limited to log and
// raise (a join activation has no single triggering tuple to set or
// delete).
type JoinRuleAST struct {
	Name string
	// Rels lists the rule's relations in declaration order; Sel[i] holds
	// the selection clauses for Rels[i].
	Rels []string
	Sel  [][]pred.Clause
	// Joins are equi-join conditions as (side, attr) pairs.
	Joins   []JoinTerm
	Actions []Action
	Source  string
}

// JoinTerm is one equi-join condition between two sides.
type JoinTerm struct {
	LeftSide  int
	LeftAttr  string
	RightSide int
	RightAttr string
}

// ParseJoinRule parses a joinrule definition.
func ParseJoinRule(src string, catalog *schema.Catalog, funcs *pred.Registry) (*JoinRuleAST, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, catalog: catalog, funcs: funcs}
	ast := &JoinRuleAST{Source: src}

	if err := p.expectIdent("joinrule"); err != nil {
		return nil, err
	}
	if ast.Name, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectIdent("on"); err != nil {
		return nil, err
	}
	sideOf := map[string]int{}
	for {
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, ok := catalog.Get(rel); !ok {
			return nil, fmt.Errorf("parser: unknown relation %q", rel)
		}
		if _, dup := sideOf[rel]; dup {
			return nil, fmt.Errorf("parser: relation %q listed twice; self-joins need distinct rule sides, which the joinrule syntax does not express", rel)
		}
		sideOf[rel] = len(ast.Rels)
		ast.Rels = append(ast.Rels, rel)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.adv()
			continue
		}
		break
	}
	if len(ast.Rels) < 2 {
		return nil, fmt.Errorf("parser: joinrule needs at least two relations")
	}
	ast.Sel = make([][]pred.Clause, len(ast.Rels))

	if err := p.expectIdent("when"); err != nil {
		return nil, err
	}
	for {
		if err := p.parseJoinTerm(ast, sideOf); err != nil {
			return nil, err
		}
		if p.peek().kind == tokIdent && p.peek().text == "and" {
			p.adv()
			continue
		}
		break
	}
	if len(ast.Joins) == 0 {
		return nil, fmt.Errorf("parser: joinrule condition needs at least one join term (rel1.attr = rel2.attr)")
	}

	if err := p.expectIdent("do"); err != nil {
		return nil, err
	}
	for {
		kw := p.peek()
		if kw.kind != tokIdent || (kw.text != "log" && kw.text != "raise") {
			return nil, fmt.Errorf("parser: joinrule actions are limited to log and raise, got %q", kw.text)
		}
		a, err := p.parseAction(ast.Rels[0])
		if err != nil {
			return nil, err
		}
		ast.Actions = append(ast.Actions, a)
		if p.peek().kind == tokPunct && p.peek().text == ";" {
			p.adv()
			continue
		}
		break
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("parser: trailing input at offset %d: %q", p.peek().pos, p.peek().text)
	}
	return ast, nil
}

// joinAttrRef resolves an optionally qualified attribute against the
// rule's relations, returning the side index, attribute name and kind.
func (p *parser) joinAttrRef(ast *JoinRuleAST, sideOf map[string]int) (int, string, value.Kind, error) {
	name, err := p.ident()
	if err != nil {
		return 0, "", 0, err
	}
	if p.peek().kind == tokPunct && p.peek().text == "." {
		// Qualified: name is the relation.
		p.adv()
		side, ok := sideOf[name]
		if !ok {
			return 0, "", 0, fmt.Errorf("parser: relation %q is not part of this joinrule", name)
		}
		attr, err := p.ident()
		if err != nil {
			return 0, "", 0, err
		}
		rel, _ := p.catalog.Get(ast.Rels[side])
		kind, ok := rel.AttrType(attr)
		if !ok {
			return 0, "", 0, fmt.Errorf("parser: relation %q has no attribute %q", name, attr)
		}
		return side, attr, kind, nil
	}
	// Unqualified: the attribute must be unique across relations.
	found := -1
	var kind value.Kind
	for i, relName := range ast.Rels {
		rel, _ := p.catalog.Get(relName)
		if k, ok := rel.AttrType(name); ok {
			if found >= 0 {
				return 0, "", 0, fmt.Errorf("parser: attribute %q is ambiguous; qualify it", name)
			}
			found, kind = i, k
		}
	}
	if found < 0 {
		return 0, "", 0, fmt.Errorf("parser: no relation in this joinrule has attribute %q", name)
	}
	return found, name, kind, nil
}

// parseJoinTerm consumes one conjunct: a selection clause or a join term.
func (p *parser) parseJoinTerm(ast *JoinRuleAST, sideOf map[string]int) error {
	// Function clause: fn(attr).
	if p.peek().kind == tokIdent {
		if _, registered := p.funcs.Get(p.peek().text); registered &&
			p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
			fn := p.adv().text
			if err := p.expectPunct("("); err != nil {
				return err
			}
			side, attr, _, err := p.joinAttrRef(ast, sideOf)
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			ast.Sel[side] = append(ast.Sel[side], pred.FnClause(attr, fn))
			return nil
		}
	}
	// Reversed comparison: literal op attr.
	if p.isLiteralStart() {
		save := p.i
		p.adv()
		op := p.adv()
		if op.kind != tokPunct {
			return fmt.Errorf("parser: expected comparison operator at offset %d", op.pos)
		}
		side, attr, kind, err := p.joinAttrRef(ast, sideOf)
		if err != nil {
			return err
		}
		end := p.i
		p.i = save
		lit, err := p.literal(kind)
		if err != nil {
			return err
		}
		p.i = end
		return appendSelection(ast, side, attr, reverseOp(op.text), lit)
	}

	side, attr, kind, err := p.joinAttrRef(ast, sideOf)
	if err != nil {
		return err
	}
	if p.peek().kind == tokIdent && p.peek().text == "between" {
		p.adv()
		lo, err := p.literal(kind)
		if err != nil {
			return err
		}
		if err := p.expectIdent("and"); err != nil {
			return err
		}
		hi, err := p.literal(kind)
		if err != nil {
			return err
		}
		ast.Sel[side] = append(ast.Sel[side], pred.IvClause(attr, interval.Closed(lo, hi)))
		return nil
	}
	op := p.adv()
	if op.kind != tokPunct {
		return fmt.Errorf("parser: expected comparison operator at offset %d, got %q", op.pos, op.text)
	}
	if p.isLiteralStart() {
		lit, err := p.literal(kind)
		if err != nil {
			return err
		}
		return appendSelection(ast, side, attr, op.text, lit)
	}
	// attr op attr: only equi-joins are supported across sides.
	side2, attr2, kind2, err := p.joinAttrRef(ast, sideOf)
	if err != nil {
		return err
	}
	if op.text != "=" && op.text != "==" {
		return fmt.Errorf("parser: only equi-join conditions are supported between relations, got %q", op.text)
	}
	if side == side2 {
		return fmt.Errorf("parser: attribute comparison within one relation is not supported; use literals")
	}
	if kind != kind2 {
		return fmt.Errorf("parser: join compares %s attribute with %s attribute", kind, kind2)
	}
	ast.Joins = append(ast.Joins, JoinTerm{
		LeftSide: side, LeftAttr: attr,
		RightSide: side2, RightAttr: attr2,
	})
	return nil
}

// reverseOp mirrors a comparison for "literal op attr".
func reverseOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// appendSelection converts a comparison into a selection clause.
// "!=" is rejected here: selection disjunctions are not representable in
// a conjunctive joinrule condition.
func appendSelection(ast *JoinRuleAST, side int, attr, op string, lit value.Value) error {
	var iv interval.Interval[value.Value]
	switch op {
	case "=", "==":
		iv = interval.Point(lit)
	case "<":
		iv = interval.Less(lit)
	case "<=":
		iv = interval.AtMost(lit)
	case ">":
		iv = interval.Greater(lit)
	case ">=":
		iv = interval.AtLeast(lit)
	case "!=", "<>":
		return fmt.Errorf("parser: != is not supported in joinrule conditions (no disjunctions)")
	default:
		return fmt.Errorf("parser: unknown comparison operator %q", op)
	}
	ast.Sel[side] = append(ast.Sel[side], pred.IvClause(attr, iv))
	return nil
}
