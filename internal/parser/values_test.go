package parser

import (
	"testing"

	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/value"
)

func TestParseValues(t *testing.T) {
	rel := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "score", Type: value.KindFloat},
		schema.Attribute{Name: "active", Type: value.KindBool},
	)
	tp, err := ParseValues("('ada', 30, 2.5, true)", rel)
	if err != nil {
		t.Fatal(err)
	}
	if tp[0].AsString() != "ada" || tp[1].AsInt() != 30 || tp[2].AsFloat() != 2.5 || !tp[3].AsBool() {
		t.Fatalf("tuple = %v", tp)
	}
	bad := []string{
		"",
		"'ada', 30, 2.5, true",        // no parens
		"('ada', 30, 2.5)",            // too few
		"('ada', 30, 2.5, true, 9)",   // too many
		"('ada', 'x', 2.5, true)",     // type mismatch
		"('ada', 30, 2.5, true) junk", // trailing
		"('ada', 30, 2.5, true",       // unclosed
		"(@)",                         // lex error
	}
	for _, src := range bad {
		if _, err := ParseValues(src, rel); err == nil {
			t.Errorf("ParseValues(%q) accepted", src)
		}
	}
}

// TestJoinRuleReversedOps drives every reversed comparison direction.
func TestJoinRuleReversedOps(t *testing.T) {
	cat := joinCatalog()
	funcs := pred.NewRegistry()
	cases := map[string]func(c pred.Clause) bool{
		"5 < salary": func(c pred.Clause) bool {
			return !c.Iv.Contains(value.Compare, value.Int(5)) && c.Iv.Contains(value.Compare, value.Int(6))
		},
		"5 <= salary": func(c pred.Clause) bool {
			return c.Iv.Contains(value.Compare, value.Int(5)) && !c.Iv.Contains(value.Compare, value.Int(4))
		},
		"5 > salary": func(c pred.Clause) bool {
			return !c.Iv.Contains(value.Compare, value.Int(5)) && c.Iv.Contains(value.Compare, value.Int(4))
		},
		"5 >= salary": func(c pred.Clause) bool {
			return c.Iv.Contains(value.Compare, value.Int(5)) && !c.Iv.Contains(value.Compare, value.Int(6))
		},
		"5 = salary": func(c pred.Clause) bool {
			return c.Iv.IsPoint(value.Compare)
		},
	}
	for cond, check := range cases {
		src := "joinrule r on emp, dept when " + cond + " and emp.dept = dname do log 'x'"
		ast, err := ParseJoinRule(src, cat, funcs)
		if err != nil {
			t.Errorf("%q: %v", cond, err)
			continue
		}
		if len(ast.Sel[0]) != 1 || !check(ast.Sel[0][0]) {
			t.Errorf("%q produced clause %v", cond, ast.Sel[0])
		}
	}
	// Reversed !=.
	if _, err := ParseJoinRule(
		"joinrule r on emp, dept when 5 != salary and emp.dept = dname do log 'x'",
		cat, funcs); err == nil {
		t.Error("reversed != accepted")
	}
}
