package parser

import (
	"reflect"
	"strings"
	"testing"

	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func testCatalog() *schema.Catalog {
	cat := schema.NewCatalog()
	for _, r := range []*schema.Relation{
		schema.MustRelation("emp",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "age", Type: value.KindInt},
			schema.Attribute{Name: "salary", Type: value.KindFloat},
			schema.Attribute{Name: "dept", Type: value.KindString},
			schema.Attribute{Name: "active", Type: value.KindBool},
		),
		schema.MustRelation("alerts",
			schema.Attribute{Name: "msg", Type: value.KindString},
			schema.Attribute{Name: "level", Type: value.KindInt},
		),
	} {
		if err := cat.Add(r); err != nil {
			panic(err)
		}
	}
	return cat
}

// evalExpr splits an expression to predicates and evaluates the
// disjunction against a tuple.
func evalExpr(t *testing.T, e pred.Expr, cat *schema.Catalog, funcs *pred.Registry, tp tuple.Tuple) bool {
	t.Helper()
	for _, p := range pred.SplitDNF(1, "emp", e) {
		b, err := p.Bind(cat, funcs)
		if err != nil {
			t.Fatalf("Bind: %v", err)
		}
		if b.Match(tp) {
			return true
		}
	}
	return false
}

func empT(name string, age int64, salary float64, dept string, active bool) tuple.Tuple {
	return tuple.New(value.String_(name), value.Int(age), value.Float(salary), value.String_(dept), value.Bool(active))
}

func TestParseConditionSemantics(t *testing.T) {
	cat := testCatalog()
	funcs := pred.NewRegistry()
	cases := []struct {
		src   string
		tup   tuple.Tuple
		match bool
	}{
		{"age = 30", empT("a", 30, 0, "d", true), true},
		{"age = 30", empT("a", 31, 0, "d", true), false},
		{"age == 30", empT("a", 30, 0, "d", true), true},
		{"age < 30", empT("a", 29, 0, "d", true), true},
		{"age < 30", empT("a", 30, 0, "d", true), false},
		{"age <= 30", empT("a", 30, 0, "d", true), true},
		{"age > 30", empT("a", 31, 0, "d", true), true},
		{"age >= 30", empT("a", 30, 0, "d", true), true},
		{"age != 30", empT("a", 30, 0, "d", true), false},
		{"age != 30", empT("a", 29, 0, "d", true), true},
		{"age <> 30", empT("a", 31, 0, "d", true), true},
		{"30 < age", empT("a", 31, 0, "d", true), true},
		{"30 < age", empT("a", 30, 0, "d", true), false},
		{"30 >= age", empT("a", 30, 0, "d", true), true},
		{"age between 20 and 30", empT("a", 25, 0, "d", true), true},
		{"age between 20 and 30", empT("a", 31, 0, "d", true), false},
		{"salary >= 20000.5", empT("a", 1, 20000.5, "d", true), true},
		{"salary >= 20000", empT("a", 1, 19999, "d", true), false},
		{"dept = 'shoe'", empT("a", 1, 0, "shoe", true), true},
		{"dept = 'shoe'", empT("a", 1, 0, "toy", true), false},
		{"dept = 'it''s'", empT("a", 1, 0, "it's", true), true},
		{"active = true", empT("a", 1, 0, "d", true), true},
		{"active = false", empT("a", 1, 0, "d", true), false},
		{"isodd(age)", empT("a", 3, 0, "d", true), true},
		{"isodd(age)", empT("a", 4, 0, "d", true), false},
		{"emp.age = 5 and emp.dept = 'shoe'", empT("a", 5, 0, "shoe", true), true},
		{"age = 5 and dept = 'shoe'", empT("a", 5, 0, "toy", true), false},
		{"age = 5 or age = 7", empT("a", 7, 0, "d", true), true},
		{"age = 5 or age = 7", empT("a", 6, 0, "d", true), false},
		{"(age = 5 or age = 7) and dept = 'shoe'", empT("a", 7, 0, "shoe", true), true},
		{"(age = 5 or age = 7) and dept = 'shoe'", empT("a", 7, 0, "toy", true), false},
		{"age > 50 and salary < 20000.0", empT("a", 55, 15000, "d", true), true},
		{"salary between 20000.0 and 30000.0", empT("a", 1, 25000, "d", true), true},
	}
	for _, tc := range cases {
		e, err := ParseCondition(tc.src, "emp", cat, funcs)
		if err != nil {
			t.Errorf("ParseCondition(%q): %v", tc.src, err)
			continue
		}
		if got := evalExpr(t, e, cat, funcs, tc.tup); got != tc.match {
			t.Errorf("%q on %v = %v, want %v", tc.src, tc.tup, got, tc.match)
		}
	}
}

func TestParseConditionErrors(t *testing.T) {
	cat := testCatalog()
	funcs := pred.NewRegistry()
	bad := []string{
		"",
		"age",
		"age =",
		"age = 'text'",      // type mismatch
		"dept = 5",          // type mismatch
		"nosuch = 5",        // unknown attribute
		"items.age = 5",     // wrong qualifier
		"age ~ 5",           // bad operator
		"age = 5 and",       // dangling and
		"(age = 5",          // unbalanced paren
		"age = 5 extra",     // trailing tokens
		"age between 1 and", // incomplete between
		"nosuchfn(age)",     // unregistered function treated as attr -> error
		"isodd(nosuch)",     // unknown attribute in function clause
		"active = 'yes'",    // bool attr, string literal
		"age = 5 or",        // dangling or
		"salary = 'x'",      // float attr, string literal
	}
	for _, src := range bad {
		if _, err := ParseCondition(src, "emp", cat, funcs); err == nil {
			t.Errorf("ParseCondition(%q) accepted", src)
		}
	}
	if _, err := ParseCondition("age = 1", "nosuch", cat, funcs); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestParseRule(t *testing.T) {
	cat := testCatalog()
	funcs := pred.NewRegistry()
	src := `rule high_paid on insert, update to emp
	        when salary > 50000.0 and dept = 'shoe'
	        do log 'high paid shoe employee'; insert into alerts ('check', 2)`
	ast, err := ParseRule(src, cat, funcs)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Name != "high_paid" || ast.Rel != "emp" {
		t.Fatalf("name/rel = %s/%s", ast.Name, ast.Rel)
	}
	if !reflect.DeepEqual(ast.Events, []storage.Op{storage.OpInsert, storage.OpUpdate}) {
		t.Fatalf("events = %v", ast.Events)
	}
	if ast.Condition == nil {
		t.Fatal("condition missing")
	}
	if len(ast.Actions) != 2 {
		t.Fatalf("actions = %v", ast.Actions)
	}
	if ast.Actions[0].Kind != ActionLog || ast.Actions[0].Message != "high paid shoe employee" {
		t.Fatalf("action 0 = %+v", ast.Actions[0])
	}
	if ast.Actions[1].Kind != ActionInsert || ast.Actions[1].Rel != "alerts" || len(ast.Actions[1].Values) != 2 {
		t.Fatalf("action 1 = %+v", ast.Actions[1])
	}
}

func TestParseRuleNoCondition(t *testing.T) {
	cat := testCatalog()
	funcs := pred.NewRegistry()
	ast, err := ParseRule("rule audit on delete to emp do log 'gone'", cat, funcs)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Condition != nil {
		t.Fatal("expected nil condition")
	}
	if len(ast.Events) != 1 || ast.Events[0] != storage.OpDelete {
		t.Fatalf("events = %v", ast.Events)
	}
}

func TestParseRuleActions(t *testing.T) {
	cat := testCatalog()
	funcs := pred.NewRegistry()
	ast, err := ParseRule(
		"rule r on update to emp when age > 100 do set age = 100; raise 'too old'; delete",
		cat, funcs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ast.Actions) != 3 {
		t.Fatalf("actions = %d", len(ast.Actions))
	}
	if ast.Actions[0].Kind != ActionSet || ast.Actions[0].Attr != "age" {
		t.Fatalf("set action = %+v", ast.Actions[0])
	}
	if lit, ok := ast.Actions[0].Expr.(LitExpr); !ok || lit.V.AsInt() != 100 {
		t.Fatalf("set expression = %+v", ast.Actions[0].Expr)
	}
	if ast.Actions[1].Kind != ActionRaise {
		t.Fatalf("raise action = %+v", ast.Actions[1])
	}
	if ast.Actions[2].Kind != ActionDelete {
		t.Fatalf("delete action = %+v", ast.Actions[2])
	}
}

func TestParseRuleErrors(t *testing.T) {
	cat := testCatalog()
	funcs := pred.NewRegistry()
	bad := []string{
		"",
		"rule",
		"rule r on bogus to emp do log 'x'",
		"rule r on insert to nosuch do log 'x'",
		"rule r on insert to emp do",
		"rule r on insert to emp do frobnicate 'x'",
		"rule r on insert to emp do log",
		"rule r on insert to emp do set nosuch = 5",
		"rule r on insert to emp do insert into nosuch (1)",
		"rule r on insert to emp do insert into alerts ('m')",       // arity
		"rule r on insert to emp do insert into alerts ('m', 1, 2)", // arity
		"rule r on insert to emp do insert into alerts (5, 1)",      // type
		"rule r on insert to emp when do log 'x'",                   // empty condition
		"rule r on insert to emp when age = 1 do log 'x' trailing",  // trailing
		"rule r on insert to emp when age = 'x' do log 'm'",         // type
	}
	for _, src := range bad {
		if _, err := ParseRule(src, cat, funcs); err == nil {
			t.Errorf("ParseRule(%q) accepted", src)
		}
	}
}

func TestLexerStrings(t *testing.T) {
	toks, err := lex(`"double" 'single' 'esc''aped'`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, tk := range toks {
		if tk.kind == tokString {
			got = append(got, tk.text)
		}
	}
	if !reflect.DeepEqual(got, []string{"double", "single", "esc'aped"}) {
		t.Fatalf("strings = %v", got)
	}
	if _, err := lex("'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("age @ 5"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("42 -7 2.5 1e3")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, tk := range toks {
		if tk.kind == tokNumber {
			got = append(got, tk.text)
		}
	}
	if !reflect.DeepEqual(got, []string{"42", "-7", "2.5", "1e3"}) {
		t.Fatalf("numbers = %v", got)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	cat := testCatalog()
	funcs := pred.NewRegistry()
	src := "RULE R ON INSERT TO EMP WHEN AGE = 5 DO LOG 'hi'"
	ast, err := ParseRule(src, cat, funcs)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Name != "r" || ast.Rel != "emp" {
		t.Fatalf("name/rel = %s/%s", ast.Name, ast.Rel)
	}
	if !strings.Contains(ast.Source, "RULE R") {
		t.Fatal("Source not preserved")
	}
}
