package parser

import (
	"fmt"

	"predmatch/internal/schema"
	"predmatch/internal/tuple"
)

// ParseValues parses a parenthesized tuple literal "(v1, v2, ...)"
// against a relation schema, typing each literal by position.
func ParseValues(src string, rel *schema.Relation) (tuple.Tuple, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	attrs := rel.Attrs()
	t := make(tuple.Tuple, 0, len(attrs))
	for i := 0; ; i++ {
		if i >= len(attrs) {
			return nil, fmt.Errorf("parser: too many values for relation %s (arity %d)", rel.Name(), len(attrs))
		}
		v, err := p.literal(attrs[i].Type)
		if err != nil {
			return nil, err
		}
		t = append(t, v)
		if p.peek().kind == tokPunct && p.peek().text == "," {
			p.adv()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("parser: trailing input after tuple literal")
	}
	if len(t) != len(attrs) {
		return nil, fmt.Errorf("parser: %d values for relation %s (arity %d)", len(t), rel.Name(), len(attrs))
	}
	return t, nil
}
