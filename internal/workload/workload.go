// Package workload generates the synthetic predicate and tuple
// populations of the paper's Section 5.2 evaluation:
//
//   - "A fraction a of predicates were simple points of the form
//     attribute = constant, and the remaining fraction 1-a were closed
//     intervals. The points and interval boundaries were drawn randomly
//     from a uniform distribution of integers between 1 and 10,000. The
//     length of the intervals was drawn randomly from a uniform
//     distribution of integers between 1 and 1,000."
//
// plus the multi-relation predicate populations used for the
// whole-scheme cost model (15 attributes per relation, one third of the
// attributes carrying clauses, 90% of predicates indexable, two clauses
// per predicate). All generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Paper's Section 5.2 constants.
const (
	// DomainMin and DomainMax bound the uniform endpoint distribution.
	DomainMin = 1
	DomainMax = 10000
	// MaxIntervalLength bounds the uniform interval length distribution.
	MaxIntervalLength = 1000
)

// Intervals draws n intervals with point fraction a (the paper's
// Figure 7/8 workload) over int64.
func Intervals(rng *rand.Rand, n int, a float64) []interval.Interval[int64] {
	out := make([]interval.Interval[int64], n)
	for i := range out {
		out[i] = OneInterval(rng, a)
	}
	return out
}

// OneInterval draws a single workload interval: a point with probability
// a, otherwise a closed interval of uniform length 1..1000 starting
// uniformly in the domain.
func OneInterval(rng *rand.Rand, a float64) interval.Interval[int64] {
	if rng.Float64() < a {
		return interval.Point(DomainMin + rng.Int63n(DomainMax))
	}
	lo := DomainMin + rng.Int63n(DomainMax)
	length := 1 + rng.Int63n(MaxIntervalLength)
	return interval.Closed(lo, lo+length)
}

// StabPoints draws n uniform query points from the domain.
func StabPoints(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = DomainMin + rng.Int63n(DomainMax)
	}
	return out
}

// DisjointIntervals lays n intervals side by side with gaps — the
// Section 5.1 best case where the IBS-tree needs only O(N) markers.
func DisjointIntervals(n int) []interval.Interval[int64] {
	out := make([]interval.Interval[int64], n)
	for i := range out {
		lo := int64(i) * 20
		out[i] = interval.Closed(lo, lo+9)
	}
	return out
}

// NestedIntervals produces n intervals nested inside one another — the
// heavy-overlap regime approaching the O(N log N) marker bound.
func NestedIntervals(n int) []interval.Interval[int64] {
	out := make([]interval.Interval[int64], n)
	for i := range out {
		out[i] = interval.Closed(int64(i), int64(4*n-i))
	}
	return out
}

// SchemaSpec configures a synthetic relation population.
type SchemaSpec struct {
	Relations    int // number of relations
	AttrsPerRel  int // paper scenario: 15
	UsedAttrFrac float64
	// UsedAttrFrac is the fraction of attributes carrying one or more
	// predicate clauses (paper scenario: 1/3).
	PredsPerRel   int     // paper scenario: 200
	ClausesPer    int     // clauses per predicate (paper scenario: 2)
	IndexableFrac float64 // fraction of indexable predicates (paper: 0.9)
	PointFrac     float64 // fraction of point clauses among indexable
}

// PaperScenario returns the Section 5.2 cost-model configuration.
func PaperScenario() SchemaSpec {
	return SchemaSpec{
		Relations:     1,
		AttrsPerRel:   15,
		UsedAttrFrac:  1.0 / 3.0,
		PredsPerRel:   200,
		ClausesPer:    2,
		IndexableFrac: 0.9,
		PointFrac:     0.5,
	}
}

// Population is a generated schema + predicate + tuple workload.
type Population struct {
	Catalog *schema.Catalog
	Funcs   *pred.Registry
	Rels    []*schema.Relation
	Preds   []*pred.Predicate
}

// Build generates a deterministic population for the spec. Attribute
// domains are integers; clause attribute choice is uniform over the
// "used" attribute prefix of each relation; function clauses use the
// registered parity predicates.
func (s SchemaSpec) Build(rng *rand.Rand) (*Population, error) {
	p := &Population{
		Catalog: schema.NewCatalog(),
		Funcs:   pred.NewRegistry(),
	}
	for r := 0; r < s.Relations; r++ {
		attrs := make([]schema.Attribute, s.AttrsPerRel)
		for a := range attrs {
			attrs[a] = schema.Attribute{Name: fmt.Sprintf("a%02d", a), Type: value.KindInt}
		}
		rel, err := schema.NewRelation(fmt.Sprintf("rel%02d", r), attrs...)
		if err != nil {
			return nil, err
		}
		if err := p.Catalog.Add(rel); err != nil {
			return nil, err
		}
		p.Rels = append(p.Rels, rel)
	}

	used := int(float64(s.AttrsPerRel)*s.UsedAttrFrac + 0.5)
	if used < 1 {
		used = 1
	}
	id := markset.ID(1)
	for _, rel := range p.Rels {
		for i := 0; i < s.PredsPerRel; i++ {
			clauses := make([]pred.Clause, 0, s.ClausesPer)
			indexable := rng.Float64() < s.IndexableFrac
			for c := 0; c < s.ClausesPer; c++ {
				attr := fmt.Sprintf("a%02d", rng.Intn(used))
				if !indexable || (c > 0 && rng.Float64() < 0.2) {
					// Non-indexable predicates get only function clauses;
					// indexable ones occasionally mix one in.
					fn := "isodd"
					if rng.Intn(2) == 0 {
						fn = "iseven"
					}
					clauses = append(clauses, pred.FnClause(attr, fn))
					continue
				}
				iv := OneInterval(rng, s.PointFrac)
				clauses = append(clauses, pred.IvClause(attr, valueIv(iv)))
			}
			p.Preds = append(p.Preds, pred.New(id, rel.Name(), clauses...))
			id++
		}
	}
	return p, nil
}

// valueIv lifts an int64 interval into the value domain.
func valueIv(iv interval.Interval[int64]) interval.Interval[value.Value] {
	var out interval.Interval[value.Value]
	out.Lo.Kind = iv.Lo.Kind
	out.Lo.Closed = iv.Lo.Closed
	if iv.Lo.Kind == interval.Finite {
		out.Lo.Value = value.Int(iv.Lo.Value)
	}
	out.Hi.Kind = iv.Hi.Kind
	out.Hi.Closed = iv.Hi.Closed
	if iv.Hi.Kind == interval.Finite {
		out.Hi.Value = value.Int(iv.Hi.Value)
	}
	return out
}

// Tuple draws a uniform random tuple for rel.
func (p *Population) Tuple(rng *rand.Rand, rel *schema.Relation) tuple.Tuple {
	t := make(tuple.Tuple, rel.Arity())
	for i := range t {
		t[i] = value.Int(DomainMin + rng.Int63n(DomainMax))
	}
	return t
}

// SingleAttrPreds generates n single-clause predicates on one attribute
// of one relation — the Figure 9 workload (whole-scheme match cost with
// the IBS-tree versus a sequential predicate list).
func SingleAttrPreds(rng *rand.Rand, rel, attr string, n int, a float64) []*pred.Predicate {
	out := make([]*pred.Predicate, n)
	for i := range out {
		iv := OneInterval(rng, a)
		out[i] = pred.New(markset.ID(i+1), rel, pred.IvClause(attr, valueIv(iv)))
	}
	return out
}
