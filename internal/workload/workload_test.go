package workload

import (
	"math/rand"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
	"predmatch/internal/pred"
	"predmatch/internal/value"
)

func TestIntervalsRespectParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 5000

	// a=1: all points.
	for _, iv := range Intervals(rng, n, 1) {
		if !iv.IsPoint(ivindex.Int64Cmp) {
			t.Fatalf("a=1 produced non-point %v", iv)
		}
		v := iv.Lo.Value
		if v < DomainMin || v > DomainMin+DomainMax {
			t.Fatalf("point %d outside domain", v)
		}
	}

	// a=0: all closed intervals with length in [1, 1000].
	for _, iv := range Intervals(rng, n, 0) {
		if iv.IsPoint(ivindex.Int64Cmp) {
			t.Fatalf("a=0 produced point %v", iv)
		}
		if !iv.Lo.Closed || !iv.Hi.Closed {
			t.Fatalf("a=0 produced non-closed interval %v", iv)
		}
		length := iv.Hi.Value - iv.Lo.Value
		if length < 1 || length > MaxIntervalLength {
			t.Fatalf("interval length %d outside [1,%d]", length, MaxIntervalLength)
		}
	}

	// a=0.5: roughly half points.
	points := 0
	for _, iv := range Intervals(rng, n, 0.5) {
		if iv.IsPoint(ivindex.Int64Cmp) {
			points++
		}
	}
	if points < n/3 || points > 2*n/3 {
		t.Fatalf("a=0.5 produced %d/%d points", points, n)
	}
}

func TestDeterminism(t *testing.T) {
	a := Intervals(rand.New(rand.NewSource(7)), 100, 0.5)
	b := Intervals(rand.New(rand.NewSource(7)), 100, 0.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestDisjointAndNested(t *testing.T) {
	dis := DisjointIntervals(50)
	for i := 1; i < len(dis); i++ {
		if dis[i-1].Overlaps(ivindex.Int64Cmp, dis[i]) {
			t.Fatalf("disjoint intervals %d and %d overlap", i-1, i)
		}
	}
	nest := NestedIntervals(50)
	for i := 1; i < len(nest); i++ {
		// Each interval contains the next.
		if !nest[i-1].CoversOpenRange(ivindex.Int64Cmp, nest[i].Lo, nest[i].Hi) {
			t.Fatalf("nested interval %d does not contain %d", i-1, i)
		}
	}
}

func TestStabPointsInDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, x := range StabPoints(rng, 1000) {
		if x < DomainMin || x > DomainMin+DomainMax {
			t.Fatalf("stab point %d outside domain", x)
		}
	}
}

func TestBuildPaperScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := PaperScenario()
	pop, err := spec.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pop.Rels) != 1 || pop.Rels[0].Arity() != 15 {
		t.Fatalf("schema wrong: %d rels", len(pop.Rels))
	}
	if len(pop.Preds) != 200 {
		t.Fatalf("preds = %d", len(pop.Preds))
	}
	indexable := 0
	usedAttrs := map[string]bool{}
	for _, p := range pop.Preds {
		if err := p.Validate(pop.Catalog, pop.Funcs); err != nil {
			t.Fatalf("invalid predicate %v: %v", p, err)
		}
		if len(p.Clauses) != 2 {
			t.Fatalf("predicate with %d clauses", len(p.Clauses))
		}
		hasIv := false
		for _, cl := range p.Clauses {
			usedAttrs[cl.Attr] = true
			if cl.Indexable() {
				hasIv = true
			}
		}
		if hasIv {
			indexable++
		}
	}
	if frac := float64(indexable) / 200; frac < 0.8 || frac > 1.0 {
		t.Fatalf("indexable fraction = %v, want about 0.9", frac)
	}
	// Clauses restricted to the used third of the attributes (a00..a04).
	for attr := range usedAttrs {
		if attr > "a04" {
			t.Fatalf("clause on unexpected attribute %s", attr)
		}
	}
	// Tuples conform.
	tp := pop.Tuple(rng, pop.Rels[0])
	if err := tp.Conforms(pop.Rels[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSingleAttrPreds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	preds := SingleAttrPreds(rng, "r", "attr", 30, 0.5)
	if len(preds) != 30 {
		t.Fatalf("len = %d", len(preds))
	}
	for i, p := range preds {
		if p.ID != pred.ID(i+1) || p.Rel != "r" || len(p.Clauses) != 1 {
			t.Fatalf("bad predicate %v", p)
		}
		if p.Clauses[0].Attr != "attr" || !p.Clauses[0].Indexable() {
			t.Fatalf("bad clause %v", p.Clauses[0])
		}
	}
}

func TestValueIvLifting(t *testing.T) {
	iv := valueIv(interval.Closed[int64](3, 9))
	if !iv.Contains(value.Compare, value.Int(5)) || iv.Contains(value.Compare, value.Int(10)) {
		t.Fatal("lifted interval wrong")
	}
	open := valueIv(interval.Greater[int64](7))
	if open.Contains(value.Compare, value.Int(7)) || !open.Contains(value.Compare, value.Int(8)) {
		t.Fatal("lifted open interval wrong")
	}
}
