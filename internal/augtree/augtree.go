// Package augtree implements the classic augmented interval tree
// (Cormen et al. style): an AVL tree of intervals keyed by lower bound
// (made unique by an (lower bound, id) composite key — the same
// transformation the paper discusses for priority search trees), where
// every node carries the maximum upper bound of its subtree. Stabbing
// queries prune subtrees whose maximum upper bound lies below the query
// point and stop descending right once lower bounds exceed it.
//
// It serves as one of the dynamic comparators for the IBS-tree in the
// paper's Section 6 comparison: O(log N) insert/delete with O(N) space,
// but stabbing is O(min(N, L·log N)) rather than the IBS-tree's
// O(log N + L).
package augtree

import (
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// ID identifies an interval.
type ID = markset.ID

// Tree is an augmented interval tree over domain T.
type Tree[T any] struct {
	cmp  interval.Cmp[T]
	root *node[T]
	ivs  map[ID]interval.Interval[T]
}

type node[T any] struct {
	id          ID
	iv          interval.Interval[T]
	maxHi       interval.Bound[T]
	left, right *node[T]
	height      int32
}

// New returns an empty tree ordered by cmp.
func New[T any](cmp interval.Cmp[T]) *Tree[T] {
	return &Tree[T]{cmp: cmp, ivs: make(map[ID]interval.Interval[T])}
}

// Len returns the number of stored intervals.
func (t *Tree[T]) Len() int { return len(t.ivs) }

// Height returns the tree height.
func (t *Tree[T]) Height() int {
	if t.root == nil {
		return 0
	}
	return int(t.root.height)
}

// cmpLo orders lower bounds: -inf first, then by value with closed
// before open (a closed bound starts earlier).
func (t *Tree[T]) cmpLo(a, b interval.Bound[T]) int {
	ai, bi := a.Kind == interval.NegInf, b.Kind == interval.NegInf
	switch {
	case ai && bi:
		return 0
	case ai:
		return -1
	case bi:
		return 1
	}
	if c := t.cmp(a.Value, b.Value); c != 0 {
		return c
	}
	switch {
	case a.Closed == b.Closed:
		return 0
	case a.Closed:
		return -1
	default:
		return 1
	}
}

// cmpHi orders upper bounds: +inf last, open before closed at equal value.
func (t *Tree[T]) cmpHi(a, b interval.Bound[T]) int {
	ai, bi := a.Kind == interval.PosInf, b.Kind == interval.PosInf
	switch {
	case ai && bi:
		return 0
	case ai:
		return 1
	case bi:
		return -1
	}
	if c := t.cmp(a.Value, b.Value); c != 0 {
		return c
	}
	switch {
	case a.Closed == b.Closed:
		return 0
	case a.Closed:
		return 1
	default:
		return -1
	}
}

// cmpKey orders nodes by (lower bound, id).
func (t *Tree[T]) cmpKey(aLo interval.Bound[T], aID ID, b *node[T]) int {
	if c := t.cmpLo(aLo, b.iv.Lo); c != 0 {
		return c
	}
	switch {
	case aID < b.id:
		return -1
	case aID > b.id:
		return 1
	default:
		return 0
	}
}

func height[T any](n *node[T]) int32 {
	if n == nil {
		return 0
	}
	return n.height
}

// fix recomputes height and maxHi from children.
func (t *Tree[T]) fix(n *node[T]) {
	l, r := height(n.left), height(n.right)
	if l > r {
		n.height = l + 1
	} else {
		n.height = r + 1
	}
	n.maxHi = n.iv.Hi
	if n.left != nil && t.cmpHi(n.left.maxHi, n.maxHi) > 0 {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && t.cmpHi(n.right.maxHi, n.maxHi) > 0 {
		n.maxHi = n.right.maxHi
	}
}

func (t *Tree[T]) rotateRight(n *node[T]) *node[T] {
	l := n.left
	n.left = l.right
	l.right = n
	t.fix(n)
	t.fix(l)
	return l
}

func (t *Tree[T]) rotateLeft(n *node[T]) *node[T] {
	r := n.right
	n.right = r.left
	r.left = n
	t.fix(n)
	t.fix(r)
	return r
}

func (t *Tree[T]) rebalance(n *node[T]) *node[T] {
	t.fix(n)
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = t.rotateRight(n.right)
		}
		return t.rotateLeft(n)
	}
	return n
}

// Insert adds iv under id.
func (t *Tree[T]) Insert(id ID, iv interval.Interval[T]) error {
	if err := iv.Validate(t.cmp); err != nil {
		return err
	}
	if _, dup := t.ivs[id]; dup {
		return fmt.Errorf("augtree: duplicate interval id %d", id)
	}
	t.ivs[id] = iv
	t.root = t.insert(t.root, id, iv)
	return nil
}

func (t *Tree[T]) insert(n *node[T], id ID, iv interval.Interval[T]) *node[T] {
	if n == nil {
		nn := &node[T]{id: id, iv: iv, maxHi: iv.Hi, height: 1}
		return nn
	}
	if t.cmpKey(iv.Lo, id, n) < 0 {
		n.left = t.insert(n.left, id, iv)
	} else {
		n.right = t.insert(n.right, id, iv)
	}
	return t.rebalance(n)
}

// Delete removes the interval stored under id.
func (t *Tree[T]) Delete(id ID) error {
	iv, ok := t.ivs[id]
	if !ok {
		return fmt.Errorf("augtree: unknown interval id %d", id)
	}
	delete(t.ivs, id)
	t.root = t.remove(t.root, iv.Lo, id)
	return nil
}

func (t *Tree[T]) remove(n *node[T], lo interval.Bound[T], id ID) *node[T] {
	if n == nil {
		return nil
	}
	switch c := t.cmpKey(lo, id, n); {
	case c < 0:
		n.left = t.remove(n.left, lo, id)
	case c > 0:
		n.right = t.remove(n.right, lo, id)
	default:
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		// Replace with the predecessor's payload, then remove it below.
		p := n.left
		for p.right != nil {
			p = p.right
		}
		n.id, n.iv = p.id, p.iv
		n.left = t.remove(n.left, p.iv.Lo, p.id)
	}
	return t.rebalance(n)
}

// Stab returns the ids of all intervals containing x, in ascending order.
func (t *Tree[T]) Stab(x T) []ID {
	return t.StabAppend(x, nil)
}

// StabAppend appends the ids of all intervals containing x to dst.
func (t *Tree[T]) StabAppend(x T, dst []ID) []ID {
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		// Prune: even the largest upper bound in this subtree lies below x.
		if !aboveOrAt(t.cmp, n.maxHi, x) {
			return
		}
		walk(n.left)
		if n.iv.Contains(t.cmp, x) {
			dst = append(dst, n.id)
		}
		// Right subtree keys have lower bounds >= this node's; if this
		// node's lower bound already exceeds x nothing right can match.
		if loAbove(t.cmp, n.iv.Lo, x) {
			return
		}
		walk(n.right)
	}
	walk(t.root)
	return dst
}

// aboveOrAt reports whether x can still satisfy an upper bound of hi
// (x <= hi honoring closedness; +inf always passes).
func aboveOrAt[T any](cmp interval.Cmp[T], hi interval.Bound[T], x T) bool {
	if hi.Kind == interval.PosInf {
		return true
	}
	c := cmp(x, hi.Value)
	if c == 0 {
		return hi.Closed
	}
	return c < 0
}

// loAbove reports whether the lower bound lo lies strictly above x (no
// interval starting at lo can contain x).
func loAbove[T any](cmp interval.Cmp[T], lo interval.Bound[T], x T) bool {
	if lo.Kind == interval.NegInf {
		return false
	}
	c := cmp(lo.Value, x)
	if c == 0 {
		return !lo.Closed
	}
	return c > 0
}

// CheckInvariants verifies BST key order, AVL balance, and maxHi
// augmentation; exported for tests.
func (t *Tree[T]) CheckInvariants() error {
	var walk func(n *node[T]) (int32, interval.Bound[T], error)
	walk = func(n *node[T]) (int32, interval.Bound[T], error) {
		if n == nil {
			return 0, interval.Bound[T]{Kind: interval.NegInf}, nil
		}
		lh, lmax, err := walk(n.left)
		if err != nil {
			return 0, lmax, err
		}
		rh, rmax, err := walk(n.right)
		if err != nil {
			return 0, rmax, err
		}
		if n.left != nil && t.cmpKey(n.left.iv.Lo, n.left.id, n) >= 0 {
			return 0, lmax, fmt.Errorf("augtree: left key >= node key at id %d", n.id)
		}
		if n.right != nil && t.cmpKey(n.right.iv.Lo, n.right.id, n) <= 0 {
			return 0, rmax, fmt.Errorf("augtree: right key <= node key at id %d", n.id)
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if n.height != h {
			return 0, lmax, fmt.Errorf("augtree: height %d != actual %d at id %d", n.height, h, n.id)
		}
		if lh-rh > 1 || rh-lh > 1 {
			return 0, lmax, fmt.Errorf("augtree: unbalanced at id %d", n.id)
		}
		want := n.iv.Hi
		if n.left != nil && t.cmpHi(n.left.maxHi, want) > 0 {
			want = n.left.maxHi
		}
		if n.right != nil && t.cmpHi(n.right.maxHi, want) > 0 {
			want = n.right.maxHi
		}
		if t.cmpHi(n.maxHi, want) != 0 {
			return 0, lmax, fmt.Errorf("augtree: maxHi stale at id %d", n.id)
		}
		return h, n.maxHi, nil
	}
	_, _, err := walk(t.root)
	return err
}
