package augtree

import (
	"math/rand"
	"reflect"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
)

// adapter gives the tree the ivindex.Index interface.
type adapter struct{ *Tree[int64] }

func (adapter) Name() string { return "augtree" }

func TestConformance(t *testing.T) {
	ivindex.Run(t, func() ivindex.Index {
		return adapter{New(ivindex.Int64Cmp)}
	}, true)
}

func TestInvariantsUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := New(ivindex.Int64Cmp)
	var live []ID
	next := ID(0)
	for op := 0; op < 600; op++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			iv := ivindex.RandomInterval(rng, 100, true)
			if err := tr.Insert(next, iv); err != nil {
				t.Fatal(err)
			}
			live = append(live, next)
			next++
		} else {
			i := rng.Intn(len(live))
			if err := tr.Delete(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if op%50 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBalancedHeight(t *testing.T) {
	tr := New(ivindex.Int64Cmp)
	const n = 1024
	for i := int64(0); i < n; i++ { // sorted insertion
		if err := tr.Insert(ID(i), interval.Closed(i*3, i*3+10)); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Height(); h > 14 {
		t.Errorf("height %d for %d sorted inserts; AVL should be logarithmic", h, n)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStringDomain(t *testing.T) {
	strCmp := func(a, b string) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	tr := New(strCmp)
	if err := tr.Insert(1, interval.Closed("b", "m")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(2, interval.AtLeast("k")); err != nil {
		t.Fatal(err)
	}
	got := tr.Stab("kiwi")
	if !reflect.DeepEqual(got, []markset.ID{1, 2}) {
		t.Fatalf("Stab(kiwi) = %v", got)
	}
}
