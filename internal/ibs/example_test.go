package ibs_test

import (
	"fmt"

	"predmatch/internal/ibs"
	"predmatch/internal/interval"
)

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Example indexes a handful of range predicates and stabs the tree with
// attribute values, as the paper's rule system does per tuple.
func Example() {
	tree := ibs.New(cmpInt)
	_ = tree.Insert(1, interval.Closed(20000, 30000)) // 20000 <= salary <= 30000
	_ = tree.Insert(2, interval.Less(20000))          // salary < 20000
	_ = tree.Insert(3, interval.Point(25000))         // salary = 25000

	fmt.Println(tree.Stab(15000))
	fmt.Println(tree.Stab(25000))
	fmt.Println(tree.Stab(20000))
	// Output:
	// [2]
	// [1 3]
	// [1]
}

func ExampleTree_Delete() {
	tree := ibs.New(cmpInt)
	_ = tree.Insert(1, interval.Closed(0, 10))
	_ = tree.Insert(2, interval.Closed(5, 15))
	_ = tree.Delete(1)
	fmt.Println(tree.Stab(7), tree.Len())
	// Output: [2] 1
}

func ExampleTree_Overlapping() {
	tree := ibs.New(cmpInt)
	_ = tree.Insert(1, interval.ClosedOpen(9, 12))  // meeting 9:00-12:00
	_ = tree.Insert(2, interval.ClosedOpen(13, 14)) // meeting 13:00-14:00
	fmt.Println(tree.Overlapping(interval.ClosedOpen(11, 13)))
	fmt.Println(tree.Overlapping(interval.ClosedOpen(12, 13)))
	// Output:
	// [1]
	// []
}
