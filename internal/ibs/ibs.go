// Package ibs implements the interval binary search tree (IBS-tree) of
// Hanson, Chaabouni, Kim and Wang, "A Predicate Matching Algorithm for
// Database Rule Systems", SIGMOD 1990, Section 4.
//
// An IBS-tree is a binary search tree over interval endpoint values in
// which every node carries three mark sets:
//
//   - '=' : identifiers of intervals that overlap the node's value;
//   - '<' : identifiers of intervals that cover the entire routing range
//     of the node's left subtree (every value that would be inserted
//     into the left subtree lies within the interval);
//   - '>' : symmetric, for the right subtree.
//
// A stabbing query for a point X (paper Figure 4, Stab here) walks a
// single root-to-leaf path, unioning the '<' set when it turns left, the
// '>' set when it turns right, and the '=' set when it lands on X —
// O(log N + L) for N intervals of which L overlap X. Unlike segment trees
// and static interval trees, the IBS-tree supports on-line insertion and
// deletion of intervals, including point intervals (equality predicates)
// and intervals with unbounded ends, on any totally ordered domain for
// which a {<, =, >} comparator exists.
//
// The tree can be kept balanced: rotations adjust the mark sets using the
// rules of the paper's Figure 6 (see rotate.go). The paper's own prototype
// left balancing unimplemented; here both modes are available (Balanced
// option) and benchmarked against each other.
//
// # Deviations from the paper
//
// Deletion follows the spirit of the paper's Section 4.2 procedure but is
// implemented defensively: every interval whose marks could be invalidated
// by removing an endpoint node (marks on the node itself, on the spliced
// predecessor, or marks whose routing range is bounded by a moving value)
// is unmarked before the structural change and re-marked afterwards. A
// per-interval registry of mark locations makes unmarking exact even after
// arbitrary rotations, where marks no longer sit on the two canonical
// insertion paths. See remove.go and DESIGN.md.
package ibs

import (
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// ID identifies an interval stored in the tree. In the predicate-matching
// scheme of the paper an ID names a predicate clause.
type ID = markset.ID

// slot indexes the three mark sets of a node.
type slot uint8

const (
	slotLT slot = iota // '<' : marks covering the left subtree's range
	slotEQ             // '=' : marks overlapping the node value
	slotGT             // '>' : marks covering the right subtree's range
)

func (s slot) String() string {
	switch s {
	case slotLT:
		return "<"
	case slotEQ:
		return "="
	case slotGT:
		return ">"
	}
	return "?"
}

// node is one IBS-tree node: an endpoint value, the three mark sets, and
// the sets of intervals for which the value is a finite lower or upper
// endpoint (the endpoint reference counts that drive node removal).
type node[T any] struct {
	value       T
	marks       [3]markset.Set
	lo, hi      markset.Set
	left, right *node[T]
	height      int32
}

// markLoc records where one mark of an interval lives.
type markLoc[T any] struct {
	n *node[T]
	s slot
}

// record is the per-interval registry entry: the interval itself plus the
// location of every mark currently placed for it.
type record[T any] struct {
	iv    interval.Interval[T]
	marks []markLoc[T]
}

// Tree is an IBS-tree over domain T. It is not safe for concurrent use;
// the predicate index in internal/core adds locking at its own level.
type Tree[T any] struct {
	cmp      interval.Cmp[T]
	newSet   markset.Factory
	balanced bool
	instr    *Counters // optional; shared across clones (see metrics.go)
	root     *node[T]
	recs     map[ID]*record[T]
	nodes    int
	marks    int // total marks currently placed (space accounting)

	// universal holds intervals unbounded on both ends. They match every
	// query point but have no finite endpoint to hang marks on (an empty
	// tree has no nodes at all), so they are kept out of the node marks
	// and appended to every stab result instead.
	universal map[ID]bool
}

// Option configures a Tree.
type Option func(*config)

type config struct {
	newSet   markset.Factory
	balanced bool
	instr    *Counters
}

// Balanced enables AVL balancing with the paper's Figure-6 mark rotation
// rules. The paper's own measurements (Figures 7–8) used an unbalanced
// tree with random insertion order; benchmarks here cover both.
func Balanced(on bool) Option { return func(c *config) { c.balanced = on } }

// MarkSets selects the mark-set representation (markset.NewSlice by
// default; markset.NewAVL matches the paper's O(log^2 N) analysis).
func MarkSets(f markset.Factory) Option { return func(c *config) { c.newSet = f } }

// New returns an empty IBS-tree using cmp as the total order on T.
func New[T any](cmp interval.Cmp[T], opts ...Option) *Tree[T] {
	c := config{newSet: markset.NewSlice, balanced: true}
	for _, o := range opts {
		o(&c)
	}
	return &Tree[T]{
		cmp:       cmp,
		newSet:    c.newSet,
		balanced:  c.balanced,
		instr:     c.instr,
		recs:      make(map[ID]*record[T]),
		universal: make(map[ID]bool),
	}
}

// Len returns the number of intervals currently indexed.
func (t *Tree[T]) Len() int { return len(t.recs) }

// NodeCount returns the number of endpoint nodes in the tree.
func (t *Tree[T]) NodeCount() int { return t.nodes }

// MarkerCount returns the total number of marks placed in the tree, the
// space measure of the paper's Section 5.1 (O(N log N) worst case, O(N)
// for non-overlapping intervals).
func (t *Tree[T]) MarkerCount() int { return t.marks }

// Height returns the height of the tree (0 when empty).
func (t *Tree[T]) Height() int { return int(height(t.root)) }

// Balanced reports whether AVL balancing is enabled.
func (t *Tree[T]) Balanced() bool { return t.balanced }

// Get returns the interval stored under id.
func (t *Tree[T]) Get(id ID) (interval.Interval[T], bool) {
	rec, ok := t.recs[id]
	if !ok {
		return interval.Interval[T]{}, false
	}
	return rec.iv, true
}

// Each calls fn for every (id, interval) pair until fn returns false.
func (t *Tree[T]) Each(fn func(ID, interval.Interval[T]) bool) {
	for id, rec := range t.recs {
		if !fn(id, rec.iv) {
			return
		}
	}
}

// Insert adds iv under identifier id. It returns an error if the interval
// is malformed or id is already present. Insertion is the paper's
// insertPredicate: the two finite endpoints are inserted as tree values
// (rebalancing if configured), then the addLeft and addRight walks place
// the marks for the interval.
func (t *Tree[T]) Insert(id ID, iv interval.Interval[T]) error {
	if err := iv.Validate(t.cmp); err != nil {
		return err
	}
	if _, dup := t.recs[id]; dup {
		return fmt.Errorf("ibs: duplicate interval id %d", id)
	}
	rec := &record[T]{iv: iv}
	t.recs[id] = rec

	// Intervals unbounded on both ends match every point; track them
	// separately (see the universal field).
	if iv.Lo.Kind == interval.NegInf && iv.Hi.Kind == interval.PosInf {
		t.universal[id] = true
		return nil
	}

	// Phase 1: make sure endpoint nodes exist. New nodes carry empty mark
	// sets, which preserves every existing interval's marks (routing
	// ranges are defined by ancestor values, and queries that previously
	// fell off at the new node's position collect the same path marks).
	if iv.Lo.Kind == interval.Finite {
		n := t.insertValue(iv.Lo.Value)
		n.lo.Add(id)
	}
	if iv.Hi.Kind == interval.Finite {
		n := t.insertValue(iv.Hi.Value)
		n.hi.Add(id)
	}

	// Phase 2: place marks along the two endpoint search paths.
	t.addLeft(id, rec, t.root, interval.Above[T]())
	t.addRight(id, rec, t.root, interval.Below[T]())
	return nil
}

// Delete removes the interval stored under id: all of its marks are
// removed, and endpoint nodes no longer referenced by any interval are
// structurally deleted (rebalancing if configured).
func (t *Tree[T]) Delete(id ID) error {
	rec, ok := t.recs[id]
	if !ok {
		return fmt.Errorf("ibs: unknown interval id %d", id)
	}
	t.unmarkAll(id, rec)
	iv := rec.iv
	delete(t.recs, id)
	if t.universal[id] {
		delete(t.universal, id)
		return nil
	}

	// Drop endpoint references first so a shared endpoint node of a point
	// interval is handled once.
	if iv.Lo.Kind == interval.Finite {
		if n := t.find(iv.Lo.Value); n != nil {
			n.lo.Remove(id)
		}
	}
	if iv.Hi.Kind == interval.Finite {
		if n := t.find(iv.Hi.Value); n != nil {
			n.hi.Remove(id)
		}
	}
	if iv.Lo.Kind == interval.Finite {
		t.removeValueIfUnused(iv.Lo.Value)
	}
	if iv.Hi.Kind == interval.Finite && !iv.IsPoint(t.cmp) {
		t.removeValueIfUnused(iv.Hi.Value)
	}
	return nil
}

// Stab returns the identifiers of all intervals containing x, in
// ascending order. This is the paper's findIntervals (Figure 4).
func (t *Tree[T]) Stab(x T) []ID {
	return t.StabAppend(x, nil)
}

// StabAppend appends the identifiers of all intervals containing x to
// dst and returns it, allowing allocation-free reuse across queries.
// The result is sorted and duplicate-free within the appended region.
//
// Counting is done in locals and flushed as a handful of atomic adds
// per query (see Counters), keeping the instrumented walk as cheap as
// the bare one.
func (t *Tree[T]) StabAppend(x T, dst []ID) []ID {
	start := len(dst)
	for id := range t.universal {
		dst = append(dst, id)
	}
	var visited, cmps int
	n := t.root
	for n != nil {
		visited++
		cmps++
		c := t.cmp(x, n.value)
		switch {
		case c == 0:
			n.marks[slotEQ].Each(func(id ID) bool {
				dst = append(dst, id)
				return true
			})
			n = nil
		case c < 0:
			n.marks[slotLT].Each(func(id ID) bool {
				dst = append(dst, id)
				return true
			})
			n = n.left
		default:
			n.marks[slotGT].Each(func(id ID) bool {
				dst = append(dst, id)
				return true
			})
			n = n.right
		}
	}
	dst, dcmps := dedupeSortedCount(dst, start)
	if t.instr != nil {
		t.instr.Stabs.Inc()
		t.instr.NodesVisited.Add(uint64(visited))
		t.instr.Comparisons.Add(uint64(cmps + dcmps))
	}
	return dst
}

// StabFunc calls fn for every interval containing x. Identifiers may be
// reported in any order; each matching identifier is reported exactly
// once per slot it appears in on the search path, which after rotations
// can occasionally mean twice — callers needing exact sets should use
// Stab/StabAppend.
func (t *Tree[T]) StabFunc(x T, fn func(ID) bool) {
	n := t.root
	stop := false
	visit := func(id ID) bool {
		if !fn(id) {
			stop = true
		}
		return !stop
	}
	for id := range t.universal {
		if !visit(id) {
			return
		}
	}
	for n != nil && !stop {
		c := t.cmp(x, n.value)
		switch {
		case c == 0:
			n.marks[slotEQ].Each(visit)
			return
		case c < 0:
			n.marks[slotLT].Each(visit)
			n = n.left
		default:
			n.marks[slotGT].Each(visit)
			n = n.right
		}
	}
}

// dedupeSorted sorts dst[start:] and removes duplicates in place.
func dedupeSorted(dst []ID, start int) []ID {
	dst, _ = dedupeSortedCount(dst, start)
	return dst
}

// dedupeSortedCount is dedupeSorted plus the number of identifier
// comparisons spent, which feeds the Comparisons counter: the sort term
// is the per-query cost of the L overlapping intervals in the paper's
// O(log N + L) bound.
func dedupeSortedCount(dst []ID, start int) ([]ID, int) {
	s := dst[start:]
	if len(s) < 2 {
		return dst, 0
	}
	cmps := 0
	// Insertion sort: collected sets are already sorted runs, and result
	// sizes are small (L overlapping intervals).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0; j-- {
			cmps++
			if s[j] >= s[j-1] {
				break
			}
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	w := 1
	for i := 1; i < len(s); i++ {
		cmps++
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return dst[:start+w], cmps
}

// newNode allocates a node with empty mark and endpoint sets.
func (t *Tree[T]) newNode(v T) *node[T] {
	return &node[T]{
		value:  v,
		marks:  [3]markset.Set{t.newSet(), t.newSet(), t.newSet()},
		lo:     t.newSet(),
		hi:     t.newSet(),
		height: 1,
	}
}

// find returns the node holding value v, or nil.
func (t *Tree[T]) find(v T) *node[T] {
	n := t.root
	for n != nil {
		c := t.cmp(v, n.value)
		switch {
		case c == 0:
			return n
		case c < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil
}

// insertValue inserts v as a tree value if absent and returns its node.
// Rotations performed while rebalancing adjust existing marks but never
// change any node's value, so the returned pointer stays valid.
func (t *Tree[T]) insertValue(v T) *node[T] {
	var out *node[T]
	t.root = t.insertValueRec(t.root, v, &out)
	return out
}

func (t *Tree[T]) insertValueRec(n *node[T], v T, out **node[T]) *node[T] {
	if n == nil {
		nn := t.newNode(v)
		*out = nn
		t.nodes++
		return nn
	}
	c := t.cmp(v, n.value)
	switch {
	case c == 0:
		*out = n
		return n
	case c < 0:
		n.left = t.insertValueRec(n.left, v, out)
	default:
		n.right = t.insertValueRec(n.right, v, out)
	}
	if t.balanced {
		return t.rebalance(n)
	}
	n.fixHeight()
	return n
}

func height[T any](n *node[T]) int32 {
	if n == nil {
		return 0
	}
	return n.height
}

func (n *node[T]) fixHeight() {
	l, r := height(n.left), height(n.right)
	if l > r {
		n.height = l + 1
	} else {
		n.height = r + 1
	}
}
