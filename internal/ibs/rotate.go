package ibs

// This file implements AVL rebalancing with the mark adjustments of the
// paper's Section 4.3 (Figures 5 and 6). A rotation changes which subtree
// ranges the '<' and '>' slots of the two pivot nodes describe, so marks
// must be copied, moved or dropped to keep every stabbing query's result
// unchanged.
//
// For a single right rotation about z (y = z.left; subtrees A = y.left,
// B = y.right, C = z.right):
//
//	     z                 y
//	    / \               / \
//	   y   C    ==>      A   z
//	  / \                   / \
//	 A   B                 B   C
//
//	1. Every mark in '<' of z (it covered A ∪ {y} ∪ B) is copied to '<'
//	   and '=' of y: after the rotation y's left subtree is A and queries
//	   for y's own value no longer pass through z.
//	2. A mark in '>' of y but not in '>' of z covered only B; B becomes
//	   z's left subtree, so the mark moves to '<' of z.
//	3. A mark in both '>' of y and '>' of z covers B, z's value and C —
//	   exactly y's new right subtree — so it stays in '>' of y and the
//	   now-redundant copies in '=' and '>' of z are dropped.
//
// These transformations preserve soundness (a mark never claims more
// coverage than its interval has: rule 1's additions cover A and y by the
// pre-rotation meaning of '<' of z; rule 2's moved marks cover B) and
// completeness (the union of slots collected along any query path is
// unchanged or grows only by identifiers whose intervals do contain the
// query point). They do not require marks to sit on the canonical
// insertion paths, which is why deletion uses the mark registry rather
// than re-walking paths.

// rotateRight rotates right about z and returns the new subtree root.
func (t *Tree[T]) rotateRight(z *node[T]) *node[T] {
	if t.instr != nil {
		t.instr.Rotations.Inc()
	}
	y := z.left

	// Snapshot the slots the rules read before mutating anything.
	zLT := z.marks[slotLT].IDs()
	yGT := y.marks[slotGT].IDs()

	// Rule 1: copy '<' of z into '<' and '=' of y (and keep it in '<' of
	// z, which afterwards describes only B — still covered).
	for _, id := range zLT {
		t.mark(y, slotLT, id)
		t.mark(y, slotEQ, id)
	}
	for _, id := range yGT {
		if z.marks[slotGT].Has(id) {
			// Rule 3: stays in '>' of y; drop redundant copies on z.
			t.unmark(z, slotEQ, id)
			t.unmark(z, slotGT, id)
		} else {
			// Rule 2: move from '>' of y to '<' of z.
			t.unmark(y, slotGT, id)
			t.mark(z, slotLT, id)
		}
	}

	z.left = y.right
	y.right = z
	z.fixHeight()
	y.fixHeight()
	return y
}

// rotateLeft is the mirror image of rotateRight, about z with y = z.right.
func (t *Tree[T]) rotateLeft(z *node[T]) *node[T] {
	if t.instr != nil {
		t.instr.Rotations.Inc()
	}
	y := z.right

	zGT := z.marks[slotGT].IDs()
	yLT := y.marks[slotLT].IDs()

	for _, id := range zGT {
		t.mark(y, slotGT, id)
		t.mark(y, slotEQ, id)
	}
	for _, id := range yLT {
		if z.marks[slotLT].Has(id) {
			t.unmark(z, slotEQ, id)
			t.unmark(z, slotLT, id)
		} else {
			t.unmark(y, slotLT, id)
			t.mark(z, slotGT, id)
		}
	}

	z.right = y.left
	y.left = z
	z.fixHeight()
	y.fixHeight()
	return y
}

// rebalance restores the AVL balance condition at n, applying single or
// double rotations (a double rotation is two singles, as in the paper).
func (t *Tree[T]) rebalance(n *node[T]) *node[T] {
	n.fixHeight()
	switch bf := height(n.left) - height(n.right); {
	case bf > 1:
		if height(n.left.left) < height(n.left.right) {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	case bf < -1:
		if height(n.right.right) < height(n.right.left) {
			n.right = t.rotateRight(n.right)
		}
		return t.rotateLeft(n)
	}
	return n
}
