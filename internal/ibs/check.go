package ibs

import (
	"fmt"
	"sort"
	"strings"

	"predmatch/internal/interval"
)

// CheckInvariants exhaustively verifies the tree. It is exported for use
// by tests, fuzzing harnesses and debugging sessions; it is O(N * M) in
// nodes N and intervals M and is never called on hot paths.
//
// The checks are:
//
//  1. Search-tree order, height bookkeeping and (when enabled) the AVL
//     balance condition.
//  2. Mark soundness: an id in '=' of a node implies the interval contains
//     the node's value; an id in '<' ('>') implies the interval covers the
//     entire routing range of the left (right) subtree.
//  3. Registry consistency: the marks recorded for each interval are
//     exactly the marks present in the tree, and the global marker count
//     matches.
//  4. Endpoint references: a node's lo/hi sets name exactly the intervals
//     having the node's value as their finite lower/upper endpoint, and
//     every finite endpoint of every interval has a node.
//  5. Completeness and exactness of stabbing: for every node value v, the
//     marks collected along the search path to v equal the set of
//     intervals containing v; for every leaf gap (routing range of a nil
//     child), the marks collected along the path equal the set of
//     intervals covering that whole open range. Because every finite
//     endpoint is a node value, an interval either covers a leaf gap
//     entirely or not at all, so these finitely many probes cover every
//     possible query point.
func (t *Tree[T]) CheckInvariants() error {
	var errs []string
	fail := func(format string, args ...any) {
		if len(errs) < 20 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
	}

	// Expected marker locations per interval, gathered from the tree.
	type loc struct {
		n *node[T]
		s slot
	}
	seen := make(map[ID][]loc)
	total := 0

	var walk func(n *node[T], lo, hi interval.Bound[T]) int32
	walk = func(n *node[T], lo, hi interval.Bound[T]) int32 {
		if n == nil {
			return 0
		}
		if lo.Kind == interval.Finite && t.cmp(n.value, lo.Value) <= 0 {
			fail("bst order violated at %v (lower bound %v)", n.value, lo.Value)
		}
		if hi.Kind == interval.Finite && t.cmp(n.value, hi.Value) >= 0 {
			fail("bst order violated at %v (upper bound %v)", n.value, hi.Value)
		}
		lh := walk(n.left, lo, finiteBound(n.value))
		rh := walk(n.right, finiteBound(n.value), hi)
		h := max32(lh, rh) + 1
		if n.height != h {
			fail("height bookkeeping wrong at %v: stored %d, actual %d", n.value, n.height, h)
		}
		if t.balanced && (lh-rh > 1 || rh-lh > 1) {
			fail("avl balance violated at %v: |%d - %d| > 1", n.value, lh, rh)
		}

		// Mark soundness.
		n.marks[slotEQ].Each(func(id ID) bool {
			rec, ok := t.recs[id]
			if !ok {
				fail("mark '=' at %v references unknown id %d", n.value, id)
			} else if !rec.iv.Contains(t.cmp, n.value) {
				fail("unsound '=' mark: id %d %v does not contain %v", id, rec.iv, n.value)
			}
			seen[id] = append(seen[id], loc{n, slotEQ})
			total++
			return true
		})
		n.marks[slotLT].Each(func(id ID) bool {
			rec, ok := t.recs[id]
			if !ok {
				fail("mark '<' at %v references unknown id %d", n.value, id)
			} else if !rec.iv.CoversOpenRange(t.cmp, lo, finiteBound(n.value)) {
				fail("unsound '<' mark: id %d %v does not cover (%v, %v)", id, rec.iv, lo, n.value)
			}
			seen[id] = append(seen[id], loc{n, slotLT})
			total++
			return true
		})
		n.marks[slotGT].Each(func(id ID) bool {
			rec, ok := t.recs[id]
			if !ok {
				fail("mark '>' at %v references unknown id %d", n.value, id)
			} else if !rec.iv.CoversOpenRange(t.cmp, finiteBound(n.value), hi) {
				fail("unsound '>' mark: id %d %v does not cover (%v, %v)", id, rec.iv, n.value, hi)
			}
			seen[id] = append(seen[id], loc{n, slotGT})
			total++
			return true
		})

		// Endpoint references.
		n.lo.Each(func(id ID) bool {
			rec, ok := t.recs[id]
			if !ok {
				fail("lo endpoint set at %v references unknown id %d", n.value, id)
			} else if rec.iv.Lo.Kind != interval.Finite || t.cmp(rec.iv.Lo.Value, n.value) != 0 {
				fail("lo endpoint set at %v wrongly includes id %d %v", n.value, id, rec.iv)
			}
			return true
		})
		n.hi.Each(func(id ID) bool {
			rec, ok := t.recs[id]
			if !ok {
				fail("hi endpoint set at %v references unknown id %d", n.value, id)
			} else if rec.iv.Hi.Kind != interval.Finite || t.cmp(rec.iv.Hi.Value, n.value) != 0 {
				fail("hi endpoint set at %v wrongly includes id %d %v", n.value, id, rec.iv)
			}
			return true
		})
		return h
	}
	walk(t.root, interval.Below[T](), interval.Above[T]())

	// Registry consistency.
	if total != t.marks {
		fail("marker count mismatch: tree has %d, accounted %d", total, t.marks)
	}
	for id, rec := range t.recs {
		got := seen[id]
		if len(got) != len(rec.marks) {
			fail("registry mismatch for id %d: tree has %d marks, registry %d", id, len(got), len(rec.marks))
			continue
		}
		for _, l := range rec.marks {
			if !l.n.marks[l.s].Has(id) {
				fail("registry for id %d lists mark %s at %v not present in tree", id, l.s, l.n.value)
			}
		}
		// Registry entries must be distinct locations.
		for i := 0; i < len(rec.marks); i++ {
			for j := i + 1; j < len(rec.marks); j++ {
				if rec.marks[i] == rec.marks[j] {
					fail("registry for id %d has duplicate location %s at %v", id, rec.marks[i].s, rec.marks[i].n.value)
				}
			}
		}
		// Every finite endpoint must have a node referencing the interval.
		if rec.iv.Lo.Kind == interval.Finite {
			if n := t.find(rec.iv.Lo.Value); n == nil || !n.lo.Has(id) {
				fail("lower endpoint %v of id %d has no referencing node", rec.iv.Lo.Value, id)
			}
		}
		if rec.iv.Hi.Kind == interval.Finite {
			if n := t.find(rec.iv.Hi.Value); n == nil || !n.hi.Has(id) {
				fail("upper endpoint %v of id %d has no referencing node", rec.iv.Hi.Value, id)
			}
		}
	}
	for id := range seen {
		if _, ok := t.recs[id]; !ok {
			fail("tree contains marks for deleted id %d", id)
		}
	}

	// Completeness/exactness by structural probing.
	expectAt := func(v T) map[ID]bool {
		want := make(map[ID]bool)
		for id, rec := range t.recs {
			if rec.iv.Contains(t.cmp, v) {
				want[id] = true
			}
		}
		return want
	}
	expectRange := func(lo, hi interval.Bound[T]) map[ID]bool {
		want := make(map[ID]bool)
		for id, rec := range t.recs {
			if rec.iv.CoversOpenRange(t.cmp, lo, hi) {
				want[id] = true
			}
		}
		return want
	}
	compare := func(where string, got, want map[ID]bool) {
		for id := range want {
			if !got[id] {
				fail("incomplete: id %d missing from stab %s", id, where)
			}
		}
		for id := range got {
			if !want[id] {
				fail("unsound: id %d wrongly reported by stab %s", id, where)
			}
		}
	}
	var probe func(n *node[T], lo, hi interval.Bound[T], collected map[ID]bool)
	probe = func(n *node[T], lo, hi interval.Bound[T], collected map[ID]bool) {
		if n == nil {
			compare(fmt.Sprintf("over gap (%v, %v)", lo, hi), collected, expectRange(lo, hi))
			return
		}
		atValue := copyMap(collected)
		n.marks[slotEQ].Each(func(id ID) bool { atValue[id] = true; return true })
		compare(fmt.Sprintf("at %v", n.value), atValue, expectAt(n.value))

		goLeft := copyMap(collected)
		n.marks[slotLT].Each(func(id ID) bool { goLeft[id] = true; return true })
		probe(n.left, lo, finiteBound(n.value), goLeft)

		goRight := copyMap(collected)
		n.marks[slotGT].Each(func(id ID) bool { goRight[id] = true; return true })
		probe(n.right, finiteBound(n.value), hi, goRight)
	}
	seed := make(map[ID]bool, len(t.universal))
	for id := range t.universal {
		if _, ok := t.recs[id]; !ok {
			fail("universal set contains deleted id %d", id)
		}
		seed[id] = true
	}
	probe(t.root, interval.Below[T](), interval.Above[T](), seed)

	if len(errs) > 0 {
		return fmt.Errorf("ibs invariants violated:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

func copyMap(m map[ID]bool) map[ID]bool {
	out := make(map[ID]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Dump renders the tree structure with mark sets, for debugging and for
// golden tests of small examples (such as the paper's Figure 2 data).
func (t *Tree[T]) Dump() string {
	var b strings.Builder
	var walk func(n *node[T], depth int)
	walk = func(n *node[T], depth int) {
		if n == nil {
			return
		}
		walk(n.right, depth+1)
		fmt.Fprintf(&b, "%s%v  <%v =%v >%v\n",
			strings.Repeat("    ", depth), n.value,
			fmtIDs(n.marks[slotLT].IDs()), fmtIDs(n.marks[slotEQ].IDs()), fmtIDs(n.marks[slotGT].IDs()))
		walk(n.left, depth+1)
	}
	walk(t.root, 0)
	return b.String()
}

func fmtIDs(ids []ID) string {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = fmt.Sprint(id)
	}
	sort.Strings(ss)
	return "{" + strings.Join(ss, ",") + "}"
}
