package ibs_test

import (
	"testing"

	"predmatch/internal/ibs"
	"predmatch/internal/ivindex"
)

// adapters run the IBS-tree through the same conformance harness as the
// comparator interval indexes (augtree, pst, rtree-1d).
type adapter struct {
	*ibs.Tree[int64]
	name string
}

func (a adapter) Name() string { return a.name }

func TestIvindexConformanceBalanced(t *testing.T) {
	ivindex.Run(t, func() ivindex.Index {
		return adapter{ibs.New(ivindex.Int64Cmp, ibs.Balanced(true)), "ibs"}
	}, true)
}

func TestIvindexConformanceUnbalanced(t *testing.T) {
	ivindex.Run(t, func() ivindex.Index {
		return adapter{ibs.New(ivindex.Int64Cmp, ibs.Balanced(false)), "ibs-unbalanced"}
	}, true)
}
