package ibs

import "predmatch/internal/interval"

// This file extends the IBS-tree with interval-overlap queries: find all
// stored intervals sharing at least one point with a query interval.
// The paper only needs point stabbing (a tuple's attribute value), but a
// range query falls out naturally and is what several of the conclusion's
// proposed applications (VLSI CAD, geographic data) actually want.
//
// Candidate generation is exact-superset: any stored interval I
// overlapping query Q either contains one of Q's finite boundary values
// (found by point stabs) or has a finite endpoint inside Q's closed value
// hull (found by walking the tree's nodes within the hull and collecting
// their endpoint-reference sets); intervals unbounded on both sides
// always overlap. Candidates are then filtered with the exact Overlaps
// test, so boundary-closedness corner cases cannot produce false
// positives.

// Overlapping returns the ids of all stored intervals that overlap q,
// in ascending order.
func (t *Tree[T]) Overlapping(q interval.Interval[T]) []ID {
	return t.OverlappingAppend(q, nil)
}

// OverlappingAppend appends the ids of all stored intervals overlapping
// q to dst; the appended region is sorted and duplicate-free. The cost is
// O(log N + K + M) where K is the number of endpoint nodes inside q's
// hull and M the number of results.
func (t *Tree[T]) OverlappingAppend(q interval.Interval[T], dst []ID) []ID {
	if err := q.Validate(t.cmp); err != nil {
		return dst
	}
	start := len(dst)

	// Universal intervals overlap everything.
	for id := range t.universal {
		dst = append(dst, id)
	}
	// Boundary stabs.
	if q.Lo.Kind == interval.Finite {
		dst = t.StabAppend(q.Lo.Value, dst)
	}
	if q.Hi.Kind == interval.Finite {
		dst = t.StabAppend(q.Hi.Value, dst)
	}
	// Endpoint-reference walk over the closed hull [q.Lo.Value,
	// q.Hi.Value] (unbounded sides extend to the tree's ends).
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		// Prune subtrees entirely outside the hull.
		aboveLo := q.Lo.Kind == interval.NegInf || t.cmp(n.value, q.Lo.Value) >= 0
		belowHi := q.Hi.Kind == interval.PosInf || t.cmp(n.value, q.Hi.Value) <= 0
		if aboveLo {
			walk(n.left)
		}
		if aboveLo && belowHi {
			n.lo.Each(func(id ID) bool { dst = append(dst, id); return true })
			n.hi.Each(func(id ID) bool { dst = append(dst, id); return true })
		}
		if belowHi {
			walk(n.right)
		}
	}
	walk(t.root)

	// Exact filter + dedupe.
	dst = dedupeSorted(dst, start)
	w := start
	for _, id := range dst[start:] {
		if rec, ok := t.recs[id]; ok && rec.iv.Overlaps(t.cmp, q) {
			dst[w] = id
			w++
		}
	}
	return dst[:w]
}
