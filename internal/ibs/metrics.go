package ibs

import "predmatch/internal/obs"

// Counters aggregates the tree's operational counters. All fields are
// optional (nil fields are skipped, and a nil *Counters disables
// counting entirely); the tree batches per-query tallies into single
// atomic adds at the end of each stab, so one Counters value can be
// shared by many trees — including copy-on-write clones — without
// per-node contention.
//
// NodesVisited and Comparisons together validate the paper's Section
// 5.1 claim that a stabbing query costs O(log N + L): nodes visited
// per stab should track the tree height reported by Height, and
// comparisons exceed it only by the insertion-sort work on the L
// collected identifiers.
type Counters struct {
	// Stabs counts StabAppend/Stab calls.
	Stabs *obs.Counter
	// NodesVisited counts tree nodes touched on stab root-to-leaf walks.
	NodesVisited *obs.Counter
	// Comparisons counts comparator calls during stab descent plus the
	// identifier comparisons spent sorting and deduplicating results.
	Comparisons *obs.Counter
	// Rotations counts AVL rotations (each double rotation counts as
	// two singles, matching the paper's Figure 6 accounting).
	Rotations *obs.Counter
}

// Instrument attaches c to the tree. Trees are instrumented through
// their construction Options so that index factories (internal/core)
// propagate the same Counters to every clone they build.
func Instrument(c *Counters) Option { return func(cfg *config) { cfg.instr = c } }

// RegisterCounters registers the standard IBS-tree counter families on
// reg and returns a Counters ready to pass to Instrument. A nil reg
// returns nil, which disables counting.
func RegisterCounters(reg *obs.Registry) *Counters {
	if reg == nil {
		return nil
	}
	return &Counters{
		Stabs: reg.Counter("predmatch_ibs_stabs_total",
			"Stabbing queries executed against IBS-trees."),
		NodesVisited: reg.Counter("predmatch_ibs_nodes_visited_total",
			"IBS-tree nodes visited by stabbing queries (the log N term of the paper's O(log N + L) bound)."),
		Comparisons: reg.Counter("predmatch_ibs_comparisons_total",
			"Comparator calls during stab descent plus result sort/dedupe comparisons (the +L term)."),
		Rotations: reg.Counter("predmatch_ibs_rotations_total",
			"AVL rotations performed while rebalancing IBS-trees (Figure 6 mark adjustments)."),
	}
}
