package ibs

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
)

func TestOverlappingBasic(t *testing.T) {
	tr := New(intCmp)
	mustInsert(t, tr, 1, interval.Closed(0, 10))
	mustInsert(t, tr, 2, interval.Closed(20, 30))
	mustInsert(t, tr, 3, interval.Point(15))
	mustInsert(t, tr, 4, interval.AtLeast(25))
	mustInsert(t, tr, 5, interval.All[int]())

	cases := []struct {
		q    interval.Interval[int]
		want []ID
	}{
		{interval.Closed(5, 16), []ID{1, 3, 5}},
		{interval.Closed(11, 14), []ID{5}},
		{interval.Point(10), []ID{1, 5}},
		{interval.Open(10, 15), []ID{5}},
		{interval.OpenClosed(10, 15), []ID{3, 5}},
		{interval.AtLeast(31), []ID{4, 5}},
		{interval.Less(0), []ID{5}},
		{interval.AtMost(0), []ID{1, 5}},
		{interval.All[int](), []ID{1, 2, 3, 4, 5}},
	}
	for _, tc := range cases {
		got := tr.Overlapping(tc.q)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Overlapping(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Malformed queries return nothing.
	if got := tr.Overlapping(interval.Closed(5, 1)); len(got) != 0 {
		t.Errorf("malformed query returned %v", got)
	}
}

// TestOverlappingBoundaryClosedness exercises the touching-end corner
// cases the exact filter must decide.
func TestOverlappingBoundaryClosedness(t *testing.T) {
	tr := New(intCmp)
	mustInsert(t, tr, 1, interval.ClosedOpen(0, 10)) // [0, 10)
	mustInsert(t, tr, 2, interval.OpenClosed(10, 20))

	if got := tr.Overlapping(interval.Point(10)); len(got) != 0 {
		t.Errorf("Point(10) = %v; neither interval contains 10", got)
	}
	if got := tr.Overlapping(interval.Closed(10, 10)); len(got) != 0 {
		t.Errorf("[10,10] = %v", got)
	}
	if got := tr.Overlapping(interval.Closed(9, 11)); !reflect.DeepEqual(got, []ID{1, 2}) {
		t.Errorf("[9,11] = %v", got)
	}
	// Touching closed ends share the point 20; open ends do not.
	if got := tr.Overlapping(interval.ClosedOpen(20, 30)); !reflect.DeepEqual(got, []ID{2}) {
		t.Errorf("[20,30) = %v; (10,20] shares 20", got)
	}
	if got := tr.Overlapping(interval.OpenClosed(20, 30)); len(got) != 0 {
		t.Errorf("(20,30] = %v; nothing shares a point above 20", got)
	}
}

// TestOverlappingRandomized cross-checks against brute force, including
// after deletions.
func TestOverlappingRandomized(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := New(intCmp, Balanced(seed%2 == 0))
		ref := newNaive()
		for i := 0; i < 150; i++ {
			iv := randomInterval(rng, 60)
			mustInsert(t, tr, ID(i), iv)
			ref.insert(ID(i), iv)
		}
		for i := 0; i < 150; i += 3 {
			if err := tr.Delete(ID(i)); err != nil {
				t.Fatal(err)
			}
			ref.delete(ID(i))
		}
		for trial := 0; trial < 300; trial++ {
			q := randomInterval(rng, 60)
			got := tr.Overlapping(q)
			var want []ID
			for id, iv := range ref.ivs {
				if iv.Overlaps(intCmp, q) {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Overlapping(%v) = %v, want %v", seed, q, got, want)
			}
		}
	}
}

func TestOverlappingEmptyTree(t *testing.T) {
	tr := New(intCmp)
	if got := tr.Overlapping(interval.Closed(1, 5)); len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
}
