package ibs

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// naiveIndex is the brute-force reference implementation.
type naiveIndex struct {
	ivs map[ID]interval.Interval[int]
}

func newNaive() *naiveIndex { return &naiveIndex{ivs: map[ID]interval.Interval[int]{}} }

func (n *naiveIndex) insert(id ID, iv interval.Interval[int]) { n.ivs[id] = iv }
func (n *naiveIndex) delete(id ID)                            { delete(n.ivs, id) }

func (n *naiveIndex) stab(x int) []ID {
	var out []ID
	for id, iv := range n.ivs {
		if iv.Contains(intCmp, x) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func mustInsert(t *testing.T, tr *Tree[int], id ID, iv interval.Interval[int]) {
	t.Helper()
	if err := tr.Insert(id, iv); err != nil {
		t.Fatalf("Insert(%d, %v): %v", id, iv, err)
	}
}

func checkStab(t *testing.T, tr *Tree[int], ref *naiveIndex, x int) {
	t.Helper()
	got := tr.Stab(x)
	want := ref.stab(x)
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Stab(%d) = %v, want %v\ntree:\n%s", x, got, want, tr.Dump())
	}
}

// paperIntervals is the interval set of the paper's Figure 2 (OCR of the
// figure is partially garbled; values follow the legible entries: A=[9,19],
// B=[2,7], C=[1,3), D=(17,20], E=[7,12], F=[18,18], G=(-inf,17]).
func paperIntervals() map[ID]interval.Interval[int] {
	return map[ID]interval.Interval[int]{
		1: interval.Closed(9, 19),
		2: interval.Closed(2, 7),
		3: interval.ClosedOpen(1, 3),
		4: interval.OpenClosed(17, 20),
		5: interval.Closed(7, 12),
		6: interval.Point(18),
		7: interval.AtMost(17),
	}
}

func TestFigure2Example(t *testing.T) {
	for _, balanced := range []bool{false, true} {
		t.Run(fmt.Sprintf("balanced=%v", balanced), func(t *testing.T) {
			tr := New(intCmp, Balanced(balanced))
			ref := newNaive()
			for id := ID(1); id <= 7; id++ {
				iv := paperIntervals()[id]
				mustInsert(t, tr, id, iv)
				ref.insert(id, iv)
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants after inserts: %v\n%s", err, tr.Dump())
			}
			for x := -5; x <= 25; x++ {
				checkStab(t, tr, ref, x)
			}
			if tr.Len() != 7 {
				t.Fatalf("Len() = %d, want 7", tr.Len())
			}
		})
	}
}

func TestPointIntervals(t *testing.T) {
	tr := New(intCmp)
	ref := newNaive()
	for i := 0; i < 50; i++ {
		iv := interval.Point(i * 2)
		mustInsert(t, tr, ID(i), iv)
		ref.insert(ID(i), iv)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for x := -1; x <= 101; x++ {
		checkStab(t, tr, ref, x)
	}
	// Point intervals never overlap each other: marker space must be Θ(N)
	// (one '=' mark per point).
	if got := tr.MarkerCount(); got != 50 {
		t.Errorf("MarkerCount() = %d for 50 disjoint points, want 50", got)
	}
}

func TestOpenEndedIntervals(t *testing.T) {
	cases := map[ID]interval.Interval[int]{
		1: interval.AtMost(10),  // (-inf, 10]
		2: interval.Less(5),     // (-inf, 5)
		3: interval.AtLeast(20), // [20, +inf)
		4: interval.Greater(25), // (25, +inf)
		5: interval.All[int](),  // (-inf, +inf)
		6: interval.Closed(8, 22),
	}
	for _, balanced := range []bool{false, true} {
		t.Run(fmt.Sprintf("balanced=%v", balanced), func(t *testing.T) {
			tr := New(intCmp, Balanced(balanced))
			ref := newNaive()
			for id := ID(1); id <= 6; id++ {
				mustInsert(t, tr, id, cases[id])
				ref.insert(id, cases[id])
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%v\n%s", err, tr.Dump())
			}
			for x := -10; x <= 40; x++ {
				checkStab(t, tr, ref, x)
			}
			// Deleting in arbitrary order must keep the rest intact.
			for _, id := range []ID{5, 1, 4, 6, 2, 3} {
				if err := tr.Delete(id); err != nil {
					t.Fatalf("Delete(%d): %v", id, err)
				}
				ref.delete(id)
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("after Delete(%d): %v\n%s", id, err, tr.Dump())
				}
				for x := -10; x <= 40; x += 3 {
					checkStab(t, tr, ref, x)
				}
			}
			if tr.Len() != 0 || tr.NodeCount() != 0 || tr.MarkerCount() != 0 {
				t.Fatalf("tree not empty after deleting all: len=%d nodes=%d marks=%d",
					tr.Len(), tr.NodeCount(), tr.MarkerCount())
			}
		})
	}
}

func TestInsertErrors(t *testing.T) {
	tr := New(intCmp)
	mustInsert(t, tr, 1, interval.Closed(1, 5))
	if err := tr.Insert(1, interval.Closed(2, 3)); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := tr.Insert(2, interval.Closed(5, 1)); err == nil {
		t.Error("inverted interval accepted")
	}
	if err := tr.Insert(3, interval.Open(4, 4)); err == nil {
		t.Error("empty interval (4,4) accepted")
	}
	if err := tr.Insert(4, interval.Interval[int]{Lo: interval.Above[int](), Hi: interval.Above[int]()}); err == nil {
		t.Error("+inf lower bound accepted")
	}
	if err := tr.Delete(99); err == nil {
		t.Error("deleting unknown id succeeded")
	}
}

func TestGetAndEach(t *testing.T) {
	tr := New(intCmp)
	want := interval.Closed(3, 9)
	mustInsert(t, tr, 7, want)
	got, ok := tr.Get(7)
	if !ok || got != want {
		t.Fatalf("Get(7) = %v, %v", got, ok)
	}
	if _, ok := tr.Get(8); ok {
		t.Fatal("Get(8) found nonexistent interval")
	}
	count := 0
	tr.Each(func(id ID, iv interval.Interval[int]) bool {
		count++
		return true
	})
	if count != 1 {
		t.Fatalf("Each visited %d intervals, want 1", count)
	}
}

func TestStabAppendReuse(t *testing.T) {
	tr := New(intCmp)
	mustInsert(t, tr, 1, interval.Closed(0, 10))
	mustInsert(t, tr, 2, interval.Closed(5, 15))
	buf := make([]ID, 0, 8)
	buf = tr.StabAppend(7, buf)
	if !reflect.DeepEqual(buf, []ID{1, 2}) {
		t.Fatalf("StabAppend(7) = %v", buf)
	}
	buf = buf[:0]
	buf = tr.StabAppend(12, buf)
	if !reflect.DeepEqual(buf, []ID{2}) {
		t.Fatalf("StabAppend(12) = %v", buf)
	}
}

func TestStabFunc(t *testing.T) {
	tr := New(intCmp)
	mustInsert(t, tr, 1, interval.Closed(0, 10))
	mustInsert(t, tr, 2, interval.Closed(5, 15))
	mustInsert(t, tr, 3, interval.Closed(20, 30))
	seen := map[ID]bool{}
	tr.StabFunc(7, func(id ID) bool { seen[id] = true; return true })
	if !seen[1] || !seen[2] || seen[3] {
		t.Fatalf("StabFunc(7) visited %v", seen)
	}
	// Early termination.
	calls := 0
	tr.StabFunc(7, func(id ID) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("StabFunc early-stop made %d calls, want 1", calls)
	}
}

// randomInterval produces the mix of predicate shapes from the paper:
// equality points, closed/open/half-open bounded intervals, and
// open-ended intervals.
func randomInterval(rng *rand.Rand, maxVal int) interval.Interval[int] {
	a := rng.Intn(maxVal)
	b := rng.Intn(maxVal)
	if a > b {
		a, b = b, a
	}
	switch rng.Intn(10) {
	case 0:
		return interval.Point(a)
	case 1:
		return interval.AtLeast(a)
	case 2:
		return interval.AtMost(b)
	case 3:
		return interval.Greater(a)
	case 4:
		return interval.Less(b + 1)
	case 5:
		if a == b {
			return interval.Point(a)
		}
		return interval.Open(a, b)
	case 6:
		if a == b {
			return interval.Point(a)
		}
		return interval.ClosedOpen(a, b)
	case 7:
		if a == b {
			return interval.Point(a)
		}
		return interval.OpenClosed(a, b)
	case 8:
		return interval.All[int]()
	default:
		return interval.Closed(a, b)
	}
}

// TestRandomizedAgainstNaive drives random insert/delete/stab sequences
// against the brute-force reference, across every configuration axis
// (balanced x mark-set representation), verifying full invariants
// periodically and query equivalence continuously.
func TestRandomizedAgainstNaive(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"balanced-slice", []Option{Balanced(true), MarkSets(markset.NewSlice)}},
		{"balanced-avl", []Option{Balanced(true), MarkSets(markset.NewAVL)}},
		{"unbalanced-slice", []Option{Balanced(false), MarkSets(markset.NewSlice)}},
		{"unbalanced-avl", []Option{Balanced(false), MarkSets(markset.NewAVL)}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				tr := New(intCmp, cfg.opts...)
				ref := newNaive()
				nextID := ID(0)
				live := []ID{}
				const maxVal = 60
				ops := 400
				if testing.Short() {
					ops = 120
				}
				for op := 0; op < ops; op++ {
					switch {
					case len(live) == 0 || rng.Intn(3) != 0:
						iv := randomInterval(rng, maxVal)
						id := nextID
						nextID++
						mustInsert(t, tr, id, iv)
						ref.insert(id, iv)
						live = append(live, id)
					default:
						i := rng.Intn(len(live))
						id := live[i]
						live = append(live[:i], live[i+1:]...)
						if err := tr.Delete(id); err != nil {
							t.Fatalf("seed %d op %d: Delete(%d): %v", seed, op, id, err)
						}
						ref.delete(id)
					}
					// Spot-check queries every operation.
					for i := 0; i < 5; i++ {
						checkStab(t, tr, ref, rng.Intn(maxVal+10)-5)
					}
					if op%25 == 0 {
						if err := tr.CheckInvariants(); err != nil {
							t.Fatalf("seed %d op %d: %v\n%s", seed, op, err, tr.Dump())
						}
					}
				}
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("seed %d final: %v", seed, err)
				}
				// Exhaustive final sweep.
				for x := -5; x <= maxVal+5; x++ {
					checkStab(t, tr, ref, x)
				}
				// Delete everything; the tree must drain completely.
				for _, id := range live {
					if err := tr.Delete(id); err != nil {
						t.Fatalf("drain Delete(%d): %v", id, err)
					}
					ref.delete(id)
				}
				if tr.Len() != 0 || tr.NodeCount() != 0 || tr.MarkerCount() != 0 {
					t.Fatalf("seed %d: tree not empty after drain: len=%d nodes=%d marks=%d",
						seed, tr.Len(), tr.NodeCount(), tr.MarkerCount())
				}
			}
		})
	}
}

// TestBalancedSortedInsertion verifies the payoff of Section 4.3: with
// balancing, sorted insertion order still yields logarithmic height,
// while the unbalanced tree degrades to a linear spine.
func TestBalancedSortedInsertion(t *testing.T) {
	const n = 512
	bal := New(intCmp, Balanced(true))
	unbal := New(intCmp, Balanced(false))
	ref := newNaive()
	for i := 0; i < n; i++ {
		iv := interval.Closed(i*10, i*10+5)
		mustInsert(t, bal, ID(i), iv)
		mustInsert(t, unbal, ID(i), iv)
		ref.insert(ID(i), iv)
	}
	if h := bal.Height(); h > 22 {
		t.Errorf("balanced height = %d for %d sorted intervals, want O(log n)", h, n)
	}
	if h := unbal.Height(); h < n {
		t.Errorf("unbalanced height = %d, expected a linear spine of %d", h, 2*n)
	}
	if err := bal.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for x := -5; x < n*10+10; x += 7 {
		checkStab(t, bal, ref, x)
		checkStab(t, unbal, ref, x)
	}
}

// TestMarkerSpaceDisjoint verifies the Section 5.1 observation: when
// intervals do not overlap, only O(N) markers are placed.
func TestMarkerSpaceDisjoint(t *testing.T) {
	const n = 256
	tr := New(intCmp, Balanced(true))
	for i := 0; i < n; i++ {
		mustInsert(t, tr, ID(i), interval.Closed(i*10, i*10+5))
	}
	if got, limit := tr.MarkerCount(), 4*n; got > limit {
		t.Errorf("disjoint intervals placed %d markers, want <= %d (O(N))", got, limit)
	}
}

// TestMarkerSpaceNested verifies that heavily overlapping (nested)
// intervals approach the O(N log N) worst case rather than O(N^2).
func TestMarkerSpaceNested(t *testing.T) {
	const n = 256
	tr := New(intCmp, Balanced(true))
	for i := 0; i < n; i++ {
		mustInsert(t, tr, ID(i), interval.Closed(i, 2*n-i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	markers := tr.MarkerCount()
	// log2(512) = 9; allow a generous constant.
	if limit := 40 * n; markers > limit {
		t.Errorf("nested intervals placed %d markers, want O(N log N) <= %d", markers, limit)
	}
	if markers < n {
		t.Errorf("nested intervals placed %d markers, impossibly few", markers)
	}
}

// TestSharedEndpoints exercises many intervals sharing lower bounds, the
// case the paper highlights as awkward for priority search trees and
// direct for IBS-trees.
func TestSharedEndpoints(t *testing.T) {
	tr := New(intCmp)
	ref := newNaive()
	id := ID(0)
	for i := 0; i < 10; i++ {
		iv := interval.Closed(100, 100+i*3)
		mustInsert(t, tr, id, iv)
		ref.insert(id, iv)
		id++
	}
	for i := 0; i < 10; i++ {
		iv := interval.Closed(80+i*2, 130)
		mustInsert(t, tr, id, iv)
		ref.insert(id, iv)
		id++
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for x := 70; x <= 140; x++ {
		checkStab(t, tr, ref, x)
	}
	// Delete the shared-lower-bound group; the rest must survive.
	for d := ID(0); d < 10; d++ {
		if err := tr.Delete(d); err != nil {
			t.Fatal(err)
		}
		ref.delete(d)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for x := 70; x <= 140; x++ {
		checkStab(t, tr, ref, x)
	}
}

// TestStringDomain verifies the paper's claim that IBS-trees work
// unmodified on any totally ordered domain — here, strings.
func TestStringDomain(t *testing.T) {
	strCmp := func(a, b string) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	tr := New(strCmp)
	if err := tr.Insert(1, interval.Closed("apple", "mango")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(2, interval.Point("banana")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(3, interval.AtLeast("kiwi")); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := tr.Stab("banana")
	if !reflect.DeepEqual(got, []ID{1, 2}) {
		t.Fatalf("Stab(banana) = %v, want [1 2]", got)
	}
	got = tr.Stab("lemon")
	if !reflect.DeepEqual(got, []ID{1, 3}) {
		t.Fatalf("Stab(lemon) = %v, want [1 3]", got)
	}
	got = tr.Stab("zebra")
	if !reflect.DeepEqual(got, []ID{3}) {
		t.Fatalf("Stab(zebra) = %v, want [3]", got)
	}
}

// TestDeleteReinsertCycle stresses the unmark/splice/re-mark machinery by
// repeatedly deleting and re-inserting in a dense overlapping set.
func TestDeleteReinsertCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tr := New(intCmp, Balanced(true))
	ref := newNaive()
	const n = 64
	for i := 0; i < n; i++ {
		iv := randomInterval(rng, 40)
		mustInsert(t, tr, ID(i), iv)
		ref.insert(ID(i), iv)
	}
	for cycle := 0; cycle < 30; cycle++ {
		id := ID(rng.Intn(n))
		if _, ok := tr.Get(id); !ok {
			continue
		}
		if err := tr.Delete(id); err != nil {
			t.Fatal(err)
		}
		ref.delete(id)
		iv := randomInterval(rng, 40)
		mustInsert(t, tr, id, iv)
		ref.insert(id, iv)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	for x := -2; x < 45; x++ {
		checkStab(t, tr, ref, x)
	}
}

func TestDumpSmoke(t *testing.T) {
	tr := New(intCmp)
	mustInsert(t, tr, 1, interval.Closed(1, 3))
	d := tr.Dump()
	if d == "" {
		t.Fatal("Dump returned empty string for non-empty tree")
	}
}

func TestSlotStringAndAccessors(t *testing.T) {
	tr := New(intCmp, Balanced(true))
	if !tr.Balanced() {
		t.Error("Balanced() = false")
	}
	if ub := New(intCmp, Balanced(false)); ub.Balanced() {
		t.Error("unbalanced Balanced() = true")
	}
	// slot String coverage via Dump of a marked tree plus direct checks.
	mustInsert(t, tr, 1, interval.Closed(1, 10))
	if s := tr.Dump(); s == "" {
		t.Error("Dump empty")
	}
}

func TestEachEarlyStop(t *testing.T) {
	tr := New(intCmp)
	mustInsert(t, tr, 1, interval.Point(1))
	mustInsert(t, tr, 2, interval.Point(2))
	mustInsert(t, tr, 3, interval.Point(3))
	count := 0
	tr.Each(func(ID, interval.Interval[int]) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("Each early stop visited %d", count)
	}
}

func TestStabFuncUniversalAndEqualityStops(t *testing.T) {
	tr := New(intCmp)
	mustInsert(t, tr, 1, interval.All[int]())
	mustInsert(t, tr, 2, interval.Point(5))
	// Early stop while visiting the universal set.
	calls := 0
	tr.StabFunc(5, func(ID) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop during universal visit made %d calls", calls)
	}
	// Equality landing collects the '=' slot.
	seen := map[ID]bool{}
	tr.StabFunc(5, func(id ID) bool { seen[id] = true; return true })
	if !seen[1] || !seen[2] {
		t.Fatalf("StabFunc(5) = %v", seen)
	}
	// Miss path: descend past equality into empty child.
	seen = map[ID]bool{}
	tr.StabFunc(7, func(id ID) bool { seen[id] = true; return true })
	if !seen[1] || seen[2] {
		t.Fatalf("StabFunc(7) = %v", seen)
	}
}

// TestCheckInvariantsDetectsCorruption corrupts trees in targeted ways
// and requires the checker to object — guarding the guard.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	build := func() *Tree[int] {
		tr := New(intCmp, Balanced(true))
		mustInsert(t, tr, 1, interval.Closed(5, 15))
		mustInsert(t, tr, 2, interval.Point(10))
		mustInsert(t, tr, 3, interval.AtLeast(12))
		return tr
	}
	// Baseline sanity.
	if err := build().CheckInvariants(); err != nil {
		t.Fatalf("clean tree flagged: %v", err)
	}
	// Foreign mark in an '=' slot (unsound + registry mismatch).
	tr := build()
	tr.root.marks[slotEQ].Add(99) //predmatchvet:ignore markdiscipline deliberate corruption to exercise CheckInvariants
	if err := tr.CheckInvariants(); err == nil {
		t.Error("foreign '=' mark not detected")
	}
	// Dropped mark (incomplete + registry mismatch).
	tr = build()
	for _, s := range []slot{slotLT, slotEQ, slotGT} {
		if tr.root.marks[s].Len() > 0 {
			//predmatchvet:ignore markdiscipline deliberate corruption to exercise CheckInvariants
			tr.root.marks[s].Remove(tr.root.marks[s].IDs()[0])
			break
		}
	}
	if err := tr.CheckInvariants(); err == nil {
		t.Error("dropped mark not detected")
	}
	// Corrupted height.
	tr = build()
	tr.root.height = 42
	if err := tr.CheckInvariants(); err == nil {
		t.Error("corrupted height not detected")
	}
	// Bogus endpoint reference.
	tr = build()
	tr.root.lo.Add(77)
	if err := tr.CheckInvariants(); err == nil {
		t.Error("bogus endpoint reference not detected")
	}
	// Marker count drift.
	tr = build()
	tr.marks += 5
	if err := tr.CheckInvariants(); err == nil {
		t.Error("marker count drift not detected")
	}
	// Universal set referencing a deleted id.
	tr = build()
	tr.universal[1234] = true
	if err := tr.CheckInvariants(); err == nil {
		t.Error("stale universal id not detected")
	}
}
