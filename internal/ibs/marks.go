package ibs

import "predmatch/internal/interval"

// This file implements mark placement and removal: the paper's addLeft
// (Figure 3) and its mirror addRight, plus the mark registry that lets
// deletion remove exactly the marks an interval owns even after rotations
// have moved them off the canonical insertion paths.
//
// Instead of the paper's rightUp/leftUp parent traversals, the routing
// bound of the current subtree is threaded down the recursion: when the
// walk turns left at a node, the node's value becomes the right routing
// bound of the subtree below (i.e. the value of rightUp for every node on
// that side), and symmetrically for left bounds.

// mark places id in slot s of n and records the location in the registry.
func (t *Tree[T]) mark(n *node[T], s slot, id ID) {
	if !n.marks[s].Add(id) {
		return
	}
	rec := t.recs[id]
	rec.marks = append(rec.marks, markLoc[T]{n: n, s: s})
	t.marks++
}

// unmark removes id from slot s of n and from the registry.
func (t *Tree[T]) unmark(n *node[T], s slot, id ID) {
	if !n.marks[s].Remove(id) {
		return
	}
	t.marks--
	rec := t.recs[id]
	for i := range rec.marks {
		if rec.marks[i].n == n && rec.marks[i].s == s {
			last := len(rec.marks) - 1
			rec.marks[i] = rec.marks[last]
			rec.marks = rec.marks[:last]
			return
		}
	}
	panic("ibs: mark registry out of sync")
}

// unmarkAll removes every mark owned by id.
func (t *Tree[T]) unmarkAll(id ID, rec *record[T]) {
	for _, loc := range rec.marks {
		loc.n.marks[loc.s].Remove(id)
	}
	t.marks -= len(rec.marks)
	rec.marks = rec.marks[:0]
}

// placeMarks runs both endpoint walks for an interval already present in
// the registry. Endpoint nodes must already exist in the tree.
func (t *Tree[T]) placeMarks(id ID, rec *record[T]) {
	t.addLeft(id, rec, t.root, interval.Above[T]())
	t.addRight(id, rec, t.root, interval.Below[T]())
}

// finiteBound wraps a routing value as an (exclusive) range bound.
func finiteBound[T any](v T) interval.Bound[T] {
	return interval.Bound[T]{Kind: interval.Finite, Value: v}
}

// addLeft descends toward the interval's lower endpoint, placing marks
// (paper Figure 3). rhi is the right routing bound of the subtree rooted
// at n — the value of the paper's rightUp(n), so the routing range of n's
// right subtree is the open range (n.value, rhi).
//
// An unbounded lower end compares below every node value, so the walk
// follows the left spine and terminates at nil without creating a node.
func (t *Tree[T]) addLeft(id ID, rec *record[T], n *node[T], rhi interval.Bound[T]) {
	iv := rec.iv
	for n != nil {
		c := -1
		if iv.Lo.Kind == interval.Finite {
			c = t.cmp(iv.Lo.Value, n.value)
		}
		switch {
		case c == 0:
			// Node value equals the lower endpoint. If the entire right
			// subtree routing range (n.value, rhi) lies within the
			// interval, one '>' mark covers it.
			if iv.CoversOpenRange(t.cmp, finiteBound(n.value), rhi) {
				t.mark(n, slotGT, id)
			}
			if iv.Lo.Closed {
				t.mark(n, slotEQ, id)
			}
			return
		case c > 0:
			// Node value below the lower endpoint: continue right. The
			// right routing bound is unchanged.
			n = n.right
		default:
			// Node value above the lower endpoint: mark and continue left.
			if iv.Contains(t.cmp, n.value) {
				t.mark(n, slotEQ, id)
			}
			if iv.CoversOpenRange(t.cmp, finiteBound(n.value), rhi) {
				t.mark(n, slotGT, id)
			}
			rhi = finiteBound(n.value)
			n = n.left
		}
	}
}

// addRight is the mirror of addLeft: it descends toward the interval's
// upper endpoint. rlo is the left routing bound of the subtree rooted at
// n (the paper's leftUp(n)), so n's left subtree routing range is the
// open range (rlo, n.value).
func (t *Tree[T]) addRight(id ID, rec *record[T], n *node[T], rlo interval.Bound[T]) {
	iv := rec.iv
	for n != nil {
		c := 1
		if iv.Hi.Kind == interval.Finite {
			c = t.cmp(iv.Hi.Value, n.value)
		}
		switch {
		case c == 0:
			if iv.CoversOpenRange(t.cmp, rlo, finiteBound(n.value)) {
				t.mark(n, slotLT, id)
			}
			if iv.Hi.Closed {
				t.mark(n, slotEQ, id)
			}
			return
		case c < 0:
			// Node value above the upper endpoint: continue left.
			n = n.left
		default:
			// Node value below the upper endpoint: mark and continue right.
			if iv.Contains(t.cmp, n.value) {
				t.mark(n, slotEQ, id)
			}
			if iv.CoversOpenRange(t.cmp, rlo, finiteBound(n.value)) {
				t.mark(n, slotLT, id)
			}
			rlo = finiteBound(n.value)
			n = n.right
		}
	}
}
