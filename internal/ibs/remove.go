package ibs

// This file implements structural removal of an endpoint node, the
// delicate part of interval deletion (paper Section 4.2). The paper's
// procedure swaps the node's value with its predecessor's and reinstalls
// the markers of intervals sharing the predecessor endpoint. With
// balancing enabled, marks can sit away from the canonical insertion
// paths, so this implementation is more conservative: it unmarks every
// interval whose marks the structural change could invalidate, performs a
// plain (rebalancing) BST deletion, and re-marks those intervals in the
// new shape. The affected set is:
//
//   - intervals with marks on the removed node x (its slots stop existing);
//   - when x has two children: intervals with marks on the predecessor y
//     and intervals having y's value as an endpoint (the value moves to
//     x's position, changing the search paths that reach it);
//   - intervals with '<' marks on the left spine of x.right and '>' marks
//     on the right spine of x.left: those marks describe routing ranges
//     bounded by x's value, which disappears (or becomes y's value).
//
// Everything else keeps its meaning: routing ranges are defined by
// ancestor values, and no other range mentions the removed value. The
// invariant checker (check.go) verifies the result node by node, and
// randomized property tests cross-check deletion against a naive matcher.

// removeValueIfUnused structurally deletes the node holding v when no
// remaining interval uses v as an endpoint.
func (t *Tree[T]) removeValueIfUnused(v T) {
	x := t.find(v)
	if x == nil || x.lo.Len() > 0 || x.hi.Len() > 0 {
		return
	}

	// Collect the affected interval set.
	affected := make(map[ID]*record[T])
	collect := func(s slot, n *node[T]) {
		n.marks[s].Each(func(id ID) bool {
			if rec, ok := t.recs[id]; ok {
				affected[id] = rec
			}
			return true
		})
	}
	collect(slotLT, x)
	collect(slotEQ, x)
	collect(slotGT, x)
	if x.left != nil && x.right != nil {
		y := x.left
		for y.right != nil {
			y = y.right
		}
		collect(slotLT, y)
		collect(slotEQ, y)
		collect(slotGT, y)
		for _, s := range []interface{ Each(func(ID) bool) }{y.lo, y.hi} {
			s.Each(func(id ID) bool {
				if rec, ok := t.recs[id]; ok {
					affected[id] = rec
				}
				return true
			})
		}
	}
	for m := x.right; m != nil; m = m.left {
		collect(slotLT, m)
	}
	for m := x.left; m != nil; m = m.right {
		collect(slotGT, m)
	}

	for id, rec := range affected {
		t.unmarkAll(id, rec)
	}

	t.root = t.removeNode(t.root, v)

	for id, rec := range affected {
		t.placeMarks(id, rec)
	}
}

// removeNode deletes the node holding value v from the subtree rooted at
// n using standard BST deletion, rebalancing on the way back up when
// balancing is enabled. The caller has already emptied the mark slots of
// the node being removed and of the spliced predecessor.
func (t *Tree[T]) removeNode(n *node[T], v T) *node[T] {
	if n == nil {
		return nil
	}
	c := t.cmp(v, n.value)
	switch {
	case c < 0:
		n.left = t.removeNode(n.left, v)
	case c > 0:
		n.right = t.removeNode(n.right, v)
	default:
		t.nodes--
		if n.left == nil {
			return n.right
		}
		if n.right == nil {
			return n.left
		}
		// Two children: splice out the predecessor and adopt its value
		// and endpoint-reference sets (the paper's value swap).
		var y *node[T]
		n.left, y = t.spliceMax(n.left)
		n.value = y.value
		n.lo, n.hi = y.lo, y.hi
	}
	if t.balanced {
		return t.rebalance(n)
	}
	n.fixHeight()
	return n
}

// spliceMax removes and returns the maximum node of the subtree rooted at
// n, rebalancing on unwind when balancing is enabled.
func (t *Tree[T]) spliceMax(n *node[T]) (root, max *node[T]) {
	if n.right == nil {
		return n.left, n
	}
	n.right, max = t.spliceMax(n.right)
	if t.balanced {
		return t.rebalance(n), max
	}
	n.fixHeight()
	return n, max
}
