package ibs

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"predmatch/internal/interval"
)

// opInterpreter drives a tree and the naive reference from a byte/word
// stream, shared by the fuzz target and the quick property. Each opcode
// is decoded into insert (with a shape and two bounds), delete (of a
// live interval picked by index), or a full-tree verification.
type opInterpreter struct {
	tr    *Tree[int]
	ref   *naiveIndex
	live  []ID
	next  ID
	fatal func(format string, args ...any)
}

func newOpInterpreter(balanced bool, fatal func(string, ...any)) *opInterpreter {
	return &opInterpreter{
		tr:    New(intCmp, Balanced(balanced)),
		ref:   newNaive(),
		fatal: fatal,
	}
}

// step consumes one operation descriptor. Values are reduced to a small
// domain so collisions (shared endpoints, duplicate intervals) are
// common.
func (oi *opInterpreter) step(op, rawA, rawB uint8) {
	a, b := int(rawA%40), int(rawB%40)
	if a > b {
		a, b = b, a
	}
	switch op % 8 {
	case 0, 1, 2, 3: // insert
		var iv interval.Interval[int]
		switch op % 4 {
		case 0:
			iv = interval.Point(a)
		case 1:
			iv = interval.Closed(a, b)
		case 2:
			if a == b {
				iv = interval.Point(a)
			} else {
				iv = interval.Open(a, b)
			}
		default:
			switch b % 3 {
			case 0:
				iv = interval.AtLeast(a)
			case 1:
				iv = interval.AtMost(a)
			default:
				iv = interval.All[int]()
			}
		}
		id := oi.next
		oi.next++
		if err := oi.tr.Insert(id, iv); err != nil {
			oi.fatal("Insert(%d, %v): %v", id, iv, err)
			return
		}
		oi.ref.insert(id, iv)
		oi.live = append(oi.live, id)
	case 4, 5: // delete
		if len(oi.live) == 0 {
			return
		}
		i := (int(rawA)*37 + int(rawB)) % len(oi.live)
		id := oi.live[i]
		oi.live = append(oi.live[:i], oi.live[i+1:]...)
		if err := oi.tr.Delete(id); err != nil {
			oi.fatal("Delete(%d): %v", id, err)
			return
		}
		oi.ref.delete(id)
	default: // stab probes
		for _, x := range []int{a - 1, a, a + 1, b, 45} {
			got := oi.tr.Stab(x)
			want := oi.ref.stab(x)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				oi.fatal("Stab(%d) = %v, want %v", x, got, want)
				return
			}
		}
	}
}

func (oi *opInterpreter) verify() {
	if err := oi.tr.CheckInvariants(); err != nil {
		oi.fatal("invariants: %v", err)
	}
}

// FuzzOps feeds arbitrary operation streams through both tree variants.
// Run with `go test -fuzz FuzzOps ./internal/ibs` for open-ended
// exploration; the seed corpus below runs as part of the normal suite.
func FuzzOps(f *testing.F) {
	f.Add([]byte{0, 5, 9, 1, 3, 30, 4, 0, 0, 6, 5, 5})
	f.Add([]byte{3, 0, 0, 3, 1, 1, 3, 2, 2, 4, 9, 9, 6, 1, 2})
	f.Add([]byte{1, 10, 20, 1, 15, 25, 1, 5, 30, 4, 1, 1, 6, 18, 22})
	f.Add([]byte{2, 7, 7, 0, 7, 7, 4, 0, 0, 4, 0, 0, 6, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, balanced := range []bool{true, false} {
			fatal := func(format string, args ...any) { t.Fatalf(format, args...) }
			oi := newOpInterpreter(balanced, fatal)
			for i := 0; i+2 < len(data) && i < 3*200; i += 3 {
				oi.step(data[i], data[i+1], data[i+2])
			}
			oi.verify()
		}
	})
}

// TestQuickOpSequences is the same interpreter under testing/quick:
// random op streams must keep the tree equivalent to the reference and
// structurally sound.
func TestQuickOpSequences(t *testing.T) {
	for _, balanced := range []bool{true, false} {
		balanced := balanced
		check := func(ops []uint8) bool {
			good := true
			fatal := func(format string, args ...any) {
				t.Logf(format, args...)
				good = false
			}
			oi := newOpInterpreter(balanced, fatal)
			for i := 0; i+2 < len(ops) && good; i += 3 {
				oi.step(ops[i], ops[i+1], ops[i+2])
			}
			if good {
				oi.verify()
			}
			return good
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("balanced=%v: %v", balanced, err)
		}
	}
}

// TestStabSortedUnique asserts the documented Stab contract directly:
// results are ascending and duplicate-free even after heavy rotation
// traffic.
func TestStabSortedUnique(t *testing.T) {
	tr := New(intCmp, Balanced(true))
	for i := 0; i < 200; i++ {
		iv := interval.Closed(i%20, i%20+10)
		if err := tr.Insert(ID(i), iv); err != nil {
			t.Fatal(err)
		}
	}
	for x := -2; x < 35; x++ {
		got := tr.Stab(x)
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("Stab(%d) not sorted: %v", x, got)
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("Stab(%d) has duplicate %d", x, got[i])
			}
		}
	}
}
