package meta_test

import (
	"strings"
	"testing"
	"time"

	"predmatch/internal/core"
	"predmatch/internal/interval"
	"predmatch/internal/islist"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/meta"
	"predmatch/internal/pred"
	"predmatch/internal/shard"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Test candidates: "ibs" (the core default) modelled write-cheap and
// stab-expensive, "islist" the reverse. The coefficients are synthetic
// — the tests exercise the decision logic, not the calibration.
func testCandidates() []meta.Candidate {
	return []meta.Candidate{
		{
			Name: "ibs",
			Cost: meta.Cost{
				StabFixedNS: 100, StabLogNS: 300, StabPerHitNS: 25,
				WriteFixedNS: 200, RebuildPerItemNS: 20,
			},
		},
		{
			Name: "islist",
			Opts: []core.Option{
				core.WithIndexFactory(func() core.AttrIndex { return islist.New(value.Compare) }),
				core.WithName("islist"),
			},
			Cost: meta.Cost{
				StabFixedNS: 50, StabLogNS: 5, StabPerHitNS: 25,
				WriteFixedNS: 200, RebuildPerItemNS: 300,
			},
		},
	}
}

type rig struct {
	prof *trace.Profiles
	eng  *meta.Engine
	sm   *shard.ShardedMatcher
	tup  tuple.Tuple
	now  time.Time
}

// newRig wires a profiled sharded matcher to an engine with fast
// thresholds and a fake clock, pre-loaded with n "emp" predicates.
func newRig(t *testing.T, n int, cfg meta.Config) *rig {
	t.Helper()
	f := matchertest.NewFixture()
	r := &rig{prof: trace.NewProfiles(), now: time.Unix(1000, 0)}
	if cfg.Candidates == nil {
		cfg.Candidates = testCandidates()
	}
	if cfg.Default == "" {
		cfg.Default = "ibs"
	}
	cfg.Profiles = r.prof
	if cfg.HalfLife == 0 {
		cfg.HalfLife = time.Second
	}
	if cfg.MinPreds == 0 {
		cfg.MinPreds = 16
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 2 * time.Second
	}
	cfg.Now = func() time.Time { return r.now }
	eng, err := meta.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.eng = eng
	r.sm = shard.New(f.Catalog, f.Funcs,
		shard.WithIndexChooser(eng.Options),
		shard.WithName("meta"))
	r.sm.SetProfiles(r.prof)
	eng.Bind(r.sm)
	for id := 1; id <= n; id++ {
		p := pred.New(pred.ID(id), "emp",
			pred.IvClause("age", interval.AtLeast(value.Int(int64(id%60)))))
		if err := r.sm.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	emp, _ := f.Catalog.Get("emp")
	r.tup = make(tuple.Tuple, len(emp.Attrs()))
	for i, a := range emp.Attrs() {
		switch a.Type {
		case value.KindInt:
			r.tup[i] = value.Int(30)
		case value.KindFloat:
			r.tup[i] = value.Float(30)
		default:
			r.tup[i] = value.String_("x")
		}
	}
	return r
}

func (r *rig) stabs(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := r.sm.Match("emp", r.tup, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func (r *rig) structure(t *testing.T) string {
	t.Helper()
	for _, s := range r.sm.Stats() {
		if s.Rel == "emp" {
			return s.Structure
		}
	}
	t.Fatal("no emp shard")
	return ""
}

func (r *rig) decision(t *testing.T) meta.RelDecision {
	t.Helper()
	for _, d := range r.eng.Stats() {
		if d.Rel == "emp" {
			return d
		}
	}
	t.Fatal("no emp decision")
	return meta.RelDecision{}
}

func TestWarmupHoldsDefault(t *testing.T) {
	r := newRig(t, 8, meta.Config{MinPreds: 16})
	r.eng.Tick(r.now)
	r.now = r.now.Add(time.Second)
	r.stabs(t, 1000)
	if got := r.eng.Tick(r.now); got != 0 {
		t.Fatalf("warm-up migrated %d relations", got)
	}
	if s := r.structure(t); s != "ibs" {
		t.Fatalf("warm-up structure = %q, want ibs", s)
	}
	d := r.decision(t)
	if !strings.Contains(d.Reason, "warm-up") {
		t.Fatalf("reason = %q, want warm-up", d.Reason)
	}
}

func TestStabHeavyMigratesAndExplains(t *testing.T) {
	r := newRig(t, 64, meta.Config{})
	r.eng.Tick(r.now) // seed window baselines
	r.now = r.now.Add(time.Second)
	r.stabs(t, 2000)
	if got := r.eng.Tick(r.now); got != 1 {
		t.Fatalf("Tick migrated %d, want 1 (decision: %+v)", got, r.decision(t))
	}
	if s := r.structure(t); s != "islist" {
		t.Fatalf("structure = %q, want islist", s)
	}
	d := r.decision(t)
	if d.Migrations != 1 || d.Strategy != "islist" {
		t.Fatalf("decision = %+v", d)
	}
	if !strings.Contains(d.Reason, "stab-heavy") || !strings.Contains(d.Reason, "islist") {
		t.Fatalf("reason = %q", d.Reason)
	}
	if d.EstNS <= 0 || d.AltNS <= d.EstNS {
		t.Fatalf("estimates not ordered: est %v alt %v", d.EstNS, d.AltNS)
	}
	// The chooser now reports the decision for future shards of the
	// relation.
	if opts := r.eng.Options("emp"); len(opts) == 0 {
		t.Fatal("Options(emp) empty after islist decision")
	}
	// Matches still work on the migrated structure.
	out, err := r.sm.Match("emp", r.tup, nil)
	if err != nil || len(out) == 0 {
		t.Fatalf("post-migration match: %v, %v", out, err)
	}
}

func TestCooldownThenFlipBack(t *testing.T) {
	r := newRig(t, 64, meta.Config{Cooldown: 5 * time.Second})
	r.eng.Tick(r.now)
	r.now = r.now.Add(time.Second)
	r.stabs(t, 2000)
	if got := r.eng.Tick(r.now); got != 1 {
		t.Fatalf("initial migration: %d", got)
	}
	// Shift to write-heavy: predicate churn, no stabs. One second in,
	// the cooldown blocks the flip back even though ibs now wins.
	churn := func(base int) {
		for i := 0; i < 200; i++ {
			id := pred.ID(base + i)
			p := pred.New(id, "emp", pred.IvClause("age", interval.AtLeast(value.Int(int64(i%60)))))
			if err := r.sm.Add(p); err != nil {
				t.Fatal(err)
			}
			if err := r.sm.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn(10000)
	r.now = r.now.Add(time.Second)
	if got := r.eng.Tick(r.now); got != 0 {
		t.Fatal("migration during cooldown")
	}
	if d := r.decision(t); !strings.Contains(d.Reason, "cooldown") {
		t.Fatalf("reason = %q, want cooldown", d.Reason)
	}
	// Past the cooldown with sustained churn, the flip lands.
	migrations := 0
	for i := 0; i < 8; i++ {
		churn(11000 + 1000*i)
		r.now = r.now.Add(time.Second)
		migrations += r.eng.Tick(r.now)
	}
	if migrations == 0 {
		t.Fatalf("no flip back under churn: %+v", r.decision(t))
	}
	if s := r.structure(t); s != "ibs" {
		t.Fatalf("structure = %q, want ibs after churn", s)
	}
}

func TestHysteresisHoldsNearTies(t *testing.T) {
	// Two candidates whose costs differ by less than the hysteresis
	// margin: the incumbent must hold.
	close1 := meta.Cost{StabFixedNS: 100, StabLogNS: 10, WriteFixedNS: 100}
	close2 := meta.Cost{StabFixedNS: 95, StabLogNS: 10, WriteFixedNS: 100}
	r := newRig(t, 64, meta.Config{
		Candidates: []meta.Candidate{
			{Name: "ibs", Cost: close1},
			{Name: "islist", Opts: []core.Option{
				core.WithIndexFactory(func() core.AttrIndex { return islist.New(value.Compare) }),
				core.WithName("islist"),
			}, Cost: close2},
		},
		Hysteresis: 0.2,
	})
	r.eng.Tick(r.now)
	for i := 0; i < 5; i++ {
		r.now = r.now.Add(time.Second)
		r.stabs(t, 2000)
		if got := r.eng.Tick(r.now); got != 0 {
			t.Fatalf("tick %d migrated on a near-tie", i)
		}
	}
	if s := r.structure(t); s != "ibs" {
		t.Fatalf("structure = %q, want ibs held", s)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	prof := trace.NewProfiles()
	cases := []meta.Config{
		{},                             // no candidates
		{Candidates: testCandidates()}, // no profiles
		{Candidates: testCandidates(), Profiles: prof, Default: "nope"},
		{Candidates: []meta.Candidate{{Name: "a"}, {Name: "a"}}, Profiles: prof, Default: "a"},
	}
	for i, cfg := range cases {
		if _, err := meta.New(cfg); err == nil {
			t.Fatalf("case %d: no error", i)
		}
	}
}

// TestMatcherConformance runs the standalone adaptive matcher through
// the sequential conformance suite.
func TestMatcherConformance(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		m, err := meta.NewMatcher(f.Catalog, f.Funcs, meta.Config{
			Candidates: testCandidates(),
			Default:    "ibs",
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	})
}

// TestMatcherConcurrent drives the writer/reader storm against the
// adaptive matcher with aggressive thresholds so inline ticks and
// migrations actually happen mid-storm.
func TestMatcherConcurrent(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		m, err := meta.NewMatcher(f.Catalog, f.Funcs, meta.Config{
			Candidates: testCandidates(),
			Default:    "ibs",
			MinPreds:   4,
			MinOpsRate: 0.1,
			HalfLife:   50 * time.Millisecond,
			Cooldown:   10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	})
}
