package meta_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"predmatch/internal/interval"
	"predmatch/internal/matchertest"
	"predmatch/internal/meta"
	"predmatch/internal/pred"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// TestMigrationUnderWriteNoLostMatches proves the tentpole safety
// property: while the engine migrates a relation between structures
// under concurrent writers and readers, no registered predicate ever
// disappears from a match result (no torn index, no lost match).
//
// Every permanent predicate matches the probe tuple, so a reader that
// observes `acked` permanent registrations before its probe must see at
// least that many results — transient churn predicates can only add.
// The clock is fake and driven by the main goroutine, so the engine's
// rate view (and therefore the migrations) is deterministic while the
// racing goroutines run free. Run with -race in CI.
func TestMigrationUnderWriteNoLostMatches(t *testing.T) {
	f := matchertest.NewFixture()
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(d)
		return now
	}
	m, err := meta.NewMatcher(f.Catalog, f.Funcs, meta.Config{
		Candidates: testCandidates(),
		Default:    "ibs",
		Profiles:   trace.NewProfiles(),
		MinPreds:   8,
		MinOpsRate: 1,
		HalfLife:   time.Second,
		Cooldown:   time.Second,
		Now:        clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	emp, _ := f.Catalog.Get("emp")
	tup := make(tuple.Tuple, len(emp.Attrs()))
	for i, a := range emp.Attrs() {
		switch a.Type {
		case value.KindInt:
			tup[i] = value.Int(1000)
		case value.KindFloat:
			tup[i] = value.Float(1000)
		default:
			tup[i] = value.String_("x")
		}
	}
	agePred := func(id pred.ID) *pred.Predicate {
		return pred.New(id, "emp",
			pred.IvClause("age", interval.AtLeast(value.Int(int64(id)%60))))
	}

	// Seed enough permanent predicates to clear warm-up.
	var acked atomic.Uint64
	for id := pred.ID(1); id <= 64; id++ {
		if err := m.Add(agePred(id)); err != nil {
			t.Fatal(err)
		}
		acked.Store(uint64(id))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writer: keeps registering permanent matching predicates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := pred.ID(65); ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Add(agePred(id)); err != nil {
				t.Error(err)
				return
			}
			acked.Store(uint64(id))
		}
	}()
	// Readers: every probe must see every acked permanent predicate.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lo := acked.Load()
				res, err := m.Match("emp", tup, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if uint64(len(res)) < lo {
					t.Errorf("lost match during migration: %d results, %d acked", len(res), lo)
					return
				}
			}
		}()
	}

	// Drive decision rounds on the fake clock while the storm runs. The
	// mix alternates naturally (writer + readers both run), so force the
	// flips by alternating which side dominates the EWMA via dt sizing:
	// long quiet advances decay one side, the live ops refill both.
	eng := m.Engine()
	migrations := 0
	for i := 0; i < 40 && migrations < 2; i++ {
		time.Sleep(10 * time.Millisecond) // let real ops accumulate
		migrations += eng.Tick(advance(time.Second))
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if migrations == 0 {
		t.Fatalf("no online migration happened; decisions: %+v", eng.Stats())
	}
	// Final differential check: the migrated matcher agrees with a
	// fresh oracle count.
	res, err := m.Match("emp", tup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res)) < acked.Load() {
		t.Fatalf("final sweep lost matches: %d results, %d acked", len(res), acked.Load())
	}
}
