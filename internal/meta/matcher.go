package meta

import (
	"sync/atomic"

	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/shard"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
)

// tickEvery is the operation count between inline decision rounds of a
// standalone Matcher. The serving daemon runs the engine's background
// loop instead; the standalone wrapper (benchmarks, the predmatch CLI,
// conformance sweeps) ticks inline so it needs no goroutine and can
// never leak one.
const tickEvery = 512

// Matcher is the registry-facing adaptive matcher: a ShardedMatcher
// whose per-relation structures are chosen and migrated by an Engine,
// self-contained behind the ordinary matcher.Matcher interface. Every
// tickEvery operations, the operation that trips the counter runs one
// decision round inline (guarded so concurrent trippers don't stack).
type Matcher struct {
	*shard.ShardedMatcher
	eng     *Engine
	ops     atomic.Uint64
	ticking atomic.Bool
}

var (
	_ matcher.Matcher       = (*Matcher)(nil)
	_ matcher.TracedMatcher = (*Matcher)(nil)
)

// NewMatcher builds a self-contained adaptive matcher. A nil
// cfg.Profiles gets a private accumulator (the wrapper feeds it
// itself); everything else follows Config's defaults.
func NewMatcher(cat *schema.Catalog, funcs *pred.Registry, cfg Config) (*Matcher, error) {
	if cfg.Profiles == nil {
		cfg.Profiles = trace.NewProfiles()
	}
	eng, err := New(cfg)
	if err != nil {
		return nil, err
	}
	sm := shard.New(cat, funcs,
		shard.WithIndexChooser(eng.Options),
		shard.WithName("meta"))
	sm.SetProfiles(cfg.Profiles)
	eng.Bind(sm)
	return &Matcher{ShardedMatcher: sm, eng: eng}, nil
}

// Engine exposes the decision engine (stats, explicit ticks).
func (m *Matcher) Engine() *Engine { return m.eng }

// maybeTick runs a decision round every tickEvery operations. The CAS
// guard keeps rounds from stacking: an operation that loses the race
// simply skips — the winner's round covers it.
func (m *Matcher) maybeTick() {
	if m.ops.Add(1)%tickEvery != 0 {
		return
	}
	if !m.ticking.CompareAndSwap(false, true) {
		return
	}
	defer m.ticking.Store(false)
	m.eng.Tick(m.eng.now())
}

// Add implements matcher.Matcher. The embedded shard layer records the
// write into the profile; the wrapper only counts the operation toward
// the next inline tick.
func (m *Matcher) Add(p *pred.Predicate) error {
	err := m.ShardedMatcher.Add(p)
	m.maybeTick()
	return err
}

// Remove implements matcher.Matcher.
func (m *Matcher) Remove(id pred.ID) error {
	err := m.ShardedMatcher.Remove(id)
	m.maybeTick()
	return err
}

// Match implements matcher.Matcher.
func (m *Matcher) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	out, err := m.ShardedMatcher.Match(rel, t, dst)
	m.maybeTick()
	return out, err
}

// MatchTraced implements matcher.TracedMatcher.
func (m *Matcher) MatchTraced(rel string, t tuple.Tuple, dst []pred.ID, sp *trace.Span) ([]pred.ID, error) {
	out, err := m.ShardedMatcher.MatchTraced(rel, t, dst, sp)
	m.maybeTick()
	return out, err
}
