// Package meta implements the adaptive meta-matcher (ROADMAP item 1):
// a per-relation cost model over the registered index structures, fed by
// the live workload profiles (internal/trace), that picks the cheapest
// structure for each relation's observed stab/write mix and migrates the
// serving shards online through the existing clone-and-publish snapshot
// swap.
//
// The paper fixes one structure (the IBS-tree) for every predicate
// class; this package closes the loop the repo has been building toward:
// PR 6 supplied the candidate structures behind one registry, PR 9 the
// per-relation workload observations, internal/shard the atomic
// migration primitive — the Engine here is the brain that connects them.
//
// Design constraints, enforced by construction:
//
//   - No thrash: a migration needs the challenger to beat the incumbent
//     by a hysteresis margin AND a per-relation cooldown to have
//     elapsed. The workload view is an EWMA window (trace.Window), so
//     one bursty tick cannot flip a relation.
//   - Warm-up: below MinPreds predicates or MinOpsRate observed
//     operations per second, a relation stays on the configured default
//     (the static -index flag's structure) — tiny or idle relations are
//     not worth a rebuild, and their profiles are noise.
//   - Hard fallback: with no engine decision a shard gets the default
//     structure, so losing the engine (or running with -index ibs) is
//     exactly the static behaviour.
//   - Lock discipline: the shard layer calls Engine.Options while
//     holding a shard mutex, so Options reads an atomically published
//     decision map and takes no locks. Tick acquires e.mu and may then
//     take shard mutexes (via Migrate); the reverse order never occurs.
package meta

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"predmatch/internal/core"
	"predmatch/internal/obs"
	"predmatch/internal/shard"
	"predmatch/internal/trace"
)

// Cost is one structure's cost model: nanosecond estimates for a stab
// and for a write against an index of n predicates. The coefficients
// are per-strategy calibration constants (internal/strategy supplies
// values anchored to measured stab and serving-layer clone costs); the
// absolute numbers matter less than the relative shape — flat indexes
// stab in near-constant time and clone cheaply, tree structures pay
// O(log n) stabs with a steeper constant and an expensive per-item
// re-insertion when the serving layer clones them on write.
type Cost struct {
	StabFixedNS  float64 // per-stab fixed overhead
	StabLogNS    float64 // per-stab cost × log2(1+n)
	StabPerHitNS float64 // per result returned (candidate verification)

	WriteFixedNS     float64 // per-write fixed overhead
	WriteLogNS       float64 // per-write cost × log2(1+n)
	RebuildPerItemNS float64 // per-write cost × n (clone/lazy-rebuild structures)
}

// StabNS estimates one stab against n predicates returning hits results.
func (c Cost) StabNS(n, hits float64) float64 {
	return c.StabFixedNS + c.StabLogNS*math.Log2(1+n) + c.StabPerHitNS*hits
}

// WriteNS estimates one write against n predicates.
func (c Cost) WriteNS(n float64) float64 {
	return c.WriteFixedNS + c.WriteLogNS*math.Log2(1+n) + c.RebuildPerItemNS*n
}

// Candidate is one structure the engine may choose: a strategy name
// (matching the core.WithName the Opts install, and the
// internal/strategy registry entry), the core options that build it,
// and its cost model.
type Candidate struct {
	Name string
	Opts []core.Option
	Cost Cost
}

// Config parameterizes an Engine. Zero fields take the defaults noted
// on each.
type Config struct {
	// Candidates is the structure set scored per relation. Must contain
	// Default. Required.
	Candidates []Candidate
	// Default names the warm-up / fallback structure — the static
	// -index flag's value. Required.
	Default string
	// Profiles is the workload accumulator the serving matcher feeds
	// (ShardedMatcher.SetProfiles must install the same one). Required.
	Profiles *trace.Profiles

	Interval   time.Duration // background tick period (default 1s)
	HalfLife   time.Duration // EWMA half-life of the workload window (default 5s)
	MinPreds   int           // warm-up size threshold (default 16)
	MinOpsRate float64       // warm-up ops/sec threshold (default 1)
	Hysteresis float64       // challenger must beat incumbent by this margin (default 0.2)
	Cooldown   time.Duration // min time between migrations of one relation (default 3s)

	// Registry, when non-nil, receives the predmatch_meta_* metric
	// families.
	Registry *obs.Registry
	// Now is the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

// RelDecision explains one relation's current choice — the row behind
// the `predmatch stats` adaptive-index table.
type RelDecision struct {
	Rel        string
	Strategy   string        // structure currently serving the relation
	Since      time.Duration // how long the structure has been resident
	Migrations uint64        // online migrations performed on this relation
	Reason     string        // human-readable rationale for the current choice
	EstNS      float64       // estimated per-op cost of the chosen structure
	AltName    string        // best rejected alternative ("" during warm-up)
	AltNS      float64       // its estimated per-op cost
	StabRate   float64       // EWMA stabs/sec feeding the decision
	WriteRate  float64       // EWMA writes/sec feeding the decision
}

// relState is the engine's per-relation bookkeeping.
type relState struct {
	strategy      string // structure last observed serving the relation
	since         time.Time
	lastMigration time.Time
	migrations    uint64
	reason        string
	estNS         float64
	altName       string
	altNS         float64
	stabRate      float64
	writeRate     float64
	residency     map[string]time.Duration // cumulative per-structure residency
}

// Engine scores candidate structures per relation and migrates the
// bound ShardedMatcher online. Construct with New, attach with Bind,
// then either Start the background loop or drive Tick explicitly.
type Engine struct {
	cfg    Config
	byName map[string]Candidate
	window *trace.Window
	now    func() time.Time

	// choices maps relation → chosen candidate name for the shard
	// chooser. Published copy-on-write so Options (called under shard
	// mutexes) never blocks; see the package lock-discipline note.
	choices atomic.Pointer[map[string]string] // write-guarded-by: mu

	mu       sync.Mutex
	sm       *shard.ShardedMatcher // guarded-by: mu (set once by Bind)
	state    map[string]*relState  // guarded-by: mu
	lastTick time.Time             // guarded-by: mu

	decisions  *obs.Counter    // nil without Registry
	migrations *obs.CounterVec // nil without Registry

	stop chan struct{}
	done chan struct{}
}

// New validates cfg and returns an unbound engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Candidates) == 0 {
		return nil, fmt.Errorf("meta: no candidates")
	}
	if cfg.Profiles == nil {
		return nil, fmt.Errorf("meta: nil Profiles")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.HalfLife <= 0 {
		cfg.HalfLife = 5 * time.Second
	}
	if cfg.MinPreds <= 0 {
		cfg.MinPreds = 16
	}
	if cfg.MinOpsRate <= 0 {
		cfg.MinOpsRate = 1
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = 0.2
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 3 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Engine{
		cfg:    cfg,
		byName: make(map[string]Candidate, len(cfg.Candidates)),
		window: trace.NewWindow(cfg.Profiles, cfg.HalfLife),
		now:    cfg.Now,
		state:  make(map[string]*relState),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, c := range cfg.Candidates {
		if c.Name == "" {
			return nil, fmt.Errorf("meta: unnamed candidate")
		}
		if _, dup := e.byName[c.Name]; dup {
			return nil, fmt.Errorf("meta: duplicate candidate %q", c.Name)
		}
		e.byName[c.Name] = c
	}
	if _, ok := e.byName[cfg.Default]; !ok {
		return nil, fmt.Errorf("meta: default %q is not a candidate", cfg.Default)
	}
	empty := make(map[string]string)
	e.choices.Store(&empty) //predmatchvet:ignore guardedby constructor publish; e is not shared yet
	if reg := cfg.Registry; reg != nil {
		e.decisions = reg.Counter("predmatch_meta_decisions_total",
			"Relations evaluated by the adaptive meta-engine's cost model.")
		e.migrations = reg.CounterVec("predmatch_meta_migrations_total",
			"Online index-structure migrations performed, by relation and target structure.",
			"rel", "to")
		reg.GaugeSet("predmatch_meta_strategy",
			"Currently chosen structure per relation (1 = active).",
			[]string{"rel", "strategy"}, func(emit obs.Emit) {
				for _, d := range e.Stats() {
					emit(1, d.Rel, d.Strategy)
				}
			})
		reg.GaugeSet("predmatch_meta_residency_seconds",
			"Cumulative seconds each structure has served each relation.",
			[]string{"rel", "strategy"}, func(emit obs.Emit) {
				e.mu.Lock()
				defer e.mu.Unlock()
				for rel, st := range e.state {
					for name, d := range st.residency {
						emit(d.Seconds(), rel, name)
					}
				}
			})
	}
	return e, nil
}

// Bind attaches the serving matcher the engine migrates. Call once,
// before Start/Tick. The matcher should have been built with
// shard.WithIndexChooser(e.Options) so first snapshots follow the
// engine's decisions too.
func (e *Engine) Bind(sm *shard.ShardedMatcher) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sm = sm
}

// Options is the shard chooser: the core options for rel's current
// decision, falling back to the default candidate. Lock-free — it is
// called while the caller holds a shard mutex.
func (e *Engine) Options(rel string) []core.Option {
	name := e.cfg.Default
	if m := e.choices.Load(); m != nil {
		if s, ok := (*m)[rel]; ok {
			name = s
		}
	}
	return e.byName[name].Opts
}

// Default returns the fallback structure name.
func (e *Engine) Default() string { return e.cfg.Default }

// Tick runs one decision round at the given instant: refresh the
// workload window, score every candidate per relation, and migrate
// where a challenger clears hysteresis and cooldown. Returns the number
// of migrations performed. Safe for concurrent use; rounds serialize on
// the engine mutex.
func (e *Engine) Tick(now time.Time) int {
	stats := e.window.Update(now)
	byRel := make(map[string]trace.WindowStat, len(stats))
	for _, ws := range stats {
		byRel[ws.Relation] = ws
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sm == nil {
		return 0
	}
	dt := time.Duration(0)
	if !e.lastTick.IsZero() {
		dt = now.Sub(e.lastTick)
	}
	e.lastTick = now

	migrated := 0
	live := make(map[string]bool)
	for _, ss := range e.sm.Stats() {
		live[ss.Rel] = true
		st := e.state[ss.Rel]
		if st == nil {
			st = &relState{
				strategy:  ss.Structure,
				since:     now,
				residency: make(map[string]time.Duration),
			}
			e.state[ss.Rel] = st
		}
		if st.strategy != ss.Structure {
			// The structure changed under us (static rebuild, recovery):
			// resync instead of fighting it.
			st.strategy = ss.Structure
			st.since = now
		}
		if dt > 0 {
			st.residency[st.strategy] += dt
		}
		if e.decisions != nil {
			e.decisions.Inc()
		}
		if e.decide(st, ss, byRel[ss.Rel], now) {
			migrated++
		}
	}
	// A relation whose shard is gone (none are dropped today, but the
	// profile can be — trace.Profiles.Drop) must not pin engine state.
	for rel := range e.state {
		if !live[rel] {
			delete(e.state, rel)
			e.forgetChoice(rel)
		}
	}
	return migrated
}

// decide scores one relation and migrates it if a challenger wins.
// Called with e.mu held; ws is the zero WindowStat when the relation
// has no profile yet.
//
//predmatchvet:holds mu
func (e *Engine) decide(st *relState, ss shard.ShardStats, ws trace.WindowStat, now time.Time) bool {
	n := float64(ss.Predicates)
	opsRate := ws.StabRate + ws.WriteRate
	st.stabRate, st.writeRate = ws.StabRate, ws.WriteRate

	if ss.Predicates < e.cfg.MinPreds || opsRate < e.cfg.MinOpsRate {
		st.reason = fmt.Sprintf("warm-up: %d preds, %.1f ops/s — default %s until %d preds and %.0f ops/s",
			ss.Predicates, opsRate, e.cfg.Default, e.cfg.MinPreds, e.cfg.MinOpsRate)
		st.estNS, st.altName, st.altNS = 0, "", 0
		return false
	}

	// Score every candidate: ns of index work per second of wall clock.
	type scored struct {
		cand  Candidate
		score float64
	}
	all := make([]scored, 0, len(e.cfg.Candidates))
	for _, c := range e.cfg.Candidates {
		s := ws.StabRate*c.Cost.StabNS(n, ws.AvgResults) + ws.WriteRate*c.Cost.WriteNS(n)
		all = append(all, scored{c, s})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].score < all[j].score })
	best := all[0]

	// The incumbent's score; an unknown structure (not in the candidate
	// set) always loses, subject to cooldown.
	curScore := math.Inf(1)
	if cur, ok := e.byName[st.strategy]; ok {
		curScore = ws.StabRate*cur.Cost.StabNS(n, ws.AvgResults) + ws.WriteRate*cur.Cost.WriteNS(n)
	}

	perOp := func(score float64) float64 {
		if opsRate <= 0 {
			return 0
		}
		return score / opsRate
	}
	mix := "mixed"
	switch {
	case ws.StabRate >= 4*ws.WriteRate:
		mix = "stab-heavy/low-write"
	case ws.WriteRate >= 4*ws.StabRate:
		mix = "write-heavy/low-stab"
	}

	if best.cand.Name == st.strategy || best.score >= curScore*(1-e.cfg.Hysteresis) {
		// Incumbent holds: report the best rejected challenger.
		st.estNS = perOp(curScore)
		st.altName, st.altNS = "", 0
		for _, s := range all {
			if s.cand.Name != st.strategy {
				st.altName, st.altNS = s.cand.Name, perOp(s.score)
				break
			}
		}
		st.reason = fmt.Sprintf("%s, because %s (%.0f stabs/s, %.0f writes/s), est %s vs %s (%s)",
			st.strategy, mix, ws.StabRate, ws.WriteRate,
			fmtNS(st.estNS), fmtNS(st.altNS), st.altName)
		return false
	}

	if !st.lastMigration.IsZero() && now.Sub(st.lastMigration) < e.cfg.Cooldown {
		st.reason = fmt.Sprintf("%s pending cooldown; %s would win (%s vs %s)",
			st.strategy, best.cand.Name, fmtNS(perOp(best.score)), fmtNS(perOp(curScore)))
		return false
	}

	ok, err := e.sm.Migrate(ss.Rel, best.cand.Opts...)
	if err != nil || !ok {
		st.reason = fmt.Sprintf("migration to %s failed: %v", best.cand.Name, err)
		return false
	}
	prev := st.strategy
	st.strategy = best.cand.Name
	st.since = now
	st.lastMigration = now
	st.migrations++
	st.estNS = perOp(best.score)
	st.altName, st.altNS = prev, perOp(curScore)
	st.reason = fmt.Sprintf("%s, because %s (%.0f stabs/s, %.0f writes/s), est %s vs %s (%s)",
		best.cand.Name, mix, ws.StabRate, ws.WriteRate,
		fmtNS(st.estNS), fmtNS(st.altNS), prev)
	e.setChoice(ss.Rel, best.cand.Name)
	if e.migrations != nil {
		e.migrations.With(ss.Rel, best.cand.Name).Inc()
	}
	return true
}

// setChoice publishes rel's decision for the shard chooser.
//
//predmatchvet:holds mu
func (e *Engine) setChoice(rel, name string) {
	cur := *e.choices.Load()
	next := make(map[string]string, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[rel] = name
	e.choices.Store(&next)
}

// forgetChoice removes rel's decision.
//
//predmatchvet:holds mu
func (e *Engine) forgetChoice(rel string) {
	cur := *e.choices.Load()
	if _, ok := cur[rel]; !ok {
		return
	}
	next := make(map[string]string, len(cur)-1)
	for k, v := range cur {
		if k != rel {
			next[k] = v
		}
	}
	e.choices.Store(&next)
}

// Stats reports every relation's current decision, sorted by relation.
func (e *Engine) Stats() []RelDecision {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]RelDecision, 0, len(e.state))
	for rel, st := range e.state {
		out = append(out, RelDecision{
			Rel:        rel,
			Strategy:   st.strategy,
			Since:      now.Sub(st.since),
			Migrations: st.migrations,
			Reason:     st.reason,
			EstNS:      st.estNS,
			AltName:    st.altName,
			AltNS:      st.altNS,
			StabRate:   st.stabRate,
			WriteRate:  st.writeRate,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out
}

// Start launches the background decision loop; Stop ends it. Callers
// that prefer explicit control (the standalone Matcher, tests) drive
// Tick instead and never Start.
func (e *Engine) Start() {
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				e.Tick(e.now())
			}
		}
	}()
}

// Stop terminates the background loop started by Start and waits for it
// to exit. Safe to call once, after Start.
func (e *Engine) Stop() {
	close(e.stop)
	<-e.done
}

// fmtNS renders a nanosecond estimate the way the stats table does.
func fmtNS(ns float64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1000:
		return fmt.Sprintf("%.0fns", ns)
	default:
		return fmt.Sprintf("%.1fµs", ns/1000)
	}
}
