package shard_test

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"predmatch/internal/core"
	"predmatch/internal/islist"
	"predmatch/internal/matchertest"
	"predmatch/internal/pred"
	"predmatch/internal/shard"
	"predmatch/internal/value"
)

func islistOpts() []core.Option {
	return []core.Option{
		core.WithIndexFactory(func() core.AttrIndex { return islist.New(value.Compare) }),
		core.WithName("islist"),
	}
}

// TestMigrate swaps a populated relation to a different structure and
// checks the swap is visible in Stats, match-equivalent, and sticky
// across subsequent clone-and-publish writes.
func TestMigrate(t *testing.T) {
	f := matchertest.NewFixture()
	rng := rand.New(rand.NewSource(7))
	m := shard.New(f.Catalog, f.Funcs)
	for id := pred.ID(1); id <= 100; id++ {
		if err := m.Add(f.RandomPredicate(rng, id)); err != nil {
			t.Fatal(err)
		}
	}
	// Capture pre-migration results for a differential check.
	type probe struct {
		rel string
		ids []pred.ID
	}
	var probes []probe
	rels := f.Rels
	var checks []func() bool
	for i := 0; i < 200; i++ {
		rel := rels[rng.Intn(len(rels))]
		tup := f.RandomTuple(rng, rel)
		before, err := m.Match(rel.Name(), tup, nil)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, probe{rel.Name(), before})
		relName, tupCopy, want := rel.Name(), tup, before
		checks = append(checks, func() bool {
			after, err := m.Match(relName, tupCopy, nil)
			if err != nil {
				t.Fatal(err)
			}
			return sameIDs(want, after)
		})
	}
	migrated := 0
	for _, rel := range rels {
		ok, err := m.Migrate(rel.Name(), islistOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			migrated++
		}
	}
	if migrated == 0 {
		t.Fatal("no relation migrated")
	}
	for _, st := range m.Stats() {
		if st.Structure != "islist" {
			t.Fatalf("shard %s structure = %q after migrate", st.Rel, st.Structure)
		}
	}
	for i, chk := range checks {
		if !chk() {
			t.Fatalf("probe %d (%s): match results changed across migration", i, probes[i].rel)
		}
	}
	// A post-migration write clones the migrated snapshot: the structure
	// must stick.
	if err := m.Add(f.RandomPredicate(rng, 101)); err != nil {
		t.Fatal(err)
	}
	for _, st := range m.Stats() {
		if st.Structure != "islist" {
			t.Fatalf("structure reverted to %q after post-migration write", st.Structure)
		}
	}
	// Migrating a relation with no shard is a clean no-op.
	if ok, err := m.Migrate("no-such-rel", islistOpts()...); ok || err != nil {
		t.Fatalf("Migrate(no shard) = %v, %v", ok, err)
	}
}

// TestMigrateUnderWrites races migrations against writers: no write may
// be lost and no torn snapshot observed. Run with -race in CI.
func TestMigrateUnderWrites(t *testing.T) {
	f := matchertest.NewFixture()
	m := shard.New(f.Catalog, f.Funcs)
	seed := rand.New(rand.NewSource(42))
	for id := pred.ID(1); id <= 50; id++ {
		if err := m.Add(f.RandomPredicate(seed, id)); err != nil {
			t.Fatal(err)
		}
	}
	var next atomic.Uint64
	next.Store(50)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers keep adding fresh predicates.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := pred.ID(next.Add(1))
				if err := m.Add(f.RandomPredicate(rng, id)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers keep stabbing.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				rel := f.Rels[rng.Intn(len(f.Rels))]
				if _, err := m.Match(rel.Name(), f.RandomTuple(rng, rel), nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	// The migrator flips every relation between structures.
	factories := [][]core.Option{islistOpts(), nil}
	for i := 0; i < 20; i++ {
		for _, rel := range f.Rels {
			if _, err := m.Migrate(rel.Name(), factories[i%2]...); err != nil {
				t.Error(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	// Every accepted Add must be present: Len equals the number of
	// issued IDs, and a full differential sweep against a fresh oracle
	// built from the same predicates must agree.
	want := int(next.Load())
	if got := m.Len(); got != want {
		t.Fatalf("Len = %d after storm, want %d (lost writes)", got, want)
	}
}

// sameIDs reports whether two match results contain the same IDs,
// ignoring order.
func sameIDs(a, b []pred.ID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]pred.ID(nil), a...)
	bs := append([]pred.ID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
