package shard_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/matchertest"
	"predmatch/internal/pred"
	"predmatch/internal/shard"
)

// FuzzShardedMatcher drives Add/Match/Remove through the sharded
// matcher from a byte stream, cross-checking every match against a
// brute-force reference — the same differential style as
// internal/ibs's FuzzOps, lifted to the whole-scheme level. Each
// 4-byte op descriptor selects an opcode, a relation, and two value
// bytes that seed the predicate shape / tuple generators, so relation
// names, clause shapes (intervals, points, open ends, opaque
// functions) and tuple values all vary under fuzzing. Run open-ended
// with:
//
//	go test -fuzz FuzzShardedMatcher ./internal/shard
func FuzzShardedMatcher(f *testing.F) {
	f.Add([]byte{0, 0, 7, 9, 3, 1, 20, 4, 2, 0, 0, 0, 3, 1, 5, 5})
	f.Add([]byte{0, 1, 1, 1, 0, 2, 2, 2, 3, 1, 9, 9, 2, 0, 0, 0, 3, 2, 4, 4})
	f.Add([]byte{1, 0, 30, 31, 1, 0, 32, 33, 2, 0, 1, 0, 1, 1, 8, 8, 3, 0, 0, 0})
	f.Add([]byte{3, 5, 200, 100, 0, 255, 6, 6, 2, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		fix := matchertest.NewFixture()
		m := shard.New(fix.Catalog, fix.Funcs)
		ref := make(map[pred.ID]*pred.Bound)
		var live []pred.ID
		next := pred.ID(0)

		for i := 0; i+3 < len(data) && i < 4*200; i += 4 {
			op, relSel, a, b := data[i], data[i+1], data[i+2], data[i+3]
			rel := fix.Rels[int(relSel)%len(fix.Rels)]
			rng := rand.New(rand.NewSource(int64(a)<<8 | int64(b)))
			switch op % 4 {
			case 0, 1: // add a predicate on the selected relation
				n := 1 + int(a)%3
				clauses := make([]pred.Clause, n)
				for c := range clauses {
					clauses[c] = fix.RandomClause(rng, rel)
				}
				p := pred.New(next, rel.Name(), clauses...)
				next++
				if err := m.Add(p); err != nil {
					t.Fatalf("Add(%v): %v", p, err)
				}
				bound, err := p.Bind(fix.Catalog, fix.Funcs)
				if err != nil {
					t.Fatalf("Bind(%v): %v", p, err)
				}
				ref[p.ID] = bound
				live = append(live, p.ID)
			case 2: // remove a live predicate (or probe the error path)
				if len(live) == 0 {
					if err := m.Remove(next + 100); err == nil {
						t.Fatal("Remove of unknown id accepted")
					}
					continue
				}
				j := (int(a)*37 + int(b)) % len(live)
				id := live[j]
				live = append(live[:j], live[j+1:]...)
				if err := m.Remove(id); err != nil {
					t.Fatalf("Remove(%d): %v", id, err)
				}
				delete(ref, id)
			default: // match a random tuple, including bogus relations
				if a%7 == 0 {
					got, err := m.Match(string(data[i:i+2]), fix.RandomTuple(rng, rel), nil)
					if err != nil || len(got) != 0 {
						t.Fatalf("bogus relation matched %v, %v", got, err)
					}
					continue
				}
				tup := fix.RandomTuple(rng, rel)
				got, err := m.Match(rel.Name(), tup, nil)
				if err != nil {
					t.Fatalf("Match: %v", err)
				}
				sort.Slice(got, func(x, y int) bool { return got[x] < got[y] })
				var want []pred.ID
				for id, bound := range ref {
					if bound.Pred.Rel == rel.Name() && bound.Match(tup) {
						want = append(want, id)
					}
				}
				sort.Slice(want, func(x, y int) bool { return want[x] < want[y] })
				if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
					t.Fatalf("Match(%s, %v) = %v, want %v", rel.Name(), tup, got, want)
				}
			}
			if m.Len() != len(ref) {
				t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
			}
		}

		// Final sweep: every relation, several tuples.
		rng := rand.New(rand.NewSource(99))
		for _, rel := range fix.Rels {
			for k := 0; k < 8; k++ {
				tup := fix.RandomTuple(rng, rel)
				got, err := m.Match(rel.Name(), tup, nil)
				if err != nil {
					t.Fatalf("sweep Match: %v", err)
				}
				sort.Slice(got, func(x, y int) bool { return got[x] < got[y] })
				var want []pred.ID
				for id, bound := range ref {
					if bound.Pred.Rel == rel.Name() && bound.Match(tup) {
						want = append(want, id)
					}
				}
				sort.Slice(want, func(x, y int) bool { return want[x] < want[y] })
				if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
					t.Fatalf("sweep Match(%s, %v) = %v, want %v", rel.Name(), tup, got, want)
				}
			}
		}
	})
}
