package shard_test

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"predmatch/internal/core"
	"predmatch/internal/matchertest"
	"predmatch/internal/pred"
	"predmatch/internal/shard"
)

// history records the sequence of predicate-set versions a single
// writer produces. Version v is the live ID set after the first v ops.
// The writer appends the next version's live set BEFORE applying the op
// to the matchers, so at any instant the published matcher state
// corresponds to some already-recorded version: if a reader observes
// versions [vStart, vEnd] around a Match call, the state it matched
// against is one of versions vStart-1 .. vEnd (the -1 covers an op that
// was recorded but not yet applied when vStart was read).
type history struct {
	mu   sync.Mutex
	live [][]pred.ID // live[v] is sorted
}

func (h *history) version() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.live) - 1
}

func (h *history) at(v int) []pred.ID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live[v]
}

func (h *history) append(next []pred.ID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.live = append(h.live, next)
}

// TestLinearizabilityLite interleaves Add/Remove/Match on the
// ShardedMatcher against a mutex-guarded core.Index applied in
// lockstep, and asserts that every ID set a concurrent Match returns
// was valid at some version between the call's start and its end —
// snapshot reads may be stale, but never torn and never fabricated.
func TestLinearizabilityLite(t *testing.T) {
	fix := matchertest.NewFixture()
	sharded := shard.New(fix.Catalog, fix.Funcs)
	oracle := matchertest.Synchronized(core.New(fix.Catalog, fix.Funcs))

	const poolSize = 60
	ops := 400
	if testing.Short() {
		ops = 100
	}
	rng := rand.New(rand.NewSource(17))
	pool := make([]*pred.Predicate, poolSize)
	bounds := make([]*pred.Bound, poolSize)
	for i := range pool {
		p := fix.RandomPredicate(rng, pred.ID(i))
		b, err := p.Bind(fix.Catalog, fix.Funcs)
		if err != nil {
			t.Fatal(err)
		}
		pool[i], bounds[i] = p, b
	}

	h := &history{live: [][]pred.ID{nil}} // version 0: empty set
	done := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup

	// The single writer toggles random pool predicates on both matchers
	// in lockstep, recording each version before applying it.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		liveSet := make(map[pred.ID]bool)
		for op := 0; op < ops; op++ {
			i := rng.Intn(poolSize)
			id := pool[i].ID
			add := !liveSet[id]
			liveSet[id] = add
			if !add {
				delete(liveSet, id)
			}
			next := make([]pred.ID, 0, len(liveSet))
			for x := range liveSet {
				next = append(next, x)
			}
			sort.Slice(next, func(a, b int) bool { return next[a] < next[b] })
			h.append(next)
			if add {
				if err := sharded.Add(pool[i]); err != nil {
					t.Errorf("sharded Add(%d): %v", id, err)
					return
				}
				if err := oracle.Add(pool[i]); err != nil {
					t.Errorf("oracle Add(%d): %v", id, err)
					return
				}
			} else {
				if err := sharded.Remove(id); err != nil {
					t.Errorf("sharded Remove(%d): %v", id, err)
					return
				}
				if err := oracle.Remove(id); err != nil {
					t.Errorf("oracle Remove(%d): %v", id, err)
					return
				}
			}
		}
	}()

	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(500 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				rel := fix.Rels[rng.Intn(len(fix.Rels))]
				tup := fix.RandomTuple(rng, rel)
				vStart := h.version()
				got, err := sharded.Match(rel.Name(), tup, nil)
				if err != nil {
					t.Errorf("reader %d: Match: %v", r, err)
					return
				}
				vEnd := h.version()
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })

				lo := vStart - 1
				if lo < 0 {
					lo = 0
				}
				ok := false
				for v := lo; v <= vEnd && !ok; v++ {
					var want []pred.ID
					for _, id := range h.at(v) {
						b := bounds[id]
						if b.Pred.Rel == rel.Name() && b.Match(tup) {
							want = append(want, id)
						}
					}
					ok = reflect.DeepEqual(got, want) ||
						(len(got) == 0 && len(want) == 0)
				}
				if !ok {
					t.Errorf("reader %d: Match(%s, %v) = %v valid at no version in [%d, %d]",
						r, rel.Name(), tup, got, lo, vEnd)
					return
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(done)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	// With the writer quiesced the two implementations must agree
	// exactly — the differential half of the test.
	if sharded.Len() != oracle.Len() {
		t.Fatalf("final Len: sharded %d, oracle %d", sharded.Len(), oracle.Len())
	}
	sweep := rand.New(rand.NewSource(18))
	for _, rel := range fix.Rels {
		for k := 0; k < 60; k++ {
			tup := fix.RandomTuple(sweep, rel)
			a, err := sharded.Match(rel.Name(), tup, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := oracle.Match(rel.Name(), tup, nil)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
			sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
			if !reflect.DeepEqual(a, b) && (len(a) != 0 || len(b) != 0) {
				t.Fatalf("final sweep %s %v: sharded %v, oracle %v", rel.Name(), tup, a, b)
			}
		}
	}
}
