// Package shard implements the serving-layer predicate matcher: the
// paper's first-level hash on relation name (Figure 1) becomes the unit
// of concurrency. Every relation gets its own shard, and every shard
// holds an atomically published, immutable core.Index snapshot covering
// only that relation's predicates.
//
// Concurrency model:
//
//   - Match is lock-free: one atomic load of the shard directory, one
//     atomic load of the shard's snapshot, then a read-only stab against
//     the frozen snapshot. Readers never block writers or each other.
//   - Writers serialize per shard: Add/Remove take the shard's mutex,
//     clone the current snapshot, apply the change to the clone, and
//     publish it with an atomic store. Writers to different relations
//     proceed fully in parallel — the sharding axis the paper's
//     relation-name hash already provides.
//   - Every Match observes a predicate set that actually existed at some
//     instant between the call's start and end (snapshot isolation per
//     relation); it never sees a half-applied write.
//
// MatchBatch amortizes the snapshot acquisition over a whole batch of
// tuples and fans the per-tuple stabs across a worker pool, so all
// tuples of a batch observe the same predicate-set version.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"predmatch/internal/core"
	"predmatch/internal/matcher"
	"predmatch/internal/obs"
	"predmatch/internal/pred"
	"predmatch/internal/prefilter"
	"predmatch/internal/schema"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
)

// minBatchFanout is the batch size below which MatchBatch stays serial;
// smaller batches don't amortize goroutine scheduling.
const minBatchFanout = 16

// ShardedMatcher partitions the predicate index by relation and serves
// lock-free snapshot reads. Construct with New.
type ShardedMatcher struct {
	catalog *schema.Catalog
	funcs   *pred.Registry
	opts    []core.Option
	workers int
	name    string
	met     *metrics // nil unless built with WithMetrics

	// chooser, when installed with WithIndexChooser, supplies extra
	// core options (typically a core.WithIndexFactory) for a relation's
	// first index, letting the adaptive meta-engine pick the structure
	// per relation. It is called with the relation name while the
	// shard's mutex is held, so it must not call back into this matcher.
	chooser func(rel string) []core.Option

	// prof is the workload profile accumulator fed by every Match (stab
	// count/latency/results, prefilter skips, queried attributes). nil
	// unless installed with SetProfiles.
	prof *trace.Profiles

	// pf is the attribute prefilter consulted before every snapshot
	// stab; tuples it proves unmatchable never enter a tree. nil when
	// built with WithoutPrefilter. Mutators keep it ordered against
	// snapshot publication (add before publish, remove after) so it is
	// always at least as permissive as any published snapshot requires.
	pf *prefilter.Filter

	// dir is the immutable relation→shard directory. Shards are only
	// ever added (a relation's shard survives its last predicate), so
	// growing it is a copy-on-write map swap under dirMu; loads are
	// lock-free by design.
	dirMu sync.Mutex
	dir   atomic.Pointer[map[string]*relShard] // write-guarded-by: dirMu

	// ids routes Remove calls to the owning relation and doubles as the
	// cross-shard duplicate-ID check and the Len source.
	idMu sync.Mutex
	ids  map[pred.ID]string // guarded-by: idMu
}

var (
	_ matcher.Matcher       = (*ShardedMatcher)(nil)
	_ matcher.TracedMatcher = (*ShardedMatcher)(nil)
)

// relShard is one relation's slice of the index.
type relShard struct {
	mu sync.Mutex // serializes clone-and-publish writers
	// snap is the published immutable snapshot; nil until the first Add.
	snap atomic.Pointer[core.Index]
	// version counts published snapshots: it advances by one on every
	// successful Add/Remove against this shard, so two reads observing
	// the same version observed the same predicate set.
	version atomic.Uint64
	// lat is the relation's match-latency histogram handle, resolved
	// once at shard creation so Match never takes the vec's lookup
	// lock. nil when the matcher is uninstrumented.
	lat *obs.Histogram
	// prof is the relation's workload-profile handle, resolved once at
	// shard creation for the same reason. nil when unprofiled.
	prof *trace.RelProfile
}

// Option configures a ShardedMatcher.
type Option func(*ShardedMatcher)

// WithWorkers bounds the MatchBatch fan-out (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(m *ShardedMatcher) {
		if n > 0 {
			m.workers = n
		}
	}
}

// WithIndexOptions passes options to every per-shard core.Index, e.g.
// core.WithIndexFactory to swap the attribute index structure.
func WithIndexOptions(opts ...core.Option) Option {
	return func(m *ShardedMatcher) { m.opts = opts }
}

// WithName overrides the strategy name reported in benchmarks.
func WithName(name string) Option {
	return func(m *ShardedMatcher) { m.name = name }
}

// WithIndexChooser installs a per-relation index-option chooser: when a
// relation's first predicate arrives, the chooser's options are applied
// after the matcher-wide WithIndexOptions, so a core.WithIndexFactory it
// returns wins. The chooser runs under the relation shard's mutex and
// must be lock-free with respect to this matcher (the meta-engine
// satisfies this by reading an atomically published decision map). A
// nil return or a nil chooser keeps the static options.
func WithIndexChooser(f func(rel string) []core.Option) Option {
	return func(m *ShardedMatcher) { m.chooser = f }
}

// WithoutPrefilter disables the attribute prefilter, sending every
// tuple straight to the snapshot stab. Intended for benchmarks that
// isolate raw index cost; the filter is on by default and is purely an
// over-approximation, so disabling it never changes match results.
func WithoutPrefilter() Option {
	return func(m *ShardedMatcher) { m.pf = nil }
}

// New returns an empty sharded matcher resolving predicates against the
// given catalog and function registry.
func New(catalog *schema.Catalog, funcs *pred.Registry, opts ...Option) *ShardedMatcher {
	m := &ShardedMatcher{
		catalog: catalog,
		funcs:   funcs,
		workers: runtime.GOMAXPROCS(0),
		name:    "sharded",
		ids:     make(map[pred.ID]string),
		pf:      prefilter.New(catalog),
	}
	empty := make(map[string]*relShard)
	m.dir.Store(&empty) //predmatchvet:ignore guardedby constructor publish; m is not shared yet
	for _, o := range opts {
		o(m)
	}
	return m
}

// SetProfiles installs the workload profile accumulator every shard
// feeds. Install before registering predicates (shards resolve their
// profile handle at creation); the server does this right after
// constructing the matcher, before recovery replays any DDL.
func (m *ShardedMatcher) SetProfiles(p *trace.Profiles) { m.prof = p }

// Name implements matcher.Matcher.
func (m *ShardedMatcher) Name() string { return m.name }

// Len implements matcher.Matcher.
func (m *ShardedMatcher) Len() int {
	m.idMu.Lock()
	defer m.idMu.Unlock()
	return len(m.ids)
}

// shard returns rel's shard, or nil if no predicate was ever added for
// rel. Lock-free.
func (m *ShardedMatcher) shard(rel string) *relShard {
	return (*m.dir.Load())[rel]
}

// shardOrCreate returns rel's shard, growing the directory on first use
// of a relation via a copy-on-write map swap.
func (m *ShardedMatcher) shardOrCreate(rel string) *relShard {
	if sh := m.shard(rel); sh != nil {
		return sh
	}
	m.dirMu.Lock()
	defer m.dirMu.Unlock()
	cur := *m.dir.Load()
	if sh := cur[rel]; sh != nil {
		return sh
	}
	next := make(map[string]*relShard, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	sh := &relShard{}
	if m.met != nil {
		sh.lat = m.met.lat.With(rel)
	}
	if m.prof != nil {
		var names []string
		if r, ok := m.catalog.Get(rel); ok {
			for _, a := range r.Attrs() {
				names = append(names, a.Name)
			}
		}
		sh.prof = m.prof.Rel(rel, names)
	}
	next[rel] = sh
	m.dir.Store(&next)
	return sh
}

// Add implements matcher.Matcher: validate, reserve the ID globally,
// then clone-and-publish the owning relation's shard.
func (m *ShardedMatcher) Add(p *pred.Predicate) error {
	// Validate up front so a bad predicate never creates a shard or
	// reserves an ID.
	if err := p.Validate(m.catalog, m.funcs); err != nil {
		return err
	}
	m.idMu.Lock()
	if _, dup := m.ids[p.ID]; dup {
		m.idMu.Unlock()
		return fmt.Errorf("shard: duplicate predicate id %d", p.ID)
	}
	m.ids[p.ID] = p.Rel
	m.idMu.Unlock()

	sh := m.shardOrCreate(p.Rel)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var next *core.Index
	if cur := sh.snap.Load(); cur != nil {
		next = cur.Clone()
	} else {
		opts := m.opts
		if m.chooser != nil {
			if extra := m.chooser(p.Rel); len(extra) > 0 {
				opts = append(append([]core.Option(nil), m.opts...), extra...)
			}
		}
		next = core.New(m.catalog, m.funcs, opts...)
	}
	if err := next.Add(p); err != nil {
		m.idMu.Lock()
		delete(m.ids, p.ID)
		m.idMu.Unlock()
		return err
	}
	// Register with the prefilter BEFORE publishing: a reader observing
	// the new snapshot is then guaranteed to also observe a filter that
	// knows about p, so the filter can never skip a tuple p matches.
	if m.pf != nil {
		if err := m.pf.Add(p); err != nil {
			m.idMu.Lock()
			delete(m.ids, p.ID)
			m.idMu.Unlock()
			return err
		}
	}
	sh.snap.Store(next)
	sh.version.Add(1)
	// A predicate registration is a write against the relation's index
	// structure (one clone-and-publish); the workload profile's write
	// rate is what the adaptive meta-engine charges structure
	// maintenance against.
	sh.prof.RecordWrite()
	if m.met != nil {
		m.met.swaps.Inc()
	}
	return nil
}

// Remove implements matcher.Matcher, routing by the ID's owning
// relation.
func (m *ShardedMatcher) Remove(id pred.ID) error {
	m.idMu.Lock()
	rel, ok := m.ids[id]
	if !ok {
		m.idMu.Unlock()
		return fmt.Errorf("shard: unknown predicate id %d", id)
	}
	delete(m.ids, id)
	m.idMu.Unlock()

	sh := m.shard(rel)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	next := sh.snap.Load().Clone()
	if err := next.Remove(id); err != nil {
		m.idMu.Lock()
		m.ids[id] = rel
		m.idMu.Unlock()
		return err
	}
	sh.snap.Store(next)
	sh.version.Add(1)
	sh.prof.RecordWrite()
	// Drop from the prefilter AFTER publishing: until then the filter
	// stays permissive enough for the old snapshot (over-admission is
	// free; a reader seeing the narrowed filter with the old snapshot
	// linearizes after this Remove).
	if m.pf != nil {
		_ = m.pf.Remove(rel, id) // the ids map guarantees the entry exists
	}
	if m.met != nil {
		m.met.swaps.Inc()
	}
	return nil
}

// migrateRetries bounds how many times Migrate rebuilds off-lock before
// falling back to rebuilding under the shard mutex. Under sustained
// write pressure the off-lock rebuild can lose the publish race forever;
// the bounded fallback guarantees termination at the cost of blocking
// that relation's writers for one rebuild.
const migrateRetries = 3

// Migrate rebuilds rel's index under the given extra core options
// (typically a core.WithIndexFactory naming a different structure) and
// publishes the result through the usual atomic snapshot swap. The
// rebuild runs off-lock against the current frozen snapshot; before
// publishing, Migrate takes the shard mutex and verifies no writer
// published in between (version check), retrying a bounded number of
// times and finally rebuilding under the lock. Readers see either the
// old or the new structure, never a torn one, and concurrent writers
// are never lost. Subsequent writes Clone the migrated snapshot, which
// preserves its factory — the relation stays on the new structure.
//
// Returns false when rel has no shard or no published snapshot yet (the
// chooser installed with WithIndexChooser governs the structure of the
// first snapshot instead).
func (m *ShardedMatcher) Migrate(rel string, opts ...core.Option) (bool, error) {
	sh := m.shard(rel)
	if sh == nil {
		return false, nil
	}
	full := append(append([]core.Option(nil), m.opts...), opts...)
	for attempt := 0; attempt < migrateRetries; attempt++ {
		v0 := sh.version.Load()
		cur := sh.snap.Load()
		if cur == nil {
			return false, nil
		}
		next, err := cur.Rebuild(full...)
		if err != nil {
			return false, err
		}
		sh.mu.Lock()
		if sh.version.Load() == v0 {
			sh.snap.Store(next) //predmatchvet:ignore atomicpub the version equality check under the lock proves the pre-lock snapshot is still current — stricter than a re-Load
			sh.version.Add(1)
			sh.mu.Unlock()
			if m.met != nil {
				m.met.swaps.Inc()
			}
			return true, nil
		}
		sh.mu.Unlock()
	}
	// Writers keep outrunning the off-lock rebuild: do the final rebuild
	// while holding the mutex so it cannot be invalidated.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.snap.Load()
	if cur == nil {
		return false, nil
	}
	next, err := cur.Rebuild(full...)
	if err != nil {
		return false, err
	}
	sh.snap.Store(next)
	sh.version.Add(1)
	if m.met != nil {
		m.met.swaps.Inc()
	}
	return true, nil
}

// Match implements matcher.Matcher with a lock-free snapshot read.
func (m *ShardedMatcher) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	return m.MatchTraced(rel, t, dst, nil)
}

// MatchTraced implements matcher.TracedMatcher: Match, additionally
// attaching child spans for the snapshot load, the prefilter verdict
// and the stab to sp. A nil sp records no spans (every span call is a
// nil-receiver no-op), so the untraced path pays only nil checks.
func (m *ShardedMatcher) MatchTraced(rel string, t tuple.Tuple, dst []pred.ID, sp *trace.Span) ([]pred.ID, error) {
	ssp := sp.Child("shard.snapshot")
	sh := m.shard(rel)
	var snap *core.Index
	if sh != nil {
		snap = sh.snap.Load()
	}
	if snap == nil {
		ssp.SetBool("miss", true)
		ssp.End()
		return dst, nil
	}
	if sp != nil {
		ssp.SetInt("version", int64(sh.version.Load()))
	}
	ssp.End()
	// The filter is consulted after the snapshot load: if this reader
	// observed a snapshot containing predicate p, the writer's filter
	// registration of p (sequenced before the publish) is visible too.
	if m.pf != nil {
		admit := m.pf.Admit(rel, t)
		if sp != nil {
			psp := sp.Child("shard.prefilter")
			psp.SetBool("admit", admit)
			psp.End()
		}
		if !admit {
			sh.prof.Skip()
			return dst, nil
		}
	}
	if sh.lat == nil && sh.prof == nil && sp == nil {
		return snap.MatchSnapshot(rel, t, dst)
	}
	tsp := sp.Child("shard.stab")
	t0 := time.Now()
	out, err := snap.MatchSnapshot(rel, t, dst)
	d := time.Since(t0)
	if sh.lat != nil {
		sh.lat.Observe(d.Seconds())
	}
	if sh.prof != nil {
		sh.prof.Stab(d, len(out))
		if m.pf != nil {
			// Attribute the stab to the positions the index consulted:
			// those carrying at least one interval clause.
			for i, word := range m.pf.QueriedBits(rel) {
				for b := 0; word != 0; b, word = b+1, word>>1 {
					if word&1 != 0 {
						sh.prof.QueriedAttr(i*64 + b)
					}
				}
			}
		}
	}
	if sp != nil {
		tsp.SetStr("rel", rel)
		tsp.SetInt("results", int64(len(out)))
	}
	tsp.End()
	return out, err
}

// MatchBatch matches every tuple of rel against one snapshot acquired
// once for the whole batch, fanning the tuples across the worker pool.
// results[i] holds the matches of tuples[i]; all tuples observe the
// same predicate-set version even while writers publish concurrently.
func (m *ShardedMatcher) MatchBatch(rel string, tuples []tuple.Tuple) ([][]pred.ID, error) {
	results := make([][]pred.ID, len(tuples))
	sh := m.shard(rel)
	if sh == nil || len(tuples) == 0 {
		return results, nil
	}
	if m.met != nil {
		m.met.batchTuples.Observe(float64(len(tuples)))
		defer m.met.batchSecs.ObserveSince(time.Now())
	}
	snap := sh.snap.Load()
	if snap == nil {
		return results, nil
	}
	workers := m.workers
	if workers > len(tuples) {
		workers = len(tuples)
	}
	if workers <= 1 || len(tuples) < minBatchFanout {
		var err error
		for i, t := range tuples {
			if m.pf != nil && !m.pf.Admit(rel, t) {
				continue
			}
			if results[i], err = snap.MatchSnapshot(rel, t, nil); err != nil {
				return results, err
			}
		}
		return results, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(tuples) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if m.pf != nil && !m.pf.Admit(rel, tuples[i]) {
					continue
				}
				out, err := snap.MatchSnapshot(rel, tuples[i], nil)
				if err != nil {
					errs[w] = err
					return
				}
				results[i] = out
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Snapshot returns rel's current frozen index, or nil if the relation
// has never held a predicate. The returned index must be treated as
// read-only (use MatchSnapshot); it stays valid forever — later writes
// publish new snapshots instead of mutating it.
func (m *ShardedMatcher) Snapshot(rel string) *core.Index {
	sh := m.shard(rel)
	if sh == nil {
		return nil
	}
	return sh.snap.Load()
}

// ShardStats describes one relation shard: how many predicates its
// current snapshot holds and which snapshot version is published.
type ShardStats struct {
	Rel        string
	Predicates int
	Version    uint64
	// Structure is the snapshot's index strategy name (core.WithName) —
	// under the adaptive meta-matcher this varies per relation and over
	// time as migrations land. Empty while no snapshot is published.
	Structure string
}

// Stats reports every shard's predicate count and snapshot version,
// sorted by relation. Each shard's count/version pair is read
// atomically-enough for monitoring (the two loads are not fenced
// together, so a concurrent write may skew one entry by one).
func (m *ShardedMatcher) Stats() []ShardStats {
	dir := *m.dir.Load()
	out := make([]ShardStats, 0, len(dir))
	for rel, sh := range dir {
		s := ShardStats{Rel: rel, Version: sh.version.Load()}
		if snap := sh.snap.Load(); snap != nil {
			s.Predicates = snap.Len()
			s.Structure = snap.Name()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out
}

// PrefilterStats returns the attribute prefilter's admission counters;
// ok is false when the matcher was built with WithoutPrefilter.
func (m *ShardedMatcher) PrefilterStats() (s prefilter.Stats, ok bool) {
	if m.pf == nil {
		return prefilter.Stats{}, false
	}
	return m.pf.Stats(), true
}

// Relations returns the relations that currently have a shard (any
// relation that ever held a predicate).
func (m *ShardedMatcher) Relations() []string {
	dir := *m.dir.Load()
	out := make([]string, 0, len(dir))
	for rel := range dir {
		out = append(out, rel)
	}
	return out
}

// Trees aggregates the attribute-tree statistics of every shard's
// current snapshot (see core.Index.Trees), for instrumentation and the
// script interpreter's stats statement.
func (m *ShardedMatcher) Trees() []core.TreeStats {
	var out []core.TreeStats
	for _, sh := range *m.dir.Load() {
		if snap := sh.snap.Load(); snap != nil {
			out = append(out, snap.Trees()...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}
