package shard_test

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"predmatch/internal/core"
	"predmatch/internal/interval"
	"predmatch/internal/islist"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/pred"
	"predmatch/internal/shard"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func newSharded(f *matchertest.Fixture) matcher.Matcher {
	return shard.New(f.Catalog, f.Funcs)
}

// TestConformance runs the sharded matcher through the sequential
// conformance suite every strategy must pass.
func TestConformance(t *testing.T) {
	matchertest.Run(t, newSharded)
}

// TestConcurrentConformance runs the read/write storm harness against
// the matcher bare — its native concurrency is the point.
func TestConcurrentConformance(t *testing.T) {
	matchertest.RunConcurrent(t, newSharded)
}

// TestConformanceSkipListShards swaps the per-shard attribute index via
// WithIndexOptions, checking the option plumbing end to end.
func TestConformanceSkipListShards(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return shard.New(f.Catalog, f.Funcs,
			shard.WithIndexOptions(core.WithIndexFactory(func() core.AttrIndex {
				return islist.New(value.Compare)
			})),
			shard.WithName("sharded-islist"))
	})
}

func TestNameAndOptions(t *testing.T) {
	f := matchertest.NewFixture()
	if got := shard.New(f.Catalog, f.Funcs).Name(); got != "sharded" {
		t.Errorf("Name = %q, want sharded", got)
	}
	m := shard.New(f.Catalog, f.Funcs, shard.WithName("x"), shard.WithWorkers(2))
	if got := m.Name(); got != "x" {
		t.Errorf("Name = %q, want x", got)
	}
}

// TestMatchBatch checks that a batch returns exactly the per-tuple
// Match results, positionally, across both the serial and the fanned-out
// paths.
func TestMatchBatch(t *testing.T) {
	f := matchertest.NewFixture()
	rng := rand.New(rand.NewSource(3))
	for _, workers := range []int{1, 4} {
		m := shard.New(f.Catalog, f.Funcs, shard.WithWorkers(workers))
		for id := pred.ID(0); id < 60; id++ {
			if err := m.Add(f.RandomPredicate(rng, id)); err != nil {
				t.Fatal(err)
			}
		}
		for _, rel := range f.Rels {
			for _, n := range []int{0, 1, 5, 64} {
				tuples := make([]tuple.Tuple, n)
				for i := range tuples {
					tuples[i] = f.RandomTuple(rng, rel)
				}
				batch, err := m.MatchBatch(rel.Name(), tuples)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch) != n {
					t.Fatalf("MatchBatch returned %d results for %d tuples", len(batch), n)
				}
				for i, tup := range tuples {
					want, err := m.Match(rel.Name(), tup, nil)
					if err != nil {
						t.Fatal(err)
					}
					got := batch[i]
					sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
					sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
					if !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
						t.Fatalf("workers=%d %s tuple %d: batch %v, Match %v",
							workers, rel.Name(), i, got, want)
					}
				}
			}
		}
	}
}

// TestMatchBatchUnknownRelation covers the empty-shard paths.
func TestMatchBatchUnknownRelation(t *testing.T) {
	f := matchertest.NewFixture()
	m := shard.New(f.Catalog, f.Funcs)
	res, err := m.MatchBatch("nosuch", make([]tuple.Tuple, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if len(r) != 0 {
			t.Fatalf("unexpected matches %v", r)
		}
	}
}

// TestSnapshotFrozen pins down the published-snapshot contract: an index
// obtained before a write keeps answering with the old predicate set.
func TestSnapshotFrozen(t *testing.T) {
	f := matchertest.NewFixture()
	m := shard.New(f.Catalog, f.Funcs)
	mustAdd := func(p *pred.Predicate) {
		t.Helper()
		if err := m.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(pred.New(1, "emp", pred.IvClause("salary", interval.AtLeast(value.Int(50)))))
	old := m.Snapshot("emp")
	if old == nil {
		t.Fatal("no snapshot after Add")
	}
	mustAdd(pred.New(2, "emp", pred.IvClause("salary", interval.AtLeast(value.Int(10)))))

	tup := tuple.New(value.String_("a"), value.Int(30), value.Int(60), value.String_("toy"))
	gotOld, err := old.MatchSnapshot("emp", tup, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotOld, []pred.ID{1}) {
		t.Fatalf("old snapshot matched %v, want [1]", gotOld)
	}
	gotNew, err := m.Match("emp", tup, nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(gotNew, func(i, j int) bool { return gotNew[i] < gotNew[j] })
	if !reflect.DeepEqual(gotNew, []pred.ID{1, 2}) {
		t.Fatalf("current matched %v, want [1 2]", gotNew)
	}
	if m.Snapshot("events") != nil {
		t.Error("snapshot for predicate-free relation should be nil")
	}
}

// TestCrossShardWriterParallelism checks that writers on different
// relations do not corrupt each other (per-shard mutexes are
// independent; the race detector covers the rest).
func TestCrossShardWriterParallelism(t *testing.T) {
	f := matchertest.NewFixture()
	m := shard.New(f.Catalog, f.Funcs)
	var wg sync.WaitGroup
	perRel := 50
	for w, rel := range f.Rels {
		wg.Add(1)
		go func(w int, relName string) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := pred.ID(w * perRel)
			for i := 0; i < perRel; i++ {
				rel := f.Rels[w]
				clauses := []pred.Clause{f.RandomClause(rng, rel)}
				if err := m.Add(pred.New(base+pred.ID(i), relName, clauses...)); err != nil {
					t.Errorf("%s: Add: %v", relName, err)
					return
				}
			}
			for i := 0; i < perRel/2; i++ {
				if err := m.Remove(base + pred.ID(i)); err != nil {
					t.Errorf("%s: Remove: %v", relName, err)
					return
				}
			}
		}(w, rel.Name())
	}
	wg.Wait()
	if want := len(f.Rels) * (perRel - perRel/2); m.Len() != want {
		t.Fatalf("Len = %d, want %d", m.Len(), want)
	}
	rels := m.Relations()
	if len(rels) != len(f.Rels) {
		t.Fatalf("Relations = %v", rels)
	}
}

// TestMatchBatchSeesOneVersion adds predicates concurrently with a
// large batch: every tuple of the batch must observe the same snapshot,
// so two identical tuples in the same batch must get identical results.
func TestMatchBatchSeesOneVersion(t *testing.T) {
	f := matchertest.NewFixture()
	m := shard.New(f.Catalog, f.Funcs, shard.WithWorkers(4))
	rel := f.Rels[0]
	// One fixed tuple repeated across the batch.
	tup := tuple.New(value.String_("alice"), value.Int(50), value.Int(50), value.String_("shoe"))
	if err := m.Add(pred.New(0, rel.Name(),
		pred.IvClause("salary", interval.AtLeast(value.Int(10))))); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		id := pred.ID(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Add(pred.New(id, rel.Name(),
				pred.IvClause("age", interval.AtLeast(value.Int(0))))); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			id++
		}
	}()

	tuples := make([]tuple.Tuple, 256)
	for i := range tuples {
		tuples[i] = tup
	}
	for round := 0; round < 20; round++ {
		batch, err := m.MatchBatch(rel.Name(), tuples)
		if err != nil {
			t.Fatal(err)
		}
		first := append([]pred.ID(nil), batch[0]...)
		sort.Slice(first, func(i, j int) bool { return first[i] < first[j] })
		for i := 1; i < len(batch); i++ {
			got := append([]pred.ID(nil), batch[i]...)
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			if !reflect.DeepEqual(first, got) {
				t.Fatalf("round %d: batch position %d saw %v, position 0 saw %v (torn snapshot)",
					round, i, got, first)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestStats(t *testing.T) {
	f := matchertest.NewFixture()
	m := shard.New(f.Catalog, f.Funcs)
	if got := m.Stats(); len(got) != 0 {
		t.Fatalf("empty matcher stats = %+v", got)
	}
	age := func(id pred.ID, lo int64) *pred.Predicate {
		return pred.New(id, "emp", pred.IvClause("age", interval.AtLeast(value.Int(lo))))
	}
	for i, p := range []*pred.Predicate{
		age(1, 10),
		age(2, 20),
		pred.New(3, "items", pred.IvClause("stock", interval.AtMost(value.Int(5)))),
	} {
		if err := m.Add(p); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	want := []shard.ShardStats{
		{Rel: "emp", Predicates: 2, Version: 2, Structure: "ibs"},
		{Rel: "items", Predicates: 1, Version: 1, Structure: "ibs"},
	}
	if got := m.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Stats after adds = %+v, want %+v", got, want)
	}
	if err := m.Remove(2); err != nil {
		t.Fatal(err)
	}
	// A removal publishes a new snapshot: the count drops, the version
	// still advances — the shard itself survives with zero predicates
	// once its last predicate goes.
	if err := m.Remove(3); err != nil {
		t.Fatal(err)
	}
	want = []shard.ShardStats{
		{Rel: "emp", Predicates: 1, Version: 3, Structure: "ibs"},
		{Rel: "items", Predicates: 0, Version: 2, Structure: "ibs"},
	}
	if got := m.Stats(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Stats after removes = %+v, want %+v", got, want)
	}
}
