// Metrics for the serving-layer matcher. Hot-path instrumentation is
// allocation-free: each relShard resolves its latency-histogram handle
// once at shard creation, so Match pays one time.Time read and one
// histogram observe per call — and nothing at all when the matcher was
// built without WithMetrics. Everything derivable from existing
// snapshot state (predicate counts, snapshot versions, tree shapes) is
// exported as scrape-time gauge sets instead of hot-path counters.
package shard

import "predmatch/internal/obs"

// metrics holds the handles a ShardedMatcher updates on its hot paths.
// nil (the default) disables all of it.
type metrics struct {
	lat         *obs.HistogramVec // per-relation match latency
	batchSecs   *obs.Histogram    // whole-batch MatchBatch latency
	batchTuples *obs.Histogram    // MatchBatch batch sizes
	swaps       *obs.Counter      // snapshot publications (Add/Remove)
}

// WithMetrics registers the matcher's metric families on reg and turns
// on hot-path instrumentation. A nil reg leaves the matcher completely
// uninstrumented (every handle below is nil, and nil handles are
// no-ops). Scrape-time families walk the lock-free snapshot directory,
// so exposition never blocks writers.
func WithMetrics(reg *obs.Registry) Option {
	return func(m *ShardedMatcher) {
		if reg == nil {
			return
		}
		m.met = &metrics{
			lat: reg.HistogramVec("predmatch_match_latency_seconds",
				"Latency of single-tuple Match calls by relation.",
				obs.DefBuckets, "rel"),
			batchSecs: reg.Histogram("predmatch_match_batch_seconds",
				"Latency of whole MatchBatch calls."),
			batchTuples: reg.Histogram("predmatch_match_batch_tuples",
				"Tuples per MatchBatch call.",
				obs.ExponentialBuckets(1, 4, 8)...),
			swaps: reg.Counter("predmatch_shard_snapshot_swaps_total",
				"Copy-on-write snapshot publications (Add/Remove commits)."),
		}
		if m.pf != nil {
			reg.CounterFunc("predmatch_prefilter_admitted_total",
				"Tuples the attribute prefilter passed through to a full index probe.",
				m.pf.Admitted)
			reg.CounterFunc("predmatch_prefilter_skipped_total",
				"Tuples the attribute prefilter proved unmatchable without touching a tree.",
				m.pf.Skipped)
		}
		reg.GaugeSet("predmatch_shard_predicates",
			"Predicates held by each relation shard's current snapshot.",
			[]string{"rel"}, func(emit obs.Emit) {
				for _, s := range m.Stats() {
					emit(float64(s.Predicates), s.Rel)
				}
			})
		reg.GaugeSet("predmatch_shard_snapshot_version",
			"Published snapshot version of each relation shard.",
			[]string{"rel"}, func(emit obs.Emit) {
				for _, s := range m.Stats() {
					emit(float64(s.Version), s.Rel)
				}
			})
		reg.GaugeSet("predmatch_ibs_tree_nodes",
			"Endpoint nodes per attribute IBS-tree.",
			[]string{"rel", "attr"}, func(emit obs.Emit) {
				for _, ts := range m.Trees() {
					emit(float64(ts.Nodes), ts.Rel, ts.Attr)
				}
			})
		reg.GaugeSet("predmatch_ibs_tree_markers",
			"Marks placed per attribute IBS-tree (the paper's Section 5.1 space measure).",
			[]string{"rel", "attr"}, func(emit obs.Emit) {
				for _, ts := range m.Trees() {
					emit(float64(ts.Markers), ts.Rel, ts.Attr)
				}
			})
		reg.GaugeSet("predmatch_ibs_tree_height",
			"Height per attribute IBS-tree (the log N term of stab cost).",
			[]string{"rel", "attr"}, func(emit obs.Emit) {
				for _, ts := range m.Trees() {
					emit(float64(ts.Height), ts.Rel, ts.Attr)
				}
			})
	}
}
