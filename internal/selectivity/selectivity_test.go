package selectivity

import (
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func TestStaticDefaults(t *testing.T) {
	est := Static{}
	cases := []struct {
		c    pred.Clause
		want float64
	}{
		{pred.EqClause("a", value.Int(1)), 0.1},
		{pred.IvClause("a", interval.Closed(value.Int(1), value.Int(5))), 0.25},
		{pred.IvClause("a", interval.AtLeast(value.Int(1))), 1.0 / 3.0},
		{pred.IvClause("a", interval.AtMost(value.Int(1))), 1.0 / 3.0},
		{pred.IvClause("a", interval.All[value.Value]()), 1},
		{pred.FnClause("a", "isodd"), 1},
	}
	for _, tc := range cases {
		if got := est.Selectivity("r", tc.c); got != tc.want {
			t.Errorf("Selectivity(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func statsDB(t *testing.T) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	rel := schema.MustRelation("emp",
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "dept", Type: value.KindString},
	)
	tab, err := db.CreateRelation(rel)
	if err != nil {
		t.Fatal(err)
	}
	depts := []string{"a", "b"}
	for i := int64(0); i < 100; i++ {
		_, err := tab.Insert(tuple.New(value.Int(i), value.String_(depts[i%2])))
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestFromStats(t *testing.T) {
	db := statsDB(t)
	est := FromStats{DB: db}
	// Ages 0..99, uniform: [0,24] selects 25%.
	c := pred.IvClause("age", interval.Closed(value.Int(0), value.Int(24)))
	if got := est.Selectivity("emp", c); got != 0.25 {
		t.Errorf("range selectivity = %v, want 0.25", got)
	}
	// Equality on age: 100 distinct values -> 1/100.
	if got := est.Selectivity("emp", pred.EqClause("age", value.Int(5))); got != 0.01 {
		t.Errorf("eq selectivity = %v, want 0.01", got)
	}
	// Equality on dept: 2 distinct -> 1/2.
	if got := est.Selectivity("emp", pred.EqClause("dept", value.String_("a"))); got != 0.5 {
		t.Errorf("dept eq selectivity = %v, want 0.5", got)
	}
	// Function clause: never indexable, selectivity 1.
	if got := est.Selectivity("emp", pred.FnClause("age", "isodd")); got != 1 {
		t.Errorf("fn selectivity = %v", got)
	}
	// Unknown relation falls back to defaults.
	if got := est.Selectivity("nosuch", pred.EqClause("age", value.Int(1))); got != 0.1 {
		t.Errorf("fallback selectivity = %v", got)
	}
}

func TestChooseClause(t *testing.T) {
	db := statsDB(t)
	est := FromStats{DB: db}
	p := pred.New(1, "emp",
		pred.IvClause("age", interval.AtLeast(value.Int(50))), // 0.5
		pred.EqClause("age", value.Int(7)),                    // 0.01  <- most selective
		pred.EqClause("dept", value.String_("a")),             // 0.5
		pred.FnClause("age", "isodd"),                         // not indexable
	)
	best, ok := ChooseClause(p, est)
	if !ok || best != 1 {
		t.Fatalf("ChooseClause = %d, %v; want 1", best, ok)
	}
	// All-function predicate: nothing indexable.
	pf := pred.New(2, "emp", pred.FnClause("age", "isodd"))
	if _, ok := ChooseClause(pf, est); ok {
		t.Fatal("ChooseClause found an indexable clause in function-only predicate")
	}
	// Empty predicate.
	pe := pred.New(3, "emp")
	if _, ok := ChooseClause(pe, est); ok {
		t.Fatal("ChooseClause on empty predicate")
	}
	// Tie breaks to the earliest clause.
	pt := pred.New(4, "emp",
		pred.EqClause("age", value.Int(1)),
		pred.EqClause("age", value.Int(2)),
	)
	best, ok = ChooseClause(pt, est)
	if !ok || best != 0 {
		t.Fatalf("tie ChooseClause = %d, want 0", best)
	}
}
