// Package selectivity is the slice of the query optimizer the paper's
// indexing scheme depends on: "if there is an indexable clause, the most
// selective one is placed in the IBS-tree (selectivity estimates are
// obtained from the query optimizer)".
//
// Two estimators are provided. FromStats computes selectivities from the
// storage engine's per-attribute statistics. Static falls back to the
// System R default selectivity factors (Selinger et al. 1979) when no
// data statistics are available, e.g. for a matcher operating without a
// storage engine.
package selectivity

import (
	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/storage"
	"predmatch/internal/value"
)

// Estimator estimates the fraction of tuples of rel satisfying a clause.
type Estimator interface {
	Selectivity(rel string, c pred.Clause) float64
}

// Static returns System R style default selectivity factors without
// consulting data: 1/10 for equality, 1/4 for a bounded interval, 1/3
// for a half-open interval, and 1 for anything unindexable.
type Static struct{}

// Selectivity implements Estimator.
func (Static) Selectivity(rel string, c pred.Clause) float64 {
	if c.Kind != pred.KindInterval {
		return 1
	}
	iv := c.Iv
	switch {
	case iv.IsPoint(value.Compare):
		return 0.1
	case iv.Lo.Kind == interval.Finite && iv.Hi.Kind == interval.Finite:
		return 0.25
	case iv.Lo.Kind == interval.NegInf && iv.Hi.Kind == interval.PosInf:
		return 1
	default:
		return 1.0 / 3.0
	}
}

// FromStats estimates from the storage engine's attribute statistics:
// equality selects 1/distinct, and intervals select the exact stored
// fraction. Empty relations and unknown attributes fall back to Static.
type FromStats struct {
	DB *storage.DB
}

// Selectivity implements Estimator.
func (e FromStats) Selectivity(rel string, c pred.Clause) float64 {
	if c.Kind != pred.KindInterval {
		return 1
	}
	table, ok := e.DB.Table(rel)
	if !ok {
		return Static{}.Selectivity(rel, c)
	}
	stats := table.Stats(c.Attr)
	if stats == nil || stats.Count() == 0 {
		return Static{}.Selectivity(rel, c)
	}
	if c.Iv.IsPoint(value.Compare) {
		return 1 / float64(stats.Distinct())
	}
	return stats.Fraction(c.Iv)
}

// ChooseClause returns the position of the most selective indexable
// clause of p according to est, or ok=false when no clause is indexable
// (the predicate then goes on the non-indexable list of its relation).
// Ties break toward the earliest clause for determinism.
func ChooseClause(p *pred.Predicate, est Estimator) (best int, ok bool) {
	bestSel := 2.0
	best = -1
	for i, c := range p.Clauses {
		if !c.Indexable() {
			continue
		}
		sel := est.Selectivity(p.Rel, c)
		if sel < bestSel {
			bestSel = sel
			best = i
		}
	}
	return best, best >= 0
}
