// Package prefilter implements the cheap admission check the sharded
// matcher consults before stabbing a relation's interval trees: a
// per-relation summary of the registered predicates — which attribute
// positions carry interval clauses (a bitmap) and, for each such
// position, the union envelope of every interval clause on it — that
// lets most non-matching tuples skip the full index probe entirely.
//
// Soundness contract (the only fatal bug is a false negative): Admit
// may over-admit freely, but it must NEVER skip a tuple that any
// registered predicate could match. The skip rule is therefore
// deliberately conservative:
//
//	skip ⟺ the relation has no predicates, OR
//	       (every predicate has at least one interval clause AND the
//	        tuple's value at every bitmap position lies outside that
//	        position's union envelope)
//
// Why that is sound: every interval clause on attribute i is contained
// in envelope(i) (envelopes are unions widened to closed bounds), so a
// tuple missing envelope(i) fails every interval clause on i. If it
// misses every enveloped attribute, every interval clause in the
// relation fails; if additionally every predicate has at least one
// interval clause, every predicate has a failing clause and none can
// match. Predicates made only of function clauses are opaque — one of
// them forces nonInterval > 0 and disables skipping for the relation.
//
// Concurrency model mirrors the shard layer: summaries are immutable
// and published copy-on-write through an atomic pointer, so Admit is a
// single lock-free load plus a few comparisons; mutators (Add/Remove)
// serialize on a mutex and rebuild the owning relation's summary from
// the authoritative predicate registry. Writers must order filter
// updates against snapshot publication so the filter is always at
// least as permissive as any published snapshot requires: Add updates
// the filter BEFORE the snapshot is published, Remove updates it
// AFTER. (internal/shard does exactly this.)
package prefilter

import (
	"fmt"
	"sync"
	"sync/atomic"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Filter is the admission filter for one matcher. Construct with New.
type Filter struct {
	catalog *schema.Catalog

	// mu serializes mutators; the published summaries map is immutable
	// and swapped whole, so Admit never takes it.
	mu    sync.Mutex
	preds map[string]map[pred.ID]*pred.Predicate // guarded-by: mu
	rels  atomic.Pointer[map[string]*relSummary] // write-guarded-by: mu

	admitted atomic.Uint64
	skipped  atomic.Uint64
}

// relSummary is one relation's immutable predicate digest.
type relSummary struct {
	preds       int // registered predicates
	nonInterval int // predicates with no interval clause (opaque to the filter)
	// bits marks attribute positions carrying >=1 interval clause.
	bits []uint64
	// env[i] is the union envelope of all interval clauses on position
	// i, valid only where bits has position i set. Bounds are widened
	// to closed so the envelope is a superset of every clause.
	env []interval.Interval[value.Value]
}

// New returns an empty filter resolving attribute positions against the
// catalog.
func New(catalog *schema.Catalog) *Filter {
	f := &Filter{
		catalog: catalog,
		preds:   make(map[string]map[pred.ID]*pred.Predicate),
	}
	empty := make(map[string]*relSummary)
	f.rels.Store(&empty) //predmatchvet:ignore guardedby constructor, nothing else sees f yet
	return f
}

// Add registers p's clauses in its relation's summary. The predicate
// must already be validated against the catalog (the shard layer does
// this before reserving the ID).
func (f *Filter) Add(p *pred.Predicate) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	byID := f.preds[p.Rel]
	if byID == nil {
		byID = make(map[pred.ID]*pred.Predicate)
		f.preds[p.Rel] = byID
	}
	if _, dup := byID[p.ID]; dup {
		return fmt.Errorf("prefilter: duplicate predicate id %d", p.ID)
	}
	byID[p.ID] = p
	f.republish(p.Rel)
	return nil
}

// Remove drops a predicate from its relation's summary.
func (f *Filter) Remove(rel string, id pred.ID) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	byID := f.preds[rel]
	if _, ok := byID[id]; !ok {
		return fmt.Errorf("prefilter: unknown predicate id %d in relation %q", id, rel)
	}
	delete(byID, id)
	f.republish(rel)
	return nil
}

// republish rebuilds rel's summary from the authoritative registry and
// swaps the summaries map copy-on-write. Callers hold f.mu.
//
//predmatchvet:holds mu
func (f *Filter) republish(rel string) {
	cur := *f.rels.Load()
	next := make(map[string]*relSummary, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[rel] = f.summarize(rel)
	f.rels.Store(&next)
}

// summarize digests rel's current predicate set. Callers hold f.mu.
//
//predmatchvet:holds mu
func (f *Filter) summarize(rel string) *relSummary {
	r, ok := f.catalog.Get(rel)
	if !ok {
		// Validated predicates always name a cataloged relation; an
		// unknown one yields an always-admit summary to stay sound.
		return &relSummary{nonInterval: 1, preds: len(f.preds[rel])}
	}
	s := &relSummary{
		bits: make([]uint64, (r.Arity()+63)/64),
		env:  make([]interval.Interval[value.Value], r.Arity()),
	}
	for _, p := range f.preds[rel] {
		s.preds++
		hasIv := false
		for _, c := range p.Clauses {
			if c.Kind != pred.KindInterval {
				continue
			}
			hasIv = true
			i, ok := r.AttrIndex(c.Attr)
			if !ok || i >= r.Arity() {
				// Unknown attribute: cannot envelope, treat the whole
				// predicate as opaque.
				hasIv = false
				break
			}
			if s.bits[i/64]&(1<<(i%64)) == 0 {
				s.bits[i/64] |= 1 << (i % 64)
				s.env[i] = widen(c.Iv)
			} else {
				s.env[i] = union(s.env[i], widen(c.Iv))
			}
		}
		if !hasIv {
			s.nonInterval++
		}
	}
	return s
}

// widen relaxes finite open bounds to closed so the envelope remains a
// superset under union.
func widen(iv interval.Interval[value.Value]) interval.Interval[value.Value] {
	if iv.Lo.Kind == interval.Finite {
		iv.Lo.Closed = true
	}
	if iv.Hi.Kind == interval.Finite {
		iv.Hi.Closed = true
	}
	return iv
}

// union returns the smallest closed-widened interval containing both
// inputs (both already widened).
func union(a, b interval.Interval[value.Value]) interval.Interval[value.Value] {
	if b.Lo.Kind == interval.NegInf ||
		(a.Lo.Kind == interval.Finite && b.Lo.Kind == interval.Finite &&
			value.Compare(b.Lo.Value, a.Lo.Value) < 0) {
		a.Lo = b.Lo
	}
	if b.Hi.Kind == interval.PosInf ||
		(a.Hi.Kind == interval.Finite && b.Hi.Kind == interval.Finite &&
			value.Compare(b.Hi.Value, a.Hi.Value) > 0) {
		a.Hi = b.Hi
	}
	return a
}

// Admit reports whether t can possibly match any predicate registered
// for rel, per the package skip rule. Lock-free; updates the
// admitted/skipped counters.
func (f *Filter) Admit(rel string, t tuple.Tuple) bool {
	s := (*f.rels.Load())[rel]
	if s == nil || s.preds == 0 {
		f.skipped.Add(1)
		return false
	}
	if s.nonInterval > 0 {
		f.admitted.Add(1)
		return true
	}
	for i := range s.env {
		if s.bits[i/64]&(1<<(i%64)) == 0 {
			continue
		}
		// A position the tuple doesn't carry can't be proven a miss;
		// stay conservative and let the full path deal with the tuple.
		if i >= len(t) || s.env[i].Contains(value.Compare, t[i]) {
			f.admitted.Add(1)
			return true
		}
	}
	f.skipped.Add(1)
	return false
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Admitted uint64 // tuples that proceeded to the full index probe
	Skipped  uint64 // tuples proven unmatchable without touching a tree
}

// Stats returns the current admission counters.
func (f *Filter) Stats() Stats {
	return Stats{Admitted: f.admitted.Load(), Skipped: f.skipped.Load()}
}

// QueriedBits returns the bitmap of attribute positions carrying at
// least one interval clause for rel — the positions the index keeps
// trees for and consults per probe. The returned slice is part of an
// immutable published summary and must not be modified; nil means no
// summary (no predicates registered). The workload profiler uses this
// to attribute each stab to the attributes it actually queried.
func (f *Filter) QueriedBits(rel string) []uint64 {
	s := (*f.rels.Load())[rel]
	if s == nil {
		return nil
	}
	return s.bits
}

// Admitted returns the number of tuples that passed the filter.
func (f *Filter) Admitted() uint64 { return f.admitted.Load() }

// Skipped returns the number of tuples the filter proved unmatchable.
func (f *Filter) Skipped() uint64 { return f.skipped.Load() }
