package prefilter_test

import (
	"fmt"
	"math/rand"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/prefilter"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/workload"
)

func testCatalog(t testing.TB) *schema.Catalog {
	cat := schema.NewCatalog()
	rel := schema.MustRelation("r",
		schema.Attribute{Name: "a", Type: value.KindInt},
		schema.Attribute{Name: "b", Type: value.KindInt},
		schema.Attribute{Name: "c", Type: value.KindInt},
	)
	if err := cat.Add(rel); err != nil {
		t.Fatal(err)
	}
	return cat
}

func tup(a, b, c int64) tuple.Tuple {
	return tuple.Tuple{value.Int(a), value.Int(b), value.Int(c)}
}

func TestAdmitEmptyRelation(t *testing.T) {
	f := prefilter.New(testCatalog(t))
	if f.Admit("r", tup(1, 2, 3)) {
		t.Fatal("empty relation admitted")
	}
	if f.Admit("nosuch", tup(1, 2, 3)) {
		t.Fatal("unknown relation admitted")
	}
	s := f.Stats()
	if s.Skipped != 2 || s.Admitted != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmitEnvelope(t *testing.T) {
	f := prefilter.New(testCatalog(t))
	add := func(id pred.ID, clauses ...pred.Clause) {
		t.Helper()
		if err := f.Add(pred.New(id, "r", clauses...)); err != nil {
			t.Fatal(err)
		}
	}
	add(1, pred.IvClause("a", interval.Closed(value.Int(10), value.Int(20))))
	add(2, pred.IvClause("a", interval.Closed(value.Int(40), value.Int(50))))

	// Inside the a-envelope [10,50]: admitted (over-admission between
	// the two clause ranges is expected — envelopes are unions).
	for _, a := range []int64{10, 20, 30, 50} {
		if !f.Admit("r", tup(a, 0, 0)) {
			t.Fatalf("a=%d skipped inside envelope", a)
		}
	}
	// Outside it: skipped.
	for _, a := range []int64{9, 51, -5} {
		if f.Admit("r", tup(a, 0, 0)) {
			t.Fatalf("a=%d admitted outside envelope", a)
		}
	}

	// A second enveloped attribute widens admission: any single
	// envelope hit admits.
	add(3, pred.IvClause("b", interval.AtLeast(value.Int(100))))
	if !f.Admit("r", tup(0, 150, 0)) {
		t.Fatal("b=150 skipped despite b-envelope hit")
	}
	if f.Admit("r", tup(0, 99, 0)) {
		t.Fatal("admitted with every envelope missed")
	}

	// A function-only predicate is opaque: everything admits.
	add(4, pred.FnClause("c", "isodd"))
	if !f.Admit("r", tup(0, 0, 0)) {
		t.Fatal("skipped while an opaque predicate is registered")
	}
	// Removing it restores skipping.
	if err := f.Remove("r", 4); err != nil {
		t.Fatal(err)
	}
	if f.Admit("r", tup(0, 0, 0)) {
		t.Fatal("admitted after opaque predicate removed")
	}

	// Removing an enveloped predicate shrinks the envelope again.
	if err := f.Remove("r", 2); err != nil {
		t.Fatal(err)
	}
	if f.Admit("r", tup(45, 0, 0)) {
		t.Fatal("admitted in removed predicate's range")
	}
	if !f.Admit("r", tup(15, 0, 0)) {
		t.Fatal("skipped in surviving predicate's range")
	}
}

func TestRemoveUnknown(t *testing.T) {
	f := prefilter.New(testCatalog(t))
	if err := f.Remove("r", 7); err == nil {
		t.Fatal("Remove of unknown id succeeded")
	}
	if err := f.Add(pred.New(1, "r", pred.IvClause("a", interval.Point(value.Int(1))))); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(pred.New(1, "r", pred.IvClause("a", interval.Point(value.Int(2))))); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
}

// TestNoFalseNegativesRandom is the soundness property over the paper's
// synthetic populations: a skipped tuple must match no predicate.
func TestNoFalseNegativesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := workload.PaperScenario()
	spec.Relations = 3
	pop, err := spec.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	f := prefilter.New(pop.Catalog)
	bounds := make(map[pred.ID]*pred.Bound)
	for _, p := range pop.Preds {
		if err := f.Add(p); err != nil {
			t.Fatal(err)
		}
		b, err := p.Bind(pop.Catalog, pop.Funcs)
		if err != nil {
			t.Fatal(err)
		}
		bounds[p.ID] = b
	}
	skips := 0
	for n := 0; n < 2000; n++ {
		rel := pop.Rels[rng.Intn(len(pop.Rels))]
		tup := pop.Tuple(rng, rel)
		if f.Admit(rel.Name(), tup) {
			continue
		}
		skips++
		for _, p := range pop.Preds {
			if p.Rel != rel.Name() {
				continue
			}
			if bounds[p.ID].Match(tup) {
				t.Fatalf("false negative: skipped tuple %v matches predicate %d", tup, p.ID)
			}
		}
	}
	t.Logf("skipped %d/2000 random tuples", skips)
}

// FuzzPrefilter drives random add/remove/probe interleavings; the only
// fatal bug is a false negative — a skipped tuple that some registered
// predicate matches. Each op is 4 bytes: opcode, attr/selector, lo, hi.
func FuzzPrefilter(f *testing.F) {
	f.Add([]byte{0, 0, 10, 20, 2, 0, 15, 0, 2, 0, 25, 0})
	f.Add([]byte{0, 1, 5, 5, 1, 0, 0, 0, 2, 1, 5, 0})
	f.Add([]byte{3, 2, 0, 0, 2, 0, 7, 0, 1, 0, 0, 0, 2, 0, 7, 0})
	f.Add([]byte{0, 0, 0, 39, 0, 1, 10, 11, 2, 2, 30, 0, 2, 1, 10, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		cat := schema.NewCatalog()
		rel := schema.MustRelation("r",
			schema.Attribute{Name: "a0", Type: value.KindInt},
			schema.Attribute{Name: "a1", Type: value.KindInt},
			schema.Attribute{Name: "a2", Type: value.KindInt},
		)
		if err := cat.Add(rel); err != nil {
			t.Fatal(err)
		}
		funcs := pred.NewRegistry()
		pf := prefilter.New(cat)
		live := map[pred.ID]*pred.Bound{}
		var order []pred.ID
		next := pred.ID(1)
		for i := 0; i+3 < len(data) && i < 4*200; i += 4 {
			op, sel := data[i], data[i+1]
			lo, hi := int64(data[i+2]%40), int64(data[i+3]%40)
			if lo > hi {
				lo, hi = hi, lo
			}
			attr := fmt.Sprintf("a%d", sel%3)
			switch op % 4 {
			case 0: // add an interval predicate
				var iv interval.Interval[value.Value]
				switch data[i+3] % 3 {
				case 0:
					iv = interval.Closed(value.Int(lo), value.Int(hi))
				case 1:
					iv = interval.Point(value.Int(lo))
				default:
					iv = interval.AtMost(value.Int(hi))
				}
				p := pred.New(next, "r", pred.IvClause(attr, iv))
				addPred(t, pf, live, &order, p, cat, funcs)
				next++
			case 3: // add an opaque function predicate
				p := pred.New(next, "r", pred.FnClause(attr, "isodd"))
				addPred(t, pf, live, &order, p, cat, funcs)
				next++
			case 1: // remove a live predicate
				if len(order) == 0 {
					continue
				}
				j := (int(sel)*31 + int(lo)) % len(order)
				id := order[j]
				order = append(order[:j], order[j+1:]...)
				delete(live, id)
				if err := pf.Remove("r", id); err != nil {
					t.Fatalf("Remove(%d): %v", id, err)
				}
			default: // probe: skip must imply no predicate matches
				tu := tuple.Tuple{value.Int(lo), value.Int(hi), value.Int(int64(sel) % 40)}
				if pf.Admit("r", tu) {
					continue
				}
				for id, b := range live {
					if b.Match(tu) {
						t.Fatalf("false negative: skipped tuple %v matches predicate %d", tu, id)
					}
				}
			}
		}
	})
}

func addPred(t *testing.T, pf *prefilter.Filter, live map[pred.ID]*pred.Bound, order *[]pred.ID, p *pred.Predicate, cat *schema.Catalog, funcs *pred.Registry) {
	t.Helper()
	if err := pf.Add(p); err != nil {
		t.Fatalf("Add(%d): %v", p.ID, err)
	}
	b, err := p.Bind(cat, funcs)
	if err != nil {
		t.Fatalf("Bind(%d): %v", p.ID, err)
	}
	live[p.ID] = b
	*order = append(*order, p.ID)
}
