package strategy_test

import (
	"testing"

	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/meta"
	"predmatch/internal/strategy"
	"predmatch/internal/trace"
)

func TestRegistryShape(t *testing.T) {
	names := strategy.Names()
	if len(names) != len(strategy.All()) {
		t.Fatalf("Names/All length mismatch")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate strategy name %q", n)
		}
		seen[n] = true
		in, ok := strategy.Lookup(n)
		if !ok || in.Name != n {
			t.Errorf("Lookup(%q) = %+v, %v", n, in, ok)
		}
		if in.Summary == "" {
			t.Errorf("strategy %q has no summary", n)
		}
	}
	// The ten strategies the conformance sweep must cover, by contract.
	for _, want := range []string{
		"ibs", "ibs-unbalanced", "hashseq", "seqscan", "rtree",
		"islist", "segtree", "inttree", "pst", "hint", "meta",
	} {
		if !seen[want] {
			t.Errorf("registry is missing strategy %q", want)
		}
	}
	if _, ok := strategy.Lookup("nosuch"); ok {
		t.Error("Lookup accepted unknown name")
	}
	// Attribute-index strategies resolve CoreOptions; whole-matcher
	// strategies don't.
	for _, n := range []string{"ibs", "hint", "islist", "segtree", "inttree", "pst", "augtree"} {
		if _, ok := strategy.CoreOptions(n); !ok {
			t.Errorf("CoreOptions(%q) = false", n)
		}
	}
	for _, n := range []string{"hashseq", "seqscan", "rtree", "sharded", "sharded-hint", "meta"} {
		if _, ok := strategy.CoreOptions(n); ok {
			t.Errorf("CoreOptions(%q) = true for a whole-matcher strategy", n)
		}
	}
}

// TestConformanceAllStrategies runs the full matchertest behavioral
// gauntlet — conformance, error contract, multi-relation isolation,
// dst-append semantics — over every registered strategy, with
// per-strategy subtests so a failure names the offender.
func TestConformanceAllStrategies(t *testing.T) {
	for _, in := range strategy.All() {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
				return in.New(f.Catalog, f.Funcs)
			})
		})
	}
}

// TestConcurrentServingStrategies storms the lock-free serving-layer
// strategies with the concurrent harness (4 writers × 4 readers against
// copy-on-write snapshot swaps). The single-writer strategies are
// covered by the same harness behind matchertest.Synchronized in their
// own packages.
func TestConcurrentServingStrategies(t *testing.T) {
	for _, name := range []string{"sharded", "sharded-hint", "meta"} {
		in, ok := strategy.Lookup(name)
		if !ok {
			t.Fatalf("strategy %q not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
				return in.New(f.Catalog, f.Funcs)
			})
		})
	}
}

// TestMetaConfigValid proves the adaptive configuration the binaries
// build is accepted by the engine for every legal fallback (newMeta
// panics otherwise), and that illegal fallbacks are caught up front.
func TestMetaConfigValid(t *testing.T) {
	for _, fb := range []string{"ibs", "islist", "hint"} {
		if !strategy.MetaFallbackOK(fb) {
			t.Errorf("MetaFallbackOK(%q) = false", fb)
		}
		cfg := strategy.MetaConfig(fb)
		cfg.Profiles = trace.NewProfiles()
		if _, err := meta.New(cfg); err != nil {
			t.Errorf("MetaConfig(%q): %v", fb, err)
		}
	}
	for _, fb := range []string{"seqscan", "sharded", "nope", ""} {
		if strategy.MetaFallbackOK(fb) {
			t.Errorf("MetaFallbackOK(%q) = true", fb)
		}
	}
}
