// Package strategy is the single registry of predicate-matching
// strategies: every way this repository can stand up a matcher.Matcher,
// keyed by the name users pass to `predmatch -matcher`, `predmatchd
// -index`, the benchmarks, and the cross-strategy conformance sweep.
// The binaries derive their flag help from this registry, so the
// documented list can never drift from the implemented one (a test
// asserts exactly that).
//
// Two families live here:
//
//   - Whole-matcher strategies (hashseq, seqscan, rtree, sharded…):
//     self-contained matcher.Matcher implementations.
//   - Attribute-index strategies (ibs, islist, pst, hint…): the paper's
//     Figure-1 scheme (core.Index) with the per-attribute interval
//     structure swapped via core.WithIndexFactory. These also report
//     CoreOptions, which lets predmatchd run the sharded serving layer
//     with any of them as the per-shard tree.
package strategy

import (
	"fmt"
	"sort"
	"strings"

	"predmatch/internal/augtree"
	"predmatch/internal/core"
	"predmatch/internal/hashseq"
	"predmatch/internal/hint"
	"predmatch/internal/ibs"
	"predmatch/internal/islist"
	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/pst"
	"predmatch/internal/rtree"
	"predmatch/internal/schema"
	"predmatch/internal/seqscan"
	"predmatch/internal/shard"
	"predmatch/internal/value"
)

// Factory builds a fresh matcher for a catalog and function registry.
type Factory func(*schema.Catalog, *pred.Registry) matcher.Matcher

// Info describes one registered strategy.
type Info struct {
	Name    string
	Summary string // one line for help text and docs
	New     Factory
	// coreOpts is non-nil for attribute-index strategies: the
	// core.Option set that makes a core.Index (or each shard of a
	// ShardedMatcher) use this structure.
	coreOpts func() []core.Option
}

// attrIndexStrategy registers a core.Index-based strategy whose
// attribute structure is produced by factory.
func attrIndexStrategy(name, summary string, factory func() core.AttrIndex) Info {
	opts := func() []core.Option {
		return []core.Option{
			core.WithIndexFactory(factory),
			core.WithName(name),
		}
	}
	return Info{
		Name:    name,
		Summary: summary,
		New: func(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
			return core.New(cat, funcs, opts()...)
		},
		coreOpts: opts,
	}
}

// registry holds every strategy in presentation order: the paper's
// scheme and its attribute-index variants first, then the whole-matcher
// alternatives, then the serving-layer wrappers.
var registry = []Info{
	{
		Name:    "ibs",
		Summary: "the paper's scheme: per-attribute IBS-trees (balanced)",
		New: func(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
			return core.New(cat, funcs)
		},
		coreOpts: func() []core.Option { return nil },
	},
	{
		Name:    "ibs-unbalanced",
		Summary: "IBS-trees without rebalancing, the paper's original insert",
		New: func(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
			return core.New(cat, funcs, ibsUnbalancedOpts()...)
		},
		coreOpts: ibsUnbalancedOpts,
	},
	attrIndexStrategy("hint",
		"HINT-style flat hierarchical domain partitioning (cache-conscious, lazily rebuilt)",
		func() core.AttrIndex { return hint.New(value.Compare) }),
	attrIndexStrategy("islist",
		"interval skip list attribute indexes",
		func() core.AttrIndex { return islist.New(value.Compare) }),
	attrIndexStrategy("segtree",
		"immutable segment tree attribute indexes, lazily rebuilt",
		newSegtreeIndex),
	attrIndexStrategy("inttree",
		"immutable centered interval tree attribute indexes, lazily rebuilt",
		newInttreeIndex),
	attrIndexStrategy("pst",
		"priority search tree attribute indexes",
		func() core.AttrIndex { return pst.New(value.Compare) }),
	attrIndexStrategy("augtree",
		"augmented AVL interval tree attribute indexes",
		func() core.AttrIndex { return augtree.New(value.Compare) }),
	{
		Name:    "hashseq",
		Summary: "hash on relation, then sequential clause evaluation",
		New: func(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
			return hashseq.New(cat, funcs)
		},
	},
	{
		Name:    "seqscan",
		Summary: "flat sequential scan over every predicate (the oracle)",
		New: func(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
			return seqscan.New(cat, funcs)
		},
	},
	{
		Name:    "rtree",
		Summary: "1-D R-tree over indexable clause intervals",
		New: func(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
			return rtree.NewPredMatcher(cat, funcs)
		},
	},
	{
		Name:    "sharded",
		Summary: "per-relation copy-on-write shards over IBS-trees (the serving layer)",
		New: func(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
			return shard.New(cat, funcs)
		},
	},
	{
		Name:    "sharded-hint",
		Summary: "per-relation copy-on-write shards over HINT hierarchies",
		New: func(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
			return shard.New(cat, funcs,
				shard.WithIndexOptions(
					core.WithIndexFactory(func() core.AttrIndex { return hint.New(value.Compare) }),
					core.WithName("hint")),
				shard.WithName("sharded-hint"))
		},
	},
	{
		Name:    "meta",
		Summary: "adaptive: per-relation structure chosen by a workload cost model, migrated online",
		New:     newMeta,
	},
}

func ibsUnbalancedOpts() []core.Option {
	return []core.Option{
		core.WithTreeOptions(ibs.Balanced(false)),
		core.WithName("ibs-unbalanced"),
	}
}

// All returns every registered strategy in presentation order.
func All() []Info {
	return append([]Info(nil), registry...)
}

// Lookup resolves a strategy by name.
func Lookup(name string) (Info, bool) {
	for _, in := range registry {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

// Names returns every strategy name in presentation order.
func Names() []string {
	out := make([]string, len(registry))
	for i, in := range registry {
		out[i] = in.Name
	}
	return out
}

// IndexNames returns the names usable as a per-shard attribute index
// (the strategies CoreOptions resolves), sorted.
func IndexNames() []string {
	var out []string
	for _, in := range registry {
		if in.coreOpts != nil {
			out = append(out, in.Name)
		}
	}
	sort.Strings(out)
	return out
}

// CoreOptions returns the core.Option set that makes a core.Index use
// the named strategy's attribute structure; ok is false for
// whole-matcher strategies (hashseq, rtree, sharded, …) that don't
// decompose into per-attribute indexes.
func CoreOptions(name string) ([]core.Option, bool) {
	in, ok := Lookup(name)
	if !ok || in.coreOpts == nil {
		return nil, false
	}
	return in.coreOpts(), true
}

// FlagHelp renders the strategy list for a -matcher style flag's usage
// string: every registered name, comma-separated, in order.
func FlagHelp() string {
	return "matching strategy (one of " + strings.Join(Names(), ", ") + ")"
}

// IndexFlagHelp renders the usage string for predmatchd's -index flag:
// the strategies that can serve as a per-shard attribute index, plus
// "meta" — the adaptive engine that picks among them per relation.
func IndexFlagHelp() string {
	return "per-shard attribute index structure (one of " + strings.Join(IndexNames(), ", ") +
		", or meta for workload-adaptive selection with online migration)"
}

// UnknownErr builds the standard unknown-strategy error, naming every
// valid choice.
func UnknownErr(name string) error {
	return fmt.Errorf("unknown matcher %q (want one of %s)", name, strings.Join(Names(), ", "))
}

// UnknownIndexErr is UnknownErr for the attribute-index subset.
func UnknownIndexErr(name string) error {
	return fmt.Errorf("unknown index %q (want one of %s)", name, strings.Join(IndexNames(), ", "))
}
