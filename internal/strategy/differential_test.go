package strategy_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/strategy"
	"predmatch/internal/tuple"
	"predmatch/internal/workload"
)

// sweepSpec is one cell of the workload generator matrix.
type sweepSpec struct {
	name string
	spec workload.SchemaSpec
	seed int64
}

// sweepMatrix spans the paper's Section 5.2 axes: point fraction
// (Figures 7/8), indexable fraction (completion-list pressure), clause
// count (multi-attribute probes + PREDICATES-table completion), and
// relation count (first-level hash fan-out).
func sweepMatrix() []sweepSpec {
	var out []sweepSpec
	base := workload.PaperScenario()
	for _, pf := range []float64{0, 0.5, 1} {
		s := base
		s.PointFrac = pf
		out = append(out, sweepSpec{name: fmt.Sprintf("paper/point=%.1f", pf), spec: s, seed: 1})
	}
	ix := base
	ix.IndexableFrac = 0.5
	out = append(out, sweepSpec{name: "halfIndexable", spec: ix, seed: 2})

	one := base
	one.ClausesPer = 1
	out = append(out, sweepSpec{name: "singleClause", spec: one, seed: 3})

	three := base
	three.ClausesPer = 3
	three.PredsPerRel = 120
	out = append(out, sweepSpec{name: "tripleClause", spec: three, seed: 4})

	multi := base
	multi.Relations = 3
	multi.PredsPerRel = 80
	out = append(out, sweepSpec{name: "multiRelation", spec: multi, seed: 5})
	return out
}

// TestDifferentialSweep runs EVERY registered strategy against the
// seqscan oracle over the full workload generator matrix: same
// predicate population, same tuple stream, identical match sets — then
// removes a third of the predicates and checks again. Subtests are
// per-strategy/per-cell so a failure names the strategy, the cell, and
// the seed.
func TestDifferentialSweep(t *testing.T) {
	oracleInfo, ok := strategy.Lookup("seqscan")
	if !ok {
		t.Fatal("seqscan oracle not registered")
	}
	const tuplesPerRel = 150
	for _, cell := range sweepMatrix() {
		cell := cell
		rng := rand.New(rand.NewSource(cell.seed))
		pop, err := cell.spec.Build(rng)
		if err != nil {
			t.Fatalf("%s: Build: %v", cell.name, err)
		}
		// One tuple stream per cell, shared by every strategy.
		type probe struct {
			rel string
			t   tuple.Tuple
		}
		var probes []probe
		for _, rel := range pop.Rels {
			for i := 0; i < tuplesPerRel; i++ {
				probes = append(probes, probe{rel.Name(), pop.Tuple(rng, rel)})
			}
		}
		// Remove a deterministic third of the predicates in phase two.
		var removals []pred.ID
		for i, p := range pop.Preds {
			if i%3 == 0 {
				removals = append(removals, p.ID)
			}
		}

		oracle := oracleInfo.New(pop.Catalog, pop.Funcs)
		oracleMatch := func(rel string, tu tuple.Tuple) []pred.ID {
			got, err := oracle.Match(rel, tu, nil)
			if err != nil {
				t.Fatalf("%s: oracle Match: %v", cell.name, err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			return got
		}
		load := func(m matcher.Matcher) error {
			for _, p := range pop.Preds {
				if err := m.Add(p); err != nil {
					return fmt.Errorf("Add(%d): %w", p.ID, err)
				}
			}
			return nil
		}
		if err := load(oracle); err != nil {
			t.Fatalf("%s: oracle %v", cell.name, err)
		}

		// Phase-one and phase-two oracle answers, computed once.
		wantFull := make([][]pred.ID, len(probes))
		for i, pr := range probes {
			wantFull[i] = oracleMatch(pr.rel, pr.t)
		}
		for _, id := range removals {
			if err := oracle.Remove(id); err != nil {
				t.Fatalf("%s: oracle Remove(%d): %v", cell.name, id, err)
			}
		}
		wantPruned := make([][]pred.ID, len(probes))
		for i, pr := range probes {
			wantPruned[i] = oracleMatch(pr.rel, pr.t)
		}

		for _, in := range strategy.All() {
			in := in
			t.Run(in.Name+"/"+cell.name, func(t *testing.T) {
				m := in.New(pop.Catalog, pop.Funcs)
				if err := load(m); err != nil {
					t.Fatal(err)
				}
				if m.Len() != len(pop.Preds) {
					t.Fatalf("Len = %d after loading %d predicates", m.Len(), len(pop.Preds))
				}
				check := func(phase string, want [][]pred.ID) {
					for i, pr := range probes {
						got, err := m.Match(pr.rel, pr.t, nil)
						if err != nil {
							t.Fatalf("%s: Match(%s, %v): %v", phase, pr.rel, pr.t, err)
						}
						sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
						if len(got) != len(want[i]) {
							t.Fatalf("%s: seed %d: Match(%s, %v) = %v, oracle says %v",
								phase, cell.seed, pr.rel, pr.t, got, want[i])
						}
						for j := range got {
							if got[j] != want[i][j] {
								t.Fatalf("%s: seed %d: Match(%s, %v) = %v, oracle says %v",
									phase, cell.seed, pr.rel, pr.t, got, want[i])
							}
						}
					}
				}
				check("full", wantFull)
				for _, id := range removals {
					if err := m.Remove(id); err != nil {
						t.Fatalf("Remove(%d): %v", id, err)
					}
				}
				check("pruned", wantPruned)
			})
		}
	}
}
