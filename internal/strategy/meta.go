package strategy

import (
	"predmatch/internal/core"
	"predmatch/internal/hint"
	"predmatch/internal/islist"
	"predmatch/internal/matcher"
	"predmatch/internal/meta"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/value"
)

// MetaCandidates returns the structure set the adaptive meta-matcher
// selects over, with per-strategy cost coefficients. The stab
// coefficients are anchored to the index-level BENCH_PR6 measurements
// (hint stab ~281ns vs ibs ~2260ns at ~10k intervals → the log terms
// below). The write coefficients are anchored to the *serving layer*,
// not the bare index: the sharded matcher publishes copy-on-write
// snapshots, so every predicate add/remove pays a full core.Index
// clone. Clone cost is where the structures really diverge
// (BenchmarkMetaMatcher, 512 standing predicates):
//
//   - ibs: the paper's balanced tree. O(log n) stabs with a steep
//     constant; cloning re-inserts every interval into fresh trees,
//     ~2.7µs per standing predicate per write.
//   - islist: interval skip list. Slightly cheaper stabs than ibs,
//     dearest clone (~3µs/item — rebuilding towers is not cheap).
//   - hint: flat hierarchical partitioning. Near-constant stabs — by
//     far the cheapest read — and its clone is a tight flat-array
//     rebuild, ~0.6µs/item, so it wins churn at the serving layer too.
//
// The engine only needs the *relative* shape to be right: once a
// relation outgrows the warm-up threshold the model steers it to hint
// and the hysteresis margin absorbs the calibration error; the tree
// structures remain the warm-up default, the -index fallback, and the
// right answer for small or idle relations where migration isn't worth
// a rebuild.
func MetaCandidates() []meta.Candidate {
	return []meta.Candidate{
		{
			Name: "ibs",
			Cost: meta.Cost{
				StabFixedNS: 100, StabLogNS: 160, StabPerHitNS: 25,
				WriteFixedNS: 400, RebuildPerItemNS: 2700,
			},
		},
		{
			Name: "islist",
			Opts: islistOpts(),
			Cost: meta.Cost{
				StabFixedNS: 120, StabLogNS: 120, StabPerHitNS: 25,
				WriteFixedNS: 400, RebuildPerItemNS: 3000,
			},
		},
		{
			Name: "hint",
			Opts: hintOpts(),
			Cost: meta.Cost{
				StabFixedNS: 150, StabLogNS: 10, StabPerHitNS: 15,
				WriteFixedNS: 400, RebuildPerItemNS: 580,
			},
		},
	}
}

func hintOpts() []core.Option {
	return []core.Option{
		core.WithIndexFactory(func() core.AttrIndex { return hint.New(value.Compare) }),
		core.WithName("hint"),
	}
}

func islistOpts() []core.Option {
	return []core.Option{
		core.WithIndexFactory(func() core.AttrIndex { return islist.New(value.Compare) }),
		core.WithName("islist"),
	}
}

// MetaConfig returns the adaptive engine configuration the binaries
// use: the candidate set above with fallback, thresholds, and pacing at
// their serving defaults. fallback names the warm-up/fallback structure
// (the static -index flag's value); it must be one of the candidates,
// so callers validate it with MetaFallbackOK first when it comes from a
// user flag.
func MetaConfig(fallback string) meta.Config {
	return meta.Config{
		Candidates: MetaCandidates(),
		Default:    fallback,
	}
}

// MetaFallbackOK reports whether name is a valid meta fallback
// structure (a member of the candidate set).
func MetaFallbackOK(name string) bool {
	for _, c := range MetaCandidates() {
		if c.Name == name {
			return true
		}
	}
	return false
}

// newMeta builds the registry's standalone adaptive matcher.
func newMeta(cat *schema.Catalog, funcs *pred.Registry) matcher.Matcher {
	m, err := meta.NewMatcher(cat, funcs, MetaConfig("ibs"))
	if err != nil {
		// The config above is static and validated by tests; failing
		// here is a programming error, not an input error.
		panic("strategy: meta matcher config: " + err.Error())
	}
	return m
}
