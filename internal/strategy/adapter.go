package strategy

import (
	"fmt"
	"sync"
	"sync/atomic"

	"predmatch/internal/core"
	"predmatch/internal/interval"
	"predmatch/internal/inttree"
	"predmatch/internal/markset"
	"predmatch/internal/segtree"
	"predmatch/internal/value"
)

// stabber is the read surface shared by the build-once structures
// (segment tree, centered interval tree).
type stabber interface {
	StabAppend(x value.Value, dst []markset.ID) []markset.ID
}

// rebuildIndex adapts a build-once structure to the dynamic
// core.AttrIndex contract with the same lazy clone-and-publish
// discipline as internal/hint: Insert/Delete mutate an item registry
// and invalidate the built structure; the first StabAppend afterwards
// rebuilds it under a double-checked mutex and publishes it atomically,
// so concurrent readers of a frozen snapshot never observe a torn
// structure. Mutation requires external serialization against readers,
// exactly like every other attribute index here — the shard layer only
// ever mutates unpublished clones.
type rebuildIndex struct {
	items map[markset.ID]interval.Interval[value.Value]
	build func(items map[markset.ID]interval.Interval[value.Value]) stabber

	mu  sync.Mutex
	cur atomic.Pointer[holder] // write-guarded-by: mu
}

// holder wraps the interface value so it can sit behind atomic.Pointer.
type holder struct{ s stabber }

func newRebuildIndex(build func(map[markset.ID]interval.Interval[value.Value]) stabber) *rebuildIndex {
	return &rebuildIndex{
		items: make(map[markset.ID]interval.Interval[value.Value]),
		build: build,
	}
}

var _ core.AttrIndex = (*rebuildIndex)(nil)

func (r *rebuildIndex) Len() int { return len(r.items) }

func (r *rebuildIndex) Insert(id markset.ID, iv interval.Interval[value.Value]) error {
	if err := iv.Validate(value.Compare); err != nil {
		return err
	}
	if _, dup := r.items[id]; dup {
		return fmt.Errorf("strategy: duplicate interval id %d", id)
	}
	r.items[id] = iv
	r.cur.Store(nil) //predmatchvet:ignore guardedby mutation is externally serialized; no reader or builder runs concurrently
	return nil
}

func (r *rebuildIndex) Delete(id markset.ID) error {
	if _, ok := r.items[id]; !ok {
		return fmt.Errorf("strategy: unknown interval id %d", id)
	}
	delete(r.items, id)
	r.cur.Store(nil) //predmatchvet:ignore guardedby mutation is externally serialized; no reader or builder runs concurrently
	return nil
}

func (r *rebuildIndex) StabAppend(x value.Value, dst []markset.ID) []markset.ID {
	h := r.cur.Load()
	if h == nil {
		r.mu.Lock()
		if h = r.cur.Load(); h == nil {
			h = &holder{s: r.build(r.items)}
			r.cur.Store(h)
		}
		r.mu.Unlock()
	}
	return h.s.StabAppend(x, dst)
}

// newSegtreeIndex returns an AttrIndex backed by the immutable segment
// tree, rebuilt lazily after each mutation.
func newSegtreeIndex() core.AttrIndex {
	return newRebuildIndex(func(items map[markset.ID]interval.Interval[value.Value]) stabber {
		list := make([]segtree.Item[value.Value], 0, len(items))
		for id, iv := range items {
			list = append(list, segtree.Item[value.Value]{ID: id, Iv: iv})
		}
		return segtree.Build(value.Compare, list)
	})
}

// newInttreeIndex returns an AttrIndex backed by the immutable centered
// interval tree, rebuilt lazily after each mutation.
func newInttreeIndex() core.AttrIndex {
	return newRebuildIndex(func(items map[markset.ID]interval.Interval[value.Value]) stabber {
		list := make([]inttree.Item[value.Value], 0, len(items))
		for id, iv := range items {
			list = append(list, inttree.Item[value.Value]{ID: id, Iv: iv})
		}
		return inttree.Build(value.Compare, list)
	})
}
