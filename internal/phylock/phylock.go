// Package phylock implements the paper's Section 2.3 baseline: physical
// locking, the predicate indexing approach of POSTGRES-style rule systems
// (Stonebraker/Sellis/Hanson 1986, Stonebraker/Hanson/Potamianos 1988).
//
// Each predicate is treated like a query and handed to the optimizer,
// which produces an access plan:
//
//   - If a usable secondary index exists on one of the predicate's
//     indexable clauses, the plan is an index scan: a persistent
//     interval lock is set on the index key range the scan inspects, and
//     tuple-level locks are set on every tuple read during the scan.
//   - Otherwise the plan is a sequential scan and "lock escalation" is
//     performed: a relation-level lock is placed on the whole relation.
//
// When a tuple is inserted or modified, the system collects the locks
// that conflict with the update — all relation-level locks, every index
// interval lock containing one of the tuple's (new) attribute values,
// and any tuple locks already on the tuple — and tests the tuple against
// the predicate associated with each collected lock.
//
// The paper's critique, which the benchmarks reproduce: when predicates
// fall on unindexed attributes, most of them hold relation-level locks
// and matching degenerates to sequential testing; and the predicate set
// must be kept in main memory anyway to avoid disk I/O per test.
//
// The lock table for index interval locks is itself an interval-stabbing
// structure; this implementation stores the interval locks of each
// indexed attribute in an IBS-tree, mirroring how a real system hangs
// range locks off its index structure.
package phylock

import (
	"fmt"

	"predmatch/internal/ibs"
	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/selectivity"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// entry is one registered predicate plus its lock placement.
type entry struct {
	bound *pred.Bound
	// attr is the attribute carrying this predicate's index interval
	// lock; empty means a relation-level lock (escalation).
	attr   string
	clause int
	// lockedTuples lists the tuples this predicate holds tuple locks on,
	// for cleanup at removal.
	lockedTuples []tuple.ID
}

// relLocks is the lock table of one relation.
type relLocks struct {
	// relation holds relation-level locks (escalated predicates).
	relation []*entry
	// intervals holds index interval locks per indexed attribute.
	intervals map[string]*ibs.Tree[value.Value]
	// attrPos caches attribute positions for the interval lock tables.
	attrPos map[string]int
	// tuples holds tuple-level locks: tuple -> predicate ids.
	tuples map[tuple.ID]map[pred.ID]struct{}
}

// Matcher is the physical-locking strategy. It requires a storage.DB:
// lock placement runs real index scans over the stored data.
type Matcher struct {
	db      *storage.DB
	funcs   *pred.Registry
	est     selectivity.Estimator
	rels    map[string]*relLocks
	preds   map[pred.ID]*entry
	scratch []pred.ID
}

var _ matcher.Matcher = (*Matcher)(nil)

// New returns an empty physical-locking matcher over db.
func New(db *storage.DB, funcs *pred.Registry) *Matcher {
	return &Matcher{
		db:    db,
		funcs: funcs,
		est:   selectivity.FromStats{DB: db},
		rels:  make(map[string]*relLocks),
		preds: make(map[pred.ID]*entry),
	}
}

// Name implements matcher.Matcher.
func (m *Matcher) Name() string { return "phylock" }

// Len implements matcher.Matcher.
func (m *Matcher) Len() int { return len(m.preds) }

func (m *Matcher) locksFor(rel string) *relLocks {
	rl, ok := m.rels[rel]
	if !ok {
		rl = &relLocks{
			intervals: make(map[string]*ibs.Tree[value.Value]),
			attrPos:   make(map[string]int),
			tuples:    make(map[tuple.ID]map[pred.ID]struct{}),
		}
		m.rels[rel] = rl
	}
	return rl
}

// plan chooses the access path for a predicate: the most selective
// indexable clause whose attribute has a secondary index.
func (m *Matcher) plan(p *pred.Predicate) (clause int, ok bool) {
	table, tok := m.db.Table(p.Rel)
	if !tok {
		return -1, false
	}
	best := -1
	bestSel := 2.0
	for i, c := range p.Clauses {
		if !c.Indexable() || !table.HasIndex(c.Attr) {
			continue
		}
		if sel := m.est.Selectivity(p.Rel, c); sel < bestSel {
			best, bestSel = i, sel
		}
	}
	return best, best >= 0
}

// Add implements matcher.Matcher: run the predicate as a query, placing
// an index interval lock plus tuple locks (index-scan plan) or a
// relation-level lock (sequential plan, i.e. lock escalation).
func (m *Matcher) Add(p *pred.Predicate) error {
	if _, dup := m.preds[p.ID]; dup {
		return fmt.Errorf("phylock: duplicate predicate id %d", p.ID)
	}
	b, err := p.Bind(m.db.Catalog(), m.funcs)
	if err != nil {
		return err
	}
	rl := m.locksFor(p.Rel)
	e := &entry{bound: b, clause: -1}

	if ci, ok := m.plan(p); ok {
		c := p.Clauses[ci]
		tree, ok := rl.intervals[c.Attr]
		if !ok {
			tree = ibs.New(value.Compare)
			rl.intervals[c.Attr] = tree
			table, _ := m.db.Table(p.Rel)
			pos, _ := table.Relation().AttrIndex(c.Attr)
			rl.attrPos[c.Attr] = pos
		}
		if err := tree.Insert(p.ID, c.Iv); err != nil {
			return fmt.Errorf("phylock: interval lock for %v: %w", c, err)
		}
		e.attr = c.Attr
		e.clause = ci
		// Index scan: read the qualifying tuples and set tuple locks on
		// everything the scan inspects.
		table, _ := m.db.Table(p.Rel)
		table.ScanIndex(c.Attr, c.Iv, func(id tuple.ID, _ tuple.Tuple) bool {
			m.lockTuple(rl, id, p.ID)
			e.lockedTuples = append(e.lockedTuples, id)
			return true
		})
	} else {
		rl.relation = append(rl.relation, e)
	}
	m.preds[p.ID] = e
	return nil
}

func (m *Matcher) lockTuple(rl *relLocks, id tuple.ID, pid pred.ID) {
	set, ok := rl.tuples[id]
	if !ok {
		set = make(map[pred.ID]struct{}, 1)
		rl.tuples[id] = set
	}
	set[pid] = struct{}{}
}

// Remove implements matcher.Matcher, releasing all of the predicate's
// locks.
func (m *Matcher) Remove(id pred.ID) error {
	e, ok := m.preds[id]
	if !ok {
		return fmt.Errorf("phylock: unknown predicate id %d", id)
	}
	delete(m.preds, id)
	rl := m.rels[e.bound.Pred.Rel]
	if e.clause >= 0 {
		tree := rl.intervals[e.attr]
		if err := tree.Delete(id); err != nil {
			return err
		}
		if tree.Len() == 0 {
			delete(rl.intervals, e.attr)
			delete(rl.attrPos, e.attr)
		}
		for _, tid := range e.lockedTuples {
			if set, ok := rl.tuples[tid]; ok {
				delete(set, id)
				if len(set) == 0 {
					delete(rl.tuples, tid)
				}
			}
		}
		return nil
	}
	for i, x := range rl.relation {
		if x == e {
			rl.relation = append(rl.relation[:i], rl.relation[i+1:]...)
			break
		}
	}
	return nil
}

// Match implements matcher.Matcher: collect conflicting locks (relation
// locks plus index interval locks stabbed by the tuple's attribute
// values) and test each collected predicate fully. For stored tuples,
// MatchStored also collects tuple-level locks.
func (m *Matcher) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	return m.match(rel, t, dst, nil)
}

// MatchStored is Match for a tuple that exists in storage under id: any
// tuple locks previously placed on it are collected as well. (Extra
// candidates are filtered by the full predicate test, so the result set
// equals Match; what changes is fidelity to the paper's lock collection.)
func (m *Matcher) MatchStored(rel string, id tuple.ID, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	return m.match(rel, t, dst, &id)
}

func (m *Matcher) match(rel string, t tuple.Tuple, dst []pred.ID, tid *tuple.ID) ([]pred.ID, error) {
	rl, ok := m.rels[rel]
	if !ok {
		return dst, nil
	}
	// Relation-level locks conflict with every update.
	for _, e := range rl.relation {
		if e.bound.Match(t) {
			dst = append(dst, e.bound.Pred.ID)
		}
	}
	// Index interval locks containing the tuple's new attribute values.
	scratch := m.scratch[:0]
	for attr, tree := range rl.intervals {
		scratch = tree.StabAppend(t[rl.attrPos[attr]], scratch)
	}
	seen := make(map[pred.ID]bool, len(scratch))
	for _, id := range scratch {
		if seen[id] {
			continue
		}
		seen[id] = true
		e := m.preds[id]
		if e.bound.MatchSkipping(t, e.clause) {
			dst = append(dst, id)
		}
	}
	// Tuple locks previously on the tuple.
	if tid != nil {
		for id := range rl.tuples[*tid] {
			if seen[id] {
				continue
			}
			e := m.preds[id]
			if e.bound.Match(t) {
				dst = append(dst, id)
			}
		}
	}
	m.scratch = scratch
	return dst, nil
}

// Maintain keeps tuple locks current as the database changes; wire it to
// storage.DB.Observe. Inserted and updated tuples acquire tuple locks
// for every index-scan predicate whose interval lock they now fall
// under; deleted tuples release their locks.
func (m *Matcher) Maintain(ev storage.Event) error {
	rl, ok := m.rels[ev.Rel]
	if !ok {
		return nil
	}
	switch ev.Op {
	case storage.OpDelete:
		delete(rl.tuples, ev.ID)
	case storage.OpInsert, storage.OpUpdate:
		scratch := m.scratch[:0]
		for attr, tree := range rl.intervals {
			scratch = tree.StabAppend(ev.New[rl.attrPos[attr]], scratch)
		}
		if ev.Op == storage.OpUpdate {
			// Locks from ranges the tuple has left are released.
			delete(rl.tuples, ev.ID)
		}
		for _, id := range scratch {
			m.lockTuple(rl, ev.ID, id)
			e := m.preds[id]
			e.lockedTuples = append(e.lockedTuples, ev.ID)
		}
		m.scratch = scratch
	}
	return nil
}

// LockCounts reports the lock-table shape for a relation: how many
// predicates hold relation-level locks, interval locks, and how many
// tuple locks exist. The benchmarks use this to show the degenerate
// escalation case.
func (m *Matcher) LockCounts(rel string) (relation, intervals, tuples int) {
	rl, ok := m.rels[rel]
	if !ok {
		return 0, 0, 0
	}
	for _, tree := range rl.intervals {
		intervals += tree.Len()
	}
	for _, set := range rl.tuples {
		tuples += len(set)
	}
	return len(rl.relation), intervals, tuples
}
