package phylock_test

import (
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/phylock"
	"predmatch/internal/pred"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// dbFromFixture mirrors the fixture schema into a storage engine.
func dbFromFixture(f *matchertest.Fixture, indexed map[string][]string) *storage.DB {
	db := storage.NewDB()
	for _, rel := range f.Rels {
		tab, err := db.CreateRelation(rel)
		if err != nil {
			panic(err)
		}
		for _, attr := range indexed[rel.Name()] {
			if err := tab.CreateIndex(attr); err != nil {
				panic(err)
			}
		}
	}
	return db
}

// TestConformanceNoIndexes runs the degenerate case the paper warns
// about: with no secondary indexes, every predicate escalates to a
// relation-level lock, and matching must still be exact.
func TestConformanceNoIndexes(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return phylock.New(dbFromFixture(f, nil), f.Funcs)
	})
}

// TestConcurrentConformance drives the read/write storm harness under
// the Synchronized wrapper (the physical-locking matcher shares
// storage-engine lock tables and is single-threaded).
func TestConcurrentConformance(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		return matchertest.Synchronized(phylock.New(dbFromFixture(f, nil), f.Funcs))
	})
}

// TestConformanceIndexed runs with secondary indexes on the attributes
// predicates commonly restrict, so most predicates get interval locks.
func TestConformanceIndexed(t *testing.T) {
	indexed := map[string][]string{
		"emp":    {"age", "salary", "dept", "name"},
		"items":  {"stock", "price", "sku", "threshold"},
		"events": {"severity", "kind", "open"},
	}
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return phylock.New(dbFromFixture(f, indexed), f.Funcs)
	})
}

func empRelDB() (*storage.DB, *storage.Table) {
	f := matchertest.NewFixture()
	db := dbFromFixture(f, map[string][]string{"emp": {"salary"}})
	tab, _ := db.Table("emp")
	return db, tab
}

func empT(name string, age, salary int64, dept string) tuple.Tuple {
	return tuple.New(value.String_(name), value.Int(age), value.Int(salary), value.String_(dept))
}

func TestLockEscalation(t *testing.T) {
	db, _ := empRelDB()
	m := phylock.New(db, pred.NewRegistry())

	// salary has an index -> interval lock; age does not -> escalation.
	if err := m.Add(pred.New(1, "emp", pred.IvClause("salary", interval.AtLeast(value.Int(100))))); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(pred.New(2, "emp", pred.IvClause("age", interval.AtLeast(value.Int(30))))); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(pred.New(3, "emp", pred.FnClause("age", "isodd"))); err != nil {
		t.Fatal(err)
	}
	rel, ivl, _ := m.LockCounts("emp")
	if rel != 2 || ivl != 1 {
		t.Fatalf("LockCounts = %d relation, %d interval; want 2, 1", rel, ivl)
	}

	got, err := m.Match("emp", empT("a", 31, 150, "x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []pred.ID{1, 2, 3}) {
		t.Fatalf("Match = %v", got)
	}
}

func TestTupleLocksFromScanAndMaintain(t *testing.T) {
	db, tab := empRelDB()
	m := phylock.New(db, pred.NewRegistry())
	db.Observe(m.Maintain)

	// Pre-existing data gets tuple locks at predicate definition time.
	id1, _ := tab.Insert(empT("a", 30, 150, "x"))
	_, _ = tab.Insert(empT("b", 40, 50, "y"))

	if err := m.Add(pred.New(1, "emp", pred.IvClause("salary", interval.AtLeast(value.Int(100))))); err != nil {
		t.Fatal(err)
	}
	_, _, tl := m.LockCounts("emp")
	if tl != 1 {
		t.Fatalf("tuple locks after Add = %d, want 1 (only the qualifying tuple)", tl)
	}

	// New inserts under the interval acquire tuple locks via Maintain.
	id3, _ := tab.Insert(empT("c", 25, 200, "z"))
	_, _, tl = m.LockCounts("emp")
	if tl != 2 {
		t.Fatalf("tuple locks after insert = %d, want 2", tl)
	}

	// Updates that leave the range release the lock.
	if err := tab.Update(id3, empT("c", 25, 10, "z")); err != nil {
		t.Fatal(err)
	}
	_, _, tl = m.LockCounts("emp")
	if tl != 1 {
		t.Fatalf("tuple locks after update-out = %d, want 1", tl)
	}

	// MatchStored consults tuple locks; result equals plain Match.
	got, err := m.MatchStored("emp", id1, empT("a", 30, 150, "x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []pred.ID{1}) {
		t.Fatalf("MatchStored = %v", got)
	}

	// Deletes release tuple locks.
	if err := tab.Delete(id1); err != nil {
		t.Fatal(err)
	}
	_, _, tl = m.LockCounts("emp")
	if tl != 0 {
		t.Fatalf("tuple locks after delete = %d, want 0", tl)
	}

	// Removing the predicate clears its interval lock.
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	relc, ivl, _ := m.LockCounts("emp")
	if relc != 0 || ivl != 0 {
		t.Fatalf("locks remain after Remove: %d/%d", relc, ivl)
	}
}

func TestPlanPrefersMoreSelectiveIndex(t *testing.T) {
	f := matchertest.NewFixture()
	db := dbFromFixture(f, map[string][]string{"emp": {"age", "dept"}})
	tab, _ := db.Table("emp")
	// 100 distinct ages, 2 departments: age is far more selective.
	for i := int64(0); i < 100; i++ {
		d := "a"
		if i%2 == 0 {
			d = "b"
		}
		if _, err := tab.Insert(empT("e", i, i*10, d)); err != nil {
			t.Fatal(err)
		}
	}
	m := phylock.New(db, f.Funcs)
	p := pred.New(1, "emp",
		pred.EqClause("dept", value.String_("a")),
		pred.EqClause("age", value.Int(33)),
	)
	if err := m.Add(p); err != nil {
		t.Fatal(err)
	}
	// The age clause (selectivity 0.01) should carry the interval lock;
	// the scan should have locked exactly the one tuple with age 33.
	_, ivl, tl := m.LockCounts("emp")
	if ivl != 1 || tl != 1 {
		t.Fatalf("LockCounts interval=%d tuples=%d; want 1, 1", ivl, tl)
	}
}

func TestLockCountsUnknownRelation(t *testing.T) {
	db := storage.NewDB()
	m := phylock.New(db, pred.NewRegistry())
	if r, i, tl := m.LockCounts("nosuch"); r != 0 || i != 0 || tl != 0 {
		t.Fatal("LockCounts on unknown relation non-zero")
	}
}

func TestName(t *testing.T) {
	m := phylock.New(storage.NewDB(), pred.NewRegistry())
	if m.Name() != "phylock" {
		t.Fatalf("Name = %q", m.Name())
	}
}
