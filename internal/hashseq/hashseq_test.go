package hashseq_test

import (
	"testing"

	"predmatch/internal/hashseq"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
)

func TestConformance(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return hashseq.New(f.Catalog, f.Funcs)
	})
}

func TestName(t *testing.T) {
	m := hashseq.New(matchertest.NewFixture().Catalog, nil)
	if m.Name() != "hashseq" {
		t.Fatalf("Name = %q", m.Name())
	}
}
