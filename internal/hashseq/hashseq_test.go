package hashseq_test

import (
	"testing"

	"predmatch/internal/hashseq"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
)

func TestConformance(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return hashseq.New(f.Catalog, f.Funcs)
	})
}

// TestConcurrentConformance drives the read/write storm harness under
// the Synchronized wrapper (the hash + sequential strategy itself is
// single-threaded).
func TestConcurrentConformance(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		return matchertest.Synchronized(hashseq.New(f.Catalog, f.Funcs))
	})
}

func TestName(t *testing.T) {
	m := hashseq.New(matchertest.NewFixture().Catalog, nil)
	if m.Name() != "hashseq" {
		t.Fatalf("Name = %q", m.Name())
	}
}
