// Package hashseq implements the paper's Section 2.2 baseline: one list
// of predicates per relation, located by hashing on the relation name,
// then tested sequentially. This is "essentially the algorithm used in
// many main-memory-based production rule systems including some
// implementations of OPS5": it performs well when the average number of
// predicates per relation is small and evenly distributed.
package hashseq

import (
	"fmt"

	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
)

// Matcher is the hash-on-relation-plus-sequential-search strategy.
type Matcher struct {
	catalog *schema.Catalog
	funcs   *pred.Registry
	byRel   map[string][]*pred.Bound
	preds   map[pred.ID]*pred.Bound
}

var _ matcher.Matcher = (*Matcher)(nil)

// New returns an empty matcher.
func New(catalog *schema.Catalog, funcs *pred.Registry) *Matcher {
	return &Matcher{
		catalog: catalog,
		funcs:   funcs,
		byRel:   make(map[string][]*pred.Bound),
		preds:   make(map[pred.ID]*pred.Bound),
	}
}

// Name implements matcher.Matcher.
func (m *Matcher) Name() string { return "hashseq" }

// Len implements matcher.Matcher.
func (m *Matcher) Len() int { return len(m.preds) }

// Add implements matcher.Matcher.
func (m *Matcher) Add(p *pred.Predicate) error {
	if _, dup := m.preds[p.ID]; dup {
		return fmt.Errorf("hashseq: duplicate predicate id %d", p.ID)
	}
	b, err := p.Bind(m.catalog, m.funcs)
	if err != nil {
		return err
	}
	m.preds[p.ID] = b
	m.byRel[p.Rel] = append(m.byRel[p.Rel], b)
	return nil
}

// Remove implements matcher.Matcher.
func (m *Matcher) Remove(id pred.ID) error {
	b, ok := m.preds[id]
	if !ok {
		return fmt.Errorf("hashseq: unknown predicate id %d", id)
	}
	delete(m.preds, id)
	list := m.byRel[b.Pred.Rel]
	for i, x := range list {
		if x.Pred.ID == id {
			m.byRel[b.Pred.Rel] = append(list[:i], list[i+1:]...)
			break
		}
	}
	return nil
}

// Match implements matcher.Matcher: hash to the relation's list, then
// test each of its predicates.
func (m *Matcher) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	for _, b := range m.byRel[rel] {
		if b.Match(t) {
			dst = append(dst, b.Pred.ID)
		}
	}
	return dst, nil
}
