// Replication: the server side of internal/repl. A leader serves the
// `replicate` op by streaming its WAL — newest snapshot if the
// follower's resume cursor was pruned, then the live record tail — over
// the ordinary wire protocol. A follower (Config.FollowerOf set)
// applies that stream through the same code paths recovery uses,
// serves lock-free reads, and rejects mutations with a leader-redirect
// error until it is promoted.
//
// Sequence-space contract: a follower's local WAL preserves the
// leader's sequence numbers exactly (wal.AppendExact / wal.Advance), so
// one number means the same state prefix on every replica. That is what
// makes the seq token in mutation acks portable: a client can take the
// WalSeq from a leader ack to any follower as Request.MinSeq and the
// follower waits until its applied frontier covers it (or redirects
// after MinSeqWait).
//
// Promotion seals the stream: after Promote flips the role, the apply
// path refuses further replicated records (under s.mu, so an in-flight
// apply finishes first) and the ordinary mutation handlers take over
// appending to the same log, continuing the leader's sequence space.

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"predmatch/internal/storage"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
	"predmatch/internal/wal"
	"predmatch/internal/wire"
)

// FollowerInfo is the server's read-only view of the attached
// replication controller (internal/repl.Follower satisfies it), used by
// the stats surface to report stream health.
type FollowerInfo interface {
	// LeaderSeq is the leader's last assigned sequence as of the most
	// recent stream frame (0 before the first frame).
	LeaderSeq() uint64
	// Reconnects counts stream re-establishments.
	Reconnects() uint64
}

// AttachFollower hands the server its replication controller: info
// feeds the stats surface, stop is invoked by Promote to terminate the
// stream. Called once by the daemon wiring before serving.
func (s *Server) AttachFollower(info FollowerInfo, stop func()) {
	s.replMu.Lock()
	s.follower = info
	s.stopFollow = stop
	s.replMu.Unlock()
}

// Leader returns the upstream address this server follows ("" on a
// leader). It keeps reporting the old leader after promotion, as a
// hint for where stale clients came from.
func (s *Server) Leader() string { return s.cfg.FollowerOf }

// IsFollower reports whether the server currently rejects mutations
// and applies a replication stream.
func (s *Server) IsFollower() bool { return s.isFollower.Load() }

// notLeaderMsg is the mutation-rejection response on a follower: the
// error names the leader and the Leader field carries it structurally
// for clients that redirect automatically.
func (s *Server) notLeaderMsg(id uint64) wire.Message {
	m := errMsg(id, fmt.Errorf("not leader: this server follows %s; send mutations there", s.cfg.FollowerOf))
	m.Leader = s.cfg.FollowerOf
	return m
}

// appliedSeq is the server's read frontier: on a follower the last
// replicated sequence applied, on a leader the log end (a leader's
// state always covers its own log).
func (s *Server) appliedSeq() uint64 {
	if s.isFollower.Load() {
		return s.applied.Load()
	}
	if s.wal != nil {
		return s.wal.LastSeq()
	}
	return 0
}

// advanceApplied publishes a new applied frontier and wakes min_seq
// waiters.
func (s *Server) advanceApplied(seq uint64) {
	s.appliedMu.Lock()
	if seq > s.applied.Load() {
		s.applied.Store(seq)
		close(s.appliedWait)
		s.appliedWait = make(chan struct{})
	}
	s.appliedMu.Unlock()
}

// waitMinSeq implements the read-your-writes token: block until the
// applied frontier reaches min. On a leader the check is immediate (its
// frontier is the log end; a bigger token belongs to another server).
// On a follower it waits up to MinSeqWait for replication to catch up,
// then fails — the caller attaches the leader redirect.
func (s *Server) waitMinSeq(min uint64) error {
	if min == 0 {
		return nil
	}
	if s.wal == nil {
		return errors.New("min_seq requires a durable server")
	}
	if s.appliedSeq() >= min {
		return nil
	}
	if !s.isFollower.Load() {
		return fmt.Errorf("min_seq %d is beyond the log end %d (token from a different leader?)", min, s.appliedSeq())
	}
	deadline := time.Now().Add(s.cfg.MinSeqWait)
	for {
		s.appliedMu.Lock()
		if s.applied.Load() >= min {
			s.appliedMu.Unlock()
			return nil
		}
		ch := s.appliedWait
		s.appliedMu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("not caught up to min_seq %d (applied %d) after %v", min, s.applied.Load(), s.cfg.MinSeqWait)
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		case <-s.done:
			t.Stop()
			return errors.New("server shutting down")
		}
		// A promotion mid-wait flips the frontier source; re-check via
		// appliedSeq so we do not wait on a stream that will never resume.
		if !s.isFollower.Load() {
			if s.appliedSeq() >= min {
				return nil
			}
			return fmt.Errorf("min_seq %d is beyond the log end %d", min, s.appliedSeq())
		}
	}
}

// minSeqErr builds the failed-token response: the error, the current
// frontier, and the leader redirect.
func (s *Server) minSeqErr(id uint64, err error) wire.Message {
	m := errMsg(id, err)
	m.WalSeq = s.appliedSeq()
	if s.isFollower.Load() {
		m.Leader = s.cfg.FollowerOf
	}
	return m
}

// Promote seals the replication stream and turns the follower into a
// leader accepting writes, returning the sequence the log was sealed
// at. The role flip happens first, so the apply path refuses any
// record still in flight; the s.mu round trip is the barrier that
// waits out an apply already executing.
func (s *Server) Promote() (uint64, error) {
	if s.wal == nil {
		return 0, errors.New("promote requires a durable server")
	}
	if !s.isFollower.CompareAndSwap(true, false) {
		return 0, errors.New("already leader")
	}
	s.replMu.Lock()
	stop := s.stopFollow
	s.replMu.Unlock()
	if stop != nil {
		stop()
	}
	s.mu.Lock()
	seq := s.wal.LastSeq()
	s.mu.Unlock()
	s.advanceApplied(seq)
	s.cfg.Logger.Info("promoted to leader", "seq", seq, "was_following", s.cfg.FollowerOf)
	return seq, nil
}

func (s *Server) handlePromote(req *wire.Request) wire.Message {
	seq, err := s.Promote()
	if err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.WalSeq = seq
	return m
}

// ---- Follower apply path (driven by internal/repl.Follower) ----

// ReplAppliedSeq is the follower's resume cursor: the last sequence
// fully applied and logged locally.
func (s *Server) ReplAppliedSeq() uint64 { return s.applied.Load() }

// ReplSealed reports whether the server stopped being a follower; the
// replication controller checks it after an apply error to distinguish
// "promoted, stop for good" from a retryable stream failure.
func (s *Server) ReplSealed() bool { return !s.isFollower.Load() }

// ReplApplySnapshot bootstraps a fresh follower from a leader
// snapshot: install the state, persist the snapshot locally, and jump
// the empty local log into the leader's sequence space. A follower
// that already has history refuses — receiving a snapshot then means
// the leader pruned past our cursor while we were away, and recovering
// from that requires wiping the data directory (the failure matrix in
// docs/REPLICATION.md).
func (s *Server) ReplApplySnapshot(snap *wal.Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.isFollower.Load() {
		return errors.New("server: replication sealed: promoted to leader")
	}
	if last := s.wal.LastSeq(); last != 0 {
		return fmt.Errorf("server: leader sent a snapshot (seq %d) but this follower already holds state through seq %d: its history fell behind the leader's pruning horizon; wipe the data directory and re-follow", snap.Seq, last)
	}
	if err := s.loadSnapshot(snap); err != nil {
		return fmt.Errorf("server: install replication snapshot %d: %w", snap.Seq, err)
	}
	if _, _, err := s.wal.WriteSnapshot(snap); err != nil {
		return err
	}
	if err := s.wal.Advance(snap.Seq); err != nil {
		return err
	}
	s.advanceApplied(snap.Seq)
	return nil
}

// ReplApplyRecord applies one replicated record: execute it through
// the recovery code path (rules do not re-fire; the record carries
// their effects), append it to the local log preserving the leader's
// sequence, and advance the read frontier once locally durable.
//
// A record carrying a trace context (the leader's request was traced)
// is recorded here as a follower.apply root span joined to the same
// trace id, so the leader's and follower's flight recorders correlate.
func (s *Server) ReplApplyRecord(rec *wal.Record) error {
	var sp *trace.Span
	if tr := s.cfg.Tracer; tr != nil && rec.Trace != nil {
		if id, ok := trace.ParseID(rec.Trace.ID); ok {
			sp = tr.Join("follower.apply", id)
			sp.SetInt("seq", int64(rec.Seq))
			sp.SetStr("kind", rec.Kind)
		}
	}
	err := s.replApplyRecord(rec, sp)
	if sp != nil {
		if err != nil {
			sp.SetStr("error", err.Error())
		}
		sp.End()
	}
	return err
}

func (s *Server) replApplyRecord(rec *wal.Record, sp *trace.Span) error {
	s.mu.Lock()
	if !s.isFollower.Load() {
		s.mu.Unlock()
		return errors.New("server: replication sealed: promoted to leader")
	}
	want := s.wal.LastSeq() + 1
	if rec.Seq < want {
		// Already applied (a resume overlap); skipping keeps the apply
		// idempotent.
		s.mu.Unlock()
		s.cfg.Logger.Debug("replication: skipping duplicate record", "seq", rec.Seq, "want", want)
		return nil
	}
	if rec.Seq > want {
		s.mu.Unlock()
		return fmt.Errorf("server: replication gap: want seq %d, got %d", want, rec.Seq)
	}
	if err := s.applyRecord(rec); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("server: apply replicated record %d: %w", rec.Seq, err)
	}
	if rec.Kind == wal.KindMutate {
		// db.Apply bypasses storage observers, so the follower feeds the
		// write profile here (one write per replicated event).
		for _, we := range rec.Events {
			s.profileRel(we.Rel).RecordWrite()
		}
	}
	asp := sp.Child("wal.append")
	_, err := s.wal.AppendExact(rec)
	asp.End()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	csp := sp.Child("wal.commit")
	err = s.wal.Commit(rec.Seq)
	csp.End()
	if err != nil {
		return err
	}
	s.advanceApplied(rec.Seq)
	s.replNotify(rec)
	return nil
}

// replNotify fans replicated mutations out to local subscribers that
// asked for direct-predicate matches. Rule-firing notifications exist
// only on the leader (the replay path applies rule effects without
// executing rules), and deletes carry no tuple image in the log, so a
// follower streams insert/update predicate matches only — documented
// in docs/REPLICATION.md.
func (s *Server) replNotify(rec *wal.Record) {
	if rec.Kind != wal.KindMutate {
		return
	}
	s.subMu.Lock()
	wanted := false
	for _, sub := range s.subs {
		if sub.preds {
			wanted = true
			break
		}
	}
	s.subMu.Unlock()
	if !wanted {
		return
	}
	for _, we := range rec.Events {
		op, err := parseEventOp(we.Op)
		if err != nil || op == storage.OpDelete || we.Tuple == nil {
			continue
		}
		rel, ok := s.db.Catalog().Get(we.Rel)
		if !ok {
			continue
		}
		t, terr := wire.ToTuple(rel, we.Tuple)
		if terr != nil {
			continue
		}
		s.onEventPreds(storage.Event{Rel: we.Rel, Op: op, ID: tuple.ID(we.ID), New: t})
	}
}

// ---- Leader streaming (the replicate op) ----

func (s *Server) handleReplicate(c *conn, req *wire.Request) wire.Message {
	if s.wal == nil {
		return errMsg(req.ID, errors.New("replication requires a data directory"))
	}
	if s.isFollower.Load() {
		m := errMsg(req.ID, fmt.Errorf("follower of %s cannot serve replication; chain from the leader", s.cfg.FollowerOf))
		m.Leader = s.cfg.FollowerOf
		return m
	}
	if last := s.wal.LastSeq(); req.FromSeq > last {
		// A follower claiming history past our log end diverged (it
		// followed a different leader, or we lost acked history); refusing
		// beats silently rewriting its log.
		return errMsg(req.ID, fmt.Errorf("resume seq %d is ahead of the log end %d: follower and leader histories diverged", req.FromSeq, last))
	}
	if !c.replica.CompareAndSwap(false, true) {
		return errMsg(req.ID, errors.New("connection is already replicating"))
	}
	c.replSeq.Store(req.FromSeq)
	s.wg.Add(1)
	go s.streamLog(c, req.FromSeq)
	s.cfg.Logger.Info("replication stream started",
		"remote", c.nc.RemoteAddr().String(), "from_seq", req.FromSeq)
	m := okMsg(req.ID)
	m.WalSeq = s.wal.LastSeq()
	return m
}

// streamLog is the per-follower streamer goroutine: it ships records
// from cursor+1 onward through the connection's response queue (which
// blocks when full — lossless backpressure, unlike the droppy
// notification queue). When the cursor predates the pruning horizon it
// falls back to the newest snapshot and resumes the tail after it.
func (s *Server) streamLog(c *conn, cursor uint64) {
	defer s.wg.Done()
	remote := c.nc.RemoteAddr().String()
	stop := make(chan struct{})
	go func() {
		select {
		case <-c.writerGone:
		case <-s.done:
		}
		close(stop)
	}()
	send := func(m wire.Message) bool {
		select {
		case c.resp <- m:
			return true
		case <-stop:
			return false
		}
	}
	for {
		tail, err := s.wal.OpenTail(cursor + 1)
		if errors.Is(err, wal.ErrTruncated) {
			snap, serr := s.wal.NewestSnapshot()
			if serr != nil || snap == nil || snap.Seq <= cursor {
				// Pruning outran the follower and no snapshot can bridge the
				// gap — should be impossible (pruning requires a covering
				// snapshot), so surface it rather than stream a hole.
				s.cfg.Logger.Warn("replication: no snapshot covers pruned tail",
					"remote", remote, "cursor", cursor, "err", serr)
				return
			}
			raw, merr := json.Marshal(snap)
			if merr != nil {
				s.cfg.Logger.Warn("replication: encode snapshot", "remote", remote, "err", merr)
				return
			}
			if !send(wire.Message{Type: wire.TypeRepl, Snap: raw, LeaderSeq: s.wal.LastSeq()}) {
				return
			}
			cursor = snap.Seq
			c.replSeq.Store(cursor)
			if s.met != nil {
				s.met.streamedBytes.Add(uint64(len(raw)))
			}
			continue
		}
		if err != nil {
			// ErrClosed on shutdown is the normal exit.
			s.cfg.Logger.Debug("replication stream ended", "remote", remote, "err", err)
			return
		}
		cursor, err = s.streamRecords(c, tail, send, stop, cursor)
		tail.Close()
		if !errors.Is(err, wal.ErrTruncated) {
			s.cfg.Logger.Debug("replication stream ended",
				"remote", remote, "cursor", cursor, "err", err)
			return
		}
		// The tail lost its next segment to pruning mid-stream; loop back
		// to the snapshot fallback.
	}
}

// streamRecords ships records until the stream stops (stop/writer
// gone), the log closes, or the tail is pruned out from under the
// cursor (returned as wal.ErrTruncated for the snapshot fallback).
func (s *Server) streamRecords(c *conn, tail *wal.Tail, send func(wire.Message) bool, stop <-chan struct{}, cursor uint64) (uint64, error) {
	for {
		rec, err := tail.Next(stop)
		if err != nil {
			return cursor, err
		}
		raw, merr := json.Marshal(rec)
		if merr != nil {
			return cursor, merr
		}
		if !send(wire.Message{Type: wire.TypeRepl, Rec: raw, LeaderSeq: s.wal.LastSeq()}) {
			return cursor, wal.ErrClosed
		}
		cursor = rec.Seq
		c.replSeq.Store(cursor)
		if s.met != nil {
			s.met.streamedRecords.Inc()
			s.met.streamedBytes.Add(uint64(len(raw)))
		}
	}
}

// replStat summarizes the replication role for the stats response (nil
// without a data directory).
func (s *Server) replStat() *wire.ReplStat {
	if s.wal == nil {
		return nil
	}
	if s.isFollower.Load() {
		rs := &wire.ReplStat{
			Role:       "follower",
			Leader:     s.cfg.FollowerOf,
			AppliedSeq: s.applied.Load(),
		}
		s.replMu.Lock()
		fi := s.follower
		s.replMu.Unlock()
		if fi != nil {
			rs.LeaderSeq = fi.LeaderSeq()
			rs.Reconnects = fi.Reconnects()
			if rs.LeaderSeq > rs.AppliedSeq {
				rs.Lag = rs.LeaderSeq - rs.AppliedSeq
			}
		}
		return rs
	}
	rs := &wire.ReplStat{Role: "leader"}
	s.connMu.Lock()
	for c := range s.conns {
		if c.replica.Load() {
			rs.Followers++
		}
	}
	s.connMu.Unlock()
	return rs
}
