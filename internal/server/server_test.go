package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/core"
	"predmatch/internal/engine"
	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/server"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// startServer launches a daemon on a loopback port and returns its
// address plus a stopper that shuts it down and verifies both that
// Serve unwinds and that no server/client goroutine outlives it.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	s := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		select {
		case err := <-serveErr:
			if !errors.Is(err, server.ErrServerClosed) {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
		checkNoConnGoroutines(t)
	}
	return s, ln.Addr().String(), stop
}

// checkNoConnGoroutines is the goleak-style final check: after
// shutdown, no goroutine may remain inside the server's or client's
// connection machinery.
func checkNoConnGoroutines(t *testing.T) {
	t.Helper()
	leakMarkers := []string{
		"server.(*conn)",
		"server.(*Server).Serve",
		"client.(*Client).readLoop",
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		leaked := false
		for _, m := range leakMarkers {
			if strings.Contains(stacks, m) {
				leaked = true
			}
		}
		if !leaked {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked past shutdown:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func dial(t *testing.T, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var empRel = schema.MustRelation("emp",
	schema.Attribute{Name: "name", Type: value.KindString},
	schema.Attribute{Name: "age", Type: value.KindInt},
	schema.Attribute{Name: "salary", Type: value.KindInt},
	schema.Attribute{Name: "dept", Type: value.KindString},
)

var auditRel = schema.MustRelation("audit",
	schema.Attribute{Name: "note", Type: value.KindString},
	schema.Attribute{Name: "level", Type: value.KindInt},
)

// e2eRules exercise overlap, multiple events, deletes and a cascade
// (rule paid inserts into audit, firing loud one level deeper).
var e2eRules = []string{
	"rule band on insert, update to emp when salary between 20000 and 30000 do log 'band'",
	"rule senior on insert to emp when age > 50 do log 'senior'",
	"rule cheap on delete to emp when salary < 25000 do log 'cheap'",
	"rule paid on insert to emp when salary > 90000 do insert into audit ('paid', 2)",
	"rule loud on insert to audit when level > 1 do log 'loud'",
}

func randomEmp(rng *rand.Rand) tuple.Tuple {
	return tuple.New(
		value.String_(fmt.Sprintf("w%d", rng.Intn(50))),
		value.Int(int64(20+rng.Intn(50))),
		value.Int(int64(10000+rng.Intn(90000))),
		value.String_([]string{"shoe", "toy", "deli"}[rng.Intn(3)]),
	)
}

// jsonEq compares two wire tuple forms via canonical JSON.
func jsonEq(a, b any) bool {
	ab, err1 := json.Marshal(a)
	bb, err2 := json.Marshal(b)
	return err1 == nil && err2 == nil && string(ab) == string(bb)
}

// TestServerEndToEnd is the acceptance scenario: two clients over real
// TCP — one subscribes, one streams >1k mutations — and the subscriber
// must receive exactly the firings an in-process oracle engine produces
// for the same mutation sequence, modulo counted overflow drops.
func TestServerEndToEnd(t *testing.T) {
	_, addr, stop := startServer(t, server.Config{QueueLen: 1 << 14})
	defer stop()

	sub := dial(t, addr, client.WithNotifyBuffer(1<<14))
	mut := dial(t, addr)
	defer sub.Close()
	defer mut.Close()

	// The in-process oracle: an identical schema + rule set over the
	// single-threaded reference engine, collecting firings via OnFire.
	oracleDB := storage.NewDB()
	oracleFuncs := pred.NewRegistry()
	oracleEng := engine.New(oracleDB, oracleFuncs, core.New(oracleDB.Catalog(), oracleFuncs))
	var oracle []engine.FiringEvent
	oracleEng.OnFire(func(ev engine.FiringEvent) { oracle = append(oracle, ev) })

	for _, rel := range []*schema.Relation{empRel, auditRel} {
		if err := mut.DeclareRelation(rel); err != nil {
			t.Fatal(err)
		}
		if _, err := oracleDB.CreateRelation(rel); err != nil {
			t.Fatal(err)
		}
	}
	oracleEmp, _ := oracleDB.Table("emp")
	for _, src := range e2eRules {
		if _, err := mut.DefineRule(src); err != nil {
			t.Fatal(err)
		}
		if _, err := oracleEng.DefineRule(src); err != nil {
			t.Fatal(err)
		}
	}

	ch, err := sub.Subscribe(false)
	if err != nil {
		t.Fatal(err)
	}
	var (
		gotMu sync.Mutex
		got   []client.Notification
	)
	collected := make(chan struct{})
	go func() {
		defer close(collected)
		for n := range ch {
			gotMu.Lock()
			got = append(got, n)
			gotMu.Unlock()
		}
	}()

	// Stream the mutation storm: inserts, updates and deletes drawn
	// from one deterministic sequence, applied identically to the
	// server (over TCP) and the oracle (in process).
	rng := rand.New(rand.NewSource(7))
	var live []tuple.ID
	const ops = 1200
	for i := 0; i < ops; i++ {
		switch {
		case len(live) < 5 || rng.Intn(10) < 6: // insert
			tp := randomEmp(rng)
			id, _, err := mut.Insert("emp", tp)
			if err != nil {
				t.Fatalf("op %d: insert: %v", i, err)
			}
			oid, err := oracleEmp.Insert(tp)
			if err != nil {
				t.Fatalf("op %d: oracle insert: %v", i, err)
			}
			if id != oid {
				t.Fatalf("op %d: server assigned id %d, oracle %d", i, id, oid)
			}
			live = append(live, id)
		case rng.Intn(3) == 0: // delete
			k := rng.Intn(len(live))
			id := live[k]
			live = append(live[:k], live[k+1:]...)
			if _, err := mut.Delete("emp", id); err != nil {
				t.Fatalf("op %d: delete: %v", i, err)
			}
			if err := oracleEmp.Delete(id); err != nil {
				t.Fatalf("op %d: oracle delete: %v", i, err)
			}
		default: // update
			id := live[rng.Intn(len(live))]
			tp := randomEmp(rng)
			if _, err := mut.Update("emp", id, tp); err != nil {
				t.Fatalf("op %d: update: %v", i, err)
			}
			if err := oracleEmp.Update(id, tp); err != nil {
				t.Fatalf("op %d: oracle update: %v", i, err)
			}
		}
	}

	generated, dropped, err := sub.Unsubscribe()
	if err != nil {
		t.Fatal(err)
	}
	if generated != uint64(len(oracle)) {
		t.Fatalf("server generated %d notifications, oracle fired %d times", generated, len(oracle))
	}
	// Queued notifications may still be in flight after the
	// unsubscribe response; wait until everything undropped arrived.
	want := int(generated - dropped)
	deadline := time.Now().Add(10 * time.Second)
	for {
		sub.Ping() // any round trip flushes the pipeline behind notifications
		gotMu.Lock()
		n := len(got)
		gotMu.Unlock()
		if n >= want || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	gotMu.Lock()
	final := append([]client.Notification(nil), got...)
	gotMu.Unlock()
	if len(final) != want {
		t.Fatalf("received %d notifications, want %d (generated %d, dropped %d)",
			len(final), want, generated, dropped)
	}

	// Every received notification must be exactly the oracle firing
	// with the same (1-based) sequence number: dropped notifications
	// appear as seq gaps, never as divergent content.
	seen := make(map[uint64]bool)
	for i, n := range final {
		if n.Seq < 1 || n.Seq > generated {
			t.Fatalf("notification %d: seq %d out of range [1,%d]", i, n.Seq, generated)
		}
		if seen[n.Seq] {
			t.Fatalf("notification %d: duplicate seq %d", i, n.Seq)
		}
		seen[n.Seq] = true
		ev := oracle[n.Seq-1]
		if n.Rule != ev.Rule || n.Relation != ev.Rel || n.Op != ev.Op.String() ||
			n.TupleID != int64(ev.TupleID) || n.Depth != ev.Depth {
			t.Fatalf("notification %d: got %+v, oracle %+v", i, n, ev)
		}
		if !jsonEq(n.Tuple, tupleWire(ev.Tuple)) {
			t.Fatalf("notification %d: tuple %v, oracle %v", i, n.Tuple, ev.Tuple)
		}
	}
	if dropped != generated-uint64(len(seen)) {
		t.Fatalf("drop accounting: dropped=%d, but %d of %d seqs missing",
			dropped, generated-uint64(len(seen)), generated)
	}
	t.Logf("streamed %d mutations → %d firings, %d delivered, %d dropped",
		ops, generated, len(final), dropped)
}

func tupleWire(tp tuple.Tuple) []any {
	out := make([]any, len(tp))
	for i, v := range tp {
		switch v.Kind() {
		case value.KindInt:
			out[i] = v.AsInt()
		case value.KindFloat:
			out[i] = v.AsFloat()
		case value.KindString:
			out[i] = v.AsString()
		case value.KindBool:
			out[i] = v.AsBool()
		}
	}
	return out
}

// TestServerMatchAndPredicates drives the bare-predicate API: addpred,
// match, matchbatch, rmpred, stats, and predicate-match subscriptions.
func TestServerMatchAndPredicates(t *testing.T) {
	_, addr, stop := startServer(t, server.Config{})
	defer stop()
	c := dial(t, addr)
	defer c.Close()

	if err := c.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	young := pred.New(0, "emp", pred.IvClause("age", interval.Less(value.Int(30))))
	shoe := pred.New(0, "emp", pred.EqClause("dept", value.String_("shoe")))
	youngID, err := c.AddPredicate(young)
	if err != nil {
		t.Fatal(err)
	}
	shoeID, err := c.AddPredicate(shoe)
	if err != nil {
		t.Fatal(err)
	}
	if youngID < server.DirectPredBase || shoeID <= youngID {
		t.Fatalf("assigned IDs %d, %d", youngID, shoeID)
	}

	tp := tuple.New(value.String_("a"), value.Int(25), value.Int(1000), value.String_("shoe"))
	ids, err := c.Match("emp", tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("match = %v, want both predicates", ids)
	}

	batch := []tuple.Tuple{
		tp,
		tuple.New(value.String_("b"), value.Int(40), value.Int(1000), value.String_("toy")),
	}
	res, err := c.MatchBatch("emp", batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || len(res[0]) != 2 || len(res[1]) != 0 {
		t.Fatalf("matchbatch = %v", res)
	}

	// Predicate-match subscription: inserts matching a direct predicate
	// produce notifications carrying the matching IDs.
	ch, err := c.Subscribe(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Insert("emp", tp); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-ch:
		if len(n.Matches) != 2 || n.Relation != "emp" || n.Op != "insert" {
			t.Fatalf("predicate notification = %+v", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no predicate-match notification")
	}
	if _, _, err := c.Unsubscribe(); err != nil {
		t.Fatal(err)
	}

	if err := c.RemovePredicate(youngID); err != nil {
		t.Fatal(err)
	}
	if err := c.RemovePredicate(youngID); err == nil {
		t.Fatal("double rmpred accepted")
	}
	if err := c.RemovePredicate(1); err == nil {
		t.Fatal("rmpred of non-client predicate accepted")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Matcher != "sharded" || st.Predicates != 1 || st.Conns != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Shards) != 1 || st.Shards[0].Rel != "emp" || st.Shards[0].Predicates != 1 {
		t.Fatalf("shard stats = %+v", st.Shards)
	}
}

// TestServerDeclareMatchRace: DDL must be safe against live match
// traffic. match/matchbatch/addpred resolve relations through the
// shared catalog without the mutation mutex, so concurrent declares
// exercise the catalog's internal synchronization (a regression here
// is a concurrent map read/write that kills the daemon under -race).
func TestServerDeclareMatchRace(t *testing.T) {
	_, addr, stop := startServer(t, server.Config{})
	defer stop()

	setup := dial(t, addr)
	defer setup.Close()
	if err := setup.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.AddPredicate(pred.New(0, "emp",
		pred.IvClause("age", interval.Less(value.Int(30))))); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup

	// DDL storm: declare fresh relations for the whole test duration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		ddl := dial(t, addr)
		defer ddl.Close()
		for i := 0; i < 300; i++ {
			rel := schema.MustRelation(fmt.Sprintf("rel%d", i),
				schema.Attribute{Name: "k", Type: value.KindInt})
			if err := ddl.DeclareRelation(rel); err != nil {
				t.Errorf("declare rel%d: %v", i, err)
				return
			}
			if _, err := ddl.AddPredicate(pred.New(0, rel.Name(),
				pred.IvClause("k", interval.Less(value.Int(int64(i)))))); err != nil {
				t.Errorf("addpred rel%d: %v", i, err)
				return
			}
		}
	}()

	// Read storm: match and matchbatch against the shared catalog.
	tp := tuple.New(value.String_("a"), value.Int(25), value.Int(1000), value.String_("shoe"))
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, addr)
			defer c.Close()
			for {
				select {
				case <-done:
					return
				default:
				}
				ids, err := c.Match("emp", tp)
				if err != nil || len(ids) != 1 {
					t.Errorf("match = %v, %v", ids, err)
					return
				}
				if _, err := c.MatchBatch("emp", []tuple.Tuple{tp, tp}); err != nil {
					t.Errorf("matchbatch: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestServerRuleLifecycle covers declare/rule/droprule error paths.
func TestServerRuleLifecycle(t *testing.T) {
	_, addr, stop := startServer(t, server.Config{})
	defer stop()
	c := dial(t, addr)
	defer c.Close()

	if err := c.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareRelation(empRel); err == nil {
		t.Fatal("duplicate relation accepted")
	}
	name, err := c.DefineRule("rule band on insert to emp when salary between 1 and 2 do log 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if name != "band" {
		t.Fatalf("rule name = %q", name)
	}
	if _, err := c.DefineRule("rule broken on insert to nosuch do log 'x'"); err == nil {
		t.Fatal("rule on unknown relation accepted")
	}
	if err := c.DropRule("band"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropRule("band"); err == nil {
		t.Fatal("double droprule accepted")
	}
	if err := c.CreateIndex("emp", "salary"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateIndex("emp", "nosuch"); err == nil {
		t.Fatal("index on unknown attribute accepted")
	}
	if _, _, err := c.Insert("nosuch", tuple.New(value.Int(1))); err == nil {
		t.Fatal("insert into unknown relation accepted")
	}
}

// TestServerConnLimit verifies over-limit dials are rejected with an
// explanatory error instead of hanging.
func TestServerConnLimit(t *testing.T) {
	_, addr, stop := startServer(t, server.Config{MaxConns: 2})
	defer stop()
	a := dial(t, addr)
	defer a.Close()
	b := dial(t, addr)
	defer b.Close()
	c, err := client.Dial(addr, client.WithTimeout(3*time.Second))
	if err == nil {
		c.Close()
		t.Fatal("third connection accepted past MaxConns=2")
	}
	if !strings.Contains(err.Error(), "connection limit") {
		t.Fatalf("rejection error = %v", err)
	}
	// Capacity freed by a close is reusable.
	a.Close()
	waitFor(t, func() bool {
		d, err := client.Dial(addr)
		if err != nil {
			return false
		}
		d.Close()
		return true
	})
}

func waitFor(t *testing.T, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerIdleTimeout: idle unsubscribed connections are reaped;
// subscribed connections are exempt.
func TestServerIdleTimeout(t *testing.T) {
	_, addr, stop := startServer(t, server.Config{IdleTimeout: 200 * time.Millisecond})
	defer stop()
	idle := dial(t, addr)
	defer idle.Close()
	watcher := dial(t, addr)
	defer watcher.Close()
	if err := watcher.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	if _, err := watcher.Subscribe(false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(800 * time.Millisecond)
	if err := idle.Ping(); err == nil {
		t.Fatal("idle connection survived the idle timeout")
	}
	if err := watcher.Ping(); err != nil {
		t.Fatalf("subscribed connection was reaped: %v", err)
	}
}

// TestServerSlowSubscriberDoesNotBlock: a subscriber that never reads
// its socket must not stall the mutation/match path — the bounded
// queue and drop policy absorb it.
func TestServerSlowSubscriberDoesNotBlock(t *testing.T) {
	_, addr, stop := startServer(t, server.Config{QueueLen: 4, WriteTimeout: time.Second})
	defer stop()

	mut := dial(t, addr)
	defer mut.Close()
	if err := mut.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	if _, err := mut.DefineRule("rule all on insert to emp do log 'x'"); err != nil {
		t.Fatal(err)
	}

	// A raw socket that subscribes and then goes silent without ever
	// reading: the worst-behaved consumer.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := fmt.Fprintf(raw, `{"id":1,"op":"subscribe"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	// Give the server a moment to register the subscription.
	buf := make([]byte, 256)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	const ops = 2000
	for i := 0; i < ops; i++ {
		if _, _, err := mut.Insert("emp", randomEmp(rand.New(rand.NewSource(int64(i))))); err != nil {
			t.Fatalf("insert %d with stalled subscriber: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	st, err := mut.Stats()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%d inserts in %v with a stalled subscriber; delivered=%d dropped=%d",
		ops, elapsed, st.Delivered, st.Dropped)
	if st.Delivered+st.Dropped < ops {
		t.Fatalf("notification accounting lost events: delivered=%d dropped=%d, want ≥%d",
			st.Delivered, st.Dropped, ops)
	}
}

// TestServerGracefulShutdown: shutdown during a live mutation stream
// unwinds Serve, fails subsequent client calls cleanly, and leaks no
// goroutine (stop() performs the final check).
func TestServerGracefulShutdown(t *testing.T) {
	s, addr, stop := startServer(t, server.Config{})
	mut := dial(t, addr)
	defer mut.Close()
	watcher := dial(t, addr)
	defer watcher.Close()
	if err := mut.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	if _, err := mut.DefineRule("rule all on insert to emp do log 'x'"); err != nil {
		t.Fatal(err)
	}
	notes, err := watcher.Subscribe(false)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the stream until the server's shutdown closes it.
	drained := make(chan int)
	go func() {
		n := 0
		for range notes {
			n++
		}
		drained <- n
	}()

	// A goroutine hammering mutations while we shut down.
	hammerDone := make(chan struct{})
	go func() {
		defer close(hammerDone)
		rng := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			if _, _, err := mut.Insert("emp", randomEmp(rng)); err != nil {
				return // shutdown reached the connection
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	stop() // Shutdown + Serve return + goroutine-leak check
	_ = s
	select {
	case <-hammerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("mutation stream did not unwind after shutdown")
	}
	select {
	case n := <-drained:
		t.Logf("watcher received %d notifications before shutdown", n)
	case <-time.After(5 * time.Second):
		t.Fatal("notification stream did not close after shutdown")
	}
	if err := mut.Ping(); err == nil {
		t.Fatal("ping succeeded after shutdown")
	}
}
