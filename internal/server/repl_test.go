package server_test

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/repl"
	"predmatch/internal/server"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// serveQuiet serves s on a loopback port like adoptServer, but without
// the global goroutine leak check: in a multi-server test only the
// last server down may scan for leaks, because the check sees every
// live Serve loop in the process. Callers pair it with a leader
// started through startDurable whose stop runs last.
func serveQuiet(t *testing.T, s *server.Server) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		select {
		case err := <-serveErr:
			if !errors.Is(err, server.ErrServerClosed) {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	}
	return ln.Addr().String(), stop
}

// startFollower opens a follower of leaderAddr in its own data
// directory, serves it, and wires an internal/repl stream into it.
// The cleanup stops the stream before the server and fails the test
// if the stream loop exited with an error.
func startFollower(t *testing.T, leaderAddr string, cfg server.Config) (*server.Server, string, *repl.Follower, func()) {
	t.Helper()
	cfg.DataDir = t.TempDir()
	cfg.FollowerOf = leaderAddr
	s, err := server.Open(cfg)
	if err != nil {
		t.Fatalf("Open follower: %v", err)
	}
	addr, stop := serveQuiet(t, s)
	f := repl.New(leaderAddr, s, repl.Options{
		RetryMin: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond,
	})
	s.AttachFollower(f, f.Stop)
	runErr := make(chan error, 1)
	go func() { runErr <- f.Run() }()
	cleanup := func() {
		f.Stop()
		select {
		case err := <-runErr:
			if err != nil {
				t.Errorf("follower loop: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("follower loop did not stop")
		}
		stop()
	}
	return s, addr, f, cleanup
}

// waitSeq polls until get() reaches want.
func waitSeq(t *testing.T, what string, get func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for get() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at %d, want >= %d", what, get(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func containsPred(ids []pred.ID, want pred.ID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

// TestFollowerCatchUpAndLiveTail covers the bread-and-butter path: a
// follower started against a leader with existing history replays it,
// applies live writes as they stream, serves matches locally, streams
// predicate notifications to its own subscribers, and honors
// read-your-writes tokens minted by leader acks.
func TestFollowerCatchUpAndLiveTail(t *testing.T) {
	_, leaderAddr, leaderStop := startDurable(t, server.Config{DataDir: t.TempDir()})
	defer leaderStop()

	lc := dial(t, leaderAddr)
	defer lc.Close()
	if err := lc.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	shoeID, err := lc.AddPredicate(pred.New(0, "emp",
		pred.EqClause("dept", value.String_("shoe"))))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lc.Insert("emp", tuple.New(
		value.String_("ada"), value.Int(52), value.Int(18000), value.String_("deli"))); err != nil {
		t.Fatal(err)
	}

	fsrv, faddr, _, fcleanup := startFollower(t, leaderAddr, server.Config{})
	defer fcleanup()
	waitSeq(t, "follower applied", fsrv.ReplAppliedSeq, lc.LastSeq())

	fc := dial(t, faddr)
	defer fc.Close()
	ids, err := fc.Match("emp", tuple.New(
		value.String_("p"), value.Int(30), value.Int(1000), value.String_("shoe")))
	if err != nil {
		t.Fatalf("follower match: %v", err)
	}
	if !containsPred(ids, shoeID) {
		t.Fatalf("follower match %v does not include replicated predicate %d", ids, shoeID)
	}

	// Live tail: a predicate registered on the leader NOW must be
	// visible on the follower under its ack's seq token, with no sleep
	// between the ack and the follower read.
	seniorID, err := lc.AddPredicate(pred.New(0, "emp",
		pred.IvClause("age", interval.Greater(value.Int(50)))))
	if err != nil {
		t.Fatal(err)
	}
	token := lc.LastSeq()
	ids, err = fc.MatchAt("emp", tuple.New(
		value.String_("p"), value.Int(60), value.Int(1000), value.String_("toy")), token)
	if err != nil {
		t.Fatalf("follower MatchAt(min_seq=%d): %v", token, err)
	}
	if !containsPred(ids, seniorID) {
		t.Fatalf("seq-token read at %d missed predicate %d: got %v", token, seniorID, ids)
	}

	// Follower subscribers see direct-predicate matches for replicated
	// inserts.
	fsub := dial(t, faddr)
	defer fsub.Close()
	notes, err := fsub.Subscribe(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := lc.Insert("emp", tuple.New(
		value.String_("bob"), value.Int(33), value.Int(25000), value.String_("shoe"))); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-notes:
		if !containsPred(n.Matches, shoeID) {
			t.Fatalf("follower notification matches %v, want %d", n.Matches, shoeID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower subscriber saw no replicated predicate match")
	}

	// Both sides of the stream show up in stats.
	fst, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if fst.Repl == nil || fst.Repl.Role != "follower" || fst.Repl.Leader != leaderAddr {
		t.Fatalf("follower repl stats = %+v", fst.Repl)
	}
	lst, err := lc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if lst.Repl == nil || lst.Repl.Role != "leader" || lst.Repl.Followers != 1 {
		t.Fatalf("leader repl stats = %+v", lst.Repl)
	}
}

// TestFollowerRejectsMutations pins the redirect contract: mutation
// and DDL ops on a follower fail without touching state, and the
// error names the leader so clients can re-dial.
func TestFollowerRejectsMutations(t *testing.T) {
	_, leaderAddr, leaderStop := startDurable(t, server.Config{DataDir: t.TempDir()})
	defer leaderStop()
	lc := dial(t, leaderAddr)
	defer lc.Close()
	if err := lc.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}

	fsrv, faddr, _, fcleanup := startFollower(t, leaderAddr, server.Config{})
	defer fcleanup()
	waitSeq(t, "follower applied", fsrv.ReplAppliedSeq, lc.LastSeq())

	fc := dial(t, faddr)
	defer fc.Close()
	_, _, err := fc.Insert("emp", tuple.New(
		value.String_("x"), value.Int(1), value.Int(1), value.String_("d")))
	if err == nil || !strings.Contains(err.Error(), "not leader") ||
		!strings.Contains(err.Error(), leaderAddr) {
		t.Fatalf("follower insert error = %v, want not-leader redirect to %s", err, leaderAddr)
	}
	if err := fc.DeclareRelation(auditRel); err == nil || !strings.Contains(err.Error(), "not leader") {
		t.Fatalf("follower declare error = %v, want not-leader", err)
	}
	if _, err := fc.AddPredicate(pred.New(0, "emp",
		pred.EqClause("dept", value.String_("shoe")))); err == nil ||
		!strings.Contains(err.Error(), "not leader") {
		t.Fatalf("follower addpred error = %v, want not-leader", err)
	}
	if _, err := fc.DefineRule("rule r on insert to emp when age > 1 do log 'x'"); err == nil ||
		!strings.Contains(err.Error(), "not leader") {
		t.Fatalf("follower rule error = %v, want not-leader", err)
	}
}

// TestMinSeqTimesOutOnStalledFollower: a follower that cannot catch
// up (no stream attached at all) must fail a token read after
// MinSeqWait with a redirect, not hang and not serve stale state.
func TestMinSeqTimesOutOnStalledFollower(t *testing.T) {
	_, leaderAddr, leaderStop := startDurable(t, server.Config{DataDir: t.TempDir()})
	defer leaderStop()

	s, err := server.Open(server.Config{
		DataDir:    t.TempDir(),
		FollowerOf: leaderAddr,
		MinSeqWait: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	faddr, stop := serveQuiet(t, s)
	defer stop()

	fc := dial(t, faddr)
	defer fc.Close()
	t0 := time.Now()
	_, err = fc.MatchAt("emp", tuple.New(
		value.String_("x"), value.Int(1), value.Int(1), value.String_("d")), 7)
	if err == nil || !strings.Contains(err.Error(), "not caught up") {
		t.Fatalf("stalled min_seq read error = %v, want not-caught-up", err)
	}
	if elapsed := time.Since(t0); elapsed < 90*time.Millisecond {
		t.Fatalf("min_seq read failed after %v, should have waited ~100ms", elapsed)
	}
}

// A min_seq beyond the leader's own log is a token from some other
// history; the leader must refuse immediately rather than wait for a
// sequence it will never assign on its own.
func TestMinSeqBeyondLeaderLog(t *testing.T) {
	_, leaderAddr, leaderStop := startDurable(t, server.Config{DataDir: t.TempDir()})
	defer leaderStop()
	lc := dial(t, leaderAddr)
	defer lc.Close()
	if err := lc.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	probe := tuple.New(value.String_("x"), value.Int(1), value.Int(1), value.String_("d"))
	if _, err := lc.MatchAt("emp", probe, lc.LastSeq()); err != nil {
		t.Fatalf("MatchAt at the leader's own seq: %v", err)
	}
	if _, err := lc.MatchAt("emp", probe, lc.LastSeq()+100); err == nil {
		t.Fatal("MatchAt past the leader's log succeeded")
	}
}

// TestPromoteSealsAndAcceptsWrites: promotion flips the role exactly
// once, the promoted server accepts writes continuing the sealed
// sequence space, and the stream loop exits cleanly.
func TestPromoteSealsAndAcceptsWrites(t *testing.T) {
	_, leaderAddr, leaderStop := startDurable(t, server.Config{DataDir: t.TempDir()})
	defer leaderStop()
	lc := dial(t, leaderAddr)
	defer lc.Close()
	if err := lc.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lc.Insert("emp", tuple.New(
		value.String_("ada"), value.Int(52), value.Int(18000), value.String_("deli"))); err != nil {
		t.Fatal(err)
	}

	fsrv, faddr, _, fcleanup := startFollower(t, leaderAddr, server.Config{})
	defer fcleanup()
	ackedSeq := lc.LastSeq()
	waitSeq(t, "follower applied", fsrv.ReplAppliedSeq, ackedSeq)

	fc := dial(t, faddr)
	defer fc.Close()
	seq, err := fc.Promote()
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if seq < ackedSeq {
		t.Fatalf("promoted at seq %d, follower had applied %d", seq, ackedSeq)
	}
	if _, err := fc.Promote(); err == nil || !strings.Contains(err.Error(), "already leader") {
		t.Fatalf("second promote = %v, want already-leader", err)
	}

	// The promoted server now takes writes, numbered after the sealed
	// prefix.
	if _, _, err := fc.Insert("emp", tuple.New(
		value.String_("new"), value.Int(30), value.Int(50000), value.String_("toy"))); err != nil {
		t.Fatalf("insert after promote: %v", err)
	}
	if got := fc.LastSeq(); got != seq+1 {
		t.Fatalf("first post-promotion write acked at seq %d, want %d", got, seq+1)
	}
	st, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Repl == nil || st.Repl.Role != "leader" {
		t.Fatalf("promoted stats role = %+v", st.Repl)
	}
}

// TestFollowerSnapshotBootstrap: when the leader has pruned the log
// prefix a fresh follower would need, the stream falls back to the
// newest snapshot; the follower installs it, persists it locally, and
// resumes the record tail after it.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	_, leaderAddr, leaderStop := startDurable(t, server.Config{
		DataDir:         t.TempDir(),
		WALSegmentBytes: 512, // force enough segments that pruning bites
	})
	defer leaderStop()
	lc := dial(t, leaderAddr)
	defer lc.Close()
	if err := lc.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	shoeID, err := lc.AddPredicate(pred.New(0, "emp",
		pred.EqClause("dept", value.String_("shoe"))))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, _, err := lc.Insert("emp", tuple.New(
			value.String_("padpadpadpadpad"), value.Int(30), value.Int(int64(20000+i)),
			value.String_("toy"))); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint + prune: sequence 1 is now gone from the leader's log,
	// so a from-scratch follower cannot tail it and must bootstrap.
	if _, err := lc.Backup(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := lc.Insert("emp", tuple.New(
			value.String_("tail"), value.Int(30), value.Int(90), value.String_("deli"))); err != nil {
			t.Fatal(err)
		}
	}

	fsrv, faddr, _, fcleanup := startFollower(t, leaderAddr, server.Config{})
	defer fcleanup()
	waitSeq(t, "follower applied", fsrv.ReplAppliedSeq, lc.LastSeq())

	fc := dial(t, faddr)
	defer fc.Close()
	fst, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	lst, err := lc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(fst.Relations) != 1 || len(lst.Relations) != 1 ||
		fst.Relations[0].Rows != lst.Relations[0].Rows ||
		fst.Relations[0].NextID != lst.Relations[0].NextID {
		t.Fatalf("bootstrap state mismatch: follower %+v, leader %+v",
			fst.Relations, lst.Relations)
	}
	if fst.WAL == nil || fst.WAL.SnapshotSeq == 0 {
		t.Fatalf("follower did not persist the bootstrap snapshot: %+v", fst.WAL)
	}
	ids, err := fc.Match("emp", tuple.New(
		value.String_("p"), value.Int(30), value.Int(1000), value.String_("shoe")))
	if err != nil {
		t.Fatal(err)
	}
	if !containsPred(ids, shoeID) {
		t.Fatalf("bootstrapped follower match %v missing predicate %d", ids, shoeID)
	}
}

// TestFollowerReconnectResume severs the stream's TCP connection out
// from under the follower; it must reconnect, resume from its applied
// cursor, and reach the new log end.
func TestFollowerReconnectResume(t *testing.T) {
	_, leaderAddr, leaderStop := startDurable(t, server.Config{DataDir: t.TempDir()})
	defer leaderStop()
	lc := dial(t, leaderAddr)
	defer lc.Close()
	if err := lc.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := lc.Insert("emp", tuple.New(
			value.String_("pre"), value.Int(30), value.Int(500), value.String_("toy"))); err != nil {
			t.Fatal(err)
		}
	}

	// The follower dials the leader through a proxy so the stream can
	// be cut without touching either server.
	proxy := newKillableProxy(t, leaderAddr)
	defer proxy.Close()

	fsrv, _, f, fcleanup := startFollower(t, proxy.Addr(), server.Config{})
	defer fcleanup()
	waitSeq(t, "follower applied", fsrv.ReplAppliedSeq, lc.LastSeq())

	proxy.KillConns()
	for i := 0; i < 5; i++ {
		if _, _, err := lc.Insert("emp", tuple.New(
			value.String_("post"), value.Int(30), value.Int(500), value.String_("toy"))); err != nil {
			t.Fatal(err)
		}
	}
	waitSeq(t, "follower applied after partition", fsrv.ReplAppliedSeq, lc.LastSeq())
	if f.Reconnects() == 0 {
		t.Error("reconnect counter did not advance across the partition")
	}
}

// killableProxy is a TCP forwarder whose live connections can be torn
// down on demand — the partition injector for replication tests.
type killableProxy struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func newKillableProxy(t *testing.T, target string) *killableProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{ln: ln}
	go func() {
		for {
			down, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				down.Close()
				continue
			}
			p.mu.Lock()
			p.conns = append(p.conns, down, up)
			p.mu.Unlock()
			go func() {
				io.Copy(up, down)
				up.Close()
				down.Close()
			}()
			go func() {
				io.Copy(down, up)
				down.Close()
				up.Close()
			}()
		}
	}()
	return p
}

func (p *killableProxy) Addr() string { return p.ln.Addr().String() }

// KillConns closes every live forwarded connection; new dials through
// the proxy still work, modeling a transient partition.
func (p *killableProxy) KillConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

func (p *killableProxy) Close() {
	p.ln.Close()
	p.KillConns()
}
