package server_test

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/server"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wal"
	"predmatch/internal/wire"
)

// startDurable launches a daemon recovered from dir. Same contract as
// startServer, but through server.Open so the WAL subsystem is wired.
func startDurable(t *testing.T, cfg server.Config) (*server.Server, string, func()) {
	t.Helper()
	s, err := server.Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", cfg.DataDir, err)
	}
	_, addr, stop := adoptServer(t, s)
	return s, addr, stop
}

// adoptServer is startServer's serve/stop half for a pre-built server.
func adoptServer(t *testing.T, s *server.Server) (*server.Server, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		select {
		case err := <-serveErr:
			if !errors.Is(err, server.ErrServerClosed) {
				t.Errorf("Serve returned %v, want ErrServerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
		checkNoConnGoroutines(t)
	}
	return s, ln.Addr().String(), stop
}

// TestDurableRestart drives every state-changing op class against a
// data directory, shuts down cleanly, reopens the same directory, and
// asserts the recovered daemon is observably identical: relations with
// exact row counts and tuple-ID counters, rules, indexes and direct
// predicates all survive, and rule cascades recorded before the
// restart do not re-fire during recovery.
func TestDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{DataDir: dir}

	var (
		preStats *wire.Stats
		shoeID   pred.ID
		empIDs   []tuple.ID
	)
	probe := tuple.New(value.String_("probe"), value.Int(25), value.Int(1000), value.String_("shoe"))

	{
		_, addr, stop := startDurable(t, cfg)
		c := dial(t, addr)

		if err := c.DeclareRelation(empRel); err != nil {
			t.Fatal(err)
		}
		if err := c.DeclareRelation(auditRel); err != nil {
			t.Fatal(err)
		}
		if err := c.CreateIndex("emp", "salary"); err != nil {
			t.Fatal(err)
		}
		for _, src := range e2eRules {
			if _, err := c.DefineRule(src); err != nil {
				t.Fatal(err)
			}
		}
		// Drop one rule so recovery must replay the drop too.
		if err := c.DropRule("cheap"); err != nil {
			t.Fatal(err)
		}
		var err error
		shoeID, err = c.AddPredicate(pred.New(0, "emp",
			pred.EqClause("dept", value.String_("shoe"))))
		if err != nil {
			t.Fatal(err)
		}
		// A second predicate added and removed: recovery replays both
		// sides, and the freed ID must not be handed out again.
		tmpID, err := c.AddPredicate(pred.New(0, "emp",
			pred.IvClause("age", interval.Less(value.Int(30)))))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RemovePredicate(tmpID); err != nil {
			t.Fatal(err)
		}

		// Mutations, including one whose `paid` rule cascades an insert
		// into audit, plus an update and a delete.
		rows := []tuple.Tuple{
			tuple.New(value.String_("ann"), value.Int(30), value.Int(95000), value.String_("toy")), // cascades
			tuple.New(value.String_("bob"), value.Int(55), value.Int(25000), value.String_("shoe")),
			tuple.New(value.String_("cat"), value.Int(40), value.Int(50000), value.String_("deli")),
		}
		for _, tp := range rows {
			id, _, err := c.Insert("emp", tp)
			if err != nil {
				t.Fatal(err)
			}
			empIDs = append(empIDs, id)
		}
		if _, err := c.Update("emp", empIDs[1],
			tuple.New(value.String_("bob"), value.Int(56), value.Int(26000), value.String_("shoe"))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Delete("emp", empIDs[2]); err != nil {
			t.Fatal(err)
		}

		preStats, err = c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if preStats.WAL == nil || preStats.WAL.LastSeq == 0 {
			t.Fatalf("pre-restart WAL stats = %+v", preStats.WAL)
		}
		if preStats.WAL.DurableSeq != preStats.WAL.LastSeq {
			t.Fatalf("sync=always but durable=%d last=%d",
				preStats.WAL.DurableSeq, preStats.WAL.LastSeq)
		}
		c.Close()
		stop()
	}

	// Reopen the same directory.
	s, addr, stop := startDurable(t, cfg)
	defer stop()
	c := dial(t, addr)
	defer c.Close()

	if info := s.Recovery(); info.LastSeq != preStats.WAL.LastSeq {
		t.Fatalf("recovery replayed to seq %d, pre-restart last seq %d",
			info.LastSeq, preStats.WAL.LastSeq)
	}

	post, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Identical rules, predicates, relations (rows and ID counters).
	if !jsonEq(post.Rules, preStats.Rules) {
		t.Fatalf("rules after restart = %v, want %v", post.Rules, preStats.Rules)
	}
	if post.Predicates != preStats.Predicates {
		t.Fatalf("predicates after restart = %d, want %d", post.Predicates, preStats.Predicates)
	}
	if !jsonEq(post.Relations, preStats.Relations) {
		t.Fatalf("relations after restart = %+v, want %+v", post.Relations, preStats.Relations)
	}
	// Cascade effects were replayed as recorded events, not re-derived:
	// exactly one audit row (from ann's `paid` firing), emp has two.
	relRows := map[string]wire.RelStat{}
	for _, r := range post.Relations {
		relRows[r.Name] = r
	}
	if relRows["audit"].Rows != 1 || relRows["emp"].Rows != 2 {
		t.Fatalf("recovered rows: emp=%d audit=%d, want 2/1",
			relRows["emp"].Rows, relRows["audit"].Rows)
	}

	// Schema survives: re-declaring collides, the salary index answers.
	if err := c.DeclareRelation(empRel); err == nil {
		t.Fatal("re-declare accepted after restart: relation lost")
	}

	// The surviving direct predicate still matches under its old ID; the
	// removed one stays gone.
	ids, err := c.Match("emp", probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != shoeID {
		t.Fatalf("match after restart = %v, want [%d]", ids, shoeID)
	}
	if err := c.RemovePredicate(shoeID); err != nil {
		t.Fatalf("rmpred of recovered predicate: %v", err)
	}

	// Tuple identity: the updated bob row is addressable by its original
	// ID; the deleted cat row is not; a fresh insert continues the ID
	// sequence instead of reusing one.
	if _, err := c.Update("emp", empIDs[1],
		tuple.New(value.String_("bob"), value.Int(57), value.Int(26000), value.String_("shoe"))); err != nil {
		t.Fatalf("update of recovered tuple %d: %v", empIDs[1], err)
	}
	if _, err := c.Delete("emp", empIDs[2]); err == nil {
		t.Fatal("deleted tuple resurrected by recovery")
	}
	newID, _, err := c.Insert("emp", probe)
	if err != nil {
		t.Fatal(err)
	}
	if int64(newID) != relRows["emp"].NextID {
		t.Fatalf("post-restart insert got id %d, want NextID %d", newID, relRows["emp"].NextID)
	}

	// Recovered rules still fire: a high salary insert cascades into
	// audit exactly once more.
	if _, _, err := c.Insert("emp",
		tuple.New(value.String_("dan"), value.Int(33), value.Int(99000), value.String_("toy"))); err != nil {
		t.Fatal(err)
	}
	post2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range post2.Relations {
		if r.Name == "audit" && r.Rows != 2 {
			t.Fatalf("recovered rule did not cascade: audit rows = %d, want 2", r.Rows)
		}
	}
}

// TestDurableRuleRaise: a mutation aborted by a `raise` rule leaves its
// triggering change applied (the engine's documented abort semantics);
// the WAL must record that applied change so recovery reproduces it.
func TestDurableRuleRaise(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{DataDir: dir}

	{
		_, addr, stop := startDurable(t, cfg)
		c := dial(t, addr)
		if err := c.DeclareRelation(empRel); err != nil {
			t.Fatal(err)
		}
		if _, err := c.DefineRule(
			"rule nokids on insert to emp when age < 18 do raise 'minimum age is 18'"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Insert("emp",
			tuple.New(value.String_("kid"), value.Int(12), value.Int(0), value.String_("toy"))); err == nil {
			t.Fatal("raise rule did not abort the insert")
		}
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Relations) != 1 || st.Relations[0].Rows != 1 {
			t.Fatalf("aborted insert not applied: %+v", st.Relations)
		}
		c.Close()
		stop()
	}

	_, addr, stop := startDurable(t, cfg)
	defer stop()
	c := dial(t, addr)
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Relations) != 1 || st.Relations[0].Rows != 1 {
		t.Fatalf("raise-aborted insert lost across restart: %+v", st.Relations)
	}
}

// TestBackupOp: the backup op writes a checkpoint covering everything
// acked so far, prunes covered segments, and a later restart recovers
// from that snapshot replaying only post-backup records.
func TestBackupOp(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{DataDir: dir, WALSegmentBytes: 512}

	var (
		info   *wire.BackupInfo
		atSnap uint64
	)
	{
		_, addr, stop := startDurable(t, cfg)
		c := dial(t, addr)
		if err := c.DeclareRelation(empRel); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, _, err := c.Insert("emp",
				tuple.New(value.String_("w"), value.Int(30), value.Int(1000), value.String_("toy"))); err != nil {
				t.Fatal(err)
			}
		}
		var err error
		info, err = c.Backup()
		if err != nil {
			t.Fatal(err)
		}
		if info == nil || info.Seq == 0 || info.Bytes == 0 {
			t.Fatalf("backup info = %+v", info)
		}
		if _, err := os.Stat(info.Path); err != nil {
			t.Fatalf("backup file: %v", err)
		}
		if got := filepath.Dir(info.Path); got != dir {
			t.Fatalf("backup landed in %s, want %s", got, dir)
		}
		atSnap = info.Seq
		// Ten more inserts after the snapshot: recovery must replay
		// exactly these.
		for i := 0; i < 10; i++ {
			if _, _, err := c.Insert("emp",
				tuple.New(value.String_("x"), value.Int(31), value.Int(2000), value.String_("deli"))); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
		stop()
	}

	s, addr, stop := startDurable(t, cfg)
	defer stop()
	c := dial(t, addr)
	defer c.Close()

	rec := s.Recovery()
	if rec.SnapshotSeq < atSnap {
		t.Fatalf("recovered from snapshot seq %d, backup was at %d", rec.SnapshotSeq, atSnap)
	}
	if rec.RecordsReplayed > 11 { // 10 post-backup inserts + final shutdown checkpoint margin
		t.Fatalf("replayed %d records, want ≤ 11 (snapshot should cover the rest)", rec.RecordsReplayed)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Relations) != 1 || st.Relations[0].Rows != 30 {
		t.Fatalf("rows after backup+restart = %+v, want 30", st.Relations)
	}
	if st.WAL.SnapshotSeq == 0 {
		t.Fatalf("WAL stats lost snapshot seq: %+v", st.WAL)
	}
}

// TestBackupWithoutDataDir: the op fails cleanly on a memory-only
// daemon instead of panicking or acking a backup that does not exist.
func TestBackupWithoutDataDir(t *testing.T) {
	_, addr, stop := startServer(t, server.Config{})
	defer stop()
	c := dial(t, addr)
	defer c.Close()
	if _, err := c.Backup(); err == nil {
		t.Fatal("backup acked on a daemon with no data directory")
	}
}

// TestDurableIntervalShutdown: under sync=interval the durable seq may
// lag acks, but a clean shutdown performs a final sync — nothing acked
// before Shutdown may be lost.
func TestDurableIntervalShutdown(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{DataDir: dir, Sync: wal.SyncInterval, SyncEvery: time.Hour}

	{
		_, addr, stop := startDurable(t, cfg)
		c := dial(t, addr)
		if err := c.DeclareRelation(empRel); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if _, _, err := c.Insert("emp",
				tuple.New(value.String_("w"), value.Int(30), value.Int(1000), value.String_("toy"))); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
		stop()
	}

	_, addr, stop := startDurable(t, cfg)
	defer stop()
	c := dial(t, addr)
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Relations) != 1 || st.Relations[0].Rows != 50 {
		t.Fatalf("clean interval shutdown lost rows: %+v", st.Relations)
	}
}

// TestPeriodicSnapshot: with SnapshotEvery set, checkpoints appear
// without any explicit backup op.
func TestPeriodicSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{DataDir: dir, SnapshotEvery: 50 * time.Millisecond}

	_, addr, stop := startDurable(t, cfg)
	defer stop()
	c := dial(t, addr)
	defer c.Close()
	if err := c.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Insert("emp",
		tuple.New(value.String_("w"), value.Int(30), value.Int(1000), value.String_("toy"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		st, err := c.Stats()
		return err == nil && st.WAL != nil && st.WAL.SnapshotSeq > 0
	})
}
