// Durability wiring: the server side of internal/wal. Open recovers a
// data directory before the daemon listens; every state-changing
// handler appends a log record before acking; a checkpointer
// serializes the whole engine state into snapshots, on a timer and on
// demand (the backup op).
//
// The logging strategy is split by operation class. DDL (declare,
// index, rule, droprule, addpred, rmpred) is command-logged and
// replayed back through the same code path that executed it. Mutations
// are event-logged: the record carries every storage change the
// request applied — the triggering insert/update/delete plus all
// rule-cascade changes — captured by a storage observer registered
// *before* the engine's (the notify chain aborts at the first observer
// error, e.g. a rule raise, and the triggering change stays applied;
// capture must therefore run first to see every applied event). Replay
// installs those events directly through storage.Apply, bypassing the
// engine, so rules do not re-fire and recovery reproduces exactly the
// state that was acked — including the effects of rules that were
// since dropped.
package server

import (
	"errors"
	"fmt"
	"time"

	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wal"
	"predmatch/internal/wire"
)

// Open builds a daemon like New and, when cfg.DataDir is set, recovers
// the directory's durable state (snapshot + log replay) before
// returning; the server is ready to listen with its pre-crash catalog,
// relations, rules and direct predicates in place.
func Open(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.FollowerOf != "" && cfg.DataDir == "" {
		return nil, errors.New("server: FollowerOf requires DataDir (a follower persists the replicated log)")
	}
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DataDir == "" {
		s.startMeta()
		return s, nil
	}
	opt := wal.Options{
		Dir:          cfg.DataDir,
		SegmentBytes: cfg.WALSegmentBytes,
		Sync:         cfg.Sync,
		SyncEvery:    cfg.SyncEvery,
		Registry:     cfg.Registry,
		Logger:       cfg.Logger,
	}
	l, info, err := wal.Recover(opt, wal.Handler{
		LoadSnapshot: s.loadSnapshot,
		Apply:        s.applyRecord,
	})
	if err != nil {
		return nil, err
	}
	s.wal = l
	s.recovery = info
	// A follower's resume cursor starts at whatever its local log holds.
	s.applied.Store(info.LastSeq)
	cfg.Logger.Info("recovered",
		"dir", cfg.DataDir, "snapshot_seq", info.SnapshotSeq,
		"records_replayed", info.RecordsReplayed,
		"truncated_bytes", info.TruncatedBytes, "last_seq", info.LastSeq)
	if cfg.SnapshotEvery > 0 {
		s.snapLoopDone = make(chan struct{})
		go s.snapshotLoop(cfg.SnapshotEvery)
	}
	// Start the adaptive engine only after replay: recovery's predicate
	// registrations should not trip migrations mid-rebuild.
	s.startMeta()
	return s, nil
}

// Recovery returns what recovery replayed (zero when the server has no
// data directory).
func (s *Server) Recovery() wal.RecoveryInfo { return s.recovery }

// startMeta starts the adaptive engine's background decision loop when
// the server has one. Called once by Open, after any recovery replay.
func (s *Server) startMeta() {
	if s.meta != nil {
		s.meta.Start()
		s.metaStarted = true
	}
}

// onEventWAL is the capture observer: it records every applied storage
// event into the pending set that handleMutation logs as one atomic
// KindMutate record. Registered before the engine's observer so a rule
// raise (which aborts the notify chain but keeps the change applied)
// cannot hide an applied event from the log. Runs inside the mutation.
//
//predmatchvet:holds mu
func (s *Server) onEventWAL(ev storage.Event) error {
	we := wal.Event{Rel: ev.Rel, Op: ev.Op.String(), ID: int64(ev.ID)}
	if ev.New != nil {
		we.Tuple = wire.FromTuple(ev.New)
	}
	s.pending = append(s.pending, we)
	return nil
}

// logPending appends the captured events of the current mutation as one
// record. Returns seq 0 when there is nothing to log (no WAL, or the
// request failed before applying anything). A traced request stamps its
// trace context on the record (it rides the log into the replication
// stream) and records the append as a wal.append span.
//
//predmatchvet:holds mu
func (s *Server) logPending(sp *trace.Span) (uint64, error) {
	if s.wal == nil || len(s.pending) == 0 {
		return 0, nil
	}
	events := make([]wal.Event, len(s.pending))
	copy(events, s.pending)
	rec := &wal.Record{Kind: wal.KindMutate, Events: events, Trace: traceCtx(sp)}
	asp := sp.Child("wal.append")
	seq, err := s.wal.Append(rec)
	asp.SetInt("seq", int64(seq))
	asp.SetInt("events", int64(len(events)))
	asp.End()
	return seq, err
}

// logCommand appends one DDL command record. Returns seq 0 when the
// server has no WAL.
//
//predmatchvet:holds mu
func (s *Server) logCommand(rec *wal.Record, sp *trace.Span) (uint64, error) {
	if s.wal == nil {
		return 0, nil
	}
	rec.Trace = traceCtx(sp)
	asp := sp.Child("wal.append")
	seq, err := s.wal.Append(rec)
	asp.SetInt("seq", int64(seq))
	asp.End()
	return seq, err
}

// commit waits for seq to be durable under the configured sync policy.
// The caller must have released s.mu: this is the group-commit window —
// other mutators append (and share the fsync) while we wait. The
// wal.commit span therefore ends off the server mutex, which is why a
// trace's span list carries its own lock.
func (s *Server) commit(seq uint64, err error, sp *trace.Span) error {
	if err != nil {
		return err
	}
	if s.wal == nil || seq == 0 {
		return nil
	}
	csp := sp.Child("wal.commit")
	csp.SetInt("seq", int64(seq))
	cerr := s.wal.Commit(seq)
	csp.End()
	return cerr
}

// parseEventOp is the inverse of storage.Op.String for replay.
func parseEventOp(op string) (storage.Op, error) {
	switch op {
	case "insert":
		return storage.OpInsert, nil
	case "update":
		return storage.OpUpdate, nil
	case "delete":
		return storage.OpDelete, nil
	default:
		return 0, fmt.Errorf("server: replay: unknown event op %q", op)
	}
}

// declareRelation builds and installs a schema from wire attributes
// (shared by the declare handler and replay).
//
//predmatchvet:holds mu
func (s *Server) declareRelation(name string, wattrs []wire.Attr) error {
	attrs := make([]schema.Attribute, 0, len(wattrs))
	for _, a := range wattrs {
		kind, err := value.KindFromName(a.Type)
		if err != nil {
			return err
		}
		attrs = append(attrs, schema.Attribute{Name: a.Name, Type: kind})
	}
	rel, err := schema.NewRelation(name, attrs...)
	if err != nil {
		return err
	}
	_, err = s.db.CreateRelation(rel)
	return err
}

// addDirectPred installs a client predicate under the given ID and
// tracks its wire form for snapshots (shared by the addpred handler,
// replay, and snapshot load).
//
//predmatchvet:holds mu
func (s *Server) addDirectPred(id pred.ID, wp *wire.Predicate) error {
	p, err := wire.ToPredicate(s.db.Catalog(), id, wp)
	if err != nil {
		return err
	}
	if err := s.sm.Add(p); err != nil {
		return err
	}
	cp := *wp
	s.directPreds[int64(id)] = &cp
	if next := int64(id) + 1; next > s.nextPredID.Load() {
		s.nextPredID.Store(next)
	}
	return nil
}

// applyRecord replays one log record during recovery (no clients are
// connected; the caller owns the server exclusively, hence the holds
// directive).
//
//predmatchvet:holds mu
func (s *Server) applyRecord(rec *wal.Record) error {
	switch rec.Kind {
	case wal.KindDeclare:
		return s.declareRelation(rec.Relation, rec.Attrs)
	case wal.KindIndex:
		tab, ok := s.db.Table(rec.Relation)
		if !ok {
			return fmt.Errorf("server: replay: unknown relation %q", rec.Relation)
		}
		return tab.CreateIndex(rec.Attr)
	case wal.KindRule:
		_, err := s.eng.DefineRule(rec.Source)
		return err
	case wal.KindDropRule:
		return s.eng.DropRule(rec.Name)
	case wal.KindAddPred:
		if rec.Pred == nil {
			return fmt.Errorf("server: replay: addpred record %d has no pred", rec.Seq)
		}
		return s.addDirectPred(pred.ID(rec.PredID), rec.Pred)
	case wal.KindRemovePred:
		if err := s.sm.Remove(pred.ID(rec.PredID)); err != nil {
			return err
		}
		delete(s.directPreds, rec.PredID)
		return nil
	case wal.KindMutate:
		for _, we := range rec.Events {
			op, err := parseEventOp(we.Op)
			if err != nil {
				return err
			}
			ev := storage.Event{Rel: we.Rel, Op: op, ID: tuple.ID(we.ID)}
			if op != storage.OpDelete {
				rel, ok := s.db.Catalog().Get(we.Rel)
				if !ok {
					return fmt.Errorf("server: replay: unknown relation %q", we.Rel)
				}
				t, err := wire.ToTuple(rel, we.Tuple)
				if err != nil {
					return fmt.Errorf("server: replay record %d: %w", rec.Seq, err)
				}
				ev.New = t
			}
			if err := s.db.Apply(ev); err != nil {
				return fmt.Errorf("server: replay record %d: %w", rec.Seq, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("server: replay: unknown record kind %q", rec.Kind)
	}
}

// loadSnapshot installs a checkpoint: schemas, indexes, relation
// contents (with their original tuple IDs), rules, and direct
// predicates. Runs under s.mu (replication bootstrap) or during
// single-threaded recovery before the server accepts connections.
//
//predmatchvet:holds mu
func (s *Server) loadSnapshot(snap *wal.Snapshot) error {
	for _, sr := range snap.Relations {
		if err := s.declareRelation(sr.Name, sr.Attrs); err != nil {
			return err
		}
		tab, _ := s.db.Table(sr.Name)
		for _, attr := range sr.Indexes {
			if err := tab.CreateIndex(attr); err != nil {
				return err
			}
		}
		rel := tab.Relation()
		for _, row := range sr.Rows {
			t, err := wire.ToTuple(rel, row.Tuple)
			if err != nil {
				return fmt.Errorf("server: snapshot %s row %d: %w", sr.Name, row.ID, err)
			}
			if err := s.db.Apply(storage.Event{
				Rel: sr.Name, Op: storage.OpInsert, ID: tuple.ID(row.ID), New: t,
			}); err != nil {
				return err
			}
		}
		tab.SetNextID(tuple.ID(sr.NextID))
	}
	for _, src := range snap.Rules {
		if _, err := s.eng.DefineRule(src); err != nil {
			return fmt.Errorf("server: snapshot rule: %w", err)
		}
	}
	for i := range snap.Preds {
		sp := &snap.Preds[i]
		if err := s.addDirectPred(pred.ID(sp.ID), &sp.Pred); err != nil {
			return fmt.Errorf("server: snapshot pred %d: %w", sp.ID, err)
		}
	}
	if snap.NextPredID > s.nextPredID.Load() {
		s.nextPredID.Store(snap.NextPredID)
	}
	return nil
}

// checkpoint captures the full state under s.mu (a bounded pause:
// tuples are immutable once stored, so the capture is a shallow
// row-list copy, and the serialization and disk I/O run after the lock
// is released), writes it as a snapshot, and prunes covered segments.
// snapMu serializes concurrent checkpoints (backup op vs. the timer).
func (s *Server) checkpoint() (*wire.BackupInfo, error) {
	if s.wal == nil {
		return nil, errors.New("server has no data directory")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()

	s.mu.Lock()
	snap := &wal.Snapshot{Seq: s.wal.LastSeq()}
	for _, name := range s.db.Relations() {
		tab, _ := s.db.Table(name)
		rel := tab.Relation()
		sr := wal.SnapRelation{
			Name:    name,
			Indexes: tab.IndexedAttrs(),
			NextID:  int64(tab.NextID()),
		}
		for _, a := range rel.Attrs() {
			sr.Attrs = append(sr.Attrs, wire.Attr{Name: a.Name, Type: a.Type.String()})
		}
		rows := tab.SnapshotRows()
		sr.Rows = make([]wal.SnapRow, len(rows))
		for i, r := range rows {
			// FromTuple under the lock: the per-row cost is a small slice of
			// interface literals; the expensive JSON encode happens off-lock.
			sr.Rows[i] = wal.SnapRow{ID: int64(r.ID), Tuple: wire.FromTuple(r.Tuple)}
		}
		snap.Relations = append(snap.Relations, sr)
	}
	snap.Rules = s.eng.Sources()
	for id, wp := range s.directPreds {
		snap.Preds = append(snap.Preds, wal.SnapPred{ID: id, Pred: *wp})
	}
	snap.NextPredID = s.nextPredID.Load()
	s.mu.Unlock()

	path, bytes, err := s.wal.WriteSnapshot(snap)
	if err != nil {
		return nil, err
	}
	if err := s.wal.Prune(snap.Seq); err != nil {
		return nil, err
	}
	return &wire.BackupInfo{Path: path, Seq: snap.Seq, Bytes: bytes}, nil
}

// snapshotLoop checkpoints on a timer until shutdown.
func (s *Server) snapshotLoop(every time.Duration) {
	defer close(s.snapLoopDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := s.checkpoint(); err != nil {
				s.cfg.Logger.Warn("periodic snapshot failed", "err", err)
			}
		case <-s.done:
			return
		}
	}
}

// handleBackup forces a checkpoint and reports where it landed.
func (s *Server) handleBackup(req *wire.Request) wire.Message {
	info, err := s.checkpoint()
	if err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.Backup = info
	return m
}

// closeWAL takes a final checkpoint and closes the log; called once
// from Shutdown after connections drain.
func (s *Server) closeWAL() {
	if s.wal == nil {
		return
	}
	s.walOnce.Do(func() {
		if s.snapLoopDone != nil {
			<-s.snapLoopDone
		}
		if _, err := s.checkpoint(); err != nil {
			s.cfg.Logger.Warn("shutdown snapshot failed", "err", err)
		}
		if err := s.wal.Close(); err != nil {
			s.cfg.Logger.Warn("wal close failed", "err", err)
		}
	})
}

// walStat summarizes the log for the stats response (nil without a
// data directory).
func (s *Server) walStat() *wire.WALStat {
	if s.wal == nil {
		return nil
	}
	return &wire.WALStat{
		LastSeq:     s.wal.LastSeq(),
		DurableSeq:  s.wal.DurableSeq(),
		SnapshotSeq: s.wal.SnapshotSeq(),
		Segments:    s.wal.Segments(),
		Sync:        string(s.cfg.Sync),
	}
}
