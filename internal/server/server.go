// Package server implements predmatchd, the network rule-service
// daemon: a TCP server that owns a storage.DB, a forward-chaining rule
// engine and a shard.ShardedMatcher, and speaks the newline-delimited
// JSON protocol of internal/wire (see docs/PROTOCOL.md).
//
// The paper's predicate index exists to serve a database rule system —
// external clients register predicates and rules and are told when
// tuples match. This package is that serving layer:
//
//   - Mutations (insert/update/delete) and DDL (declare, rule, addpred)
//     are serialized through one server mutex, because the engine's
//     cascade execution is single-threaded by design.
//   - match/matchbatch requests bypass the mutex entirely and stab the
//     sharded matcher's lock-free snapshots, so read traffic scales
//     across connections regardless of write load.
//   - Subscriptions stream rule firings (via the engine's OnFire hook)
//     and predicate matches to clients. Every connection has a bounded
//     notification queue with a drop-newest overflow policy: a slow
//     consumer loses notifications (counted, and visible to the client
//     as sequence-number gaps) but can never block the match path.
//
// Robustness contract: per-frame write deadlines, an idle read timeout
// for unsubscribed connections, a connection limit that rejects rather
// than queues, and context-driven graceful shutdown that drains
// in-flight requests and queued notifications.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"predmatch/internal/core"
	"predmatch/internal/engine"
	"predmatch/internal/ibs"
	"predmatch/internal/meta"
	"predmatch/internal/obs"
	"predmatch/internal/pred"
	"predmatch/internal/shard"
	"predmatch/internal/storage"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
	"predmatch/internal/wal"
	"predmatch/internal/wire"
)

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// DirectPredBase is the first predicate ID handed to addpred requests.
// The engine allocates rule-predicate IDs counting up from 1; direct
// client predicates live in their own high range so the two allocators
// never collide.
const DirectPredBase pred.ID = 1 << 40

// Config tunes a Server. The zero value picks the documented defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe (default :7341).
	Addr string
	// MaxConns bounds concurrent client connections; further dials are
	// rejected with an error frame (default 128).
	MaxConns int
	// QueueLen is the per-connection notification queue capacity; when
	// full, new notifications for that connection are dropped and
	// counted (default 1024).
	QueueLen int
	// WriteTimeout bounds writing one frame to a client; a missed
	// deadline tears the connection down (default 10s).
	WriteTimeout time.Duration
	// IdleTimeout closes connections with no active subscription that
	// send no request for this long (default 0 = never).
	IdleTimeout time.Duration
	// Logf receives connection-level diagnostics (default: discard).
	Logf func(format string, args ...any)
	// Registry receives the daemon's metrics and turns on hot-path
	// instrumentation down through the matcher and the IBS-trees
	// (default nil = fully uninstrumented; see internal/obs).
	Registry *obs.Registry
	// Logger receives structured lifecycle events: connection
	// accept/reject/close, slow requests, shutdown phases (default:
	// discard).
	Logger *slog.Logger
	// SlowRequest logs any request slower than this threshold at Warn
	// level via Logger (default 0 = disabled).
	SlowRequest time.Duration
	// DataDir enables durability: state-changing requests are written to
	// a write-ahead log in this directory before they are acked, and Open
	// recovers the directory's snapshot + log on start (default "" =
	// fully in-memory, the pre-durability behavior).
	DataDir string
	// Sync is the WAL fsync policy: always, interval or off (default
	// always). Ignored without DataDir.
	Sync wal.SyncPolicy
	// SyncEvery is the fsync period under the interval policy.
	SyncEvery time.Duration
	// WALSegmentBytes is the log segment rotation size (default 64 MiB).
	WALSegmentBytes int64
	// SnapshotEvery checkpoints the full state on this period (default
	// 0 = only on shutdown and on explicit backup requests).
	SnapshotEvery time.Duration
	// IndexOptions configures each relation shard's core.Index — e.g.
	// the core.WithIndexFactory set internal/strategy.CoreOptions
	// resolves for `predmatchd -index hint` (default nil = IBS-trees).
	IndexOptions []core.Option
	// MatcherName overrides the sharded matcher's reported name when
	// IndexOptions swap the attribute structure (default "" = keep
	// "sharded").
	MatcherName string
	// Adaptive, when non-nil, runs the meta engine: per-relation index
	// structures are chosen by a workload cost model and migrated
	// online (`predmatchd -index meta`). The server fills the config's
	// Profiles and Registry from its own; IndexOptions still apply as
	// the base every candidate's options append to. The engine's
	// background loop starts with the server and stops on Shutdown.
	Adaptive *meta.Config
	// FollowerOf starts the server as a replication follower of the
	// leader at this address: mutations and DDL are rejected with a
	// redirect, and state arrives by applying the leader's WAL stream
	// (default "" = leader). Requires DataDir. The server only gates
	// requests by role; the stream itself is driven by an attached
	// internal/repl.Follower (see AttachFollower).
	FollowerOf string
	// MinSeqWait bounds how long a follower read carrying min_seq waits
	// for replication to catch up before failing with a leader redirect
	// (default 2s).
	MinSeqWait time.Duration
	// Tracer enables request-scoped tracing: requests carrying a trace
	// context (Request.Trace) and head-sampled requests are traced
	// through dispatch, matching, the firing cascade and the WAL, and
	// recorded in the tracer's flight recorder (default nil = tracing
	// off; a nil tracer's methods are no-ops, so the request path pays
	// only nil checks).
	Tracer *trace.Tracer
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = ":7341"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 128
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Logger == nil {
		// A handler whose level no record reaches: Enabled() fails before
		// any attribute is assembled, so the default logger costs nothing.
		c.Logger = slog.New(slog.NewTextHandler(io.Discard,
			&slog.HandlerOptions{Level: slog.Level(127)}))
	}
	if c.Sync == "" {
		c.Sync = wal.SyncAlways
	}
	if c.MinSeqWait <= 0 {
		c.MinSeqWait = 2 * time.Second
	}
}

// Server is one rule-service daemon instance. Construct with New, drive
// with ListenAndServe or Serve, stop with Shutdown or Close.
type Server struct {
	cfg   Config
	db    *storage.DB
	funcs *pred.Registry
	sm    *shard.ShardedMatcher
	eng   *engine.Engine

	// mu serializes mutations and DDL through the engine. The match
	// path never takes it.
	mu sync.Mutex
	// firings counts rule activations of the mutation currently being
	// executed under mu.
	firings int // guarded-by: mu
	// pending accumulates the storage events applied by the mutation
	// currently executing, captured by onEventWAL for its log record.
	pending []wal.Event // guarded-by: mu
	// directPreds tracks client-registered predicates in wire form, for
	// checkpoint snapshots.
	directPreds map[int64]*wire.Predicate // guarded-by: mu
	// nextPredID allocates direct (addpred) predicate IDs. Writers hold
	// mu; reads are lock-free.
	nextPredID atomic.Int64

	// wal is the durability log; nil without Config.DataDir. The handle
	// is set once before Serve and never changes; the Log is internally
	// synchronized.
	wal      *wal.Log
	recovery wal.RecoveryInfo
	// snapMu serializes checkpoints (the timer vs. backup requests).
	snapMu       sync.Mutex
	walOnce      sync.Once
	snapLoopDone chan struct{}

	// isFollower is the replication role: true while the server rejects
	// mutations and applies the leader's stream; Promote flips it off.
	isFollower atomic.Bool
	// applied is the follower's read frontier: the last replicated
	// sequence applied and locally durable. Leaders use the log end
	// instead (see appliedSeq).
	applied atomic.Uint64
	// appliedMu guards the appliedWait broadcast channel, which is
	// closed and replaced each time applied advances (min_seq waiters).
	appliedMu   sync.Mutex
	appliedWait chan struct{} // guarded-by: appliedMu
	// replMu guards the attached replication controller handles.
	replMu     sync.Mutex
	follower   FollowerInfo // guarded-by: replMu
	stopFollow func()       // guarded-by: replMu

	lnMu sync.Mutex
	ln   net.Listener // guarded-by: lnMu

	// done is closed exactly once by Close (via closeOnce) and is
	// otherwise only received from; wg tracks per-connection and
	// streamer goroutines so Close can wait them out.
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	connMu sync.Mutex
	conns  map[*conn]struct{} // guarded-by: connMu

	subMu sync.Mutex
	subs  map[*conn]*subscription // guarded-by: subMu

	delivered atomic.Uint64
	dropped   atomic.Uint64

	// met holds the request-path metric handles; nil when cfg.Registry
	// is nil, which compiles the instrumentation down to nil checks.
	met *serverMetrics

	// prof accumulates the per-relation workload profile (stab latency,
	// selectivity, write rate, queried attributes) that feeds the stats
	// surface and /varz; always on — its cost is a few uncontended
	// atomic adds per operation. See internal/trace.Profiles.
	prof *trace.Profiles

	// meta is the adaptive index engine (nil unless cfg.Adaptive). Its
	// background loop is started by Open after recovery and stopped by
	// Shutdown; metaStarted guards Stop against a loop that never ran.
	meta        *meta.Engine
	metaStarted bool
}

// subscription is one connection's notification filter and counters,
// all guarded by Server.subMu.
type subscription struct {
	rules map[string]bool // nil = every rule
	preds bool            // also stream direct-predicate matches
	seq   uint64          // notifications generated (delivered + dropped)
	drops uint64          // notifications dropped by the overflow policy
}

// New builds a daemon with an empty database, the built-in function
// registry and a sharded matcher. For a durable daemon (Config.DataDir
// set) use Open, which can report recovery errors; New panics on them.
func New(cfg Config) *Server {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("server.New: %v (use Open to handle recovery errors)", err))
	}
	return s
}

// newServer assembles the in-memory daemon; Open layers recovery and
// the WAL on top. cfg must already be filled. The only error is an
// invalid cfg.Adaptive.
func newServer(cfg Config) (*Server, error) {
	s := &Server{
		cfg:         cfg,
		db:          storage.NewDB(),
		funcs:       pred.NewRegistry(),
		done:        make(chan struct{}),
		conns:       make(map[*conn]struct{}),
		subs:        make(map[*conn]*subscription),
		directPreds: make(map[int64]*wire.Predicate),
		appliedWait: make(chan struct{}),
		prof:        trace.NewProfiles(),
	}
	s.nextPredID.Store(int64(DirectPredBase))
	if cfg.FollowerOf != "" {
		s.isFollower.Store(true)
	}
	// Workload profiling: count every applied storage event (trigger and
	// cascade) against its relation. Registered before the engine's
	// observer so a rule raise (which aborts the notify chain) cannot
	// hide an applied event from the profile.
	s.db.Observe(s.onEventProfile)
	if cfg.DataDir != "" {
		// The WAL capture observer must be registered before the engine's:
		// the notify chain aborts at the first observer error (a rule
		// raise), and the log must still see every event applied before
		// the abort.
		s.db.Observe(s.onEventWAL)
	}
	var smOpts []shard.Option
	var engOpts []engine.Option
	// All core options must land in ONE WithIndexOptions call (it
	// replaces rather than appends). cfg.IndexOptions come last so a
	// configured WithIndexFactory wins over the instrumentation's IBS
	// tree options.
	var idxOpts []core.Option
	if cfg.Registry != nil {
		// One ibs.Counters is shared by every tree of every copy-on-write
		// snapshot: the index factory bakes the Instrument option in, so
		// clones keep feeding the same counters.
		smOpts = append(smOpts, shard.WithMetrics(cfg.Registry))
		idxOpts = append(idxOpts, core.WithTreeOptions(
			ibs.Instrument(ibs.RegisterCounters(cfg.Registry))))
		engOpts = append(engOpts, engine.WithMetrics(cfg.Registry))
	}
	idxOpts = append(idxOpts, cfg.IndexOptions...)
	if len(idxOpts) > 0 {
		smOpts = append(smOpts, shard.WithIndexOptions(idxOpts...))
	}
	if cfg.MatcherName != "" {
		smOpts = append(smOpts, shard.WithName(cfg.MatcherName))
	}
	if cfg.Adaptive != nil {
		// The engine reads the server's own profile accumulator and
		// publishes into the server's registry; the caller only supplies
		// candidates, fallback and pacing.
		ac := *cfg.Adaptive
		ac.Profiles = s.prof
		ac.Registry = cfg.Registry
		me, err := meta.New(ac)
		if err != nil {
			return nil, fmt.Errorf("server: adaptive index config: %w", err)
		}
		s.meta = me
		// New shards of a relation with a standing decision are born on
		// the decided structure rather than re-migrated.
		smOpts = append(smOpts, shard.WithIndexChooser(me.Options))
		if cfg.MatcherName == "" {
			smOpts = append(smOpts, shard.WithName("meta"))
		}
	}
	s.sm = shard.New(s.db.Catalog(), s.funcs, smOpts...)
	// Install the profile accumulator before any predicate registration
	// (recovery replay included): shards resolve their handle at creation.
	s.sm.SetProfiles(s.prof)
	if s.meta != nil {
		s.meta.Bind(s.sm)
	}
	s.eng = engine.New(s.db, s.funcs, s.sm, engOpts...)
	s.met = newServerMetrics(cfg.Registry, s)
	s.eng.OnFire(s.onFire)
	// Predicate-match streaming: a second observer (after the engine's)
	// re-stabs the index for events whenever some subscriber asked for
	// direct-predicate matches.
	s.db.Observe(s.onEventPreds)
	return s, nil
}

// Meta exposes the adaptive index engine (nil unless Config.Adaptive);
// tests and the daemon's stats surface read decisions through it.
func (s *Server) Meta() *meta.Engine { return s.meta }

// ListenAndServe listens on cfg.Addr and serves until Shutdown/Close.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address once Serve is running (for tests
// listening on ":0"), or nil before that.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until Shutdown or Close.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	defer ln.Close()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return ErrServerClosed
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.startConn(nc)
	}
}

// startConn admits or rejects one accepted connection.
func (s *Server) startConn(nc net.Conn) {
	c := &conn{
		s:          s,
		nc:         nc,
		resp:       make(chan wire.Message, 16),
		notes:      make(chan wire.Message, s.cfg.QueueLen),
		readerDone: make(chan struct{}),
		writerGone: make(chan struct{}),
	}
	s.connMu.Lock()
	select {
	case <-s.done:
		s.connMu.Unlock()
		nc.Close()
		return
	default:
	}
	if len(s.conns) >= s.cfg.MaxConns {
		s.connMu.Unlock()
		s.cfg.Logf("server: rejecting %s: connection limit %d reached", nc.RemoteAddr(), s.cfg.MaxConns)
		s.cfg.Logger.Warn("connection rejected",
			"remote", nc.RemoteAddr().String(), "limit", s.cfg.MaxConns)
		if s.met != nil {
			s.met.rejected.Inc()
		}
		nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		json.NewEncoder(nc).Encode(wire.Message{
			Type: wire.TypeResponse, Error: "server at connection limit",
		})
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	n := len(s.conns)
	// Increment while still holding connMu: Shutdown closes done and then
	// takes connMu before starting wg.Wait, so a connection admitted here
	// is always counted before that Wait can observe a zero counter.
	s.wg.Add(2)
	s.connMu.Unlock()
	s.cfg.Logger.Debug("connection accepted",
		"remote", nc.RemoteAddr().String(), "conns", n)

	go c.readLoop()
	go c.writeLoop()
}

// removeConn drops a finished connection from the registries.
func (s *Server) removeConn(c *conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.subMu.Lock()
	delete(s.subs, c)
	s.subMu.Unlock()
	s.cfg.Logger.Debug("connection closed",
		"remote", c.nc.RemoteAddr().String(), "delivered", c.delivered.Load())
}

// Stopping reports whether Shutdown or Close has begun; the admin
// endpoint's health check flips to unhealthy on it.
func (s *Server) Stopping() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Shutdown stops accepting, unblocks idle readers, and waits for every
// connection to drain its in-flight request and queued responses. If
// ctx expires first, remaining connections are closed forcibly and the
// context error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		close(s.done)
		if s.metaStarted {
			s.meta.Stop()
		}
	})
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
	s.cfg.Logger.Info("shutdown: listener closed, draining connections")
	// Wake readers blocked waiting for the next request; readers in the
	// middle of a request finish it first.
	s.connMu.Lock()
	waking := len(s.conns)
	for c := range s.conns {
		c.nc.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()
	if waking > 0 {
		s.cfg.Logger.Info("shutdown: waking idle readers", "conns", waking)
	}

	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	select {
	case <-drained:
		s.cfg.Logger.Info("shutdown: drained")
		s.closeWAL()
		return nil
	case <-ctx.Done():
		s.connMu.Lock()
		forced := len(s.conns)
		for c := range s.conns {
			c.nc.Close()
		}
		s.connMu.Unlock()
		s.cfg.Logger.Warn("shutdown: drain deadline expired, closing connections",
			"conns", forced)
		<-drained
		s.closeWAL()
		return ctx.Err()
	}
}

// Close shuts the server down without a drain grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// onFire is the engine hook: fan one rule activation out to every
// subscription whose filter accepts it. It runs inside the mutation
// (under s.mu) and must never block, so queue overflow drops.
//
//predmatchvet:holds mu
func (s *Server) onFire(ev engine.FiringEvent) {
	s.firings++
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for c, sub := range s.subs {
		if sub.rules != nil && !sub.rules[ev.Rule] {
			continue
		}
		sub.seq++
		s.offer(c, sub, wire.Message{
			Type:     wire.TypeNotify,
			Seq:      sub.seq,
			Rule:     ev.Rule,
			Relation: ev.Rel,
			EventOp:  ev.Op.String(),
			EventID:  int64(ev.TupleID),
			Tuple:    wire.FromTuple(ev.Tuple),
			Depth:    ev.Depth,
			Dropped:  sub.drops,
		})
	}
}

// onEventPreds streams direct-predicate matches: when any subscription
// asked for them, re-match the event's tuple and report the matching
// client-registered predicate IDs.
func (s *Server) onEventPreds(ev storage.Event) error {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	wanted := false
	for _, sub := range s.subs {
		if sub.preds {
			wanted = true
			break
		}
	}
	if !wanted {
		return nil
	}
	t := ev.New
	if ev.Op == storage.OpDelete {
		t = ev.Old
	}
	if t == nil {
		return nil
	}
	ids, err := s.sm.Match(ev.Rel, t, nil)
	if err != nil {
		return nil // matching problems surface on the engine path
	}
	var direct []int64
	for _, id := range ids {
		if id >= DirectPredBase {
			direct = append(direct, int64(id))
		}
	}
	if len(direct) == 0 {
		return nil
	}
	for c, sub := range s.subs {
		if !sub.preds {
			continue
		}
		sub.seq++
		s.offer(c, sub, wire.Message{
			Type:     wire.TypeNotify,
			Seq:      sub.seq,
			Relation: ev.Rel,
			EventOp:  ev.Op.String(),
			EventID:  int64(ev.ID),
			Tuple:    wire.FromTuple(t),
			Matches:  direct,
			Dropped:  sub.drops,
		})
	}
	return nil
}

// offer enqueues a notification without ever blocking: the overflow
// policy is drop-newest, counted per subscription and globally.
// Callers hold subMu.
func (s *Server) offer(c *conn, sub *subscription, m wire.Message) {
	select {
	case c.notes <- m:
	default:
		sub.drops++
		s.dropped.Add(1)
	}
}

// conn is one client connection: a reader goroutine that decodes and
// executes requests, and a writer goroutine that owns the socket's
// write side, multiplexing responses (never dropped) with notifications
// (bounded queue).
type conn struct {
	s     *Server
	nc    net.Conn
	resp  chan wire.Message
	notes chan wire.Message
	// readerDone is closed when the reader stops issuing responses; the
	// writer then drains and closes the socket.
	readerDone chan struct{}
	// writerGone is closed when the writer exits (write error or
	// drain complete), unblocking a reader stuck on a full resp queue.
	writerGone chan struct{}
	// delivered counts notifications written to this connection, for
	// the per-connection stats breakdown.
	delivered atomic.Uint64
	// replica marks a connection serving a replication stream; replSeq
	// is the last sequence shipped to it (stats surface).
	replica atomic.Bool
	replSeq atomic.Uint64
}

// subscribed reports whether the connection has an active subscription
// (which exempts it from the idle timeout).
func (c *conn) subscribed() bool {
	c.s.subMu.Lock()
	defer c.s.subMu.Unlock()
	_, ok := c.s.subs[c]
	return ok
}

func (c *conn) readLoop() {
	defer c.s.wg.Done()
	defer close(c.readerDone)
	sc := bufio.NewScanner(c.nc)
	sc.Buffer(make([]byte, 0, 4096), wire.MaxLineBytes)
	for {
		if idle := c.s.cfg.IdleTimeout; idle > 0 && !c.subscribed() {
			c.nc.SetReadDeadline(time.Now().Add(idle))
		} else {
			c.nc.SetReadDeadline(time.Time{})
		}
		// Check done only after arming the deadline: Shutdown closes done
		// before setting its wake-up deadline, so if the line above
		// overwrote that wake-up, done is already observably closed here
		// and we return instead of blocking in Scan forever.
		select {
		case <-c.s.done:
			return
		default:
		}
		if !sc.Scan() {
			// EOF, peer reset, idle timeout, shutdown wake-up, or an
			// over-long line: the connection is done either way.
			if err := sc.Err(); err != nil {
				c.s.cfg.Logf("server: %s: read: %v", c.nc.RemoteAddr(), err)
			}
			return
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req wire.Request
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		if err := dec.Decode(&req); err != nil {
			// Framing is broken; answer once and hang up.
			c.send(errMsg(0, fmt.Errorf("bad request frame: %w", err)))
			return
		}
		if !c.send(c.s.handle(c, &req)) {
			return
		}
	}
}

// send queues a response for the writer. It blocks when the response
// queue is full (backpressure on the request path) but aborts if the
// writer is gone.
func (c *conn) send(m wire.Message) bool {
	select {
	case c.resp <- m:
		return true
	case <-c.writerGone:
		return false
	}
}

func (c *conn) writeLoop() {
	defer c.s.wg.Done()
	defer c.s.removeConn(c)
	defer c.nc.Close()
	defer close(c.writerGone)
	enc := json.NewEncoder(c.nc)
	write := func(m wire.Message) bool {
		c.nc.SetWriteDeadline(time.Now().Add(c.s.cfg.WriteTimeout))
		if err := enc.Encode(m); err != nil {
			// Write error or missed deadline: a partially written frame
			// cannot be recovered under line framing, so tear down.
			c.s.cfg.Logf("server: %s: write: %v", c.nc.RemoteAddr(), err)
			return false
		}
		if m.Type == wire.TypeNotify {
			c.s.delivered.Add(1)
			c.delivered.Add(1)
		}
		return true
	}
	for {
		// Responses take priority over notifications.
		select {
		case m := <-c.resp:
			if !write(m) {
				return
			}
			continue
		default:
		}
		select {
		case m := <-c.resp:
			if !write(m) {
				return
			}
		case m := <-c.notes:
			if !write(m) {
				return
			}
		case <-c.readerDone:
			// Drain: the reader issues no further responses, so flush
			// what is queued (responses first) and hang up.
			for {
				select {
				case m := <-c.resp:
					if !write(m) {
						return
					}
				default:
					for {
						select {
						case m := <-c.notes:
							if !write(m) {
								return
							}
						default:
							return
						}
					}
				}
			}
		}
	}
}

// errMsg builds an error response.
func errMsg(id uint64, err error) wire.Message {
	return wire.Message{Type: wire.TypeResponse, ID: id, Error: err.Error()}
}

func okMsg(id uint64) wire.Message {
	return wire.Message{Type: wire.TypeResponse, ID: id, OK: true}
}

// handle executes one request, builds its response, and records the
// request's latency, its trace (when sampled or carried in) and the
// slow-request log line. The uninstrumented fast path (no Registry, no
// SlowRequest, no Tracer) skips even the clock reads.
func (s *Server) handle(c *conn, req *wire.Request) wire.Message {
	tr := s.cfg.Tracer
	if s.met == nil && s.cfg.SlowRequest <= 0 && tr == nil {
		return s.dispatch(c, req, nil)
	}
	// Root span: a request carrying a trace context joins the client's
	// trace (the client decided to trace it); otherwise head sampling
	// decides, and the response carries the server-assigned id back.
	var sp *trace.Span
	if tr != nil {
		if req.Trace != nil {
			if id, ok := trace.ParseID(req.Trace.ID); ok {
				sp = tr.Join("server."+req.Op, id)
			}
		} else if tr.Sampled() {
			sp = tr.Start("server." + req.Op)
		}
		if sp != nil {
			if req.Relation != "" {
				sp.SetStr("rel", req.Relation)
			}
			sp.SetStr("remote", c.nc.RemoteAddr().String())
		}
	}
	t0 := time.Now()
	m := s.dispatch(c, req, sp)
	elapsed := time.Since(t0)
	var traceID string
	if sp != nil {
		if m.Error != "" {
			sp.SetStr("error", m.Error)
		}
		traceID = sp.TraceID()
		sp.End()
		m.Trace = &wire.TraceContext{ID: traceID}
	}
	if s.met != nil {
		if h := s.met.reqLat[req.Op]; h != nil {
			h.Observe(elapsed.Seconds())
		}
		if m.Error != "" {
			s.met.reqErrors.Inc()
		}
	}
	if sr := s.cfg.SlowRequest; sr > 0 && elapsed >= sr {
		if traceID == "" {
			// Not sampled: retain a synthesized root-only trace so the slow
			// request is still inspectable at /traces (sampled slow traces
			// land in the slow ring via the tracer itself).
			traceID = tr.RecordSlow("server."+req.Op, t0, elapsed,
				trace.Str("rel", req.Relation),
				trace.Str("remote", c.nc.RemoteAddr().String()))
		}
		s.cfg.Logger.Warn("slow request",
			"op", req.Op, "id", req.ID, "relation", req.Relation,
			"remote", c.nc.RemoteAddr().String(), "elapsed", elapsed,
			"trace_id", traceID)
	}
	return m
}

// Tracer returns the server's tracer (nil when tracing is off); the
// admin endpoint serves /traces from its flight recorder.
func (s *Server) Tracer() *trace.Tracer { return s.cfg.Tracer }

// Profiles returns the workload profile accumulator (never nil).
func (s *Server) Profiles() *trace.Profiles { return s.prof }

// traceCtx converts a request's span into the wire form a WAL record
// carries through the log and the replication stream (nil = untraced).
func traceCtx(sp *trace.Span) *wire.TraceContext {
	if sp == nil {
		return nil
	}
	return &wire.TraceContext{ID: sp.TraceID(), Span: sp.SpanID()}
}

// onEventProfile feeds the workload profile: one applied storage event
// (trigger or cascade) = one write against its relation. Never errors,
// so it can never abort the notify chain.
func (s *Server) onEventProfile(ev storage.Event) error {
	s.profileRel(ev.Rel).RecordWrite()
	return nil
}

// profileRel resolves a relation's profile accumulator, creating it
// with the catalog's attribute names on first sight (relations that
// never get a predicate still profile their write rate).
func (s *Server) profileRel(rel string) *trace.RelProfile {
	if rp := s.prof.Lookup(rel); rp != nil {
		return rp
	}
	var names []string
	if r, ok := s.db.Catalog().Get(rel); ok {
		for _, a := range r.Attrs() {
			names = append(names, a.Name)
		}
	}
	return s.prof.Rel(rel, names)
}

// dispatch routes one request to its handler. On a follower every
// state-changing op is rejected with a leader redirect before reaching
// its handler; reads, subscriptions, stats and backups serve locally.
// sp is the request's root span (nil when untraced); handlers that
// explain themselves attach child spans to it.
func (s *Server) dispatch(c *conn, req *wire.Request, sp *trace.Span) wire.Message {
	switch req.Op {
	case wire.OpDeclare, wire.OpIndex, wire.OpRule, wire.OpDropRule,
		wire.OpAddPred, wire.OpRemovePred,
		wire.OpInsert, wire.OpUpdate, wire.OpDelete:
		if s.isFollower.Load() {
			return s.notLeaderMsg(req.ID)
		}
	default:
	}
	switch req.Op {
	case wire.OpPing:
		return okMsg(req.ID)
	case wire.OpDeclare:
		return s.handleDeclare(req, sp)
	case wire.OpIndex:
		return s.handleIndex(req, sp)
	case wire.OpRule:
		return s.handleRule(req, sp)
	case wire.OpDropRule:
		return s.handleDropRule(req, sp)
	case wire.OpAddPred:
		return s.handleAddPred(req, sp)
	case wire.OpRemovePred:
		return s.handleRemovePred(req, sp)
	case wire.OpInsert, wire.OpUpdate, wire.OpDelete:
		return s.handleMutation(req, sp)
	case wire.OpMatch:
		return s.handleMatch(req, sp)
	case wire.OpMatchBatch:
		return s.handleMatchBatch(req)
	case wire.OpSubscribe:
		return s.handleSubscribe(c, req)
	case wire.OpUnsubscribe:
		return s.handleUnsubscribe(c, req)
	case wire.OpStats:
		return s.handleStats(req)
	case wire.OpBackup:
		return s.handleBackup(req)
	case wire.OpReplicate:
		return s.handleReplicate(c, req)
	case wire.OpPromote:
		return s.handlePromote(req)
	default:
		return errMsg(req.ID, fmt.Errorf("unknown op %q", req.Op))
	}
}

// Every DDL handler follows the log-before-ack shape: apply under mu,
// append the command record under mu (so log order equals apply order),
// release mu, then wait for durability — the group-commit window, in
// which other mutators append and share the fsync.
//
// Acks carry the record's WAL sequence (WalSeq, 0 when not durable) as
// a read-your-writes token: a client hands it to any replica as
// Request.MinSeq and the replica serves the read only once its applied
// state covers it.

func (s *Server) handleDeclare(req *wire.Request, sp *trace.Span) wire.Message {
	s.mu.Lock()
	if err := s.declareRelation(req.Relation, req.Attrs); err != nil {
		s.mu.Unlock()
		return errMsg(req.ID, err)
	}
	seq, werr := s.logCommand(&wal.Record{
		Kind: wal.KindDeclare, Relation: req.Relation, Attrs: req.Attrs,
	}, sp)
	s.mu.Unlock()
	if err := s.commit(seq, werr, sp); err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.WalSeq = seq
	return m
}

func (s *Server) handleIndex(req *wire.Request, sp *trace.Span) wire.Message {
	s.mu.Lock()
	tab, ok := s.db.Table(req.Relation)
	if !ok {
		s.mu.Unlock()
		return errMsg(req.ID, fmt.Errorf("unknown relation %q", req.Relation))
	}
	if err := tab.CreateIndex(req.Attr); err != nil {
		s.mu.Unlock()
		return errMsg(req.ID, err)
	}
	seq, werr := s.logCommand(&wal.Record{
		Kind: wal.KindIndex, Relation: req.Relation, Attr: req.Attr,
	}, sp)
	s.mu.Unlock()
	if err := s.commit(seq, werr, sp); err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.WalSeq = seq
	return m
}

func (s *Server) handleRule(req *wire.Request, sp *trace.Span) wire.Message {
	s.mu.Lock()
	r, err := s.eng.DefineRule(req.Source)
	if err != nil {
		s.mu.Unlock()
		return errMsg(req.ID, err)
	}
	seq, werr := s.logCommand(&wal.Record{Kind: wal.KindRule, Source: req.Source}, sp)
	s.mu.Unlock()
	if err := s.commit(seq, werr, sp); err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.Name = r.Name
	m.WalSeq = seq
	return m
}

func (s *Server) handleDropRule(req *wire.Request, sp *trace.Span) wire.Message {
	s.mu.Lock()
	if err := s.eng.DropRule(req.Name); err != nil {
		s.mu.Unlock()
		return errMsg(req.ID, err)
	}
	seq, werr := s.logCommand(&wal.Record{Kind: wal.KindDropRule, Name: req.Name}, sp)
	s.mu.Unlock()
	if err := s.commit(seq, werr, sp); err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.WalSeq = seq
	return m
}

// handleAddPred registers a client predicate. It takes the mutation
// mutex (although the sharded matcher tolerates concurrent
// registration) so that ID allocation, the snapshot registry, and the
// WAL record are one atomic step with respect to checkpoints — a
// snapshot can never capture a predicate whose log record lies after
// the snapshot's sequence.
func (s *Server) handleAddPred(req *wire.Request, sp *trace.Span) wire.Message {
	if req.Pred == nil {
		return errMsg(req.ID, errors.New("addpred needs a pred"))
	}
	s.mu.Lock()
	id := pred.ID(s.nextPredID.Load())
	if err := s.addDirectPred(id, req.Pred); err != nil {
		s.mu.Unlock()
		return errMsg(req.ID, err)
	}
	seq, werr := s.logCommand(&wal.Record{
		Kind: wal.KindAddPred, PredID: int64(id), Pred: req.Pred,
	}, sp)
	s.mu.Unlock()
	if err := s.commit(seq, werr, sp); err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.PredID = int64(id)
	m.WalSeq = seq
	return m
}

func (s *Server) handleRemovePred(req *wire.Request, sp *trace.Span) wire.Message {
	id := pred.ID(req.PredID)
	if id < DirectPredBase {
		return errMsg(req.ID, fmt.Errorf("predicate %d is not client-registered", req.PredID))
	}
	s.mu.Lock()
	if err := s.sm.Remove(id); err != nil {
		s.mu.Unlock()
		return errMsg(req.ID, err)
	}
	delete(s.directPreds, req.PredID)
	seq, werr := s.logCommand(&wal.Record{Kind: wal.KindRemovePred, PredID: req.PredID}, sp)
	s.mu.Unlock()
	if err := s.commit(seq, werr, sp); err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.WalSeq = seq
	return m
}

// handleMutation applies insert/update/delete through the engine under
// the mutation mutex, reporting how many rules the change fired. Note
// the storage contract: when a rule action fails (e.g. raise), the
// triggering change itself stays applied and the error is reported.
//
// Durability: the events the request applied (captured by onEventWAL,
// including rule cascades) are appended as one atomic WAL record while
// mu is still held, and the response is not sent until the record is
// durable under the sync policy — log-before-ack. A mutation whose
// rule raised still applied events, so it is logged and committed even
// though the response carries the rule's error.
func (s *Server) handleMutation(req *wire.Request, sp *trace.Span) wire.Message {
	s.mu.Lock()
	s.pending = s.pending[:0]
	if sp != nil {
		// Hand the engine the root span for the duration of this mutation
		// so the firing cascade records engine.event / rule.fire children;
		// cleared before mu is released (the engine runs only under mu).
		s.eng.SetSpan(sp)
	}
	m := s.applyMutation(req)
	if sp != nil {
		s.eng.SetSpan(nil)
	}
	seq, werr := s.logPending(sp)
	s.mu.Unlock()
	if err := s.commit(seq, werr, sp); err != nil {
		// The in-memory state changed but cannot be made durable; the log
		// is poisoned and every further state change will fail the same
		// way. Surface the WAL error over the rule-level outcome.
		return errMsg(req.ID, fmt.Errorf("wal: %w", err))
	}
	m.WalSeq = seq
	return m
}

// applyMutation executes the storage change and rule cascade.
//
//predmatchvet:holds mu
func (s *Server) applyMutation(req *wire.Request) wire.Message {
	tab, ok := s.db.Table(req.Relation)
	if !ok {
		return errMsg(req.ID, fmt.Errorf("unknown relation %q", req.Relation))
	}
	s.firings = 0
	m := okMsg(req.ID)
	switch req.Op {
	case wire.OpInsert:
		t, err := wire.ToTuple(tab.Relation(), req.Tuple)
		if err != nil {
			return errMsg(req.ID, err)
		}
		id, err := tab.Insert(t)
		if err != nil {
			return errMsg(req.ID, err)
		}
		m.TupleID = int64(id)
	case wire.OpUpdate:
		t, err := wire.ToTuple(tab.Relation(), req.Tuple)
		if err != nil {
			return errMsg(req.ID, err)
		}
		if err := tab.Update(tuple.ID(req.TupleID), t); err != nil {
			return errMsg(req.ID, err)
		}
	case wire.OpDelete:
		if err := tab.Delete(tuple.ID(req.TupleID)); err != nil {
			return errMsg(req.ID, err)
		}
	default:
		// handle() only routes the three mutation ops here; a new op
		// reaching this switch is a dispatch bug, not a client error.
		return errMsg(req.ID, fmt.Errorf("op %q is not a mutation", req.Op))
	}
	m.Firings = s.firings
	return m
}

// handleMatch stabs the sharded matcher's lock-free snapshot; it never
// touches the mutation mutex. A min_seq token makes the read wait until
// the server's applied state covers that sequence (read-your-writes
// across replicas; see docs/REPLICATION.md).
func (s *Server) handleMatch(req *wire.Request, sp *trace.Span) wire.Message {
	if req.MinSeq > 0 {
		wsp := sp.Child("repl.wait")
		wsp.SetInt("min_seq", int64(req.MinSeq))
		err := s.waitMinSeq(req.MinSeq)
		wsp.End()
		if err != nil {
			return s.minSeqErr(req.ID, err)
		}
	}
	rel, ok := s.db.Catalog().Get(req.Relation)
	if !ok {
		return errMsg(req.ID, fmt.Errorf("unknown relation %q", req.Relation))
	}
	t, err := wire.ToTuple(rel, req.Tuple)
	if err != nil {
		return errMsg(req.ID, err)
	}
	ids, err := s.sm.MatchTraced(req.Relation, t, nil, sp)
	if err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.Matches = wire.FromIDs(ids)
	if m.Matches == nil {
		m.Matches = []int64{}
	}
	return m
}

func (s *Server) handleMatchBatch(req *wire.Request) wire.Message {
	if err := s.waitMinSeq(req.MinSeq); err != nil {
		return s.minSeqErr(req.ID, err)
	}
	rel, ok := s.db.Catalog().Get(req.Relation)
	if !ok {
		return errMsg(req.ID, fmt.Errorf("unknown relation %q", req.Relation))
	}
	tuples := make([]tuple.Tuple, len(req.Tuples))
	for i, raw := range req.Tuples {
		t, err := wire.ToTuple(rel, raw)
		if err != nil {
			return errMsg(req.ID, fmt.Errorf("tuple %d: %w", i, err))
		}
		tuples[i] = t
	}
	results, err := s.sm.MatchBatch(req.Relation, tuples)
	if err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.Batch = make([][]int64, len(results))
	for i, ids := range results {
		m.Batch[i] = wire.FromIDs(ids)
		if m.Batch[i] == nil {
			m.Batch[i] = []int64{}
		}
	}
	return m
}

func (s *Server) handleSubscribe(c *conn, req *wire.Request) wire.Message {
	sub := &subscription{preds: req.Preds}
	if len(req.Rules) > 0 {
		sub.rules = make(map[string]bool, len(req.Rules))
		for _, r := range req.Rules {
			sub.rules[r] = true
		}
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if _, dup := s.subs[c]; dup {
		return errMsg(req.ID, errors.New("already subscribed"))
	}
	s.subs[c] = sub
	return okMsg(req.ID)
}

// handleUnsubscribe stops the stream and reports the subscription's
// final counters: Seq is the total notifications generated, Dropped how
// many of those the overflow policy discarded. Notifications still in
// the queue may be delivered after this response.
func (s *Server) handleUnsubscribe(c *conn, req *wire.Request) wire.Message {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	m := okMsg(req.ID)
	if sub, ok := s.subs[c]; ok {
		m.Seq = sub.seq
		m.Dropped = sub.drops
		delete(s.subs, c)
	}
	return m
}

func (s *Server) handleStats(req *wire.Request) wire.Message {
	st := &wire.Stats{
		Rules:      s.eng.Rules(),
		Matcher:    s.sm.Name(),
		Predicates: s.sm.Len(),
		Delivered:  s.delivered.Load(),
		Dropped:    s.dropped.Load(),
	}
	if pf, ok := s.sm.PrefilterStats(); ok {
		st.Prefilter = &wire.PrefilterStat{Admitted: pf.Admitted, Skipped: pf.Skipped}
	}
	for _, rp := range s.prof.Snapshot() {
		ps := wire.ProfileStat{
			Rel: rp.Relation, Stabs: rp.Stabs, Skipped: rp.Skipped,
			Results: rp.Results, StabSecs: rp.StabSecs, Writes: rp.Writes,
		}
		for _, a := range rp.Attrs {
			ps.Attrs = append(ps.Attrs, wire.AttrProfile{Name: a.Name, Queried: a.Queried})
		}
		st.Profiles = append(st.Profiles, ps)
	}
	for _, sh := range s.sm.Stats() {
		st.Shards = append(st.Shards, wire.ShardStat{
			Rel: sh.Rel, Predicates: sh.Predicates, Version: sh.Version,
			Structure: sh.Structure,
		})
	}
	if s.meta != nil {
		ms := &wire.MetaStat{Default: s.meta.Default()}
		for _, d := range s.meta.Stats() {
			ms.Rels = append(ms.Rels, wire.MetaRelStat{
				Rel: d.Rel, Structure: d.Strategy,
				SinceSecs: d.Since.Seconds(), Migrations: d.Migrations,
				Reason: d.Reason, EstNS: d.EstNS,
				AltName: d.AltName, AltNS: d.AltNS,
				StabRate: d.StabRate, WriteRate: d.WriteRate,
			})
		}
		st.Meta = ms
	}
	for _, ts := range s.sm.Trees() {
		st.Trees = append(st.Trees, wire.TreeStat{
			Rel: ts.Rel, Attr: ts.Attr, Intervals: ts.Intervals,
			Nodes: ts.Nodes, Markers: ts.Markers, Height: ts.Height,
		})
	}
	// Row counts and ID cursors move under the mutation mutex; read them
	// under it so the stats frame is a consistent cut.
	s.mu.Lock()
	for _, name := range s.db.Relations() {
		tab, _ := s.db.Table(name)
		st.Relations = append(st.Relations, wire.RelStat{
			Name: name, Rows: tab.Len(), NextID: int64(tab.NextID()),
		})
	}
	s.mu.Unlock()
	st.WAL = s.walStat()
	st.Repl = s.replStat()
	// Snapshot the connection set first, then read each connection's
	// subscription under subMu — the lock order every other path uses.
	s.connMu.Lock()
	st.Conns = len(s.conns)
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.connMu.Unlock()
	s.subMu.Lock()
	st.Subs = len(s.subs)
	for _, c := range conns {
		cs := wire.ConnStat{
			Remote:    c.nc.RemoteAddr().String(),
			Queue:     len(c.notes),
			QueueCap:  cap(c.notes),
			Delivered: c.delivered.Load(),
			Replica:   c.replica.Load(),
			ReplSeq:   c.replSeq.Load(),
		}
		if sub, ok := s.subs[c]; ok {
			cs.Subscribed = true
			cs.Dropped = sub.drops
			cs.LastSeq = sub.seq
			for r := range sub.rules {
				cs.Rules = append(cs.Rules, r)
			}
			sort.Strings(cs.Rules)
		}
		st.Connections = append(st.Connections, cs)
	}
	s.subMu.Unlock()
	sort.Slice(st.Connections, func(i, j int) bool {
		return st.Connections[i].Remote < st.Connections[j].Remote
	})
	m := okMsg(req.ID)
	m.Stats = st
	return m
}
