package server_test

import (
	"encoding/json"
	"testing"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/schema"
	"predmatch/internal/server"
	"predmatch/internal/trace"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wire"
)

// tracesDoc mirrors the /traces?format=json document for assertions.
type tracesDoc struct {
	Traces []struct {
		ID     string `json:"id"`
		Root   string `json:"root"`
		Remote bool   `json:"remote"`
		Spans  []struct {
			ID     uint64 `json:"id"`
			Parent uint64 `json:"parent"`
			Name   string `json:"name"`
		} `json:"spans"`
	} `json:"traces"`
}

func getTraces(t *testing.T, base, query string) tracesDoc {
	t.Helper()
	code, body := adminGet(t, base+"/traces?format=json"+query)
	if code != 200 {
		t.Fatalf("/traces: status %d: %s", code, body)
	}
	var doc tracesDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/traces: %v\n%s", err, body)
	}
	return doc
}

// spanTree indexes one trace's spans by name and returns a lookup of
// parent names, "" for the root or missing spans.
func parentNames(spans []struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Name   string `json:"name"`
}) map[string]string {
	byID := make(map[uint64]string)
	for _, s := range spans {
		byID[s.ID] = s.Name
	}
	out := make(map[string]string)
	for _, s := range spans {
		out[s.Name] = byID[s.Parent]
	}
	return out
}

// TestTracedMutationPipeline is the tentpole's acceptance check: one
// client-initiated traced insert against a durable daemon must yield a
// single trace at /traces containing the full pipeline — engine event,
// snapshot load, prefilter verdict, index stab, the fired rule, the
// WAL append and the group-commit flush — correctly nested under the
// server op root.
func TestTracedMutationPipeline(t *testing.T) {
	cfg := server.Config{
		DataDir: t.TempDir(),
		Tracer:  trace.New(trace.Config{}), // no sampling: only the carried context traces
	}
	s, addr, stop := startDurable(t, cfg)
	defer stop()
	base, stopAdmin := startAdmin(t, server.NewAdmin("unused", nil, s))
	defer stopAdmin()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rel := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt})
	if err := c.DeclareRelation(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineRule("rule senior on insert to emp when age > 50 do log 'senior'"); err != nil {
		t.Fatal(err)
	}

	// An untraced insert warms the path and must not be recorded.
	if _, _, err := c.Insert("emp", tuple.Tuple{value.String_("bob"), value.Int(33), value.Int(25000)}); err != nil {
		t.Fatal(err)
	}
	if doc := getTraces(t, base, ""); len(doc.Traces) != 0 {
		t.Fatalf("untraced insert was recorded: %d traces", len(doc.Traces))
	}

	const traceID = "00000000feedc0de"
	c.TraceNext(&wire.TraceContext{ID: traceID})
	if _, _, err := c.Insert("emp", tuple.Tuple{value.String_("ada"), value.Int(52), value.Int(18000)}); err != nil {
		t.Fatal(err)
	}

	// The group-commit span ends off the request goroutine; poll until
	// the completed trace lands in the recorder.
	var doc tracesDoc
	deadline := time.Now().Add(5 * time.Second)
	for {
		doc = getTraces(t, base, "&id="+traceID)
		if len(doc.Traces) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never appeared: %+v", traceID, doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr := doc.Traces[0]
	if tr.Root != "server.insert" || !tr.Remote {
		t.Errorf("trace head = root %q remote %v", tr.Root, tr.Remote)
	}
	parents := parentNames(tr.Spans)
	want := map[string]string{
		"server.insert":   "",
		"engine.event":    "server.insert",
		"shard.snapshot":  "engine.event",
		"shard.prefilter": "engine.event",
		"shard.stab":      "engine.event",
		"rule.fire":       "engine.event",
		"wal.append":      "server.insert",
		"wal.commit":      "server.insert",
	}
	for name, parent := range want {
		got, ok := parents[name]
		if !ok {
			t.Errorf("span %q missing from trace: %+v", name, tr.Spans)
			continue
		}
		if got != parent {
			t.Errorf("span %q nested under %q, want %q", name, got, parent)
		}
	}

	// The response echoed an explorable id, and the text rendering and
	// slow/n/id query paths serve without error.
	if code, body := adminGet(t, base+"/traces?id="+traceID); code != 200 || body == "" {
		t.Errorf("/traces text form: %d %q", code, body)
	}
	if code, _ := adminGet(t, base+"/traces?slow=1&n=2"); code != 200 {
		t.Errorf("/traces?slow=1: %d", code)
	}
	if code, _ := adminGet(t, base+"/traces?id=zzz"); code != 400 {
		t.Errorf("/traces bad id: %d, want 400", code)
	}
	if code, _ := adminGet(t, base+"/traces?n=-1"); code != 400 {
		t.Errorf("/traces bad n: %d, want 400", code)
	}
}

// TestTracesDisabled: without a tracer the endpoint 404s with a hint
// instead of serving an empty document.
func TestTracesDisabled(t *testing.T) {
	s, _, stop := startServer(t, server.Config{})
	defer stop()
	base, stopAdmin := startAdmin(t, server.NewAdmin("unused", nil, s))
	defer stopAdmin()
	if code, body := adminGet(t, base+"/traces"); code != 404 || body == "" {
		t.Errorf("/traces without tracer: %d %q", code, body)
	}
}

// TestTraceCrossesReplication: a traced mutation on the leader must
// surface on the follower as a follower.apply trace under the same
// trace id — the context rides the WAL record through the replication
// stream.
func TestTraceCrossesReplication(t *testing.T) {
	leaderCfg := server.Config{
		DataDir: t.TempDir(),
		Tracer:  trace.New(trace.Config{}),
	}
	leader, leaderAddr, stopLeader := startDurable(t, leaderCfg)
	_ = leader
	follower, _, _, stopFollower := startFollower(t, leaderAddr, server.Config{
		Tracer: trace.New(trace.Config{}),
	})

	c, err := client.Dial(leaderAddr)
	if err != nil {
		t.Fatal(err)
	}
	rel := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt})
	if err := c.DeclareRelation(rel); err != nil {
		t.Fatal(err)
	}
	const traceID = "00000000feedface"
	c.TraceNext(&wire.TraceContext{ID: traceID})
	if _, _, err := c.Insert("emp", tuple.Tuple{value.String_("ada"), value.Int(52)}); err != nil {
		t.Fatal(err)
	}
	seq := c.LastSeq()
	waitSeq(t, "follower", follower.ReplAppliedSeq, seq)

	var got []*trace.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		got = nil
		for _, tr := range follower.Tracer().Traces() {
			if tr.ID == traceID {
				got = append(got, tr)
			}
		}
		if len(got) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never recorded the leader's trace id")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr := got[0]
	if tr.Root != "follower.apply" || !tr.Remote {
		t.Errorf("follower trace = root %q remote %v", tr.Root, tr.Remote)
	}
	names := make(map[string]bool)
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"follower.apply", "wal.append", "wal.commit"} {
		if !names[want] {
			t.Errorf("follower trace missing span %q: %v", want, names)
		}
	}

	c.Close()
	stopFollower()
	stopLeader()
}
