package server

import (
	"testing"

	"predmatch/internal/engine"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
	"predmatch/internal/wire"
)

// TestServerOverflowPolicy pins the drop-newest overflow contract at
// the fanout layer, without sockets: a sequence number is assigned to
// every generated notification, drops are counted per subscription and
// globally, and what stays queued is the oldest prefix.
func TestServerOverflowPolicy(t *testing.T) {
	s := New(Config{QueueLen: 2})
	c := &conn{s: s, notes: make(chan wire.Message, 2)}
	sub := &subscription{}
	s.subs[c] = sub //predmatchvet:ignore guardedby single-goroutine test, nothing else sees s yet

	for i := 1; i <= 5; i++ {
		s.onFire(engine.FiringEvent{
			Rule:    "r",
			Rel:     "emp",
			Op:      storage.OpInsert,
			TupleID: tuple.ID(i),
			Tuple:   tuple.New(value.Int(int64(i))),
		})
	}
	if sub.seq != 5 {
		t.Fatalf("seq = %d, want 5 (every generated notification numbered)", sub.seq)
	}
	if sub.drops != 3 {
		t.Fatalf("drops = %d, want 3", sub.drops)
	}
	if got := s.dropped.Load(); got != 3 {
		t.Fatalf("global dropped = %d, want 3", got)
	}
	if len(c.notes) != 2 {
		t.Fatalf("queued = %d, want 2", len(c.notes))
	}
	// Drop-newest: the two oldest survive, stamped with the drop count
	// at generation time (0 — nothing had been dropped yet).
	for want := uint64(1); want <= 2; want++ {
		m := <-c.notes
		if m.Seq != want || m.Dropped != 0 || m.EventID != int64(want) {
			t.Fatalf("queued notification = %+v, want seq %d", m, want)
		}
	}

	// A filtered subscription never even generates a sequence number
	// for rules outside its filter.
	filtered := &subscription{rules: map[string]bool{"other": true}}
	s.subs[c] = filtered //predmatchvet:ignore guardedby single-goroutine test, nothing else sees s yet
	s.onFire(engine.FiringEvent{Rule: "r", Rel: "emp", Op: storage.OpInsert})
	if filtered.seq != 0 {
		t.Fatalf("filtered seq = %d, want 0", filtered.seq)
	}
	s.onFire(engine.FiringEvent{Rule: "other", Rel: "emp", Op: storage.OpInsert})
	if filtered.seq != 1 || filtered.drops != 0 {
		t.Fatalf("filtered sub = %+v", filtered)
	}
}
