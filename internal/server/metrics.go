package server

import (
	"predmatch/internal/obs"
	"predmatch/internal/wire"
)

// ops is every request operation the protocol defines; per-op latency
// histogram handles are resolved once at startup so the request path
// never takes the vec's lookup lock.
var ops = []string{
	wire.OpPing, wire.OpDeclare, wire.OpIndex, wire.OpRule,
	wire.OpDropRule, wire.OpAddPred, wire.OpRemovePred,
	wire.OpInsert, wire.OpUpdate, wire.OpDelete,
	wire.OpMatch, wire.OpMatchBatch,
	wire.OpSubscribe, wire.OpUnsubscribe, wire.OpStats,
	wire.OpBackup, wire.OpReplicate, wire.OpPromote,
}

// serverMetrics holds the handles the request path updates. nil (no
// Registry configured) disables all of it; the notification counters
// stay plain atomics on Server either way and are exported here as
// scrape-time counter funcs.
type serverMetrics struct {
	reqLat    map[string]*obs.Histogram // per-op request latency
	reqErrors *obs.Counter
	rejected  *obs.Counter
	// Replication streaming volume (leader side; see docs/OBSERVABILITY.md).
	streamedRecords *obs.Counter
	streamedBytes   *obs.Counter
}

// newServerMetrics registers the daemon's metric families on reg.
// Derivable quantities — connection and subscription counts, queue
// depths, delivery counters — are sampled at scrape time from the
// server's own state, costing the hot paths nothing.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	if reg == nil {
		return nil
	}
	lat := reg.HistogramVec("predmatch_request_latency_seconds",
		"Request handling latency by operation (decode to response enqueue).",
		obs.DefBuckets, "op")
	m := &serverMetrics{
		reqLat: make(map[string]*obs.Histogram, len(ops)),
		reqErrors: reg.Counter("predmatch_request_errors_total",
			"Requests answered with an error frame."),
		rejected: reg.Counter("predmatch_conns_rejected_total",
			"Connections rejected by the MaxConns limit."),
	}
	for _, op := range ops {
		m.reqLat[op] = lat.With(op)
	}
	reg.GaugeFunc("predmatch_active_connections",
		"Open client connections.", func() float64 {
			s.connMu.Lock()
			defer s.connMu.Unlock()
			return float64(len(s.conns))
		})
	reg.GaugeFunc("predmatch_subscriptions",
		"Connections with an active subscription.", func() float64 {
			s.subMu.Lock()
			defer s.subMu.Unlock()
			return float64(len(s.subs))
		})
	reg.GaugeFunc("predmatch_notify_queue_depth",
		"Notifications currently queued across all connections.", func() float64 {
			s.connMu.Lock()
			defer s.connMu.Unlock()
			total := 0
			for c := range s.conns {
				total += len(c.notes)
			}
			return float64(total)
		})
	reg.CounterFunc("predmatch_notify_delivered_total",
		"Notifications written to clients.", s.delivered.Load)
	reg.CounterFunc("predmatch_notify_dropped_total",
		"Notifications dropped by the overflow policy.", s.dropped.Load)
	m.streamedRecords = reg.Counter("predmatch_repl_streamed_records_total",
		"WAL records streamed to followers.")
	m.streamedBytes = reg.Counter("predmatch_repl_streamed_bytes_total",
		"Replication payload bytes streamed to followers (records and snapshots).")
	reg.GaugeFunc("predmatch_repl_followers",
		"Replication streams currently served.", func() float64 {
			s.connMu.Lock()
			defer s.connMu.Unlock()
			n := 0
			for c := range s.conns {
				if c.replica.Load() {
					n++
				}
			}
			return float64(n)
		})
	// Workload profile (see internal/trace.Profiles): sampled at scrape
	// time from the always-on accumulator, costing the hot paths nothing
	// beyond the atomic adds they already pay.
	reg.GaugeSet("predmatch_workload_stabs_total",
		"Index probes run per relation (workload profile).",
		[]string{"rel"}, func(emit obs.Emit) {
			for _, rp := range s.prof.Snapshot() {
				emit(float64(rp.Stabs), rp.Relation)
			}
		})
	reg.GaugeSet("predmatch_workload_results_total",
		"Predicate matches returned per relation; divide by stabs for observed selectivity.",
		[]string{"rel"}, func(emit obs.Emit) {
			for _, rp := range s.prof.Snapshot() {
				emit(float64(rp.Results), rp.Relation)
			}
		})
	reg.GaugeSet("predmatch_workload_stab_seconds_total",
		"Cumulative stab latency per relation (workload profile).",
		[]string{"rel"}, func(emit obs.Emit) {
			for _, rp := range s.prof.Snapshot() {
				emit(rp.StabSecs, rp.Relation)
			}
		})
	reg.GaugeSet("predmatch_workload_writes_total",
		"Applied mutation events per relation (workload profile).",
		[]string{"rel"}, func(emit obs.Emit) {
			for _, rp := range s.prof.Snapshot() {
				emit(float64(rp.Writes), rp.Relation)
			}
		})
	reg.GaugeSet("predmatch_workload_attr_queried_total",
		"Stabs that consulted each attribute (interval clauses present).",
		[]string{"rel", "attr"}, func(emit obs.Emit) {
			for _, rp := range s.prof.Snapshot() {
				for _, a := range rp.Attrs {
					emit(float64(a.Queried), rp.Relation, a.Name)
				}
			}
		})
	return m
}
