package server

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"predmatch/internal/obs"
	"predmatch/internal/trace"
)

// Admin is the daemon's operational HTTP listener, separate from the
// client protocol port so that scraping and profiling never compete
// with match traffic for the protocol listener's accept loop. It
// serves:
//
//	/metrics       Prometheus text exposition of reg
//	/varz          the same registry as a JSON document
//	/healthz       200 while serving, 503 once shutdown has begun
//	/traces        the tracer's flight recorder (text; ?format=json,
//	               ?slow=1, ?id=<trace id>, ?n=<max traces>)
//	/debug/pprof/  the standard net/http/pprof profile endpoints
//
// The endpoints are unauthenticated; bind the admin listener to
// loopback or an operations network, never the public interface.
type Admin struct {
	addr string
	srv  *http.Server

	lnMu sync.Mutex
	ln   net.Listener // guarded-by: lnMu
}

// NewAdmin builds the admin endpoint for s, exposing reg. reg may be
// nil (the metric endpoints then serve empty documents); s may be nil
// (healthz then always reports healthy), which tests use to probe the
// mux in isolation.
func NewAdmin(addr string, reg *obs.Registry, s *Server) *Admin {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/varz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s != nil && s.Stopping() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("stopping\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		var tr *trace.Tracer
		if s != nil {
			tr = s.Tracer()
		}
		if tr == nil {
			http.Error(w, "tracing is not enabled (start the daemon with -trace-sample or -slowreq)", http.StatusNotFound)
			return
		}
		serveTraces(w, r, tr)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return &Admin{
		addr: addr,
		srv: &http.Server{
			Handler: mux,
			// Scrapes and health checks are small; pprof profile/trace
			// streams run long, so only the read side is bounded.
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
}

// serveTraces renders the flight recorder's contents. Query params:
// slow=1 restricts to the slow ring, id=<16-hex> to one trace,
// n=<count> caps the number of traces (newest first), format=json
// switches from the human tree rendering to JSON.
func serveTraces(w http.ResponseWriter, r *http.Request, tr *trace.Tracer) {
	q := r.URL.Query()
	var traces []*trace.Trace
	if q.Get("slow") != "" && q.Get("slow") != "0" {
		traces = tr.SlowTraces()
	} else {
		traces = tr.Traces()
	}
	if id := q.Get("id"); id != "" {
		if _, ok := trace.ParseID(id); !ok {
			http.Error(w, "bad trace id (want 1-16 hex digits)", http.StatusBadRequest)
			return
		}
		keep := traces[:0]
		for _, t := range traces {
			if t.ID == id {
				keep = append(keep, t)
			}
		}
		traces = keep
	}
	if ns := q.Get("n"); ns != "" {
		n, err := strconv.Atoi(ns)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		if n < len(traces) {
			traces = traces[:n]
		}
	}
	if q.Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		trace.WriteJSON(w, traces)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	trace.WriteText(w, traces)
}

// ListenAndServe listens on the configured address and serves until
// Shutdown. It returns http.ErrServerClosed after a clean shutdown.
func (a *Admin) ListenAndServe() error {
	ln, err := net.Listen("tcp", a.addr)
	if err != nil {
		return err
	}
	return a.Serve(ln)
}

// Serve serves the admin endpoints on ln until Shutdown.
func (a *Admin) Serve(ln net.Listener) error {
	a.lnMu.Lock()
	a.ln = ln
	a.lnMu.Unlock()
	return a.srv.Serve(ln)
}

// Addr returns the listener address once Serve is running (for tests
// listening on ":0"), or nil before that.
func (a *Admin) Addr() net.Addr {
	a.lnMu.Lock()
	defer a.lnMu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// Shutdown gracefully stops the admin listener; it shares the daemon's
// drain context so both listeners wind down together.
func (a *Admin) Shutdown(ctx context.Context) error {
	return a.srv.Shutdown(ctx)
}
