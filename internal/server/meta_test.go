package server_test

import (
	"strings"
	"testing"
	"time"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/server"
	"predmatch/internal/strategy"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// TestAdaptiveIndexE2E runs the daemon with the adaptive meta engine
// (`predmatchd -index meta`) under a stab-heavy client workload and
// waits for a live migration: the stats surface must report the meta
// section, a decision naming the new structure, and a shard whose
// Structure changed away from the warm-up default — all while match
// responses keep flowing.
func TestAdaptiveIndexE2E(t *testing.T) {
	ac := strategy.MetaConfig("ibs")
	// Aggressive pacing so the background loop decides within the test
	// budget on a real clock.
	ac.Interval = 20 * time.Millisecond
	ac.MinPreds = 8
	ac.MinOpsRate = 0.1
	ac.HalfLife = 100 * time.Millisecond
	ac.Cooldown = 10 * time.Millisecond
	_, addr, stop := startServer(t, server.Config{Adaptive: &ac})
	defer stop()
	c := dial(t, addr)
	defer c.Close()

	if err := c.DeclareRelation(empRel); err != nil {
		t.Fatal(err)
	}
	for id := pred.ID(1); id <= 32; id++ {
		p := pred.New(id, "emp",
			pred.IvClause("age", interval.AtLeast(value.Int(int64(id)%60))))
		if _, err := c.AddPredicate(p); err != nil {
			t.Fatal(err)
		}
	}
	probe := tuple.New(value.String_("w"), value.Int(70), value.Int(50000), value.String_("toy"))

	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 200; i++ {
			res, err := c.Match("emp", probe)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 32 {
				t.Fatalf("match returned %d results, want 32", len(res))
			}
		}
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Matcher != "meta" {
			t.Fatalf("matcher = %q, want meta", st.Matcher)
		}
		if st.Meta == nil || st.Meta.Default != "ibs" {
			t.Fatalf("stats meta section = %+v", st.Meta)
		}
		// Migration landed when the decision row counts one and the
		// shard's live structure agrees with it.
		var decided string
		var migrations uint64
		for _, d := range st.Meta.Rels {
			if d.Rel == "emp" {
				decided, migrations = d.Structure, d.Migrations
			}
		}
		// A frame can straddle the migration (shards and the meta section
		// are read at slightly different instants), so require agreement
		// rather than failing on a transient mismatch.
		agreed := true
		for _, sh := range st.Shards {
			if sh.Rel == "emp" && sh.Structure != decided {
				agreed = false
			}
		}
		if migrations >= 1 && agreed {
			if decided == "ibs" {
				t.Fatalf("migrated but still on the default: %+v", st.Meta.Rels)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no migration under stab-heavy load; meta: %+v shards: %+v",
				st.Meta, st.Shards)
		}
	}
}

// TestAdaptiveConfigRejected pins the error path: an invalid adaptive
// config must fail Open rather than panic later.
func TestAdaptiveConfigRejected(t *testing.T) {
	ac := strategy.MetaConfig("ibs")
	ac.Default = "nope"
	if _, err := server.Open(server.Config{Adaptive: &ac}); err == nil ||
		!strings.Contains(err.Error(), "adaptive") {
		t.Fatalf("Open with bad adaptive config: err = %v", err)
	}
}
