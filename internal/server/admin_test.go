package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"predmatch/internal/client"
	"predmatch/internal/obs"
	"predmatch/internal/schema"
	"predmatch/internal/server"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// startAdmin serves an Admin on a loopback port and returns its base
// URL plus a stopper that shuts it down and checks Serve unwinds.
func startAdmin(t *testing.T, a *server.Admin) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- a.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := a.Shutdown(ctx); err != nil {
			t.Errorf("admin Shutdown: %v", err)
		}
		select {
		case err := <-serveErr:
			if !errors.Is(err, http.ErrServerClosed) {
				t.Errorf("admin Serve returned %v, want http.ErrServerClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("admin Serve did not return after Shutdown")
		}
	}
	return "http://" + ln.Addr().String(), stop
}

func adminGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminEndpoints drives a metrics-enabled daemon through the wire
// protocol and asserts the admin surface reflects it: /metrics carries
// nonzero match-latency and IBS counters, /varz parses as JSON, and
// /healthz flips from 200 to 503 once shutdown begins.
func TestAdminEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	s, addr, stopSrv := startServer(t, server.Config{Registry: reg})
	base, stopAdmin := startAdmin(t, server.NewAdmin("unused", reg, s))
	defer stopAdmin()

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rel := schema.MustRelation("emp",
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt})
	if err := c.DeclareRelation(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineRule("rule band on insert to emp when salary between 100 and 200 do log 'b'"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := c.Insert("emp", tuple.New(value.Int(30), value.Int(int64(100+i*10)))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Match("emp", tuple.New(value.Int(30), value.Int(150))); err != nil {
			t.Fatal(err)
		}
	}

	if code, body := adminGet(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	code, metrics := adminGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`predmatch_match_latency_seconds_count{rel="emp"}`,
		"predmatch_ibs_stabs_total",
		"predmatch_ibs_nodes_visited_total",
		`predmatch_rule_firings_total{rule="band"} 10`,
		`predmatch_request_latency_seconds_count{op="match"} 10`,
		"predmatch_notify_dropped_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The counters must be live, not merely present.
	if strings.Contains(metrics, "predmatch_ibs_stabs_total 0\n") {
		t.Error("predmatch_ibs_stabs_total still zero after matches")
	}

	code, varz := adminGet(t, base+"/varz")
	if code != http.StatusOK {
		t.Fatalf("/varz = %d", code)
	}
	var doc struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(varz), &doc); err != nil {
		t.Fatalf("/varz is not JSON: %v", err)
	}
	if len(doc.Metrics) == 0 {
		t.Error("/varz reports no metric families")
	}

	if code, body := adminGet(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d %q", code, body)
	}

	c.Close()
	stopSrv()
	if code, body := adminGet(t, base+"/healthz"); code != http.StatusServiceUnavailable || body != "stopping\n" {
		t.Errorf("/healthz after shutdown = %d %q, want 503 stopping", code, body)
	}
}

// TestAdminShutdownNoLeak checks the admin listener's goroutines wind
// down with the daemon's: after both Shutdowns return, no http.Server
// machinery for the admin port may remain (same goleak pattern as
// checkNoConnGoroutines).
func TestAdminShutdownNoLeak(t *testing.T) {
	reg := obs.NewRegistry()
	s, _, stopSrv := startServer(t, server.Config{Registry: reg})
	base, stopAdmin := startAdmin(t, server.NewAdmin("unused", reg, s))
	if code, _ := adminGet(t, base+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	stopSrv()
	stopAdmin()
	// http.Server.Shutdown waits for handlers but its listener/conn
	// goroutines unwind asynchronously; poll like the conn check does.
	deadline := time.Now().Add(5 * time.Second)
	for {
		buf := make([]byte, 1<<20)
		stacks := string(buf[:runtime.Stack(buf, true)])
		if !strings.Contains(stacks, "server.(*Admin).Serve") &&
			!strings.Contains(stacks, "net/http.(*Server).Serve") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admin goroutines still running after Shutdown:\n%s", stacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
