package btree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"predmatch/internal/interval"
)

func intCmp(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func TestEmpty(t *testing.T) {
	m := New[int, string](intCmp)
	if m.Len() != 0 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("Get on empty found a value")
	}
	if _, _, ok := m.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, _, ok := m.Max(); ok {
		t.Fatal("Max on empty")
	}
	if _, removed := m.Delete(5); removed {
		t.Fatal("Delete on empty removed")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetReplace(t *testing.T) {
	m := New[int, string](intCmp, Degree(4))
	for i := 0; i < 100; i++ {
		if _, replaced := m.Put(i, "a"); replaced {
			t.Fatalf("Put(%d) replaced on first insert", i)
		}
	}
	if m.Len() != 100 {
		t.Fatalf("Len = %d", m.Len())
	}
	old, replaced := m.Put(42, "b")
	if !replaced || old != "a" {
		t.Fatalf("Put replace = %q, %v", old, replaced)
	}
	if m.Len() != 100 {
		t.Fatalf("Len changed on replace: %d", m.Len())
	}
	v, ok := m.Get(42)
	if !ok || v != "b" {
		t.Fatalf("Get(42) = %q, %v", v, ok)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxAscend(t *testing.T) {
	m := New[int, int](intCmp, Degree(4))
	perm := rand.New(rand.NewSource(3)).Perm(500)
	for _, k := range perm {
		m.Put(k, k*2)
	}
	k, v, ok := m.Min()
	if !ok || k != 0 || v != 0 {
		t.Fatalf("Min = %d,%d,%v", k, v, ok)
	}
	k, v, ok = m.Max()
	if !ok || k != 499 || v != 998 {
		t.Fatalf("Max = %d,%d,%v", k, v, ok)
	}
	prev := -1
	count := 0
	m.Ascend(func(k, v int) bool {
		if k <= prev {
			t.Fatalf("Ascend out of order: %d after %d", k, prev)
		}
		if v != k*2 {
			t.Fatalf("Ascend wrong value for %d: %d", k, v)
		}
		prev = k
		count++
		return true
	})
	if count != 500 {
		t.Fatalf("Ascend visited %d", count)
	}
	// Early stop.
	count = 0
	m.Ascend(func(k, v int) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("Ascend early stop visited %d", count)
	}
}

func TestAscendRange(t *testing.T) {
	m := New[int, int](intCmp, Degree(4))
	for i := 0; i < 100; i++ {
		m.Put(i*2, i) // even keys 0..198
	}
	collect := func(iv interval.Interval[int]) []int {
		var out []int
		m.AscendRange(iv, func(k, v int) bool {
			out = append(out, k)
			return true
		})
		return out
	}
	if got := collect(interval.Closed(10, 16)); !reflect.DeepEqual(got, []int{10, 12, 14, 16}) {
		t.Fatalf("Closed(10,16) = %v", got)
	}
	if got := collect(interval.Open(10, 16)); !reflect.DeepEqual(got, []int{12, 14}) {
		t.Fatalf("Open(10,16) = %v", got)
	}
	if got := collect(interval.AtMost(4)); !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Fatalf("AtMost(4) = %v", got)
	}
	if got := collect(interval.AtLeast(194)); !reflect.DeepEqual(got, []int{194, 196, 198}) {
		t.Fatalf("AtLeast(194) = %v", got)
	}
	if got := collect(interval.Point(50)); !reflect.DeepEqual(got, []int{50}) {
		t.Fatalf("Point(50) = %v", got)
	}
	if got := collect(interval.Closed(13, 13)); got != nil {
		t.Fatalf("Closed(13,13) = %v (13 absent)", got)
	}
	if got := collect(interval.All[int]()); len(got) != 100 {
		t.Fatalf("All returned %d keys", len(got))
	}
	// Early stop.
	count := 0
	m.AscendRange(interval.All[int](), func(k, v int) bool { count++; return false })
	if count != 1 {
		t.Fatalf("AscendRange early stop visited %d", count)
	}
}

// TestRandomizedAgainstMap drives random Put/Delete/Get against a Go map
// and checks invariants as the tree grows and shrinks through many splits
// and merges.
func TestRandomizedAgainstMap(t *testing.T) {
	for _, degree := range []int{3, 4, 8, 32} {
		rng := rand.New(rand.NewSource(int64(degree)))
		m := New[int, int](intCmp, Degree(degree))
		ref := map[int]int{}
		for op := 0; op < 4000; op++ {
			k := rng.Intn(300)
			switch rng.Intn(5) {
			case 0, 1, 2:
				v := rng.Int()
				_, wantReplace := ref[k]
				_, replaced := m.Put(k, v)
				if replaced != wantReplace {
					t.Fatalf("degree %d op %d: Put(%d) replaced=%v want %v", degree, op, k, replaced, wantReplace)
				}
				ref[k] = v
			case 3:
				_, wantOK := ref[k]
				_, removed := m.Delete(k)
				if removed != wantOK {
					t.Fatalf("degree %d op %d: Delete(%d) removed=%v want %v", degree, op, k, removed, wantOK)
				}
				delete(ref, k)
			default:
				wantV, wantOK := ref[k]
				v, ok := m.Get(k)
				if ok != wantOK || (ok && v != wantV) {
					t.Fatalf("degree %d op %d: Get(%d) = %d,%v want %d,%v", degree, op, k, v, ok, wantV, wantOK)
				}
			}
			if m.Len() != len(ref) {
				t.Fatalf("degree %d op %d: Len %d != %d", degree, op, m.Len(), len(ref))
			}
			if op%200 == 0 {
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("degree %d op %d: %v", degree, op, err)
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("degree %d final: %v", degree, err)
		}
		// Drain completely.
		keys := make([]int, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		for _, k := range keys {
			if _, removed := m.Delete(k); !removed {
				t.Fatalf("drain Delete(%d) failed", k)
			}
		}
		if m.Len() != 0 {
			t.Fatalf("degree %d: Len %d after drain", degree, m.Len())
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("degree %d after drain: %v", degree, err)
		}
	}
}

// Property: ascending iteration equals the sorted reference key set.
func TestQuickAscendMatchesSorted(t *testing.T) {
	f := func(keys []int16) bool {
		m := New[int, bool](intCmp, Degree(4))
		ref := map[int]bool{}
		for _, k16 := range keys {
			k := int(k16)
			m.Put(k, true)
			ref[k] = true
		}
		want := make([]int, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Ints(want)
		got := make([]int, 0, len(ref))
		m.Ascend(func(k int, _ bool) bool {
			got = append(got, k)
			return true
		})
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AscendRange equals filtering Ascend by interval membership.
func TestQuickAscendRangeMatchesFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(keys []int16, lo16, hi16 int16, shape uint8) bool {
		m := New[int, bool](intCmp, Degree(4))
		for _, k16 := range keys {
			m.Put(int(k16), true)
		}
		lo, hi := int(lo16), int(hi16)
		if lo > hi {
			lo, hi = hi, lo
		}
		var iv interval.Interval[int]
		switch shape % 6 {
		case 0:
			iv = interval.Closed(lo, hi)
		case 1:
			if lo == hi {
				iv = interval.Point(lo)
			} else {
				iv = interval.Open(lo, hi)
			}
		case 2:
			iv = interval.AtLeast(lo)
		case 3:
			iv = interval.AtMost(hi)
		case 4:
			iv = interval.Point(lo)
		default:
			iv = interval.All[int]()
		}
		var want []int
		m.Ascend(func(k int, _ bool) bool {
			if iv.Contains(intCmp, k) {
				want = append(want, k)
			}
			return true
		})
		var got []int
		m.AscendRange(iv, func(k int, _ bool) bool {
			got = append(got, k)
			return true
		})
		_ = rng
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringKeys(t *testing.T) {
	strCmp := func(a, b string) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	m := New[string, int](strCmp, Degree(3))
	words := []string{"pear", "apple", "fig", "date", "cherry", "banana", "grape"}
	for i, w := range words {
		m.Put(w, i)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	k, _, _ := m.Min()
	if k != "apple" {
		t.Fatalf("Min = %q", k)
	}
	var got []string
	m.AscendRange(interval.Closed("banana", "fig"), func(k string, _ int) bool {
		got = append(got, k)
		return true
	})
	if !reflect.DeepEqual(got, []string{"banana", "cherry", "date", "fig"}) {
		t.Fatalf("range = %v", got)
	}
}

func TestHas(t *testing.T) {
	m := New[int, int](intCmp)
	m.Put(5, 50)
	if !m.Has(5) || m.Has(6) {
		t.Fatal("Has wrong")
	}
}
