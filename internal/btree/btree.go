// Package btree implements an in-memory B+-tree ordered map with range
// scans. It is the storage-level attribute index of the relational
// substrate: the physical-locking baseline of the paper's Section 2.3
// plans index scans over these trees and attaches its interval locks to
// the key ranges they cover, and the storage engine uses them for
// secondary indexes and statistics maintenance.
//
// Keys are generic over any totally ordered domain (explicit comparator);
// leaves are chained for ordered iteration.
package btree

import (
	"fmt"

	"predmatch/internal/interval"
)

// Map is a B+-tree ordered map from K to V. The zero value is not usable;
// call New. Not safe for concurrent mutation.
type Map[K, V any] struct {
	cmp     interval.Cmp[K]
	maxKeys int
	root    *node[K, V]
	size    int
}

type node[K, V any] struct {
	leaf     bool
	keys     []K
	vals     []V           // leaves only
	children []*node[K, V] // internal only; len(children) == len(keys)+1
	next     *node[K, V]   // leaf chain
}

// Option configures a Map.
type Option func(*options)

type options struct{ maxKeys int }

// Degree sets the maximum number of keys per node (default 32, minimum 3).
func Degree(maxKeys int) Option {
	return func(o *options) {
		if maxKeys >= 3 {
			o.maxKeys = maxKeys
		}
	}
}

// New returns an empty map ordered by cmp.
func New[K, V any](cmp interval.Cmp[K], opts ...Option) *Map[K, V] {
	o := options{maxKeys: 32}
	for _, fn := range opts {
		fn(&o)
	}
	return &Map[K, V]{
		cmp:     cmp,
		maxKeys: o.maxKeys,
		root:    &node[K, V]{leaf: true},
	}
}

// Len returns the number of key/value pairs.
func (m *Map[K, V]) Len() int { return m.size }

// findChild returns the child index to descend into for key k: the
// number of separator keys <= k. Separator keys[i] is the smallest key
// reachable through children[i+1].
func (m *Map[K, V]) findChild(n *node[K, V], k K) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cmp(n.keys[mid], k) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findKey returns the position of k in a leaf and whether it is present.
func (m *Map[K, V]) findKey(n *node[K, V], k K) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.cmp(n.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(n.keys) && m.cmp(n.keys[lo], k) == 0
}

// Get returns the value stored under k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	n := m.root
	for !n.leaf {
		n = n.children[m.findChild(n, k)]
	}
	i, ok := m.findKey(n, k)
	if !ok {
		var zero V
		return zero, false
	}
	return n.vals[i], true
}

// Has reports whether k is present.
func (m *Map[K, V]) Has(k K) bool {
	_, ok := m.Get(k)
	return ok
}

// Put stores v under k, returning the previous value if one was replaced.
func (m *Map[K, V]) Put(k K, v V) (old V, replaced bool) {
	old, replaced = m.insert(m.root, k, v)
	if len(m.root.keys) > m.maxKeys {
		left := m.root
		sep, right := m.split(left)
		m.root = &node[K, V]{
			keys:     []K{sep},
			children: []*node[K, V]{left, right},
		}
	}
	if !replaced {
		m.size++
	}
	return old, replaced
}

func (m *Map[K, V]) insert(n *node[K, V], k K, v V) (old V, replaced bool) {
	if n.leaf {
		i, ok := m.findKey(n, k)
		if ok {
			old, n.vals[i] = n.vals[i], v
			return old, true
		}
		n.keys = append(n.keys, k)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.vals = append(n.vals, v)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		return old, false
	}
	ci := m.findChild(n, k)
	child := n.children[ci]
	old, replaced = m.insert(child, k, v)
	if len(child.keys) > m.maxKeys {
		sep, right := m.split(child)
		n.keys = append(n.keys, sep)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = right
	}
	return old, replaced
}

// split divides an overfull node, returning the separator key to promote
// and the new right sibling.
func (m *Map[K, V]) split(n *node[K, V]) (K, *node[K, V]) {
	mid := len(n.keys) / 2
	if n.leaf {
		right := &node[K, V]{
			leaf: true,
			keys: append([]K(nil), n.keys[mid:]...),
			vals: append([]V(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = right
		// For leaves the separator is copied up: the right sibling keeps it.
		return right.keys[0], right
	}
	sep := n.keys[mid]
	right := &node[K, V]{
		keys:     append([]K(nil), n.keys[mid+1:]...),
		children: append([]*node[K, V](nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes k, returning the removed value.
func (m *Map[K, V]) Delete(k K) (old V, removed bool) {
	old, removed = m.remove(m.root, k)
	if removed {
		m.size--
	}
	if !m.root.leaf && len(m.root.children) == 1 {
		m.root = m.root.children[0]
	}
	return old, removed
}

func (m *Map[K, V]) minKeys() int { return m.maxKeys / 2 }

func (m *Map[K, V]) remove(n *node[K, V], k K) (old V, removed bool) {
	if n.leaf {
		i, ok := m.findKey(n, k)
		if !ok {
			return old, false
		}
		old = n.vals[i]
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return old, true
	}
	ci := m.findChild(n, k)
	child := n.children[ci]
	old, removed = m.remove(child, k)
	if len(child.keys) < m.minKeys() {
		m.rebalanceChild(n, ci)
	}
	return old, removed
}

// rebalanceChild restores the minimum-occupancy invariant of
// n.children[ci] by borrowing from a sibling or merging with one.
func (m *Map[K, V]) rebalanceChild(n *node[K, V], ci int) {
	child := n.children[ci]
	// Try borrowing from the left sibling.
	if ci > 0 {
		left := n.children[ci-1]
		if len(left.keys) > m.minKeys() {
			if child.leaf {
				last := len(left.keys) - 1
				child.keys = append(child.keys, *new(K))
				copy(child.keys[1:], child.keys)
				child.keys[0] = left.keys[last]
				child.vals = append(child.vals, *new(V))
				copy(child.vals[1:], child.vals)
				child.vals[0] = left.vals[last]
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				n.keys[ci-1] = child.keys[0]
			} else {
				last := len(left.keys) - 1
				child.keys = append(child.keys, *new(K))
				copy(child.keys[1:], child.keys)
				child.keys[0] = n.keys[ci-1]
				n.keys[ci-1] = left.keys[last]
				child.children = append(child.children, nil)
				copy(child.children[1:], child.children)
				child.children[0] = left.children[len(left.children)-1]
				left.keys = left.keys[:last]
				left.children = left.children[:len(left.children)-1]
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(n.children)-1 {
		right := n.children[ci+1]
		if len(right.keys) > m.minKeys() {
			if child.leaf {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = append(right.keys[:0], right.keys[1:]...)
				right.vals = append(right.vals[:0], right.vals[1:]...)
				n.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[ci])
				n.keys[ci] = right.keys[0]
				child.children = append(child.children, right.children[0])
				right.keys = append(right.keys[:0], right.keys[1:]...)
				right.children = append(right.children[:0], right.children[1:]...)
			}
			return
		}
	}
	// Merge with a sibling.
	if ci > 0 {
		m.mergeChildren(n, ci-1)
	} else {
		m.mergeChildren(n, ci)
	}
}

// mergeChildren merges n.children[i+1] into n.children[i].
func (m *Map[K, V]) mergeChildren(n *node[K, V], i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Min returns the smallest key.
func (m *Map[K, V]) Min() (K, V, bool) {
	n := m.root
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		var k K
		var v V
		return k, v, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key.
func (m *Map[K, V]) Max() (K, V, bool) {
	n := m.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		var k K
		var v V
		return k, v, false
	}
	last := len(n.keys) - 1
	return n.keys[last], n.vals[last], true
}

// Ascend calls fn for every pair in ascending key order until fn returns
// false.
func (m *Map[K, V]) Ascend(fn func(K, V) bool) {
	n := m.root
	for !n.leaf {
		n = n.children[0]
	}
	for ; n != nil; n = n.next {
		for i, k := range n.keys {
			if !fn(k, n.vals[i]) {
				return
			}
		}
	}
}

// AscendRange calls fn, in ascending key order, for every pair whose key
// lies within iv (honoring open/closed/unbounded ends) until fn returns
// false. This is the index scan of the physical-locking baseline.
func (m *Map[K, V]) AscendRange(iv interval.Interval[K], fn func(K, V) bool) {
	// Seek the first leaf that can contain an in-range key.
	n := m.root
	if iv.Lo.Kind == interval.Finite {
		for !n.leaf {
			n = n.children[m.findChild(n, iv.Lo.Value)]
		}
	} else {
		for !n.leaf {
			n = n.children[0]
		}
	}
	for ; n != nil; n = n.next {
		for i, k := range n.keys {
			if !iv.AboveLo(m.cmp, k) {
				continue
			}
			if !iv.BelowHi(m.cmp, k) {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
	}
}

// CheckInvariants verifies structural invariants; it is exported for
// tests. It checks key ordering within and across nodes, child counts,
// minimum occupancy of non-root nodes, uniform leaf depth, the leaf
// chain, and the size count.
func (m *Map[K, V]) CheckInvariants() error {
	if m.root == nil {
		return fmt.Errorf("btree: nil root")
	}
	counted := 0
	var leafDepth = -1
	var walk func(n *node[K, V], depth int, lo, hi *K) error
	walk = func(n *node[K, V], depth int, lo, hi *K) error {
		for i := 1; i < len(n.keys); i++ {
			if m.cmp(n.keys[i-1], n.keys[i]) >= 0 {
				return fmt.Errorf("btree: keys out of order at depth %d", depth)
			}
		}
		for _, k := range n.keys {
			if lo != nil && m.cmp(k, *lo) < 0 {
				return fmt.Errorf("btree: key below subtree bound")
			}
			if hi != nil && m.cmp(k, *hi) >= 0 {
				return fmt.Errorf("btree: key above subtree bound")
			}
		}
		if n != m.root && len(n.keys) < m.minKeys() {
			return fmt.Errorf("btree: underfull node (%d keys) at depth %d", len(n.keys), depth)
		}
		if len(n.keys) > m.maxKeys {
			return fmt.Errorf("btree: overfull node (%d keys)", len(n.keys))
		}
		if n.leaf {
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("btree: leaf vals/keys length mismatch")
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at differing depths %d and %d", leafDepth, depth)
			}
			counted += len(n.keys)
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: internal node with %d keys and %d children", len(n.keys), len(n.children))
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = &n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = &n.keys[i]
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(m.root, 0, nil, nil); err != nil {
		return err
	}
	if counted != m.size {
		return fmt.Errorf("btree: size %d but %d keys found", m.size, counted)
	}
	// Leaf chain must enumerate all keys in order.
	chained := 0
	var prev *K
	n := m.root
	for !n.leaf {
		n = n.children[0]
	}
	for ; n != nil; n = n.next {
		for i := range n.keys {
			if prev != nil && m.cmp(*prev, n.keys[i]) >= 0 {
				return fmt.Errorf("btree: leaf chain out of order")
			}
			prev = &n.keys[i]
			chained++
		}
	}
	if chained != m.size {
		return fmt.Errorf("btree: leaf chain has %d keys, size is %d", chained, m.size)
	}
	return nil
}
