package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

func setup(t *testing.T, indexAge, indexDept bool) (*storage.DB, *storage.Table) {
	t.Helper()
	db := storage.NewDB()
	rel := schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "dept", Type: value.KindString},
	)
	tab, err := db.CreateRelation(rel)
	if err != nil {
		t.Fatal(err)
	}
	if indexAge {
		if err := tab.CreateIndex("age"); err != nil {
			t.Fatal(err)
		}
	}
	if indexDept {
		if err := tab.CreateIndex("dept"); err != nil {
			t.Fatal(err)
		}
	}
	depts := []string{"a", "b"}
	for i := int64(0); i < 100; i++ {
		_, err := tab.Insert(tuple.New(
			value.String_(fmt.Sprintf("e%d", i)),
			value.Int(i),
			value.String_(depts[i%2]),
		))
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, tab
}

func TestPlanChoosesMostSelectiveIndexedClause(t *testing.T) {
	db, _ := setup(t, true, true)
	// age = 7 selects 1/100; dept = 'a' selects 1/2. Both indexed.
	p := pred.New(1, "emp",
		pred.EqClause("dept", value.String_("a")),
		pred.EqClause("age", value.Int(7)),
	)
	plan, err := PlanFor(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != IndexScan || plan.Attr != "age" {
		t.Fatalf("plan = %v, want index scan on age", plan)
	}
	if plan.Selectivity > 0.02 {
		t.Fatalf("selectivity = %v", plan.Selectivity)
	}
}

func TestPlanFallsBackToSeqScan(t *testing.T) {
	db, _ := setup(t, false, false)
	p := pred.New(1, "emp", pred.EqClause("age", value.Int(7)))
	plan, err := PlanFor(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Access != SeqScan {
		t.Fatalf("plan = %v, want sequential scan", plan)
	}
	// Function-only predicates also scan sequentially.
	pf := pred.New(2, "emp", pred.FnClause("age", "isodd"))
	plan, _ = PlanFor(db, pf)
	if plan.Access != SeqScan {
		t.Fatalf("fn plan = %v", plan)
	}
	if plan.String() == "" || IndexScan.String() == "" || SeqScan.String() == "" {
		t.Fatal("String renderings empty")
	}
}

func TestRunBothPathsAgree(t *testing.T) {
	funcs := pred.NewRegistry()
	mk := func() *pred.Predicate {
		return pred.New(1, "emp",
			pred.IvClause("age", interval.Closed(value.Int(20), value.Int(40))),
			pred.EqClause("dept", value.String_("a")),
		)
	}
	dbIdx, _ := setup(t, true, false)
	dbSeq, _ := setup(t, false, false)

	rIdx, planIdx, err := Run(dbIdx, mk(), funcs)
	if err != nil {
		t.Fatal(err)
	}
	if planIdx.Access != IndexScan {
		t.Fatalf("expected index scan, got %v", planIdx)
	}
	rSeq, planSeq, err := Run(dbSeq, mk(), funcs)
	if err != nil {
		t.Fatal(err)
	}
	if planSeq.Access != SeqScan {
		t.Fatalf("expected seq scan, got %v", planSeq)
	}
	if !reflect.DeepEqual(rIdx, rSeq) {
		t.Fatalf("paths disagree: %d vs %d results", len(rIdx), len(rSeq))
	}
	// ages 20..40 even (dept a): 20,22,...,40 = 11 tuples.
	if len(rIdx) != 11 {
		t.Fatalf("results = %d, want 11", len(rIdx))
	}
	for i := 1; i < len(rIdx); i++ {
		if rIdx[i-1].ID >= rIdx[i].ID {
			t.Fatal("results not ordered by id")
		}
	}
}

func TestRunErrors(t *testing.T) {
	db := storage.NewDB()
	funcs := pred.NewRegistry()
	if _, _, err := Run(db, pred.New(1, "nosuch"), funcs); err == nil {
		t.Error("unknown relation accepted")
	}
	db2, _ := setup(t, false, false)
	bad := pred.New(1, "emp", pred.FnClause("age", "nosuchfn"))
	if _, _, err := Run(db2, bad, funcs); err == nil {
		t.Error("unknown function accepted")
	}
}

// TestRandomizedAgainstFilter cross-checks Run against a direct filter
// over random predicates and data, with and without indexes.
func TestRandomizedAgainstFilter(t *testing.T) {
	funcs := pred.NewRegistry()
	for _, indexed := range []bool{false, true} {
		db, tab := setup(t, indexed, indexed)
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 50; trial++ {
			lo := rng.Int63n(100)
			hi := lo + rng.Int63n(40)
			p := pred.New(1, "emp",
				pred.IvClause("age", interval.Closed(value.Int(lo), value.Int(hi))))
			got, _, err := Run(db, p, funcs)
			if err != nil {
				t.Fatal(err)
			}
			b, _ := p.Bind(db.Catalog(), funcs)
			want := 0
			tab.Scan(func(_ tuple.ID, tp tuple.Tuple) bool {
				if b.Match(tp) {
					want++
				}
				return true
			})
			if len(got) != want {
				t.Fatalf("indexed=%v trial %d: %d results, want %d", indexed, trial, len(got), want)
			}
		}
	}
}
