package query_test

import (
	"fmt"

	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/query"
	"predmatch/internal/schema"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Example plans and runs a selection query: with a secondary index on
// age, the optimizer picks an index scan driven by the most selective
// clause.
func Example() {
	db := storage.NewDB()
	tab, _ := db.CreateRelation(schema.MustRelation("emp",
		schema.Attribute{Name: "name", Type: value.KindString},
		schema.Attribute{Name: "age", Type: value.KindInt}))
	_ = tab.CreateIndex("age")
	for i := int64(0); i < 50; i++ {
		_, _ = tab.Insert(tuple.New(value.String_(fmt.Sprintf("e%d", i)), value.Int(20+i)))
	}

	p := pred.New(1, "emp",
		pred.IvClause("age", interval.Closed(value.Int(30), value.Int(32))))
	results, plan, _ := query.Run(db, p, pred.NewRegistry())
	fmt.Println(plan.Access, len(results))
	// Output: index scan 3
}
