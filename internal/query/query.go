// Package query is a minimal single-relation query executor with System
// R style access-path selection (Selinger et al. 1979, the optimizer the
// paper's physical-locking baseline runs predicates through): given a
// selection predicate, it chooses between a secondary-index scan on the
// predicate's most selective indexed clause and a sequential scan, and
// returns the qualifying tuples.
//
// The rule system uses this machinery indirectly (internal/phylock plans
// its lock placement the same way); the query package exposes it
// directly for applications and for the script language's "select"
// statement.
package query

import (
	"fmt"
	"sort"

	"predmatch/internal/pred"
	"predmatch/internal/selectivity"
	"predmatch/internal/storage"
	"predmatch/internal/tuple"
)

// Access enumerates access paths.
type Access uint8

const (
	// SeqScan reads every tuple of the relation.
	SeqScan Access = iota
	// IndexScan reads the range of a secondary index covering the
	// predicate's chosen clause.
	IndexScan
)

// String names the access path.
func (a Access) String() string {
	if a == IndexScan {
		return "index scan"
	}
	return "sequential scan"
}

// Plan is a chosen access path for one predicate.
type Plan struct {
	Rel    string
	Access Access
	// Attr and Clause identify the index clause driving an IndexScan.
	Attr   string
	Clause int
	// Selectivity is the estimated fraction of tuples the driving
	// clause passes (1 for a sequential scan).
	Selectivity float64
}

// String renders the plan.
func (p Plan) String() string {
	if p.Access == IndexScan {
		return fmt.Sprintf("index scan on %s.%s (est. selectivity %.3f)", p.Rel, p.Attr, p.Selectivity)
	}
	return fmt.Sprintf("sequential scan on %s", p.Rel)
}

// Result is one qualifying tuple.
type Result struct {
	ID    tuple.ID
	Tuple tuple.Tuple
}

// PlanFor chooses the access path for p over db: the most selective
// indexable clause whose attribute carries a secondary index, else a
// sequential scan (the decision the paper's Section 2.3 calls "running
// the standard query optimizer to produce an access plan").
func PlanFor(db *storage.DB, p *pred.Predicate) (Plan, error) {
	table, ok := db.Table(p.Rel)
	if !ok {
		return Plan{}, fmt.Errorf("query: unknown relation %q", p.Rel)
	}
	est := selectivity.FromStats{DB: db}
	plan := Plan{Rel: p.Rel, Access: SeqScan, Clause: -1, Selectivity: 1}
	for i, c := range p.Clauses {
		if !c.Indexable() || !table.HasIndex(c.Attr) {
			continue
		}
		if sel := est.Selectivity(p.Rel, c); sel < plan.Selectivity {
			plan.Access = IndexScan
			plan.Attr = c.Attr
			plan.Clause = i
			plan.Selectivity = sel
		}
	}
	return plan, nil
}

// Run executes p over db using the chosen plan and returns the
// qualifying tuples ordered by tuple ID (for determinism).
func Run(db *storage.DB, p *pred.Predicate, funcs *pred.Registry) ([]Result, Plan, error) {
	plan, err := PlanFor(db, p)
	if err != nil {
		return nil, plan, err
	}
	b, err := p.Bind(db.Catalog(), funcs)
	if err != nil {
		return nil, plan, err
	}
	table, _ := db.Table(p.Rel)

	var out []Result
	if plan.Access == IndexScan {
		c := p.Clauses[plan.Clause]
		table.ScanIndex(c.Attr, c.Iv, func(id tuple.ID, t tuple.Tuple) bool {
			if b.MatchSkipping(t, plan.Clause) {
				out = append(out, Result{ID: id, Tuple: t})
			}
			return true
		})
	} else {
		table.Scan(func(id tuple.ID, t tuple.Tuple) bool {
			if b.Match(t) {
				out = append(out, Result{ID: id, Tuple: t})
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, plan, nil
}
