package inttree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/ivindex"
	"predmatch/internal/markset"
)

func TestStabAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ref := map[markset.ID]interval.Interval[int64]{}
		var items []Item[int64]
		for i := 0; i < 120; i++ {
			iv := ivindex.RandomInterval(rng, 100, true)
			items = append(items, Item[int64]{ID: markset.ID(i), Iv: iv})
			ref[markset.ID(i)] = iv
		}
		tr := Build(ivindex.Int64Cmp, items)
		if tr.Len() != len(ref) {
			t.Fatalf("Len = %d", tr.Len())
		}
		for x := int64(-5); x <= 105; x++ {
			got := tr.Stab(x)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			var want []markset.ID
			for id, iv := range ref {
				if iv.Contains(ivindex.Int64Cmp, x) {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d: Stab(%d) = %v, want %v", seed, x, got, want)
			}
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := Build[int64](ivindex.Int64Cmp, nil).Stab(5); len(got) != 0 {
		t.Fatalf("empty Stab = %v", got)
	}
	tr := Build(ivindex.Int64Cmp, []Item[int64]{{ID: 9, Iv: interval.OpenClosed[int64](3, 9)}})
	cases := map[int64]int{3: 0, 4: 1, 9: 1, 10: 0}
	for x, n := range cases {
		if got := tr.Stab(x); len(got) != n {
			t.Errorf("Stab(%d) = %v, want %d ids", x, got, n)
		}
	}
}

// TestOpenBoundTouchingCenter covers the construction subtlety: an
// interval touching the median endpoint with an open bound must still be
// stored and must terminate construction (the [1,5) at center 5 case).
func TestOpenBoundTouchingCenter(t *testing.T) {
	tr := Build(ivindex.Int64Cmp, []Item[int64]{{ID: 1, Iv: interval.ClosedOpen[int64](1, 5)}})
	if got := tr.Stab(4); len(got) != 1 {
		t.Fatalf("Stab(4) = %v", got)
	}
	if got := tr.Stab(5); len(got) != 0 {
		t.Fatalf("Stab(5) = %v", got)
	}
	// Nested open-bound pile-up.
	var items []Item[int64]
	for i := int64(0); i < 20; i++ {
		items = append(items, Item[int64]{ID: markset.ID(i), Iv: interval.Open(i, 40-i)})
	}
	tr = Build(ivindex.Int64Cmp, items)
	got := tr.Stab(20)
	if len(got) != 20 {
		t.Fatalf("Stab(20) found %d of 20 nested intervals", len(got))
	}
}

func TestUnboundedEverywhere(t *testing.T) {
	tr := Build(ivindex.Int64Cmp, []Item[int64]{
		{ID: 1, Iv: interval.All[int64]()},
		{ID: 2, Iv: interval.AtLeast[int64](50)},
		{ID: 3, Iv: interval.Less[int64](10)},
	})
	check := func(x int64, want []markset.ID) {
		t.Helper()
		got := tr.Stab(x)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Stab(%d) = %v, want %v", x, got, want)
		}
	}
	check(-100, []markset.ID{1, 3})
	check(9, []markset.ID{1, 3})
	check(10, []markset.ID{1})
	check(50, []markset.ID{1, 2})
	check(1000, []markset.ID{1, 2})
}

func TestSkipsInvalid(t *testing.T) {
	tr := Build(ivindex.Int64Cmp, []Item[int64]{
		{ID: 1, Iv: interval.Closed[int64](5, 1)},
		{ID: 2, Iv: interval.Point[int64](3)},
	})
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Stab(3); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Stab(3) = %v", got)
	}
}
