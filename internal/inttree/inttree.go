// Package inttree implements a static centered interval tree
// (Edelsbrunner/McCreight; surveyed in Samet 1988/1990, the references
// the paper cites for static interval indexing). Like the segment tree,
// it is build-once — the IBS-tree's reason for existing is that these
// classic structures "do not allow dynamic insertion and deletion of
// predicates".
//
// Each node holds a center value, the intervals overlapping the center
// (stored twice: sorted by ascending lower bound and by descending upper
// bound), and subtrees for the intervals lying entirely below and above
// the center. A stabbing query at x descends from the root: at each node
// it scans the appropriate sorted list, stopping at the first interval
// that can no longer contain x, giving O(log N + L).
package inttree

import (
	"sort"

	"predmatch/internal/interval"
	"predmatch/internal/markset"
)

// ID identifies an interval.
type ID = markset.ID

// Item is one input interval.
type Item[T any] struct {
	ID ID
	Iv interval.Interval[T]
}

// Tree is an immutable centered interval tree.
type Tree[T any] struct {
	cmp  interval.Cmp[T]
	root *node[T]
	n    int
}

type node[T any] struct {
	center      T
	byLo        []Item[T] // overlapping center, ascending lower bound
	byHi        []Item[T] // overlapping center, descending upper bound
	left, right *node[T]
}

// Build constructs the tree over items. Intervals failing validation are
// skipped.
func Build[T any](cmp interval.Cmp[T], items []Item[T]) *Tree[T] {
	t := &Tree[T]{cmp: cmp}
	valid := items[:0:0]
	for _, it := range items {
		if it.Iv.Validate(cmp) == nil {
			valid = append(valid, it)
		}
	}
	t.n = len(valid)
	t.root = t.build(valid)
	return t
}

// Len returns the number of stored intervals.
func (t *Tree[T]) Len() int { return t.n }

// build recursively constructs a subtree over items.
func (t *Tree[T]) build(items []Item[T]) *node[T] {
	if len(items) == 0 {
		return nil
	}
	// Center: median of all finite endpoints. Intervals unbounded on both
	// sides overlap any center.
	var pts []T
	for _, it := range items {
		if it.Iv.Lo.Kind == interval.Finite {
			pts = append(pts, it.Iv.Lo.Value)
		}
		if it.Iv.Hi.Kind == interval.Finite {
			pts = append(pts, it.Iv.Hi.Value)
		}
	}
	var center T
	if len(pts) > 0 {
		sort.Slice(pts, func(i, j int) bool { return t.cmp(pts[i], pts[j]) < 0 })
		center = pts[len(pts)/2]
	}
	n := &node[T]{center: center}
	var below, above []Item[T]
	for _, it := range items {
		switch {
		case strictlyBelow(t.cmp, it.Iv, center):
			below = append(below, it)
		case strictlyAbove(t.cmp, it.Iv, center):
			above = append(above, it)
		default:
			n.byLo = append(n.byLo, it)
		}
	}
	n.byHi = append(n.byHi, n.byLo...)
	sort.SliceStable(n.byLo, func(i, j int) bool {
		return cmpLo(t.cmp, n.byLo[i].Iv.Lo, n.byLo[j].Iv.Lo) < 0
	})
	sort.SliceStable(n.byHi, func(i, j int) bool {
		return cmpHi(t.cmp, n.byHi[i].Iv.Hi, n.byHi[j].Iv.Hi) > 0
	})
	// Guard against degenerate non-progress (all items stuck at a node is
	// fine; recursion only continues on strictly smaller partitions).
	n.left = t.build(below)
	n.right = t.build(above)
	return n
}

// strictlyBelow reports that the interval's upper endpoint value lies
// below center. Intervals merely touching the center with an open bound
// (e.g. [1,5) at center 5) deliberately stay at the node: that keeps the
// recursion strictly shrinking (the median endpoint value is always some
// stored item's endpoint) and remains correct for the scan order, since
// for any query x < center such an interval still satisfies x < hi.
func strictlyBelow[T any](cmp interval.Cmp[T], iv interval.Interval[T], center T) bool {
	return iv.Hi.Kind == interval.Finite && cmp(iv.Hi.Value, center) < 0
}

// strictlyAbove is the mirror of strictlyBelow.
func strictlyAbove[T any](cmp interval.Cmp[T], iv interval.Interval[T], center T) bool {
	return iv.Lo.Kind == interval.Finite && cmp(iv.Lo.Value, center) > 0
}

// cmpLo orders lower bounds ascending (-inf first).
func cmpLo[T any](cmp interval.Cmp[T], a, b interval.Bound[T]) int {
	ai, bi := a.Kind == interval.NegInf, b.Kind == interval.NegInf
	switch {
	case ai && bi:
		return 0
	case ai:
		return -1
	case bi:
		return 1
	}
	if c := cmp(a.Value, b.Value); c != 0 {
		return c
	}
	switch {
	case a.Closed == b.Closed:
		return 0
	case a.Closed:
		return -1
	default:
		return 1
	}
}

// cmpHi orders upper bounds ascending (+inf last).
func cmpHi[T any](cmp interval.Cmp[T], a, b interval.Bound[T]) int {
	ai, bi := a.Kind == interval.PosInf, b.Kind == interval.PosInf
	switch {
	case ai && bi:
		return 0
	case ai:
		return 1
	case bi:
		return -1
	}
	if c := cmp(a.Value, b.Value); c != 0 {
		return c
	}
	switch {
	case a.Closed == b.Closed:
		return 0
	case a.Closed:
		return 1
	default:
		return -1
	}
}

// Stab returns the ids of all intervals containing x.
func (t *Tree[T]) Stab(x T) []ID { return t.StabAppend(x, nil) }

// StabAppend appends the ids of all intervals containing x to dst.
func (t *Tree[T]) StabAppend(x T, dst []ID) []ID {
	n := t.root
	for n != nil {
		c := t.cmp(x, n.center)
		switch {
		case c < 0:
			// Only intervals whose lower bound admits x can contain it;
			// byLo is sorted ascending, so stop at the first failure.
			for _, it := range n.byLo {
				if loAbove(t.cmp, it.Iv.Lo, x) {
					break
				}
				dst = append(dst, it.ID)
			}
			n = n.left
		case c > 0:
			for _, it := range n.byHi {
				if !hiReaches(t.cmp, it.Iv.Hi, x) {
					break
				}
				dst = append(dst, it.ID)
			}
			n = n.right
		default:
			// x is the center: every stored interval overlaps it, except
			// those touching it with an open bound.
			for _, it := range n.byLo {
				if it.Iv.Contains(t.cmp, x) {
					dst = append(dst, it.ID)
				}
			}
			return dst
		}
	}
	return dst
}

// hiReaches reports x <= hi.
func hiReaches[T any](cmp interval.Cmp[T], hi interval.Bound[T], x T) bool {
	if hi.Kind == interval.PosInf {
		return true
	}
	c := cmp(x, hi.Value)
	if c == 0 {
		return hi.Closed
	}
	return c < 0
}

// loAbove reports lo > x.
func loAbove[T any](cmp interval.Cmp[T], lo interval.Bound[T], x T) bool {
	if lo.Kind == interval.NegInf {
		return false
	}
	c := cmp(lo.Value, x)
	if c == 0 {
		return !lo.Closed
	}
	return c > 0
}
