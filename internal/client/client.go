// Package client is the Go library for predmatchd, the rule-service
// daemon of internal/server. It speaks the newline-delimited JSON
// protocol of internal/wire: requests are correlated to responses by
// ID, and subscription notifications arrive asynchronously on the
// channel returned by Subscribe.
//
// A Client is safe for concurrent use; calls from multiple goroutines
// are multiplexed over the single connection.
package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/wire"
)

// ErrClosed is returned by calls on a closed client.
var ErrClosed = errors.New("client: connection closed")

// Notification is one subscription event. For rule firings Rule is set;
// for direct-predicate matches Rule is empty and Matches carries the
// matching predicate IDs. Seq numbers every notification the server
// generated for this subscription — a gap means the server's overflow
// policy dropped the missing ones (Dropped is the cumulative count at
// the time this notification was generated).
type Notification struct {
	Seq      uint64
	Rule     string
	Relation string
	Op       string
	TupleID  int64
	Tuple    []any
	Matches  []pred.ID
	Depth    int
	Dropped  uint64
}

// Option configures a Client.
type Option func(*Client)

// WithTimeout bounds each request round trip (default 10s).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithNotifyBuffer sets the notification channel capacity (default
// 1024). If the application stops draining the channel, the client's
// read loop blocks — and the server's per-connection overflow policy
// starts dropping, which is the designed backpressure path.
func WithNotifyBuffer(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.notifyCap = n
		}
	}
}

// Client is one connection to a predmatchd server.
type Client struct {
	nc        net.Conn
	timeout   time.Duration
	notifyCap int

	writeMu sync.Mutex
	enc     *json.Encoder

	mu      sync.Mutex
	nextID  uint64                       // guarded-by: mu
	pending map[uint64]chan wire.Message // guarded-by: mu
	err     error                        // guarded-by: mu (terminal connection error, set once)
	closed  bool                         // guarded-by: mu
	// nextTrace is the trace context armed by TraceNext, attached to
	// (and cleared by) the next request this client sends.
	nextTrace *wire.TraceContext // guarded-by: mu

	notifyMu sync.Mutex
	notify   chan Notification // guarded-by: notifyMu

	// lastSeq is the highest WAL sequence acked to this client (the
	// read-your-writes token; see LastSeq).
	lastSeq atomic.Uint64

	// dying is closed when the connection is marked dead, unblocking a
	// read loop stuck delivering to an undrained notification channel.
	dying      chan struct{}
	readerDone chan struct{}
}

// Dial connects and verifies liveness with a ping.
func Dial(addr string, opts ...Option) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:         nc,
		timeout:    10 * time.Second,
		notifyCap:  1024,
		enc:        json.NewEncoder(nc),
		nextID:     1,
		pending:    make(map[uint64]chan wire.Message),
		dying:      make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	go c.readLoop()
	if _, err := c.call(&wire.Request{Op: wire.OpPing}); err != nil {
		c.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	return c, nil
}

// Close tears the connection down; pending calls fail with ErrClosed
// and the notification channel (if any) is closed.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	err := c.nc.Close()
	<-c.readerDone
	return err
}

// Err returns the terminal connection error, or nil while the
// connection is healthy.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == ErrClosed && c.closed {
		return nil // deliberate Close, not a failure
	}
	return c.err
}

// fail marks the connection dead and unblocks every pending call.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		if errors.Is(err, ErrClosed) {
			c.closed = true
		}
		close(c.dying)
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// readLoop decodes server frames, routing responses to pending calls
// and notifications to the subscription channel.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	sc := bufio.NewScanner(c.nc)
	sc.Buffer(make([]byte, 0, 4096), wire.MaxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var m wire.Message
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		if err := dec.Decode(&m); err != nil {
			c.fail(fmt.Errorf("client: bad server frame: %w", err))
			c.nc.Close()
			return
		}
		switch m.Type {
		case wire.TypeNotify:
			c.notifyMu.Lock()
			ch := c.notify
			c.notifyMu.Unlock()
			if ch != nil {
				n := Notification{
					Seq:      m.Seq,
					Rule:     m.Rule,
					Relation: m.Relation,
					Op:       m.EventOp,
					TupleID:  m.EventID,
					Tuple:    m.Tuple,
					Matches:  wire.ToIDs(m.Matches),
					Depth:    m.Depth,
					Dropped:  m.Dropped,
				}
				// Block on a full channel (the application's
				// backpressure) but never past connection death, so
				// Close always completes.
				select {
				case ch <- n:
				case <-c.dying:
				}
			}
		case wire.TypeRepl:
			// Replication stream frames; a Client never sends the replicate
			// op (internal/repl speaks the stream directly), so drop them.
		case wire.TypeResponse:
			if m.ID == 0 {
				// Unsolicited server error (e.g. connection-limit
				// rejection): terminal.
				c.fail(fmt.Errorf("client: server error: %s", m.Error))
				c.nc.Close()
				return
			}
			c.mu.Lock()
			ch := c.pending[m.ID]
			delete(c.pending, m.ID)
			c.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		}
	}
	err := sc.Err()
	if err == nil {
		err = ErrClosed
	}
	c.fail(err)
	c.notifyMu.Lock()
	if c.notify != nil {
		close(c.notify)
		c.notify = nil
	}
	c.notifyMu.Unlock()
}

// call sends one request and waits for its response or the timeout.
func (c *Client) call(req *wire.Request) (*wire.Message, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	req.ID = c.nextID
	c.nextID++
	if c.nextTrace != nil && req.Trace == nil {
		req.Trace = c.nextTrace
		c.nextTrace = nil
	}
	ch := make(chan wire.Message, 1)
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	c.nc.SetWriteDeadline(time.Now().Add(c.timeout))
	err := c.enc.Encode(req)
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		c.fail(err)
		c.nc.Close()
		return nil, err
	}

	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		if s := m.WalSeq; s > 0 {
			// Atomic max: acks can complete out of order across goroutines.
			for {
				old := c.lastSeq.Load()
				if s <= old || c.lastSeq.CompareAndSwap(old, s) {
					break
				}
			}
		}
		if m.Error != "" {
			return &m, fmt.Errorf("client: %s", m.Error)
		}
		return &m, nil
	case <-timer.C:
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("client: %s request timed out after %v", req.Op, c.timeout)
	}
}

// TraceNext arms a trace context for the next request this client
// sends: the server joins the given trace (tracing the request end to
// end regardless of its own sampling) and echoes the id on the
// response. Use a fresh id per request; the armed context applies to
// exactly one call. Safe for the usual client pattern of one goroutine
// per client; with concurrent callers, which call picks the context up
// is unspecified (but exactly one does).
func (c *Client) TraceNext(tc *wire.TraceContext) {
	c.mu.Lock()
	c.nextTrace = tc
	c.mu.Unlock()
}

// Ping checks server liveness.
func (c *Client) Ping() error {
	_, err := c.call(&wire.Request{Op: wire.OpPing})
	return err
}

// DeclareRelation declares a relation schema on the server.
func (c *Client) DeclareRelation(rel *schema.Relation) error {
	attrs := make([]wire.Attr, 0, rel.Arity())
	for _, a := range rel.Attrs() {
		attrs = append(attrs, wire.Attr{Name: a.Name, Type: a.Type.String()})
	}
	_, err := c.call(&wire.Request{Op: wire.OpDeclare, Relation: rel.Name(), Attrs: attrs})
	return err
}

// CreateIndex builds a secondary storage index on rel.attr.
func (c *Client) CreateIndex(rel, attr string) error {
	_, err := c.call(&wire.Request{Op: wire.OpIndex, Relation: rel, Attr: attr})
	return err
}

// DefineRule registers a rule from source text (the cmd/predmatch rule
// grammar) and returns the parsed rule name.
func (c *Client) DefineRule(source string) (string, error) {
	m, err := c.call(&wire.Request{Op: wire.OpRule, Source: source})
	if err != nil {
		return "", err
	}
	return m.Name, nil
}

// DropRule removes a rule by name.
func (c *Client) DropRule(name string) error {
	_, err := c.call(&wire.Request{Op: wire.OpDropRule, Name: name})
	return err
}

// AddPredicate registers a bare predicate (p.ID is ignored) and returns
// the server-assigned ID.
func (c *Client) AddPredicate(p *pred.Predicate) (pred.ID, error) {
	m, err := c.call(&wire.Request{Op: wire.OpAddPred, Pred: wire.FromPredicate(p)})
	if err != nil {
		return 0, err
	}
	return pred.ID(m.PredID), nil
}

// RemovePredicate unregisters a predicate added with AddPredicate.
func (c *Client) RemovePredicate(id pred.ID) error {
	_, err := c.call(&wire.Request{Op: wire.OpRemovePred, PredID: int64(id)})
	return err
}

// Insert adds a tuple, returning its ID and how many rules fired.
func (c *Client) Insert(rel string, t tuple.Tuple) (tuple.ID, int, error) {
	m, err := c.call(&wire.Request{Op: wire.OpInsert, Relation: rel, Tuple: wire.FromTuple(t)})
	if err != nil {
		return 0, 0, err
	}
	return tuple.ID(m.TupleID), m.Firings, nil
}

// Update replaces the tuple stored under id, returning the rule firing
// count.
func (c *Client) Update(rel string, id tuple.ID, t tuple.Tuple) (int, error) {
	m, err := c.call(&wire.Request{Op: wire.OpUpdate, Relation: rel, TupleID: int64(id), Tuple: wire.FromTuple(t)})
	if err != nil {
		return 0, err
	}
	return m.Firings, nil
}

// Delete removes the tuple stored under id, returning the rule firing
// count.
func (c *Client) Delete(rel string, id tuple.ID) (int, error) {
	m, err := c.call(&wire.Request{Op: wire.OpDelete, Relation: rel, TupleID: int64(id)})
	if err != nil {
		return 0, err
	}
	return m.Firings, nil
}

// Match returns the IDs of all predicates matching the tuple, without
// touching storage.
func (c *Client) Match(rel string, t tuple.Tuple) ([]pred.ID, error) {
	return c.MatchAt(rel, t, 0)
}

// MatchAt is Match carrying a read-your-writes token: the server
// answers only once its applied state covers WAL sequence minSeq (a
// follower waits up to its configured bound, then fails with a leader
// redirect). Use LastSeq as the token to read your own acked writes
// from any replica; minSeq 0 is a plain Match.
func (c *Client) MatchAt(rel string, t tuple.Tuple, minSeq uint64) ([]pred.ID, error) {
	m, err := c.call(&wire.Request{
		Op: wire.OpMatch, Relation: rel, Tuple: wire.FromTuple(t), MinSeq: minSeq,
	})
	if err != nil {
		return nil, err
	}
	return wire.ToIDs(m.Matches), nil
}

// MatchBatch matches a batch of tuples against one index snapshot.
func (c *Client) MatchBatch(rel string, tuples []tuple.Tuple) ([][]pred.ID, error) {
	raw := make([][]any, len(tuples))
	for i, t := range tuples {
		raw[i] = wire.FromTuple(t)
	}
	m, err := c.call(&wire.Request{Op: wire.OpMatchBatch, Relation: rel, Tuples: raw})
	if err != nil {
		return nil, err
	}
	out := make([][]pred.ID, len(m.Batch))
	for i, ids := range m.Batch {
		out[i] = wire.ToIDs(ids)
	}
	return out, nil
}

// Subscribe starts the notification stream. rules filters by rule name
// (none = all rules); preds additionally streams direct-predicate
// matches. The returned channel is closed when the connection ends.
func (c *Client) Subscribe(preds bool, rules ...string) (<-chan Notification, error) {
	c.notifyMu.Lock()
	if c.notify == nil {
		c.notify = make(chan Notification, c.notifyCap)
	}
	ch := c.notify
	c.notifyMu.Unlock()
	if _, err := c.call(&wire.Request{Op: wire.OpSubscribe, Rules: rules, Preds: preds}); err != nil {
		return nil, err
	}
	return ch, nil
}

// Unsubscribe stops the stream, reporting the total notifications the
// server generated for the subscription and how many it dropped.
// Notifications already queued may still arrive afterwards.
func (c *Client) Unsubscribe() (generated, dropped uint64, err error) {
	m, err := c.call(&wire.Request{Op: wire.OpUnsubscribe})
	if err != nil {
		return 0, 0, err
	}
	return m.Seq, m.Dropped, nil
}

// Stats fetches server statistics.
func (c *Client) Stats() (*wire.Stats, error) {
	m, err := c.call(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return nil, err
	}
	return m.Stats, nil
}

// LastSeq returns the highest WAL sequence any mutation or DDL ack on
// this client has carried — the client's read-your-writes token. It is
// 0 against a server without a data directory (nothing is sequenced).
func (c *Client) LastSeq() uint64 { return c.lastSeq.Load() }

// Promote turns the follower this client is connected to into a
// leader: the replication stream is sealed and the server starts
// accepting mutations, continuing the leader's WAL sequence space. It
// returns the sequence the log was sealed at. Fails on a server that
// is already a leader.
func (c *Client) Promote() (uint64, error) {
	m, err := c.call(&wire.Request{Op: wire.OpPromote})
	if err != nil {
		return 0, err
	}
	return m.WalSeq, nil
}

// Backup forces the server to write a durable checkpoint snapshot,
// returning where it landed (server-side path), the log sequence it
// covers, and its size. Fails when the server runs without a data
// directory.
func (c *Client) Backup() (*wire.BackupInfo, error) {
	m, err := c.call(&wire.Request{Op: wire.OpBackup})
	if err != nil {
		return nil, err
	}
	return m.Backup, nil
}
