package core_test

import (
	"math/rand"
	"sort"
	"testing"

	"predmatch/internal/core"
	"predmatch/internal/hashseq"
	"predmatch/internal/ibs"
	"predmatch/internal/interval"
	"predmatch/internal/islist"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/pred"
	"predmatch/internal/value"
	"predmatch/internal/workload"
)

func TestConformanceBalanced(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return core.New(f.Catalog, f.Funcs)
	})
}

func TestConformanceUnbalanced(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return core.New(f.Catalog, f.Funcs,
			core.WithTreeOptions(ibs.Balanced(false)),
			core.WithName("ibs-unbalanced"))
	})
}

// TestConcurrentConformance drives the read/write storm harness; the
// bare Index is single-threaded (shared scratch buffer), so it runs
// under the Synchronized wrapper. ParallelMatcher and the sharded
// matcher run the same harness bare in their own tests.
func TestConcurrentConformance(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		return matchertest.Synchronized(core.New(f.Catalog, f.Funcs))
	})
}

func TestTreesAndNonIndexable(t *testing.T) {
	f := matchertest.NewFixture()
	ix := core.New(f.Catalog, f.Funcs)

	add := func(p *pred.Predicate) {
		t.Helper()
		if err := ix.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	// Two predicates indexable on salary, one on age, one non-indexable.
	add(pred.New(1, "emp", pred.IvClause("salary", interval.AtLeast(value.Int(50)))))
	add(pred.New(2, "emp", pred.IvClause("salary", interval.Closed(value.Int(20), value.Int(30)))))
	add(pred.New(3, "emp", pred.EqClause("age", value.Int(44))))
	add(pred.New(4, "emp", pred.FnClause("age", "isodd")))

	stats := ix.Trees()
	if len(stats) != 2 {
		t.Fatalf("Trees() = %v, want 2 trees (age, salary)", stats)
	}
	if stats[0].Attr != "age" || stats[0].Intervals != 1 {
		t.Errorf("age tree stats = %+v", stats[0])
	}
	if stats[1].Attr != "salary" || stats[1].Intervals != 2 {
		t.Errorf("salary tree stats = %+v", stats[1])
	}
	if n := ix.NonIndexableCount("emp"); n != 1 {
		t.Errorf("NonIndexableCount = %d, want 1", n)
	}

	// Removing the last predicate of a tree removes the tree.
	if err := ix.Remove(3); err != nil {
		t.Fatal(err)
	}
	if stats := ix.Trees(); len(stats) != 1 || stats[0].Attr != "salary" {
		t.Fatalf("Trees() after remove = %v", stats)
	}
	if err := ix.Remove(4); err != nil {
		t.Fatal(err)
	}
	if n := ix.NonIndexableCount("emp"); n != 0 {
		t.Errorf("NonIndexableCount = %d after removal, want 0", n)
	}
}

// mostSelective is a canned estimator marking one attribute far more
// selective than the rest.
type mostSelective struct{ attr string }

func (m mostSelective) Selectivity(rel string, c pred.Clause) float64 {
	if c.Attr == m.attr {
		return 0.01
	}
	return 0.9
}

func TestEstimatorDrivesClauseChoice(t *testing.T) {
	f := matchertest.NewFixture()
	ix := core.New(f.Catalog, f.Funcs, core.WithEstimator(mostSelective{attr: "dept"}))
	p := pred.New(1, "emp",
		pred.IvClause("salary", interval.AtLeast(value.Int(10))),
		pred.EqClause("dept", value.String_("shoe")),
	)
	if err := ix.Add(p); err != nil {
		t.Fatal(err)
	}
	stats := ix.Trees()
	if len(stats) != 1 || stats[0].Attr != "dept" {
		t.Fatalf("expected the dept clause to be indexed, got %v", stats)
	}
}

// TestTenThousandRules exercises the paper's Section 3 scale argument:
// "the largest expert system applications built to date have on the
// order of 10,000 rules, which is few enough that data structures
// associated with the rules will fit in a few megabytes of main memory."
// 10,000 predicates across 10 relations must index, match (agreeing with
// the hash+sequential baseline), and tear down cleanly.
func TestTenThousandRules(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-rule soak test in -short mode")
	}
	rng := rand.New(rand.NewSource(1990))
	spec := workload.SchemaSpec{
		Relations:     10,
		AttrsPerRel:   15,
		UsedAttrFrac:  1.0 / 3.0,
		PredsPerRel:   1000,
		ClausesPer:    2,
		IndexableFrac: 0.9,
		PointFrac:     0.5,
	}
	pop, err := spec.Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.New(pop.Catalog, pop.Funcs)
	ref := hashseq.New(pop.Catalog, pop.Funcs)
	for _, p := range pop.Preds {
		if err := ix.Add(p); err != nil {
			t.Fatal(err)
		}
		if err := ref.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 10000 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for i := 0; i < 200; i++ {
		rel := pop.Rels[i%len(pop.Rels)]
		tup := pop.Tuple(rng, rel)
		got, err := ix.Match(rel.Name(), tup, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Match(rel.Name(), tup, nil)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			t.Fatalf("tuple %d: %d matches vs reference %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("tuple %d: match sets differ", i)
			}
		}
	}
	// Every attribute tree must be properly balanced at this scale.
	for _, ts := range ix.Trees() {
		if ts.Height > 3*log2(ts.Intervals+1)+4 {
			t.Errorf("tree %s.%s height %d for %d intervals", ts.Rel, ts.Attr, ts.Height, ts.Intervals)
		}
	}
	// Remove everything.
	for _, p := range pop.Preds {
		if err := ix.Remove(p.ID); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 0 || len(ix.Trees()) != 0 {
		t.Fatalf("index not empty after removal: %d preds, %d trees", ix.Len(), len(ix.Trees()))
	}
}

func log2(n int) int {
	b := 0
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}

// TestConformanceIntervalSkipList swaps the per-attribute IBS-trees for
// interval skip lists (Hanson's successor structure) and re-runs the
// full conformance suite — the scheme is agnostic to the interval index.
func TestConformanceIntervalSkipList(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return core.New(f.Catalog, f.Funcs,
			core.WithIndexFactory(func() core.AttrIndex {
				return islist.New(value.Compare)
			}),
			core.WithName("islist-scheme"))
	})
}

func TestTreesStatsWithSkipListFactory(t *testing.T) {
	f := matchertest.NewFixture()
	ix := core.New(f.Catalog, f.Funcs,
		core.WithIndexFactory(func() core.AttrIndex { return islist.New(value.Compare) }))
	if err := ix.Add(pred.New(1, "emp", pred.EqClause("age", value.Int(4)))); err != nil {
		t.Fatal(err)
	}
	stats := ix.Trees()
	if len(stats) != 1 || stats[0].Intervals != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// The skip list reports node/marker stats via the optional interface.
	if stats[0].Nodes == 0 || stats[0].Markers == 0 {
		t.Fatalf("skip-list stats not surfaced: %+v", stats[0])
	}
}

// TestRebuild migrates a populated index to a different attribute
// structure and differentially checks that the rebuilt index matches
// exactly like the original, which must itself stay untouched.
func TestRebuild(t *testing.T) {
	f := matchertest.NewFixture()
	rng := rand.New(rand.NewSource(11))
	ix := core.New(f.Catalog, f.Funcs)
	for id := pred.ID(1); id <= 200; id++ {
		if err := ix.Add(f.RandomPredicate(rng, id)); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := ix.Rebuild(
		core.WithIndexFactory(func() core.AttrIndex { return islist.New(value.Compare) }),
		core.WithName("islist"))
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Name() != "islist" || ix.Name() != "ibs" {
		t.Fatalf("names: rebuilt=%q orig=%q", rebuilt.Name(), ix.Name())
	}
	if rebuilt.Len() != ix.Len() {
		t.Fatalf("Len: rebuilt=%d orig=%d", rebuilt.Len(), ix.Len())
	}
	for i := 0; i < 500; i++ {
		rel := f.Rels[rng.Intn(len(f.Rels))]
		tup := f.RandomTuple(rng, rel)
		a, err := ix.MatchSnapshot(rel.Name(), tup, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rebuilt.MatchSnapshot(rel.Name(), tup, nil)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			t.Fatalf("probe %d: orig %v vs rebuilt %v", i, a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("probe %d: orig %v vs rebuilt %v", i, a, b)
			}
		}
	}
	// The rebuilt index is independently mutable: removing there must
	// not affect the original.
	var someID pred.ID = 1
	if err := rebuilt.Remove(someID); err != nil {
		t.Fatal(err)
	}
	if rebuilt.Len() != ix.Len()-1 {
		t.Fatalf("after Remove: rebuilt=%d orig=%d", rebuilt.Len(), ix.Len())
	}
}
