package core_test

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"predmatch/internal/core"
	"predmatch/internal/matcher"
	"predmatch/internal/matchertest"
	"predmatch/internal/workload"
)

// TestParallelConformance runs the wrapped parallel matcher through the
// full matcher conformance suite.
func TestParallelConformance(t *testing.T) {
	matchertest.Run(t, func(f *matchertest.Fixture) matcher.Matcher {
		return core.NewParallel(core.New(f.Catalog, f.Funcs), 4)
	})
}

// TestParallelConcurrentConformance runs the read/write storm harness
// against the wrapper bare: its copy-on-write snapshot design is the
// thing under test, so no Synchronized crutch.
func TestParallelConcurrentConformance(t *testing.T) {
	matchertest.RunConcurrent(t, func(f *matchertest.Fixture) matcher.Matcher {
		return core.NewParallel(core.New(f.Catalog, f.Funcs), 4)
	})
}

// TestMatchParallelEqualsSerial checks result equality between serial
// and parallel matching over the paper's scenario population.
func TestMatchParallelEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pop, err := workload.PaperScenario().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	ix := core.New(pop.Catalog, pop.Funcs)
	for _, p := range pop.Preds {
		if err := ix.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	rel := pop.Rels[0]
	for i := 0; i < 300; i++ {
		tup := pop.Tuple(rng, rel)
		serial, err := ix.Match(rel.Name(), tup, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8, 0} {
			par, err := ix.MatchParallel(rel.Name(), tup, nil, workers)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(serial, func(a, b int) bool { return serial[a] < serial[b] })
			sort.Slice(par, func(a, b int) bool { return par[a] < par[b] })
			if len(serial) == 0 && len(par) == 0 {
				continue
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("tuple %d workers %d: parallel %v != serial %v", i, workers, par, serial)
			}
		}
	}
}

// TestParallelMatcherConcurrentUse hammers the wrapper from many
// goroutines mixing reads and writes; the race detector (go test -race)
// is the real assertion here.
func TestParallelMatcherConcurrentUse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pop, err := workload.PaperScenario().Build(rng)
	if err != nil {
		t.Fatal(err)
	}
	pm := core.NewParallel(core.New(pop.Catalog, pop.Funcs), 4)
	for _, p := range pop.Preds[:100] {
		if err := pm.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	rel := pop.Rels[0]

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 100; i++ {
				tup := pop.Tuple(rng, rel)
				if _, err := pm.Match(rel.Name(), tup, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pop.Preds[100:150] {
			if err := pm.Add(p); err != nil {
				t.Error(err)
				return
			}
		}
		for _, p := range pop.Preds[100:120] {
			if err := pm.Remove(p.ID); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if pm.Len() != 130 {
		t.Fatalf("Len = %d, want 130", pm.Len())
	}
	if pm.Name() != "ibs-parallel" {
		t.Fatalf("Name = %q", pm.Name())
	}
}

// TestMatchParallelUnknownRelation covers the early-out path.
func TestMatchParallelUnknownRelation(t *testing.T) {
	f := matchertest.NewFixture()
	ix := core.New(f.Catalog, f.Funcs)
	got, err := ix.MatchParallel("nosuch", nil, nil, 4)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestMatchParallelSmallFallback covers the serial fallback for tiny
// indexes.
func TestMatchParallelSmallFallback(t *testing.T) {
	f := matchertest.NewFixture()
	ix := core.New(f.Catalog, f.Funcs)
	p := f.RandomPredicate(rand.New(rand.NewSource(1)), 1)
	if err := ix.Add(p); err != nil {
		t.Fatal(err)
	}
	rel := p.Rel
	for _, r := range f.Rels {
		if r.Name() != rel {
			continue
		}
		tup := f.RandomTuple(rand.New(rand.NewSource(2)), r)
		serial, _ := ix.Match(rel, tup, nil)
		par, err := ix.MatchParallel(rel, tup, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(serial, func(a, b int) bool { return serial[a] < serial[b] })
		sort.Slice(par, func(a, b int) bool { return par[a] < par[b] })
		if !reflect.DeepEqual(serial, par) && (len(serial) != 0 || len(par) != 0) {
			t.Fatalf("fallback mismatch: %v vs %v", par, serial)
		}
	}
}
