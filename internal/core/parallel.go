package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"predmatch/internal/pred"
	"predmatch/internal/tuple"
)

// This file implements the parallel matching mode sketched in the
// paper's Section 6: "Parallelism can be achieved by searching the
// second-level index on each attribute of a tuple simultaneously,
// devoting a processor per attribute. In addition, when brute force
// search is required, as in the case of non-indexable predicates and
// when doing the final predicate test, the set of predicates to be
// checked can be divided evenly among the available processors."
//
// MatchParallel fans the per-attribute IBS-tree stabs out to one
// goroutine per attribute tree, then partitions the candidate completion
// tests and the non-indexable list across workers. As the paper notes,
// the initial relation-name hash is a per-tuple cost and does not scale.

// ParallelMatcher wraps an Index with a worker pool configuration,
// yielding a matcher that is safe for concurrent use and exploits
// intra-query parallelism. Construct with NewParallel.
//
// Concurrency model: the matcher holds an atomically published,
// immutable Index snapshot. Match performs one atomic load and then
// runs entirely against that frozen snapshot — no lock is held while
// trees are stabbed or candidates are completed, so readers never block
// writers or each other. Writers (Add/Remove) serialize on a mutex,
// clone the current snapshot, apply the change to the clone, and
// publish it; a Match that is already in flight keeps observing the
// snapshot it loaded. Every Match therefore sees some index state that
// existed between the call's start and end, never a half-applied write.
type ParallelMatcher struct {
	writeMu sync.Mutex // serializes clone-and-publish writers
	snap    atomic.Pointer[Index]
	workers int
}

// NewParallel wraps ix, adopting it as the initial snapshot; the caller
// must not use ix directly afterwards. workers bounds the
// completion-test fan-out; workers <= 0 selects GOMAXPROCS.
func NewParallel(ix *Index, workers int) *ParallelMatcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pm := &ParallelMatcher{workers: workers}
	pm.snap.Store(ix)
	return pm
}

// Name implements matcher.Matcher.
func (pm *ParallelMatcher) Name() string { return pm.snap.Load().Name() + "-parallel" }

// Len implements matcher.Matcher.
func (pm *ParallelMatcher) Len() int { return pm.snap.Load().Len() }

// Add implements matcher.Matcher by clone-and-publish: the new snapshot
// becomes visible to subsequent Match calls in one atomic store.
func (pm *ParallelMatcher) Add(p *pred.Predicate) error {
	pm.writeMu.Lock()
	defer pm.writeMu.Unlock()
	next := pm.snap.Load().Clone()
	if err := next.Add(p); err != nil {
		return err
	}
	pm.snap.Store(next)
	return nil
}

// Remove implements matcher.Matcher by clone-and-publish.
func (pm *ParallelMatcher) Remove(id pred.ID) error {
	pm.writeMu.Lock()
	defer pm.writeMu.Unlock()
	next := pm.snap.Load().Clone()
	if err := next.Remove(id); err != nil {
		return err
	}
	pm.snap.Store(next)
	return nil
}

// Match implements matcher.Matcher using intra-query parallelism. The
// only synchronization is the snapshot acquisition — one atomic load —
// so the critical section no longer spans candidate completion.
func (pm *ParallelMatcher) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	return pm.snap.Load().matchParallel(rel, t, dst, pm.workers)
}

// MatchParallel runs one match with per-attribute tree probes in
// parallel and the completion tests partitioned over workers
// (workers <= 0 selects GOMAXPROCS). Unlike ParallelMatcher, it adds no
// snapshotting: the caller must not mutate the index concurrently.
func (ix *Index) MatchParallel(rel string, t tuple.Tuple, dst []pred.ID, workers int) ([]pred.ID, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return ix.matchParallel(rel, t, dst, workers)
}

func (ix *Index) matchParallel(rel string, t tuple.Tuple, dst []pred.ID, workers int) ([]pred.ID, error) {
	ri, ok := ix.rels[rel]
	if !ok {
		return dst, nil
	}
	// Small inputs don't amortize goroutine fan-out; fall back. The
	// threshold is deliberately coarse — the crossover is measured by
	// BenchmarkParallelMatch.
	if len(ri.probes) <= 1 && len(ri.nonIndexable) < 64 {
		return ix.matchSerial(ri, t, dst)
	}

	// Phase 1: one goroutine per attribute tree (the paper's "processor
	// per attribute").
	partials := make([][]pred.ID, len(ri.probes))
	var wg sync.WaitGroup
	for i, pr := range ri.probes {
		wg.Add(1)
		go func(i int, pr probe) {
			defer wg.Done()
			partials[i] = pr.tree.StabAppend(t[pr.pos], nil)
		}(i, pr)
	}
	wg.Wait()
	var candidates []pred.ID
	for _, p := range partials {
		candidates = append(candidates, p...)
	}

	// Phase 2: divide the completion tests and the non-indexable list
	// evenly among the workers.
	type unit struct {
		id     pred.ID
		e      *entry
		isCand bool
	}
	units := make([]unit, 0, len(candidates)+len(ri.nonIndexable))
	for _, id := range candidates {
		units = append(units, unit{id: id, e: ix.preds[id], isCand: true})
	}
	for _, e := range ri.nonIndexable {
		units = append(units, unit{id: e.bound.Pred.ID, e: e})
	}
	if len(units) == 0 {
		return dst, nil
	}
	if workers > len(units) {
		workers = len(units)
	}
	results := make([][]pred.ID, workers)
	chunk := (len(units) + workers - 1) / workers
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(units) {
			hi = len(units)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []pred.ID
			for _, u := range units[lo:hi] {
				if u.isCand {
					if u.e.bound.MatchSkipping(t, u.e.clause) {
						out = append(out, u.id)
					}
				} else if u.e.bound.Match(t) {
					out = append(out, u.id)
				}
			}
			results[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	for _, r := range results {
		dst = append(dst, r...)
	}
	return dst, nil
}

// matchSerial is Match without the shared scratch buffer; it never
// writes to the index, making it safe against a frozen snapshot.
func (ix *Index) matchSerial(ri *relIndex, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	var scratch []pred.ID
	for _, pr := range ri.probes {
		scratch = pr.tree.StabAppend(t[pr.pos], scratch)
	}
	for _, id := range scratch {
		e := ix.preds[id]
		if e.bound.MatchSkipping(t, e.clause) {
			dst = append(dst, id)
		}
	}
	for _, e := range ri.nonIndexable {
		if e.bound.Match(t) {
			dst = append(dst, e.bound.Pred.ID)
		}
	}
	return dst, nil
}
