package core_test

import (
	"fmt"

	"predmatch/internal/core"
	"predmatch/internal/interval"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Example builds the paper's Figure-1 index over the EMP relation and
// matches one tuple against all registered predicates.
func Example() {
	cat := schema.NewCatalog()
	_ = cat.Add(schema.MustRelation("emp",
		schema.Attribute{Name: "age", Type: value.KindInt},
		schema.Attribute{Name: "salary", Type: value.KindInt},
	))
	ix := core.New(cat, pred.NewRegistry())

	// EMP.salary < 20000 and EMP.age > 50
	_ = ix.Add(pred.New(1, "emp",
		pred.IvClause("salary", interval.Less(value.Int(20000))),
		pred.IvClause("age", interval.Greater(value.Int(50)))))
	// 20000 <= EMP.salary <= 30000
	_ = ix.Add(pred.New(2, "emp",
		pred.IvClause("salary", interval.Closed(value.Int(20000), value.Int(30000)))))

	matches, _ := ix.Match("emp", tuple.New(value.Int(55), value.Int(15000)), nil)
	fmt.Println(matches)
	matches, _ = ix.Match("emp", tuple.New(value.Int(30), value.Int(25000)), nil)
	fmt.Println(matches)
	// Output:
	// [1]
	// [2]
}
