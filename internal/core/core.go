// Package core implements the paper's predicate indexing scheme
// (Section 4, Figure 1) — the primary contribution built on top of the
// IBS-tree:
//
//	inserted or deleted tuples
//	        |
//	   hash on relation name
//	        |
//	  per-relation second-level index:
//	    - a list of non-indexable predicates
//	    - one IBS-tree per attribute that has one or more indexable
//	      predicate clauses
//	        |
//	  PREDICATES table: full predicate tested on partial match
//
// For each predicate that is a conjunction of selection clauses, the most
// selective indexable clause — per the optimizer's selectivity estimates
// (internal/selectivity) — is placed in the IBS-tree of its attribute.
// Matching a tuple probes each attribute tree with the tuple's value for
// that attribute, unions the partial matches with the non-indexable list,
// and completes each candidate against the PREDICATES table.
package core

import (
	"fmt"
	"sort"

	"predmatch/internal/ibs"
	"predmatch/internal/interval"
	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/selectivity"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// AttrIndex is the per-attribute interval index the scheme builds on.
// The paper's structure is the IBS-tree (the default); any dynamic
// stabbing index over attribute values qualifies — internal/islist's
// interval skip list is the drop-in alternative, making the choice of
// interval index a whole-scheme ablation axis.
type AttrIndex interface {
	Insert(id ibs.ID, iv interval.Interval[value.Value]) error
	Delete(id ibs.ID) error
	StabAppend(v value.Value, dst []ibs.ID) []ibs.ID
	Len() int
}

// AttrIndexStats is optionally implemented by attribute indexes that can
// report space statistics (the IBS-tree and interval skip list both do).
type AttrIndexStats interface {
	NodeCount() int
	MarkerCount() int
}

// IndexFactory constructs an empty attribute index.
type IndexFactory func() AttrIndex

// entry is one row of the PREDICATES table.
type entry struct {
	bound *pred.Bound
	// attr names the attribute whose IBS-tree indexes this predicate;
	// empty for non-indexable predicates.
	attr string
	// clause is the index of the clause placed in the tree, -1 if none.
	clause int
}

// relIndex is the second-level index for one relation.
type relIndex struct {
	rel *schema.Relation
	// trees maps attribute name to its interval index of indexable
	// clauses (an IBS-tree unless WithIndexFactory overrides it).
	trees map[string]AttrIndex
	// treeAttrs caches the attribute positions of trees, rebuilt on
	// structural change, so Match avoids map iteration order costs.
	probes []probe
	// nonIndexable lists predicates with no indexable clause.
	nonIndexable []*entry
}

type probe struct {
	pos  int
	tree AttrIndex
}

func (ri *relIndex) rebuildProbes() {
	ri.probes = ri.probes[:0]
	attrs := make([]string, 0, len(ri.trees))
	for a := range ri.trees {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		pos, _ := ri.rel.AttrIndex(a)
		ri.probes = append(ri.probes, probe{pos: pos, tree: ri.trees[a]})
	}
}

// Index is the full predicate index of Figure 1. It is not safe for
// concurrent use (Match reuses an internal scratch buffer); wrap it in
// a ParallelMatcher for a lock-protected, intra-query-parallel variant.
type Index struct {
	catalog *schema.Catalog
	funcs   *pred.Registry
	est     selectivity.Estimator
	factory IndexFactory
	name    string
	rels    map[string]*relIndex
	preds   map[pred.ID]*entry
	scratch []pred.ID
}

var _ matcher.Matcher = (*Index)(nil)

// Option configures an Index.
type Option func(*Index)

// WithEstimator sets the selectivity estimator used to choose which
// clause of each predicate is indexed (default: selectivity.Static).
func WithEstimator(est selectivity.Estimator) Option {
	return func(ix *Index) { ix.est = est }
}

// WithTreeOptions passes options to every IBS-tree the index creates
// (e.g. ibs.Balanced(false) to reproduce the paper's unbalanced
// measurement configuration). It resets the factory to IBS-trees.
func WithTreeOptions(opts ...ibs.Option) Option {
	return func(ix *Index) {
		ix.factory = func() AttrIndex { return ibs.New(value.Compare, opts...) }
	}
}

// WithIndexFactory replaces the per-attribute interval index wholesale,
// e.g. with internal/islist's interval skip list:
//
//	core.New(cat, funcs, core.WithIndexFactory(func() core.AttrIndex {
//	    return islist.New(value.Compare)
//	}))
func WithIndexFactory(f IndexFactory) Option {
	return func(ix *Index) { ix.factory = f }
}

// WithName overrides the strategy name reported in benchmarks.
func WithName(name string) Option {
	return func(ix *Index) { ix.name = name }
}

// New returns an empty predicate index.
func New(catalog *schema.Catalog, funcs *pred.Registry, opts ...Option) *Index {
	ix := &Index{
		catalog: catalog,
		funcs:   funcs,
		est:     selectivity.Static{},
		factory: func() AttrIndex { return ibs.New(value.Compare) },
		name:    "ibs",
		rels:    make(map[string]*relIndex),
		preds:   make(map[pred.ID]*entry),
	}
	for _, o := range opts {
		o(ix)
	}
	return ix
}

// Name implements matcher.Matcher.
func (ix *Index) Name() string { return ix.name }

// Len implements matcher.Matcher.
func (ix *Index) Len() int { return len(ix.preds) }

// Add implements matcher.Matcher: the predicate's most selective
// indexable clause goes into the IBS-tree of its attribute; predicates
// without indexable clauses go on the relation's non-indexable list.
func (ix *Index) Add(p *pred.Predicate) error {
	if _, dup := ix.preds[p.ID]; dup {
		return fmt.Errorf("core: duplicate predicate id %d", p.ID)
	}
	b, err := p.Bind(ix.catalog, ix.funcs)
	if err != nil {
		return err
	}
	rel, _ := ix.catalog.Get(p.Rel)
	ri, ok := ix.rels[p.Rel]
	if !ok {
		ri = &relIndex{rel: rel, trees: make(map[string]AttrIndex)}
		ix.rels[p.Rel] = ri
	}
	e := &entry{bound: b, clause: -1}
	if ci, ok := selectivity.ChooseClause(p, ix.est); ok {
		c := p.Clauses[ci]
		tree, ok := ri.trees[c.Attr]
		if !ok {
			tree = ix.factory()
			ri.trees[c.Attr] = tree
			ri.rebuildProbes()
		}
		if err := tree.Insert(p.ID, c.Iv); err != nil {
			return fmt.Errorf("core: indexing clause %v: %w", c, err)
		}
		e.attr = c.Attr
		e.clause = ci
	} else {
		ri.nonIndexable = append(ri.nonIndexable, e)
	}
	ix.preds[p.ID] = e
	return nil
}

// Remove implements matcher.Matcher.
func (ix *Index) Remove(id pred.ID) error {
	e, ok := ix.preds[id]
	if !ok {
		return fmt.Errorf("core: unknown predicate id %d", id)
	}
	delete(ix.preds, id)
	ri := ix.rels[e.bound.Pred.Rel]
	if e.clause >= 0 {
		tree := ri.trees[e.attr]
		if err := tree.Delete(id); err != nil {
			return err
		}
		if tree.Len() == 0 {
			delete(ri.trees, e.attr)
			ri.rebuildProbes()
		}
		return nil
	}
	for i, x := range ri.nonIndexable {
		if x == e {
			ri.nonIndexable = append(ri.nonIndexable[:i], ri.nonIndexable[i+1:]...)
			break
		}
	}
	return nil
}

// Match implements matcher.Matcher: probe each attribute's IBS-tree with
// the tuple's value for that attribute (a stabbing query), then complete
// every partial match — and every non-indexable predicate — against the
// PREDICATES table.
func (ix *Index) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	ri, ok := ix.rels[rel]
	if !ok {
		return dst, nil
	}
	scratch := ix.scratch[:0]
	for _, pr := range ri.probes {
		scratch = pr.tree.StabAppend(t[pr.pos], scratch)
	}
	for _, id := range scratch {
		e := ix.preds[id]
		if e.bound.MatchSkipping(t, e.clause) {
			dst = append(dst, id)
		}
	}
	for _, e := range ri.nonIndexable {
		if e.bound.Match(t) {
			dst = append(dst, e.bound.Pred.ID)
		}
	}
	ix.scratch = scratch
	return dst, nil
}

// MatchSnapshot is Match without the shared scratch buffer: it performs
// no writes to the index at all, so any number of goroutines may call it
// on the same Index concurrently — provided nothing mutates the index
// meanwhile. This is the read path of the copy-on-write wrappers
// (ParallelMatcher, internal/shard), which treat every published Index
// as frozen.
func (ix *Index) MatchSnapshot(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	ri, ok := ix.rels[rel]
	if !ok {
		return dst, nil
	}
	return ix.matchSerial(ri, t, dst)
}

// Clone returns a copy of the index that can be mutated without
// affecting the original (and vice versa). The PREDICATES table entries
// are shared — they are immutable after Add — while the relation tables
// and every attribute tree are rebuilt, costing one tree insertion per
// indexed predicate. Clone is what the copy-on-write wrappers use to
// prepare the next snapshot before publishing it.
func (ix *Index) Clone() *Index {
	cp := &Index{
		catalog: ix.catalog,
		funcs:   ix.funcs,
		est:     ix.est,
		factory: ix.factory,
		name:    ix.name,
		rels:    make(map[string]*relIndex, len(ix.rels)),
		preds:   make(map[pred.ID]*entry, len(ix.preds)),
	}
	for name, ri := range ix.rels {
		cri := &relIndex{rel: ri.rel, trees: make(map[string]AttrIndex, len(ri.trees))}
		if len(ri.nonIndexable) > 0 {
			cri.nonIndexable = append([]*entry(nil), ri.nonIndexable...)
		}
		for attr := range ri.trees {
			cri.trees[attr] = ix.factory()
		}
		cp.rels[name] = cri
	}
	for id, e := range ix.preds {
		cp.preds[id] = e
		if e.clause < 0 {
			continue
		}
		tree := cp.rels[e.bound.Pred.Rel].trees[e.attr]
		if err := tree.Insert(id, e.bound.Pred.Clauses[e.clause].Iv); err != nil {
			// The clause was inserted into an equivalent tree once
			// already; failing here means an index invariant is broken.
			panic(fmt.Sprintf("core: clone re-insert of predicate %d: %v", id, err))
		}
	}
	for _, cri := range cp.rels {
		cri.rebuildProbes()
	}
	return cp
}

// Rebuild returns a new index holding the same predicate set but
// reconstructed from scratch under the given options — this is how the
// adaptive meta-matcher migrates a relation to a different attribute
// index structure (core.WithIndexFactory) without touching the original.
// Unlike Clone, which reuses the receiver's factory and shares bound
// entries, Rebuild re-binds and re-chooses clauses for every predicate,
// so the result is exactly what adding the predicates to a fresh index
// built with opts would produce. The receiver is read but never
// mutated, so rebuilding a published snapshot off-lock is safe.
func (ix *Index) Rebuild(opts ...Option) (*Index, error) {
	next := New(ix.catalog, ix.funcs)
	next.est = ix.est
	for _, o := range opts {
		o(next)
	}
	for id, e := range ix.preds {
		if err := next.Add(e.bound.Pred); err != nil {
			return nil, fmt.Errorf("core: rebuild re-add of predicate %d: %w", id, err)
		}
	}
	return next, nil
}

// Candidates returns the number of partial matches a Match for t would
// complete against the PREDICATES table: index hits from the attribute
// trees plus the non-indexable list. This is the quantity the paper's
// Section 5.2 cost model multiplies by the full-test cost ("20
// predicates must be tested after the initial search").
func (ix *Index) Candidates(rel string, t tuple.Tuple) int {
	ri, ok := ix.rels[rel]
	if !ok {
		return 0
	}
	scratch := ix.scratch[:0]
	for _, pr := range ri.probes {
		scratch = pr.tree.StabAppend(t[pr.pos], scratch)
	}
	n := len(scratch) + len(ri.nonIndexable)
	ix.scratch = scratch
	return n
}

// TreeStats describes one attribute IBS-tree, for instrumentation and
// the space experiments.
type TreeStats struct {
	Rel, Attr string
	Intervals int
	Nodes     int
	Markers   int
	Height    int
}

// Trees returns statistics for every attribute tree in the index.
func (ix *Index) Trees() []TreeStats {
	var out []TreeStats
	for relName, ri := range ix.rels {
		for attr, tree := range ri.trees {
			ts := TreeStats{
				Rel:       relName,
				Attr:      attr,
				Intervals: tree.Len(),
			}
			if st, ok := tree.(AttrIndexStats); ok {
				ts.Nodes = st.NodeCount()
				ts.Markers = st.MarkerCount()
			}
			if ht, ok := tree.(interface{ Height() int }); ok {
				ts.Height = ht.Height()
			}
			out = append(out, ts)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel < out[j].Rel
		}
		return out[i].Attr < out[j].Attr
	})
	return out
}

// NonIndexableCount returns the number of predicates on rel's
// non-indexable list.
func (ix *Index) NonIndexableCount(rel string) int {
	ri, ok := ix.rels[rel]
	if !ok {
		return 0
	}
	return len(ri.nonIndexable)
}
