// Package matchertest provides a conformance harness for predicate
// matchers: every strategy must return exactly the set of predicates a
// direct evaluation of all predicates returns, across random schemas,
// predicate shapes and tuple streams, and across predicate insertion and
// removal. Each matcher package runs this harness in its tests.
package matchertest

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"predmatch/internal/interval"
	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/schema"
	"predmatch/internal/tuple"
	"predmatch/internal/value"
)

// Fixture is a ready-made multi-relation schema with value generators.
type Fixture struct {
	Catalog *schema.Catalog
	Funcs   *pred.Registry
	Rels    []*schema.Relation
}

// NewFixture builds the standard test schema: three relations with mixed
// attribute types, echoing the paper's EMP example.
func NewFixture() *Fixture {
	cat := schema.NewCatalog()
	rels := []*schema.Relation{
		schema.MustRelation("emp",
			schema.Attribute{Name: "name", Type: value.KindString},
			schema.Attribute{Name: "age", Type: value.KindInt},
			schema.Attribute{Name: "salary", Type: value.KindInt},
			schema.Attribute{Name: "dept", Type: value.KindString},
		),
		schema.MustRelation("items",
			schema.Attribute{Name: "sku", Type: value.KindInt},
			schema.Attribute{Name: "stock", Type: value.KindInt},
			schema.Attribute{Name: "threshold", Type: value.KindInt},
			schema.Attribute{Name: "price", Type: value.KindFloat},
		),
		schema.MustRelation("events",
			schema.Attribute{Name: "kind", Type: value.KindString},
			schema.Attribute{Name: "severity", Type: value.KindInt},
			schema.Attribute{Name: "open", Type: value.KindBool},
		),
	}
	for _, r := range rels {
		if err := cat.Add(r); err != nil {
			panic(err)
		}
	}
	return &Fixture{Catalog: cat, Funcs: pred.NewRegistry(), Rels: rels}
}

var depts = []string{"shoe", "toy", "produce", "deli", "pharmacy"}
var kinds = []string{"alert", "info", "audit", "trace"}
var names = []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace"}

// RandomValue draws a value of the given kind from small domains so that
// predicates actually match tuples with useful probability.
func (f *Fixture) RandomValue(rng *rand.Rand, kind value.Kind, attr string) value.Value {
	switch kind {
	case value.KindInt:
		return value.Int(int64(rng.Intn(100)))
	case value.KindFloat:
		return value.Float(float64(rng.Intn(200)) / 2)
	case value.KindBool:
		return value.Bool(rng.Intn(2) == 0)
	default:
		switch attr {
		case "dept":
			return value.String_(depts[rng.Intn(len(depts))])
		case "kind":
			return value.String_(kinds[rng.Intn(len(kinds))])
		default:
			return value.String_(names[rng.Intn(len(names))])
		}
	}
}

// RandomTuple draws a conforming tuple for rel.
func (f *Fixture) RandomTuple(rng *rand.Rand, rel *schema.Relation) tuple.Tuple {
	t := make(tuple.Tuple, rel.Arity())
	for i, a := range rel.Attrs() {
		t[i] = f.RandomValue(rng, a.Type, a.Name)
	}
	return t
}

// RandomClause draws a clause on a random attribute of rel: interval and
// equality clauses on any type, occasionally a function clause.
func (f *Fixture) RandomClause(rng *rand.Rand, rel *schema.Relation) pred.Clause {
	attrs := rel.Attrs()
	a := attrs[rng.Intn(len(attrs))]
	if rng.Intn(6) == 0 {
		fns := []string{"isodd", "iseven", "ispositive", "isempty"}
		return pred.FnClause(a.Name, fns[rng.Intn(len(fns))])
	}
	v1 := f.RandomValue(rng, a.Type, a.Name)
	v2 := f.RandomValue(rng, a.Type, a.Name)
	if value.Less(v2, v1) {
		v1, v2 = v2, v1
	}
	switch rng.Intn(6) {
	case 0:
		return pred.EqClause(a.Name, v1)
	case 1:
		return pred.IvClause(a.Name, interval.AtLeast(v1))
	case 2:
		return pred.IvClause(a.Name, interval.AtMost(v2))
	case 3:
		if value.Equal(v1, v2) {
			return pred.EqClause(a.Name, v1)
		}
		return pred.IvClause(a.Name, interval.Open(v1, v2))
	default:
		return pred.IvClause(a.Name, interval.Closed(v1, v2))
	}
}

// RandomPredicate draws a disjunction-free predicate with 1-3 clauses on
// a random relation.
func (f *Fixture) RandomPredicate(rng *rand.Rand, id pred.ID) *pred.Predicate {
	rel := f.Rels[rng.Intn(len(f.Rels))]
	n := 1 + rng.Intn(3)
	clauses := make([]pred.Clause, n)
	for i := range clauses {
		clauses[i] = f.RandomClause(rng, rel)
	}
	return pred.New(id, rel.Name(), clauses...)
}

// reference evaluates all predicates directly.
type reference struct {
	fix   *Fixture
	preds map[pred.ID]*pred.Bound
}

func (r *reference) match(rel string, t tuple.Tuple) []pred.ID {
	var out []pred.ID
	for id, b := range r.preds {
		if b.Pred.Rel == rel && b.Match(t) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Factory builds the matcher under test for a fixture.
type Factory func(f *Fixture) matcher.Matcher

// Run drives the conformance suite against the matcher built by factory.
func Run(t *testing.T, factory Factory) {
	t.Helper()
	t.Run("conformance", func(t *testing.T) { runRandomized(t, factory) })
	t.Run("errors", func(t *testing.T) { runErrors(t, factory) })
	t.Run("multiRelation", func(t *testing.T) { runMultiRelation(t, factory) })
	t.Run("dstAppend", func(t *testing.T) { runDstAppend(t, factory) })
}

// runDstAppend pins the Match dst contract for every strategy: results
// are appended to the caller's dst — an existing prefix is preserved
// byte for byte, spare capacity may be reused but never clobbered, and
// each matching ID appears exactly once in the appended suffix.
func runDstAppend(t *testing.T, factory Factory) {
	fix := NewFixture()
	rng := rand.New(rand.NewSource(11))
	m := factory(fix)
	ref := &reference{fix: fix, preds: map[pred.ID]*pred.Bound{}}
	for id := pred.ID(0); id < 60; id++ {
		p := fix.RandomPredicate(rng, id)
		if err := m.Add(p); err != nil {
			t.Fatalf("Add(%v): %v", p, err)
		}
		b, err := p.Bind(fix.Catalog, fix.Funcs)
		if err != nil {
			t.Fatalf("Bind: %v", err)
		}
		ref.preds[p.ID] = b
	}

	// sentinel IDs can never be produced by a real match.
	const sentinel = pred.ID(1) << 60
	for i := 0; i < 200; i++ {
		rel := fix.Rels[rng.Intn(len(fix.Rels))]
		tup := fix.RandomTuple(rng, rel)
		prefix := []pred.ID{sentinel, sentinel + pred.ID(i+1)}
		// Alternate between an exactly-sized dst and one with spare
		// capacity, so in-place append reuse is exercised both ways.
		var dst []pred.ID
		if i%2 == 0 {
			dst = append([]pred.ID(nil), prefix...)
		} else {
			dst = make([]pred.ID, 0, 64)
			dst = append(dst, prefix...)
		}
		got, err := m.Match(rel.Name(), tup, dst)
		if err != nil {
			t.Fatalf("probe %d: Match: %v", i, err)
		}
		if len(got) < len(prefix) || got[0] != prefix[0] || got[1] != prefix[1] {
			t.Fatalf("probe %d: dst prefix clobbered: %v (want prefix %v)", i, got, prefix)
		}
		if dst[0] != prefix[0] || dst[1] != prefix[1] {
			t.Fatalf("probe %d: caller's dst slice mutated: %v", i, dst)
		}
		suffix := append([]pred.ID(nil), got[len(prefix):]...)
		sort.Slice(suffix, func(i, j int) bool { return suffix[i] < suffix[j] })
		for j := 1; j < len(suffix); j++ {
			if suffix[j] == suffix[j-1] {
				t.Fatalf("probe %d: ID %d appended more than once: %v", i, suffix[j], got)
			}
		}
		if want := ref.match(rel.Name(), tup); !equalIDs(suffix, want) {
			t.Fatalf("probe %d: appended %v, want %v", i, suffix, want)
		}
	}
}

func runRandomized(t *testing.T, factory Factory) {
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fix := NewFixture()
			rng := rand.New(rand.NewSource(seed))
			m := factory(fix)
			ref := &reference{fix: fix, preds: map[pred.ID]*pred.Bound{}}
			nextID := pred.ID(0)
			var live []pred.ID

			ops := 300
			if testing.Short() {
				ops = 80
			}
			for op := 0; op < ops; op++ {
				switch {
				case len(live) == 0 || rng.Intn(4) != 0:
					p := fix.RandomPredicate(rng, nextID)
					nextID++
					if err := m.Add(p); err != nil {
						t.Fatalf("op %d: Add(%v): %v", op, p, err)
					}
					b, err := p.Bind(fix.Catalog, fix.Funcs)
					if err != nil {
						t.Fatalf("op %d: Bind: %v", op, err)
					}
					ref.preds[p.ID] = b
					live = append(live, p.ID)
				default:
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if err := m.Remove(id); err != nil {
						t.Fatalf("op %d: Remove(%d): %v", op, id, err)
					}
					delete(ref.preds, id)
				}
				if m.Len() != len(ref.preds) {
					t.Fatalf("op %d: Len %d, want %d", op, m.Len(), len(ref.preds))
				}
				// Match a few random tuples per operation.
				for i := 0; i < 4; i++ {
					rel := fix.Rels[rng.Intn(len(fix.Rels))]
					tup := fix.RandomTuple(rng, rel)
					got, err := m.Match(rel.Name(), tup, nil)
					if err != nil {
						t.Fatalf("op %d: Match: %v", op, err)
					}
					sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
					want := ref.match(rel.Name(), tup)
					if !equalIDs(got, want) {
						t.Fatalf("op %d: Match(%s, %v) = %v, want %v", op, rel.Name(), tup, got, want)
					}
				}
			}
		})
	}
}

func runErrors(t *testing.T, factory Factory) {
	fix := NewFixture()
	m := factory(fix)
	p := pred.New(1, "emp", pred.EqClause("dept", value.String_("shoe")))
	if err := m.Add(p); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := m.Add(p); err == nil {
		t.Error("duplicate Add accepted")
	}
	if err := m.Add(pred.New(2, "nosuch", pred.EqClause("x", value.Int(1)))); err == nil {
		t.Error("Add with unknown relation accepted")
	}
	if err := m.Add(pred.New(3, "emp", pred.EqClause("nosuch", value.Int(1)))); err == nil {
		t.Error("Add with unknown attribute accepted")
	}
	if err := m.Add(pred.New(4, "emp", pred.EqClause("age", value.String_("x")))); err == nil {
		t.Error("Add with type-mismatched bound accepted")
	}
	if err := m.Add(pred.New(5, "emp", pred.FnClause("age", "nosuchfn"))); err == nil {
		t.Error("Add with unknown function accepted")
	}
	if err := m.Remove(99); err == nil {
		t.Error("Remove of unknown id accepted")
	}
	if err := m.Remove(1); err != nil {
		t.Errorf("Remove: %v", err)
	}
	if m.Len() != 0 {
		t.Errorf("Len = %d after removing all", m.Len())
	}
}

func runMultiRelation(t *testing.T, factory Factory) {
	fix := NewFixture()
	m := factory(fix)
	// Same attribute names on different relations must not interfere.
	mustAdd := func(p *pred.Predicate) {
		t.Helper()
		if err := m.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(pred.New(1, "emp", pred.IvClause("salary", interval.AtLeast(value.Int(50)))))
	mustAdd(pred.New(2, "items", pred.IvClause("stock", interval.Less(value.Int(10)))))
	mustAdd(pred.New(3, "emp",
		pred.IvClause("salary", interval.Closed(value.Int(20), value.Int(30))),
		pred.EqClause("dept", value.String_("shoe")),
	))

	empTuple := tuple.New(value.String_("alice"), value.Int(40), value.Int(25), value.String_("shoe"))
	got, err := m.Match("emp", empTuple, nil)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if !reflect.DeepEqual(got, []pred.ID{3}) {
		t.Fatalf("emp match = %v, want [3]", got)
	}

	itemTuple := tuple.New(value.Int(1), value.Int(5), value.Int(10), value.Float(9.5))
	got, err = m.Match("items", itemTuple, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []pred.ID{2}) {
		t.Fatalf("items match = %v, want [2]", got)
	}

	// A relation with no predicates matches nothing.
	evTuple := tuple.New(value.String_("alert"), value.Int(3), value.Bool(true))
	got, err = m.Match("events", evTuple, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("events match = %v, want empty", got)
	}
}

func equalIDs(a, b []pred.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
