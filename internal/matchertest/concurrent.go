package matchertest

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"predmatch/internal/matcher"
	"predmatch/internal/pred"
	"predmatch/internal/tuple"
)

// Synchronized wraps a matcher that is not safe for concurrent use with
// a mutex, so every strategy can run the RunConcurrent harness: the
// wrapper supplies thread safety, the harness checks that matching
// stays exact under interleaved Add/Remove/Match. Concurrency-native
// matchers (core.ParallelMatcher, shard.ShardedMatcher) should be
// passed to RunConcurrent bare instead.
func Synchronized(m matcher.Matcher) matcher.Matcher {
	return &syncMatcher{m: m}
}

type syncMatcher struct {
	mu sync.Mutex
	m  matcher.Matcher
}

func (s *syncMatcher) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Name()
}

func (s *syncMatcher) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Len()
}

func (s *syncMatcher) Add(p *pred.Predicate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Add(p)
}

func (s *syncMatcher) Remove(id pred.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Remove(id)
}

func (s *syncMatcher) Match(rel string, t tuple.Tuple, dst []pred.ID) ([]pred.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Match(rel, t, dst)
}

// RunConcurrent is the concurrent conformance harness: N writer
// goroutines toggle predicates from a pre-generated pool (each writer
// owns a disjoint ID range, so add/remove races on one ID never occur)
// while M reader goroutines match random tuples. The matcher under test
// must be safe for concurrent use — wrap single-threaded strategies in
// Synchronized.
//
// Readers verify invariants that hold regardless of write timing,
// because predicates are immutable once created: every returned ID must
// belong to the pool, target the matched relation, actually match the
// tuple, and appear at most once. After the writers finish, a full
// conformance sweep compares the matcher against the brute-force oracle
// on the final predicate set. The data races the harness cannot observe
// directly are the race detector's job: run it under `go test -race`.
func RunConcurrent(t *testing.T, factory Factory) {
	t.Helper()
	const (
		writers   = 4
		readers   = 4
		perWriter = 24
	)
	opsPerWriter := 200
	if testing.Short() {
		opsPerWriter = 50
	}

	fix := NewFixture()
	m := factory(fix)
	rng := rand.New(rand.NewSource(990))

	// The shared pool: predicates are generated (and bound, for the
	// oracle and the reader-side validity checks) before any goroutine
	// starts, so the pool itself is read-only during the storm.
	total := writers * perWriter
	pool := make([]*pred.Predicate, total)
	bounds := make([]*pred.Bound, total)
	for i := range pool {
		p := fix.RandomPredicate(rng, pred.ID(i))
		b, err := p.Bind(fix.Catalog, fix.Funcs)
		if err != nil {
			t.Fatalf("binding pool predicate %d: %v", i, err)
		}
		pool[i], bounds[i] = p, b
	}

	// Seed half of each writer's range so readers see matches from the
	// first instant.
	finalLive := make([]bool, total)
	for w := 0; w < writers; w++ {
		for i := w * perWriter; i < w*perWriter+perWriter/2; i++ {
			if err := m.Add(pool[i]); err != nil {
				t.Fatalf("seeding predicate %d: %v", i, err)
			}
			finalLive[i] = true
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			lo := w * perWriter
			for op := 0; op < opsPerWriter; op++ {
				i := lo + rng.Intn(perWriter)
				if finalLive[i] {
					if err := m.Remove(pool[i].ID); err != nil {
						t.Errorf("writer %d: Remove(%d): %v", w, pool[i].ID, err)
						return
					}
					finalLive[i] = false
				} else {
					if err := m.Add(pool[i]); err != nil {
						t.Errorf("writer %d: Add(%d): %v", w, pool[i].ID, err)
						return
					}
					finalLive[i] = true
				}
			}
		}(w)
	}

	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			var buf []pred.ID
			for {
				select {
				case <-done:
					return
				default:
				}
				rel := fix.Rels[rng.Intn(len(fix.Rels))]
				tup := fix.RandomTuple(rng, rel)
				got, err := m.Match(rel.Name(), tup, buf[:0])
				if err != nil {
					t.Errorf("reader %d: Match: %v", r, err)
					return
				}
				buf = got
				if msg := validateIDs(got, rel.Name(), tup, bounds); msg != "" {
					t.Errorf("reader %d: Match(%s, %v): %s", r, rel.Name(), tup, msg)
					return
				}
			}
		}(r)
	}

	wg.Wait()
	close(done)
	rwg.Wait()
	if t.Failed() {
		return
	}

	// Final conformance sweep against the brute-force oracle: with the
	// writers quiesced, the matcher must agree exactly on the surviving
	// predicate set.
	want := 0
	for _, alive := range finalLive {
		if alive {
			want++
		}
	}
	if m.Len() != want {
		t.Fatalf("after storm: Len = %d, want %d", m.Len(), want)
	}
	sweepRng := rand.New(rand.NewSource(991))
	for _, rel := range fix.Rels {
		for k := 0; k < 50; k++ {
			tup := fix.RandomTuple(sweepRng, rel)
			got, err := m.Match(rel.Name(), tup, nil)
			if err != nil {
				t.Fatalf("sweep Match(%s): %v", rel.Name(), err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			var wantIDs []pred.ID
			for i, alive := range finalLive {
				if alive && bounds[i].Pred.Rel == rel.Name() && bounds[i].Match(tup) {
					wantIDs = append(wantIDs, pool[i].ID)
				}
			}
			if !equalIDs(got, wantIDs) {
				t.Fatalf("sweep Match(%s, %v) = %v, want %v", rel.Name(), tup, got, wantIDs)
			}
		}
	}
}

// validateIDs checks the timing-independent result invariants: IDs in
// range, unique, on the right relation, and actually matching the
// tuple. It returns "" when the result is valid.
func validateIDs(got []pred.ID, rel string, tup tuple.Tuple, bounds []*pred.Bound) string {
	seen := make(map[pred.ID]bool, len(got))
	for _, id := range got {
		if id < 0 || int(id) >= len(bounds) {
			return fmt.Sprintf("returned unknown id %d", id)
		}
		if seen[id] {
			return fmt.Sprintf("returned duplicate id %d", id)
		}
		seen[id] = true
		b := bounds[id]
		if b.Pred.Rel != rel {
			return fmt.Sprintf("id %d belongs to relation %s", id, b.Pred.Rel)
		}
		if !b.Match(tup) {
			return fmt.Sprintf("id %d does not match the tuple", id)
		}
	}
	return ""
}
