// Package guarded seeds guarded-by violations for the analyzer fixture
// test, modeled on the real repository's schema catalog, server
// connection registry and copy-on-write shard directory.
package guarded

import "sync"

// catalog mirrors schema.Catalog: an RWMutex-guarded relation map.
type catalog struct {
	mu   sync.RWMutex
	rels map[string]string // guarded-by: mu
}

func (c *catalog) get(name string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rels[name]
	return r, ok
}

func (c *catalog) add(name, rel string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rels[name] = rel
}

// getUnlocked reads the guarded map with no lock at all.
func (c *catalog) getUnlocked(name string) string {
	return c.rels[name] // want `access to catalog.rels without holding mu`
}

// writeUnderRLock writes while holding only the shared lock.
func (c *catalog) writeUnderRLock(name, rel string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.rels[name] = rel // want `write to catalog.rels under mu.RLock: writes need the exclusive Lock`
}

// deleteUnlocked deletes without the lock.
func (c *catalog) deleteUnlocked(name string) {
	delete(c.rels, name) // want `write to catalog.rels without holding mu`
}

// registry mirrors the server's plain-mutex connection registry.
type registry struct {
	connMu sync.Mutex
	conns  map[int]struct{} // guarded-by: connMu
}

func (r *registry) register(id int) {
	r.connMu.Lock()
	r.conns[id] = struct{}{}
	r.connMu.Unlock()
}

// leak registers a connection without the lock.
func (r *registry) leak(id int) {
	r.conns[id] = struct{}{} // want `write to registry.conns without holding connMu`
}

// sweep runs with the lock already held by its caller, declared via the
// holds directive: no diagnostics expected.
//
//predmatchvet:holds connMu
func (r *registry) sweep() {
	for id := range r.conns {
		delete(r.conns, id)
	}
}

// pub mirrors the sharded matcher's copy-on-write directory: reads are
// lock-free by design, growth serializes under dirMu.
type pub struct {
	dirMu sync.Mutex
	dir   map[string]int // write-guarded-by: dirMu
}

// read is lock-free and legal: the annotation guards writes only.
func (p *pub) read(k string) int { return p.dir[k] }

// grow swaps the map without the growth lock.
func (p *pub) grow(k string) {
	p.dir[k] = 1 // want `write to pub.dir without holding dirMu`
}

func (p *pub) growLocked(k string) {
	p.dirMu.Lock()
	defer p.dirMu.Unlock()
	p.dir[k] = 1
}

// broken carries an annotation naming a mutex field that does not
// exist; the annotation itself is diagnosed.
type broken struct {
	n int /* guarded-by: nope */ // want `bad guarded-by annotation`
}
