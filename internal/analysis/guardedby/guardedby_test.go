package guardedby_test

import (
	"testing"

	"predmatch/internal/analysis/analysistest"
	"predmatch/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "guarded")
}
