// Package guardedby defines an analyzer for the repository's mutex
// annotation convention: a struct field whose comment carries
//
//	// guarded-by: mu
//
// may only be accessed in functions that lock the named mutex (a
// sync.Mutex or sync.RWMutex field of the same struct) before the
// access. Reads additionally accept RLock on an RWMutex; writes —
// assignments, ++/--, delete(), taking the address, or calling a
// mutating method (Store, Swap, CompareAndSwap, Add) on the field —
// require the exclusive Lock. The variant
//
//	// write-guarded-by: mu
//
// guards only writes, for fields whose reads are made safe some other
// way (e.g. an atomic.Pointer that is copy-on-write swapped under a
// growth mutex but loaded lock-free).
//
// Functions that run with the lock already held by contract declare it
// in their doc comment:
//
//	//predmatchvet:holds mu
//
// The check is intraprocedural and position-based: a Lock call
// anywhere earlier in the same function body satisfies accesses after
// it. That deliberately simple rule still catches the real bug class —
// a code path that never takes the lock at all — at compile time.
package guardedby

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"predmatch/internal/analysis"
)

// Analyzer is the guardedby analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `guarded-by: mu` must only be accessed while holding the named mutex",
	Run:  run,
}

// directives recognized in field comments.
const (
	directiveGuarded      = "guarded-by:"
	directiveWriteGuarded = "write-guarded-by:"
	directiveHolds        = "predmatchvet:holds"
)

// mutatingMethods are method calls on a guarded field that count as
// writes (the atomic mutators).
var mutatingMethods = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true, "Add": true,
}

// annotation is one guarded field of one struct.
type annotation struct {
	structType *types.Named
	field      string
	mutex      string
	writeOnly  bool // write-guarded variant; reads are lock-free by design
	rw         bool // mutex is an RWMutex (RLock satisfies reads)
}

func run(pass *analysis.Pass) error {
	anns := collectAnnotations(pass)
	if len(anns) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, anns, fd)
		}
	}
	return nil
}

// collectAnnotations parses guarded-by directives from struct field
// comments and validates the named mutex field.
func collectAnnotations(pass *analysis.Pass) []*annotation {
	var anns []*annotation
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex, writeOnly, ok := fieldDirective(field)
				if !ok {
					continue
				}
				rw, err := mutexKind(named, mutex)
				if err != nil {
					pass.Reportf(field.Pos(), "bad guarded-by annotation: %v", err)
					continue
				}
				for _, name := range field.Names {
					anns = append(anns, &annotation{
						structType: named,
						field:      name.Name,
						mutex:      mutex,
						writeOnly:  writeOnly,
						rw:         rw,
					})
				}
			}
			return true
		})
	}
	return anns
}

// fieldDirective extracts a guarded-by directive from a field's doc or
// trailing line comment.
func fieldDirective(field *ast.Field) (mutex string, writeOnly bool, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			// Order matters: guarded-by is a suffix of write-guarded-by.
			if i := strings.Index(text, directiveWriteGuarded); i >= 0 {
				return firstField(text[i+len(directiveWriteGuarded):]), true, true
			}
			if i := strings.Index(text, directiveGuarded); i >= 0 {
				return firstField(text[i+len(directiveGuarded):]), false, true
			}
		}
	}
	return "", false, false
}

func firstField(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return strings.TrimSuffix(fields[0], ".")
}

// mutexKind checks that the named struct has a sync.Mutex or
// sync.RWMutex field called mutex, reporting whether it is an RWMutex.
func mutexKind(structType *types.Named, mutex string) (rw bool, err error) {
	if mutex == "" {
		return false, fmt.Errorf("missing mutex field name")
	}
	st, ok := structType.Underlying().(*types.Struct)
	if !ok {
		return false, fmt.Errorf("%s is not a struct", structType.Obj().Name())
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != mutex {
			continue
		}
		switch {
		case analysis.IsNamed(f.Type(), "sync", "RWMutex"):
			return true, nil
		case analysis.IsNamed(f.Type(), "sync", "Mutex"):
			return false, nil
		default:
			return false, fmt.Errorf("field %s.%s is not a sync.Mutex or sync.RWMutex", structType.Obj().Name(), mutex)
		}
	}
	return false, fmt.Errorf("struct %s has no field %s", structType.Obj().Name(), mutex)
}

// lockEvent is one mu.Lock/mu.RLock call site.
type lockEvent struct {
	structType *types.Named
	mutex      string
	exclusive  bool // Lock rather than RLock
	pos        token.Pos
}

func checkFunc(pass *analysis.Pass, anns []*annotation, fd *ast.FuncDecl) {
	held := holdsDirectives(fd)
	var locks []lockEvent
	writes := writeSet(pass, fd.Body)

	// Pass 1: collect lock events.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		exclusive := fun.Sel.Name == "Lock"
		if !exclusive && fun.Sel.Name != "RLock" {
			return true
		}
		// Shape: <base>.<mutexField>.Lock()
		msel, ok := fun.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base := analysis.NamedOf(pass.TypeOf(msel.X))
		if base == nil {
			return true
		}
		locks = append(locks, lockEvent{
			structType: base,
			mutex:      msel.Sel.Name,
			exclusive:  exclusive,
			pos:        call.Pos(),
		})
		return true
	})

	// Pass 2: check guarded accesses.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ann := annotationFor(pass, anns, sel)
		if ann == nil {
			return true
		}
		isWrite := writes[sel]
		if ann.writeOnly && !isWrite {
			return true
		}
		if held[ann.mutex] {
			return true
		}
		var sawShared bool
		for _, l := range locks {
			if l.mutex != ann.mutex || l.pos >= sel.Pos() {
				continue
			}
			if !identicalNamed(l.structType, ann.structType) {
				continue
			}
			if l.exclusive || (!isWrite && ann.rw) {
				return true
			}
			sawShared = true
		}
		verb := "access to"
		if isWrite {
			verb = "write to"
		}
		if isWrite && sawShared {
			pass.Reportf(sel.Pos(), "write to %s.%s under %s.RLock: writes need the exclusive Lock",
				ann.structType.Obj().Name(), ann.field, ann.mutex)
		} else {
			pass.Reportf(sel.Pos(), "%s %s.%s without holding %s (annotate the function with `//%s %s` if the caller holds it)",
				verb, ann.structType.Obj().Name(), ann.field, ann.mutex, directiveHolds, ann.mutex)
		}
		return true
	})
}

// annotationFor returns the annotation matching a field selection, if
// any: base type equals the annotated struct and the selected name is
// the guarded field.
func annotationFor(pass *analysis.Pass, anns []*annotation, sel *ast.SelectorExpr) *annotation {
	// Only real field selections count (not methods, not package
	// qualifiers).
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		if s.Kind() != types.FieldVal {
			return nil
		}
	} else {
		return nil
	}
	base := analysis.NamedOf(pass.TypeOf(sel.X))
	if base == nil {
		return nil
	}
	for _, ann := range anns {
		if ann.field == sel.Sel.Name && identicalNamed(base, ann.structType) {
			return ann
		}
	}
	return nil
}

func identicalNamed(a, b *types.Named) bool {
	return a.Origin().Obj() == b.Origin().Obj()
}

// holdsDirectives parses `//predmatchvet:holds mu` lines from the
// function's doc comment.
func holdsDirectives(fd *ast.FuncDecl) map[string]bool {
	held := make(map[string]bool)
	if fd.Doc == nil {
		return held
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, directiveHolds) {
			continue
		}
		for _, mu := range strings.Fields(text[len(directiveHolds):]) {
			held[strings.TrimSuffix(mu, ",")] = true
		}
	}
	return held
}

// writeSet walks body once and records every selector expression that
// appears in a write position: assignment LHS, ++/--, delete() target,
// &-operand, or receiver of an atomic mutating method call.
func writeSet(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := unwrap(e).(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					mark(n.Args[0])
				}
			}
			if fun, ok := n.Fun.(*ast.SelectorExpr); ok && mutatingMethods[fun.Sel.Name] {
				mark(fun.X)
			}
		}
		return true
	})
	return writes
}

// unwrap strips index, paren and star wrappers so `c.rels[k] = v` marks
// the c.rels selector itself.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}
