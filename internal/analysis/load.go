package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (with their dependencies
// compiled for export data), parses each target package's Go files and
// type-checks them. It shells out to the go command once; dependencies
// are imported from gc export data, so only the target packages are
// parsed from source.
//
// Test files are not loaded in standalone mode; run the binary via
// `go vet -vettool` to cover test packages (cmd/go feeds them as
// separate vet units).
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportDataImporter builds a types.Importer over the named packages
// (and their dependencies) by asking the go command to compile them for
// export data. The analysistest fixture loader uses it to resolve
// standard-library imports of fixture packages.
func ExportDataImporter(fset *token.FileSet, paths []string) (types.Importer, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Error",
	}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(paths, " "), err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exportImporter(fset, exports), nil
}

// exportImporter returns a types.Importer that resolves packages from gc
// export data files (as produced by `go list -export` or recorded in a
// vet .cfg's PackageFile map).
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// checkPackage parses files (paths relative to dir unless absolute) and
// type-checks them as one package.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		parsed = append(parsed, f)
	}
	return TypeCheck(fset, imp, pkgPath, parsed)
}

// TypeCheck runs the type checker over already-parsed files.
func TypeCheck(fset *token.FileSet, imp types.Importer, pkgPath string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		if len(typeErrs) > 0 {
			err = fmt.Errorf("type-checking %s: %v (%d errors)", pkgPath, typeErrs[0], len(typeErrs))
		}
		return nil, err
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
