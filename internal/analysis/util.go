package analysis

import "go/types"

// Deref returns the pointee type of t if t is a pointer, else t.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// NamedOf returns the (possibly instantiated) named type of t, looking
// through one level of pointer, or nil.
func NamedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := Deref(t).(*types.Named)
	return n
}

// IsNamed reports whether t (or *t) is the named type pkgPath.name.
// For instantiated generics the origin type's identity is compared, so
// atomic.Pointer[X] matches ("sync/atomic", "Pointer").
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Origin().Obj()
	return obj != nil && obj.Name() == name &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// TypeArg returns the i'th type argument of t's named type, or nil.
func TypeArg(t types.Type, i int) types.Type {
	n := NamedOf(t)
	if n == nil {
		return nil
	}
	args := n.TypeArgs()
	if args == nil || i >= args.Len() {
		return nil
	}
	return args.At(i)
}
