// Package dispatch seeds non-exhaustive wire-kind switches for the
// wireexhaustive analyzer fixture test.
package dispatch

import "predmatch/internal/wire"

// handle misses OpPing and has no default: violation.
func handle(op string) string {
	switch op { // want `switch on wire.Op\* kinds is not exhaustive: missing OpPing`
	case wire.OpInsert:
		return "i"
	case wire.OpDelete:
		return "d"
	}
	return ""
}

// handleAll covers every Op kind: legal.
func handleAll(op string) string {
	switch op {
	case wire.OpInsert, wire.OpDelete:
		return "mut"
	case wire.OpPing:
		return "ping"
	}
	return ""
}

// handleDefault is incomplete but declares a default: legal.
func handleDefault(op string) string {
	switch op {
	case wire.OpInsert:
		return "i"
	default:
		return ""
	}
}

// route misses TypeNotify: violation in the Type group.
func route(t string) bool {
	switch t { // want `switch on wire.Type\* kinds is not exhaustive: missing TypeNotify`
	case wire.TypeResult:
		return true
	}
	return false
}

// unrelated never trips the check: Openness is not an Op* kind.
func unrelated(s string) bool {
	switch s {
	case wire.Openness:
		return true
	}
	return false
}
