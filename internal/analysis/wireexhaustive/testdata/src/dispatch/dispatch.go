// Package dispatch seeds non-exhaustive wire-kind switches for the
// wireexhaustive analyzer fixture test.
package dispatch

import "predmatch/internal/wire"

// handle misses OpPing and the replication ops, no default: violation.
func handle(op string) string {
	switch op { // want `switch on wire.Op\* kinds is not exhaustive: missing OpPing, OpPromote, OpReplicate`
	case wire.OpInsert:
		return "i"
	case wire.OpDelete:
		return "d"
	}
	return ""
}

// handleAll covers every Op kind: legal.
func handleAll(op string) string {
	switch op {
	case wire.OpInsert, wire.OpDelete:
		return "mut"
	case wire.OpPing:
		return "ping"
	case wire.OpReplicate, wire.OpPromote:
		return "repl"
	}
	return ""
}

// handleDefault is incomplete but declares a default: legal.
func handleDefault(op string) string {
	switch op {
	case wire.OpInsert:
		return "i"
	default:
		return ""
	}
}

// handlePreRepl is the real failure mode the replication PR guards
// against: a dispatch switch complete before OpReplicate/OpPromote
// existed silently drops the new ops — violation.
func handlePreRepl(op string) string {
	switch op { // want `switch on wire.Op\* kinds is not exhaustive: missing OpPromote, OpReplicate`
	case wire.OpInsert, wire.OpDelete:
		return "mut"
	case wire.OpPing:
		return "ping"
	}
	return ""
}

// route misses TypeNotify and TypeRepl: violation in the Type group.
func route(t string) bool {
	switch t { // want `switch on wire.Type\* kinds is not exhaustive: missing TypeNotify, TypeRepl`
	case wire.TypeResult:
		return true
	}
	return false
}

// routeAll covers every frame type, including the replication stream
// frames: legal.
func routeAll(t string) string {
	switch t {
	case wire.TypeResult:
		return "resp"
	case wire.TypeNotify:
		return "note"
	case wire.TypeRepl:
		return "repl"
	}
	return ""
}

// unrelated never trips the check: Openness is not an Op* kind.
func unrelated(s string) bool {
	switch s {
	case wire.Openness:
		return true
	}
	return false
}
