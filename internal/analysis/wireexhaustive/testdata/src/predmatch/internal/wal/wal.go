// Package wal is a fixture miniature of the real WAL package: string
// record-kind constants under the Kind* prefix for the wireexhaustive
// analyzer test.
package wal

// Log record kinds.
const (
	KindDeclare = "declare"
	KindRule    = "rule"
	KindMutate  = "mutate"
)

// Kindness must never be claimed by the Kind group: the prefix match
// requires an exported-looking remainder.
const Kindness = "kindness"
