// Package wire is a fixture miniature of the real protocol package:
// string kind constants grouped by name prefix (Op* requests, Type*
// server frames) for the wireexhaustive analyzer test.
package wire

// Request operations.
const (
	OpInsert    = "insert"
	OpDelete    = "delete"
	OpPing      = "ping"
	OpReplicate = "replicate"
	OpPromote   = "promote"
)

// Server frame types.
const (
	TypeResult = "result"
	TypeNotify = "notify"
	TypeRepl   = "repl"
)

// Openness must never be claimed by the Op group: the prefix match
// requires an exported-looking remainder.
const Openness = "openness"
