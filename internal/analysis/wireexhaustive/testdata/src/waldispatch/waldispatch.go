// Package waldispatch seeds non-exhaustive WAL record-kind switches
// for the wireexhaustive analyzer fixture test: the replay dispatch
// pattern where a missing case means recovery silently skips a record
// class.
package waldispatch

import "predmatch/internal/wal"

// replay misses KindMutate and has no default: violation.
func replay(kind string) string {
	switch kind { // want `switch on wal.Kind\* kinds is not exhaustive: missing KindMutate`
	case wal.KindDeclare:
		return "ddl"
	case wal.KindRule:
		return "rule"
	}
	return ""
}

// replayAll covers every Kind: legal.
func replayAll(kind string) string {
	switch kind {
	case wal.KindDeclare, wal.KindRule:
		return "cmd"
	case wal.KindMutate:
		return "events"
	}
	return ""
}

// replayDefault is incomplete but rejects unknown kinds explicitly:
// legal, and the shape the real applyRecord uses.
func replayDefault(kind string) string {
	switch kind {
	case wal.KindMutate:
		return "events"
	default:
		return "error"
	}
}

// unrelated never trips the check: Kindness is not a Kind* kind.
func unrelated(s string) bool {
	switch s {
	case wal.Kindness:
		return true
	}
	return false
}
