// Package wireexhaustive defines an analyzer that checks exhaustiveness
// of switches over the repository's string kind constants.
//
// Several packages group kind constants by name prefix: internal/wire
// has Op* request operations and Type* server frames; internal/wal has
// Kind* log-record kinds. A switch that dispatches on one of these
// groups but covers only some kinds and has no default clause silently
// drops the missing kinds on the floor — for a network protocol that
// is an invisible compatibility bug, and for the WAL it is recovery
// quietly skipping a record class. The analyzer reports every switch
// that references at least one kind constant of a group and neither
// covers the whole group nor declares a default case.
package wireexhaustive

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"predmatch/internal/analysis"
)

// Spec names one package whose kind constants form prefix groups.
type Spec struct {
	// Pkg is the package's import path.
	Pkg string
	// Prefixes are the constant-name prefixes that form kind groups.
	Prefixes []string
}

// Specs configures the analyzer. Defaults describe the real
// repository; the analyzer tests point them at fixture packages.
var Specs = []Spec{
	{Pkg: "predmatch/internal/wire", Prefixes: []string{"Op", "Type"}},
	{Pkg: "predmatch/internal/wal", Prefixes: []string{"Kind"}},
}

// Analyzer is the wireexhaustive analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wireexhaustive",
	Doc:  "switches over internal/wire message kinds must cover every kind or have a default case",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, spec := range Specs {
		kindPkg := findKindPkg(pass.Pkg, spec.Pkg)
		if kindPkg == nil {
			continue
		}
		groups := collectGroups(kindPkg, spec.Prefixes)
		if len(groups) == 0 {
			continue
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(pass, kindPkg, groups, sw)
				return true
			})
		}
	}
	return nil
}

// findKindPkg locates the kind-constant package among the checked
// package and its direct imports.
func findKindPkg(pkg *types.Package, path string) *types.Package {
	if pkg.Path() == path {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
	}
	return nil
}

// collectGroups gathers the exported kind constants of the package by
// name prefix.
func collectGroups(kindPkg *types.Package, prefixes []string) map[string][]*types.Const {
	groups := make(map[string][]*types.Const)
	scope := kindPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		if b, ok := c.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			continue
		}
		for _, prefix := range prefixes {
			rest := strings.TrimPrefix(name, prefix)
			// Require an exported-looking remainder so a prefix like
			// "Op" cannot claim a constant named "Openness".
			if rest != name && rest != "" && rest[0] >= 'A' && rest[0] <= 'Z' {
				groups[prefix] = append(groups[prefix], c)
				break
			}
		}
	}
	for _, cs := range groups {
		sort.Slice(cs, func(i, j int) bool { return cs[i].Name() < cs[j].Name() })
	}
	return groups
}

func checkSwitch(pass *analysis.Pass, wirePkg *types.Package, groups map[string][]*types.Const, sw *ast.SwitchStmt) {
	covered := make(map[string]bool)
	var group string
	hasDefault := false
	mixed := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			c := constOf(pass, e)
			if c == nil || c.Pkg() != wirePkg {
				continue
			}
			g, ok := groupOf(groups, c)
			if !ok {
				continue
			}
			if group == "" {
				group = g
			} else if group != g {
				mixed = true
			}
			covered[c.Name()] = true
		}
	}
	if group == "" || hasDefault || mixed {
		return
	}
	var missing []string
	for _, c := range groups[group] {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Pos(), "switch on %s%s* kinds is not exhaustive: missing %s (add the cases or an explicit default)",
		pkgBase(wirePkg), group, strings.Join(missing, ", "))
}

// constOf resolves a case expression to the constant it names, or nil.
func constOf(pass *analysis.Pass, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	c, _ := pass.TypesInfo.Uses[id].(*types.Const)
	return c
}

func groupOf(groups map[string][]*types.Const, c *types.Const) (string, bool) {
	for g, cs := range groups {
		for _, m := range cs {
			if m == c {
				return g, true
			}
		}
	}
	return "", false
}

func pkgBase(p *types.Package) string {
	parts := strings.Split(p.Path(), "/")
	return fmt.Sprintf("%s.", parts[len(parts)-1])
}
