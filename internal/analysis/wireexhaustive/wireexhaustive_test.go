package wireexhaustive_test

import (
	"testing"

	"predmatch/internal/analysis/analysistest"
	"predmatch/internal/analysis/wireexhaustive"
)

func TestWireExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", wireexhaustive.Analyzer, "dispatch")
	analysistest.Run(t, "testdata", wireexhaustive.Analyzer, "waldispatch")
}
