// Miniature copy of the real wal package: append/commit surface only.
package wal

// Record is one log record.
type Record struct {
	Kind     string
	Relation string
	Seq      uint64
}

// Log is the write-ahead log.
type Log struct{ seq uint64 }

// Append writes rec and returns its sequence.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.seq++
	return l.seq, nil
}

// AppendExact writes rec under its own sequence.
func (l *Log) AppendExact(rec *Record) (uint64, error) { return rec.Seq, nil }

// Commit waits until seq is durable.
func (l *Log) Commit(seq uint64) error { return nil }
