// Fixture mirroring the real server's handler shapes: apply under mu,
// append under mu, commit off-mutex, then ack. The seeded violations
// each break the log-before-ack contract a different way.
package server

import (
	"sync"

	"predmatch/internal/wal"
	"predmatch/internal/wire"
)

// Server is the fixture server.
type Server struct {
	mu  sync.Mutex
	wal *wal.Log
}

func errMsg(id uint64, err error) wire.Message {
	return wire.Message{ID: id, Error: err.Error()}
}

func okMsg(id uint64) wire.Message { return wire.Message{ID: id} }

//predmatchvet:holds mu
func (s *Server) declareRelation(name string) error {
	if name == "" {
		return errEmpty
	}
	return nil
}

var errEmpty = &fixtureError{"empty relation"}

type fixtureError struct{ msg string }

func (e *fixtureError) Error() string { return e.msg }

//predmatchvet:holds mu
func (s *Server) logCommand(rec *wal.Record) (uint64, error) {
	return s.wal.Append(rec)
}

func (s *Server) commit(seq uint64, err error) error {
	if err != nil {
		return err
	}
	return s.wal.Commit(seq)
}

// handleDeclare is the canonical good handler: every path to the ack
// passes the append, errors return constructors directly.
func (s *Server) handleDeclare(req *wire.Request) wire.Message {
	s.mu.Lock()
	if err := s.declareRelation(req.Relation); err != nil {
		s.mu.Unlock()
		return errMsg(req.ID, err)
	}
	seq, werr := s.logCommand(&wal.Record{Kind: "declare", Relation: req.Relation})
	s.mu.Unlock()
	if err := s.commit(seq, werr); err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.WalSeq = seq
	return m
}

// handleMatch is a read path: no apply/append/commit calls, so the
// contract does not cover it and the bare ack is fine.
func (s *Server) handleMatch(req *wire.Request) wire.Message {
	return okMsg(req.ID)
}

// applyRecord is the replication shape: errors only, commit after
// append — clean.
func (s *Server) applyRecord(rec *wal.Record) error {
	if _, err := s.wal.AppendExact(rec); err != nil {
		return err
	}
	return s.wal.Commit(rec.Seq)
}

// ackWithoutAppend applies a DDL change and acks without ever logging
// it: a crash right after the response erases an acked write.
func (s *Server) ackWithoutAppend(req *wire.Request) wire.Message {
	s.mu.Lock()
	err := s.declareRelation(req.Relation)
	s.mu.Unlock()
	if err != nil {
		return errMsg(req.ID, err)
	}
	return okMsg(req.ID) // want "success response on a path without a dominating WAL append"
}

// appendOnOneBranch logs only when auditing is on, but acks after the
// join — the append no longer dominates the ack.
func (s *Server) appendOnOneBranch(req *wire.Request, audit bool) wire.Message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.declareRelation(req.Relation); err != nil {
		return errMsg(req.ID, err)
	}
	if audit {
		if _, err := s.logCommand(&wal.Record{Kind: "declare"}); err != nil {
			return errMsg(req.ID, err)
		}
	}
	return okMsg(req.ID) // want "success response on a path without a dominating WAL append"
}

// commitBeforeAppend waits for durability before anything was written:
// the commit is hoisted above the append.
func (s *Server) commitBeforeAppend(req *wire.Request) wire.Message {
	s.mu.Lock()
	if err := s.commit(0, nil); err != nil { // want "commit without a dominating WAL append"
		s.mu.Unlock()
		return errMsg(req.ID, err)
	}
	seq, werr := s.logCommand(&wal.Record{Kind: "declare"})
	s.mu.Unlock()
	if err := s.commit(seq, werr); err != nil {
		return errMsg(req.ID, err)
	}
	m := okMsg(req.ID)
	m.WalSeq = seq
	return m
}

// ackEachRecord appends in a loop that can run zero times; the
// zero-iteration path acks a batch that was never logged.
func (s *Server) ackEachRecord(req *wire.Request, recs []*wal.Record) wire.Message {
	s.mu.Lock()
	for _, rec := range recs {
		if _, err := s.logCommand(rec); err != nil {
			s.mu.Unlock()
			return errMsg(req.ID, err)
		}
	}
	s.mu.Unlock()
	return okMsg(req.ID) // want "success response on a path without a dominating WAL append"
}
