// Miniature copy of the real wire package: just enough surface for the
// walack fixture handlers.
package wire

// Request is one client request.
type Request struct {
	ID       uint64
	Relation string
}

// Message is one response frame; returning a non-error Message is an
// ack.
type Message struct {
	ID     uint64
	Error  string
	WalSeq uint64
}
