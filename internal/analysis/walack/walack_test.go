package walack_test

import (
	"testing"

	"predmatch/internal/analysis/analysistest"
	"predmatch/internal/analysis/walack"
)

func TestWalack(t *testing.T) {
	analysistest.Run(t, "testdata", walack.Analyzer, "predmatch/internal/server")
}
