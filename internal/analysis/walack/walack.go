// Package walack defines an analyzer enforcing the server's
// log-before-ack durability contract (docs/DURABILITY.md): a mutation
// or DDL handler may only return a success response after the change
// has been appended to the WAL, and may only wait for durability
// (commit) on a record that was actually appended. A path that acks
// first is exactly the bug class the PR 5 crash test exists to catch —
// a client that saw "ok" for a write a kill -9 then erases.
//
// The check is control-flow aware, built on the framework's CFG
// dominator facility. Within the server package, a function is covered
// when it calls an apply, append, or commit helper (ApplyCalls,
// AppendCalls, CommitCalls). In a covered function:
//
//   - every return of a wire.Message that is not a direct error
//     constructor call (ErrorCalls) must be dominated by a WAL append —
//     the append executes on every path from entry to that ack;
//   - every commit call must be dominated by a WAL append.
//
// Functions whose own name is an append or commit helper are exempt:
// they are the wrappers the contract is expressed through. Functions
// that apply state but delegate logging to their caller (applyMutation
// under `//predmatchvet:holds mu`) stay uncovered because the calls
// they make — storage-level Insert/Update/Delete — are not apply
// helpers.
//
// The analysis is intraprocedural and name-based: it recognizes the
// helper calls by callee name. That deliberately simple rule encodes
// the real handler shape (apply under mu, append under mu, commit off
// mu, then ack) and catches the real regressions: an early-returned
// ack, an append moved into one branch, a commit hoisted above the
// append.
package walack

import (
	"go/ast"
	"go/token"

	"predmatch/internal/analysis"
)

// Configuration. Defaults describe the real repository; the fixture
// vendors miniature packages under the same import paths.
var (
	// ServerPkg is the only package the analyzer inspects.
	ServerPkg = "predmatch/internal/server"
	// WirePkg/MessageType name the response type whose success returns
	// are acks.
	WirePkg     = "predmatch/internal/wire"
	MessageType = "Message"
	// ApplyCalls are the helpers that mutate durable state; calling one
	// makes a function subject to the log-before-ack check.
	ApplyCalls = map[string]bool{
		"applyMutation": true, "declareRelation": true, "addDirectPred": true,
		"DefineRule": true, "DropRule": true, "CreateIndex": true,
	}
	// AppendCalls put a record in the log.
	AppendCalls = map[string]bool{
		"logCommand": true, "logPending": true, "Append": true, "AppendExact": true,
	}
	// CommitCalls wait for appended records to become durable.
	CommitCalls = map[string]bool{"commit": true, "Commit": true}
	// ErrorCalls construct error responses; returning one directly is
	// not an ack.
	ErrorCalls = map[string]bool{"errMsg": true, "notLeaderMsg": true, "minSeqErr": true}
)

// Analyzer is the walack analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "walack",
	Doc:  "log-before-ack: server success responses and commits must be dominated by a WAL append",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != ServerPkg {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if AppendCalls[fd.Name.Name] || CommitCalls[fd.Name.Name] {
				continue // the wrappers the contract is built from
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// funcCalls are the contract-relevant call sites of one function.
type funcCalls struct {
	applies []token.Pos
	appends []token.Pos
	commits []token.Pos
	acks    []token.Pos // success wire.Message returns
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	calls := collect(pass, fd)
	if len(calls.applies) == 0 && len(calls.appends) == 0 && len(calls.commits) == 0 {
		return // not a mutation path
	}
	if len(calls.acks) == 0 && len(calls.commits) == 0 {
		return
	}
	cfg := analysis.NewCFG(fd.Body)
	dominated := func(pos token.Pos) bool {
		for _, a := range calls.appends {
			if cfg.Dominates(a, pos) {
				return true
			}
		}
		return false
	}
	for _, ack := range calls.acks {
		if !dominated(ack) {
			pass.Reportf(ack, "success response on a path without a dominating WAL append (log-before-ack): append the record before acking, or return an error constructor")
		}
	}
	for _, c := range calls.commits {
		if !dominated(c) {
			pass.Reportf(c, "commit without a dominating WAL append: nothing was logged on some path to this wait")
		}
	}
}

// collect walks the function body — not descending into function
// literals, whose flow the CFG does not model — recording apply,
// append, and commit calls plus ack returns.
func collect(pass *analysis.Pass, fd *ast.FuncDecl) *funcCalls {
	calls := &funcCalls{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			switch name := calleeName(n); {
			case ApplyCalls[name]:
				calls.applies = append(calls.applies, n.Pos())
			case AppendCalls[name]:
				calls.appends = append(calls.appends, n.Pos())
			case CommitCalls[name]:
				calls.commits = append(calls.commits, n.Pos())
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if !analysis.IsNamed(pass.TypeOf(res), WirePkg, MessageType) {
					continue
				}
				if call, ok := res.(*ast.CallExpr); ok && ErrorCalls[calleeName(call)] {
					continue
				}
				calls.acks = append(calls.acks, n.Pos())
			}
		}
		return true
	})
	return calls
}

// calleeName is the called function or method name, or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
