package atomicpub_test

import (
	"testing"

	"predmatch/internal/analysis/analysistest"
	"predmatch/internal/analysis/atomicpub"
)

func TestAtomicpub(t *testing.T) {
	analysistest.Run(t, "testdata", atomicpub.Analyzer, "atompub")
}
