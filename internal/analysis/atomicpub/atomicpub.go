// Package atomicpub defines an analyzer that enforces the repo's
// publish-then-freeze discipline for every atomic.Pointer[T], not just
// the core.Index pointer snapshotmut knows about (hint's built
// hierarchy, the prefilter's relation summaries, the shard directory,
// the strategy adapters' holders).
//
// Three rules, all intraprocedural over the framework's CFG:
//
//   - publish-freeze: once a value is passed to Store / Swap /
//     CompareAndSwap it is shared with lock-free readers, so a field or
//     element write through the publishing variable on any path after
//     the publish — including a loop back-edge into the same statements
//     — is a data race. Reassigning the variable to a fresh value kills
//     the taint.
//
//   - load-freeze: a value obtained from Load is someone else's
//     published snapshot; writing through it (directly,
//     P.Load().F = x, or via a variable assigned from a Load) is
//     equally a race. Copy first, mutate the copy.
//
//   - double-checked re-load: the lazy-rebuild idiom loads, finds nil,
//     takes the rebuild lock, and must load AGAIN before storing —
//     between the first load and the lock another goroutine may have
//     completed the rebuild, and storing without re-checking clobbers
//     its work. Flagged when a Load dominates a mutex Lock that
//     dominates the Store and no re-Load of the same pointer sits
//     between the Lock and the Store.
//
// Both dataflow rules are may-analyses (union at joins): a write that
// races on only one path is still a race. Pointer identity is
// syntactic — the receiver expression's source text names the slot —
// which is exact within one function, where these idioms live.
// Function literals are opaque, matching the CFG.
package atomicpub

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"predmatch/internal/analysis"
)

// Analyzer is the atomicpub analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicpub",
	Doc:  "values published through any atomic.Pointer are immutable; double-checked rebuilds must re-load under the lock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// event is one dataflow-relevant action inside a CFG block, in source
// order.
type event struct {
	pos token.Pos
	v   *types.Var // variable concerned (nil for direct-chain writes)

	kind eventKind
	what string // for writes: source text of the written expression
}

type eventKind int

const (
	evPublish eventKind = iota // v passed to Store/Swap/CompareAndSwap
	evAssign                   // v reassigned to a non-frozen value
	evFreeze                   // v assigned from a Load
	evWrite                    // field/element write through v
)

// varState is the per-variable dataflow fact.
type varState struct{ published, frozen bool }

// slotCall is a Load, Store or Lock call, keyed for rule 3.
type slotCall struct {
	slot string // source text of the atomic.Pointer expression
	pos  token.Pos
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	cfg := analysis.NewCFG(fd.Body)
	var loads, stores, locks []slotCall
	events := make([][]event, len(cfg.Blocks))

	for i, blk := range cfg.Blocks {
		for _, stmt := range blk.Nodes {
			if _, ok := stmt.(*ast.DeferStmt); ok {
				continue
			}
			analysis.InspectBlockNode(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit, *ast.DeferStmt:
					return false
				case *ast.CallExpr:
					collectCall(pass, n, i, events, &loads, &stores, &locks)
				case *ast.AssignStmt:
					collectAssign(pass, n, i, events)
				case *ast.IncDecStmt:
					if ev, ok := writeEvent(pass, n.X, n.Pos()); ok {
						events[i] = append(events[i], ev)
					}
				}
				return true
			})
		}
		sort.SliceStable(events[i], func(a, b int) bool {
			return events[i][a].pos < events[i][b].pos
		})
	}

	runDataflow(pass, cfg, events)
	checkDoubleChecked(pass, cfg, loads, stores, locks)
}

// collectCall records Load/Store/Lock calls and publish events.
func collectCall(pass *analysis.Pass, call *ast.CallExpr, blk int, events [][]event,
	loads, stores, locks *[]slotCall) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if fun.Sel.Name == "Lock" && isMutex(pass.TypeOf(fun.X)) {
		*locks = append(*locks, slotCall{pos: call.Pos()})
		return
	}
	if !isAtomicPtr(pass.TypeOf(fun.X)) {
		return
	}
	slot := types.ExprString(fun.X)
	var published ast.Expr
	switch fun.Sel.Name {
	case "Load":
		*loads = append(*loads, slotCall{slot: slot, pos: call.Pos()})
		return
	case "Store", "Swap":
		if len(call.Args) == 1 {
			published = call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			published = call.Args[1]
		}
	default:
		return
	}
	*stores = append(*stores, slotCall{slot: slot, pos: call.Pos()})
	if v := baseIdentVar(pass, published); v != nil {
		events[blk] = append(events[blk], event{pos: call.Pos(), v: v, kind: evPublish})
	}
}

// collectAssign records kills (reassignments), freezes (assignment
// from a Load) and writes through tracked variables.
func collectAssign(pass *analysis.Pass, n *ast.AssignStmt, blk int, events [][]event) {
	paired := len(n.Lhs) == len(n.Rhs)
	for i, lhs := range n.Lhs {
		if id, ok := stripParen(lhs).(*ast.Ident); ok {
			// Whole-variable assignment: kill, or freeze if the new
			// value comes straight from an atomic Load.
			v := identVar(pass, id)
			if v == nil {
				continue
			}
			kind := evAssign
			if paired && isLoadResult(pass, n.Rhs[i]) {
				kind = evFreeze
			}
			events[blk] = append(events[blk], event{pos: n.Pos(), v: v, kind: kind})
			continue
		}
		if ev, ok := writeEvent(pass, lhs, lhs.Pos()); ok {
			events[blk] = append(events[blk], ev)
		} else if root := chainRoot(lhs); root != nil && isLoadCall(pass, root) {
			// Direct write through a Load chain: always a race.
			pass.Reportf(lhs.Pos(),
				"write to %s, part of the frozen snapshot returned by atomic Load: published values are immutable (copy before mutating)",
				types.ExprString(lhs))
		}
	}
}

// writeEvent builds an evWrite for a selector/index write whose chain
// roots at a plain variable.
func writeEvent(pass *analysis.Pass, lhs ast.Expr, pos token.Pos) (event, bool) {
	root := chainRoot(lhs)
	id, ok := root.(*ast.Ident)
	if !ok {
		return event{}, false
	}
	if root == stripParen(lhs) {
		return event{}, false // plain ident: that's an assignment, not a write-through
	}
	v := identVar(pass, id)
	if v == nil {
		return event{}, false
	}
	return event{pos: pos, v: v, kind: evWrite, what: types.ExprString(lhs)}, true
}

// runDataflow runs the may-published/may-frozen analysis and reports
// racy writes.
func runDataflow(pass *analysis.Pass, cfg *analysis.CFG, events [][]event) {
	any := false
	for _, evs := range events {
		if len(evs) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	in := make([]map[*types.Var]varState, len(cfg.Blocks))
	out := make([]map[*types.Var]varState, len(cfg.Blocks))
	in[0] = map[*types.Var]varState{}
	for changed := true; changed; {
		changed = false
		for i, blk := range cfg.Blocks {
			if i != 0 {
				merged := make(map[*types.Var]varState)
				for _, p := range blk.Preds {
					for v, st := range out[p.Index] {
						m := merged[v]
						m.published = m.published || st.published
						m.frozen = m.frozen || st.frozen
						merged[v] = m
					}
				}
				in[i] = merged
			}
			o := applyEvents(in[i], events[i], nil)
			if !sameState(o, out[i]) {
				out[i] = o
				changed = true
			}
		}
	}
	for i := range cfg.Blocks {
		applyEvents(in[i], events[i], pass)
	}
}

// applyEvents folds a block's events over the incoming state; when
// pass is non-nil, racy writes are reported.
func applyEvents(in map[*types.Var]varState, events []event, pass *analysis.Pass) map[*types.Var]varState {
	st := make(map[*types.Var]varState, len(in))
	for v, s := range in {
		st[v] = s
	}
	for _, ev := range events {
		switch ev.kind {
		case evPublish:
			s := st[ev.v]
			s.published = true
			st[ev.v] = s
		case evAssign:
			delete(st, ev.v)
		case evFreeze:
			st[ev.v] = varState{frozen: true}
		case evWrite:
			if pass == nil {
				continue
			}
			s := st[ev.v]
			if s.published {
				pass.Reportf(ev.pos,
					"write to %s after %s was published with an atomic Store: lock-free readers already see it (mutate before publishing, or clone)",
					ev.what, ev.v.Name())
			} else if s.frozen {
				pass.Reportf(ev.pos,
					"write to %s through %s, a frozen snapshot obtained from an atomic Load: published values are immutable (copy before mutating)",
					ev.what, ev.v.Name())
			}
		}
	}
	return st
}

func sameState(a, b map[*types.Var]varState) bool {
	if b == nil || len(a) != len(b) {
		return false
	}
	for v, s := range a {
		if bs, ok := b[v]; !ok || bs != s {
			return false
		}
	}
	return true
}

// checkDoubleChecked enforces rule 3: for every Store whose pointer was
// loaded before a dominating Lock, a re-Load must sit between the Lock
// and the Store.
func checkDoubleChecked(pass *analysis.Pass, cfg *analysis.CFG, loads, stores, locks []slotCall) {
	for _, s := range stores {
		reported := false
		for _, k := range locks {
			if reported || !cfg.Dominates(k.pos, s.pos) {
				continue
			}
			early := false
			for _, l := range loads {
				if l.slot == s.slot && cfg.Dominates(l.pos, k.pos) {
					early = true
					break
				}
			}
			if !early {
				continue
			}
			reloaded := false
			for _, l := range loads {
				if l.slot == s.slot && l.pos > k.pos &&
					cfg.Reaches(k.pos, l.pos) && cfg.Reaches(l.pos, s.pos) {
					reloaded = true
					break
				}
			}
			if !reloaded {
				pass.Reportf(s.pos,
					"double-checked publish of %s: the pre-lock Load is stale once the lock is held; re-Load and re-check before storing",
					s.slot)
				reported = true
			}
		}
	}
}

// --- type and expression helpers ---

func isAtomicPtr(t types.Type) bool { return analysis.IsNamed(t, "sync/atomic", "Pointer") }

func isMutex(t types.Type) bool {
	return analysis.IsNamed(t, "sync", "Mutex") || analysis.IsNamed(t, "sync", "RWMutex")
}

// isLoadCall reports whether e is a call to an atomic.Pointer Load.
func isLoadCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.SelectorExpr)
	return ok && fun.Sel.Name == "Load" && isAtomicPtr(pass.TypeOf(fun.X))
}

// isLoadResult reports whether rhs is P.Load() or *P.Load().
func isLoadResult(pass *analysis.Pass, rhs ast.Expr) bool {
	for {
		switch x := rhs.(type) {
		case *ast.ParenExpr:
			rhs = x.X
		case *ast.StarExpr:
			rhs = x.X
		default:
			return isLoadCall(pass, rhs)
		}
	}
}

// chainRoot unwraps selectors, indexes, stars and parens down to the
// root expression of an lvalue chain.
func chainRoot(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return e
		}
	}
}

func stripParen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// identVar resolves an identifier to its variable object.
func identVar(pass *analysis.Pass, id *ast.Ident) *types.Var {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// baseIdentVar resolves v or &v to a variable object, so both
// p.Store(next) and p.Store(&next) taint next.
func baseIdentVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	if e == nil {
		return nil
	}
	e = stripParen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = stripParen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return identVar(pass, id)
}
