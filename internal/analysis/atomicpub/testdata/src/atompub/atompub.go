// Fixture for the atomicpub analyzer: a config registry published
// through an atomic.Pointer with a lazy double-checked rebuild, plus
// the mutations each rule exists to catch.
package atompub

import (
	"sync"
	"sync/atomic"
)

// Config is the published value.
type Config struct {
	Limit int
	Tags  map[string]bool
}

// Registry publishes its current Config lock-free.
type Registry struct {
	mu   sync.Mutex
	conf atomic.Pointer[Config]
}

// SetLimit is the sanctioned shape: build a fresh value, publish it,
// stop touching it.
func (r *Registry) SetLimit(n int) {
	next := &Config{Limit: n, Tags: map[string]bool{}}
	r.conf.Store(next)
}

// cloneThenWrite copies the loaded snapshot and mutates only the copy
// before publishing: clean.
func (r *Registry) cloneThenWrite(n int) {
	cur := r.conf.Load()
	next := &Config{Limit: cur.Limit}
	next.Limit = n
	r.conf.Store(next)
}

// reassignAfterStore reuses the variable name but points it at a fresh
// value first, so the write never touches the published Config: clean.
func (r *Registry) reassignAfterStore(n int) {
	next := &Config{}
	r.conf.Store(next)
	next = &Config{}
	next.Limit = n
	r.conf.Store(next)
}

// mutateAfterStore writes the value it just published: readers that
// loaded it race with the write.
func (r *Registry) mutateAfterStore(n int) {
	next := &Config{}
	r.conf.Store(next)
	next.Limit = n // want "write to next.Limit after next was published with an atomic Store"
}

// reuseAcrossIterations publishes inside a loop and writes the same
// variable on the next iteration — the back-edge carries the taint.
func (r *Registry) reuseAcrossIterations(ns []int) {
	next := &Config{}
	for _, n := range ns {
		next.Limit = n // want "write to next.Limit after next was published with an atomic Store"
		r.conf.Store(next)
	}
}

// writeThroughLoad mutates the live snapshot through a call chain.
func (r *Registry) writeThroughLoad(n int) {
	r.conf.Load().Limit = n // want "frozen snapshot returned by atomic Load"
}

// writeLoadedVar mutates the live snapshot through a variable.
func (r *Registry) writeLoadedVar() {
	c := r.conf.Load()
	c.Tags["hot"] = true // want "a frozen snapshot obtained from an atomic Load"
}

// goodDoubleCheck is the sanctioned lazy rebuild: re-load after taking
// the lock before deciding to store.
func (r *Registry) goodDoubleCheck() *Config {
	if c := r.conf.Load(); c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.conf.Load(); c != nil {
		return c
	}
	c := &Config{Tags: map[string]bool{}}
	r.conf.Store(c)
	return c
}

// Index stands in for a rebuilt per-relation index during an online
// structure migration.
type Index struct {
	Structure string
	N         int
}

// Shard publishes its live index snapshot lock-free; migrations swap
// in a structure rebuilt off-lock.
type Shard struct {
	idx atomic.Pointer[Index]
}

// migrateClean is the sanctioned migration publish path: rebuild a
// fresh candidate per attempt, publish it with a version check, and
// never touch a candidate after it has been offered to readers.
func (s *Shard) migrateClean(structure string) {
	for {
		cur := s.idx.Load()
		next := &Index{Structure: structure, N: cur.N}
		if s.idx.CompareAndSwap(cur, next) {
			return
		}
	}
}

// migratePatchAfterSwap reuses one rebuilt candidate across swap
// attempts, patching it in place on the retry path — but a successful
// CompareAndSwap already handed that value to lock-free readers, so
// the back-edge write races with them.
func (s *Shard) migratePatchAfterSwap(structure string) {
	next := &Index{Structure: structure}
	for {
		cur := s.idx.Load()
		next.N = cur.N // want "write to next.N after next was published"
		if s.idx.CompareAndSwap(cur, next) {
			return
		}
	}
}

// staleDoubleCheck skips the re-load: a rebuild that raced in between
// the first load and the lock gets silently clobbered.
func (r *Registry) staleDoubleCheck() *Config {
	if c := r.conf.Load(); c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Config{Tags: map[string]bool{}}
	r.conf.Store(c) // want "double-checked publish of r.conf"
	return c
}
