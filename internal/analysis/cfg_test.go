package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses src, builds the CFG of its first function, and
// returns a lookup resolving a unique source substring to its position.
func buildTestCFG(t *testing.T, src string) (*CFG, func(marker string) token.Pos) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	var body *ast.BlockStmt
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			body = fd.Body
			break
		}
	}
	if body == nil {
		t.Fatal("fixture has no function body")
	}
	g := NewCFG(body)
	tf := fset.File(f.Pos())
	// Search markers inside the function body only, so declarations in
	// the fixture header don't collide.
	base := strings.Index(src, "func f()")
	if base < 0 {
		t.Fatal("fixture has no func f()")
	}
	lookup := func(marker string) token.Pos {
		t.Helper()
		idx := strings.Index(src[base:], marker)
		if idx < 0 {
			t.Fatalf("marker %q not in fixture", marker)
		}
		if strings.Contains(src[base+idx+len(marker):], marker) {
			t.Fatalf("marker %q not unique in fixture", marker)
		}
		return tf.Pos(base + idx)
	}
	return g, lookup
}

// check is one expected query result between two marker substrings.
type check struct {
	from, to   string
	dom, reach bool
}

func TestCFGQueries(t *testing.T) {
	const header = "package p\n\nfunc a()\nfunc b()\nfunc c()\nfunc d()\nfunc e()\nfunc w()\nfunc x()\nfunc y()\nfunc z()\nfunc cleanup()\nvar cond bool\nvar n int\nvar ch, ch2 chan int\nvar xs []int\n\n"

	tests := []struct {
		name   string
		src    string
		checks []check
	}{
		{
			name: "straight line",
			src: `func f() {
	a()
	b()
	c()
}`,
			checks: []check{
				{"a()", "c()", true, true},
				{"a()", "a()", true, false}, // a node dominates itself, never re-runs
				{"c()", "a()", false, false},
				{"b()", "c()", true, true},
			},
		},
		{
			name: "if branch",
			src: `func f() {
	a()
	if cond {
		b()
	}
	d()
}`,
			checks: []check{
				{"a()", "b()", true, true},
				{"a()", "d()", true, true},
				{"cond {", "b()", true, true},
				{"b()", "d()", false, true}, // branch may be skipped, but flows onward
				{"d()", "b()", false, false},
			},
		},
		{
			name: "if else joins",
			src: `func f() {
	a()
	if cond {
		b()
	} else {
		c()
	}
	d()
}`,
			checks: []check{
				{"b()", "d()", false, true},
				{"c()", "d()", false, true},
				{"a()", "d()", true, true},
				{"b()", "c()", false, false}, // exclusive branches
			},
		},
		{
			name: "early return cuts the path",
			src: `func f() {
	a()
	if cond {
		e()
		return
	}
	b()
}`,
			checks: []check{
				{"e()", "b()", false, false}, // return: no flow to b
				{"a()", "b()", true, true},
				{"return", "b()", false, false},
			},
		},
		{
			name: "for loop",
			src: `func f() {
	a()
	for i := 0; i < n; i++ {
		w()
	}
	d()
}`,
			checks: []check{
				{"a()", "w()", true, true},
				{"i < n", "w()", true, true},
				{"w()", "d()", false, true}, // zero iterations possible
				{"w()", "w()", true, true},  // dominates itself; reaches itself via the back edge
				{"w()", "i++", true, true},  // the body is the only path to the post stmt
				{"i++", "w()", false, true},
				{"d()", "w()", false, false},
			},
		},
		{
			name: "infinite loop with break",
			src: `func f() {
	for {
		x()
		if cond {
			break
		}
		y()
	}
	z()
}`,
			checks: []check{
				{"x()", "y()", true, true},
				{"y()", "x()", false, true}, // back edge
				{"x()", "z()", true, true},  // only exit is the break, past x
				{"y()", "z()", false, true},
				{"break", "z()", true, true}, // the break is the sole path to z
			},
		},
		{
			name: "range loop",
			src: `func f() {
	for _, v := range xs {
		w()
		_ = v
	}
	d()
}`,
			checks: []check{
				{"range xs", "w()", true, true},
				{"w()", "d()", false, true},
				{"w()", "w()", true, true},
				{"range xs", "d()", true, true},
			},
		},
		{
			name: "switch without default may skip every case",
			src: `func f() {
	a()
	switch n {
	case 1:
		b()
	case 2:
		c()
	}
	d()
}`,
			checks: []check{
				{"b()", "d()", false, true},
				{"a()", "d()", true, true},
				{"b()", "c()", false, false},
			},
		},
		{
			name: "switch with default covers all paths",
			src: `func f() {
	switch n {
	case 1:
		b()
		fallthrough
	default:
		c()
	}
	d()
}`,
			checks: []check{
				{"b()", "c()", false, true}, // fallthrough
				{"c()", "d()", true, true},  // both paths funnel through default
				{"b()", "d()", false, true},
			},
		},
		{
			name: "select",
			src: `func f() {
	a()
	select {
	case <-ch:
		b()
	case <-ch2:
		c()
	}
	d()
}`,
			checks: []check{
				{"a()", "b()", true, true},
				{"b()", "d()", false, true},
				{"b()", "c()", false, false},
			},
		},
		{
			name: "defer is a straight-line node",
			src: `func f() {
	a()
	defer cleanup()
	if cond {
		return
	}
	b()
}`,
			checks: []check{
				{"a()", "defer cleanup()", true, true},
				{"defer cleanup()", "b()", true, true},
				{"cleanup()", "b()", true, true}, // innermost span is the defer stmt
			},
		},
		{
			name: "panic terminates the path",
			src: `func f() {
	a()
	if cond {
		e()
		panic("boom")
	}
	b()
}`,
			checks: []check{
				{"e()", "b()", false, false},
				{"a()", "b()", true, true},
			},
		},
		{
			name: "goto skips, label rejoins",
			src: `func f() {
	a()
	goto L
L:
	b()
	c()
}`,
			checks: []check{
				{"a()", "b()", true, true},
				{"b()", "c()", true, true},
			},
		},
		{
			name: "labeled break leaves the outer loop",
			src: `func f() {
L:
	for {
		for {
			x()
			if cond {
				break L
			}
			y()
		}
	}
	d()
}`,
			checks: []check{
				{"x()", "d()", true, true}, // break L is the only exit
				{"y()", "x()", false, true},
				{"d()", "x()", false, false},
			},
		},
		{
			name: "continue restarts the loop",
			src: `func f() {
	for i := 0; i < n; i++ {
		if cond {
			continue
		}
		x()
	}
	d()
}`,
			checks: []check{
				{"continue", "x()", false, true}, // via i++ and the next iteration
				{"x()", "x()", true, true},
				{"continue", "d()", false, true},
			},
		},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, pos := buildTestCFG(t, header+tt.src)
			for _, c := range tt.checks {
				if got := g.Dominates(pos(c.from), pos(c.to)); got != c.dom {
					t.Errorf("Dominates(%q, %q) = %v, want %v", c.from, c.to, got, c.dom)
				}
				if got := g.Reaches(pos(c.from), pos(c.to)); got != c.reach {
					t.Errorf("Reaches(%q, %q) = %v, want %v", c.from, c.to, got, c.reach)
				}
			}
		})
	}
}

// TestCFGFuncLitOpaque pins the documented limitation: positions inside
// a function literal resolve to the enclosing statement, and the
// literal's own control flow is not part of the graph.
func TestCFGFuncLitOpaque(t *testing.T) {
	src := `package p

func a()
func b()

func f() {
	a()
	g := func() {
		b()
	}
	g()
}`
	g, pos := buildTestCFG(t, src)
	// b() maps to the assignment statement containing the literal,
	// which a() dominates like any straight-line successor.
	if !g.Dominates(pos("a()"), pos("b()")) {
		t.Error("statement containing the FuncLit should be dominated by a()")
	}
	if g.Reaches(pos("b()"), pos("a()")) {
		t.Error("no backward flow to a()")
	}
}

func TestCFGNilBody(t *testing.T) {
	g := NewCFG(nil)
	if len(g.Blocks) != 1 {
		t.Fatalf("nil body: got %d blocks, want 1 entry block", len(g.Blocks))
	}
	if g.Dominates(token.Pos(1), token.Pos(2)) || g.Reaches(token.Pos(1), token.Pos(2)) {
		t.Error("queries on an empty graph must fail closed")
	}
}
