// Package markdiscipline defines an analyzer that keeps every mutation
// of the IBS-tree's per-node mark sets (the paper's '<', '=' and '>'
// sets, Figures 5 and 6) inside the centralized fix-up helpers.
//
// The rotation and deletion fix-up rules are the subtlest part of the
// IBS-tree: a mark write from anywhere else in the package bypasses the
// mark registry that deletion relies on and silently corrupts stabbing
// answers. The analyzer therefore reports any write to node.marks —
// direct assignment, or a call to a mutating mark-set method such as
// Add/Remove — from a file other than the allowed fix-up files.
// Reads (Each, Has, IDs, Len) are allowed everywhere, as is the
// composite-literal initialization of a freshly allocated node.
package markdiscipline

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"

	"predmatch/internal/analysis"
)

// Configuration. Defaults describe the real repository; the analyzer
// tests point them at fixture packages.
var (
	// PkgPath is the import path of the IBS-tree package.
	PkgPath = "predmatch/internal/ibs"
	// NodeType is the tree-node struct carrying the mark sets.
	NodeType = "node"
	// MarksField is the mark-set field of NodeType.
	MarksField = "marks"
	// AllowedFiles are the file basenames that may mutate mark sets:
	// the mark registry and the rotation/deletion fix-up rules.
	AllowedFiles = map[string]bool{
		"marks.go":  true,
		"rotate.go": true,
		"remove.go": true,
	}
	// MutatingMethods are the mark-set methods that modify the set.
	MutatingMethods = map[string]bool{"Add": true, "Remove": true}
)

// Analyzer is the markdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "markdiscipline",
	Doc:  "IBS-tree mark sets may only be mutated by the centralized fix-up helpers (marks.go, rotate.go, remove.go)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != PkgPath {
		return nil
	}
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if AllowedFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel := marksSelector(pass, lhs); sel != nil {
						pass.Reportf(sel.Pos(), "direct write to %s.%s outside the mark fix-up files (%s)", NodeType, MarksField, allowedList())
					}
				}
			case *ast.IncDecStmt:
				if sel := marksSelector(pass, n.X); sel != nil {
					pass.Reportf(sel.Pos(), "direct write to %s.%s outside the mark fix-up files (%s)", NodeType, MarksField, allowedList())
				}
			case *ast.CallExpr:
				fun, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !MutatingMethods[fun.Sel.Name] {
					return true
				}
				if sel := marksSelector(pass, fun.X); sel != nil {
					pass.Reportf(n.Pos(), "%s on a %s mark set outside the mark fix-up files (%s); use the mark/unmark helpers", fun.Sel.Name, NodeType, allowedList())
				}
			}
			return true
		})
	}
	return nil
}

// marksSelector unwraps index/paren/star expressions and returns the
// node.marks selector at the root of e, or nil.
func marksSelector(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if x.Sel.Name != MarksField {
				return nil
			}
			base := pass.TypeOf(x.X)
			n := analysis.NamedOf(base)
			if n == nil {
				return nil
			}
			obj := n.Origin().Obj()
			if obj.Name() == NodeType && obj.Pkg() == pass.Pkg {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

func allowedList() string {
	names := make([]string, 0, len(AllowedFiles))
	for n := range AllowedFiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
