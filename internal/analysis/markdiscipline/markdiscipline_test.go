package markdiscipline_test

import (
	"testing"

	"predmatch/internal/analysis/analysistest"
	"predmatch/internal/analysis/markdiscipline"
)

func TestMarkDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", markdiscipline.Analyzer, "predmatch/internal/ibs")
}
