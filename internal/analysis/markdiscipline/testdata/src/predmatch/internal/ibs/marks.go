package ibs

// mark records id in n's which-set — the centralized mark registry.
// This file is on the analyzer's allow list, so its writes are legal.
func mark(n *node, which, id int) {
	if n.marks[which] == nil {
		n.marks[which] = make(set)
	}
	n.marks[which].Add(id)
}

// unmark removes id from n's which-set.
func unmark(n *node, which, id int) {
	n.marks[which].Remove(id)
}
