package ibs

// insert seeds out-of-file mark writes: this file is not on the
// analyzer's allow list, so every mark mutation below is a violation
// while the reads stay legal.
func insert(root *node, key, id int) {
	n := &node{key: key}
	n.marks[0] = make(set)   // want `direct write to node.marks outside the mark fix-up files`
	n.marks[1].Add(id)       // want `Add on a node mark set outside the mark fix-up files`
	root.marks[2].Remove(id) // want `Remove on a node mark set outside the mark fix-up files`
	if root.marks[0].Has(id) {
		mark(root, 0, id)
	}
	root.left = n
}
