// Package ibs is a fixture miniature of the real IBS-tree package: a
// node carrying the paper's three per-node mark sets ('<', '=', '>')
// plus the allowed fix-up file (marks.go) and a violating file
// (insert.go) for the markdiscipline analyzer test.
package ibs

// set is a mark set.
type set map[int]bool

// Add marks id (mutating).
func (s set) Add(id int) { s[id] = true }

// Remove unmarks id (mutating).
func (s set) Remove(id int) { delete(s, id) }

// Has reports membership (read-only).
func (s set) Has(id int) bool { return s[id] }

// node is one tree node with the three mark sets.
type node struct {
	key         int
	marks       [3]set
	left, right *node
}
