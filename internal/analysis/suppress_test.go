package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// flagCalls is a test analyzer reporting every call to a function
// literally named flagme.
var flagCalls = &Analyzer{
	Name: "flagcalls",
	Doc:  "reports calls to flagme",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "flagme" {
					pass.Reportf(call.Pos(), "call to flagme")
				}
				return true
			})
		}
		return nil
	},
}

// checkSource type-checks src as a standalone package and runs the
// given analyzers over it.
func checkSource(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "supp.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg, err := TypeCheck(fset, nil, "supptest", []*ast.File{f})
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	diags, err := Check(pkg, analyzers...)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return diags
}

func TestSuppressionLifecycle(t *testing.T) {
	const header = "package supptest\n\nfunc flagme()\nfunc fine()\n\n"

	tests := []struct {
		name string
		src  string
		want []string // substrings, one per expected diagnostic, in order
	}{
		{
			name: "used suppression silences and is not stale",
			src: `func f() {
	flagme() //predmatchvet:ignore flagcalls intentional in this test
}`,
			want: nil,
		},
		{
			name: "suppression on the line above counts as used",
			src: `func f() {
	//predmatchvet:ignore flagcalls intentional in this test
	flagme()
}`,
			want: nil,
		},
		{
			name: "stale suppression is reported",
			src: `func f() {
	fine() //predmatchvet:ignore flagcalls nothing to silence anymore
}`,
			want: []string{"stale suppression: no flagcalls diagnostic"},
		},
		{
			name: "stale all suppression is reported",
			src: `func f() {
	fine() //predmatchvet:ignore all nothing to silence anymore
}`,
			want: []string{"stale suppression: no diagnostic"},
		},
		{
			name: "suppression for an analyzer that did not run is left alone",
			src: `func f() {
	fine() //predmatchvet:ignore guardedby other driver invocations still need this
}`,
			want: nil,
		},
		{
			name: "missing reason is malformed, not stale",
			src: `func f() {
	flagme() //predmatchvet:ignore flagcalls
}`,
			want: []string{"call to flagme", "malformed suppression"},
		},
	}

	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			diags := checkSource(t, header+tt.src, flagCalls)
			if len(diags) != len(tt.want) {
				t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, len(tt.want))
			}
			for i, w := range tt.want {
				if !strings.Contains(diags[i].Message, w) {
					t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i].Message, w)
				}
			}
		})
	}
}

// TestSuppressionUsedByAnyAnalyzer pins the "all" semantics: an "all"
// directive used by one analyzer is not stale for the others.
func TestSuppressionUsedByAnyAnalyzer(t *testing.T) {
	quiet := &Analyzer{Name: "quiet", Doc: "reports nothing", Run: func(*Pass) error { return nil }}
	src := "package supptest\n\nfunc flagme()\n\nfunc f() {\n\tflagme() //predmatchvet:ignore all known issue\n}\n"
	diags := checkSource(t, src, flagCalls, quiet)
	if len(diags) != 0 {
		t.Fatalf("got %v, want no diagnostics", diags)
	}
}
