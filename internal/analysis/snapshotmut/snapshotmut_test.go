package snapshotmut_test

import (
	"testing"

	"predmatch/internal/analysis/analysistest"
	"predmatch/internal/analysis/snapshotmut"
)

func TestSnapshotMut(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotmut.Analyzer, "snapmut")
}
