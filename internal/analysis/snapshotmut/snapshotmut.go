// Package snapshotmut defines an analyzer that enforces the repo's
// copy-on-write snapshot discipline for the predicate index.
//
// The concurrency model of internal/shard and core.ParallelMatcher
// rests on one rule: a *core.Index becomes immutable the moment it is
// published through an atomic.Pointer (Store/CompareAndSwap), and any
// index obtained from a published location (atomic Load, or a matcher's
// Snapshot accessor) is frozen — readers stab it lock-free, so a single
// mutation is a data race and a silent index corruption. Mutation is
// legal only on a fresh index (core.New or Clone) before it is
// published.
//
// The analyzer reports, within each function:
//
//   - a mutating method call (Add, Remove, Match, Candidates — Match
//     and Candidates write the index's scratch buffer) or a direct
//     field write on a variable after it was passed to an atomic
//     Store/CompareAndSwap;
//   - a mutating method call on a value obtained from an atomic
//     Pointer[core.Index].Load or from a method named Snapshot
//     returning *core.Index, directly or via a variable.
//
// The check is intraprocedural and source-position based: publishing
// and reassignment are tracked in order of appearance. Clone and New
// reset a variable to mutable; assigning from Load/Snapshot freezes it.
package snapshotmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"predmatch/internal/analysis"
)

// Configuration. Defaults describe the real repository; the analyzer
// tests point them at fixture packages.
var (
	// IndexPkg/IndexType name the copy-on-write snapshot type.
	IndexPkg  = "predmatch/internal/core"
	IndexType = "Index"
	// MutatingMethods are Index methods that are illegal on a frozen
	// snapshot (Match and Candidates reuse the index scratch buffer).
	MutatingMethods = map[string]bool{
		"Add": true, "Remove": true, "Match": true, "Candidates": true,
	}
	// FreshMethods return a new mutable Index.
	FreshMethods = map[string]bool{"Clone": true, "New": true}
	// FrozenMethods return a published, immutable Index.
	FrozenMethods = map[string]bool{"Snapshot": true}
)

// Analyzer is the snapshotmut analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotmut",
	Doc:  "published core.Index snapshots are immutable: no mutation after atomic Store, none on Load/Snapshot results",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// state of one index-typed variable after an assignment.
type state int

const (
	stateUnknown state = iota
	stateFresh         // from Clone()/New(): mutable until published
	stateFrozen        // from Load()/Snapshot(): never mutable
)

// assignEvent records one assignment to an index variable.
type assignEvent struct {
	pos   token.Pos
	state state
}

type funcFacts struct {
	assigns   map[*types.Var][]assignEvent
	publishes map[*types.Var][]token.Pos
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	facts := &funcFacts{
		assigns:   make(map[*types.Var][]assignEvent),
		publishes: make(map[*types.Var][]token.Pos),
	}

	// Pass 1: collect assignments to and publishes of index variables.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					v := indexVar(pass, lhs)
					if v == nil {
						continue
					}
					facts.assigns[v] = append(facts.assigns[v], assignEvent{
						pos:   n.Pos(),
						state: classify(pass, n.Rhs[i]),
					})
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v, _ := pass.TypesInfo.Defs[name].(*types.Var)
				if v == nil || !isIndexPtr(v.Type()) {
					continue
				}
				st := stateUnknown
				if i < len(n.Values) {
					st = classify(pass, n.Values[i])
				}
				facts.assigns[v] = append(facts.assigns[v], assignEvent{pos: n.Pos(), state: st})
			}
		case *ast.CallExpr:
			if v, pos := publishedVar(pass, n); v != nil {
				facts.publishes[v] = append(facts.publishes[v], pos)
			}
		}
		return true
	})

	// Pass 2: flag mutations of frozen or published values.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !MutatingMethods[fun.Sel.Name] {
				return true
			}
			if !isIndexPtr(pass.TypeOf(fun.X)) {
				return true
			}
			checkMutation(pass, facts, fun.X, n.Pos(),
				"call to "+IndexType+"."+fun.Sel.Name)
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				sel, ok := unwrap(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if !isIndexPtr(pass.TypeOf(sel.X)) {
					continue
				}
				checkMutation(pass, facts, sel.X, lhs.Pos(),
					"write to field "+sel.Sel.Name)
			}
		}
		return true
	})
}

// checkMutation reports if recv — the receiver of a mutating operation
// at pos — is a frozen or already-published index.
func checkMutation(pass *analysis.Pass, facts *funcFacts, recv ast.Expr, pos token.Pos, what string) {
	recv = unwrap(recv)
	// Direct chain: sh.snap.Load().Add(p) or m.Snapshot(rel).Add(p).
	if call, ok := recv.(*ast.CallExpr); ok {
		if src := frozenSource(pass, call); src != "" {
			pass.Reportf(pos, "%s on the frozen snapshot returned by %s: published indexes are immutable (Clone it first)", what, src)
		}
		return
	}
	v := indexVar(pass, recv)
	if v == nil {
		return
	}
	// Governing assignment: the last one at or before pos.
	gov := assignEvent{pos: token.NoPos, state: stateUnknown}
	for _, a := range facts.assigns[v] {
		if a.pos <= pos && a.pos >= gov.pos {
			gov = a
		}
	}
	if gov.state == stateFrozen {
		pass.Reportf(pos, "%s on %s, a frozen snapshot obtained from a published location: published indexes are immutable (Clone it first)", what, v.Name())
		return
	}
	// Published between the governing assignment and the mutation?
	for _, p := range facts.publishes[v] {
		if p >= gov.pos && p < pos {
			pass.Reportf(pos, "%s on %s after it was published with an atomic Store: mutate the clone before publishing, never after", what, v.Name())
			return
		}
	}
}

// indexVar returns the *types.Var behind an identifier of type
// *core.Index, or nil.
func indexVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	id, ok := unwrap(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !isIndexPtr(v.Type()) {
		return nil
	}
	return v
}

// isIndexPtr reports whether t is *core.Index (or core.Index).
func isIndexPtr(t types.Type) bool {
	return analysis.IsNamed(t, IndexPkg, IndexType)
}

// isAtomicIndexPointer reports whether t is sync/atomic.Pointer[core.Index].
func isAtomicIndexPointer(t types.Type) bool {
	if !analysis.IsNamed(t, "sync/atomic", "Pointer") {
		return false
	}
	arg := analysis.TypeArg(t, 0)
	return arg != nil && analysis.IsNamed(arg, IndexPkg, IndexType)
}

// classify determines the snapshot state an expression yields.
func classify(pass *analysis.Pass, e ast.Expr) state {
	e = unwrap(e)
	switch x := e.(type) {
	case *ast.CallExpr:
		if src := frozenSource(pass, x); src != "" {
			return stateFrozen
		}
		if fun, ok := x.Fun.(*ast.SelectorExpr); ok && FreshMethods[fun.Sel.Name] {
			if isIndexPtr(pass.TypeOf(x)) {
				return stateFresh
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, ok := x.X.(*ast.CompositeLit); ok && isIndexPtr(pass.TypeOf(x)) {
				return stateFresh
			}
		}
	}
	return stateUnknown
}

// frozenSource reports whether call yields a frozen index — an atomic
// Pointer[Index].Load() or a FrozenMethods call returning *Index —
// naming the source for the diagnostic, or "".
func frozenSource(pass *analysis.Pass, call *ast.CallExpr) string {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if fun.Sel.Name == "Load" && isAtomicIndexPointer(pass.TypeOf(fun.X)) {
		return "atomic Load"
	}
	if FrozenMethods[fun.Sel.Name] && isIndexPtr(pass.TypeOf(call)) {
		return fun.Sel.Name
	}
	return ""
}

// publishedVar recognizes atomic Pointer[Index].Store(v) and
// CompareAndSwap(old, v) calls, returning the published variable.
func publishedVar(pass *analysis.Pass, call *ast.CallExpr) (*types.Var, token.Pos) {
	fun, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !isAtomicIndexPointer(pass.TypeOf(fun.X)) {
		return nil, token.NoPos
	}
	var arg ast.Expr
	switch fun.Sel.Name {
	case "Store":
		if len(call.Args) == 1 {
			arg = call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			arg = call.Args[1]
		}
	}
	if arg == nil {
		return nil, token.NoPos
	}
	if v := indexVar(pass, arg); v != nil {
		return v, call.Pos()
	}
	return nil, token.NoPos
}

// unwrap strips parens and stars.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}
