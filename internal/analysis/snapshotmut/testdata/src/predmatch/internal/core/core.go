// Package core is a fixture miniature of the real predicate index: just
// enough surface for the snapshotmut analyzer — the mutating (Add,
// Remove, Match, Candidates), fresh (New, Clone) and read-only
// (MatchSnapshot) method sets on the copy-on-write Index type.
package core

// Index is the copy-on-write predicate index.
type Index struct {
	IDs []int
}

// New returns a fresh mutable index.
func New() *Index { return &Index{} }

// Clone returns a fresh mutable copy.
func (ix *Index) Clone() *Index {
	return &Index{IDs: append([]int(nil), ix.IDs...)}
}

// Add registers a predicate id (mutating).
func (ix *Index) Add(id int) error {
	ix.IDs = append(ix.IDs, id)
	return nil
}

// Remove drops a predicate id (mutating).
func (ix *Index) Remove(id int) error {
	for i, v := range ix.IDs {
		if v == id {
			ix.IDs = append(ix.IDs[:i], ix.IDs[i+1:]...)
			return nil
		}
	}
	return nil
}

// Match stabs the index, reusing an internal scratch buffer (mutating).
func (ix *Index) Match(rel string) []int { return ix.IDs }

// Candidates is Match without residual evaluation (mutating).
func (ix *Index) Candidates(rel string) []int { return ix.IDs }

// MatchSnapshot is the read-only stab, legal on frozen snapshots.
func (ix *Index) MatchSnapshot(rel string) []int { return nil }
