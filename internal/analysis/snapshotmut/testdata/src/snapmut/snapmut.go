// Package snapmut seeds copy-on-write discipline violations for the
// snapshotmut analyzer fixture test: mutation after an atomic publish,
// mutation of atomic Load results and of Snapshot accessor results.
package snapmut

import (
	"sync/atomic"

	"predmatch/internal/core"
)

type shard struct {
	snap atomic.Pointer[core.Index]
}

// Snapshot returns the published frozen index.
func (s *shard) Snapshot() *core.Index { return s.snap.Load() }

// goodAdd is the legal clone-and-publish write path.
func (s *shard) goodAdd(id int) {
	var next *core.Index
	if cur := s.snap.Load(); cur != nil {
		next = cur.Clone()
	} else {
		next = core.New()
	}
	_ = next.Add(id)
	s.snap.Store(next)
}

// mutateAfterPublish mutates the fresh index after the atomic Store.
func (s *shard) mutateAfterPublish(id int) {
	next := core.New()
	s.snap.Store(next)
	_ = next.Add(id) // want `after it was published with an atomic Store`
}

// mutateLoadChain mutates the Load result directly.
func (s *shard) mutateLoadChain(id int) {
	_ = s.snap.Load().Add(id) // want `frozen snapshot returned by atomic Load`
}

// mutateLoadVar mutates through a variable assigned from Load.
func (s *shard) mutateLoadVar(id int) {
	snap := s.snap.Load()
	_ = snap.Remove(id) // want `frozen snapshot obtained from a published location`
}

// mutateSnapshotResult mutates a Snapshot accessor result; Match counts
// as a mutation because it reuses the index scratch buffer.
func (s *shard) mutateSnapshotResult() {
	ix := s.Snapshot()
	ix.Match("r") // want `frozen snapshot obtained from a published location`
}

// writeFrozenField writes a field of a frozen snapshot.
func (s *shard) writeFrozenField() {
	snap := s.snap.Load()
	snap.IDs = nil // want `write to field IDs`
}

// cloneResets shows Clone returning a frozen variable to mutable.
func (s *shard) cloneResets(id int) {
	snap := s.snap.Load()
	snap = snap.Clone()
	_ = snap.Add(id)
	s.snap.Store(snap)
}

// readOnly stabs are fine on frozen snapshots.
func (s *shard) readOnly() []int {
	return s.snap.Load().MatchSnapshot("r")
}

// suppressed exercises the inline suppression escape hatch: the
// violation below must NOT be reported.
func (s *shard) suppressed(id int) {
	next := core.New()
	s.snap.Store(next)
	_ = next.Add(id) //predmatchvet:ignore snapshotmut fixture exercises the suppression path
}
